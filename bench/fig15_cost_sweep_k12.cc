// Figure 15: same cost sweep as Figure 12 at k=12 (648 hosts). The paper's
// point: cost-normalized performance is nearly independent of scale —
// compare this output with fig12_cost_sweep_k24.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/cost_model.h"
#include "fluid/throughput.h"
#include "topo/random_regular.h"

namespace {

constexpr double kRate = 10e9;

opera::fluid::Demand make_workload(const char* name, int racks, int hosts,
                                   unsigned seed) {
  using opera::fluid::Demand;
  if (std::string_view(name) == "hotrack") return Demand::hotrack(racks, hosts, kRate);
  if (std::string_view(name) == "skew[0.2,1]")
    return Demand::skew(racks, hosts, kRate, 0.2, seed);
  if (std::string_view(name) == "permutation")
    return Demand::permutation(racks, hosts, kRate, seed);
  return Demand::all_to_all(racks, hosts, kRate);
}

}  // namespace

int main() {
  opera::bench::banner("Figure 15: throughput vs cost factor alpha (k=12)");
  using opera::core::CostModel;
  constexpr int k = 12;
  const auto hosts = CostModel::clos_hosts(k, 3.0);  // 648
  const int opera_racks = static_cast<int>(CostModel::opera_racks(k));
  const int d_opera = k / 2;

  const char* workloads[] = {"hotrack", "skew[0.2,1]", "permutation", "all-to-all"};
  const double alphas[] = {1.0, 1.25, 1.5, 1.75, 2.0};

  for (const char* wl : workloads) {
    std::printf("\n[%s, k=%d, %lld hosts]\n", wl, k, static_cast<long long>(hosts));
    std::printf("  %-7s %-12s %-12s %-12s\n", "alpha", "Opera", "expander",
                "folded Clos");
    opera::fluid::RotorModelParams rp;
    rp.num_racks = opera_racks;
    rp.uplinks = d_opera;
    rp.link_rate_bps = kRate;
    rp.active_fraction = static_cast<double>(d_opera - 1) / d_opera;
    rp.duty_cycle = 0.9;
    const double opera_theta = std::min(
        1.0, opera::fluid::rotor_throughput(make_workload(wl, opera_racks, d_opera, 7),
                                            rp));
    for (const double alpha : alphas) {
      const int u_e = CostModel::expander_uplinks(alpha, k);
      const int d_e = k - u_e;
      const int racks_e = static_cast<int>(hosts / d_e);
      opera::sim::Rng rng(19);
      const auto g = opera::topo::random_regular_graph(racks_e, u_e, rng);
      const double exp_theta = std::min(
          1.0, opera::fluid::expander_throughput(make_workload(wl, racks_e, d_e, 7),
                                                 g, kRate));
      const double f = CostModel::clos_oversubscription(alpha);
      const double clos_theta = std::min(
          1.0, opera::fluid::clos_throughput(make_workload(wl, opera_racks, d_opera, 7),
                                             d_opera, kRate, f));
      std::printf("  %-7.2f %-12.3f %-12.3f %-12.3f\n", alpha, opera_theta, exp_theta,
                  clos_theta);
    }
  }
  std::printf("\nPaper shape: near-identical to Figure 12 — cost-normalized\n"
              "performance is almost independent of network scale.\n");
  return 0;
}

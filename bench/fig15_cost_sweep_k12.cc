// Figure 15: same cost sweep as Figure 12 at k=12 (648 hosts). The paper's
// point: cost-normalized performance is nearly independent of scale —
// compare this output with fig12_cost_sweep_k24.
#include "exp/cost_sweep.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  opera::exp::Experiment ex("Figure 15: throughput vs cost factor alpha (k=12)",
                            argc, argv);
  opera::exp::run_cost_sweep(ex, 12, /*rng_seed=*/19);
  ex.report().note(
      "Paper shape: near-identical to Figure 12 — cost-normalized\n"
      "performance is almost independent of network scale.");
  return 0;
}

// Figure 1: published empirical flow-size distributions — CDF of flows
// (top) and CDF of bytes (bottom) for Datamining [21], Websearch [4] and
// Hadoop [39].
#include "exp/experiment.h"
#include "workload/flow_size_dist.h"

int main(int argc, char** argv) {
  using opera::workload::FlowSizeDistribution;
  opera::exp::Experiment ex(
      "Figure 1: flow-size distributions (flow CDF and byte CDF)", argc, argv);

  auto& cdf = ex.report().table(
      "cdf", {"distribution", "size_bytes", "cdf_flows", "cdf_bytes"});
  auto& summary = ex.report().table(
      "summary", {"distribution", "mean_bytes", "bulk_byte_pct"});

  for (const auto& dist :
       {FlowSizeDistribution::datamining(), FlowSizeDistribution::websearch(),
        FlowSizeDistribution::hadoop()}) {
    const auto bytes = dist.byte_cdf();
    const auto& flows = dist.flow_cdf();
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const double byte_cdf = i < bytes.size() ? bytes[i].cdf : 1.0;
      cdf.row({dist.name(), opera::exp::Value(flows[i].bytes, 0),
               opera::exp::Value(flows[i].cdf, 3), opera::exp::Value(byte_cdf, 3)});
    }
    summary.row({dist.name(), opera::exp::Value(dist.mean_bytes(), 0),
                 opera::exp::Value(100.0 * dist.byte_fraction_at_or_above(15e6), 1)});
  }
  ex.report().note(
      "Paper check: Datamining/Hadoop are byte-heavy in bulk flows; Websearch"
      " has essentially no bulk bytes (drives Figure 9's all-indirect case).");
  return 0;
}

// Figure 1: published empirical flow-size distributions — CDF of flows
// (top) and CDF of bytes (bottom) for Datamining [21], Websearch [4] and
// Hadoop [39].
#include <cstdio>

#include "bench_common.h"
#include "workload/flow_size_dist.h"

int main() {
  using opera::workload::FlowSizeDistribution;
  opera::bench::banner("Figure 1: flow-size distributions (flow CDF and byte CDF)");

  for (const auto& dist :
       {FlowSizeDistribution::datamining(), FlowSizeDistribution::websearch(),
        FlowSizeDistribution::hadoop()}) {
    std::printf("\n[%s] mean flow size = %.0f bytes\n", dist.name().c_str(),
                dist.mean_bytes());
    std::printf("  %-14s %-12s %-12s\n", "size (bytes)", "CDF(flows)", "CDF(bytes)");
    const auto bytes = dist.byte_cdf();
    const auto& flows = dist.flow_cdf();
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const double byte_cdf = i < bytes.size() ? bytes[i].cdf : 1.0;
      std::printf("  %-14.0f %-12.3f %-12.3f\n", flows[i].bytes, flows[i].cdf,
                  byte_cdf);
    }
    std::printf("  bytes in >=15MB (bulk) flows: %.1f%%\n",
                100.0 * dist.byte_fraction_at_or_above(15e6));
  }
  std::printf(
      "\nPaper check: Datamining/Hadoop are byte-heavy in bulk flows; Websearch"
      " has essentially no bulk bytes (drives Figure 9's all-indirect case).\n");
  return 0;
}

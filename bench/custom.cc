// bench_custom — ad-hoc fabric sweeps from the command line, no recompile:
//
//   bench_custom --fabric=opera --racks=432 --hosts-per-rack=12
//                --workload=poisson --load=0.25 --duration-ms=1 --seed=1
//
// Builds any fabric through core::FabricConfig::scale() at the requested
// size (e.g. the k=24 / 5184-host Opera sweeps from the ROADMAP), reports
// construction wall-clock, and (unless --construct-only) drives one of the
// standard synthetic workloads through it and reports completion and FCT
// percentiles. --csv/--json choose the output rendering as usual.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "exp/experiment.h"
#include "exp/run_guard.h"
#include "exp/scenario.h"
#include "sim/checkpoint.h"
#include "workload/flow_size_dist.h"
#include "workload/synthetic.h"

namespace {

using namespace opera;

// --key=value parse helpers (CliOptions already swallows --csv etc.).
const char* arg_value(int argc, char** argv, const char* key) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}
double arg_double(int argc, char** argv, const char* key, double fallback) {
  const char* v = arg_value(argc, argv, key);
  return v != nullptr ? std::atof(v) : fallback;
}
long arg_long(int argc, char** argv, const char* key, long fallback) {
  const char* v = arg_value(argc, argv, key);
  return v != nullptr ? std::atol(v) : fallback;
}
std::string arg_string(int argc, char** argv, const char* key, const char* fallback) {
  const char* v = arg_value(argc, argv, key);
  return v != nullptr ? v : fallback;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_custom [options]\n"
      "  --fabric=opera|clos|expander|rotornet   (default opera)\n"
      "  --racks=N                               (default 108)\n"
      "  --hosts-per-rack=D                      (default 6; Opera u = D)\n"
      "  --workload=poisson|permutation|shuffle|incast|storage|ml\n"
      "                                          (default poisson)\n"
      "  --scenario=SPEC[;SPEC...]  declarative scenarios (docs/SCENARIOS.md):\n"
      "                    ditl / trace / adversarial-perm replace --workload;\n"
      "                    storm-rolling / storm-racks / gray / skew arm\n"
      "                    failure events (opera only; gray/skew need the\n"
      "                    packet engine; any number)\n"
      "  --load=F          poisson offered load  (default 0.10)\n"
      "  --dist=datamining|websearch|hadoop      (default datamining)\n"
      "  --flow-kb=K       fixed-size-flow workloads' flow/object/chunk\n"
      "                    size (default 100; ml: per-member model size)\n"
      "  --duration-ms=T   poisson arrival window (default 1)\n"
      "  --horizon-ms=T    simulation horizon     (default 50)\n"
      "  --seed=S                                (default 1)\n"
      "  --slice-window=W  Opera resident slice tables (default 0 = auto:\n"
      "                    eager if all fit 256 MB, else windowed+LRU)\n"
      "  --threads=N       shard the event loop over N rack domains\n"
      "                    (Opera; bit-identical output for any N)\n"
      "  --engine=packet|fluid|hybrid  simulation engine (Opera only;\n"
      "                    fluid integrates bulk flows as rate groups,\n"
      "                    hybrid splits by bulk threshold — docs/FLUID.md)\n"
      "  --construct-only  build the network, skip the traffic run\n"
      "  --csv | --json    output format\n"
      "run guardrails (docs/CHECKPOINT.md):\n"
      "  --checkpoint-every=T  write a checkpoint every T ms of sim time\n"
      "  --checkpoint-to=FILE  checkpoint destination (default\n"
      "                        bench_custom.ckpt; atomic tmp+rename)\n"
      "  --resume=FILE     rebuild + replay from FILE's checkpoint; run\n"
      "                    parameters come from the file (--threads, guard\n"
      "                    flags and output format are still honored;\n"
      "                    --scenario conflicts)\n"
      "  --max-wall-s=S    wall-clock watchdog: checkpoint + partial report\n"
      "                    + exit 43 after S seconds\n"
      "  --max-rss-mb=M    memory guard: degrade (shrink slice window),\n"
      "                    then checkpoint + partial report + exit 44\n"
      "  SIGINT/SIGTERM    checkpoint + partial report + exit 42\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (exp::CliOptions::has_flag(argc, argv, "--help")) return usage();

  const std::string fabric_name = arg_string(argc, argv, "--fabric", "opera");
  const auto kind = core::parse_fabric_kind(fabric_name);
  if (!kind) {
    std::fprintf(stderr, "bench_custom: unknown fabric '%s'\n", fabric_name.c_str());
    return usage();
  }
  const auto racks = static_cast<std::int32_t>(arg_long(argc, argv, "--racks", 108));
  const auto hosts_per_rack =
      static_cast<std::int32_t>(arg_long(argc, argv, "--hosts-per-rack", 6));
  const std::string workload_name = arg_string(argc, argv, "--workload", "poisson");
  const double load = arg_double(argc, argv, "--load", 0.10);
  const std::string dist_name = arg_string(argc, argv, "--dist", "datamining");
  const std::int64_t flow_bytes = arg_long(argc, argv, "--flow-kb", 100) * 1000;
  const double duration_ms = arg_double(argc, argv, "--duration-ms", 1.0);
  const double horizon_ms = arg_double(argc, argv, "--horizon-ms", 50.0);
  const auto seed = static_cast<std::uint64_t>(arg_long(argc, argv, "--seed", 1));
  const bool construct_only = exp::CliOptions::has_flag(argc, argv, "--construct-only");
  const std::string scenario_str = arg_string(argc, argv, "--scenario", "");

  // Run guardrails (exp::RunGuard). Any of these flags activates the
  // guarded driver; without them the legacy run path below is untouched.
  const double checkpoint_every_ms =
      arg_double(argc, argv, "--checkpoint-every", 0.0);
  const double max_wall_s = arg_double(argc, argv, "--max-wall-s", 0.0);
  const double max_rss_mb = arg_double(argc, argv, "--max-rss-mb", 0.0);
  const std::string resume_path = arg_string(argc, argv, "--resume", "");
  std::string checkpoint_path = arg_string(argc, argv, "--checkpoint-to", "");
  const bool resuming = !resume_path.empty();
  const bool guard_active = resuming || checkpoint_every_ms > 0 ||
                            max_wall_s > 0 || max_rss_mb > 0;
  if (checkpoint_path.empty()) {
    checkpoint_path = resuming ? resume_path : "bench_custom.ckpt";
  }

  exp::Experiment ex("custom fabric sweep", argc, argv);

  core::FabricConfig config = core::FabricConfig::make(*kind);
  config.scale(racks, hosts_per_rack);
  config.seed = seed;
  config.slice_table_window =
      static_cast<int>(arg_long(argc, argv, "--slice-window", 0));
  config.threads = ex.cli().threads;  // parsed by exp::CliOptions with the other shared flags
  if (!ex.cli().engine.empty()) {
    const auto engine = core::parse_engine_kind(ex.cli().engine);
    if (!engine) {
      std::fprintf(stderr, "bench_custom: unknown engine '%s'\n",
                   ex.cli().engine.c_str());
      return usage();
    }
    config.engine = *engine;
  }

  // Resume: run parameters come from the checkpoint (the recipe), not the
  // CLI — replaying a different workload against a restored time marker
  // could only produce garbage. --threads stays an override (the restored
  // run is bit-identical at any shard count).
  exp::RunRecipe recipe;
  sim::Time resume_time;
  std::uint64_t resume_digest = 0;
  if (resuming) {
    if (!scenario_str.empty()) {
      std::fprintf(stderr,
                   "bench_custom: --scenario conflicts with --resume (the "
                   "scenario suite is recorded in the checkpoint)\n");
      return 2;
    }
    if (!ex.cli().engine.empty()) {
      std::fprintf(stderr,
                   "bench_custom: --engine conflicts with --resume (the "
                   "engine is recorded in the checkpoint)\n");
      return 2;
    }
    auto parsed = sim::load_checkpoint(resume_path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench_custom: %s\n", parsed.error.c_str());
      return 2;
    }
    if (const std::string err = exp::recipe_from_checkpoint(
            parsed.data, &recipe, &resume_time, &resume_digest);
        !err.empty()) {
      std::fprintf(stderr, "bench_custom: %s: %s\n", resume_path.c_str(),
                   err.c_str());
      return 2;
    }
    if (ex.cli().threads != 0) recipe.config.threads = ex.cli().threads;
    config = recipe.config;
  }
  const std::string scenario_suite = resuming ? recipe.scenario : scenario_str;

  std::vector<exp::ScenarioSpec> scenarios;
  if (!scenario_suite.empty()) {
    auto parsed = exp::parse_scenarios(scenario_suite);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench_custom: %s\n", parsed.error.c_str());
      return usage();
    }
    scenarios = std::move(parsed.specs);
    for (const auto& s : scenarios) {
      if (const std::string err = exp::validate_scenario(s, config); !err.empty()) {
        std::fprintf(stderr, "bench_custom: invalid scenario — %s\n", err.c_str());
        return 2;
      }
    }
  }

  const auto build_start = std::chrono::steady_clock::now();
  auto net = core::NetworkFactory::build(config);
  const double build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start)
          .count();
  // Record the *resolved* shard count (covers the OPERA_TEST_THREADS env
  // default, not just --threads) so CSV artifacts label sharded walls.
  if (net->num_shards() > 1) ex.report().note("threads=%d", net->num_shards());
  if (config.engine != core::EngineKind::kPacket) {
    ex.report().note("engine=%s", core::engine_kind_name(config.engine));
  }

  auto& build_table = ex.report().table(
      "build", {"fabric", "racks", "hosts", "construct_s"});
  build_table.row({net->describe(), net->num_racks(), net->num_hosts(),
                   exp::Value(build_seconds, 3)});
  if (construct_only) return 0;

  // Scenario wiring: a workload scenario replaces --workload; failure
  // scenarios arm coordinator-phase events before the run starts.
  std::string run_label = workload_name;
  const exp::ScenarioSpec* workload_scenario = nullptr;
  for (const auto& s : scenarios) {
    ex.report().note("scenario: %s", exp::describe(s).c_str());
    if (exp::scenario_is_workload(s)) workload_scenario = &s;
    else exp::arm_scenario(s, *net);  // engine-dispatching overload
  }

  sim::Rng rng(seed + 1);
  std::vector<workload::FlowSpec> flows;
  if (resuming) {
    run_label = recipe.run_label;
    flows = recipe.flows;
  } else if (workload_scenario != nullptr) {
    run_label = exp::scenario_kind_name(workload_scenario->kind);
    std::string err;
    flows = exp::scenario_flows(*workload_scenario, config, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "bench_custom: scenario workload failed — %s\n",
                   err.c_str());
      return 2;
    }
  } else if (workload_name == "poisson") {
    const auto dist = dist_name == "websearch"  ? workload::FlowSizeDistribution::websearch()
                      : dist_name == "hadoop"   ? workload::FlowSizeDistribution::hadoop()
                                                : workload::FlowSizeDistribution::datamining();
    flows = workload::poisson_workload(dist, net->num_hosts(), load,
                                       config.link.rate_bps,
                                       sim::Time::from_us(duration_ms * 1000.0), rng);
  } else if (workload_name == "permutation") {
    flows = workload::permutation_workload(net->num_hosts(), hosts_per_rack,
                                           flow_bytes, rng);
  } else if (workload_name == "shuffle") {
    flows = workload::shuffle_workload(net->num_hosts(), hosts_per_rack, flow_bytes,
                                       sim::Time::zero(), rng);
  } else if (workload_name == "incast") {
    workload::IncastParams p;
    p.flow_bytes = flow_bytes;
    flows = workload::incast_workload(net->num_hosts(), hosts_per_rack, p, rng);
  } else if (workload_name == "storage") {
    workload::StorageReplicationParams p;
    p.object_bytes = flow_bytes;
    flows = workload::storage_replication_workload(net->num_hosts(), hosts_per_rack,
                                                   p, rng);
  } else if (workload_name == "ml") {
    workload::MlCollectiveParams p;
    p.model_bytes = flow_bytes;
    flows = workload::ml_collective_workload(net->num_hosts(), hosts_per_rack, p, rng);
  } else {
    std::fprintf(stderr, "bench_custom: unknown workload '%s'\n",
                 workload_name.c_str());
    return usage();
  }

  // Labels and horizon: from the recipe on resume, from the CLI otherwise.
  const std::string fct_label = resuming ? recipe.fabric_label : fabric_name;
  const double load_pct = resuming ? recipe.load_pct : load * 100.0;
  const sim::Time horizon =
      resuming ? recipe.horizon : sim::Time::from_us(horizon_ms * 1000.0);

  const auto run_start = std::chrono::steady_clock::now();
  for (const auto& f : flows) {
    net->submit_remapped(f.src_host, f.dst_host, f.size_bytes, f.start);
  }

  // Result tail, shared between normal completion and the guard's
  // partial-report exit path (SIGINT/watchdog/memory).
  const auto emit_results = [&](sim::Time ended_at, double run_seconds) {
    auto& run_table = ex.report().table(
        "run", {"workload", "flows", "completed", "sim_ms", "wall_s", "events"});
    run_table.row({run_label, static_cast<std::int64_t>(flows.size()),
                   static_cast<std::int64_t>(net->tracker().completed()),
                   exp::Value(ended_at.to_ms(), 3), exp::Value(run_seconds, 3),
                   static_cast<std::int64_t>(net->events_executed())});
    ex.emit_fct_rows(fct_label, load_pct, *net);

    if (!scenarios.empty()) {
      const auto fct =
          net->tracker().fct_us(0, std::numeric_limits<std::int64_t>::max());
      core::OperaNetwork::TorStats tor_stats;
      if (const auto* opera_net = dynamic_cast<const core::OperaNetwork*>(net.get())) {
        tor_stats = opera_net->tor_stats();
      }
      auto& scenario_table = ex.report().table(
          "scenario",
          {"scenario", "flows", "completed", "p50_us", "p99_us", "wire_drops",
           "tor_drops"});
      scenario_table.row(
          {scenario_suite, static_cast<std::int64_t>(flows.size()),
           static_cast<std::int64_t>(net->tracker().completed()),
           exp::Value(fct.empty() ? 0.0 : fct.percentile(50), 1),
           exp::Value(fct.empty() ? 0.0 : fct.percentile(99), 1),
           static_cast<std::int64_t>(tor_stats.wire_drops),
           static_cast<std::int64_t>(tor_stats.drops)});
    }

    if (const auto* opera_net = dynamic_cast<const core::OperaNetwork*>(net.get())) {
      const auto& cache = opera_net->slice_tables();
      const auto& st = cache.stats();
      ex.report().note(
          "slice tables: %s window %d of %d, resident %zu (%.1f MB, peak %.1f MB), "
          "builds %llu demand + %llu prefetch, evictions %llu",
          cache.eager() ? "eager" : "windowed", cache.window(), cache.num_slices(),
          st.resident, st.resident_bytes / 1e6, st.peak_resident_bytes / 1e6,
          static_cast<unsigned long long>(st.demand_builds),
          static_cast<unsigned long long>(st.prefetch_builds),
          static_cast<unsigned long long>(st.evictions));
    }
    ex.report().note("peak RSS %.1f MB", exp::peak_rss_bytes() / 1e6);
  };

  core::Network::RunStatus status{};
  if (guard_active) {
    if (!resuming) {
      recipe.run_label = run_label;
      recipe.fabric_label = fct_label;
      recipe.load_pct = load_pct;
      recipe.scenario = scenario_suite;
      recipe.config = config;
      recipe.flows = flows;
      recipe.horizon = horizon;
    }
    exp::RunGuardOptions gopts;
    gopts.checkpoint_every = sim::Time::from_us(checkpoint_every_ms * 1000.0);
    gopts.checkpoint_path = checkpoint_path;
    gopts.max_wall_s = max_wall_s;
    gopts.max_rss_bytes = static_cast<std::size_t>(max_rss_mb * 1e6);
    gopts.resume_time = resume_time;
    gopts.resume_digest = resume_digest;
    gopts.partial_report = [&](const char* reason) {
      ex.report().note("PARTIAL RUN: %s", reason);
      const double run_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        run_start)
              .count();
      emit_results(net->sim().now(), run_seconds);
      ex.report().finish();
    };
    exp::RunGuard guard(std::move(recipe), std::move(gopts));
    status = guard.drive(*net);
  } else {
    status = net->run_to_completion(horizon);
  }
  const double run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
          .count();

  emit_results(status.ended_at, run_seconds);
  return 0;
}

// Figure 13: end-to-end RTT of low-latency ping-pong traffic with and
// without bulk background traffic, on the paper's prototype configuration
// (8 ToRs x 4 emulated rotor switches; §6).
//
// The hardware prototype adds ~3 us/hop of P4 pipeline latency that a
// simulator does not model, so our absolute RTTs are lower; the *shape* —
// a smooth distribution shifted by queueing behind bulk MTUs at each
// serialization point — is the figure's point and is reproduced here.
#include <unordered_map>

#include "exp/experiment.h"
#include "sim/stats.h"

int main(int argc, char** argv) {
  using namespace opera;
  exp::Experiment ex("Figure 13: prototype ping-pong RTT CDF (8 ToRs, 4 rotors)",
                     argc, argv);
  auto& table = ex.report().table("rtt", {"scenario", "percentile", "rtt_us"});

  for (const bool with_bulk : {false, true}) {
    auto cfg = core::FabricConfig::make(core::FabricKind::kOpera);
    cfg.opera.num_racks = 8;
    cfg.opera.num_switches = 4;
    cfg.opera.hosts_per_rack = 1;  // one host per ToR, as in the prototype
    cfg.opera.seed = 5;
    const auto net = core::NetworkFactory::build(cfg);

    if (with_bulk) {
      // MPI-style all-to-all shuffle, tagged bulk (the prototype's Hadoop
      // pattern) — large enough to run for the whole experiment.
      for (int s = 0; s < 8; ++s) {
        for (int t = 0; t < 8; ++t) {
          if (s == t) continue;
          net->submit_flow(s, t, 30'000'000, sim::Time::zero(),
                           net::TrafficClass::kBulk);
        }
      }
    }

    // Ping-pong: a 512 B request; its completion triggers a 512 B response
    // back to the sender. RTT = request start -> response delivery.
    sim::PercentileSampler rtts;
    std::unordered_map<std::uint64_t, sim::Time> request_start;
    std::unordered_map<std::uint64_t, sim::Time> response_start;
    net->tracker().set_completion_hook([&](const transport::FlowRecord& rec) {
      if (const auto it = request_start.find(rec.flow.id); it != request_start.end()) {
        const auto resp = net->submit_flow(rec.flow.dst_host, rec.flow.src_host, 512,
                                           net->sim().now());
        response_start[resp] = it->second;
        request_start.erase(it);
        return;
      }
      if (const auto it = response_start.find(rec.flow.id);
          it != response_start.end()) {
        rtts.add((rec.end - it->second).to_us());
        response_start.erase(it);
      }
    });

    sim::Rng rng(99);
    for (int i = 0; i < 400; ++i) {
      const auto t0 = sim::Time::us(100 + i * 100);  // 10 kHz ping rate
      const auto a = static_cast<std::int32_t>(rng.index(8));
      auto b = static_cast<std::int32_t>(rng.index(8));
      if (b == a) b = (b + 1) % 8;
      net->sim().schedule_at(t0, [&net, &request_start, a, b] {
        const auto id = net->submit_flow(a, b, 512, net->sim().now());
        request_start[id] = net->sim().now();
      });
    }
    net->run_until(sim::Time::ms(60));

    const char* scenario = with_bulk ? "with bulk" : "without bulk";
    ex.report().note("[%s traffic] pings answered: %zu", scenario, rtts.count());
    if (!rtts.empty()) {
      for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        table.row({scenario, exp::Value(p, 0), exp::Value(rtts.percentile(p), 2)});
      }
    }
  }
  ex.report().note(
      "Paper shape: without bulk, RTT is set by path length; with bulk,\n"
      "low-latency packets queue behind in-flight bulk MTUs at each\n"
      "serialization point, smoothly shifting/widening the distribution\n"
      "(the hardware adds ~3us/hop of P4 latency we do not model).");
  return 0;
}

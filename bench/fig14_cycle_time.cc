// Figure 14: relative cycle time vs ToR radix, with and without grouped
// rotor reconfiguration (Appendix B).
#include <cstdio>

#include "bench_common.h"
#include "core/cycle.h"

int main() {
  opera::bench::banner("Figure 14: relative cycle time vs ToR radix");
  opera::core::CycleModel model;

  std::printf("%-6s %-8s %-10s %-18s %-22s\n", "k", "racks", "switches",
              "rel. cycle (none)", "rel. cycle (groups of 6)");
  for (const int k : {12, 24, 36, 48, 60}) {
    std::printf("%-6d %-8lld %-10d %-18.1f %-22.1f\n", k,
                static_cast<long long>(opera::core::CycleModel::racks(k)),
                opera::core::CycleModel::rotor_switches(k),
                model.relative_cycle_time(k),
                model.relative_cycle_time(k, 6));
  }
  std::printf("\nAbsolute values at the paper's constants:\n");
  std::printf("  k=12: cycle %.1f ms, duty cycle %.1f%%, bulk threshold %.0f MB\n",
              model.cycle_time(12).to_ms(), 100.0 * model.duty_cycle(12),
              static_cast<double>(model.bulk_threshold_bytes(12, 10e9)) / 1e6);
  std::printf("  k=64 (groups of 6): cycle %.1f ms, bulk threshold %.0f MB\n",
              model.cycle_time(64, 6).to_ms(),
              static_cast<double>(model.bulk_threshold_bytes(64, 10e9, 6)) / 1e6);
  std::printf("\nPaper shape: quadratic growth without grouping (25x at k=60),\n"
              "linear with groups of 6 (5x at k=60); 90 MB cutoff at k=64.\n");
  return 0;
}

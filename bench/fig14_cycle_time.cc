// Figure 14: relative cycle time vs ToR radix, with and without grouped
// rotor reconfiguration (Appendix B).
#include "core/cycle.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  opera::exp::Experiment ex("Figure 14: relative cycle time vs ToR radix", argc,
                            argv);
  opera::core::CycleModel model;

  auto& table = ex.report().table(
      "cycle_time",
      {"k", "racks", "switches", "rel_cycle_none", "rel_cycle_groups6"});
  for (const int k : {12, 24, 36, 48, 60}) {
    table.row({static_cast<std::int64_t>(k),
               static_cast<std::int64_t>(opera::core::CycleModel::racks(k)),
               static_cast<std::int64_t>(opera::core::CycleModel::rotor_switches(k)),
               opera::exp::Value(model.relative_cycle_time(k), 1),
               opera::exp::Value(model.relative_cycle_time(k, 6), 1)});
  }
  ex.report().note("Absolute values at the paper's constants:");
  ex.report().note(
      "  k=12: cycle %.1f ms, duty cycle %.1f%%, bulk threshold %.0f MB",
      model.cycle_time(12).to_ms(), 100.0 * model.duty_cycle(12),
      static_cast<double>(model.bulk_threshold_bytes(12, 10e9)) / 1e6);
  ex.report().note(
      "  k=64 (groups of 6): cycle %.1f ms, bulk threshold %.0f MB",
      model.cycle_time(64, 6).to_ms(),
      static_cast<double>(model.bulk_threshold_bytes(64, 10e9, 6)) / 1e6);
  ex.report().note(
      "Paper shape: quadratic growth without grouping (25x at k=60),\n"
      "linear with groups of 6 (5x at k=60); 90 MB cutoff at k=64.");
  return 0;
}

// bench_scale_sweep — the datacenter traffic patterns the paper motivates
// but never sweeps (incast, storage replication, ML ring all-reduce),
// driven through Opera at two scales:
//
//   quick  : the 16x4 laptop testbed (CI per-PR run)
//   --full : k=24 — 432 racks x 12 hosts (5184 hosts), the ROADMAP's
//            paper-scale target. Only feasible with the windowed
//            slice-table cache: 432 eager tables cost ~840 MB, the
//            auto-sized window stays under the 256 MB table budget.
//
// Both modes emit the same table shapes (the baseline row fingerprint is
// scale-independent): per-pattern run and slice-cache rows, the standard
// FCT buckets, and a process-wide peak-RSS row.
#include <chrono>
#include <string>
#include <vector>

#include "core/opera_network.h"
#include "exp/experiment.h"
#include "exp/testbed.h"
#include "workload/synthetic.h"

namespace {

using namespace opera;

struct Pattern {
  std::string name;
  std::vector<workload::FlowSpec> flows;
};

std::vector<Pattern> make_patterns(bool full, std::int32_t num_hosts,
                                   std::int32_t hosts_per_rack) {
  std::vector<Pattern> out;
  {
    sim::Rng rng(11);
    workload::IncastParams p;
    p.events = full ? 12 : 6;
    p.fanin = full ? 128 : 24;
    p.flow_bytes = 64'000;
    out.push_back({"incast", workload::incast_workload(num_hosts, hosts_per_rack,
                                                       p, rng)});
  }
  {
    sim::Rng rng(12);
    workload::StorageReplicationParams p;
    p.writes = full ? 128 : 24;
    p.object_bytes = full ? 4'000'000 : 2'000'000;
    out.push_back({"storage", workload::storage_replication_workload(
                                  num_hosts, hosts_per_rack, p, rng)});
  }
  {
    sim::Rng rng(13);
    workload::MlCollectiveParams p;
    p.group_size = full ? 16 : 8;
    p.model_bytes = full ? 2'000'000 : 1'000'000;
    // One training job on a slice of the cluster: rings never need the
    // whole fabric, and capping the job keeps the --full flow count sane.
    const std::int32_t job_hosts = std::min<std::int32_t>(num_hosts, full ? 512 : 64);
    out.push_back({"ml_collective", workload::ml_collective_workload(
                                        job_hosts, hosts_per_rack, p, rng)});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex("scale sweep (incast / storage / ML collective)", argc, argv);
  const bool full = ex.full();

  core::FabricConfig config =
      full ? core::FabricConfig::make(core::FabricKind::kOpera).scale(432, 12)
           : exp::Testbed::quick().opera();

  const auto patterns =
      make_patterns(full, config.num_hosts(), config.opera.hosts_per_rack);

  auto& run_table = ex.report().table(
      "run", {"pattern", "flows", "completed", "sim_ms", "wall_s"});
  auto& cache_table = ex.report().table(
      "slice_cache", {"pattern", "mode", "window", "slices", "peak_mb",
                      "demand_builds", "prefetch_builds", "evictions"});

  for (const auto& pattern : patterns) {
    exp::Experiment::RunOptions opts;
    opts.horizon = sim::Time::ms(full ? 200 : 50);
    const auto result = ex.run(pattern.name, config, pattern.flows, opts);
    run_table.row({pattern.name, static_cast<std::int64_t>(pattern.flows.size()),
                   static_cast<std::int64_t>(result.net->tracker().completed()),
                   exp::Value(result.status.ended_at.to_ms(), 3),
                   exp::Value(result.wall_seconds, 2)});
    ex.emit_fct_rows(pattern.name, 100.0, *result.net);

    const auto& cache =
        dynamic_cast<const core::OperaNetwork&>(*result.net).slice_tables();
    const auto& st = cache.stats();
    cache_table.row({pattern.name, cache.eager() ? "eager" : "windowed",
                     cache.window(), cache.num_slices(),
                     exp::Value(st.peak_resident_bytes / 1e6, 1),
                     static_cast<std::int64_t>(st.demand_builds),
                     static_cast<std::int64_t>(st.prefetch_builds),
                     static_cast<std::int64_t>(st.evictions)});
  }

  auto& memory_table = ex.report().table("memory", {"peak_rss_mb"});
  memory_table.row({exp::Value(exp::peak_rss_bytes() / 1e6, 1)});
  return 0;
}

// bench_scale_sweep — the datacenter traffic patterns the paper motivates
// but never sweeps (incast, storage replication, ML ring all-reduce),
// driven through Opera at two scales:
//
//   quick  : the 16x4 laptop testbed (CI per-PR run)
//   --full : k=24 — 432 racks x 12 hosts (5184 hosts), the ROADMAP's
//            paper-scale target. Only feasible with the windowed
//            slice-table cache: 432 eager tables cost ~840 MB, the
//            auto-sized window stays under the 256 MB table budget.
//
// Both modes also run a construction + short-sweep "scale probe" one rung
// above the sweep scale: quick probes k=12 (24 racks x 6 hosts), --full
// probes k=32 (768 racks x 16 hosts = 12288 hosts) — the rung the sparse
// VOQs (transport/sparse_voq.h) and the sharded event loop unlock. The
// probe row records the sparse-VOQ structural memory next to peak RSS.
//
// All modes emit the same table shapes (the baseline row fingerprint is
// scale-independent): per-pattern run and slice-cache rows, the standard
// FCT buckets, the scale-probe row, and a process-wide peak-RSS row.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "core/opera_network.h"
#include "exp/experiment.h"
#include "exp/scenario.h"
#include "exp/testbed.h"
#include "workload/flow_size_dist.h"
#include "workload/synthetic.h"

namespace {

using namespace opera;

struct Pattern {
  std::string name;
  std::vector<workload::FlowSpec> flows;
};

std::vector<Pattern> make_patterns(bool full, std::int32_t num_hosts,
                                   std::int32_t hosts_per_rack) {
  std::vector<Pattern> out;
  {
    sim::Rng rng(11);
    workload::IncastParams p;
    p.events = full ? 12 : 6;
    p.fanin = full ? 128 : 24;
    p.flow_bytes = 64'000;
    out.push_back({"incast", workload::incast_workload(num_hosts, hosts_per_rack,
                                                       p, rng)});
  }
  {
    sim::Rng rng(12);
    workload::StorageReplicationParams p;
    p.writes = full ? 128 : 24;
    p.object_bytes = full ? 4'000'000 : 2'000'000;
    out.push_back({"storage", workload::storage_replication_workload(
                                  num_hosts, hosts_per_rack, p, rng)});
  }
  {
    sim::Rng rng(13);
    workload::MlCollectiveParams p;
    p.group_size = full ? 16 : 8;
    p.model_bytes = full ? 2'000'000 : 1'000'000;
    // One training job on a slice of the cluster: rings never need the
    // whole fabric, and capping the job keeps the --full flow count sane.
    const std::int32_t job_hosts = std::min<std::int32_t>(num_hosts, full ? 512 : 64);
    out.push_back({"ml_collective", workload::ml_collective_workload(
                                        job_hosts, hosts_per_rack, p, rng)});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex("scale sweep (incast / storage / ML collective)", argc, argv);
  const bool full = ex.full();

  core::FabricConfig config =
      full ? core::FabricConfig::make(core::FabricKind::kOpera).scale(432, 12)
           : exp::Testbed::quick().opera();

  const auto patterns =
      make_patterns(full, config.num_hosts(), config.opera.hosts_per_rack);

  auto& run_table = ex.report().table(
      "run", {"pattern", "flows", "completed", "sim_ms", "wall_s"});
  auto& cache_table = ex.report().table(
      "slice_cache", {"pattern", "mode", "window", "slices", "peak_mb",
                      "demand_builds", "prefetch_builds", "evictions"});

  for (const auto& pattern : patterns) {
    exp::Experiment::RunOptions opts;
    opts.horizon = sim::Time::ms(full ? 200 : 50);
    const auto result = ex.run(pattern.name, config, pattern.flows, opts);
    run_table.row({pattern.name, static_cast<std::int64_t>(pattern.flows.size()),
                   static_cast<std::int64_t>(result.net->tracker().completed()),
                   exp::Value(result.status.ended_at.to_ms(), 3),
                   exp::Value(result.wall_seconds, 2)});
    ex.emit_fct_rows(pattern.name, 100.0, *result.net);

    const auto& cache =
        dynamic_cast<const core::OperaNetwork&>(*result.net).slice_tables();
    const auto& st = cache.stats();
    cache_table.row({pattern.name, cache.eager() ? "eager" : "windowed",
                     cache.window(), cache.num_slices(),
                     exp::Value(st.peak_resident_bytes / 1e6, 1),
                     static_cast<std::int64_t>(st.demand_builds),
                     static_cast<std::int64_t>(st.prefetch_builds),
                     static_cast<std::int64_t>(st.evictions)});
  }

  // Scenario leg (docs/SCENARIOS.md): the composed day-in-the-life, the
  // same day over gray (lossy-not-dead) links, and the schedule-
  // adversarial permutation under a rolling rotor storm. The gray row is
  // the behavior no static-failure bench shows: routing still uses the
  // degraded links, so FCT inflates and wire_drops counts the silent loss
  // — compare its p50/p99 against the clean ditl row. Suites are
  // scale-independent strings, so quick (16x4) and --full (k=24) emit the
  // same 3-row fingerprint.
  {
    struct ScenarioRun {
      const char* label;
      const char* suite;
      int horizon_ms;  // storms need room for recovery + reconvergence
    };
    const std::vector<ScenarioRun> runs = {
        {"ditl", "ditl:phase-ms=0.5,load=0.1,seed=3", 15},
        {"ditl_gray",
         "ditl:phase-ms=0.5,load=0.1,seed=3;"
         "gray:links=10,loss=0.08,extra-us=50,start-ms=0,recover-ms=0",
         15},
        {"adv_perm_storm",
         "adversarial-perm:flow-kb=300;"
         "storm-rolling:switches=2,start-ms=1,period-ms=2,recover-ms=5",
         40},
    };
    auto& scenario_table = ex.report().table(
        "scenarios", {"scenario", "flows", "completed", "sim_ms", "wall_s",
                      "p50_us", "p99_us", "wire_drops", "tor_drops"});
    for (const auto& r : runs) {
      const auto parsed = exp::parse_scenarios(r.suite);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bench_scale_sweep: bad scenario suite '%s': %s\n",
                     r.suite, parsed.error.c_str());
        return 1;
      }
      std::vector<workload::FlowSpec> flows;
      for (const auto& spec : parsed.specs) {
        if (const std::string err = exp::validate_scenario(spec, config);
            !err.empty()) {
          std::fprintf(stderr, "bench_scale_sweep: %s\n", err.c_str());
          return 1;
        }
        if (exp::scenario_is_workload(spec)) {
          flows = exp::scenario_flows(spec, config);
        }
      }
      exp::Experiment::RunOptions opts;
      opts.horizon = sim::Time::ms(r.horizon_ms);
      opts.setup = [&parsed](core::Network& net) {
        auto& opera_net = dynamic_cast<core::OperaNetwork&>(net);
        for (const auto& spec : parsed.specs) {
          if (!exp::scenario_is_workload(spec)) exp::arm_scenario(spec, opera_net);
        }
      };
      const auto result = ex.run(r.label, config, flows, opts);
      const auto fct = result.net->tracker().fct_us(
          0, std::numeric_limits<std::int64_t>::max());
      const auto tor_stats =
          dynamic_cast<const core::OperaNetwork&>(*result.net).tor_stats();
      scenario_table.row(
          {r.label, static_cast<std::int64_t>(flows.size()),
           static_cast<std::int64_t>(result.net->tracker().completed()),
           exp::Value(result.status.ended_at.to_ms(), 3),
           exp::Value(result.wall_seconds, 2),
           exp::Value(fct.empty() ? 0.0 : fct.percentile(50), 1),
           exp::Value(fct.empty() ? 0.0 : fct.percentile(99), 1),
           static_cast<std::int64_t>(tor_stats.wire_drops),
           static_cast<std::int64_t>(tor_stats.drops)});
    }
  }

  // Engine sweep (docs/FLUID.md): one ditl day, identical per mode,
  // through the packet, fluid and hybrid engines, with the bulk threshold
  // at 1 MB so the day's elephants actually exercise the fluid plane at
  // bench-scale flow sizes. Quick compares all three at k=12. --full is
  // the regime the fluid backend exists for: a >=1M-flow, 2 s simulated
  // day at k=24 the packet engine cannot touch (its row stays "-"), plus
  // a moderated hybrid day at the same scale. Three rows in both modes —
  // the shape the baseline gates.
  {
    auto& engine_table = ex.report().table(
        "engine_sweep", {"engine", "racks", "flows", "completed", "sim_ms",
                         "wall_s", "events", "p50_us"});
    const auto engine_run = [&](core::EngineKind engine, const char* suite,
                                int horizon_ms) {
      core::FabricConfig cfg =
          full ? core::FabricConfig::make(core::FabricKind::kOpera).scale(432, 12)
               : core::FabricConfig::make(core::FabricKind::kOpera).scale(24, 6);
      cfg.engine = engine;
      cfg.bulk_threshold_bytes = 1'000'000;
      const auto parsed = exp::parse_scenarios(suite);
      if (!parsed.ok() || parsed.specs.size() != 1) {
        std::fprintf(stderr, "bench_scale_sweep: bad engine-sweep suite '%s'\n",
                     suite);
        std::exit(1);
      }
      const auto flows = exp::scenario_flows(parsed.specs[0], cfg);
      exp::Experiment::RunOptions opts;
      opts.horizon = sim::Time::ms(horizon_ms);
      const auto result = ex.run(core::engine_kind_name(engine), cfg, flows, opts);
      const auto fct = result.net->tracker().fct_us(
          0, std::numeric_limits<std::int64_t>::max());
      engine_table.row(
          {core::engine_kind_name(engine), cfg.opera.num_racks,
           static_cast<std::int64_t>(flows.size()),
           static_cast<std::int64_t>(result.net->tracker().completed()),
           exp::Value(result.status.ended_at.to_ms(), 3),
           exp::Value(result.wall_seconds, 2),
           static_cast<std::int64_t>(result.net->events_executed()),
           exp::Value(fct.empty() ? 0.0 : fct.percentile(50), 1)});
    };
    if (full) {
      // A packet run at a million flows x 2 s is days of wall-clock; the
      // placeholder row keeps the 3-row shape and says so.
      engine_table.row({"packet", 432, "-", "-", "-", "-", "-", "-"});
      engine_run(core::EngineKind::kFluid,
                 "ditl:phase-ms=400,load=0.27,seed=9", 2000);
      engine_run(core::EngineKind::kHybrid,
                 "ditl:phase-ms=0.5,load=0.1,seed=9", 15);
    } else {
      for (const auto engine :
           {core::EngineKind::kPacket, core::EngineKind::kFluid,
            core::EngineKind::kHybrid}) {
        engine_run(engine, "ditl:phase-ms=0.5,load=0.1,seed=9", 12);
      }
    }
  }

  // Scale probe: one rung above the sweep scale — construction plus a
  // short poisson sweep, with the sparse-VOQ memory probe. k=32 is the
  // ROADMAP rung the dense relay VOQs made infeasible (768² rings); quick
  // mode probes k=12 (the smallest rung above the 16x4 sweep testbed with
  // a fully-connected slice realization).
  {
    const std::int32_t probe_racks = full ? 768 : 24;
    const std::int32_t probe_hpr = full ? 16 : 6;
    core::FabricConfig probe =
        core::FabricConfig::make(core::FabricKind::kOpera).scale(probe_racks, probe_hpr);
    probe.threads = ex.cli().threads;  // the probe honors --threads too

    const auto build_start = std::chrono::steady_clock::now();
    auto net = core::NetworkFactory::build(probe);
    const double construct_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start)
            .count();

    sim::Rng rng(21);
    // Datamining's heavy tail means ~7 MB mean flow size: these loads and
    // windows put a few dozen flows (mice through multi-MB elephants) on
    // the fabric in both modes.
    const auto flows = workload::poisson_workload(
        workload::FlowSizeDistribution::datamining(), net->num_hosts(),
        /*load=*/full ? 0.05 : 0.3, probe.link.rate_bps,
        full ? sim::Time::us(150) : sim::Time::ms(2), rng);
    const auto run_start = std::chrono::steady_clock::now();
    for (const auto& f : flows) {
      net->submit_remapped(f.src_host, f.dst_host, f.size_bytes, f.start);
    }
    const auto status = net->run_to_completion(sim::Time::ms(full ? 20 : 50));
    const double sweep_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
            .count();

    const auto& opera_net = dynamic_cast<const core::OperaNetwork&>(*net);
    auto& probe_table = ex.report().table(
        "scale_probe", {"k", "racks", "hosts", "construct_s", "flows", "completed",
                        "sweep_wall_s", "voq_mb", "table_peak_mb"});
    probe_table.row({2 * probe_hpr, net->num_racks(), net->num_hosts(),
                     exp::Value(construct_s, 2),
                     static_cast<std::int64_t>(flows.size()),
                     static_cast<std::int64_t>(net->tracker().completed()),
                     exp::Value(sweep_s, 2),
                     exp::Value(opera_net.voq_memory_bytes() / 1e6, 2),
                     exp::Value(opera_net.slice_tables().stats().peak_resident_bytes / 1e6,
                                1)});
    ex.report().note("scale probe sim time %.3f ms", status.ended_at.to_ms());
  }

  auto& memory_table = ex.report().table("memory", {"peak_rss_mb"});
  memory_table.row({exp::Value(exp::peak_rss_bytes() / 1e6, 1)});
  return 0;
}

// Figure 9: FCT vs flow size for the Websearch workload — Opera's worst
// case, since every flow is below the bulk threshold and rides indirect
// expander paths paying the bandwidth tax.
#include <cstdio>

#include "bench_common.h"
#include "workload/flow_size_dist.h"

namespace {
using namespace opera;
}

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::banner("Figure 9: Websearch FCTs (all flows low-latency/indirect)");
  const int racks = full ? 108 : 16;
  const int switches = full ? 6 : 4;
  const int hosts_per_rack = full ? 6 : 4;
  const int num_hosts = racks * hosts_per_rack;
  const auto horizon = full ? sim::Time::ms(100) : sim::Time::ms(40);
  const std::vector<double> loads = full ? std::vector<double>{0.01, 0.05, 0.10}
                                         : std::vector<double>{0.01, 0.05, 0.10};
  const auto dist = workload::FlowSizeDistribution::websearch();

  for (const double load : loads) {
    sim::Rng rng(31337);
    const auto flows =
        workload::poisson_workload(dist, num_hosts, load, 10e9, horizon / 2, rng);

    {
      core::OperaConfig cfg;
      cfg.topology.num_racks = racks;
      cfg.topology.num_switches = switches;
      cfg.topology.hosts_per_rack = hosts_per_rack;
      cfg.topology.seed = 3;
      core::OperaNetwork net(cfg);
      bench::submit_all(net, flows);
      net.run_until(horizon);
      bench::print_fct_rows(net.tracker(), "Opera", load * 100);
    }
    {
      core::ClosNetConfig cfg;
      cfg.structure.radix = full ? 12 : 8;
      cfg.structure.oversubscription = 3;
      cfg.structure.num_pods = full ? 12 : 4;
      core::ClosNetwork net(cfg);
      const int hosts = net.num_hosts();
      for (const auto& f : flows) {
        const auto src = f.src_host % hosts;
        auto dst = f.dst_host % hosts;
        if (dst == src) dst = (dst + 1) % hosts;
        net.submit_flow(src, dst, f.size_bytes, f.start);
      }
      net.run_until(horizon);
      bench::print_fct_rows(net.tracker(), "Clos3:1", load * 100);
    }
    {
      core::ExpanderNetConfig cfg;
      cfg.structure.num_tors = full ? 130 : 20;
      cfg.structure.uplinks = full ? 7 : 5;
      cfg.structure.hosts_per_tor = full ? 5 : 3;
      cfg.structure.seed = 3;
      core::ExpanderNetwork net(cfg);
      const int hosts = net.num_hosts();
      for (const auto& f : flows) {
        const auto src = f.src_host % hosts;
        auto dst = f.dst_host % hosts;
        if (dst == src) dst = (dst + 1) % hosts;
        net.submit_flow(src, dst, f.size_bytes, f.start);
      }
      net.run_until(horizon);
      bench::print_fct_rows(net.tracker(), "Expander", load * 100);
    }
    std::printf("\n");
  }
  std::printf("Paper shape: all three networks deliver equivalent FCTs at <=10%%\n"
              "load; Opera admits no more than ~10%% (it has 60%% of the expander's\n"
              "capacity and pays a 41%% tax from its longer expected path).\n");
  return 0;
}

// Figure 9: FCT vs flow size for the Websearch workload — Opera's worst
// case, since every flow is below the bulk threshold and rides indirect
// expander paths paying the bandwidth tax.
#include "exp/experiment.h"
#include "workload/flow_size_dist.h"

int main(int argc, char** argv) {
  using namespace opera;
  exp::Experiment ex("Figure 9: Websearch FCTs (all flows low-latency/indirect)",
                     argc, argv);
  const auto tb = exp::Testbed::select(ex.full());
  const auto horizon = ex.full() ? sim::Time::ms(100) : sim::Time::ms(40);
  const auto dist = workload::FlowSizeDistribution::websearch();

  exp::Experiment::FctSweep sweep;
  sweep.fabrics = {{"Opera", tb.opera(), {}},
                   {"Clos3:1", tb.clos(), {}},
                   {"Expander", tb.expander(), {}}};
  sweep.loads = {0.01, 0.05, 0.10};
  sweep.horizon = horizon;
  sweep.make_flows = [&](double load) {
    sim::Rng rng(31337);
    return workload::poisson_workload(dist, tb.num_hosts(), load, 10e9, horizon / 2,
                                      rng);
  };
  ex.run_fct_sweep(sweep);

  ex.report().note(
      "Paper shape: all three networks deliver equivalent FCTs at <=10%%\n"
      "load; Opera admits no more than ~10%% (it has 60%% of the expander's\n"
      "capacity and pays a 41%% tax from its longer expected path).");
  return 0;
}

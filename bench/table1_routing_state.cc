// Table 1: Opera P4 ruleset size and switch-memory utilization vs
// datacenter size. Entries = N(N-1) low-latency rules (per-slice,
// per-destination) + N(u-1) bulk rules (per-slice direct circuits),
// validated against a concrete OperaTopology's actual forwarding state.
#include "core/routing_state.h"
#include "exp/experiment.h"
#include "topo/opera_topology.h"

int main(int argc, char** argv) {
  opera::exp::Experiment ex("Table 1: routing state vs datacenter size", argc,
                            argv);
  using opera::core::RoutingStateModel;

  auto& table = ex.report().table(
      "routing_state", {"racks", "k", "entries", "utilization_pct"});
  for (const auto& row : RoutingStateModel::kPaperRows) {
    const auto entries = RoutingStateModel::total_entries(row.racks, row.radix / 2);
    table.row({static_cast<std::int64_t>(row.racks),
               static_cast<std::int64_t>(row.radix),
               static_cast<std::int64_t>(entries),
               opera::exp::Value(RoutingStateModel::utilization_percent(entries), 1)});
  }

  // Cross-check the counting argument against a real topology: in every
  // slice each ToR has one low-latency rule per destination and one bulk
  // rule per active uplink circuit.
  opera::topo::OperaParams p;
  p.num_racks = 108;
  p.num_switches = 6;
  p.seed = 1;
  const opera::topo::OperaTopology topo(p);
  long long ll_rules = 0;
  long long bulk_rules = 0;
  for (int s = 0; s < topo.num_slices(); ++s) {
    ll_rules += static_cast<long long>(topo.num_racks() - 1);
    const int down = topo.reconfiguring_switch(s);
    for (int sw = 0; sw < topo.num_switches(); ++sw) {
      if (sw == down) continue;
      // Rack 0's direct circuits this slice (self-matches need no rule).
      if (topo.circuit_peer(sw, 0, s) != 0) ++bulk_rules;
    }
  }
  auto& check = ex.report().table(
      "cross_check", {"racks", "model_entries", "topology_walk_entries"});
  check.row({108,
             static_cast<std::int64_t>(RoutingStateModel::total_entries(108, 6)),
             static_cast<std::int64_t>(ll_rules + bulk_rules)});
  ex.report().note(
      "Paper: 12,096 entries / 0.7%% at 108 racks up to 1,461,600 / 85.9%%\n"
      "at 1200 racks — today's hardware holds Opera's rules.");
  return 0;
}

// Figure 20: u=7 static expander connectivity loss and path lengths under
// link and ToR failures (650 hosts: 130 racks x 5).
#include <cstdio>

#include "bench_common.h"
#include "topo/failures.h"

int main() {
  opera::bench::banner("Figure 20: u=7 expander under failures (650 hosts)");
  using namespace opera::topo;

  ExpanderParams p;
  p.num_tors = 130;
  p.uplinks = 7;
  p.hosts_per_tor = 5;
  p.seed = 1;
  const ExpanderTopology expander(p);

  const double fractions[] = {0.01, 0.025, 0.05, 0.10, 0.20, 0.40};
  const struct {
    FailureKind kind;
    const char* label;
  } kinds[] = {{FailureKind::kLink, "links"}, {FailureKind::kTor, "ToRs"}};

  for (const auto& [kind, label] : kinds) {
    std::printf("\nFailed %-8s  conn. loss   avg path   worst path\n", label);
    for (const double f : fractions) {
      opera::sim::Rng rng(4000 + static_cast<std::uint64_t>(f * 1000));
      const auto report = analyze_expander_failures(expander, kind, f, rng);
      std::printf("  %5.1f%%     %8.4f    %6.2f      %3d\n", f * 100.0,
                  report.worst_slice_connectivity_loss, report.avg_path_length,
                  report.worst_path_length);
    }
  }
  std::printf("\nPaper shape: the u=7 expander is the most fault tolerant of the\n"
              "three networks (more links and higher ToR fanout than Opera).\n");
  return 0;
}

// Figure 20: u=7 static expander connectivity loss and path lengths under
// link and ToR failures (650 hosts: 130 racks x 5).
#include "exp/experiment.h"
#include "topo/failures.h"

int main(int argc, char** argv) {
  opera::exp::Experiment ex("Figure 20: u=7 expander under failures (650 hosts)",
                            argc, argv);
  using namespace opera::topo;

  ExpanderParams p;
  p.num_tors = 130;
  p.uplinks = 7;
  p.hosts_per_tor = 5;
  p.seed = 1;
  const ExpanderTopology expander(p);

  const double fractions[] = {0.01, 0.025, 0.05, 0.10, 0.20, 0.40};
  const struct {
    FailureKind kind;
    const char* label;
  } kinds[] = {{FailureKind::kLink, "links"}, {FailureKind::kTor, "ToRs"}};

  auto& table = ex.report().table(
      "failures",
      {"failed_kind", "failed_pct", "conn_loss", "avg_path", "worst_path"});
  for (const auto& [kind, label] : kinds) {
    for (const double f : fractions) {
      opera::sim::Rng rng(4000 + static_cast<std::uint64_t>(f * 1000));
      const auto report = analyze_expander_failures(expander, kind, f, rng);
      table.row({label, opera::exp::Value(f * 100.0, 1),
                 opera::exp::Value(report.worst_slice_connectivity_loss, 4),
                 opera::exp::Value(report.avg_path_length, 2),
                 static_cast<std::int64_t>(report.worst_path_length)});
    }
  }
  ex.report().note(
      "Paper shape: the u=7 expander is the most fault tolerant of the\n"
      "three networks (more links and higher ToR fanout than Opera).");
  return 0;
}

// Ablation bench for the design choices DESIGN.md calls out:
//   (1) the epsilon/drain-window rule (route low-latency traffic off
//       circuits with impending reconfiguration) — paper §4.1
//   (2) RotorLB's two-hop VLB fallback for skewed bulk demand — §4.2.2
//   (3) offset vs synchronized reconfiguration (Opera vs RotorNet) — §3.1.1
#include <algorithm>

#include "exp/experiment.h"

namespace {

using namespace opera;

core::FabricConfig base_config() {
  auto cfg = core::FabricConfig::make(core::FabricKind::kOpera);
  cfg.opera.num_racks = 16;
  cfg.opera.num_switches = 4;
  cfg.opera.hosts_per_rack = 4;
  cfg.opera.seed = 3;
  return cfg;
}

void low_latency_storm(core::Network& net, int flows) {
  sim::Rng rng(17);
  for (int i = 0; i < flows; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(64));
    auto dst = static_cast<std::int32_t>(rng.index(64));
    if (dst == src) dst = (dst + 1) % 64;
    net.submit_flow(src, dst, 50'000, sim::Time::us(15 * i));
  }
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex("Ablation: drain window, VLB, reconfiguration offsetting",
                     argc, argv);

  auto& drain = ex.report().table(
      "drain_window", {"drain_us", "completed", "p50_us", "p99_us"});
  for (const auto window : {0, 10, 30}) {
    auto cfg = base_config();
    cfg.slice.drain_window = sim::Time::us(window);
    const auto net = core::NetworkFactory::build(cfg);
    low_latency_storm(*net, 800);
    net->run_until(sim::Time::ms(40));
    const auto fct = net->tracker().fct_us(0, 1'000'000);
    drain.row({static_cast<std::int64_t>(window),
               static_cast<std::int64_t>(net->tracker().completed()),
               exp::Value(fct.empty() ? 0.0 : fct.percentile(50), 1),
               exp::Value(fct.empty() ? 0.0 : fct.percentile(99), 1)});
  }
  ex.report().note(
      "-> without the rule, packets stranded on reconfiguring circuits\n"
      "   are flushed and recovered only after an RTO: fat tails.");

  auto& vlb_table = ex.report().table("vlb", {"vlb", "completed", "worst_fct_ms"});
  for (const bool vlb : {true, false}) {
    auto cfg = base_config();
    cfg.enable_vlb = vlb;
    const auto net = core::NetworkFactory::build(cfg);
    for (int h = 0; h < 4; ++h) {
      net->submit_flow(h, 4 + h, 30'000'000, sim::Time::zero(),
                       net::TrafficClass::kBulk);
    }
    net->run_until(sim::Time::ms(300));
    double worst = 0.0;
    for (const auto& rec : net->tracker().completions()) {
      worst = std::max(worst, rec.fct().to_ms());
    }
    vlb_table.row({vlb ? "on" : "off",
                   static_cast<std::int64_t>(net->tracker().completed()),
                   exp::Value(net->tracker().completed() > 0 ? worst : -1.0, 1)});
  }
  ex.report().note(
      "-> direct circuits alone give a hot rack pair only (u-1)/N of a\n"
      "   link; VLB recruits the idle capacity of every other rack.");

  auto& offset = ex.report().table(
      "offsetting", {"fabric", "p50_us", "p99_us", "completed"});
  {
    const auto net = core::NetworkFactory::build(base_config());
    low_latency_storm(*net, 200);
    net->run_until(sim::Time::ms(30));
    const auto fct = net->tracker().fct_us(0, 1'000'000);
    offset.row({"Opera (staggered)", exp::Value(fct.percentile(50), 1),
                exp::Value(fct.percentile(99), 1),
                static_cast<std::int64_t>(net->tracker().completed())});
  }
  {
    auto cfg = core::FabricConfig::make(core::FabricKind::kRotorNet);
    cfg.rotornet.num_racks = 16;
    cfg.rotornet.num_switches = 4;
    cfg.rotornet.hybrid = false;
    cfg.rotornet.seed = 3;
    cfg.rotornet_hosts_per_rack = 4;
    const auto net = core::NetworkFactory::build(cfg);
    low_latency_storm(*net, 200);
    net->run_until(sim::Time::ms(60));
    const auto fct = net->tracker().fct_us(0, 1'000'000);
    offset.row({"RotorNet (unison)",
                exp::Value(fct.empty() ? 0.0 : fct.percentile(50), 1),
                exp::Value(fct.empty() ? 0.0 : fct.percentile(99), 1),
                static_cast<std::int64_t>(net->tracker().completed())});
  }
  ex.report().note(
      "-> always-on multi-hop connectivity is what lets Opera carry\n"
      "   latency-sensitive traffic at packet-switched FCTs.");
  return 0;
}

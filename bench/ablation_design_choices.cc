// Ablation bench for the design choices DESIGN.md calls out:
//   (1) the epsilon/drain-window rule (route low-latency traffic off
//       circuits with impending reconfiguration) — paper §4.1
//   (2) RotorLB's two-hop VLB fallback for skewed bulk demand — §4.2.2
//   (3) offset vs synchronized reconfiguration (Opera vs RotorNet) — §3.1.1
#include <cstdio>

#include "bench_common.h"

namespace {
using namespace opera;

core::OperaConfig base_config() {
  core::OperaConfig cfg;
  cfg.topology.num_racks = 16;
  cfg.topology.num_switches = 4;
  cfg.topology.hosts_per_rack = 4;
  cfg.topology.seed = 3;
  return cfg;
}

void low_latency_storm(core::OperaNetwork& net, int flows) {
  sim::Rng rng(17);
  for (int i = 0; i < flows; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(64));
    auto dst = static_cast<std::int32_t>(rng.index(64));
    if (dst == src) dst = (dst + 1) % 64;
    net.submit_flow(src, dst, 50'000, sim::Time::us(15 * i));
  }
}

}  // namespace

int main() {
  bench::banner("Ablation: drain window, VLB, reconfiguration offsetting");

  std::printf("\n(1) epsilon rule: low-latency p99 FCT vs drain window\n");
  for (const auto window : {0, 10, 30}) {
    auto cfg = base_config();
    cfg.slice.drain_window = sim::Time::us(window);
    core::OperaNetwork net(cfg);
    low_latency_storm(net, 800);
    net.run_until(sim::Time::ms(40));
    const auto fct = net.tracker().fct_us(0, 1'000'000);
    std::printf("  drain window %2d us: completed %4zu/800, p50 %8.1f us, "
                "p99 %8.1f us\n",
                window, net.tracker().completed(),
                fct.empty() ? 0.0 : fct.percentile(50),
                fct.empty() ? 0.0 : fct.percentile(99));
  }
  std::printf("  -> without the rule, packets stranded on reconfiguring circuits\n"
              "     are flushed and recovered only after an RTO: fat tails.\n");

  std::printf("\n(2) VLB: hot-rack bulk completion with and without two-hop\n");
  for (const bool vlb : {true, false}) {
    auto cfg = base_config();
    cfg.enable_vlb = vlb;
    core::OperaNetwork net(cfg);
    for (int h = 0; h < 4; ++h) {
      net.submit_flow(h, 4 + h, 30'000'000, sim::Time::zero(),
                      net::TrafficClass::kBulk);
    }
    net.run_until(sim::Time::ms(300));
    double worst = 0.0;
    for (const auto& rec : net.tracker().completions()) {
      worst = std::max(worst, rec.fct().to_ms());
    }
    std::printf("  VLB %-3s: completed %zu/4, worst FCT %.1f ms\n",
                vlb ? "on" : "off", net.tracker().completed(),
                net.tracker().completed() > 0 ? worst : -1.0);
  }
  std::printf("  -> direct circuits alone give a hot rack pair only (u-1)/N of a\n"
              "     link; VLB recruits the idle capacity of every other rack.\n");

  std::printf("\n(3) offsetting: short-flow FCT, Opera vs synchronized RotorNet\n");
  {
    auto cfg = base_config();
    core::OperaNetwork net(cfg);
    low_latency_storm(net, 200);
    net.run_until(sim::Time::ms(30));
    const auto fct = net.tracker().fct_us(0, 1'000'000);
    std::printf("  Opera (staggered) : p50 %8.1f us  p99 %8.1f us\n",
                fct.percentile(50), fct.percentile(99));
  }
  {
    core::RotorNetConfig cfg;
    cfg.structure.num_racks = 16;
    cfg.structure.num_switches = 4;
    cfg.structure.hybrid = false;
    cfg.structure.seed = 3;
    cfg.hosts_per_rack = 4;
    core::RotorNetNetwork net(cfg);
    sim::Rng rng(17);
    for (int i = 0; i < 200; ++i) {
      const auto src = static_cast<std::int32_t>(rng.index(64));
      auto dst = static_cast<std::int32_t>(rng.index(64));
      if (dst == src) dst = (dst + 1) % 64;
      net.submit_flow(src, dst, 50'000, sim::Time::us(15 * i));
    }
    net.run_until(sim::Time::ms(60));
    const auto fct = net.tracker().fct_us(0, 1'000'000);
    std::printf("  RotorNet (unison) : p50 %8.1f us  p99 %8.1f us  "
                "(completed %zu/200)\n",
                fct.empty() ? 0.0 : fct.percentile(50),
                fct.empty() ? 0.0 : fct.percentile(99), net.tracker().completed());
  }
  std::printf("  -> always-on multi-hop connectivity is what lets Opera carry\n"
              "     latency-sensitive traffic at packet-switched FCTs.\n");
  return 0;
}

// Figure 4: CDF of ToR-to-ToR path lengths for the cost-equivalent
// 648-host Opera (108 racks, u=6), 650-host u=7 expander (130 racks), and
// 648-host 3:1 folded Clos (72 ToRs).
#include <vector>

#include "exp/experiment.h"
#include "topo/expander.h"
#include "topo/failures.h"
#include "topo/folded_clos.h"
#include "topo/opera_topology.h"

namespace {

void emit_cdf(opera::exp::Table& table, const char* name,
              const std::vector<std::size_t>& hist) {
  std::size_t total = 0;
  for (const auto c : hist) total += c;
  double cum = 0.0;
  for (std::size_t h = 1; h < hist.size(); ++h) {
    cum += static_cast<double>(hist[h]) / static_cast<double>(total);
    table.row({name, static_cast<std::int64_t>(h), opera::exp::Value(cum, 3)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  opera::exp::Experiment ex("Figure 4: path-length CDF (648-host scale)", argc,
                            argv);
  using namespace opera::topo;

  // Opera: aggregate over all (or sampled) topology slices.
  OperaParams op;
  op.num_racks = 108;
  op.num_switches = 6;
  op.hosts_per_rack = 6;
  op.seed = 1;
  const OperaTopology opera(op);
  std::vector<std::size_t> opera_hist;
  const int step = ex.full() ? 1 : 6;
  double avg_sum = 0.0;
  int slices = 0;
  for (int s = 0; s < opera.num_slices(); s += step) {
    const auto stats = all_pairs_path_stats(opera.slice_graph(s));
    if (stats.hop_histogram.size() > opera_hist.size()) {
      opera_hist.resize(stats.hop_histogram.size(), 0);
    }
    for (std::size_t h = 0; h < stats.hop_histogram.size(); ++h) {
      opera_hist[h] += stats.hop_histogram[h];
    }
    avg_sum += stats.average;
    ++slices;
  }

  // u=7 static expander: 130 racks x 5 hosts = 650 hosts.
  ExpanderParams ep;
  ep.num_tors = 130;
  ep.uplinks = 7;
  ep.hosts_per_tor = 5;
  ep.seed = 1;
  const ExpanderTopology expander(ep);
  const auto exp_stats = all_pairs_path_stats(expander.graph());

  // 3:1 folded Clos, k=12: path lengths between ToRs (2 intra-pod,
  // 4 inter-pod).
  ClosParams cp;
  cp.radix = 12;
  cp.oversubscription = 3;
  const FoldedClos clos(cp);
  std::vector<Vertex> tors;
  for (Vertex t = 0; t < clos.num_tors(); ++t) tors.push_back(t);
  const auto clos_stats = subset_path_stats(clos.switch_graph(), tors);

  auto& cdf = ex.report().table("path_cdf", {"network", "hops", "cum_fraction"});
  emit_cdf(cdf, "Opera (all slices)", opera_hist);
  emit_cdf(cdf, "u=7 expander", exp_stats.hop_histogram);
  emit_cdf(cdf, "3:1 folded Clos", clos_stats.hop_histogram);

  auto& averages = ex.report().table("averages", {"network", "avg_path", "slices"});
  averages.row({"Opera (all slices)", opera::exp::Value(avg_sum / slices, 2),
                static_cast<std::int64_t>(slices)});
  averages.row({"u=7 expander", opera::exp::Value(exp_stats.average, 2), 1});
  averages.row({"3:1 folded Clos", opera::exp::Value(clos_stats.average, 2), 1});
  ex.report().note(
      "Paper shape: Opera only slightly longer than the u=7 expander and "
      "well below the Clos's 4-hop inter-pod mass.");
  return 0;
}

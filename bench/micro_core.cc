// Microbenchmarks (google-benchmark) of the simulation substrate: event
// queue throughput, per-slice routing construction, one-factorization,
// queue operations, and end-to-end simulated-packet rate.
#include <benchmark/benchmark.h>

#include "core/fabric.h"
#include "core/opera_network.h"
#include "net/queue.h"
#include "sim/event_queue.h"
#include "sim/parallel.h"
#include "sim/rng.h"
#include "topo/one_factorization.h"
#include "topo/opera_topology.h"

namespace {

using namespace opera;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    sim::Rng rng(1);
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(sim::Time::ps(static_cast<std::int64_t>(rng.next_u64() % 1'000'000)),
                 [] {});
    }
    while (!q.empty()) q.run_next();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_OneFactorization(benchmark::State& state) {
  const auto n = static_cast<topo::Vertex>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Rng rng(seed++);
    benchmark::DoNotOptimize(topo::random_factorization(n, rng));
  }
}
BENCHMARK(BM_OneFactorization)->Arg(16)->Arg(108);

void BM_SliceRoutes(benchmark::State& state) {
  topo::OperaParams p;
  p.num_racks = static_cast<topo::Vertex>(state.range(0));
  // Keep slices comfortably connected: u=4 at toy scale, u=6 beyond.
  p.num_switches = p.num_racks >= 32 ? 6 : 4;
  p.seed = 1;
  const topo::OperaTopology topo(p);
  int slice = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.slice_routes(slice));
    slice = (slice + 1) % topo.num_slices();
  }
}
BENCHMARK(BM_SliceRoutes)->Arg(16)->Arg(48)->Arg(108);

// All N per-slice tables built through the parallel construction path the
// OperaNetwork constructor uses (sim::parallel_for over slices). Arg(108)
// is the paper scale; Arg(432) is the k=24 / 5184-host scale from the
// ROADMAP — tracked here so the scaling claim has a number attached.
void BM_SliceRoutesParallel(benchmark::State& state) {
  topo::OperaParams p;
  p.num_racks = static_cast<topo::Vertex>(state.range(0));
  p.num_switches = p.num_racks >= 432 ? 12 : 6;
  p.hosts_per_rack = p.num_switches;
  p.seed = 1;
  const topo::OperaTopology topo(p);
  for (auto _ : state) {
    std::vector<topo::EcmpTable> tables(static_cast<std::size_t>(topo.num_slices()));
    sim::parallel_for(tables.size(), [&](std::size_t s) {
      tables[s] = topo.slice_routes(static_cast<int>(s));
    });
    benchmark::DoNotOptimize(tables.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          topo.num_slices());
}
BENCHMARK(BM_SliceRoutesParallel)
    ->Unit(benchmark::kMillisecond)
    ->Arg(108)
    ->Arg(432)
    ->Iterations(1);

// Full k=24 Opera construction (432 racks, 5184 hosts): topology
// generate-and-test, all 432 slice tables, hosts/ToRs/agents. The ROADMAP
// target is single-digit seconds.
void BM_OperaK24Construction(benchmark::State& state) {
  for (auto _ : state) {
    core::FabricConfig cfg = core::FabricConfig::make(core::FabricKind::kOpera);
    cfg.scale(432, 12);
    auto net = core::NetworkFactory::build(cfg);
    benchmark::DoNotOptimize(net->num_hosts());
  }
}
BENCHMARK(BM_OperaK24Construction)->Unit(benchmark::kSecond)->Iterations(1);

void BM_PortQueue(benchmark::State& state) {
  net::PortQueue q;
  for (auto _ : state) {
    auto pkt = net::make_packet();
    pkt->type = net::PacketType::kData;
    pkt->tclass = net::TrafficClass::kLowLatency;
    pkt->size_bytes = 1500;
    benchmark::DoNotOptimize(q.enqueue(std::move(pkt)));
    benchmark::DoNotOptimize(q.dequeue());
  }
}
BENCHMARK(BM_PortQueue);

void BM_OperaEndToEnd(benchmark::State& state) {
  // Simulated-time throughput of the whole stack: a 16-rack Opera network
  // at moderate low-latency load for 5 ms of simulated time.
  for (auto _ : state) {
    core::OperaConfig cfg;
    cfg.topology.num_racks = 16;
    cfg.topology.num_switches = 4;
    cfg.topology.hosts_per_rack = 4;
    cfg.topology.seed = 11;
    core::OperaNetwork net(cfg);
    sim::Rng rng(7);
    for (int i = 0; i < 100; ++i) {
      const auto src = static_cast<std::int32_t>(rng.index(64));
      auto dst = static_cast<std::int32_t>(rng.index(64));
      if (dst == src) dst = (dst + 1) % 64;
      net.submit_flow(src, dst, 20'000,
                      sim::Time::us(static_cast<std::int64_t>(rng.index(1'000))));
    }
    net.run_until(sim::Time::ms(5));
    benchmark::DoNotOptimize(net.tracker().completed());
  }
  state.SetLabel("16 racks, 100 flows, 5 ms simulated");
}
BENCHMARK(BM_OperaEndToEnd)->Unit(benchmark::kMillisecond);

void BM_ShardedOperaEndToEnd(benchmark::State& state) {
  // The fig08-style scaling row: the same end-to-end stack as
  // BM_OperaEndToEnd with the event loop sharded over N rack domains —
  // output is bit-identical across arguments; wall-clock shows the
  // barrier/mailbox cost on this machine (and the speedup, given cores).
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::OperaConfig cfg;
    cfg.topology.num_racks = 16;
    cfg.topology.num_switches = 4;
    cfg.topology.hosts_per_rack = 4;
    cfg.topology.seed = 11;
    cfg.threads = threads;
    core::OperaNetwork net(cfg);
    sim::Rng rng(7);
    for (int i = 0; i < 100; ++i) {
      const auto src = static_cast<std::int32_t>(rng.index(64));
      auto dst = static_cast<std::int32_t>(rng.index(64));
      if (dst == src) dst = (dst + 1) % 64;
      net.submit_flow(src, dst, 20'000,
                      sim::Time::us(static_cast<std::int64_t>(rng.index(1'000))));
    }
    net.run_until(sim::Time::ms(5));
    benchmark::DoNotOptimize(net.tracker().completed());
  }
  state.SetLabel("16 racks, 100 flows, 5 ms simulated, sharded");
}
BENCHMARK(BM_ShardedOperaEndToEnd)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Figure 12: throughput vs relative Opera port cost (alpha) for hot-rack,
// skew[0.2,1], and host-permutation workloads at k=24 (5184 hosts).
//
// Cost-equivalent static networks reinvest the savings: the Clos gets
// F = 4/alpha oversubscription, the expander gets u = alpha*k/(1+alpha)
// uplinks (Appendix A). Opera's configuration is fixed (u = k/2); its cost
// IS alpha, so it appears as a flat line. Throughputs come from the fluid
// models (DESIGN.md substitution); normalized to active-host capacity.
#include <algorithm>

#include "core/cost_model.h"
#include "exp/cost_sweep.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  opera::exp::Experiment ex("Figure 12: throughput vs cost factor alpha (k=24)",
                            argc, argv);
  opera::exp::run_cost_sweep(ex, 24, /*rng_seed=*/17);
  ex.report().note(
      "Paper shape: Opera wins for permutation/moderate skew while alpha <~1.8,\n"
      "ties the expander on hotrack, and delivers ~2x both on all-to-all even\n"
      "at alpha=2. Clos is workload-independent at 1/F.");
  return 0;
}

// Figure 12: throughput vs relative Opera port cost (alpha) for hot-rack,
// skew[0.2,1], and host-permutation workloads at k=24 (5184 hosts).
//
// Cost-equivalent static networks reinvest the savings: the Clos gets
// F = 4/alpha oversubscription, the expander gets u = alpha*k/(1+alpha)
// uplinks (Appendix A). Opera's configuration is fixed (u = k/2); its cost
// IS alpha, so it appears as a flat line. Throughputs come from the fluid
// models (DESIGN.md substitution); normalized to active-host capacity.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/cost_model.h"
#include "fluid/throughput.h"
#include "topo/random_regular.h"

namespace {

constexpr double kRate = 10e9;

struct Workload {
  const char* name;
  opera::fluid::Demand (*make)(int racks, int hosts, unsigned seed);
};

opera::fluid::Demand make_hotrack(int racks, int hosts, unsigned) {
  return opera::fluid::Demand::hotrack(racks, hosts, kRate);
}
opera::fluid::Demand make_skew(int racks, int hosts, unsigned seed) {
  return opera::fluid::Demand::skew(racks, hosts, kRate, 0.2, seed);
}
opera::fluid::Demand make_permutation(int racks, int hosts, unsigned seed) {
  return opera::fluid::Demand::permutation(racks, hosts, kRate, seed);
}
opera::fluid::Demand make_all_to_all(int racks, int hosts, unsigned) {
  return opera::fluid::Demand::all_to_all(racks, hosts, kRate);
}

void run_sweep(int k) {
  using opera::core::CostModel;
  const auto hosts = CostModel::clos_hosts(k, 3.0);
  const int opera_racks = static_cast<int>(CostModel::opera_racks(k));
  const int opera_hosts_per_rack = k / 2;

  const Workload workloads[] = {{"hotrack", make_hotrack},
                                {"skew[0.2,1]", make_skew},
                                {"permutation", make_permutation},
                                {"all-to-all", make_all_to_all}};
  const double alphas[] = {1.0, 1.25, 1.5, 1.75, 2.0};

  for (const auto& wl : workloads) {
    std::printf("\n[%s, k=%d, %lld hosts]\n", wl.name, k,
                static_cast<long long>(hosts));
    std::printf("  %-7s %-12s %-12s %-12s\n", "alpha", "Opera", "expander",
                "folded Clos");

    // Opera is independent of alpha: compute once.
    opera::fluid::RotorModelParams rp;
    rp.num_racks = opera_racks;
    rp.uplinks = k / 2;
    rp.link_rate_bps = kRate;
    rp.active_fraction = static_cast<double>(k / 2 - 1) / (k / 2);
    rp.duty_cycle = 0.9;
    const auto opera_demand = wl.make(opera_racks, opera_hosts_per_rack, 7);
    const double opera_theta =
        std::min(1.0, opera::fluid::rotor_throughput(opera_demand, rp));

    for (const double alpha : alphas) {
      // Expander at this cost point.
      const int u_e = CostModel::expander_uplinks(alpha, k);
      const int d_e = k - u_e;
      const int racks_e = static_cast<int>(hosts / d_e);
      opera::sim::Rng rng(17);
      const auto g = opera::topo::random_regular_graph(racks_e, u_e, rng);
      const auto exp_demand = wl.make(racks_e, d_e, 7);
      const double exp_theta =
          std::min(1.0, opera::fluid::expander_throughput(exp_demand, g, kRate));

      // Clos at this cost point.
      const double f = CostModel::clos_oversubscription(alpha);
      const auto clos_demand = wl.make(opera_racks, opera_hosts_per_rack, 7);
      const double clos_theta = std::min(
          1.0, opera::fluid::clos_throughput(clos_demand, opera_hosts_per_rack,
                                             kRate, f));

      std::printf("  %-7.2f %-12.3f %-12.3f %-12.3f\n", alpha, opera_theta,
                  exp_theta, clos_theta);
    }
  }
  std::printf(
      "\nPaper shape: Opera wins for permutation/moderate skew while alpha <~1.8,\n"
      "ties the expander on hotrack, and delivers ~2x both on all-to-all even\n"
      "at alpha=2. Clos is workload-independent at 1/F.\n");
}

}  // namespace

int main() {
  opera::bench::banner("Figure 12: throughput vs cost factor alpha (k=24)");
  run_sweep(24);
  return 0;
}

// Figure 18: Opera average and worst-case path lengths under link / ToR /
// circuit-switch failures (finite paths only; Fig. 11 reports the
// disconnected pairs).
#include "exp/experiment.h"
#include "topo/failures.h"

int main(int argc, char** argv) {
  opera::exp::Experiment ex(
      "Figure 18: Opera path lengths under failures (108 racks, 6 switches)",
      argc, argv);
  using namespace opera::topo;

  OperaParams p;
  p.num_racks = 108;
  p.num_switches = 6;
  p.seed = 1;
  const OperaTopology topo(p);

  const double fractions[] = {0.01, 0.025, 0.05, 0.10, 0.20, 0.40};
  const struct {
    FailureKind kind;
    const char* label;
  } kinds[] = {{FailureKind::kLink, "links"},
               {FailureKind::kTor, "ToRs"},
               {FailureKind::kCircuitSwitch, "circuit switches"}};

  auto& table = ex.report().table(
      "path_lengths", {"failed_kind", "failed_pct", "avg_path", "worst_path"});
  for (const auto& [kind, label] : kinds) {
    for (const double f : fractions) {
      opera::sim::Rng rng(2000 + static_cast<std::uint64_t>(f * 1000));
      const auto report = analyze_opera_failures(topo, kind, f, rng);
      table.row({label, opera::exp::Value(f * 100.0, 1),
                 opera::exp::Value(report.avg_path_length, 2),
                 static_cast<std::int64_t>(report.worst_path_length)});
    }
  }
  ex.report().note(
      "Paper shape: graceful stretch — average stays near 3.3 hops and the\n"
      "worst case grows only at heavy failure rates.");
  return 0;
}

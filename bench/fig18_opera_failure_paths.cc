// Figure 18: Opera average and worst-case path lengths under link / ToR /
// circuit-switch failures (finite paths only; Fig. 11 reports the
// disconnected pairs).
#include <cstdio>

#include "bench_common.h"
#include "topo/failures.h"

int main() {
  opera::bench::banner(
      "Figure 18: Opera path lengths under failures (108 racks, 6 switches)");
  using namespace opera::topo;

  OperaParams p;
  p.num_racks = 108;
  p.num_switches = 6;
  p.seed = 1;
  const OperaTopology topo(p);

  const double fractions[] = {0.01, 0.025, 0.05, 0.10, 0.20, 0.40};
  const struct {
    FailureKind kind;
    const char* label;
  } kinds[] = {{FailureKind::kLink, "links"},
               {FailureKind::kTor, "ToRs"},
               {FailureKind::kCircuitSwitch, "circuit switches"}};

  for (const auto& [kind, label] : kinds) {
    std::printf("\nFailed %-16s  avg path (hops)   worst path (hops)\n", label);
    for (const double f : fractions) {
      opera::sim::Rng rng(2000 + static_cast<std::uint64_t>(f * 1000));
      const auto report = analyze_opera_failures(topo, kind, f, rng);
      std::printf("  %5.1f%%             %6.2f            %3d\n", f * 100.0,
                  report.avg_path_length, report.worst_path_length);
    }
  }
  std::printf("\nPaper shape: graceful stretch — average stays near 3.3 hops and the\n"
              "worst case grows only at heavy failure rates.\n");
  return 0;
}

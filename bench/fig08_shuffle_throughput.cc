// Figure 8: delivered network throughput over time for a 100 KB all-to-all
// shuffle (Hadoop median inter-rack flow size), with application-tagged
// bulk traffic. Opera carries all of it over direct circuits; the static
// networks pay oversubscription (Clos) or the multi-hop bandwidth tax
// (expander).
#include <optional>

#include "exp/experiment.h"
#include "sim/stats.h"

int main(int argc, char** argv) {
  using namespace opera;
  exp::Experiment ex("Figure 8: 100KB all-to-all shuffle throughput over time",
                     argc, argv);
  const auto tb = exp::Testbed::select(ex.full());
  const auto horizon = ex.full() ? sim::Time::ms(300) : sim::Time::ms(60);
  const auto bin = sim::Time::ms(2);
  sim::Rng wl_rng(12);

  struct Spec {
    const char* label;
    core::FabricConfig cfg;
    std::optional<net::TrafficClass> force;  // Opera: application-tagged bulk
    sim::Time stagger;                       // static nets: startup effects
    int hosts_per_rack;                      // shuffle locality granularity
  };
  const Spec specs[] = {
      {"Opera (direct circuits)", tb.opera(), net::TrafficClass::kBulk,
       sim::Time::zero(), tb.hosts_per_rack},
      {"3:1 folded Clos", tb.clos(), std::nullopt, sim::Time::ms(10),
       tb.clos().clos.hosts_per_tor()},
      {"u-expander", tb.expander(), std::nullopt, sim::Time::ms(10),
       tb.expander_hosts_per_tor},
  };

  auto& series_table =
      ex.report().table("series", {"fabric", "bin", "delivered_fraction"});
  auto& summary = ex.report().table(
      "summary", {"fabric", "flows", "completed", "fct_p50_ms", "fct_p99_ms"});

  for (const auto& spec : specs) {
    const int hosts = spec.cfg.num_hosts();
    const auto flows = workload::shuffle_workload(hosts, spec.hosts_per_rack,
                                                  100'000, spec.stagger, wl_rng);
    sim::ThroughputSeries ts(bin);
    exp::Experiment::RunOptions opts;
    opts.horizon = horizon;
    opts.force_class = spec.force;
    opts.setup = [&ts](core::Network& net) {
      net.tracker().set_delivery_hook(
          [&ts](const transport::Flow&, std::int64_t bytes, sim::Time at) {
            ts.record(at, bytes);
          });
    };
    const auto result = ex.run(spec.label, spec.cfg, flows, opts);

    const double capacity = hosts * 10e9;
    const auto series = ts.series();
    for (std::size_t i = 0; i < series.size() && i < 30; ++i) {
      series_table.row({spec.label, static_cast<std::int64_t>(i),
                        exp::Value(series[i].bits_per_second / capacity, 2)});
    }
    const auto& tracker = result.net->tracker();
    const auto fct = tracker.fct_us(0, 1LL << 62);
    if (fct.empty()) {
      summary.row({spec.label, flows.size(), tracker.completed(), "-", "-"});
    } else {
      summary.row({spec.label, flows.size(), tracker.completed(),
                   exp::Value(fct.percentile(50) / 1000.0, 1),
                   exp::Value(fct.percentile(99) / 1000.0, 1)});
    }
  }
  ex.report().note(
      "Paper shape: Opera sustains much higher delivered bandwidth and\n"
      "finishes the shuffle ~4x sooner (60 ms vs ~225 ms at paper scale).");
  return 0;
}

// Figure 8: delivered network throughput over time for a 100 KB all-to-all
// shuffle (Hadoop median inter-rack flow size), with application-tagged
// bulk traffic. Opera carries all of it over direct circuits; the static
// networks pay oversubscription (Clos) or the multi-hop bandwidth tax
// (expander).
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace opera;

void print_series(const char* name, const sim::ThroughputSeries& ts,
                  double capacity_bps, std::size_t flows,
                  const transport::FlowTracker& tracker) {
  std::printf("\n[%s] delivered fraction of aggregate host bandwidth per 2 ms bin\n  ",
              name);
  const auto series = ts.series();
  for (std::size_t i = 0; i < series.size() && i < 30; ++i) {
    std::printf("%.2f ", series[i].bits_per_second / capacity_bps);
  }
  std::printf("\n  flows completed: %zu/%zu", tracker.completed(), flows);
  if (tracker.completed() > 0) {
    auto fct = tracker.fct_us(0, 1LL << 62);
    std::printf("   FCT p50=%.1fms p99=%.1fms", fct.percentile(50) / 1000.0,
                fct.percentile(99) / 1000.0);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::banner("Figure 8: 100KB all-to-all shuffle throughput over time");
  const int racks = full ? 108 : 16;
  const int switches = full ? 6 : 4;
  const int hosts_per_rack = full ? 6 : 4;
  const int num_hosts = racks * hosts_per_rack;
  const double capacity = num_hosts * 10e9;
  const auto horizon = full ? sim::Time::ms(300) : sim::Time::ms(60);
  const auto bin = sim::Time::ms(2);
  sim::Rng wl_rng(12);

  {  // Opera: flows tagged bulk, simultaneous start (RotorLB handles it).
    const auto flows = workload::shuffle_workload(num_hosts, hosts_per_rack, 100'000,
                                                  sim::Time::zero(), wl_rng);
    core::OperaConfig cfg;
    cfg.topology.num_racks = racks;
    cfg.topology.num_switches = switches;
    cfg.topology.hosts_per_rack = hosts_per_rack;
    cfg.topology.seed = 3;
    core::OperaNetwork net(cfg);
    sim::ThroughputSeries ts(bin);
    net.tracker().set_delivery_hook(
        [&](const transport::Flow&, std::int64_t bytes, sim::Time at) {
          ts.record(at, bytes);
        });
    for (const auto& f : flows) {
      net.submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start,
                      net::TrafficClass::kBulk);  // application-tagged
    }
    net.run_until(horizon);
    print_series("Opera (direct circuits)", ts, capacity, flows.size(), net.tracker());
  }
  {  // 3:1 Clos, arrivals staggered over 10 ms (paper: startup effects).
    core::ClosNetConfig cfg;
    cfg.structure.radix = full ? 12 : 8;
    cfg.structure.oversubscription = 3;
    cfg.structure.num_pods = full ? 12 : 4;
    core::ClosNetwork net(cfg);
    const auto flows = workload::shuffle_workload(
        net.num_hosts(), cfg.structure.hosts_per_tor(), 100'000, sim::Time::ms(10),
        wl_rng);
    sim::ThroughputSeries ts(bin);
    net.tracker().set_delivery_hook(
        [&](const transport::Flow&, std::int64_t bytes, sim::Time at) {
          ts.record(at, bytes);
        });
    bench::submit_all(net, flows);
    net.run_until(horizon);
    print_series("3:1 folded Clos", ts, net.num_hosts() * 10e9, flows.size(),
                 net.tracker());
  }
  {  // static expander, staggered arrivals.
    core::ExpanderNetConfig cfg;
    cfg.structure.num_tors = full ? 130 : 20;
    cfg.structure.uplinks = full ? 7 : 5;
    cfg.structure.hosts_per_tor = full ? 5 : 3;
    cfg.structure.seed = 3;
    core::ExpanderNetwork net(cfg);
    const auto flows = workload::shuffle_workload(
        net.num_hosts(), cfg.structure.hosts_per_tor, 100'000, sim::Time::ms(10),
        wl_rng);
    sim::ThroughputSeries ts(bin);
    net.tracker().set_delivery_hook(
        [&](const transport::Flow&, std::int64_t bytes, sim::Time at) {
          ts.record(at, bytes);
        });
    bench::submit_all(net, flows);
    net.run_until(horizon);
    print_series("u-expander", ts, net.num_hosts() * 10e9, flows.size(),
                 net.tracker());
  }
  std::printf("\nPaper shape: Opera sustains much higher delivered bandwidth and\n"
              "finishes the shuffle ~4x sooner (60 ms vs ~225 ms at paper scale).\n");
  return 0;
}

// Figure 10: aggregate network throughput vs Websearch (low-latency) load
// for a combined Websearch + all-to-all shuffle workload, on
// cost-equivalent 648-host networks.
//
// Capacity model (DESIGN.md substitution for the paper's htsim runs):
//  * Opera: low-latency bytes ride the expander plane and pay the average
//    path length; the remaining rotor capacity carries shuffle tax-free.
//  * expander: both classes pay the expander's average path length over
//    u=7 uplinks.
//  * Clos: capacity is the oversubscribed uplink bandwidth, path tax-free.
// Throughput is normalized to aggregate host bandwidth; Websearch load is
// admitted up to each network's low-latency limit.
#include <algorithm>

#include "exp/experiment.h"
#include "topo/expander.h"
#include "topo/opera_topology.h"

namespace {

struct NetParams {
  double capacity;  // usable aggregate uplink bits/sec per host bit
  double ll_tax;    // path length multiplier for low-latency bytes
  double bulk_tax;  // path length multiplier for bulk bytes
};

double mixed_throughput(const NetParams& net, double ws_load) {
  // Admit websearch first (priority-queued), up to capacity.
  const double ws = std::min(ws_load, net.capacity / net.ll_tax);
  const double remaining = net.capacity - ws * net.ll_tax;
  const double shuffle = std::max(0.0, remaining / net.bulk_tax);
  return std::min(1.0, ws + shuffle);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opera;
  exp::Experiment ex(
      "Figure 10: throughput vs Websearch load (Websearch + shuffle mix)", argc,
      argv);
  using namespace opera::topo;

  // Opera: u=6, one switch reconfiguring, 90% duty -> capacity in units of
  // host bandwidth (d=6): (u-1)/d * duty.
  OperaParams op;
  op.num_racks = 108;
  op.num_switches = 6;
  op.seed = 1;
  const OperaTopology opera_topo(op);
  const double opera_avg_path = all_pairs_path_stats(opera_topo.slice_graph(2)).average;
  const NetParams opera_net{(6.0 - 1.0) / 6.0 * 0.9, opera_avg_path, 1.0};

  // u=7 expander: capacity u/d, all traffic pays avg path length.
  ExpanderParams ep;
  ep.num_tors = 130;
  ep.uplinks = 7;
  ep.hosts_per_tor = 5;
  ep.seed = 1;
  const ExpanderTopology expander(ep);
  const double exp_avg_path = all_pairs_path_stats(expander.graph()).average;
  const NetParams exp_net{7.0 / 5.0, exp_avg_path, exp_avg_path};

  // 3:1 folded Clos: 1/3 of host bandwidth, no path tax.
  const NetParams clos_net{1.0 / 3.0, 1.0, 1.0};

  auto& table = ex.report().table(
      "throughput", {"websearch_load", "opera", "u7_expander", "clos_3_1"});
  for (const double w : {0.01, 0.025, 0.05, 0.10, 0.20, 0.40}) {
    table.row({exp::Value(w, 3), exp::Value(mixed_throughput(opera_net, w), 3),
               exp::Value(mixed_throughput(exp_net, w), 3),
               exp::Value(mixed_throughput(clos_net, w), 3)});
  }
  ex.report().note(
      "Paper shape: Opera delivers up to ~4x the static networks at low\n"
      "Websearch load and ~2x near its 10%% low-latency admission limit\n"
      "(Opera avg path %.2f hops; expander %.2f hops).",
      opera_avg_path, exp_avg_path);
  return 0;
}

// Figure 17 (Appendix D): spectral gap vs average/worst path length for
// Opera's topology slices and for static expanders with u=5..8, all at
// k=12 ToRs and ~650 hosts.
#include <cstdio>

#include "bench_common.h"
#include "topo/opera_topology.h"
#include "topo/random_regular.h"
#include "topo/spectral.h"

int main(int argc, char** argv) {
  const bool full = opera::bench::has_flag(argc, argv, "--full");
  opera::bench::banner("Figure 17: spectral gap vs path length (k=12, ~650 hosts)");
  using namespace opera::topo;

  // Static expanders: u uplinks, d = 12-u hosts/ToR, racks ~ 648/d.
  std::printf("%-22s %-8s %-12s %-10s %-10s\n", "network", "racks", "spectral gap",
              "avg path", "worst path");
  for (const int u : {5, 6, 7, 8}) {
    const int d = 12 - u;
    const auto racks = static_cast<Vertex>((648 + d - 1) / d);
    opera::sim::Rng rng(100 + static_cast<std::uint64_t>(u));
    const Graph g = random_regular_graph(racks, u, rng);
    const auto info = spectral_info(g);
    const auto stats = all_pairs_path_stats(g);
    std::printf("static u=%d            %-8d %-12.2f %-10.2f %-10d\n", u, racks,
                info.gap, stats.average, static_cast<int>(stats.worst));
  }

  // Opera: one data point per topology slice (sampled unless --full).
  OperaParams p;
  p.num_racks = 108;
  p.num_switches = 6;
  p.seed = 1;
  const OperaTopology topo(p);
  const int step = full ? 1 : 9;
  double gap_min = 1e9;
  double gap_max = 0.0;
  double gap_sum = 0.0;
  double avg_sum = 0.0;
  int worst_max = 0;
  int count = 0;
  for (int s = 0; s < topo.num_slices(); s += step) {
    const Graph g = topo.slice_graph(s);
    const auto info = spectral_info(g);
    const auto stats = all_pairs_path_stats(g);
    gap_min = std::min(gap_min, info.gap);
    gap_max = std::max(gap_max, info.gap);
    gap_sum += info.gap;
    avg_sum += stats.average;
    worst_max = std::max(worst_max, static_cast<int>(stats.worst));
    ++count;
  }
  std::printf("Opera slices (n=%d)    %-8d gap %.2f..%.2f (mean %.2f)  avg path %.2f"
              "  worst %d\n",
              count, 108, gap_min, gap_max, gap_sum / count, avg_sum / count,
              worst_max);
  std::printf("\nPaper shape: path length is not a strong function of spectral gap;\n"
              "Opera's slices sit near the best achievable average path length\n"
              "despite the disjoint-matching constraint (Appendix D).\n");
  return 0;
}

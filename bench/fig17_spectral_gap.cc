// Figure 17 (Appendix D): spectral gap vs average/worst path length for
// Opera's topology slices and for static expanders with u=5..8, all at
// k=12 ToRs and ~650 hosts.
#include <algorithm>
#include <cstdio>

#include "exp/experiment.h"
#include "topo/opera_topology.h"
#include "topo/random_regular.h"
#include "topo/spectral.h"

int main(int argc, char** argv) {
  opera::exp::Experiment ex(
      "Figure 17: spectral gap vs path length (k=12, ~650 hosts)", argc, argv);
  using namespace opera::topo;

  // Static expanders: u uplinks, d = 12-u hosts/ToR, racks ~ 648/d.
  auto& table = ex.report().table(
      "spectral", {"network", "racks", "spectral_gap", "avg_path", "worst_path"});
  for (const int u : {5, 6, 7, 8}) {
    const int d = 12 - u;
    const auto racks = static_cast<Vertex>((648 + d - 1) / d);
    opera::sim::Rng rng(100 + static_cast<std::uint64_t>(u));
    const Graph g = random_regular_graph(racks, u, rng);
    const auto info = spectral_info(g);
    const auto stats = all_pairs_path_stats(g);
    char name[24];
    std::snprintf(name, sizeof name, "static u=%d", u);
    table.row({name, static_cast<std::int64_t>(racks),
               opera::exp::Value(info.gap, 2), opera::exp::Value(stats.average, 2),
               static_cast<std::int64_t>(stats.worst)});
  }

  // Opera: one data point per topology slice (sampled unless --full).
  OperaParams p;
  p.num_racks = 108;
  p.num_switches = 6;
  p.seed = 1;
  const OperaTopology topo(p);
  const int step = ex.full() ? 1 : 9;
  double gap_min = 1e9;
  double gap_max = 0.0;
  double gap_sum = 0.0;
  double avg_sum = 0.0;
  int worst_max = 0;
  int count = 0;
  for (int s = 0; s < topo.num_slices(); s += step) {
    const Graph g = topo.slice_graph(s);
    const auto info = spectral_info(g);
    const auto stats = all_pairs_path_stats(g);
    gap_min = std::min(gap_min, info.gap);
    gap_max = std::max(gap_max, info.gap);
    gap_sum += info.gap;
    avg_sum += stats.average;
    worst_max = std::max(worst_max, static_cast<int>(stats.worst));
    ++count;
  }
  auto& opera_table = ex.report().table(
      "opera_slices",
      {"slices", "racks", "gap_min", "gap_max", "gap_mean", "avg_path", "worst_path"});
  opera_table.row({static_cast<std::int64_t>(count), 108,
                   opera::exp::Value(gap_min, 2), opera::exp::Value(gap_max, 2),
                   opera::exp::Value(gap_sum / count, 2),
                   opera::exp::Value(avg_sum / count, 2),
                   static_cast<std::int64_t>(worst_max)});
  ex.report().note(
      "Paper shape: path length is not a strong function of spectral gap;\n"
      "Opera's slices sit near the best achievable average path length\n"
      "despite the disjoint-matching constraint (Appendix D).");
  return 0;
}

// Shared helpers for the per-figure/table bench binaries.
//
// Every binary prints the same rows/series the paper reports. Default
// arguments are scaled to finish quickly on a laptop; pass --full for
// paper-scale runs where supported.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/clos_network.h"
#include "core/expander_network.h"
#include "core/opera_network.h"
#include "core/rotornet_network.h"
#include "workload/synthetic.h"

namespace opera::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline void banner(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

// Flow-size buckets used for FCT-vs-size rows (log-spaced like the paper's
// x axes).
struct SizeBucket {
  std::int64_t lo;
  std::int64_t hi;
  const char* label;
};

inline std::vector<SizeBucket> fct_buckets() {
  return {
      {0, 10'000, "<10KB"},
      {10'000, 100'000, "10KB-100KB"},
      {100'000, 1'000'000, "100KB-1MB"},
      {1'000'000, 15'000'000, "1MB-15MB"},
      {15'000'000, 1LL << 62, ">=15MB (bulk)"},
  };
}

// Prints one FCT row set from a tracker: per bucket, count / p50 / p99 (us).
inline void print_fct_rows(const transport::FlowTracker& tracker, const char* net,
                           double load_percent) {
  for (const auto& bucket : fct_buckets()) {
    const auto fct = tracker.fct_us(bucket.lo, bucket.hi);
    if (fct.empty()) {
      std::printf("%-10s load=%4.0f%%  %-14s  flows=%6zu  (no completions)\n", net,
                  load_percent, bucket.label, fct.count());
      continue;
    }
    std::printf(
        "%-10s load=%4.0f%%  %-14s  flows=%6zu  p50=%10.1fus  p99=%10.1fus\n", net,
        load_percent, bucket.label, fct.count(), fct.percentile(50),
        fct.percentile(99));
  }
}

// Submits a FlowSpec list to any network with submit_flow().
template <typename Network>
void submit_all(Network& net, const std::vector<workload::FlowSpec>& flows) {
  for (const auto& f : flows) {
    net.submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
}

}  // namespace opera::bench

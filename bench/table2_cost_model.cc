// Table 2: per-port cost of a static network vs Opera, and the resulting
// default cost factor alpha ~ 1.3 (Appendix A).
#include "core/cost_model.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  opera::exp::Experiment ex("Table 2: cost per port (static vs Opera)", argc, argv);
  opera::core::PortCostBreakdown c;
  using opera::exp::Value;

  auto& table = ex.report().table("cost", {"component", "static_usd", "opera_usd"});
  table.row({"SR transceiver", Value(c.sr_transceiver, 0), Value(c.sr_transceiver, 0)});
  table.row({"Optical fiber ($0.3/m)", Value(c.optical_fiber, 0),
             Value(c.optical_fiber, 0)});
  table.row({"ToR port", Value(c.tor_port, 0), Value(c.tor_port, 0)});
  table.row({"Optical fiber array", "-", Value(c.fiber_array, 0)});
  table.row({"Optical lenses", "-", Value(c.optical_lenses, 0)});
  table.row({"Beam-steering element", "-", Value(c.beam_steering, 0)});
  table.row({"Optical mapping", "-", Value(c.optical_mapping, 0)});
  table.row({"Total", Value(c.static_port(), 0), Value(c.opera_port(), 0)});
  table.row({"alpha ratio", Value(1.0, 2), Value(c.alpha(), 2)});

  using opera::core::CostModel;
  auto& derived = ex.report().table(
      "cost_equivalent", {"alpha", "clos_oversubscription", "expander_uplinks_k12"});
  for (const double alpha : {1.0, 4.0 / 3.0, 1.4, 2.0}) {
    derived.row({Value(alpha, 2), Value(CostModel::clos_oversubscription(alpha), 1),
                 static_cast<std::int64_t>(CostModel::expander_uplinks(alpha, 12))});
  }
  ex.report().note(
      "Paper: Opera port ~$275 vs static ~$215 -> alpha ~ 1.3 (rotor\n"
      "components amortized over 512-port switches).");
  return 0;
}

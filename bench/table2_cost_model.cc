// Table 2: per-port cost of a static network vs Opera, and the resulting
// default cost factor alpha ~ 1.3 (Appendix A).
#include <cstdio>

#include "bench_common.h"
#include "core/cost_model.h"

int main() {
  opera::bench::banner("Table 2: cost per port (static vs Opera)");
  opera::core::PortCostBreakdown c;

  std::printf("%-26s %-10s %-10s\n", "Component", "Static", "Opera");
  std::printf("%-26s $%-9.0f $%-9.0f\n", "SR transceiver", c.sr_transceiver,
              c.sr_transceiver);
  std::printf("%-26s $%-9.0f $%-9.0f\n", "Optical fiber ($0.3/m)", c.optical_fiber,
              c.optical_fiber);
  std::printf("%-26s $%-9.0f $%-9.0f\n", "ToR port", c.tor_port, c.tor_port);
  std::printf("%-26s %-10s $%-9.0f\n", "Optical fiber array", "-", c.fiber_array);
  std::printf("%-26s %-10s $%-9.0f\n", "Optical lenses", "-", c.optical_lenses);
  std::printf("%-26s %-10s $%-9.0f\n", "Beam-steering element", "-", c.beam_steering);
  std::printf("%-26s %-10s $%-9.0f\n", "Optical mapping", "-", c.optical_mapping);
  std::printf("%-26s $%-9.0f $%-9.0f\n", "Total", c.static_port(), c.opera_port());
  std::printf("%-26s %-10.2f %-10.2f\n", "alpha ratio", 1.0, c.alpha());

  std::printf("\nDerived cost-equivalent configurations:\n");
  using opera::core::CostModel;
  for (const double alpha : {1.0, 4.0 / 3.0, 1.4, 2.0}) {
    std::printf("  alpha=%.2f: Clos F=%.1f:1, expander u=%d (k=12)\n", alpha,
                CostModel::clos_oversubscription(alpha),
                CostModel::expander_uplinks(alpha, 12));
  }
  std::printf("\nPaper: Opera port ~$275 vs static ~$215 -> alpha ~ 1.3 (rotor\n"
              "components amortized over 512-port switches).\n");
  return 0;
}

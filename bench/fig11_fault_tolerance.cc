// Figure 11: Opera connectivity loss under random link / ToR / circuit-
// switch failures (648-host network: 108 racks, 6 rotor switches, k=12).
#include "exp/experiment.h"
#include "topo/failures.h"

int main(int argc, char** argv) {
  opera::exp::Experiment ex(
      "Figure 11: Opera fault tolerance (108 racks, 6 switches)", argc, argv);
  using namespace opera::topo;

  OperaParams p;
  p.num_racks = 108;
  p.num_switches = 6;
  p.hosts_per_rack = 6;
  p.seed = 1;
  const OperaTopology topo(p);

  const double fractions[] = {0.01, 0.025, 0.05, 0.10, 0.20, 0.40};
  const int trials = ex.full() ? 5 : 1;

  const struct {
    FailureKind kind;
    const char* label;
  } kinds[] = {{FailureKind::kLink, "links"},
               {FailureKind::kTor, "ToRs"},
               {FailureKind::kCircuitSwitch, "circuit switches"}};

  auto& table = ex.report().table(
      "connectivity_loss",
      {"failed_kind", "failed_pct", "worst_slice_loss", "all_slices_loss"});
  for (const auto& [kind, label] : kinds) {
    for (const double f : fractions) {
      double worst = 0.0;
      double any = 0.0;
      for (int t = 0; t < trials; ++t) {
        opera::sim::Rng rng(1000 + static_cast<std::uint64_t>(f * 1000) + t);
        const auto report = analyze_opera_failures(topo, kind, f, rng);
        worst += report.worst_slice_connectivity_loss;
        any += report.any_slice_connectivity_loss;
      }
      table.row({label, opera::exp::Value(f * 100.0, 1),
                 opera::exp::Value(worst / trials, 4),
                 opera::exp::Value(any / trials, 4)});
    }
  }
  ex.report().note(
      "Paper shape: no connectivity loss up to ~4%% links, ~7%% ToRs, or 2/6\n"
      "circuit switches failed; loss grows slowly beyond that (expander\n"
      "fault tolerance).");
  return 0;
}

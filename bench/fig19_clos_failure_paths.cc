// Figure 19: folded-Clos connectivity loss and path lengths under link and
// switch failures (648-host 3:1 Clos, k=12).
#include "exp/experiment.h"
#include "topo/failures.h"

int main(int argc, char** argv) {
  opera::exp::Experiment ex("Figure 19: 3:1 folded-Clos under failures (648 hosts)",
                            argc, argv);
  using namespace opera::topo;

  ClosParams p;
  p.radix = 12;
  p.oversubscription = 3;
  const FoldedClos clos(p);

  const double fractions[] = {0.01, 0.025, 0.05, 0.10, 0.20, 0.40};
  const struct {
    FailureKind kind;
    const char* label;
  } kinds[] = {{FailureKind::kLink, "links"},
               {FailureKind::kCircuitSwitch, "switches (agg+core)"}};

  auto& table = ex.report().table(
      "failures",
      {"failed_kind", "failed_pct", "conn_loss", "avg_path", "worst_path"});
  for (const auto& [kind, label] : kinds) {
    for (const double f : fractions) {
      opera::sim::Rng rng(3000 + static_cast<std::uint64_t>(f * 1000));
      const auto report = analyze_clos_failures(clos, kind, f, rng);
      table.row({label, opera::exp::Value(f * 100.0, 1),
                 opera::exp::Value(report.worst_slice_connectivity_loss, 4),
                 opera::exp::Value(report.avg_path_length, 2),
                 static_cast<std::int64_t>(report.worst_path_length)});
    }
  }
  ex.report().note(
      "Paper shape: the 3:1 Clos loses ToR-pair connectivity sooner than\n"
      "Opera (ToRs have only 3 uplinks) and paths stay at 2/4 hops.");
  return 0;
}

// Figure 19: folded-Clos connectivity loss and path lengths under link and
// switch failures (648-host 3:1 Clos, k=12).
#include <cstdio>

#include "bench_common.h"
#include "topo/failures.h"

int main() {
  opera::bench::banner("Figure 19: 3:1 folded-Clos under failures (648 hosts)");
  using namespace opera::topo;

  ClosParams p;
  p.radix = 12;
  p.oversubscription = 3;
  const FoldedClos clos(p);

  const double fractions[] = {0.01, 0.025, 0.05, 0.10, 0.20, 0.40};
  const struct {
    FailureKind kind;
    const char* label;
  } kinds[] = {{FailureKind::kLink, "links"},
               {FailureKind::kCircuitSwitch, "switches (agg+core)"}};

  for (const auto& [kind, label] : kinds) {
    std::printf("\nFailed %-20s  conn. loss   avg path   worst path\n", label);
    for (const double f : fractions) {
      opera::sim::Rng rng(3000 + static_cast<std::uint64_t>(f * 1000));
      const auto report = analyze_clos_failures(clos, kind, f, rng);
      std::printf("  %5.1f%%                 %8.4f    %6.2f      %3d\n", f * 100.0,
                  report.worst_slice_connectivity_loss, report.avg_path_length,
                  report.worst_path_length);
    }
  }
  std::printf("\nPaper shape: the 3:1 Clos loses ToR-pair connectivity sooner than\n"
              "Opera (ToRs have only 3 uplinks) and paths stay at 2/4 hops.\n");
  return 0;
}

// Figure 16 (Appendix C): average ToR-to-ToR path length vs ToR radix for
// Opera and for cost-equivalent expanders at alpha in {1, 1.4, 2, 3}.
//
// Host counts follow H = 3(k/2)^3 (3:1-normalized Clos). For large N,
// Opera slice path lengths are measured on sampled slice graphs: a slice
// is a union of u-1 disjoint random matchings, generated directly rather
// than via a full N-matching factorization (statistically identical, and
// O(N u) instead of O(N^3)).
#include <span>

#include "core/cost_model.h"
#include "exp/experiment.h"
#include "topo/one_factorization.h"
#include "topo/random_regular.h"

namespace {

// Average path length over a sampled Opera-like slice: union of `count`
// random pairwise-disjoint perfect matchings on n racks.
double opera_slice_avg_path(opera::topo::Vertex n, int count, opera::sim::Rng& rng,
                            int samples) {
  using namespace opera::topo;
  double sum = 0.0;
  for (int s = 0; s < samples; ++s) {
    // random_regular_graph builds exactly a union of disjoint matchings.
    const Graph g = random_regular_graph(n, count, rng);
    sum += all_pairs_path_stats(g).average;
  }
  return sum / samples;
}

}  // namespace

int main(int argc, char** argv) {
  opera::exp::Experiment ex("Figure 16: average path length vs ToR radix", argc,
                            argv);
  using opera::core::CostModel;

  const int radices_quick[] = {12, 24, 36};
  const int radices_full[] = {12, 24, 36, 48};
  const auto radices = ex.full() ? std::span<const int>(radices_full)
                                 : std::span<const int>(radices_quick);
  const double alphas[] = {1.0, 1.4, 2.0, 3.0};

  auto& table = ex.report().table(
      "avg_path",
      {"k", "hosts", "opera", "exp_a1.0", "exp_a1.4", "exp_a2.0", "exp_a3.0"});
  for (const int k : radices) {
    const auto hosts = CostModel::clos_hosts(k, 3.0);
    const auto opera_racks = static_cast<opera::topo::Vertex>(CostModel::opera_racks(k));
    opera::sim::Rng rng(5);
    const double opera_avg =
        opera_slice_avg_path(opera_racks, k / 2 - 1, rng, ex.full() ? 3 : 1);
    std::vector<opera::exp::Value> row = {static_cast<std::int64_t>(k),
                                          static_cast<std::int64_t>(hosts),
                                          opera::exp::Value(opera_avg, 2)};
    for (const double a : alphas) {
      const int u_e = CostModel::expander_uplinks(a, k);
      const auto racks_e = static_cast<opera::topo::Vertex>(hosts / (k - u_e));
      const auto g = opera::topo::random_regular_graph(racks_e, u_e, rng);
      row.emplace_back(opera::topo::all_pairs_path_stats(g).average, 2);
    }
    table.row(std::move(row));
  }
  ex.report().note(
      "Paper shape: averages converge toward ~3 hops at scale and Opera\n"
      "tracks the alpha=1 expander closely (Fig. 16's curves).");
  return 0;
}

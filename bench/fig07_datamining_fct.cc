// Figure 7: FCT vs flow size for the Datamining workload on four
// cost-comparable networks: 3:1 folded Clos, u=7-equivalent expander,
// RotorNet (hybrid + non-hybrid), and Opera.
//
// Default is a scaled-down testbed (16 racks x 4 hosts, short horizon) so
// the bench completes in seconds; --full runs closer to paper scale.
// Flow sizes above the truncation cap are clipped so bulk flows can finish
// within the horizon; the per-bucket FCT trends (who serves short flows
// fast, who sustains load) are what carry over.
#include <cstdio>

#include "bench_common.h"
#include "workload/flow_size_dist.h"

namespace {

using namespace opera;

struct Scale {
  int racks;
  int switches;
  int hosts_per_rack;
  sim::Time horizon;
  std::int64_t size_cap;
  std::vector<double> loads;
};

std::vector<workload::FlowSpec> make_flows(const Scale& sc, double load,
                                           std::uint64_t seed) {
  const auto dist = workload::FlowSizeDistribution::datamining();
  sim::Rng rng(seed);
  auto flows = workload::poisson_workload(dist, sc.racks * sc.hosts_per_rack, load,
                                          10e9, sc.horizon / 2, rng);
  for (auto& f : flows) f.size_bytes = std::min(f.size_bytes, sc.size_cap);
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::banner("Figure 7: Datamining FCTs (p50/p99 by flow size)");
  Scale sc = full ? Scale{108, 6, 6, sim::Time::ms(200), 400'000'000, {0.01, 0.10, 0.25}}
                  : Scale{16, 4, 4, sim::Time::ms(60), 40'000'000, {0.01, 0.10}};
  std::printf("testbed: %d racks x %d hosts, horizon %s, sizes capped at %lld MB\n\n",
              sc.racks, sc.hosts_per_rack, sc.horizon.to_string().c_str(),
              static_cast<long long>(sc.size_cap / 1'000'000));

  for (const double load : sc.loads) {
    const auto flows = make_flows(sc, load, 777);

    {  // Opera
      core::OperaConfig cfg;
      cfg.topology.num_racks = sc.racks;
      cfg.topology.num_switches = sc.switches;
      cfg.topology.hosts_per_rack = sc.hosts_per_rack;
      cfg.topology.seed = 3;
      core::OperaNetwork net(cfg);
      bench::submit_all(net, flows);
      net.run_until(sc.horizon);
      bench::print_fct_rows(net.tracker(), "Opera", load * 100);
    }
    {  // 3:1 folded Clos (cost-equivalent)
      core::ClosNetConfig cfg;
      cfg.structure.radix = full ? 12 : 8;
      cfg.structure.oversubscription = 3;
      cfg.structure.num_pods = full ? 12 : 4;
      core::ClosNetwork net(cfg);
      // Map host ids into this network's host count.
      const int hosts = net.num_hosts();
      for (const auto& f : flows) {
        const auto src = f.src_host % hosts;
        auto dst = f.dst_host % hosts;
        if (dst == src) dst = (dst + 1) % hosts;
        net.submit_flow(src, dst, f.size_bytes, f.start);
      }
      net.run_until(sc.horizon);
      bench::print_fct_rows(net.tracker(), "Clos3:1", load * 100);
    }
    {  // static expander (u > k/2, cost-equivalent)
      core::ExpanderNetConfig cfg;
      cfg.structure.num_tors = full ? 130 : 20;
      cfg.structure.uplinks = full ? 7 : 5;
      cfg.structure.hosts_per_tor = full ? 5 : 3;
      cfg.structure.seed = 3;
      core::ExpanderNetwork net(cfg);
      const int hosts = net.num_hosts();
      for (const auto& f : flows) {
        const auto src = f.src_host % hosts;
        auto dst = f.dst_host % hosts;
        if (dst == src) dst = (dst + 1) % hosts;
        net.submit_flow(src, dst, f.size_bytes, f.start);
      }
      net.run_until(sc.horizon);
      bench::print_fct_rows(net.tracker(), "Expander", load * 100);
    }
    {  // RotorNet, non-hybrid (all-optical; short flows wait for circuits)
      core::RotorNetConfig cfg;
      cfg.structure.num_racks = sc.racks;
      cfg.structure.num_switches = sc.switches;
      cfg.structure.hybrid = false;
      cfg.structure.seed = 3;
      cfg.hosts_per_rack = sc.hosts_per_rack;
      core::RotorNetNetwork net(cfg);
      bench::submit_all(net, flows);
      net.run_until(sc.horizon);
      bench::print_fct_rows(net.tracker(), "RotorNet", load * 100);
    }
    {  // RotorNet, hybrid (+1 packet uplink, +33% cost)
      core::RotorNetConfig cfg;
      cfg.structure.num_racks = sc.racks;
      cfg.structure.num_switches = sc.switches + 1;
      cfg.structure.hybrid = true;
      cfg.structure.seed = 3;
      cfg.hosts_per_rack = sc.hosts_per_rack;
      core::RotorNetNetwork net(cfg);
      bench::submit_all(net, flows);
      net.run_until(sc.horizon);
      bench::print_fct_rows(net.tracker(), "RotorHyb", load * 100);
    }
    std::printf("\n");
  }
  std::printf("Paper shape: Opera matches the static networks on short-flow FCT\n"
              "(priority-queued expander paths), sustains higher load, and beats\n"
              "non-hybrid RotorNet's short-flow FCT by ~3 orders of magnitude.\n");
  return 0;
}

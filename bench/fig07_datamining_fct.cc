// Figure 7: FCT vs flow size for the Datamining workload on four
// cost-comparable networks: 3:1 folded Clos, u=7-equivalent expander,
// RotorNet (hybrid + non-hybrid), and Opera.
//
// Default is a scaled-down testbed (16 racks x 4 hosts, short horizon) so
// the bench completes in seconds; --full runs closer to paper scale.
// Flow sizes above the truncation cap are clipped so bulk flows can finish
// within the horizon; the per-bucket FCT trends (who serves short flows
// fast, who sustains load) are what carry over.
#include <algorithm>

#include "exp/experiment.h"
#include "workload/flow_size_dist.h"

int main(int argc, char** argv) {
  using namespace opera;
  exp::Experiment ex("Figure 7: Datamining FCTs (p50/p99 by flow size)", argc, argv);
  const auto tb = exp::Testbed::select(ex.full());
  const auto horizon = ex.full() ? sim::Time::ms(200) : sim::Time::ms(60);
  const std::int64_t size_cap = ex.full() ? 400'000'000 : 40'000'000;
  ex.report().note("testbed: %d racks x %d hosts, horizon %s, sizes capped at %lld MB",
                   tb.racks, tb.hosts_per_rack, horizon.to_string().c_str(),
                   static_cast<long long>(size_cap / 1'000'000));

  exp::Experiment::FctSweep sweep;
  sweep.fabrics = {{"Opera", tb.opera(), {}},
                   {"Clos3:1", tb.clos(), {}},
                   {"Expander", tb.expander(), {}},
                   {"RotorNet", tb.rotornet(false), {}},
                   {"RotorHyb", tb.rotornet(true), {}}};
  sweep.loads = ex.full() ? std::vector<double>{0.01, 0.10, 0.25}
                          : std::vector<double>{0.01, 0.10};
  sweep.horizon = horizon;
  sweep.make_flows = [&](double load) {
    const auto dist = workload::FlowSizeDistribution::datamining();
    sim::Rng rng(777);
    auto flows = workload::poisson_workload(dist, tb.num_hosts(), load, 10e9,
                                            horizon / 2, rng);
    for (auto& f : flows) f.size_bytes = std::min(f.size_bytes, size_cap);
    return flows;
  };
  ex.run_fct_sweep(sweep);

  ex.report().note(
      "Paper shape: Opera matches the static networks on short-flow FCT\n"
      "(priority-queued expander paths), sustains higher load, and beats\n"
      "non-hybrid RotorNet's short-flow FCT by ~3 orders of magnitude.");
  return 0;
}

// Quickstart: build a small Opera network, send a latency-sensitive flow
// and a bulk flow, and read back flow completion times.
//
//   $ ./build/examples/quickstart
//
// This is the smallest end-to-end use of the public API:
//   OperaConfig -> OperaNetwork -> submit_flow -> run_until -> tracker().
#include <cstdio>

#include "core/opera_network.h"

int main() {
  using namespace opera;

  // A 16-rack Opera fabric: 4 rotor circuit switches, 4 hosts per rack
  // (ToR radix 8, provisioned 1:1), 10 Gb/s links, ~99 us topology slices.
  core::OperaConfig cfg;
  cfg.topology.num_racks = 16;
  cfg.topology.num_switches = 4;
  cfg.topology.hosts_per_rack = 4;
  cfg.topology.seed = 1;

  core::OperaNetwork net(cfg);
  std::printf("built Opera network: %d hosts in %d racks, cycle time %s\n",
              net.num_hosts(), net.num_racks(),
              cfg.cycle_time().to_string().c_str());

  // A short, latency-sensitive flow (< 15 MB threshold): forwarded
  // immediately over multi-hop expander paths.
  const auto rpc = net.submit_flow(/*src_host=*/0, /*dst_host=*/60,
                                   /*size_bytes=*/20'000, sim::Time::zero());

  // A bulk flow (>= 15 MB): buffered at the host and transmitted over
  // direct rack-to-rack circuits as the rotor switches provide them.
  const auto transfer = net.submit_flow(/*src_host=*/1, /*dst_host=*/61,
                                        /*size_bytes=*/25'000'000, sim::Time::zero());

  net.run_until(sim::Time::ms(80));

  for (const auto& rec : net.tracker().completions()) {
    std::printf("flow %llu (%s, %lld bytes): FCT = %s\n",
                static_cast<unsigned long long>(rec.flow.id),
                rec.flow.tclass == net::TrafficClass::kBulk ? "bulk" : "low-latency",
                static_cast<long long>(rec.flow.size_bytes),
                rec.fct().to_string().c_str());
  }
  std::printf("flows completed: %zu/2 (ids %llu, %llu)\n",
              net.tracker().completed(), static_cast<unsigned long long>(rpc),
              static_cast<unsigned long long>(transfer));
  std::printf("\nThe low-latency flow finishes in tens of microseconds; the bulk\n"
              "flow rides tax-free direct circuits and finishes within a few\n"
              "rotor cycles at near host line rate.\n");
  return 0;
}

// Quickstart: build a small Opera network through the fabric factory, send
// a latency-sensitive flow and a bulk flow, and read back completion times.
//
//   $ ./build/example_quickstart
//
// This is the smallest end-to-end use of the public API:
//   FabricConfig -> NetworkFactory -> Network& -> submit_flow ->
//   run_to_completion -> tracker().
#include <cstdio>

#include "core/fabric.h"

int main() {
  using namespace opera;

  // A 16-rack Opera fabric: 4 rotor circuit switches, 4 hosts per rack
  // (ToR radix 8, provisioned 1:1), 10 Gb/s links, ~99 us topology slices.
  // Swapping kOpera for kFoldedClos / kExpander / kRotorNet builds any of
  // the paper's other fabrics behind the same interface.
  auto cfg = core::FabricConfig::make(core::FabricKind::kOpera);
  cfg.opera.num_racks = 16;
  cfg.opera.num_switches = 4;
  cfg.opera.hosts_per_rack = 4;
  cfg.opera.seed = 1;

  const auto net = core::NetworkFactory::build(cfg);
  std::printf("built %s: %d hosts in %d racks\n", net->describe().c_str(),
              net->num_hosts(), net->num_racks());

  // A short, latency-sensitive flow (< 15 MB threshold): forwarded
  // immediately over multi-hop expander paths.
  const auto rpc = net->submit_flow(/*src_host=*/0, /*dst_host=*/60,
                                    /*size_bytes=*/20'000, sim::Time::zero());

  // A bulk flow (>= 15 MB): buffered at the host and transmitted over
  // direct rack-to-rack circuits as the rotor switches provide them.
  const auto transfer = net->submit_flow(/*src_host=*/1, /*dst_host=*/61,
                                         /*size_bytes=*/25'000'000,
                                         sim::Time::zero());

  // Stops as soon as both flows complete instead of running out the clock.
  const auto status = net->run_to_completion(sim::Time::ms(80));

  for (const auto& rec : net->tracker().completions()) {
    std::printf("flow %llu (%s, %lld bytes): FCT = %s\n",
                static_cast<unsigned long long>(rec.flow.id),
                rec.flow.tclass == net::TrafficClass::kBulk ? "bulk" : "low-latency",
                static_cast<long long>(rec.flow.size_bytes),
                rec.fct().to_string().c_str());
  }
  std::printf("flows completed: %zu/2 (ids %llu, %llu); run ended at %s%s\n",
              net->tracker().completed(), static_cast<unsigned long long>(rpc),
              static_cast<unsigned long long>(transfer),
              status.ended_at.to_string().c_str(),
              status.stopped_early ? " (early)" : "");
  std::printf("\nThe low-latency flow finishes in tens of microseconds; the bulk\n"
              "flow rides tax-free direct circuits and finishes within a few\n"
              "rotor cycles at near host line rate.\n");
  return 0;
}

// MapReduce-style shuffle on Opera (paper §5.2): every host exchanges a
// 100 KB block with every non-rack-local host, tagged as bulk by the
// application so all of it takes direct circuits (no flow-size guessing).
// Prints the job's delivered-bandwidth timeline and completion statistics.
#include <cstdio>

#include "core/fabric.h"
#include "sim/stats.h"
#include "workload/synthetic.h"

int main() {
  using namespace opera;

  auto cfg = core::FabricConfig::make(core::FabricKind::kOpera);
  cfg.opera.num_racks = 16;
  cfg.opera.num_switches = 4;
  cfg.opera.hosts_per_rack = 4;
  cfg.opera.seed = 2;
  const auto net = core::NetworkFactory::build(cfg);

  sim::Rng rng(7);
  const auto flows = workload::shuffle_workload(net->num_hosts(),
                                                cfg.opera.hosts_per_rack,
                                                /*flow_bytes=*/100'000,
                                                /*stagger=*/sim::Time::zero(), rng);

  sim::ThroughputSeries timeline(sim::Time::ms(1));
  net->tracker().set_delivery_hook(
      [&](const transport::Flow&, std::int64_t bytes, sim::Time at) {
        timeline.record(at, bytes);
      });

  for (const auto& f : flows) {
    // Application-based tagging (§3.4): the framework knows its shuffle
    // blocks are bandwidth-bound even though each is only 100 KB.
    net->submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start,
                     net::TrafficClass::kBulk);
  }
  net->run_to_completion(sim::Time::ms(60));

  std::printf("shuffle: %zu flows x 100KB, %zu completed\n", flows.size(),
              net->tracker().completed());
  std::printf("delivered Gb/s per ms: ");
  for (const auto& pt : timeline.series()) {
    std::printf("%.0f ", pt.bits_per_second / 1e9);
  }
  std::printf("\n");
  auto fct = net->tracker().fct_us(0, 1LL << 62);
  if (!fct.empty()) {
    std::printf("FCT p50 = %.2f ms, p99 = %.2f ms\n", fct.percentile(50) / 1e3,
                fct.percentile(99) / 1e3);
  }
  std::printf("\nEvery byte crossed the network exactly once (no bandwidth tax):\n"
              "compare bench/fig08_shuffle_throughput for the cost-equivalent\n"
              "static networks on the same job.\n");
  return 0;
}

// Failure drill (paper §3.6.2): kill an entire rotor circuit switch and a
// few uplinks mid-run and watch the fabric reconverge — traffic keeps
// flowing over the surviving expander because every slice is still
// connected, and routing tables are recomputed within a cycle.
//
// Fault injection is Opera-specific, so this example builds the concrete
// OperaNetwork from the lowered FabricConfig and drives it through the
// shared core::Network interface.
#include <cstdio>

#include "core/fabric.h"

int main() {
  using namespace opera;

  auto cfg = core::FabricConfig::make(core::FabricKind::kOpera);
  cfg.opera.num_racks = 24;
  cfg.opera.num_switches = 6;  // u=6: tolerates a whole switch failing
  cfg.opera.hosts_per_rack = 4;
  cfg.opera.seed = 4;
  core::OperaNetwork opera_net(cfg.opera_config());
  core::Network& net = opera_net;

  // A steady stream of small flows before, during and after the failures.
  sim::Rng rng(13);
  const int total_flows = 1500;
  for (int i = 0; i < total_flows; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(96));
    auto dst = static_cast<std::int32_t>(rng.index(96));
    if (dst == src) dst = (dst + 1) % 96;
    net.submit_flow(src, dst, 10'000, sim::Time::us(20 * i));
  }

  // t = 5 ms: rotor switch 2 dies. t = 10 ms: rack 3 loses two uplinks.
  net.sim().schedule_at(sim::Time::ms(5), [&opera_net] {
    std::printf("[t=5ms] injecting circuit-switch failure (switch 2)\n");
    opera_net.inject_switch_failure(2);
  });
  net.sim().schedule_at(sim::Time::ms(10), [&opera_net] {
    std::printf("[t=10ms] injecting uplink failures (rack 3 -> switches 0, 4)\n");
    opera_net.inject_uplink_failure(3, 0);
    opera_net.inject_uplink_failure(3, 4);
  });

  net.run_to_completion(sim::Time::ms(60));

  std::printf("\nflows completed: %zu/%d\n", net.tracker().completed(), total_flows);
  const auto fct = net.tracker().fct_us(0, 1LL << 62);
  if (!fct.empty()) {
    std::printf("FCT p50 = %.1f us, p99 = %.1f us, max = %.1f us\n",
                fct.percentile(50), fct.percentile(99), fct.max());
  }
  std::printf("\nOne failed rotor switch (1/6) and two dead uplinks cost capacity\n"
              "but no connectivity: every topology slice remains an expander over\n"
              "the surviving circuits (compare bench/fig11_fault_tolerance).\n");
  return 0;
}

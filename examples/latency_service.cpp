// A latency-sensitive RPC service sharing the fabric with a heavy bulk
// backup job — the paper's core "one fabric for both" scenario (§1, §5.4).
// The RPC tail must not care that the network is simultaneously moving
// tens of megabytes per host over the same links.
#include <cstdio>

#include "core/fabric.h"
#include "sim/stats.h"

int main() {
  using namespace opera;

  auto cfg = core::FabricConfig::make(core::FabricKind::kOpera);
  cfg.opera.num_racks = 16;
  cfg.opera.num_switches = 4;
  cfg.opera.hosts_per_rack = 4;
  cfg.opera.seed = 3;
  const auto net = core::NetworkFactory::build(cfg);

  // Background: every rack streams a 30 MB backup to the "archive" rack's
  // hosts (skewed bulk load -> exercises RotorLB's two-hop VLB).
  for (int r = 1; r < net->num_racks(); ++r) {
    const auto src = static_cast<std::int32_t>(r * 4);
    const auto dst = static_cast<std::int32_t>(r % 4);  // spread over rack 0's hosts
    net->submit_flow(src, dst, 30'000'000, sim::Time::zero(),
                     net::TrafficClass::kBulk);
  }

  // Foreground: 2000 8KB RPCs at 50 us spacing between random host pairs.
  sim::Rng rng(11);
  sim::PercentileSampler rpc_fct;
  net->tracker().set_completion_hook([&](const transport::FlowRecord& rec) {
    if (rec.flow.tclass == net::TrafficClass::kLowLatency) {
      rpc_fct.add(rec.fct().to_us());
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(64));
    auto dst = static_cast<std::int32_t>(rng.index(64));
    if (dst == src) dst = (dst + 1) % 64;
    net->submit_flow(src, dst, 8'000, sim::Time::us(50 * i));
  }

  net->run_to_completion(sim::Time::ms(200));

  std::printf("RPCs completed: %zu/2000\n", rpc_fct.count());
  if (!rpc_fct.empty()) {
    std::printf("RPC FCT: p50 = %.1f us, p90 = %.1f us, p99 = %.1f us\n",
                rpc_fct.percentile(50), rpc_fct.percentile(90),
                rpc_fct.percentile(99));
  }
  std::printf("bulk backups completed: %zu/15\n",
              net->tracker().completed() - rpc_fct.count());
  // Fabric-specific statistics stay on the concrete class; the factory
  // hands back the interface, so downcast when you need them.
  if (const auto* opera_net = dynamic_cast<core::OperaNetwork*>(net.get())) {
    const auto stats = opera_net->tor_stats();
    std::printf("in-network: %llu trims, %llu drops (NDP/RotorLB recovered them)\n",
                static_cast<unsigned long long>(stats.trims),
                static_cast<unsigned long long>(stats.drops));
  }
  std::printf("\nStrict priority + expander paths keep RPC tails in the tens of\n"
              "microseconds while the same links carry the bulk backup through\n"
              "time-varying direct circuits.\n");
  return 0;
}

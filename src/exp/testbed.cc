#include "exp/testbed.h"

namespace opera::exp {

Testbed Testbed::quick() { return Testbed{}; }

Testbed Testbed::paper() {
  Testbed tb;
  tb.racks = 108;
  tb.switches = 6;
  tb.hosts_per_rack = 6;
  tb.clos_radix = 12;
  tb.clos_pods = 12;
  tb.expander_tors = 130;
  tb.expander_uplinks = 7;
  tb.expander_hosts_per_tor = 5;
  return tb;
}

core::FabricConfig Testbed::opera() const {
  auto cfg = core::FabricConfig::make(core::FabricKind::kOpera);
  cfg.opera.num_racks = racks;
  cfg.opera.num_switches = switches;
  cfg.opera.hosts_per_rack = hosts_per_rack;
  cfg.opera.seed = topo_seed;
  return cfg;
}

core::FabricConfig Testbed::clos() const {
  auto cfg = core::FabricConfig::make(core::FabricKind::kFoldedClos);
  cfg.clos.radix = clos_radix;
  cfg.clos.oversubscription = clos_oversubscription;
  cfg.clos.num_pods = clos_pods;
  return cfg;
}

core::FabricConfig Testbed::expander() const {
  auto cfg = core::FabricConfig::make(core::FabricKind::kExpander);
  cfg.expander.num_tors = expander_tors;
  cfg.expander.uplinks = expander_uplinks;
  cfg.expander.hosts_per_tor = expander_hosts_per_tor;
  cfg.expander.seed = topo_seed;
  return cfg;
}

core::FabricConfig Testbed::rotornet(bool hybrid) const {
  auto cfg = core::FabricConfig::make(core::FabricKind::kRotorNet);
  cfg.rotornet.num_racks = racks;
  cfg.rotornet.num_switches = hybrid ? switches + 1 : switches;
  cfg.rotornet.hybrid = hybrid;
  cfg.rotornet.seed = topo_seed;
  cfg.rotornet_hosts_per_rack = hosts_per_rack;
  return cfg;
}

core::FabricConfig Testbed::fabric(core::FabricKind kind) const {
  switch (kind) {
    case core::FabricKind::kOpera: return opera();
    case core::FabricKind::kFoldedClos: return clos();
    case core::FabricKind::kExpander: return expander();
    case core::FabricKind::kRotorNet: return rotornet(false);
  }
  return opera();
}

}  // namespace opera::exp

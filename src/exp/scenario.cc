#include "exp/scenario.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fluid/fluid_network.h"
#include "fluid/hybrid_network.h"
#include "sim/rng.h"
#include "workload/day_in_the_life.h"
#include "workload/trace_replay.h"

namespace opera::exp {

namespace {

// %g formatting so describe() strings stay free of trailing zeros
// ("2 ms", "0.25", "0.02") — they are golden-tested verbatim.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

ScenarioParseResult parse_fail(std::string message) {
  ScenarioParseResult r;
  r.error = std::move(message);
  return r;
}

struct KeyValue {
  std::string key;
  std::string value;
};

bool parse_double_value(const std::string& v, double& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  return end == v.c_str() + v.size();
}

bool parse_int_value(const std::string& v, long long& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  out = std::strtoll(v.c_str(), &end, 10);
  return end == v.c_str() + v.size();
}

// Applies one key=value to `spec`; returns "" or an error message. The
// per-kind key sets are disjoint from the grammar's point of view: a key
// another kind owns is as unknown as a typo.
std::string apply_key(ScenarioSpec& spec, const KeyValue& kv) {
  const auto bad_value = [&] {
    return "bad value '" + kv.value + "' for key '" + kv.key + "'";
  };
  const auto num = [&](double& field) -> std::string {
    return parse_double_value(kv.value, field) ? "" : bad_value();
  };
  const auto integer = [&](int& field) -> std::string {
    long long v = 0;
    if (!parse_int_value(kv.value, v)) return bad_value();
    field = static_cast<int>(v);
    return "";
  };
  switch (spec.kind) {
    case ScenarioKind::kDitl:
      if (kv.key == "phase-ms") return num(spec.phase_ms);
      if (kv.key == "load") return num(spec.load);
      if (kv.key == "seed") {
        long long v = 0;
        if (!parse_int_value(kv.value, v) || v < 0) return bad_value();
        spec.seed = static_cast<std::uint64_t>(v);
        return "";
      }
      break;
    case ScenarioKind::kTrace:
      if (kv.key == "path") {
        spec.path = kv.value;
        return "";
      }
      break;
    case ScenarioKind::kAdversarialPerm:
      if (kv.key == "flow-kb") {
        long long v = 0;
        if (!parse_int_value(kv.value, v)) return bad_value();
        spec.flow_kb = v;
        return "";
      }
      break;
    case ScenarioKind::kStormRolling:
      if (kv.key == "switches") return integer(spec.switches);
      if (kv.key == "start-ms") return num(spec.start_ms);
      if (kv.key == "period-ms") return num(spec.period_ms);
      if (kv.key == "recover-ms") return num(spec.recover_ms);
      if (kv.key == "partitionable") {
        spec.partitionable = kv.value == "1";
        return kv.value == "1" || kv.value == "0" ? "" : bad_value();
      }
      break;
    case ScenarioKind::kStormRacks:
      if (kv.key == "racks") return integer(spec.racks);
      if (kv.key == "switch") return integer(spec.rotor_switch);
      if (kv.key == "start-ms") return num(spec.start_ms);
      if (kv.key == "recover-ms") return num(spec.recover_ms);
      if (kv.key == "wave-ms") return num(spec.wave_ms);
      if (kv.key == "partitionable") {
        spec.partitionable = kv.value == "1";
        return kv.value == "1" || kv.value == "0" ? "" : bad_value();
      }
      break;
    case ScenarioKind::kGray:
      if (kv.key == "links") return integer(spec.links);
      if (kv.key == "loss") return num(spec.loss);
      if (kv.key == "extra-us") return num(spec.extra_us);
      if (kv.key == "start-ms") return num(spec.start_ms);
      if (kv.key == "recover-ms") return num(spec.recover_ms);
      if (kv.key == "seed") {
        long long v = 0;
        if (!parse_int_value(kv.value, v) || v < 0) return bad_value();
        spec.seed = static_cast<std::uint64_t>(v);
        return "";
      }
      break;
    case ScenarioKind::kSkew:
      if (kv.key == "switch") return integer(spec.rotor_switch);
      if (kv.key == "extra-us") return num(spec.extra_us);
      if (kv.key == "slices") return integer(spec.skew_slices);
      if (kv.key == "start-ms") return num(spec.start_ms);
      break;
  }
  return std::string("unknown key '") + kv.key + "' for scenario '" +
         scenario_kind_name(spec.kind) + "'";
}

// The abstract outage timeline of a storm: +1 when a component goes down,
// -1 when it recovers. Used by the last-path check.
struct OutageEvent {
  double time_ms;
  int delta;
};

}  // namespace

const char* scenario_kind_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kDitl: return "ditl";
    case ScenarioKind::kTrace: return "trace";
    case ScenarioKind::kAdversarialPerm: return "adversarial-perm";
    case ScenarioKind::kStormRolling: return "storm-rolling";
    case ScenarioKind::kStormRacks: return "storm-racks";
    case ScenarioKind::kGray: return "gray";
    case ScenarioKind::kSkew: return "skew";
  }
  return "?";
}

ScenarioParseResult parse_scenario(const std::string& text) {
  const std::size_t colon = text.find(':');
  const std::string kind_name = text.substr(0, colon);
  ScenarioSpec spec;
  bool found = false;
  for (const auto kind :
       {ScenarioKind::kDitl, ScenarioKind::kTrace, ScenarioKind::kAdversarialPerm,
        ScenarioKind::kStormRolling, ScenarioKind::kStormRacks, ScenarioKind::kGray,
        ScenarioKind::kSkew}) {
    if (kind_name == scenario_kind_name(kind)) {
      spec.kind = kind;
      found = true;
      break;
    }
  }
  if (!found) return parse_fail("unknown scenario kind '" + kind_name + "'");
  if (colon != std::string::npos) {
    std::size_t pos = colon + 1;
    while (pos <= text.size()) {
      const std::size_t comma = text.find(',', pos);
      const std::size_t end = comma == std::string::npos ? text.size() : comma;
      const std::string item = text.substr(pos, end - pos);
      const std::size_t eq = item.find('=');
      if (item.empty() || eq == std::string::npos || eq == 0) {
        return parse_fail("scenario '" + kind_name + "': expected key=value, got '" +
                          item + "'");
      }
      if (std::string err =
              apply_key(spec, {item.substr(0, eq), item.substr(eq + 1)});
          !err.empty()) {
        return parse_fail("scenario '" + kind_name + "': " + err);
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (spec.kind == ScenarioKind::kTrace && spec.path.empty()) {
    return parse_fail("scenario 'trace': required key 'path' missing");
  }
  ScenarioParseResult r;
  r.specs.push_back(std::move(spec));
  return r;
}

ScenarioParseResult parse_scenarios(const std::string& text) {
  ScenarioParseResult result;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::size_t end = semi == std::string::npos ? text.size() : semi;
    const std::string one = text.substr(pos, end - pos);
    if (!one.empty()) {
      ScenarioParseResult sub = parse_scenario(one);
      if (!sub.ok()) return sub;
      result.specs.push_back(std::move(sub.specs.front()));
    }
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  if (result.specs.empty()) return parse_fail("empty scenario string");
  int workloads = 0;
  for (const auto& s : result.specs) workloads += scenario_is_workload(s) ? 1 : 0;
  if (workloads > 1) {
    return parse_fail("at most one workload scenario (ditl/trace/adversarial-perm) "
                      "per suite");
  }
  return result;
}

bool scenario_is_workload(const ScenarioSpec& spec) {
  return spec.kind == ScenarioKind::kDitl || spec.kind == ScenarioKind::kTrace ||
         spec.kind == ScenarioKind::kAdversarialPerm;
}

std::string describe(const ScenarioSpec& spec) {
  switch (spec.kind) {
    case ScenarioKind::kDitl:
      return "ditl: standard day, 5 x " + fmt(spec.phase_ms) +
             " ms phases, peak load " + fmt(spec.load) + ", seed " +
             std::to_string(spec.seed);
    case ScenarioKind::kTrace:
      return "trace: replay '" + spec.path + "'";
    case ScenarioKind::kAdversarialPerm:
      return "adversarial-perm: max-wait rack permutation, " +
             std::to_string(spec.flow_kb) + " KB flows";
    case ScenarioKind::kStormRolling:
      return "storm-rolling: " + std::to_string(spec.switches) +
             " rotor outages from " + fmt(spec.start_ms) + " ms, one every " +
             fmt(spec.period_ms) + " ms, " +
             (spec.recover_ms > 0.0
                  ? "each recovering after " + fmt(spec.recover_ms) + " ms"
                  : "no recovery");
    case ScenarioKind::kStormRacks:
      return "storm-racks: uplink " + std::to_string(spec.rotor_switch) +
             " dark on " + std::to_string(spec.racks) + " racks at " +
             fmt(spec.start_ms) + " ms, " +
             (spec.recover_ms > 0.0
                  ? "recovery wave at " + fmt(spec.recover_ms) + " ms, stagger " +
                        fmt(spec.wave_ms) + " ms"
                  : "no recovery");
    case ScenarioKind::kGray:
      return "gray: " + std::to_string(spec.links) + " lossy uplinks, loss " +
             fmt(spec.loss) + ", +" + fmt(spec.extra_us) + " us latency, from " +
             fmt(spec.start_ms) + " ms, " +
             (spec.recover_ms > 0.0
                  ? "recovering after " + fmt(spec.recover_ms) + " ms"
                  : "no recovery") +
             ", seed " + std::to_string(spec.seed);
    case ScenarioKind::kSkew:
      return "skew: rotor " + std::to_string(spec.rotor_switch) + " settles +" +
             fmt(spec.extra_us) + " us late for " +
             std::to_string(spec.skew_slices) + " reconfigurations from " +
             fmt(spec.start_ms) + " ms";
  }
  return "?";
}

std::string validate_scenario(const ScenarioSpec& spec,
                              const core::FabricConfig& config) {
  const bool needs_opera = !scenario_is_workload(spec) ||
                           spec.kind == ScenarioKind::kAdversarialPerm;
  if (needs_opera && config.kind != core::FabricKind::kOpera) {
    return std::string(scenario_kind_name(spec.kind)) +
           ": requires the opera fabric";
  }
  // Gray loss and slice skew are packet-level degradations; the fluid
  // integrator has no per-packet loss or per-slice clock to perturb, so a
  // fluid or hybrid run would silently model only part of the scenario.
  if ((spec.kind == ScenarioKind::kGray || spec.kind == ScenarioKind::kSkew) &&
      config.engine != core::EngineKind::kPacket) {
    return std::string(scenario_kind_name(spec.kind)) +
           ": requires the packet engine (engine=" +
           core::engine_kind_name(config.engine) + " cannot mirror it)";
  }
  const std::int32_t n = config.opera.num_racks;
  const int u = config.opera.num_switches;
  switch (spec.kind) {
    case ScenarioKind::kDitl:
      if (spec.phase_ms <= 0.0) return "ditl: phase-ms must be > 0";
      if (spec.load <= 0.0 || spec.load > 1.0) return "ditl: load must be in (0, 1]";
      return "";
    case ScenarioKind::kTrace:
      return spec.path.empty() ? "trace: path missing" : "";
    case ScenarioKind::kAdversarialPerm:
      return spec.flow_kb <= 0 ? "adversarial-perm: flow-kb must be > 0" : "";
    case ScenarioKind::kStormRolling: {
      if (spec.switches < 1 || spec.switches > u) {
        return "storm-rolling: switches must be in [1, " + std::to_string(u) + "]";
      }
      if (spec.start_ms < 0.0 || spec.period_ms < 0.0 || spec.recover_ms < 0.0) {
        return "storm-rolling: times must be >= 0";
      }
      // Last-path property on the abstract timeline: count concurrently
      // dead rotor switches; all u dead partitions every rack. Failures
      // sort before recoveries at equal instants — a transient
      // all-switches-dark moment still counts.
      std::vector<OutageEvent> events;
      for (int i = 0; i < spec.switches; ++i) {
        const double down = spec.start_ms + i * spec.period_ms;
        events.push_back({down, +1});
        if (spec.recover_ms > 0.0) events.push_back({down + spec.recover_ms, -1});
      }
      std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
        return a.time_ms != b.time_ms ? a.time_ms < b.time_ms : a.delta > b.delta;
      });
      int down = 0;
      for (const auto& e : events) {
        down += e.delta;
        if (down >= u && !spec.partitionable) {
          return "storm-rolling: all " + std::to_string(u) +
                 " rotor switches down at " + fmt(e.time_ms) +
                 " ms kills every rack's last path (declare partitionable=1 to "
                 "allow)";
        }
      }
      return "";
    }
    case ScenarioKind::kStormRacks:
      if (spec.racks < 1 || spec.racks > n) {
        return "storm-racks: racks must be in [1, " + std::to_string(n) + "]";
      }
      if (spec.rotor_switch < 0 || spec.rotor_switch >= u) {
        return "storm-racks: switch must be in [0, " + std::to_string(u) + ")";
      }
      if (spec.start_ms < 0.0 || spec.recover_ms < 0.0 || spec.wave_ms < 0.0) {
        return "storm-racks: times must be >= 0";
      }
      // One dead uplink leaves u-1 live ones per affected rack — the last
      // path only dies when the fabric has a single rotor switch.
      if (u <= 1 && !spec.partitionable) {
        return "storm-racks: with u=1 the shared uplink is every rack's last "
               "path (declare partitionable=1 to allow)";
      }
      return "";
    case ScenarioKind::kGray:
      if (spec.links < 1 || spec.links > n * u) {
        return "gray: links must be in [1, " + std::to_string(n * u) + "]";
      }
      if (spec.loss < 0.0 || spec.loss > 1.0) return "gray: loss must be in [0, 1]";
      if (spec.extra_us < 0.0) return "gray: extra-us must be >= 0";
      if (spec.start_ms < 0.0 || spec.recover_ms < 0.0) {
        return "gray: times must be >= 0";
      }
      return "";
    case ScenarioKind::kSkew: {
      if (spec.rotor_switch < 0 || spec.rotor_switch >= u) {
        return "skew: switch must be in [0, " + std::to_string(u) + ")";
      }
      if (spec.skew_slices < 1) return "skew: slices must be >= 1";
      if (spec.extra_us < 0.0 || spec.start_ms < 0.0) {
        return "skew: times must be >= 0";
      }
      if (sim::Time::from_us(spec.extra_us) + config.slice.reconfiguration >=
          config.slice.duration) {
        return "skew: extra-us + reconfiguration must stay under the slice "
               "duration (" +
               fmt(config.slice.duration.to_us()) + " us)";
      }
      return "";
    }
  }
  return "";
}

std::vector<workload::FlowSpec> scenario_flows(const ScenarioSpec& spec,
                                               const core::FabricConfig& config,
                                               std::string* error) {
  switch (spec.kind) {
    case ScenarioKind::kDitl: {
      const auto day = workload::DayInTheLifeSpec::standard_day(
          sim::Time::from_us(spec.phase_ms * 1000.0), spec.load, spec.seed);
      const std::int32_t hosts_per_rack =
          config.num_hosts() / std::max<std::int32_t>(1, config.num_racks());
      return workload::day_in_the_life_workload(day, config.num_hosts(),
                                                hosts_per_rack,
                                                config.link.rate_bps);
    }
    case ScenarioKind::kTrace: {
      auto loaded = workload::load_trace(spec.path, config.num_hosts());
      if (!loaded.ok()) {
        if (error != nullptr) *error = loaded.error;
        return {};
      }
      return std::move(loaded.flows);
    }
    case ScenarioKind::kAdversarialPerm: {
      const topo::OperaTopology topo(config.opera);
      return adversarial_permutation_workload(topo, config.opera.hosts_per_rack,
                                              spec.flow_kb * 1000);
    }
    default:
      return {};
  }
}

namespace {

// Storm (switch/uplink) events, shared between the packet and fluid
// engines — both expose the same inject/recover surface and config().
// Everything lands on `global` (the engine's coordinator queue): failure
// mutation at a barrier, never racing shard-local events.
template <typename Net>
void arm_storm_events(const ScenarioSpec& spec, Net& net,
                      sim::Simulator& global) {
  const auto at_ms = [](double ms) { return sim::Time::from_us(ms * 1000.0); };
  switch (spec.kind) {
    case ScenarioKind::kStormRolling: {
      const int u = net.config().topology.num_switches;
      for (int i = 0; i < spec.switches; ++i) {
        const int sw = i % u;
        const double down_ms = spec.start_ms + i * spec.period_ms;
        global.schedule_at(at_ms(down_ms),
                           [&net, sw] { net.inject_switch_failure(sw); });
        if (spec.recover_ms > 0.0) {
          global.schedule_at(at_ms(down_ms + spec.recover_ms),
                             [&net, sw] { net.recover_switch(sw); });
        }
      }
      break;
    }
    case ScenarioKind::kStormRacks: {
      const std::int32_t n = net.num_racks();
      const int sw = spec.rotor_switch;
      for (int i = 0; i < spec.racks; ++i) {
        // Spread the affected racks across the fabric (a rotor linecard
        // serves distant racks; correlation is the shared switch).
        const auto rack = static_cast<std::int32_t>(
            (static_cast<std::int64_t>(i) * n) / spec.racks);
        global.schedule_at(at_ms(spec.start_ms), [&net, rack, sw] {
          net.inject_uplink_failure(rack, sw);
        });
        if (spec.recover_ms > 0.0) {
          global.schedule_at(
              at_ms(spec.start_ms + spec.recover_ms + i * spec.wave_ms),
              [&net, rack, sw] { net.recover_uplink(rack, sw); });
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

void arm_scenario(const ScenarioSpec& spec, core::OperaNetwork& net) {
  // Everything here lands on the coordinator's global queue: failure
  // mutation at a barrier, never racing shard-local packet events.
  sim::Simulator& global = net.sim();
  const auto at_ms = [](double ms) { return sim::Time::from_us(ms * 1000.0); };
  switch (spec.kind) {
    case ScenarioKind::kStormRolling:
    case ScenarioKind::kStormRacks:
      arm_storm_events(spec, net, global);
      break;
    case ScenarioKind::kGray: {
      const std::int32_t n = net.num_racks();
      const int u = net.config().topology.num_switches;
      sim::Rng rng(spec.seed);
      const auto picks = rng.sample_without_replacement(
          static_cast<std::size_t>(n) * static_cast<std::size_t>(u),
          static_cast<std::size_t>(spec.links));
      const double loss = spec.loss;
      const sim::Time extra = sim::Time::from_us(spec.extra_us);
      for (const std::size_t pick : picks) {
        const auto rack = static_cast<std::int32_t>(pick / static_cast<std::size_t>(u));
        const int sw = static_cast<int>(pick % static_cast<std::size_t>(u));
        global.schedule_at(at_ms(spec.start_ms), [&net, rack, sw, loss, extra] {
          net.inject_gray_uplink(rack, sw, loss, extra);
        });
        if (spec.recover_ms > 0.0) {
          global.schedule_at(at_ms(spec.start_ms + spec.recover_ms),
                             [&net, rack, sw] { net.clear_gray_uplink(rack, sw); });
        }
      }
      break;
    }
    case ScenarioKind::kSkew: {
      const int sw = spec.rotor_switch;
      const sim::Time extra = sim::Time::from_us(spec.extra_us);
      const int count = spec.skew_slices;
      global.schedule_at(at_ms(spec.start_ms), [&net, sw, extra, count] {
        net.inject_slice_skew(sw, extra, count);
      });
      break;
    }
    default:
      break;  // workload scenarios have nothing to arm
  }
}

void arm_scenario(const ScenarioSpec& spec, core::Network& net) {
  if (scenario_is_workload(spec)) return;
  if (auto* packet = dynamic_cast<core::OperaNetwork*>(&net)) {
    arm_scenario(spec, *packet);
    return;
  }
  const bool needs_packet =
      spec.kind == ScenarioKind::kGray || spec.kind == ScenarioKind::kSkew;
  if (auto* hybrid = dynamic_cast<fluid::HybridNetwork*>(&net)) {
    if (needs_packet) {
      std::fprintf(stderr,
                   "exp: scenario '%s' models packet-level degradation the "
                   "fluid plane cannot mirror; run it with --engine=packet\n",
                   scenario_kind_name(spec.kind));
      std::exit(2);
    }
    // Mirror the failure timeline onto both planes, each on its own
    // coordinator queue — the lockstep chunking keeps them aligned, so
    // short and bulk flows see one consistent outage.
    arm_storm_events(spec, hybrid->packet_net(), hybrid->packet_net().sim());
    arm_storm_events(spec, hybrid->fluid_net(), hybrid->fluid_net().sim());
    return;
  }
  if (auto* fl = dynamic_cast<fluid::FluidNetwork*>(&net)) {
    if (needs_packet) {
      std::fprintf(stderr,
                   "exp: scenario '%s' models packet-level degradation the "
                   "fluid engine cannot express; run it with --engine=packet\n",
                   scenario_kind_name(spec.kind));
      std::exit(2);
    }
    arm_storm_events(spec, *fl, fl->sim());
    return;
  }
  // Other fabrics expose no failure-injection surface; validate_scenario
  // already rejects failure scenarios for them.
}

std::vector<workload::FlowSpec> adversarial_permutation_workload(
    const topo::OperaTopology& topo, std::int32_t hosts_per_rack,
    std::int64_t flow_bytes) {
  const auto n = topo.num_racks();
  const int u = topo.num_switches();
  // wait[r][p]: slices until the first direct circuit r -> p, counting
  // from slice 0 (-1 until discovered; the one-factorization guarantees
  // every pair connects within one cycle).
  std::vector<std::vector<int>> wait(
      static_cast<std::size_t>(n), std::vector<int>(static_cast<std::size_t>(n), -1));
  for (topo::Vertex r = 0; r < n; ++r) {
    for (int s = 0; s < topo.num_slices(); ++s) {
      for (int sw = 0; sw < u; ++sw) {
        if (sw == topo.reconfiguring_switch(s)) continue;
        const topo::Vertex peer = topo.circuit_peer(sw, r, s);
        if (peer != r && wait[static_cast<std::size_t>(r)][static_cast<std::size_t>(peer)] < 0) {
          wait[static_cast<std::size_t>(r)][static_cast<std::size_t>(peer)] = s;
        }
      }
    }
  }
  // Greedy max-total-wait assignment: sort all ordered pairs by wait
  // descending (ties by rack ids, keeping the result deterministic) and
  // take each pair whose source and destination are still free. The only
  // way the pass leaves a source unassigned is the classic derangement
  // corner — the last free source's only free destination is itself —
  // patched up below by a swap with any earlier assignment.
  struct Pair {
    topo::Vertex src, dst;
    int wait;
  };
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1));
  for (topo::Vertex r = 0; r < n; ++r) {
    for (topo::Vertex p = 0; p < n; ++p) {
      if (p == r) continue;
      pairs.push_back({r, p, wait[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)]});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.wait != b.wait) return a.wait > b.wait;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  std::vector<topo::Vertex> partner(static_cast<std::size_t>(n), -1);
  std::vector<bool> taken(static_cast<std::size_t>(n), false);
  std::int32_t assigned = 0;
  for (const auto& pr : pairs) {
    if (assigned == n) break;
    if (partner[static_cast<std::size_t>(pr.src)] >= 0 ||
        taken[static_cast<std::size_t>(pr.dst)]) {
      continue;
    }
    partner[static_cast<std::size_t>(pr.src)] = pr.dst;
    taken[static_cast<std::size_t>(pr.dst)] = true;
    ++assigned;
  }
  for (topo::Vertex r = 0; r < n && assigned < n; ++r) {
    if (partner[static_cast<std::size_t>(r)] >= 0) continue;
    // r's only free destination is r itself: steal another source's
    // partner (never r — nobody points at a free destination) and point
    // that source at r instead.
    const topo::Vertex q = r == 0 ? 1 : 0;
    partner[static_cast<std::size_t>(r)] = partner[static_cast<std::size_t>(q)];
    partner[static_cast<std::size_t>(q)] = r;
    taken[static_cast<std::size_t>(r)] = true;
    ++assigned;
  }
  std::vector<workload::FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(hosts_per_rack));
  for (topo::Vertex r = 0; r < n; ++r) {
    const topo::Vertex p = partner[static_cast<std::size_t>(r)];
    if (p < 0) continue;  // unreachable with n >= 2, kept for safety
    for (std::int32_t h = 0; h < hosts_per_rack; ++h) {
      workload::FlowSpec f;
      f.src_host = static_cast<std::int32_t>(r) * hosts_per_rack + h;
      f.dst_host = static_cast<std::int32_t>(p) * hosts_per_rack + h;
      f.size_bytes = flow_bytes;
      f.start = sim::Time::zero();
      flows.push_back(f);
    }
  }
  return flows;
}

}  // namespace opera::exp

// Declarative scenario engine (docs/SCENARIOS.md): parse `--scenario=`
// strings into specs, validate them against a fabric, describe them with
// stable golden strings, expand workload scenarios into flow lists, and
// arm failure scenarios as coordinator-phase global events on a built
// OperaNetwork — which is what keeps every storm/gray/skew run
// bit-identical across --threads=N.
//
// Grammar: a scenario string is `kind` or `kind:key=value,key=value,...`;
// several scenarios compose with ';' (at most one workload kind per
// suite). Kinds:
//
//   workload (pick one):
//     ditl             composed day-in-the-life (workload/day_in_the_life)
//     trace            replay a recorded trace (workload/trace_replay)
//     adversarial-perm rack permutation maximizing wait-for-direct-circuit
//   failure (any number):
//     storm-rolling    rotor switches fail one by one, then recover
//     storm-racks      correlated uplink outage + staggered recovery wave
//     gray             lossy-not-dead links (loss + extra latency)
//     skew             one rotor's reconfigurations settle late
//
// Every key has a default; unknown keys and kinds are parse errors, so a
// typo'd scenario fails the run instead of silently running the default.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fabric.h"
#include "sim/time.h"
#include "workload/synthetic.h"

namespace opera::exp {

enum class ScenarioKind : std::uint8_t {
  kDitl,
  kTrace,
  kAdversarialPerm,
  kStormRolling,
  kStormRacks,
  kGray,
  kSkew,
};

// Stable name used in the grammar and in describe() ("ditl", "trace",
// "adversarial-perm", "storm-rolling", "storm-racks", "gray", "skew").
[[nodiscard]] const char* scenario_kind_name(ScenarioKind kind);

// One parsed scenario. Fields are grouped by the kinds that read them;
// everything else keeps its default. Times are milliseconds of sim time
// (the grammar's `-ms` keys) to match the bench CLI's existing units.
struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::kDitl;

  // ditl: 5 standard phases (datamining ramp, websearch, incast, storage,
  // ml) of phase_ms each, peaking at `load`.
  double phase_ms = 2.0;   // ditl
  double load = 0.25;      // ditl: peak offered load
  std::uint64_t seed = 3;  // ditl: composition; gray: link choice

  std::string path;  // trace: file to replay (.csv -> CSV, else binary)

  std::int64_t flow_kb = 600;  // adversarial-perm: per-pair flow size

  // storm-rolling: `switches` rotor switches fail, one every period_ms,
  // starting at start_ms; each recovers recover_ms after its own failure
  // (0 = stays down). storm-racks: `racks` racks lose uplink
  // `rotor_switch` simultaneously at start_ms; rack i recovers at
  // start_ms + recover_ms + i * wave_ms.
  int switches = 2;          // storm-rolling
  int racks = 4;             // storm-racks
  int rotor_switch = 0;      // storm-racks: shared uplink; skew: the rotor
  double start_ms = 1.0;     // storms/gray/skew: first event time
  double period_ms = 5.0;    // storm-rolling: failure spacing
  double recover_ms = 12.0;  // storms/gray: downtime (0 = no recovery)
  double wave_ms = 1.0;      // storm-racks: recovery stagger
  bool partitionable = false;  // storms: allow killing a rack's last uplink

  // gray: `links` (rack, switch) uplinks chosen by `seed` drop packets
  // with probability `loss` and delay survivors by extra_us.
  int links = 8;
  double loss = 0.02;
  double extra_us = 30.0;  // gray: added latency; skew: settle lateness

  int skew_slices = 64;  // skew: reconfigurations affected
};

struct ScenarioParseResult {
  std::vector<ScenarioSpec> specs;
  std::string error;  // empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
};

// Parses one scenario (`kind:key=value,...`).
[[nodiscard]] ScenarioParseResult parse_scenario(const std::string& text);
// Parses a ';'-separated suite; rejects more than one workload scenario.
[[nodiscard]] ScenarioParseResult parse_scenarios(const std::string& text);

// True for the kinds that produce flows (ditl/trace/adversarial-perm).
[[nodiscard]] bool scenario_is_workload(const ScenarioSpec& spec);

// One-line human description. These strings are golden-tested
// (tests/test_scenario_specs.cc) so CLI docs cannot silently drift.
[[nodiscard]] std::string describe(const ScenarioSpec& spec);

// Checks the spec against a concrete fabric: parameter ranges, fabric
// kind (failure scenarios and adversarial-perm need Opera), engine
// (gray/skew need the packet engine), skew timing
// against the slice clock, and the last-path property — a storm must
// never take down a rack's last live uplink, even transiently, unless
// declared `partitionable=1` (replayed on the abstract fail/recover
// timeline, so it holds for every interleaving). Returns "" when valid.
[[nodiscard]] std::string validate_scenario(const ScenarioSpec& spec,
                                            const core::FabricConfig& config);

// Expands a workload scenario into a time-sorted flow list for `config`.
// Trace load errors are reported through `error` (untouched on success).
[[nodiscard]] std::vector<workload::FlowSpec> scenario_flows(
    const ScenarioSpec& spec, const core::FabricConfig& config,
    std::string* error = nullptr);

// Schedules a failure scenario's events on the network's *global*
// (coordinator) queue. Call after construction, before run — e.g. from
// Experiment::RunOptions::setup. No-op for workload scenarios.
void arm_scenario(const ScenarioSpec& spec, core::OperaNetwork& net);

// Engine-dispatching overload: arms the packet, fluid or hybrid engine
// behind any core::Network. Storms land on whichever engine(s) the run
// uses — a hybrid run mirrors the same failure timeline onto both planes,
// each on its own coordinator queue, so short and bulk flows see one
// consistent outage. Gray/skew scenarios model packet-level degradation
// the fluid integrator cannot express; validate_scenario rejects them for
// non-packet engines, and reaching here anyway is a loud fatal error.
// No-op for workload scenarios and for fabrics without failure injection.
void arm_scenario(const ScenarioSpec& spec, core::Network& net);

// The schedule-adversarial permutation behind `adversarial-perm`: for
// every rack pair, the wait (in slices, from slice 0) until the first
// direct circuit; a greedy max-total-wait derangement of racks; host i of
// each rack sends `flow_bytes` to host i of its partner. Exposed for
// tests.
[[nodiscard]] std::vector<workload::FlowSpec> adversarial_permutation_workload(
    const topo::OperaTopology& topo, std::int32_t hosts_per_rack,
    std::int64_t flow_bytes);

}  // namespace opera::exp

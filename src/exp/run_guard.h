// exp::RunGuard — supervision for long experiment runs: periodic
// deterministic checkpoints, SIGINT/SIGTERM graceful shutdown, a
// wall-clock watchdog, and memory-pressure degradation.
//
// A guarded run is driven by ONE Network::run_with_progress call whose
// hook multiplexes the early-stop predicate (identical to
// run_to_completion's), the guard checks, and — on resume — the
// replay-then-verify protocol. The tick interval equals
// run_to_completion's default, so a guarded run's tick grid, stop time
// and events_executed are bit-identical to an unguarded one; every guard
// action either only does I/O (checkpoint writes), is content-neutral
// (slice-window shrink; see SliceWindowParity), or terminates the
// process. That is the whole determinism argument: guarding a run never
// changes a byte of its simulation output.
//
// Resume rebuilds the fabric from the checkpoint's serialized
// FabricConfig, re-arms the scenario suite, resubmits the recorded flow
// list, and replays deterministically from time 0 to the checkpoint time
// T with guard actions suppressed; at exactly T it recomputes the
// multi-layer fingerprint and fatals loudly on mismatch, then continues
// with guard actions live. Replay makes `run_until(horizon)` after
// restore bit-identical to the uninterrupted run at any --threads=N —
// crash-recovery buys correctness, not wall-clock (docs/CHECKPOINT.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/fabric.h"
#include "sim/checkpoint.h"
#include "sim/time.h"
#include "workload/synthetic.h"

namespace opera::exp {

// Everything needed to reproduce a run from scratch: the full fabric
// config, the flow list in submission order (flow ids are assigned in
// submission order, so replaying it verbatim reproduces them), the
// scenario suite, the horizon, and the driver labels that format the
// report. Serialized into the checkpoint's [run]/[config]/[flows]
// sections.
// checkpoint:v1 fields=7
struct RunRecipe {
  std::string run_label;     // run-table workload label
  std::string fabric_label;  // fct-table fabric label
  double load_pct = 0.0;     // fct-table load column
  std::string scenario;      // --scenario suite string ("" = none)
  core::FabricConfig config;
  std::vector<workload::FlowSpec> flows;  // submission order
  sim::Time horizon;
};

// Builds the checkpoint for `recipe` at the network's current
// barrier-aligned time (call only from a progress-hook / coordinator
// event). [state] carries the progress marker: time_ps, events, and the
// chained multi-layer fingerprint digest.
[[nodiscard]] sim::CheckpointData make_run_checkpoint(
    const RunRecipe& recipe, const core::Network& net);

// Inverse of make_run_checkpoint's recipe half: reconstructs the recipe
// and the progress marker from a parsed checkpoint. Returns "" on
// success, an error message otherwise.
[[nodiscard]] std::string recipe_from_checkpoint(
    const sim::CheckpointData& data, RunRecipe* recipe,
    sim::Time* resume_time, std::uint64_t* resume_digest);

struct RunGuardOptions {
  // Simulated-time checkpoint cadence; zero disables periodic snapshots.
  sim::Time checkpoint_every;
  // Where snapshots land (tmp+rename atomic, so the previous checkpoint
  // survives a crash mid-write). Required for checkpoints and for the
  // signal/watchdog exit paths to leave one behind.
  std::string checkpoint_path;
  // Wall-clock watchdog: exit kExitWallClock after this many seconds
  // (checkpoint + partial report first). 0 disables.
  double max_wall_s = 0.0;
  // Memory guard: above this RSS, ask the fabric to degrade_memory();
  // when nothing is left to give back, exit kExitMemory (checkpoint +
  // partial report first). 0 disables.
  std::size_t max_rss_bytes = 0;
  // Resume state (zero time = fresh run): replay to `resume_time` with
  // guard actions suppressed, verify `resume_digest` there.
  sim::Time resume_time;
  std::uint64_t resume_digest = 0;
  // Called on every guarded exit, after the checkpoint is written and
  // before _Exit: flush a partial report naming `reason`.
  std::function<void(const char* reason)> partial_report;
};

class RunGuard {
 public:
  // Distinct exit codes so harnesses can tell a guarded exit from a
  // crash: interrupted (SIGINT/SIGTERM), wall-clock watchdog, memory.
  static constexpr int kExitInterrupted = 42;
  static constexpr int kExitWallClock = 43;
  static constexpr int kExitMemory = 44;

  RunGuard(RunRecipe recipe, RunGuardOptions options);

  // Drives `net` to the recipe horizon (early-stopping when all flows
  // complete) under the guard. Exits the process via _Exit on signal/
  // watchdog/memory-exhaustion; otherwise returns the run status, which
  // is bit-identical to run_to_completion(recipe.horizon) on `net`.
  core::Network::RunStatus drive(core::Network& net);

  [[nodiscard]] const RunRecipe& recipe() const { return recipe_; }

 private:
  void guarded_exit(core::Network& net, int code, const char* reason);

  RunRecipe recipe_;
  RunGuardOptions options_;
};

}  // namespace opera::exp

// Shared harness for the paper's cost sweeps (Figs. 12 and 15):
// throughput vs relative Opera port cost (alpha) at ToR radix k, for the
// hotrack / skew[0.2,1] / permutation / all-to-all workloads, using the
// fluid throughput models. New radices (k=24 scale-up and beyond) are
// one-liners on top of this.
#pragma once

#include <cstdint>

namespace opera::exp {

class Experiment;

void run_cost_sweep(Experiment& ex, int k, std::uint64_t rng_seed);

}  // namespace opera::exp

#include "exp/run_guard.h"

#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exp/output.h"

namespace opera::exp {

namespace {

// Signal flag, async-signal-safe. A second signal while the first is
// still being handled means "stop NOW": skip the graceful path entirely.
volatile std::sig_atomic_t g_signal = 0;

extern "C" void guard_signal_handler(int sig) {
  if (g_signal != 0) std::_Exit(128 + sig);
  g_signal = sig;
}

void install_signal_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = guard_signal_handler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

std::string u64_hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::string i64_dec(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::uint64_t state_digest(const core::Network& net) {
  sim::Fingerprint fp;
  net.fingerprint(fp);
  return fp.digest();
}

// The guard tick equals run_to_completion's default check interval, so a
// guarded run's tick grid — and therefore its stop time and event count —
// is bit-identical to an unguarded run_to_completion(horizon).
constexpr sim::Time kGuardTick = sim::Time::us(500);

bool all_flows_done(const core::Network& net) {
  const auto& tracker = net.tracker();
  return tracker.registered() > 0 && tracker.completed() >= tracker.registered();
}

}  // namespace

sim::CheckpointData make_run_checkpoint(const RunRecipe& recipe,
                                        const core::Network& net) {
  sim::CheckpointData data;
  data.run.push_back({"run_label", recipe.run_label});
  data.run.push_back({"fabric_label", recipe.fabric_label});
  {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", recipe.load_pct);
    data.run.push_back({"load_pct", buf});
  }
  data.run.push_back({"scenario", recipe.scenario});
  data.run.push_back({"horizon_ps", i64_dec(recipe.horizon.picoseconds())});
  data.config = core::serialize_fabric_config(recipe.config);
  data.flows.reserve(recipe.flows.size());
  for (const auto& f : recipe.flows) {
    data.flows.push_back(sim::CheckpointFlow{f.start.picoseconds(), f.src_host,
                                             f.dst_host, f.size_bytes});
  }
  data.state.push_back({"time_ps", i64_dec(net.sim().now().picoseconds())});
  data.state.push_back(
      {"events", i64_dec(static_cast<std::int64_t>(net.events_executed()))});
  data.state.push_back({"fingerprint", u64_hex(state_digest(net))});
  return data;
}

std::string recipe_from_checkpoint(const sim::CheckpointData& data,
                                   RunRecipe* recipe, sim::Time* resume_time,
                                   std::uint64_t* resume_digest) {
  *recipe = RunRecipe{};
  if (const auto* v = sim::find_entry(data.run, "run_label")) {
    recipe->run_label = *v;
  }
  if (const auto* v = sim::find_entry(data.run, "fabric_label")) {
    recipe->fabric_label = *v;
  }
  if (const auto* v = sim::find_entry(data.run, "load_pct")) {
    char* end = nullptr;
    recipe->load_pct = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0') return "malformed [run] load_pct";
  }
  if (const auto* v = sim::find_entry(data.run, "scenario")) {
    recipe->scenario = *v;
  }
  const auto* horizon = sim::find_entry(data.run, "horizon_ps");
  if (horizon == nullptr) return "checkpoint missing [run] horizon_ps";
  recipe->horizon = sim::Time::ps(std::strtoll(horizon->c_str(), nullptr, 10));

  if (std::string err = core::parse_fabric_config(data.config, &recipe->config);
      !err.empty()) {
    return err;
  }
  recipe->flows.reserve(data.flows.size());
  for (const auto& f : data.flows) {
    recipe->flows.push_back(workload::FlowSpec{
        f.src_host, f.dst_host, f.size_bytes, sim::Time::ps(f.start_ps)});
  }

  const auto* time_ps = sim::find_entry(data.state, "time_ps");
  if (time_ps == nullptr) return "checkpoint missing [state] time_ps";
  *resume_time = sim::Time::ps(std::strtoll(time_ps->c_str(), nullptr, 10));
  const auto* digest = sim::find_entry(data.state, "fingerprint");
  if (digest == nullptr) return "checkpoint missing [state] fingerprint";
  char* end = nullptr;
  *resume_digest = std::strtoull(digest->c_str(), &end, 16);
  if (end == digest->c_str() || *end != '\0') {
    return "malformed [state] fingerprint";
  }
  return "";
}

RunGuard::RunGuard(RunRecipe recipe, RunGuardOptions options)
    : recipe_(std::move(recipe)), options_(std::move(options)) {}

void RunGuard::guarded_exit(core::Network& net, int code, const char* reason) {
  if (!options_.checkpoint_path.empty()) {
    const auto data = make_run_checkpoint(recipe_, net);
    if (const std::string err =
            sim::save_checkpoint(options_.checkpoint_path, data);
        !err.empty()) {
      std::fprintf(stderr, "run-guard: checkpoint write failed: %s\n",
                   err.c_str());
    } else {
      std::fprintf(stderr,
                   "run-guard: %s at sim time %.3f ms; checkpoint written to "
                   "%s (resume with --resume)\n",
                   reason, net.sim().now().to_ms(),
                   options_.checkpoint_path.c_str());
    }
  } else {
    std::fprintf(stderr, "run-guard: %s at sim time %.3f ms (no checkpoint "
                 "path configured)\n",
                 reason, net.sim().now().to_ms());
  }
  if (options_.partial_report) options_.partial_report(reason);
  // _Exit, not exit: the sharded engine's worker threads are parked at the
  // barrier and static destructor order is not worth racing against.
  std::fflush(nullptr);
  std::_Exit(code);
}

core::Network::RunStatus RunGuard::drive(core::Network& net) {
  install_signal_handlers();
  const auto wall_start = std::chrono::steady_clock::now();
  bool replaying = options_.resume_time > sim::Time::zero();
  const bool periodic = options_.checkpoint_every > sim::Time::zero();
  // Cadence restarts from the resume point: the replayed prefix already
  // has its snapshots.
  sim::Time next_checkpoint =
      (replaying ? options_.resume_time : sim::Time::zero()) +
      options_.checkpoint_every;

  const auto hook = [&](core::Network& n) -> bool {
    // Done-check first, mirroring run_to_completion exactly: the guard
    // must stop at the same tick an unguarded run would.
    if (all_flows_done(n)) return true;
    const sim::Time now = n.sim().now();
    if (replaying) {
      if (now < options_.resume_time) return false;
      // The tick grid is identical on replay, so the first unsuppressed
      // tick lands exactly on the checkpoint's barrier. Verify the
      // multi-layer digest before trusting the replayed state.
      const std::uint64_t digest = state_digest(n);
      if (digest != options_.resume_digest) {
        std::fprintf(stderr,
                     "run-guard: FATAL: fingerprint mismatch at resume point "
                     "%.3f ms — checkpoint says %016" PRIx64
                     ", replay reached %016" PRIx64
                     " (differing binary, config drift, or nondeterminism)\n",
                     now.to_ms(), static_cast<std::uint64_t>(options_.resume_digest),
                     digest);
        std::fflush(nullptr);
        std::_Exit(1);
      }
      std::fprintf(stderr,
                   "run-guard: resumed at %.3f ms, fingerprint %016" PRIx64
                   " verified\n",
                   now.to_ms(), digest);
      replaying = false;
      return false;
    }
    if (g_signal != 0) {
      guarded_exit(n, kExitInterrupted,
                   g_signal == SIGINT ? "interrupted (SIGINT)"
                                      : "terminated (SIGTERM)");
    }
    if (options_.max_wall_s > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      if (elapsed > options_.max_wall_s) {
        guarded_exit(n, kExitWallClock, "wall-clock watchdog expired");
      }
    }
    if (options_.max_rss_bytes > 0 &&
        current_rss_bytes() > options_.max_rss_bytes) {
      if (n.degrade_memory()) {
        std::fprintf(stderr,
                     "run-guard: RSS %.1f MB over the %.1f MB limit; degraded "
                     "fabric memory (slice-table window shrink) and continuing\n",
                     current_rss_bytes() / 1e6, options_.max_rss_bytes / 1e6);
      } else {
        guarded_exit(n, kExitMemory,
                     "memory limit exceeded with nothing left to degrade");
      }
    }
    if (periodic && !options_.checkpoint_path.empty() &&
        now >= next_checkpoint) {
      const auto data = make_run_checkpoint(recipe_, n);
      if (const std::string err =
              sim::save_checkpoint(options_.checkpoint_path, data);
          !err.empty()) {
        std::fprintf(stderr, "run-guard: checkpoint write failed: %s\n",
                     err.c_str());
      }
      next_checkpoint = now + options_.checkpoint_every;
    }
    return false;
  };

  return net.run_with_progress(recipe_.horizon, kGuardTick, hook);
}

}  // namespace opera::exp

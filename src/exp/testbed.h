// The paper's cost-equivalent fabric family at a given scale, defined in
// one place so every figure bench builds the same testbeds:
//   paper(): 648-host scale (§5) — Opera 108x6 u=6, 3:1 Clos k=12,
//            u=7 expander over 130 ToRs, RotorNet 108x6.
//   quick(): the laptop-scale testbed the quick-mode benches always used —
//            Opera 16x4 u=4, 3:1 Clos k=8 (4 pods), u=5 expander, 20 ToRs.
#pragma once

#include <cstdint>

#include "core/fabric.h"

namespace opera::exp {

struct Testbed {
  // Opera / RotorNet shape.
  int racks = 16;
  int switches = 4;
  int hosts_per_rack = 4;
  // Cost-equivalent 3:1 folded Clos.
  int clos_radix = 8;
  int clos_oversubscription = 3;
  int clos_pods = 4;
  // Cost-equivalent static expander (u > k/2).
  int expander_tors = 20;
  int expander_uplinks = 5;
  int expander_hosts_per_tor = 3;

  std::uint64_t topo_seed = 3;

  [[nodiscard]] static Testbed quick();
  [[nodiscard]] static Testbed paper();
  [[nodiscard]] static Testbed select(bool full) { return full ? paper() : quick(); }

  [[nodiscard]] int num_hosts() const { return racks * hosts_per_rack; }

  [[nodiscard]] core::FabricConfig opera() const;
  [[nodiscard]] core::FabricConfig clos() const;
  [[nodiscard]] core::FabricConfig expander() const;
  // Hybrid RotorNet donates one extra uplink to a packet core (+33% cost).
  [[nodiscard]] core::FabricConfig rotornet(bool hybrid = false) const;
  [[nodiscard]] core::FabricConfig fabric(core::FabricKind kind) const;
};

}  // namespace opera::exp

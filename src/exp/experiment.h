// exp::Experiment — the experiment driver the bench binaries run on.
//
// It owns what every per-figure binary used to re-implement by hand:
// building fabrics through core::NetworkFactory, cross-fabric host-id
// remapping, submission, early-stopped runs, and structured FCT emission.
// A figure like Fig. 9 reduces to a declarative FctSweep (fabrics x loads
// x workload); one-off scenarios use run() directly and query the
// returned network.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fabric.h"
#include "exp/output.h"
#include "exp/testbed.h"
#include "sim/time.h"
#include "workload/synthetic.h"

namespace opera::exp {

// Flow-size buckets for FCT-vs-size rows (log-spaced like the paper's
// Fig. 7/9 x axes).
struct SizeBucket {
  std::int64_t lo;
  std::int64_t hi;
  const char* label;
};
[[nodiscard]] const std::vector<SizeBucket>& fct_buckets();

class Experiment {
 public:
  // Parses --full / --csv / --json from argv and opens the report.
  Experiment(std::string name, int argc, char** argv);

  [[nodiscard]] bool full() const { return opts_.full; }
  [[nodiscard]] const CliOptions& cli() const { return opts_; }
  [[nodiscard]] Report& report() { return report_; }

  struct RunOptions {
    sim::Time horizon;
    // Stop the run as soon as every submitted flow has completed instead
    // of burning wall-clock to the horizon (identical completion stats).
    bool stop_when_done = true;
    // Remap workload host ids into the fabric's host range (the
    // cross-fabric fixup; identity when host counts already match).
    bool remap = true;
    // Tag every submitted flow (application-based tagging, §3.4).
    std::optional<net::TrafficClass> force_class;
    // Runs after construction, before submission — install tracker hooks.
    std::function<void(core::Network&)> setup;
  };

  struct RunResult {
    std::string label;
    std::unique_ptr<core::Network> net;  // kept alive for custom queries
    std::size_t submitted = 0;
    core::Network::RunStatus status;
    double wall_seconds = 0.0;
  };

  // Builds the fabric, submits `flows`, runs to `opts.horizon` (early-
  // stopping when done), and returns the network for inspection.
  RunResult run(const std::string& label, const core::FabricConfig& config,
                const std::vector<workload::FlowSpec>& flows,
                const RunOptions& opts);

  // Standard per-bucket FCT rows into table "fct":
  //   fabric, load_pct, bucket, flows, p50_us, p99_us.
  void emit_fct_rows(const std::string& label, double load_pct,
                     const core::Network& net);

  // A declarative figure: for each load (outer) and fabric (inner), run
  // `make_flows(load)` and emit the standard FCT rows.
  struct FabricSpec {
    std::string label;
    core::FabricConfig config;
    std::optional<net::TrafficClass> force_class;
  };
  struct FctSweep {
    std::vector<FabricSpec> fabrics;
    std::vector<double> loads;  // fraction of aggregate host bandwidth
    std::function<std::vector<workload::FlowSpec>(double load)> make_flows;
    sim::Time horizon;
  };
  void run_fct_sweep(const FctSweep& sweep);

 private:
  CliOptions opts_;
  Report report_;
  int noted_threads_ = -1;  // last `# threads=` note value; -1 = none yet
  // Last `# engine=` note value; packet runs (the default) emit none.
  core::EngineKind noted_engine_ = core::EngineKind::kPacket;
};

}  // namespace opera::exp

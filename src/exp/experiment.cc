#include "exp/experiment.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "fluid/fluid_network.h"

namespace opera::exp {

const std::vector<SizeBucket>& fct_buckets() {
  static const std::vector<SizeBucket> buckets = {
      {0, 10'000, "<10KB"},
      {10'000, 100'000, "10KB-100KB"},
      {100'000, 1'000'000, "100KB-1MB"},
      {1'000'000, 15'000'000, "1MB-15MB"},
      {15'000'000, 1LL << 62, ">=15MB (bulk)"},
  };
  return buckets;
}

Experiment::Experiment(std::string name, int argc, char** argv)
    : opts_(CliOptions::parse(argc, argv)),
      report_(std::move(name), opts_.format) {
  // Every bench binary goes through Experiment, so this is the one place
  // the fluid/hybrid builders are guaranteed to be installed before the
  // first NetworkFactory::build (core cannot depend on fluid itself).
  fluid::register_fluid_engines();
}

Experiment::RunResult Experiment::run(const std::string& label,
                                      const core::FabricConfig& config,
                                      const std::vector<workload::FlowSpec>& flows,
                                      const RunOptions& opts) {
  const auto wall_start = std::chrono::steady_clock::now();
  RunResult result;
  result.label = label;
  // --threads applies to any run that didn't pin a count itself.
  core::FabricConfig effective = config;
  if (effective.threads == 0 && opts_.threads > 0) effective.threads = opts_.threads;
  // --engine applies to any run that didn't pin an engine itself.
  if (!opts_.engine.empty() && effective.engine == core::EngineKind::kPacket) {
    const auto engine = core::parse_engine_kind(opts_.engine);
    if (!engine) {
      std::fprintf(stderr,
                   "%s: unknown engine '%s' (expected packet, fluid or "
                   "hybrid)\n",
                   report_.bench().c_str(), opts_.engine.c_str());
      std::exit(2);
    }
    effective.engine = *engine;
  }
  if (effective.engine != noted_engine_) {
    noted_engine_ = effective.engine;
    report_.note("engine=%s", core::engine_kind_name(effective.engine));
  }
  result.net = core::NetworkFactory::build(effective);
  // Emit the shard count as report metadata, from the *resolved* count
  // (which includes the OPERA_TEST_THREADS env default and the rack-count
  // clamp — not just the raw flag), so result artifacts record how the
  // wall-clock was produced (scripts/check_bench_baseline.py carries it
  // through). Re-emitted whenever a sweep's resolved count changes;
  // parse_csv_threads summarizes a mixed artifact as the maximum.
  if (result.net->num_shards() != noted_threads_ &&
      (result.net->num_shards() > 1 || noted_threads_ > 0)) {
    noted_threads_ = result.net->num_shards();
    report_.note("threads=%d", noted_threads_);
  }
  if (opts.setup) opts.setup(*result.net);
  for (const auto& f : flows) {
    if (opts.remap) {
      result.net->submit_remapped(f.src_host, f.dst_host, f.size_bytes, f.start,
                                  opts.force_class);
    } else {
      result.net->submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start,
                              opts.force_class);
    }
    ++result.submitted;
  }
  if (opts.stop_when_done) {
    result.status = result.net->run_to_completion(opts.horizon);
  } else {
    result.net->run_until(opts.horizon);
    result.status = {opts.horizon, false};
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

void Experiment::emit_fct_rows(const std::string& label, double load_pct,
                               const core::Network& net) {
  auto& table = report_.table(
      "fct", {"fabric", "load_pct", "bucket", "flows", "p50_us", "p99_us"});
  const auto& tracker = net.tracker();
  for (const auto& bucket : fct_buckets()) {
    const auto fct = tracker.fct_us(bucket.lo, bucket.hi);
    if (fct.empty()) {
      table.row({label, Value(load_pct, 0), bucket.label,
                 static_cast<std::int64_t>(fct.count()), "-", "-"});
      continue;
    }
    table.row({label, Value(load_pct, 0), bucket.label,
               static_cast<std::int64_t>(fct.count()),
               Value(fct.percentile(50), 1), Value(fct.percentile(99), 1)});
  }
}

void Experiment::run_fct_sweep(const FctSweep& sweep) {
  for (const double load : sweep.loads) {
    const auto flows = sweep.make_flows(load);
    for (const auto& fabric : sweep.fabrics) {
      RunOptions opts;
      opts.horizon = sweep.horizon;
      opts.force_class = fabric.force_class;
      const auto result = run(fabric.label, fabric.config, flows, opts);
      emit_fct_rows(fabric.label, load * 100.0, *result.net);
    }
  }
}

}  // namespace opera::exp

#include "exp/cost_sweep.h"

#include <algorithm>
#include <string_view>

#include "core/cost_model.h"
#include "exp/experiment.h"
#include "fluid/throughput.h"
#include "topo/random_regular.h"

namespace opera::exp {

namespace {

constexpr double kRate = 10e9;

fluid::Demand make_workload(std::string_view name, int racks, int hosts,
                            unsigned seed) {
  using fluid::Demand;
  if (name == "hotrack") return Demand::hotrack(racks, hosts, kRate);
  if (name == "skew[0.2,1]") return Demand::skew(racks, hosts, kRate, 0.2, seed);
  if (name == "permutation") return Demand::permutation(racks, hosts, kRate, seed);
  return Demand::all_to_all(racks, hosts, kRate);
}

}  // namespace

void run_cost_sweep(Experiment& ex, int k, std::uint64_t rng_seed) {
  using core::CostModel;
  const auto hosts = CostModel::clos_hosts(k, 3.0);
  const int opera_racks = static_cast<int>(CostModel::opera_racks(k));
  const int d_opera = k / 2;

  const char* workloads[] = {"hotrack", "skew[0.2,1]", "permutation", "all-to-all"};
  const double alphas[] = {1.0, 1.25, 1.5, 1.75, 2.0};

  ex.report().note("k=%d, %lld hosts", k, static_cast<long long>(hosts));
  auto& table = ex.report().table(
      "throughput", {"workload", "alpha", "opera", "expander", "folded_clos"});

  for (const char* wl : workloads) {
    // Opera is independent of alpha: compute once.
    fluid::RotorModelParams rp;
    rp.num_racks = opera_racks;
    rp.uplinks = d_opera;
    rp.link_rate_bps = kRate;
    rp.active_fraction = static_cast<double>(d_opera - 1) / d_opera;
    rp.duty_cycle = 0.9;
    const double opera_theta = std::min(
        1.0,
        fluid::rotor_throughput(make_workload(wl, opera_racks, d_opera, 7), rp));

    for (const double alpha : alphas) {
      // Expander at this cost point.
      const int u_e = CostModel::expander_uplinks(alpha, k);
      const int d_e = k - u_e;
      const int racks_e = static_cast<int>(hosts / d_e);
      sim::Rng rng(rng_seed);
      const auto g = topo::random_regular_graph(racks_e, u_e, rng);
      const double exp_theta = std::min(
          1.0, fluid::expander_throughput(make_workload(wl, racks_e, d_e, 7), g,
                                          kRate));

      // Clos at this cost point.
      const double f = CostModel::clos_oversubscription(alpha);
      const double clos_theta = std::min(
          1.0, fluid::clos_throughput(make_workload(wl, opera_racks, d_opera, 7),
                                      d_opera, kRate, f));

      table.row({wl, Value(alpha, 2), Value(opera_theta, 3), Value(exp_theta, 3),
                 Value(clos_theta, 3)});
    }
  }
}

}  // namespace opera::exp

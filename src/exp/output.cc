#include "exp/output.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace opera::exp {

namespace {

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

CliOptions CliOptions::parse(int argc, char** argv) {
  CliOptions opts;
  opts.full = has_flag(argc, argv, "--full");
  if (has_flag(argc, argv, "--json")) {
    opts.format = OutputFormat::kJson;
  } else if (has_flag(argc, argv, "--csv")) {
    opts.format = OutputFormat::kCsv;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      opts.threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      opts.engine = argv[i] + 9;
    }
  }
  return opts;
}

bool CliOptions::has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::string Value::text() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  if (const auto* d = std::get_if<double>(&data_)) {
    return format_double(*d, decimals_);
  }
  return std::to_string(std::get<std::int64_t>(data_));
}

std::string Value::csv() const {
  std::string t = text();
  if (t.find_first_of(",\"\n") == std::string::npos) return t;
  std::string out = "\"";
  for (const char c : t) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string Value::json() const {
  if (is_string()) return json_escape(std::get<std::string>(data_));
  return text();
}

Table::Table(Report& report, std::string id, std::vector<std::string> columns)
    : report_(report), id_(std::move(id)), columns_(std::move(columns)) {
  for (const auto& c : columns_) {
    widths_.push_back(c.size() < 10 ? 10 : c.size());
  }
}

void Table::print_header() const {
  if (report_.format_ == OutputFormat::kCsv) {
    // Header rows lead with the literal field "table"; data rows lead with
    // the table id (docs/BENCH_OUTPUT.md).
    std::fputs("table", stdout);
    for (const auto& c : columns_) std::printf(",%s", c.c_str());
    std::fputc('\n', stdout);
  } else if (report_.format_ == OutputFormat::kHuman) {
    std::printf("\n[%s]\n", id_.c_str());
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths_[i]), columns_[i].c_str());
    }
    std::fputc('\n', stdout);
  }
}

void Table::row(std::vector<Value> cells) {
  if (!header_printed_) {
    print_header();
    header_printed_ = true;
  }
  if (report_.format_ == OutputFormat::kCsv) {
    std::fputs(Value(id_).csv().c_str(), stdout);
    for (const auto& v : cells) std::printf(",%s", v.csv().c_str());
    std::fputc('\n', stdout);
    std::fflush(stdout);
  } else if (report_.format_ == OutputFormat::kHuman) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const int w = static_cast<int>(i < widths_.size() ? widths_[i] : 10);
      const std::string t = cells[i].text();
      if (cells[i].is_string()) {
        std::printf("%-*s  ", w, t.c_str());
      } else {
        std::printf("%*s  ", w, t.c_str());
      }
    }
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  rows_.push_back(std::move(cells));
}

Report::Report(std::string bench, OutputFormat format)
    : bench_(std::move(bench)), format_(format) {
  if (format_ == OutputFormat::kHuman) {
    std::printf("==============================================================\n");
    std::printf("%s\n", bench_.c_str());
    std::printf("==============================================================\n");
  } else if (format_ == OutputFormat::kCsv) {
    std::printf("# bench: %s\n", bench_.c_str());
  }
}

Report::~Report() { finish(); }

Table& Report::table(const std::string& id, std::vector<std::string> columns) {
  for (auto& t : tables_) {
    if (t->id() == id) {
      // Re-lookup with {} is fine; a *different* column list would emit
      // headers that no longer describe the rows.
      assert(columns.empty() || columns == t->columns());
      return *t;
    }
  }
  tables_.push_back(std::unique_ptr<Table>(new Table(*this, id, std::move(columns))));
  return *tables_.back();
}

void Report::note(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  notes_.emplace_back(buf);
  if (format_ == OutputFormat::kHuman) {
    std::printf("%s\n", buf);
  } else if (format_ == OutputFormat::kCsv) {
    // Prefix every line of the note so the CSV stays machine-readable.
    std::string line;
    for (const char* p = buf;; ++p) {
      if (*p == '\n' || *p == '\0') {
        if (!line.empty()) std::printf("# %s\n", line.c_str());
        line.clear();
        if (*p == '\0') break;
      } else {
        line += *p;
      }
    }
  }
  std::fflush(stdout);
}

void Report::finish() {
  if (finished_) return;
  finished_ = true;
  if (format_ != OutputFormat::kJson) return;
  std::printf("{\"bench\":%s,\"tables\":{", Value(bench_).json().c_str());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const auto& table = *tables_[t];
    if (t > 0) std::fputc(',', stdout);
    std::printf("%s:{\"columns\":[", Value(table.id()).json().c_str());
    for (std::size_t c = 0; c < table.columns().size(); ++c) {
      if (c > 0) std::fputc(',', stdout);
      std::fputs(Value(table.columns()[c]).json().c_str(), stdout);
    }
    std::fputs("],\"rows\":[", stdout);
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      if (r > 0) std::fputc(',', stdout);
      std::fputc('[', stdout);
      const auto& row = table.rows()[r];
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) std::fputc(',', stdout);
        std::fputs(row[c].json().c_str(), stdout);
      }
      std::fputc(']', stdout);
    }
    std::fputs("]}", stdout);
  }
  std::fputs("},\"notes\":[", stdout);
  for (std::size_t n = 0; n < notes_.size(); ++n) {
    if (n > 0) std::fputc(',', stdout);
    std::fputs(Value(notes_[n]).json().c_str(), stdout);
  }
  std::fputs("]}\n", stdout);
  std::fflush(stdout);
}

namespace {

// Shared /proc/self/status field reader for the RSS probes below.
std::size_t proc_status_kb(const char* field, std::size_t field_len) {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      kb = std::strtoull(line + field_len, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  (void)field;
  (void)field_len;
  return 0;
#endif
}

}  // namespace

std::size_t peak_rss_bytes() { return proc_status_kb("VmHWM:", 6); }

std::size_t current_rss_bytes() { return proc_status_kb("VmRSS:", 6); }

}  // namespace opera::exp

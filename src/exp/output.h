// Structured result emission for the bench/example binaries.
//
// Every binary builds a Report and feeds it typed tables; the CLI picks
// the rendering:
//   (default) human-readable aligned tables plus commentary notes;
//   --csv     streaming CSV (schema in docs/BENCH_OUTPUT.md);
//   --json    one JSON object per bench, emitted at exit.
// Numeric values are identical across formats — CI diffs the CSV.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

namespace opera::exp {

enum class OutputFormat : std::uint8_t { kHuman, kCsv, kJson };

// Flags shared by all bench binaries: --full (paper scale), --csv, --json,
// --threads=N (sharded event loop; Opera fabrics), --engine=NAME
// (simulation engine; Opera fabrics). Unknown arguments are ignored so
// binaries can add their own.
struct CliOptions {
  bool full = false;
  OutputFormat format = OutputFormat::kHuman;
  // Shard count for fabrics that support the sharded event loop; 0 = the
  // config/env default (see core::OperaConfig::threads).
  int threads = 0;
  // Simulation engine override (packet | fluid | hybrid), applied by
  // exp::Experiment to any run whose config didn't pin one itself; empty
  // = no override. Validated against core::parse_engine_kind at apply
  // time, so a typo is a loud error, not a silent packet run.
  std::string engine;

  static CliOptions parse(int argc, char** argv);
  static bool has_flag(int argc, char** argv, const char* flag);
};

// Peak resident-set size of this process in bytes (Linux VmHWM; 0 where
// the platform doesn't expose it). The scale benches report it so memory
// regressions — the k=24 slice-table story — are visible in CI artifacts.
[[nodiscard]] std::size_t peak_rss_bytes();

// Current resident-set size in bytes (Linux VmRSS; 0 where the platform
// doesn't expose it). exp::RunGuard polls it for the memory-pressure
// degradation path.
[[nodiscard]] std::size_t current_rss_bytes();

// One typed cell. Doubles carry their print precision so human, CSV and
// JSON renderings agree on the numeric text.
class Value {
 public:
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(double v, int decimals = 3) : data_(v), decimals_(decimals) {}
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  Value(T v) : data_(static_cast<std::int64_t>(v)) {}

  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }
  [[nodiscard]] std::string text() const;  // plain numeric/string text
  [[nodiscard]] std::string csv() const;   // text, quoted when needed
  [[nodiscard]] std::string json() const;  // quoted+escaped or numeric

 private:
  std::variant<std::string, double, std::int64_t> data_;
  int decimals_ = 3;
};

class Report;

// A named table with fixed columns; rows stream to stdout in human/CSV
// mode and buffer for JSON. Obtained from Report::table().
class Table {
 public:
  void row(std::vector<Value> cells);

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }
  [[nodiscard]] const std::vector<std::vector<Value>>& rows() const { return rows_; }

 private:
  friend class Report;
  Table(Report& report, std::string id, std::vector<std::string> columns);
  void print_header() const;

  Report& report_;
  std::string id_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Value>> rows_;
  std::vector<std::size_t> widths_;  // human mode column widths
  bool header_printed_ = false;
};

class Report {
 public:
  Report(std::string bench, OutputFormat format);
  ~Report();  // calls finish()

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  // Returns the table `id`, creating it with `columns` on first use.
  Table& table(const std::string& id, std::vector<std::string> columns);

  // Free-form commentary: printed in human mode, '#'-prefixed in CSV,
  // collected under "notes" in JSON. printf-style.
  void note(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  // Flushes JSON output; further use is invalid. Idempotent.
  void finish();

  [[nodiscard]] OutputFormat format() const { return format_; }
  [[nodiscard]] const std::string& bench() const { return bench_; }

 private:
  friend class Table;

  std::string bench_;
  OutputFormat format_;
  std::vector<std::unique_ptr<Table>> tables_;  // creation order
  std::vector<std::string> notes_;
  bool finished_ = false;
};

}  // namespace opera::exp

#include "topo/one_factorization.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace opera::topo {

bool is_valid_matching(const Matching& m) {
  const auto n = static_cast<Vertex>(m.size());
  for (Vertex v = 0; v < n; ++v) {
    const Vertex w = m[static_cast<std::size_t>(v)];
    if (w < 0 || w >= n) return false;
    if (m[static_cast<std::size_t>(w)] != v) return false;
  }
  return true;
}

bool is_complete_factorization(const std::vector<Matching>& ms) {
  if (ms.empty()) return false;
  const std::size_t n = ms.front().size();
  // covered[a*n + b] marks pair (a, b); the factorization must cover each
  // ordered pair exactly once (diagonal included, via self-matches).
  std::vector<bool> covered(n * n, false);
  for (const auto& m : ms) {
    if (m.size() != n || !is_valid_matching(m)) return false;
    for (std::size_t v = 0; v < n; ++v) {
      const auto w = static_cast<std::size_t>(m[v]);
      if (covered[v * n + w]) return false;  // overlap between matchings
      covered[v * n + w] = true;
    }
  }
  for (const bool c : covered) {
    if (!c) return false;  // some pair never connected
  }
  return true;
}

std::vector<Matching> circle_factorization(Vertex n) {
  assert(n >= 1);
  if (n % 2 == 1) {
    // Odd N: factor K_{N+1} and strip the dummy vertex N; the dummy's
    // partner becomes self-matched in that round.
    const auto big = circle_factorization(n + 1);
    std::vector<Matching> out;
    out.reserve(static_cast<std::size_t>(n));
    for (const auto& m : big) {
      // The identity matching of the even factorization would map the dummy
      // to itself and every real vertex to itself; dropping the dummy makes
      // it the all-self matching, which we keep (it covers the diagonal).
      Matching small(static_cast<std::size_t>(n));
      for (Vertex v = 0; v < n; ++v) {
        const Vertex w = m[static_cast<std::size_t>(v)];
        small[static_cast<std::size_t>(v)] = (w == n) ? v : w;
      }
      out.push_back(std::move(small));
    }
    // K_{N+1} factorization has N+1 matchings; the identity round and one
    // other round merge... they do not: each of the N+1 rounds is distinct.
    // But the diagonal pair (v, v) is now covered multiple times (once in
    // the identity round, once whenever v was the dummy's partner). Keep
    // only rounds that are not the pure identity beyond the first.
    // Simpler and still N matchings: drop the identity round entirely; the
    // diagonal is covered by the self-matches created by the dummy.
    std::vector<Matching> filtered;
    for (auto& m : out) {
      bool identity = true;
      for (Vertex v = 0; v < n; ++v) {
        if (m[static_cast<std::size_t>(v)] != v) { identity = false; break; }
      }
      if (!identity) filtered.push_back(std::move(m));
    }
    return filtered;
  }

  // Even N, circle method: fix vertex n-1 at the hub; rotate 0..n-2.
  // Round r (r = 0..n-2) matches hub<->r and (r - i) <-> (r + i) mod n-1.
  std::vector<Matching> out;
  out.reserve(static_cast<std::size_t>(n));
  // Identity matching first: covers the diagonal of the all-ones matrix.
  Matching ident(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) ident[static_cast<std::size_t>(v)] = v;
  out.push_back(std::move(ident));

  const Vertex m = n - 1;  // modulus for the rotating vertices
  for (Vertex r = 0; r < m; ++r) {
    Matching match(static_cast<std::size_t>(n));
    match[static_cast<std::size_t>(n - 1)] = r;
    match[static_cast<std::size_t>(r)] = n - 1;
    for (Vertex i = 1; i <= (m - 1) / 2; ++i) {
      const Vertex a = (r + i) % m;
      const Vertex b = (r - i % m + m) % m;
      match[static_cast<std::size_t>(a)] = b;
      match[static_cast<std::size_t>(b)] = a;
    }
    out.push_back(std::move(match));
  }
  return out;
}

void alternating_cycle_swap(Matching& a, Matching& b, Vertex start) {
  // Walk the alternating cycle start -a- v1 -b- v2 -a- ... until we return
  // to start. Unions of two disjoint perfect matchings decompose into even
  // cycles, so the walk terminates back at `start` on a b-edge.
  std::vector<std::pair<Vertex, Vertex>> a_edges;
  std::vector<std::pair<Vertex, Vertex>> b_edges;
  Vertex cur = start;
  bool use_a = true;
  do {
    const Vertex nxt = use_a ? a[static_cast<std::size_t>(cur)] : b[static_cast<std::size_t>(cur)];
    (use_a ? a_edges : b_edges).emplace_back(cur, nxt);
    cur = nxt;
    use_a = !use_a;
  } while (cur != start);
  for (const auto& [p, q] : a_edges) {
    b[static_cast<std::size_t>(p)] = q;
    b[static_cast<std::size_t>(q)] = p;
  }
  for (const auto& [p, q] : b_edges) {
    a[static_cast<std::size_t>(p)] = q;
    a[static_cast<std::size_t>(q)] = p;
  }
}

// Uses randomized greedy matching with a local repair step: when a vertex
// has no unmatched compatible partner left, it steals a compatible matched
// vertex and releases that vertex's partner back into the pool. Returns an
// empty matching on failure (repair budget exhausted or a vertex ran out
// of compatible partners entirely).
Matching random_disjoint_matching(Vertex n, const std::vector<std::uint8_t>& used,
                                  sim::Rng& rng) {
  const auto sz = static_cast<std::size_t>(n);
  Matching match(sz, kNoVertex);
  std::vector<Vertex> pool;
  pool.reserve(sz);
  for (Vertex v = 0; v < n; ++v) pool.push_back(v);
  rng.shuffle(std::span<Vertex>{pool});

  std::int64_t repair_budget = 40LL * n;
  std::vector<Vertex> candidates;
  candidates.reserve(sz);
  while (!pool.empty()) {
    // Pop a random unmatched vertex (entries may be stale after repairs).
    const std::size_t vi = rng.index(pool.size());
    const Vertex v = pool[vi];
    pool[vi] = pool.back();
    pool.pop_back();
    if (match[static_cast<std::size_t>(v)] != kNoVertex) continue;
    const std::uint8_t* v_used = used.data() + static_cast<std::size_t>(v) * sz;

    // Preferred: a compatible unmatched partner. (w == v cannot occur: v
    // was popped from the pool and the diagonal is marked used anyway.)
    candidates.clear();
    for (const Vertex w : pool) {
      if (match[static_cast<std::size_t>(w)] == kNoVertex &&
          v_used[static_cast<std::size_t>(w)] == 0) {
        candidates.push_back(w);
      }
    }
    if (!candidates.empty()) {
      const Vertex w = candidates[rng.index(candidates.size())];
      match[static_cast<std::size_t>(v)] = w;
      match[static_cast<std::size_t>(w)] = v;
      continue;
    }

    // Repair: steal a compatible matched vertex w from its partner x.
    for (Vertex w = 0; w < n; ++w) {
      if (match[static_cast<std::size_t>(w)] != kNoVertex &&
          v_used[static_cast<std::size_t>(w)] == 0) {
        candidates.push_back(w);
      }
    }
    if (candidates.empty() || --repair_budget < 0) return {};  // failure
    const Vertex w = candidates[rng.index(candidates.size())];
    const Vertex x = match[static_cast<std::size_t>(w)];
    match[static_cast<std::size_t>(v)] = w;
    match[static_cast<std::size_t>(w)] = v;
    match[static_cast<std::size_t>(x)] = kNoVertex;
    pool.push_back(x);
  }
  return match;
}

namespace {

// Random factorization of the even complete graph: identity matching plus
// n-1 random perfect matchings drawn sequentially, each avoiding all
// previously used edges. Restarts from scratch when the tail of the
// construction wedges (e.g. the penultimate 2-regular remainder has an odd
// cycle). Returns empty when the restart budget is exhausted — the caller
// decides whether to bump the seed or give up.
std::vector<Matching> random_factorization_even_once(
    Vertex n, sim::Rng& rng, const FactorizationBudget& budget) {
  const auto sz = static_cast<std::size_t>(n);
  for (int restart = 0; restart < budget.max_restarts; ++restart) {
    std::vector<std::uint8_t> used(sz * sz, 0);
    for (std::size_t v = 0; v < sz; ++v) used[v * sz + v] = 1;  // diagonal
    std::vector<Matching> out;
    Matching ident(sz);
    for (Vertex v = 0; v < n; ++v) ident[static_cast<std::size_t>(v)] = v;
    out.push_back(std::move(ident));

    bool ok = true;
    for (Vertex round = 0; round + 1 < n && ok; ++round) {
      ok = false;
      for (int retry = 0; retry < budget.matching_retries; ++retry) {
        Matching m = random_disjoint_matching(n, used, rng);
        if (m.empty()) continue;
        for (Vertex v = 0; v < n; ++v) {
          const Vertex w = m[static_cast<std::size_t>(v)];
          used[static_cast<std::size_t>(v) * sz + static_cast<std::size_t>(w)] = 1;
        }
        out.push_back(std::move(m));
        ok = true;
        break;
      }
    }
    if (ok) return out;
  }
  return {};
}

// Seed-bumping wrapper: attempt 0 runs on the caller's rng (the success
// path is byte-identical to the pre-budget behavior); every subsequent
// attempt reseeds an independent stream from a value drawn off the
// caller's rng, warning loudly so the changed randomization is auditable.
std::vector<Matching> random_factorization_even(
    Vertex n, sim::Rng& rng, const FactorizationBudget& budget) {
  auto out = random_factorization_even_once(n, rng, budget);
  if (!out.empty()) return out;
  for (int bump = 0; bump < budget.seed_bumps; ++bump) {
    const std::uint64_t seed = rng.next_u64();
    std::fprintf(stderr,
                 "random_factorization: restart budget exhausted (n=%d, "
                 "%d restarts x %d retries); bumping to seed %llu "
                 "(attempt %d/%d)\n",
                 static_cast<int>(n), budget.max_restarts,
                 budget.matching_retries,
                 static_cast<unsigned long long>(seed), bump + 1,
                 budget.seed_bumps);
    sim::Rng bumped(seed);
    out = random_factorization_even_once(n, bumped, budget);
    if (!out.empty()) return out;
  }
  throw std::runtime_error(
      "random_factorization: restart budget exhausted after all seed bumps");
}

}  // namespace

std::vector<Matching> random_factorization(Vertex n, sim::Rng& rng,
                                           const FactorizationBudget& budget) {
  if (n % 2 == 1) {
    // Factor the even N+1 graph, then strip the dummy vertex: the dummy's
    // partner becomes self-matched, and the (now trivial) identity matching
    // is dropped, leaving exactly N matchings (see circle_factorization).
    const auto big = random_factorization_even(n + 1, rng, budget);
    std::vector<Matching> out;
    for (const auto& m : big) {
      bool identity = true;
      Matching small(static_cast<std::size_t>(n));
      for (Vertex v = 0; v < n; ++v) {
        const Vertex w = m[static_cast<std::size_t>(v)];
        small[static_cast<std::size_t>(v)] = (w == n) ? v : w;
        if (small[static_cast<std::size_t>(v)] != v) identity = false;
      }
      if (!identity) out.push_back(std::move(small));
    }
    rng.shuffle(std::span<Matching>{out});
    return out;
  }
  auto ms = random_factorization_even(n, rng, budget);
  rng.shuffle(std::span<Matching>{ms});
  return ms;
}

std::vector<Matching> lift_double(const std::vector<Matching>& base) {
  assert(!base.empty());
  const auto n = static_cast<Vertex>(base.front().size());
  assert(n % 2 == 0 && "lift_double requires an even base factorization");
  assert(is_complete_factorization(base));
  const auto big_n = static_cast<std::size_t>(2 * n);
  std::vector<Matching> out;
  out.reserve(big_n);

  // Within-copy matchings: apply each base matching to both copies.
  // (The base identity matching lifts to the identity of the big graph.)
  for (const auto& m : base) {
    Matching lifted(big_n);
    for (Vertex v = 0; v < n; ++v) {
      const Vertex w = m[static_cast<std::size_t>(v)];
      lifted[static_cast<std::size_t>(v)] = w;
      lifted[static_cast<std::size_t>(v + n)] = w + n;
    }
    out.push_back(std::move(lifted));
  }
  // Cross-copy matchings: N cyclic shifts of K_{N,N}. Shift s matches
  // vertex i in copy 0 with vertex (i + s) mod N in copy 1.
  for (Vertex s = 0; s < n; ++s) {
    Matching lifted(big_n);
    for (Vertex i = 0; i < n; ++i) {
      const Vertex j = (i + s) % n;
      lifted[static_cast<std::size_t>(i)] = j + n;
      lifted[static_cast<std::size_t>(j + n)] = i;
    }
    out.push_back(std::move(lifted));
  }
  return out;
}

Graph union_graph(const std::vector<Matching>& ms,
                  const std::vector<std::size_t>& which) {
  assert(!ms.empty());
  Graph g(static_cast<Vertex>(ms.front().size()));
  for (const std::size_t idx : which) {
    const auto& m = ms[idx];
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const Vertex w = m[static_cast<std::size_t>(v)];
      if (v < w) g.add_edge(v, w);
    }
  }
  return g;
}

}  // namespace opera::topo

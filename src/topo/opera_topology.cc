#include "topo/opera_topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace opera::topo {

FailureSet FailureSet::none(Vertex num_racks, int num_switches) {
  FailureSet f;
  f.rack_failed.assign(static_cast<std::size_t>(num_racks), false);
  f.switch_failed.assign(static_cast<std::size_t>(num_switches), false);
  f.uplink_failed.assign(static_cast<std::size_t>(num_racks),
                         std::vector<bool>(static_cast<std::size_t>(num_switches), false));
  return f;
}

bool FailureSet::any() const {
  for (const bool b : rack_failed) if (b) return true;
  for (const bool b : switch_failed) if (b) return true;
  for (const auto& row : uplink_failed) {
    for (const bool b : row) if (b) return true;
  }
  return false;
}

OperaTopology::OperaTopology(const OperaParams& params) : params_(params) {
  const Vertex n = params_.num_racks;
  const int u = params_.num_switches;
  if (n < 2 || u < 1) {
    throw std::invalid_argument("OperaTopology: need at least 2 racks and 1 switch");
  }
  if (n % u != 0) {
    throw std::invalid_argument(
        "OperaTopology: num_racks must be divisible by num_switches so each "
        "rotor switch gets an equal share of the N matchings");
  }
  // Design-time generate-and-test (paper §3.3): a random factorization is
  // an expander in every slice with high probability. We accept a
  // realization once every (sampled) slice is connected and the worst slice
  // diameter meets an expander-like bound; otherwise we draw another
  // realization, keeping the best seen as a fallback.
  constexpr int kMaxRealizations = 24;
  // A (u-1)-matching union behaves like a (u-1)-regular random graph
  // (sometimes (u-2) when the identity matching is active); its diameter
  // should be near log_{u-2}(N). Allow two hops of slack, floor of 5.
  const double base = std::max(2, u - 2);
  const int diameter_bound =
      std::max(5, static_cast<int>(std::ceil(std::log(static_cast<double>(n)) /
                                             std::log(base))) + 2);

  std::vector<Matching> best_matchings;
  std::vector<std::vector<std::size_t>> best_assignment;
  int best_worst = std::numeric_limits<int>::max();

  for (int attempt = 0; attempt < kMaxRealizations; ++attempt) {
    sim::Rng rng(params_.seed + static_cast<std::uint64_t>(attempt) * 0x51ED2701);
    matchings_ = random_factorization(n, rng);
    assert(is_complete_factorization(matchings_));

    // Randomly deal the N matchings to the u switches, N/u each, then keep
    // the dealt order as each switch's cycling order (paper: "randomly
    // choose the order in which each switch cycles through its matchings").
    const auto deal = rng.permutation(matchings_.size());
    const std::size_t per_switch = matchings_.size() / static_cast<std::size_t>(u);
    assignment_.assign(static_cast<std::size_t>(u), {});
    for (std::size_t i = 0; i < deal.size(); ++i) {
      assignment_[i / per_switch].push_back(deal[i]);
    }

    // Testing every slice is O(N^2) BFS; beyond a few hundred racks sample
    // one slice per switch phase instead.
    const bool exhaustive = n <= 256;
    const int step = exhaustive ? 1 : std::max(1, num_slices() / (4 * u));
    bool connected = true;
    int worst = 0;
    for (int s = 0; s < num_slices() && connected; s += step) {
      const auto stats = all_pairs_path_stats(slice_graph(s));
      if (stats.disconnected_pairs > 0) connected = false;
      worst = std::max(worst, static_cast<int>(stats.worst));
    }
    if (!connected) continue;
    if (worst <= diameter_bound) return;  // accepted
    if (worst < best_worst) {
      best_worst = worst;
      best_matchings = matchings_;
      best_assignment = assignment_;
    }
  }
  if (best_matchings.empty()) {
    throw std::runtime_error(
        "OperaTopology: no realization with fully-connected slices found; "
        "increase num_switches (u) relative to num_racks");
  }
  matchings_ = std::move(best_matchings);
  assignment_ = std::move(best_assignment);
}

std::size_t OperaTopology::matching_index(int sw, int slice) const {
  assert(sw >= 0 && sw < params_.num_switches);
  assert(slice >= 0 && slice < num_slices());
  const int u = params_.num_switches;
  // Switch sw reconfigures during slices {sw, sw+u, sw+2u, ...}. Its
  // matching advances when a reconfiguration completes, so by slice `slice`
  // it has advanced floor((slice - sw - 1)/u) + 1 times (0 if slice <= sw).
  const auto& mine = assignment_[static_cast<std::size_t>(sw)];
  int advances = 0;
  if (slice > sw) advances = (slice - sw - 1) / u + 1;
  return mine[static_cast<std::size_t>(advances) % mine.size()];
}

Vertex OperaTopology::circuit_peer(int sw, Vertex rack, int slice) const {
  const auto& m = matchings_[matching_index(sw, slice)];
  return m[static_cast<std::size_t>(rack)];
}

Graph OperaTopology::slice_graph(int slice, const FailureSet* failures,
                                 bool include_reconfiguring) const {
  const Vertex n = params_.num_racks;
  const int u = params_.num_switches;
  Graph g(n);
  const int down = reconfiguring_switch(slice);
  for (int sw = 0; sw < u; ++sw) {
    if (sw == down && !include_reconfiguring) continue;
    if (failures != nullptr && failures->switch_failed[static_cast<std::size_t>(sw)]) continue;
    const auto& m = matchings_[matching_index(sw, slice)];
    for (Vertex a = 0; a < n; ++a) {
      const Vertex b = m[static_cast<std::size_t>(a)];
      if (a >= b) continue;  // self-loops and double-visits
      if (failures != nullptr) {
        if (failures->rack_failed[static_cast<std::size_t>(a)] ||
            failures->rack_failed[static_cast<std::size_t>(b)] ||
            failures->uplink_failed[static_cast<std::size_t>(a)][static_cast<std::size_t>(sw)] ||
            failures->uplink_failed[static_cast<std::size_t>(b)][static_cast<std::size_t>(sw)]) {
          continue;
        }
      }
      g.add_edge(a, b);
    }
  }
  return g;
}

EcmpTable OperaTopology::slice_routes(int slice, const FailureSet* failures) const {
  return all_pairs_ecmp_next_hops(slice_graph(slice, failures));
}

bool OperaTopology::all_slices_connected() const {
  for (int s = 0; s < num_slices(); ++s) {
    if (!is_connected(slice_graph(s))) return false;
  }
  return true;
}

std::vector<int> OperaTopology::direct_slices(Vertex src, Vertex dst) const {
  std::vector<int> out;
  const int u = params_.num_switches;
  for (int s = 0; s < num_slices(); ++s) {
    const int down = reconfiguring_switch(s);
    for (int sw = 0; sw < u; ++sw) {
      if (sw == down) continue;
      if (circuit_peer(sw, src, s) == dst) {
        out.push_back(s);
        break;
      }
    }
  }
  return out;
}

}  // namespace opera::topo

#include "topo/spectral.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace opera::topo {

std::vector<double> eigenvalues(SymmetricMatrix m) {
  const std::size_t n = m.size();
  if (n == 0) return {};
  if (n == 1) return {m(0, 0)};

  constexpr int kMaxSweeps = 100;
  constexpr double kTolerance = 1e-10;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    }
    if (off < kTolerance) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-15) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // A' = G^T A G for the Givens rotation G(p, q); set() mirrors
        // writes, so updating row entries (k, p) and (k, q) for k != p, q
        // covers the symmetric counterparts.
        for (std::size_t k = 0; k < n; ++k) {
          if (k == p || k == q) continue;
          const double akp = m(k, p);
          const double akq = m(k, q);
          m.set(k, p, c * akp - s * akq);
          m.set(k, q, s * akp + c * akq);
        }
        m.set(p, p, app - t * apq);
        m.set(q, q, aqq + t * apq);
        m.set(p, q, 0.0);
      }
    }
  }

  std::vector<double> eig(n);
  for (std::size_t i = 0; i < n; ++i) eig[i] = m(i, i);
  std::sort(eig.begin(), eig.end(), std::greater<>());
  return eig;
}

SymmetricMatrix adjacency_matrix(const Graph& g) {
  SymmetricMatrix m(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Vertex w : g.neighbors(v)) {
      if (v < w) m.set(static_cast<std::size_t>(v), static_cast<std::size_t>(w), 1.0);
    }
  }
  return m;
}

SpectralInfo spectral_info(const Graph& g) {
  const auto eig = eigenvalues(adjacency_matrix(g));
  SpectralInfo info;
  if (eig.empty()) return info;
  info.lambda1 = eig.front();
  double second = 0.0;
  for (std::size_t i = 1; i < eig.size(); ++i) {
    second = std::max(second, std::abs(eig[i]));
  }
  info.lambda2_abs = second;
  info.gap = info.lambda1 - info.lambda2_abs;
  info.ramanujan_bound = info.lambda1 > 1.0 ? 2.0 * std::sqrt(info.lambda1 - 1.0) : 0.0;
  return info;
}

}  // namespace opera::topo

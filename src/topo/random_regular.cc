#include "topo/random_regular.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "topo/one_factorization.h"

namespace opera::topo {

namespace {

// One full restart-budgeted attempt on `rng`. Returns an empty (0-vertex)
// graph when the budget is exhausted — the caller decides whether to bump
// the seed or give up.
Graph random_regular_graph_once(Vertex n, Vertex u, sim::Rng& rng,
                                const RegularGraphBudget& budget) {
  // Build the graph as a union of u random pairwise-disjoint matchings —
  // the construction the paper cites for expanders ("the union of u random
  // matchings ... results in an expander graph with high probability").
  // Each matching comes from the greedy steal-repair sampler, which keeps
  // the acceptance rate near 1 even for dense graphs (large u).
  //
  // With odd n a single matching leaves one vertex out, so exact
  // u-regularity requires even n; for odd n the graph is u-regular except
  // for u vertices of degree u-1, matching what a rotor-style construction
  // yields physically.
  const auto sz = static_cast<std::size_t>(n);
  const bool odd = n % 2 == 1;

  for (int restart = 0; restart < budget.max_restarts; ++restart) {
    Graph g(n);
    std::vector<std::uint8_t> used(sz * sz, 0);
    for (std::size_t v = 0; v < sz; ++v) used[v * sz + v] = 1;
    bool ok = true;
    for (Vertex layer = 0; layer < u && ok; ++layer) {
      ok = false;
      for (int retry = 0; retry < budget.matching_retries; ++retry) {
        Matching m;
        if (odd) {
          // Leave a random vertex out: sample a perfect matching on the
          // other n-1 (even) vertices via an index compaction, then map
          // back with the skipped vertex self-matched.
          const auto skip = static_cast<Vertex>(rng.index(sz));
          const auto small_n = n - 1;
          const auto small_sz = static_cast<std::size_t>(small_n);
          std::vector<Vertex> to_full(small_sz);
          for (Vertex v = 0, j = 0; v < n; ++v) {
            if (v != skip) to_full[static_cast<std::size_t>(j++)] = v;
          }
          std::vector<std::uint8_t> small_used(small_sz * small_sz, 0);
          for (std::size_t a = 0; a < small_sz; ++a) {
            for (std::size_t b = 0; b < small_sz; ++b) {
              small_used[a * small_sz + b] =
                  used[static_cast<std::size_t>(to_full[a]) * sz +
                       static_cast<std::size_t>(to_full[b])];
            }
          }
          const Matching small = random_disjoint_matching(small_n, small_used, rng);
          if (small.empty()) continue;
          m.assign(sz, kNoVertex);
          m[static_cast<std::size_t>(skip)] = skip;
          for (std::size_t a = 0; a < small_sz; ++a) {
            m[static_cast<std::size_t>(to_full[a])] =
                to_full[static_cast<std::size_t>(small[a])];
          }
        } else {
          m = random_disjoint_matching(n, used, rng);
        }
        if (m.empty()) continue;
        for (Vertex v = 0; v < n; ++v) {
          const Vertex w = m[static_cast<std::size_t>(v)];
          if (v < w) g.add_edge(v, w);
          used[static_cast<std::size_t>(v) * sz + static_cast<std::size_t>(w)] = 1;
        }
        ok = true;
        break;
      }
    }
    if (ok && is_connected(g)) return g;
  }
  return Graph(0);
}

}  // namespace

Graph random_regular_graph(Vertex n, Vertex u, sim::Rng& rng,
                           const RegularGraphBudget& budget) {
  assert(u >= 1 && u < n);
  assert((static_cast<long long>(n) * u) % 2 == 0 &&
         "n*u must be even for a u-regular graph to exist");
  // Attempt 0 runs on the caller's rng: the success path is byte-identical
  // to the pre-budget behavior. Seed bumps run on independent streams
  // seeded off the caller's rng, each warned loudly for auditability.
  Graph g = random_regular_graph_once(n, u, rng, budget);
  if (g.num_vertices() > 0) return g;
  for (int bump = 0; bump < budget.seed_bumps; ++bump) {
    const std::uint64_t seed = rng.next_u64();
    std::fprintf(stderr,
                 "random_regular_graph: retry budget exhausted (n=%d, u=%d, "
                 "%d restarts x %d retries); bumping to seed %llu "
                 "(attempt %d/%d)\n",
                 static_cast<int>(n), static_cast<int>(u),
                 budget.max_restarts, budget.matching_retries,
                 static_cast<unsigned long long>(seed), bump + 1,
                 budget.seed_bumps);
    sim::Rng bumped(seed);
    g = random_regular_graph_once(n, u, bumped, budget);
    if (g.num_vertices() > 0) return g;
  }
  throw std::runtime_error(
      "random_regular_graph: exceeded retry budget after all seed bumps; "
      "parameters too tight (u close to n?)");
}

}  // namespace opera::topo

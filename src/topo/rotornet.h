// RotorNet baseline (paper §2.3, §5; Mellette et al., SIGCOMM 2017).
//
// Same rotor switches and matchings as Opera, but all switches reconfigure
// in unison: each slice instantiates u simultaneous matchings and the whole
// network blinks during reconfiguration. There is no multi-hop expander
// routing — traffic waits for a direct (or VLB two-hop) circuit, so a full
// cycle needs only N/u slices. The non-hybrid variant has no packet-
// switched core at all; the hybrid variant donates one of the u uplinks to
// a packet-switched network for low-latency traffic (+33% cost at u=6).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"
#include "topo/one_factorization.h"

namespace opera::topo {

// checkpoint:v1 fields=4
struct RotorNetParams {
  Vertex num_racks = 108;
  int num_switches = 6;     // rotor switches (hybrid: one fewer carries bulk)
  bool hybrid = false;      // donate uplink 0 to a packet-switched core
  std::uint64_t seed = 1;
};

class RotorNetTopology {
 public:
  explicit RotorNetTopology(const RotorNetParams& params);

  [[nodiscard]] const RotorNetParams& params() const { return params_; }
  // Rotor switches actually carrying circuit traffic.
  [[nodiscard]] int num_rotor_switches() const {
    return params_.num_switches - (params_.hybrid ? 1 : 0);
  }
  [[nodiscard]] int num_slices() const {
    return static_cast<int>(matchings_.size()) / num_rotor_switches();
  }

  // Matching implemented by rotor switch `sw` during `slice` (all switches
  // advance together).
  [[nodiscard]] std::size_t matching_index(int sw, int slice) const;
  [[nodiscard]] Vertex circuit_peer(int sw, Vertex rack, int slice) const;

  // Union of the u simultaneous matchings of `slice`.
  [[nodiscard]] Graph slice_graph(int slice) const;

  [[nodiscard]] const std::vector<Matching>& matchings() const { return matchings_; }

 private:
  RotorNetParams params_;
  std::vector<Matching> matchings_;
  std::vector<std::vector<std::size_t>> assignment_;
};

}  // namespace opera::topo

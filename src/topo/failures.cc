#include "topo/failures.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <utility>

namespace opera::topo {
namespace {

// BFS distances from src, treating dead vertices as removed.
std::vector<Vertex> masked_bfs(const Graph& g, Vertex src, const std::vector<bool>* alive) {
  std::vector<Vertex> dist(static_cast<std::size_t>(g.num_vertices()), kNoVertex);
  if (alive != nullptr && !(*alive)[static_cast<std::size_t>(src)]) return dist;
  dist[static_cast<std::size_t>(src)] = 0;
  std::deque<Vertex> frontier{src};
  while (!frontier.empty()) {
    const Vertex v = frontier.front();
    frontier.pop_front();
    for (const Vertex w : g.neighbors(v)) {
      if (alive != nullptr && !(*alive)[static_cast<std::size_t>(w)]) continue;
      if (dist[static_cast<std::size_t>(w)] == kNoVertex) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

std::size_t count_of(double fraction, std::size_t total) {
  return static_cast<std::size_t>(std::llround(fraction * static_cast<double>(total)));
}

std::vector<std::pair<Vertex, Vertex>> edge_list(const Graph& g) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(g.num_edges());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Vertex w : g.neighbors(v)) {
      if (v < w) edges.emplace_back(v, w);
    }
  }
  return edges;
}

Graph remove_edges(const Graph& g, const std::vector<std::pair<Vertex, Vertex>>& edges,
                   const std::vector<std::size_t>& failed) {
  std::vector<bool> is_failed(edges.size(), false);
  for (const std::size_t i : failed) is_failed[i] = true;
  Graph out(g.num_vertices());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!is_failed[i]) out.add_edge(edges[i].first, edges[i].second);
  }
  return out;
}

// Connectivity loss + path stats among a subset of (alive) vertices.
struct SubsetStats {
  std::size_t alive = 0;
  std::size_t disconnected_pairs = 0;
  double hop_sum = 0.0;
  std::size_t connected_pairs = 0;
  Vertex worst = 0;
  // Marks src*n+dst for each disconnected ordered pair (for any-slice
  // accumulation); only filled when `mark` is non-null.
  void accumulate(const Graph& g, const std::vector<Vertex>& subset,
                  const std::vector<bool>* alive_mask, std::vector<bool>* mark);
  [[nodiscard]] double loss() const {
    const std::size_t pairs = alive * (alive - 1);
    return pairs == 0 ? 0.0 : static_cast<double>(disconnected_pairs) / static_cast<double>(pairs);
  }
};

void SubsetStats::accumulate(const Graph& g, const std::vector<Vertex>& subset,
                             const std::vector<bool>* alive_mask, std::vector<bool>* mark) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<Vertex> alive_subset;
  for (const Vertex v : subset) {
    if (alive_mask == nullptr || (*alive_mask)[static_cast<std::size_t>(v)]) {
      alive_subset.push_back(v);
    }
  }
  alive = alive_subset.size();
  for (const Vertex src : alive_subset) {
    const auto dist = masked_bfs(g, src, alive_mask);
    for (const Vertex dst : alive_subset) {
      if (src == dst) continue;
      const Vertex d = dist[static_cast<std::size_t>(dst)];
      if (d == kNoVertex) {
        ++disconnected_pairs;
        if (mark != nullptr) {
          (*mark)[static_cast<std::size_t>(src) * n + static_cast<std::size_t>(dst)] = true;
        }
      } else {
        ++connected_pairs;
        hop_sum += d;
        worst = std::max(worst, d);
      }
    }
  }
}

}  // namespace

PathStats subset_path_stats(const Graph& g, const std::vector<Vertex>& subset,
                            const std::vector<bool>* alive) {
  PathStats stats;
  double hop_sum = 0.0;
  for (const Vertex src : subset) {
    if (alive != nullptr && !(*alive)[static_cast<std::size_t>(src)]) continue;
    const auto dist = masked_bfs(g, src, alive);
    for (const Vertex dst : subset) {
      if (src == dst) continue;
      if (alive != nullptr && !(*alive)[static_cast<std::size_t>(dst)]) continue;
      const Vertex d = dist[static_cast<std::size_t>(dst)];
      if (d == kNoVertex) {
        ++stats.disconnected_pairs;
        continue;
      }
      ++stats.connected_pairs;
      hop_sum += d;
      stats.worst = std::max(stats.worst, d);
      if (static_cast<std::size_t>(d) >= stats.hop_histogram.size()) {
        stats.hop_histogram.resize(static_cast<std::size_t>(d) + 1, 0);
      }
      ++stats.hop_histogram[static_cast<std::size_t>(d)];
    }
  }
  if (stats.connected_pairs > 0) {
    stats.average = hop_sum / static_cast<double>(stats.connected_pairs);
  }
  return stats;
}

FailureReport analyze_opera_failures(const OperaTopology& topo, FailureKind kind,
                                     double fraction, sim::Rng& rng) {
  const Vertex n = topo.num_racks();
  const int u = topo.num_switches();
  auto failures = FailureSet::none(n, u);

  switch (kind) {
    case FailureKind::kLink: {
      const auto total = static_cast<std::size_t>(n) * static_cast<std::size_t>(u);
      for (const std::size_t i : rng.sample_without_replacement(total, count_of(fraction, total))) {
        failures.uplink_failed[i / static_cast<std::size_t>(u)][i % static_cast<std::size_t>(u)] = true;
      }
      break;
    }
    case FailureKind::kTor: {
      const auto total = static_cast<std::size_t>(n);
      for (const std::size_t i : rng.sample_without_replacement(total, count_of(fraction, total))) {
        failures.rack_failed[i] = true;
      }
      break;
    }
    case FailureKind::kCircuitSwitch: {
      const auto total = static_cast<std::size_t>(u);
      for (const std::size_t i : rng.sample_without_replacement(total, count_of(fraction, total))) {
        failures.switch_failed[i] = true;
      }
      break;
    }
  }

  std::vector<Vertex> subset;
  for (Vertex v = 0; v < n; ++v) {
    if (!failures.rack_failed[static_cast<std::size_t>(v)]) subset.push_back(v);
  }
  const std::size_t alive = subset.size();
  const std::size_t pair_count = alive > 1 ? alive * (alive - 1) : 0;

  FailureReport report;
  std::vector<bool> ever_disconnected(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                                      false);
  double worst_loss = 0.0;
  double hop_sum = 0.0;
  std::size_t connected_total = 0;
  for (int s = 0; s < topo.num_slices(); ++s) {
    const Graph g = topo.slice_graph(s, &failures);
    SubsetStats stats;
    std::vector<bool> mark(ever_disconnected.size(), false);
    stats.accumulate(g, subset, nullptr, &mark);
    worst_loss = std::max(worst_loss, stats.loss());
    hop_sum += stats.hop_sum;
    connected_total += stats.connected_pairs;
    report.worst_path_length = std::max(report.worst_path_length, stats.worst);
    for (std::size_t i = 0; i < mark.size(); ++i) {
      if (mark[i]) ever_disconnected[i] = true;
    }
  }
  report.worst_slice_connectivity_loss = worst_loss;
  std::size_t ever = 0;
  for (const bool b : ever_disconnected) {
    if (b) ++ever;
  }
  report.any_slice_connectivity_loss =
      pair_count == 0 ? 0.0 : static_cast<double>(ever) / static_cast<double>(pair_count);
  report.avg_path_length =
      connected_total == 0 ? 0.0 : hop_sum / static_cast<double>(connected_total);
  return report;
}

namespace {

FailureReport analyze_static_failures(const Graph& base, const std::vector<Vertex>& tors,
                                      FailureKind kind, double fraction,
                                      const std::vector<Vertex>& switch_vertices,
                                      sim::Rng& rng) {
  Graph g = base;
  std::vector<bool> alive(static_cast<std::size_t>(base.num_vertices()), true);
  switch (kind) {
    case FailureKind::kLink: {
      const auto edges = edge_list(base);
      g = remove_edges(base, edges,
                       rng.sample_without_replacement(edges.size(),
                                                      count_of(fraction, edges.size())));
      break;
    }
    case FailureKind::kTor: {
      for (const std::size_t i :
           rng.sample_without_replacement(tors.size(), count_of(fraction, tors.size()))) {
        alive[static_cast<std::size_t>(tors[i])] = false;
      }
      break;
    }
    case FailureKind::kCircuitSwitch: {
      for (const std::size_t i : rng.sample_without_replacement(
               switch_vertices.size(), count_of(fraction, switch_vertices.size()))) {
        alive[static_cast<std::size_t>(switch_vertices[i])] = false;
      }
      break;
    }
  }
  const PathStats stats = subset_path_stats(g, tors, &alive);
  FailureReport report;
  const std::size_t pairs = stats.connected_pairs + stats.disconnected_pairs;
  report.worst_slice_connectivity_loss =
      pairs == 0 ? 0.0 : static_cast<double>(stats.disconnected_pairs) / static_cast<double>(pairs);
  report.any_slice_connectivity_loss = report.worst_slice_connectivity_loss;
  report.avg_path_length = stats.average;
  report.worst_path_length = stats.worst;
  return report;
}

}  // namespace

FailureReport analyze_clos_failures(const FoldedClos& clos, FailureKind kind,
                                    double fraction, sim::Rng& rng) {
  std::vector<Vertex> tors;
  for (Vertex v = 0; v < clos.num_tors(); ++v) tors.push_back(v);
  std::vector<Vertex> switches;
  for (Vertex v = clos.num_tors(); v < clos.switch_graph().num_vertices(); ++v) {
    switches.push_back(v);
  }
  return analyze_static_failures(clos.switch_graph(), tors, kind, fraction, switches, rng);
}

FailureReport analyze_expander_failures(const ExpanderTopology& exp, FailureKind kind,
                                        double fraction, sim::Rng& rng) {
  std::vector<Vertex> tors;
  for (Vertex v = 0; v < exp.graph().num_vertices(); ++v) tors.push_back(v);
  return analyze_static_failures(exp.graph(), tors, kind, fraction, /*switch_vertices=*/tors, rng);
}

}  // namespace opera::topo

// Three-tier oversubscribed folded-Clos (fat-tree) topology — the
// cost-equivalent packet-switched baseline (paper §2.3, §5).
//
// Structure for radix k and ToR oversubscription F = d:u —
//   * ToR: d = k*F/(F+1) host ports, u = k/(F+1) uplinks
//   * pod: k/2 ToRs, u aggregation switches; every ToR connects to every
//     agg in its pod
//   * agg: k/2 down (ToRs), k/2 up (cores)
//   * u * k/2 core switches; core c links to one agg per pod
//   * up to k pods (core radix)
// The paper's 648-host 3:1 network is k=12, F=3: 72 ToRs, 36 aggs,
// 18 cores, 12 pods.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"

namespace opera::topo {

// checkpoint:v1 fields=3
struct ClosParams {
  int radix = 12;             // k, even
  int oversubscription = 3;   // F, integer d:u ratio
  int num_pods = 0;           // 0 = maximum (k pods)
  [[nodiscard]] int tor_uplinks() const { return radix / (oversubscription + 1); }
  [[nodiscard]] int hosts_per_tor() const { return radix - tor_uplinks(); }
};

class FoldedClos {
 public:
  explicit FoldedClos(const ClosParams& params);

  [[nodiscard]] const ClosParams& params() const { return params_; }
  [[nodiscard]] int num_pods() const { return num_pods_; }
  [[nodiscard]] Vertex num_tors() const { return num_tors_; }
  [[nodiscard]] Vertex num_aggs() const { return num_aggs_; }
  [[nodiscard]] Vertex num_cores() const { return num_cores_; }
  [[nodiscard]] Vertex num_hosts() const {
    return num_tors_ * static_cast<Vertex>(params_.hosts_per_tor());
  }

  // Switch-level graph. Vertex layout: ToRs [0, T), aggs [T, T+A),
  // cores [T+A, T+A+C).
  [[nodiscard]] const Graph& switch_graph() const { return graph_; }
  [[nodiscard]] Vertex agg_vertex(Vertex agg_index) const { return num_tors_ + agg_index; }
  [[nodiscard]] Vertex core_vertex(Vertex core_index) const {
    return num_tors_ + num_aggs_ + core_index;
  }
  [[nodiscard]] bool is_tor(Vertex v) const { return v < num_tors_; }

  [[nodiscard]] int pod_of_tor(Vertex tor) const {
    return static_cast<int>(tor) / (params_.radix / 2);
  }
  // Aggregation switches (indices into [0, num_aggs)) in ToR `tor`'s pod.
  [[nodiscard]] std::vector<Vertex> pod_aggs(Vertex tor) const;
  // Core switches (indices into [0, num_cores)) connected to agg `agg`.
  [[nodiscard]] std::vector<Vertex> agg_cores(Vertex agg_index) const;

 private:
  ClosParams params_;
  int num_pods_ = 0;
  Vertex num_tors_ = 0;
  Vertex num_aggs_ = 0;
  Vertex num_cores_ = 0;
  Graph graph_;
};

}  // namespace opera::topo

// The Opera topology (paper §3): N racks whose u uplinks connect to u
// rotor circuit switches. The complete rack-to-rack graph (plus diagonal)
// is factored into N disjoint symmetric matchings; each rotor switch is
// assigned N/u of them and cycles through its set. Reconfigurations are
// offset so that exactly one switch is "down" at any instant (the paper's
// small-topology regime), giving a sequence of N topology slices per
// cycle. Every slice is the union of u-1 active matchings — an expander
// with high probability — and across a full cycle every rack pair is
// directly connected at least once.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/checkpoint.h"
#include "topo/graph.h"
#include "topo/one_factorization.h"

namespace opera::topo {

// checkpoint:v1 fields=4
struct OperaParams {
  Vertex num_racks = 108;     // N; determines slice count
  int num_switches = 6;       // u = number of rotor switches = ToR uplinks
  std::uint64_t seed = 1;     // randomization of the factorization
  // Hosts per rack (d = k/2 in the paper's 1:1-provisioned ToR).
  int hosts_per_rack = 6;

  [[nodiscard]] int tor_radix() const { return num_switches + hosts_per_rack; }
  [[nodiscard]] Vertex num_hosts() const {
    return num_racks * static_cast<Vertex>(hosts_per_rack);
  }
};

// Failed components for fault-tolerance analysis (paper §5.5, Fig. 11/18).
struct FailureSet {
  std::vector<bool> rack_failed;                  // size N
  std::vector<bool> switch_failed;                // size u
  std::vector<std::vector<bool>> uplink_failed;   // [rack][switch]

  static FailureSet none(Vertex num_racks, int num_switches);
  [[nodiscard]] bool any() const;

  // Checkpoint hook: the full membership, in index order.
  void fingerprint(sim::Fingerprint& fp) const {
    fp.mix_u64(rack_failed.size());
    for (const bool b : rack_failed) fp.mix_bool(b);
    fp.mix_u64(switch_failed.size());
    for (const bool b : switch_failed) fp.mix_bool(b);
    for (const auto& row : uplink_failed) {
      for (const bool b : row) fp.mix_bool(b);
    }
  }
};

class OperaTopology {
 public:
  explicit OperaTopology(const OperaParams& params);

  [[nodiscard]] const OperaParams& params() const { return params_; }
  [[nodiscard]] Vertex num_racks() const { return params_.num_racks; }
  [[nodiscard]] int num_switches() const { return params_.num_switches; }

  // One slice per matching: a full cycle has N slices.
  [[nodiscard]] int num_slices() const { return static_cast<int>(matchings_.size()); }

  // The rotor switch that is reconfiguring (down) during `slice`.
  [[nodiscard]] int reconfiguring_switch(int slice) const {
    return slice % params_.num_switches;
  }

  // Index into matchings() of the matching switch `sw` implements during
  // `slice`. A switch advances to its next matching when a reconfiguration
  // completes, i.e. in the slice after it was the reconfiguring switch;
  // during its reconfiguration slice this returns the outgoing matching
  // (the switch carries no traffic then either way).
  [[nodiscard]] std::size_t matching_index(int sw, int slice) const;

  // The rack that `rack`'s uplink to `sw` connects to during `slice`
  // (== rack when the matching self-matches it; callers must also check
  // reconfiguring_switch()).
  [[nodiscard]] Vertex circuit_peer(int sw, Vertex rack, int slice) const;

  // Union of the u-1 active matchings in `slice` (u matchings if
  // `include_reconfiguring` — used to model the instant after the switch
  // settles). Optional failures remove racks/switches/uplinks.
  [[nodiscard]] Graph slice_graph(int slice,
                                  const FailureSet* failures = nullptr,
                                  bool include_reconfiguring = false) const;

  // ECMP next-hop table over slice_graph(slice): the low-latency
  // forwarding state for that slice (paper §4.3's per-slice tables).
  [[nodiscard]] EcmpTable slice_routes(int slice,
                                       const FailureSet* failures = nullptr) const;

  // All matchings (N of them; matchings_[i] is an involution).
  [[nodiscard]] const std::vector<Matching>& matchings() const { return matchings_; }

  // Matching indices assigned to switch `sw`, in cycling order.
  [[nodiscard]] const std::vector<std::size_t>& switch_matchings(int sw) const {
    return assignment_[static_cast<std::size_t>(sw)];
  }

  // True iff every slice graph (under no failures) is connected — the
  // design-time acceptance test from §3.3.
  [[nodiscard]] bool all_slices_connected() const;

  // Slices (within one cycle) during which src and dst have a direct
  // circuit on a non-reconfiguring switch.
  [[nodiscard]] std::vector<int> direct_slices(Vertex src, Vertex dst) const;

 private:
  OperaParams params_;
  std::vector<Matching> matchings_;
  std::vector<std::vector<std::size_t>> assignment_;  // [switch] -> matching ids
};

}  // namespace opera::topo

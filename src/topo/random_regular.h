// Random u-regular graphs: the static-expander baseline (Jellyfish-style
// random interconnect of ToR uplinks, paper §2.3 and §5).
#pragma once

#include "sim/rng.h"
#include "topo/graph.h"

namespace opera::topo {

// Retry budgets for the randomized construction (same scheme as
// FactorizationBudget in one_factorization.h): `max_restarts` from-scratch
// attempts with `matching_retries` matching draws per layer; if the whole
// budget fails on the caller's rng stream, the generator bumps to a fresh
// seed drawn from that stream — warning loudly on stderr with the bumped
// seed — up to `seed_bumps` times before throwing. The success path
// without bumps is byte-identical to the historical behavior.
struct RegularGraphBudget {
  int max_restarts = 100;
  int matching_retries = 60;
  int seed_bumps = 8;
};

// Generates a connected simple u-regular graph on n vertices using the
// configuration (pairing) model with restarts: pair up n*u port stubs at
// random, reject self-loops/multi-edges/disconnected outcomes and retry.
// Requires n*u even and u < n. With u >= 3 the result is an expander with
// high probability, so only a handful of restarts are ever needed.
[[nodiscard]] Graph random_regular_graph(Vertex n, Vertex u, sim::Rng& rng,
                                         const RegularGraphBudget& budget = {});

}  // namespace opera::topo

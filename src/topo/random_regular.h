// Random u-regular graphs: the static-expander baseline (Jellyfish-style
// random interconnect of ToR uplinks, paper §2.3 and §5).
#pragma once

#include "sim/rng.h"
#include "topo/graph.h"

namespace opera::topo {

// Generates a connected simple u-regular graph on n vertices using the
// configuration (pairing) model with restarts: pair up n*u port stubs at
// random, reject self-loops/multi-edges/disconnected outcomes and retry.
// Requires n*u even and u < n. With u >= 3 the result is an expander with
// high probability, so only a handful of restarts are ever needed.
[[nodiscard]] Graph random_regular_graph(Vertex n, Vertex u, sim::Rng& rng);

}  // namespace opera::topo

#include "topo/folded_clos.h"

#include <cassert>
#include <stdexcept>

namespace opera::topo {

FoldedClos::FoldedClos(const ClosParams& params) : params_(params) {
  const int k = params_.radix;
  if (k < 4 || k % 2 != 0) {
    throw std::invalid_argument("FoldedClos: radix must be even and >= 4");
  }
  if (k % (params_.oversubscription + 1) != 0) {
    throw std::invalid_argument(
        "FoldedClos: radix must be divisible by F+1 for an integral split");
  }
  const int u = params_.tor_uplinks();
  num_pods_ = params_.num_pods > 0 ? params_.num_pods : k;
  if (num_pods_ > k) {
    throw std::invalid_argument("FoldedClos: pods exceed core radix");
  }
  const int tors_per_pod = k / 2;
  num_tors_ = static_cast<Vertex>(num_pods_ * tors_per_pod);
  num_aggs_ = static_cast<Vertex>(num_pods_ * u);
  num_cores_ = static_cast<Vertex>(u * (k / 2));

  graph_ = Graph(num_tors_ + num_aggs_ + num_cores_);
  // ToR <-> agg within each pod (full bipartite).
  for (Vertex tor = 0; tor < num_tors_; ++tor) {
    for (const Vertex agg : pod_aggs(tor)) {
      graph_.add_edge(tor, agg_vertex(agg));
    }
  }
  // agg <-> core: agg j of a pod (j in [0, u)) connects to cores
  // [j*k/2, (j+1)*k/2) — one uplink to each core in its group.
  for (Vertex agg = 0; agg < num_aggs_; ++agg) {
    for (const Vertex core : agg_cores(agg)) {
      graph_.add_edge(agg_vertex(agg), core_vertex(core));
    }
  }
}

std::vector<Vertex> FoldedClos::pod_aggs(Vertex tor) const {
  const int u = params_.tor_uplinks();
  const int pod = pod_of_tor(tor);
  std::vector<Vertex> out;
  out.reserve(static_cast<std::size_t>(u));
  for (int j = 0; j < u; ++j) {
    out.push_back(static_cast<Vertex>(pod * u + j));
  }
  return out;
}

std::vector<Vertex> FoldedClos::agg_cores(Vertex agg_index) const {
  const int k = params_.radix;
  const int u = params_.tor_uplinks();
  const int group = static_cast<int>(agg_index) % u;  // position within pod
  std::vector<Vertex> out;
  out.reserve(static_cast<std::size_t>(k / 2));
  for (int c = 0; c < k / 2; ++c) {
    out.push_back(static_cast<Vertex>(group * (k / 2) + c));
  }
  return out;
}

}  // namespace opera::topo

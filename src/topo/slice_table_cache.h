// topo::SliceTableCache — windowed, LRU-evicted cache of per-slice ECMP
// tables (the k=24 unlock: 432 eager tables cost ~840 MB, a 32-slice
// window ~60 MB).
//
// The rotation schedule makes slice access almost perfectly predictable:
// forwarding only ever reads the current slice's table (or the next one,
// inside the end-of-slice drain window), so a small window of tables
// around the current slice — prefetched in parallel off the schedule at
// each slice boundary — behaves exactly like the full precomputed set.
// Table *content* is a pure function of (topology, slice, failure set);
// caching changes when tables are built, never what they contain, so a
// windowed fabric is bit-identical to an eager one (see
// tests/test_routing_parity.cc).
//
// Out-of-window reads still work: get() builds on demand and counts a
// miss. Failure recovery calls invalidate_all() — only cached entries are
// dropped; rebuilt tables pick up the new failure set through the builder.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "topo/graph.h"

namespace opera::topo {

class SliceTableCache {
 public:
  // Builds the table for one slice. Must be a pure function of the slice
  // index and whatever state it captures (topology + failure set); it may
  // be invoked from prefetch()'s worker threads, concurrently for
  // different slices.
  using Builder = std::function<EcmpTable(int slice)>;

  struct Config {
    // Number of resident tables. 0 = auto: keep every slice (eager, the
    // pre-cache behavior) while the predicted footprint fits
    // memory_budget_bytes, otherwise the largest window that does.
    // Values >= the slice count also mean eager.
    int window = 0;
    std::size_t memory_budget_bytes = kDefaultBudgetBytes;
  };
  static constexpr std::size_t kDefaultBudgetBytes = 256ull << 20;
  // Forwarding needs the current and next slice (drain window) plus some
  // lookahead for the prefetcher to stay ahead of the rotation.
  static constexpr int kMinWindow = 4;

  struct Stats {
    std::uint64_t hits = 0;         // get() served from cache
    std::uint64_t demand_builds = 0;  // get() built on demand (cache miss)
    std::uint64_t prefetch_builds = 0;  // built ahead of use by prefetch()
    std::uint64_t evictions = 0;
    std::size_t resident = 0;            // tables currently cached
    std::size_t resident_bytes = 0;      // their memory footprint
    std::size_t peak_resident_bytes = 0;
  };

  SliceTableCache() = default;
  SliceTableCache(int num_slices, Config config, Builder builder);

  [[nodiscard]] int num_slices() const { return num_slices_; }
  // Resolved window size (== num_slices() when eager).
  [[nodiscard]] int window() const { return window_; }
  [[nodiscard]] bool eager() const { return window_ == num_slices_; }

  // The table for `slice`, building it on demand when not resident.
  const EcmpTable& get(int slice);

  // Bookkeeping-free lookup for the per-packet forward path: the resident
  // table, or null when evicted/never built (fall back to get()). Skips
  // the hit counter and the LRU touch — window freshness is maintained by
  // the boundary prefetch, which re-ticks every in-window slice, so
  // per-lookup touches add nothing but hot-path cost. In eager mode this
  // never returns null after construction. Reads the atomically published
  // pointer (acquire), pairing with install()'s release store, so a
  // concurrent demand build on another shard is either fully visible or
  // not yet published — never torn.
  [[nodiscard]] const EcmpTable* peek(int slice) const {
    return published_[static_cast<std::size_t>(slice)].load(std::memory_order_acquire);
  }

  // Ensures the window() slices starting at `first` (wrapping) are
  // resident, building the missing ones in parallel, and marks them
  // most-recently-used so eviction only ever claims slices behind the
  // rotation. Call at slice boundaries with the new current slice.
  void prefetch(int first);

  // Drops every cached table (failure recovery: the builder's inputs
  // changed, so cached content is stale). Resolved window is kept.
  void invalidate_all();

  // Memory-pressure degradation (exp::RunGuard): permanently shrinks the
  // resolved window to `new_window` (clamped to [kMinWindow, window())),
  // evicting the LRU overhang immediately. Returns false when already at
  // the floor (nothing left to give back). Table *content* is unaffected —
  // window size is parity-tested to be output-neutral (SliceWindowParity)
  // — so degrading mid-run never changes simulation results, only the
  // build/eviction churn. Call only from a barrier (coordinator phase),
  // like prefetch()/invalidate_all().
  bool shrink_window(int new_window);

  // Sharded execution: get()'s demand path may be hit concurrently from
  // shard phases, so it takes a mutex and defers eviction to the next
  // (single-threaded) prefetch — a demand build may briefly exceed the
  // window rather than free a table another shard could be reading.
  // peek() stays lock-free: resident in-window slots only change at
  // barriers (prefetch/invalidate), never during a phase.
  void set_concurrent(bool on) { concurrent_ = on; }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void install(int slice, EcmpTable table);  // accounting for one build
  void touch(int slice) { last_use_[static_cast<std::size_t>(slice)] = ++tick_; }
  void evict_beyond_window();

  int num_slices_ = 0;
  int window_ = 0;
  bool concurrent_ = false;
  std::unique_ptr<std::mutex> demand_mutex_;  // unique_ptr: cache is movable
  Builder builder_;
  std::vector<std::unique_ptr<EcmpTable>> slots_;  // [slice] -> table or null
  // Publication mirror of slots_ for the lock-free peek(): written with
  // release after a table is fully built, cleared before its slot is
  // freed. (The vector itself is sized once at construction; moving the
  // cache moves the buffer, never the atomics.)
  std::vector<std::atomic<const EcmpTable*>> published_;
  std::vector<std::uint64_t> last_use_;            // [slice] -> LRU tick
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace opera::topo

// Spectral analysis of topologies (paper Appendix D, Figure 17).
//
// The spectral gap of a d-regular graph is d - lambda_2, where lambda_2 is
// the second-largest eigenvalue (in absolute value) of the adjacency
// matrix. Larger gaps mean better expansion; Ramanujan graphs achieve
// lambda_2 <= 2*sqrt(d-1). We compute the full spectrum with a dense
// cyclic Jacobi eigensolver — rack-count matrices (hundreds of vertices)
// make dense O(n^3) methods perfectly adequate and dependency-free.
#pragma once

#include <vector>

#include "topo/graph.h"

namespace opera::topo {

// Dense symmetric matrix in row-major order.
class SymmetricMatrix {
 public:
  explicit SymmetricMatrix(std::size_t n) : n_(n), a_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const { return a_[i * n_ + j]; }
  void set(std::size_t i, std::size_t j, double v) {
    a_[i * n_ + j] = v;
    a_[j * n_ + i] = v;
  }

 private:
  std::size_t n_;
  std::vector<double> a_;
};

// All eigenvalues of `m`, sorted descending. Cyclic Jacobi sweeps until
// off-diagonal mass is below 1e-10 (or 100 sweeps).
[[nodiscard]] std::vector<double> eigenvalues(SymmetricMatrix m);

// Adjacency matrix of g.
[[nodiscard]] SymmetricMatrix adjacency_matrix(const Graph& g);

struct SpectralInfo {
  double lambda1 = 0.0;      // largest eigenvalue (== d for connected d-regular)
  double lambda2_abs = 0.0;  // second-largest absolute eigenvalue
  double gap = 0.0;          // lambda1 - lambda2_abs
  double ramanujan_bound = 0.0;  // 2*sqrt(lambda1 - 1)
};

// Spectral expansion summary for (approximately) regular graph g.
[[nodiscard]] SpectralInfo spectral_info(const Graph& g);

}  // namespace opera::topo

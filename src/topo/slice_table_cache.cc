#include "topo/slice_table_cache.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "sim/parallel.h"

namespace opera::topo {

SliceTableCache::SliceTableCache(int num_slices, Config config, Builder builder)
    : num_slices_(num_slices),
      demand_mutex_(std::make_unique<std::mutex>()),
      builder_(std::move(builder)) {
  assert(num_slices_ > 0 && builder_);
  slots_.resize(static_cast<std::size_t>(num_slices_));
  published_ = std::vector<std::atomic<const EcmpTable*>>(
      static_cast<std::size_t>(num_slices_));
  last_use_.assign(static_cast<std::size_t>(num_slices_), 0);

  if (config.window > 0) {
    window_ = std::min(std::max(config.window, kMinWindow), num_slices_);
  } else {
    // Auto: size the window off one measured table (slice 0 — we would
    // build it first anyway; all slices have the same table shape).
    EcmpTable probe = builder_(0);
    const std::size_t per_table = std::max<std::size_t>(1, probe.memory_bytes());
    install(0, std::move(probe));
    touch(0);
    const std::size_t all = per_table * static_cast<std::size_t>(num_slices_);
    if (all <= config.memory_budget_bytes) {
      window_ = num_slices_;
    } else {
      const auto fit = static_cast<int>(config.memory_budget_bytes / per_table);
      window_ = std::clamp(fit, kMinWindow, num_slices_);
    }
  }

  // Eager mode keeps the pre-cache construction behavior: every table is
  // built up front, in parallel across slices.
  if (eager()) prefetch(0);
}

const EcmpTable& SliceTableCache::get(int slice) {
  assert(slice >= 0 && slice < num_slices_);
  auto& slot = slots_[static_cast<std::size_t>(slice)];
  if (concurrent_) {
    // Concurrent shard phases may demand the same out-of-window slice;
    // serialize the build and re-check under the lock. Eviction is
    // deferred to the next barrier prefetch so no reader loses its table.
    const std::lock_guard<std::mutex> lock(*demand_mutex_);
    if (slot == nullptr) {
      ++stats_.demand_builds;
      install(slice, builder_(slice));
      touch(slice);
    } else {
      ++stats_.hits;
      touch(slice);
    }
    return *slot;
  }
  if (slot == nullptr) {
    ++stats_.demand_builds;
    install(slice, builder_(slice));
    touch(slice);
    evict_beyond_window();
  } else {
    ++stats_.hits;
    touch(slice);
  }
  return *slot;
}

void SliceTableCache::prefetch(int first) {
  assert(first >= 0 && first < num_slices_);
  // Collect the missing slices of the window [first, first + window).
  std::vector<int> missing;
  for (int i = 0; i < window_; ++i) {
    const int s = (first + i) % num_slices_;
    if (slots_[static_cast<std::size_t>(s)] == nullptr) missing.push_back(s);
  }
  if (!missing.empty()) {
    // Build into detached tables first: parallel workers touch disjoint
    // elements of `built` only; cache bookkeeping stays single-threaded.
    std::vector<EcmpTable> built(missing.size());
    sim::parallel_for(missing.size(),
                      [&](std::size_t i) { built[i] = builder_(missing[i]); });
    for (std::size_t i = 0; i < missing.size(); ++i) {
      install(missing[i], std::move(built[i]));
      ++stats_.prefetch_builds;
    }
  }
  // Freshen the whole window in rotation order so LRU eviction only ever
  // claims slices behind `first`.
  for (int i = window_ - 1; i >= 0; --i) touch((first + i) % num_slices_);
  evict_beyond_window();
}

void SliceTableCache::invalidate_all() {
  for (auto& p : published_) p.store(nullptr, std::memory_order_release);
  for (auto& slot : slots_) slot.reset();
  std::fill(last_use_.begin(), last_use_.end(), 0);
  stats_.resident = 0;
  stats_.resident_bytes = 0;
}

bool SliceTableCache::shrink_window(int new_window) {
  new_window = std::max(new_window, kMinWindow);
  if (new_window >= window_) return false;
  window_ = new_window;
  evict_beyond_window();
  return true;
}

void SliceTableCache::install(int slice, EcmpTable table) {
  auto& slot = slots_[static_cast<std::size_t>(slice)];
  assert(slot == nullptr);
  slot = std::make_unique<EcmpTable>(std::move(table));
  ++stats_.resident;
  stats_.resident_bytes += slot->memory_bytes();
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  // Publish after the table is fully constructed: a racing peek() either
  // sees null (and falls back to the mutex-guarded get()) or a complete
  // table.
  published_[static_cast<std::size_t>(slice)].store(slot.get(),
                                                    std::memory_order_release);
}

void SliceTableCache::evict_beyond_window() {
  while (stats_.resident > static_cast<std::size_t>(window_)) {
    int victim = -1;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (int s = 0; s < num_slices_; ++s) {
      if (slots_[static_cast<std::size_t>(s)] == nullptr) continue;
      if (last_use_[static_cast<std::size_t>(s)] < oldest) {
        oldest = last_use_[static_cast<std::size_t>(s)];
        victim = s;
      }
    }
    assert(victim >= 0);
    stats_.resident_bytes -= slots_[static_cast<std::size_t>(victim)]->memory_bytes();
    published_[static_cast<std::size_t>(victim)].store(nullptr,
                                                       std::memory_order_release);
    slots_[static_cast<std::size_t>(victim)].reset();
    --stats_.resident;
    ++stats_.evictions;
  }
}

}  // namespace opera::topo

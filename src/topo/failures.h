// Failure injection and connectivity analysis (paper §5.5, Figures 11 and
// 18-20): inject random link / ToR / rotor-switch failures, then measure
// the fraction of disconnected ToR pairs and the stretch of the surviving
// paths.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "topo/expander.h"
#include "topo/folded_clos.h"
#include "topo/graph.h"
#include "topo/opera_topology.h"

namespace opera::topo {

struct FailureReport {
  // Fraction of ordered alive-ToR pairs with no path, in the worst slice
  // (static networks have a single "slice").
  double worst_slice_connectivity_loss = 0.0;
  // Fraction of ordered alive-ToR pairs disconnected in at least one slice.
  double any_slice_connectivity_loss = 0.0;
  // Path stretch over surviving pairs, worst slice.
  double avg_path_length = 0.0;
  Vertex worst_path_length = 0;
};

enum class FailureKind { kLink, kTor, kCircuitSwitch };

// Opera: fails `fraction` of the chosen component class uniformly at
// random, then sweeps every topology slice (paper Figure 11/18).
[[nodiscard]] FailureReport analyze_opera_failures(const OperaTopology& topo,
                                                   FailureKind kind,
                                                   double fraction,
                                                   sim::Rng& rng);

// Folded Clos: link failures fail inter-switch links; ToR/switch failures
// fail whole switches (ToRs for kTor, aggs+cores for kCircuitSwitch —
// which the paper labels simply "switches"). Connectivity is measured
// between surviving ToR pairs (paper Figure 19).
[[nodiscard]] FailureReport analyze_clos_failures(const FoldedClos& clos,
                                                  FailureKind kind,
                                                  double fraction,
                                                  sim::Rng& rng);

// Static expander: link or ToR failures (paper Figure 20).
[[nodiscard]] FailureReport analyze_expander_failures(const ExpanderTopology& exp,
                                                      FailureKind kind,
                                                      double fraction,
                                                      sim::Rng& rng);

// Path statistics restricted to a vertex subset (e.g. ToRs of a Clos),
// with optional per-vertex alive mask applied to the whole graph.
[[nodiscard]] PathStats subset_path_stats(const Graph& g,
                                          const std::vector<Vertex>& subset,
                                          const std::vector<bool>* alive = nullptr);

}  // namespace opera::topo

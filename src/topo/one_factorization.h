// One-factorization of the complete graph (paper §3.3).
//
// Opera's topology starts by factoring the N x N all-ones matrix into N
// disjoint symmetric matchings — i.e., N involutive permutations whose
// union covers every (src, dst) pair, diagonal included. For even N this
// is the classic circle-method 1-factorization of K_N (N-1 perfect
// matchings) plus the identity matching (rack "connected" to itself — a
// slot that carries no traffic). For odd N each matching leaves exactly
// one rack unmatched.
//
// The paper randomizes the factorization; we apply a random vertex
// relabeling and shuffle the matching order, seeded deterministically.
// The paper also uses *graph lifting* to build large factorizations from
// small ones; `lift_double()` implements the doubling construction.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "topo/graph.h"

namespace opera::topo {

// A matching is an involutive permutation: match[v] == w means v<->w is a
// circuit in this matching; match[v] == v means v is unmatched (self-loop).
using Matching = std::vector<Vertex>;

// Returns true iff `m` is an involution on n vertices.
[[nodiscard]] bool is_valid_matching(const Matching& m);

// Returns true iff the matchings are pairwise disjoint (no rack pair
// appears in two matchings) and their union covers all of K_N plus the
// diagonal.
[[nodiscard]] bool is_complete_factorization(const std::vector<Matching>& ms);

// Deterministic circle-method factorization: exactly N matchings for any
// N >= 1. For even N: the identity matching plus N-1 perfect matchings.
// For odd N: N matchings, each leaving one vertex self-matched.
[[nodiscard]] std::vector<Matching> circle_factorization(Vertex n);

// Retry budgets for the randomized construction. The construction draws
// random matchings that can wedge (the tail remainder may have no perfect
// matching); restarts and per-round retries almost always recover. If the
// whole budget is exhausted on the caller's rng stream anyway — the stream
// can be pathological for a given n — the generator *bumps the seed*:
// it draws a fresh seed from the caller's rng, retries the full budget on
// an independent stream, and repeats up to `seed_bumps` times, warning
// loudly on stderr with the bumped seed each time. Only after every bump
// fails does it throw. The success path without bumps is byte-identical
// to the historical behavior (attempt 0 uses the caller's rng directly).
struct FactorizationBudget {
  int max_restarts = 200;     // from-scratch construction restarts
  int matching_retries = 30;  // per-round random matching draws
  int seed_bumps = 8;         // independent reseeded reruns of the above
};

// Uniformly-mixed random factorization (the paper's "randomly factor").
// Starts from the circle factorization, then mixes with alternating-cycle
// color swaps: pick two perfect matchings, find an alternating cycle in
// their union, and exchange the cycle's edges between them. Each swap
// preserves the factorization property while destroying the circle
// method's algebraic structure (which would otherwise yield circulant-like
// slice unions with poor expansion). Finishes with a random vertex
// relabeling and a shuffle of the matching order.
[[nodiscard]] std::vector<Matching> random_factorization(
    Vertex n, sim::Rng& rng, const FactorizationBudget& budget = {});

// One alternating-cycle swap between perfect matchings `a` and `b` through
// vertex `start` (exposed for testing). Both matchings must be perfect on
// the cycle through `start`.
void alternating_cycle_swap(Matching& a, Matching& b, Vertex start);

// Draws one random perfect matching on n (even) vertices that avoids the
// edges marked in `used` (row-major n*n byte map — bytes, not
// vector<bool>, because the sampler's inner loops scan whole rows and the
// bit extraction dominated large-N factorization), via randomized greedy
// matching with steal-repair. Returns an empty vector on failure. This is
// the workhorse behind random_factorization and random_regular_graph.
[[nodiscard]] Matching random_disjoint_matching(Vertex n,
                                                const std::vector<std::uint8_t>& used,
                                                sim::Rng& rng);

// Graph lifting: build a factorization of the all-ones 2N x 2N matrix from
// one of the N x N matrix. Within-copy pairs reuse the small factorization
// on both copies simultaneously; cross-copy pairs are covered by the N
// cyclic-shift matchings of K_{N,N}. Requires even N so the small perfect
// matchings stay perfect in the lift.
[[nodiscard]] std::vector<Matching> lift_double(const std::vector<Matching>& base);

// The (simple) graph formed by a union of matchings: edge v<->m[v] for
// every matched pair. Self-loops contribute nothing.
[[nodiscard]] Graph union_graph(const std::vector<Matching>& ms,
                                const std::vector<std::size_t>& which);

}  // namespace opera::topo

#include "topo/rotornet.h"

#include <cassert>
#include <stdexcept>

namespace opera::topo {

RotorNetTopology::RotorNetTopology(const RotorNetParams& params) : params_(params) {
  const Vertex n = params_.num_racks;
  const int rotors = num_rotor_switches();
  if (rotors < 1) throw std::invalid_argument("RotorNetTopology: no rotor switches");
  if (n % rotors != 0) {
    throw std::invalid_argument(
        "RotorNetTopology: num_racks must divide evenly among rotor switches");
  }
  sim::Rng rng(params_.seed);
  matchings_ = random_factorization(n, rng);
  const std::size_t per_switch = matchings_.size() / static_cast<std::size_t>(rotors);
  const auto deal = rng.permutation(matchings_.size());
  assignment_.assign(static_cast<std::size_t>(rotors), {});
  for (std::size_t i = 0; i < deal.size(); ++i) {
    assignment_[i / per_switch].push_back(deal[i]);
  }
}

std::size_t RotorNetTopology::matching_index(int sw, int slice) const {
  assert(sw >= 0 && sw < num_rotor_switches());
  const auto& mine = assignment_[static_cast<std::size_t>(sw)];
  return mine[static_cast<std::size_t>(slice) % mine.size()];
}

Vertex RotorNetTopology::circuit_peer(int sw, Vertex rack, int slice) const {
  const auto& m = matchings_[matching_index(sw, slice)];
  return m[static_cast<std::size_t>(rack)];
}

Graph RotorNetTopology::slice_graph(int slice) const {
  Graph g(params_.num_racks);
  for (int sw = 0; sw < num_rotor_switches(); ++sw) {
    const auto& m = matchings_[matching_index(sw, slice)];
    for (Vertex a = 0; a < g.num_vertices(); ++a) {
      const Vertex b = m[static_cast<std::size_t>(a)];
      if (a < b) g.add_edge(a, b);
    }
  }
  return g;
}

}  // namespace opera::topo

#include "topo/graph.h"

#include <algorithm>
#include <cassert>

namespace opera::topo {

void Graph::add_edge(Vertex a, Vertex b) {
  assert(a >= 0 && a < num_vertices() && b >= 0 && b < num_vertices());
  if (a == b) return;
  if (has_edge(a, b)) return;
  adj_[static_cast<std::size_t>(a)].push_back(b);
  adj_[static_cast<std::size_t>(b)].push_back(a);
  ++num_edges_;
}

bool Graph::has_edge(Vertex a, Vertex b) const {
  const auto& nbrs = adj_[static_cast<std::size_t>(a)];
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

Graph Graph::union_with(const Graph& other) const {
  assert(num_vertices() == other.num_vertices());
  Graph out(num_vertices());
  for (Vertex v = 0; v < num_vertices(); ++v) {
    for (const Vertex w : neighbors(v)) {
      if (v < w) out.add_edge(v, w);
    }
    for (const Vertex w : other.neighbors(v)) {
      if (v < w) out.add_edge(v, w);
    }
  }
  return out;
}

namespace {

// BFS distances from `src` written into the flat row dist[0..n); -1 marks
// unreachable. `frontier` is caller-provided scratch to avoid per-call
// allocation; it doubles as the BFS queue (`head` chases push_back).
void bfs_into_row(const Graph& g, Vertex src, Vertex* dist,
                  std::vector<Vertex>& frontier) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::fill(dist, dist + n, kNoVertex);
  dist[static_cast<std::size_t>(src)] = 0;
  frontier.clear();
  frontier.push_back(src);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const Vertex v = frontier[head];
    const Vertex dv = dist[static_cast<std::size_t>(v)];
    for (const Vertex w : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] == kNoVertex) {
        dist[static_cast<std::size_t>(w)] = dv + 1;
        frontier.push_back(w);
      }
    }
  }
}

}  // namespace

std::vector<Vertex> bfs_distances(const Graph& g, Vertex src) {
  std::vector<Vertex> dist(static_cast<std::size_t>(g.num_vertices()));
  std::vector<Vertex> frontier;
  bfs_into_row(g, src, dist.data(), frontier);
  return dist;
}

EcmpTable all_pairs_ecmp_next_hops(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  EcmpTable table;
  table.n_ = g.num_vertices();
  table.offsets_.assign(n * n + 1, 0);
  if (n == 0) return table;

  // Pass 0: the full distance matrix, one flat BFS row per source. The
  // graph is undirected, so dist[v][dst] == dist[dst][v] and the per-source
  // rows below give every dist(neighbor, dst) the counting passes need.
  std::vector<Vertex> dist(n * n);
  std::vector<Vertex> frontier;
  frontier.reserve(n);
  for (Vertex src = 0; src < table.n_; ++src) {
    bfs_into_row(g, src, dist.data() + static_cast<std::size_t>(src) * n, frontier);
  }

  // Pass 1: count next hops per (src, dst) cell into offsets_[cell + 1].
  // A neighbor nb of src is a shortest-path next hop toward dst iff
  // dist(nb, dst) == dist(src, dst) - 1. That single compare also handles
  // the edge cases: dst == src gives an expected distance of -1, and an
  // unreachable dst gives -2 — a neighbor's distance is never either (the
  // graph is undirected, so src and its neighbors share a component). The
  // branchless form vectorizes over the two sequential rows.
  for (Vertex src = 0; src < table.n_; ++src) {
    const Vertex* src_row = dist.data() + static_cast<std::size_t>(src) * n;
    std::uint32_t* counts = table.offsets_.data() + static_cast<std::size_t>(src) * n + 1;
    for (const Vertex nb : g.neighbors(src)) {
      const Vertex* nb_row = dist.data() + static_cast<std::size_t>(nb) * n;
      for (std::size_t dst = 0; dst < n; ++dst) {
        counts[dst] += static_cast<std::uint32_t>(nb_row[dst] == src_row[dst] - 1);
      }
    }
  }
  for (std::size_t cell = 1; cell <= n * n; ++cell) {
    table.offsets_[cell] += table.offsets_[cell - 1];
  }

  // Pass 2: fill, appending per-cell in neighbors(src) order (the order the
  // nested reference implementation produces). Cells are visited in offset
  // order with a local cursor that only advances on a match, so the store
  // can be unconditional (a non-matching store lands one past the cell and
  // is overwritten when the next cell fills); the +1 slack slot absorbs the
  // very last non-matching store.
  table.hops_.resize(table.offsets_.back() + 1);
  std::vector<const Vertex*> nb_rows;
  for (Vertex src = 0; src < table.n_; ++src) {
    const Vertex* src_row = dist.data() + static_cast<std::size_t>(src) * n;
    const std::uint32_t* row_offsets =
        table.offsets_.data() + static_cast<std::size_t>(src) * n;
    const auto& nbrs = g.neighbors(src);
    nb_rows.clear();
    for (const Vertex nb : nbrs) {
      nb_rows.push_back(dist.data() + static_cast<std::size_t>(nb) * n);
    }
    for (std::size_t dst = 0; dst < n; ++dst) {
      std::uint32_t cursor = row_offsets[dst];
      const Vertex want = src_row[dst] - 1;
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        table.hops_[cursor] = nbrs[j];
        cursor += static_cast<std::uint32_t>(nb_rows[j][dst] == want);
      }
    }
  }
  table.hops_.resize(table.offsets_.back());
  return table;
}

NestedEcmpTable all_pairs_ecmp_next_hops_reference(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  NestedEcmpTable next(n, std::vector<std::vector<Vertex>>(n));
  for (Vertex dst = 0; dst < g.num_vertices(); ++dst) {
    const auto dist_from_dst = bfs_distances(g, dst);
    for (Vertex src = 0; src < g.num_vertices(); ++src) {
      if (src == dst) continue;
      const Vertex d_src = dist_from_dst[static_cast<std::size_t>(src)];
      if (d_src == kNoVertex) continue;
      auto& hops = next[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
      for (const Vertex nb : g.neighbors(src)) {
        if (dist_from_dst[static_cast<std::size_t>(nb)] == d_src - 1) {
          hops.push_back(nb);
        }
      }
    }
  }
  return next;
}

PathStats all_pairs_path_stats(const Graph& g, const std::vector<bool>* alive) {
  PathStats stats;
  double hop_sum = 0.0;
  const Vertex n = g.num_vertices();
  for (Vertex src = 0; src < n; ++src) {
    if (alive != nullptr && !(*alive)[static_cast<std::size_t>(src)]) continue;
    const auto dist = bfs_distances(g, src);
    for (Vertex dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      if (alive != nullptr && !(*alive)[static_cast<std::size_t>(dst)]) continue;
      const Vertex d = dist[static_cast<std::size_t>(dst)];
      if (d == kNoVertex) {
        ++stats.disconnected_pairs;
        continue;
      }
      ++stats.connected_pairs;
      hop_sum += d;
      if (d > stats.worst) stats.worst = d;
      if (static_cast<std::size_t>(d) >= stats.hop_histogram.size()) {
        stats.hop_histogram.resize(static_cast<std::size_t>(d) + 1, 0);
      }
      ++stats.hop_histogram[static_cast<std::size_t>(d)];
    }
  }
  if (stats.connected_pairs > 0) {
    stats.average = hop_sum / static_cast<double>(stats.connected_pairs);
  }
  return stats;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](Vertex d) { return d == kNoVertex; });
}

}  // namespace opera::topo

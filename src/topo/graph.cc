#include "topo/graph.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace opera::topo {

void Graph::add_edge(Vertex a, Vertex b) {
  assert(a >= 0 && a < num_vertices() && b >= 0 && b < num_vertices());
  if (a == b) return;
  if (has_edge(a, b)) return;
  adj_[static_cast<std::size_t>(a)].push_back(b);
  adj_[static_cast<std::size_t>(b)].push_back(a);
  ++num_edges_;
}

bool Graph::has_edge(Vertex a, Vertex b) const {
  const auto& nbrs = adj_[static_cast<std::size_t>(a)];
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

Graph Graph::union_with(const Graph& other) const {
  assert(num_vertices() == other.num_vertices());
  Graph out(num_vertices());
  for (Vertex v = 0; v < num_vertices(); ++v) {
    for (const Vertex w : neighbors(v)) {
      if (v < w) out.add_edge(v, w);
    }
    for (const Vertex w : other.neighbors(v)) {
      if (v < w) out.add_edge(v, w);
    }
  }
  return out;
}

std::vector<Vertex> bfs_distances(const Graph& g, Vertex src) {
  std::vector<Vertex> dist(static_cast<std::size_t>(g.num_vertices()), kNoVertex);
  dist[static_cast<std::size_t>(src)] = 0;
  std::deque<Vertex> frontier{src};
  while (!frontier.empty()) {
    const Vertex v = frontier.front();
    frontier.pop_front();
    for (const Vertex w : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] == kNoVertex) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

EcmpTable all_pairs_ecmp_next_hops(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  EcmpTable next(n, std::vector<std::vector<Vertex>>(n));
  for (Vertex dst = 0; dst < g.num_vertices(); ++dst) {
    const auto dist_from_dst = bfs_distances(g, dst);
    for (Vertex src = 0; src < g.num_vertices(); ++src) {
      if (src == dst) continue;
      const Vertex d_src = dist_from_dst[static_cast<std::size_t>(src)];
      if (d_src == kNoVertex) continue;
      auto& hops = next[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
      for (const Vertex nb : g.neighbors(src)) {
        if (dist_from_dst[static_cast<std::size_t>(nb)] == d_src - 1) {
          hops.push_back(nb);
        }
      }
    }
  }
  return next;
}

PathStats all_pairs_path_stats(const Graph& g, const std::vector<bool>* alive) {
  PathStats stats;
  double hop_sum = 0.0;
  const Vertex n = g.num_vertices();
  for (Vertex src = 0; src < n; ++src) {
    if (alive != nullptr && !(*alive)[static_cast<std::size_t>(src)]) continue;
    const auto dist = bfs_distances(g, src);
    for (Vertex dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      if (alive != nullptr && !(*alive)[static_cast<std::size_t>(dst)]) continue;
      const Vertex d = dist[static_cast<std::size_t>(dst)];
      if (d == kNoVertex) {
        ++stats.disconnected_pairs;
        continue;
      }
      ++stats.connected_pairs;
      hop_sum += d;
      if (d > stats.worst) stats.worst = d;
      if (static_cast<std::size_t>(d) >= stats.hop_histogram.size()) {
        stats.hop_histogram.resize(static_cast<std::size_t>(d) + 1, 0);
      }
      ++stats.hop_histogram[static_cast<std::size_t>(d)];
    }
  }
  if (stats.connected_pairs > 0) {
    stats.average = hop_sum / static_cast<double>(stats.connected_pairs);
  }
  return stats;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](Vertex d) { return d == kNoVertex; });
}

}  // namespace opera::topo

// Static expander baseline (paper §2.3): each ToR's u uplinks are wired
// directly to other ToRs, forming a random u-regular graph (Jellyfish-
// style). Routing is ECMP over shortest paths.
#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "topo/graph.h"
#include "topo/random_regular.h"

namespace opera::topo {

// checkpoint:v1 fields=4
struct ExpanderParams {
  Vertex num_tors = 130;   // e.g. 650 hosts at d=5 for the u=7 baseline
  int uplinks = 7;         // u > k/2: expanders over-provision upward ports
  int hosts_per_tor = 5;   // d = k - u
  std::uint64_t seed = 1;

  [[nodiscard]] Vertex num_hosts() const {
    return num_tors * static_cast<Vertex>(hosts_per_tor);
  }
};

class ExpanderTopology {
 public:
  explicit ExpanderTopology(const ExpanderParams& params)
      : params_(params), graph_([&] {
          sim::Rng rng(params.seed);
          return random_regular_graph(params.num_tors, params.uplinks, rng);
        }()) {}

  [[nodiscard]] const ExpanderParams& params() const { return params_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] EcmpTable routes() const { return all_pairs_ecmp_next_hops(graph_); }

 private:
  ExpanderParams params_;
  Graph graph_;
};

}  // namespace opera::topo

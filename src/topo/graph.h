// Undirected simple graphs over dense vertex ids, plus the path-length and
// connectivity analyses used throughout the paper's evaluation (Figures 4,
// 11, 16, 17, 18-20).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace opera::topo {

using Vertex = std::int32_t;
inline constexpr Vertex kNoVertex = -1;

class Graph {
 public:
  Graph() = default;
  explicit Graph(Vertex n) : adj_(static_cast<std::size_t>(n)) {}

  [[nodiscard]] Vertex num_vertices() const { return static_cast<Vertex>(adj_.size()); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  // Adds the undirected edge {a, b}. Self-loops are ignored (they model a
  // rotor matching a rack to itself, which carries no traffic). Duplicate
  // edges are ignored, keeping the graph simple.
  void add_edge(Vertex a, Vertex b);

  [[nodiscard]] bool has_edge(Vertex a, Vertex b) const;
  [[nodiscard]] const std::vector<Vertex>& neighbors(Vertex v) const {
    return adj_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] Vertex degree(Vertex v) const {
    return static_cast<Vertex>(adj_[static_cast<std::size_t>(v)].size());
  }

  // Union of this graph and `other` (same vertex count required).
  [[nodiscard]] Graph union_with(const Graph& other) const;

 private:
  std::vector<std::vector<Vertex>> adj_;
  std::size_t num_edges_ = 0;
};

// BFS hop distances from `src`; unreachable vertices get -1.
[[nodiscard]] std::vector<Vertex> bfs_distances(const Graph& g, Vertex src);

// All-pairs shortest-path next-hop sets: next_hops(src, dst) lists every
// neighbor of `src` that lies on some shortest src->dst path (the ECMP
// set), in neighbors(src) order.
//
// Storage is a flat CSR layout — one offsets array indexed by src*N+dst
// into one contiguous next-hop array — instead of the former
// vector<vector<vector<Vertex>>>: a forwarding lookup is two loads with no
// pointer chasing, and building a table is two dense passes rather than
// N^2 inner-vector allocations. At the paper's N=108 a table is ~260 KB;
// at k=24 scale (N=432) ~4 MB, still far under the nested layout's
// allocator overhead.
class EcmpTable {
 public:
  EcmpTable() = default;

  [[nodiscard]] Vertex num_vertices() const { return n_; }

  // Next hops from src toward dst (empty when dst is unreachable or
  // src == dst).
  [[nodiscard]] std::span<const Vertex> next_hops(Vertex src, Vertex dst) const {
    const auto cell = static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
                      static_cast<std::size_t>(dst);
    return {hops_.data() + offsets_[cell],
            static_cast<std::size_t>(offsets_[cell + 1] - offsets_[cell])};
  }

  // Total number of stored next-hop entries (the routing-state footprint).
  [[nodiscard]] std::size_t total_entries() const { return hops_.size(); }

  // Heap + object bytes held by this table (drives the slice-table cache's
  // memory-budgeted window sizing; see topo/slice_table_cache.h).
  [[nodiscard]] std::size_t memory_bytes() const {
    return sizeof(*this) + offsets_.capacity() * sizeof(std::uint32_t) +
           hops_.capacity() * sizeof(Vertex);
  }

  friend bool operator==(const EcmpTable&, const EcmpTable&) = default;

 private:
  friend EcmpTable all_pairs_ecmp_next_hops(const Graph& g);
  Vertex n_ = 0;
  std::vector<std::uint32_t> offsets_;  // size n*n+1
  std::vector<Vertex> hops_;
};

// Builds the full table with one flat-array BFS per source vertex:
// O(V * (V + E)) time, no per-pair allocations.
[[nodiscard]] EcmpTable all_pairs_ecmp_next_hops(const Graph& g);

// Reference implementation with the seed's nested-vector layout; kept for
// the CSR parity tests (see tests/test_routing_parity.cc).
using NestedEcmpTable = std::vector<std::vector<std::vector<Vertex>>>;
[[nodiscard]] NestedEcmpTable all_pairs_ecmp_next_hops_reference(const Graph& g);

struct PathStats {
  double average = 0.0;           // mean hops over connected ordered pairs
  Vertex worst = 0;               // diameter over connected pairs
  std::size_t connected_pairs = 0;
  std::size_t disconnected_pairs = 0;  // ordered pairs with no path
  std::vector<std::size_t> hop_histogram;  // [h] = #ordered pairs at h hops
};

// All-pairs path statistics by repeated BFS. `alive` (optional) restricts
// the analysis to a subset of vertices (used for failure analysis, where
// failed ToRs are excluded from the connectivity-loss denominator).
[[nodiscard]] PathStats all_pairs_path_stats(
    const Graph& g, const std::vector<bool>* alive = nullptr);

[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace opera::topo

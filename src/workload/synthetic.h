// Synthetic workload generators for the paper's experiments:
//   * Poisson arrivals with an empirical flow-size distribution (Figs 7, 9)
//   * all-to-all shuffle at a fixed flow size (Fig. 8, §5.2)
//   * host permutation, hot-rack, skew[p,1] (Fig. 12/15, §5.6)
// plus the datacenter patterns the paper motivates but does not sweep —
// declarative param structs so an exp::FctSweep can state them inline:
//   * incast (N:1 partition-aggregate fan-in)
//   * storage replication (rack-aware primary/replica write chains)
//   * ML collective (ring all-reduce over host groups)
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "workload/flow_size_dist.h"

namespace opera::workload {

struct FlowSpec {
  std::int32_t src_host = -1;
  std::int32_t dst_host = -1;
  std::int64_t size_bytes = 0;
  sim::Time start;
};

// Poisson open-loop arrivals. `load` is the fraction of aggregate host
// link bandwidth (paper: "100% load means all hosts are driving their edge
// links at full capacity"); the flow arrival rate is
//   lambda = load * num_hosts * link_rate / (8 * mean_flow_size).
// Sources and destinations are uniform over distinct hosts.
[[nodiscard]] std::vector<FlowSpec> poisson_workload(
    const FlowSizeDistribution& dist, std::int32_t num_hosts, double load,
    double link_rate_bps, sim::Time duration, sim::Rng& rng);

// All-to-all shuffle: every host sends `flow_bytes` to every other host
// outside its own rack (the paper's MapReduce-style 100 KB shuffle).
// Starts are staggered uniformly over `stagger` (0 = simultaneous).
[[nodiscard]] std::vector<FlowSpec> shuffle_workload(
    std::int32_t num_hosts, std::int32_t hosts_per_rack, std::int64_t flow_bytes,
    sim::Time stagger, sim::Rng& rng);

// Host-level permutation: each host sends one flow to a distinct,
// non-rack-local host (a random derangement at rack granularity).
[[nodiscard]] std::vector<FlowSpec> permutation_workload(
    std::int32_t num_hosts, std::int32_t hosts_per_rack, std::int64_t flow_bytes,
    sim::Rng& rng);

// Hot rack: every host in rack 0 sends to its counterpart in rack 1.
[[nodiscard]] std::vector<FlowSpec> hotrack_workload(std::int32_t hosts_per_rack,
                                                     std::int64_t flow_bytes);

// skew[p, 1] (after Kassing et al. [29]): a fraction p of racks are active
// and exchange all-to-all traffic at full load; the rest are idle.
[[nodiscard]] std::vector<FlowSpec> skew_workload(std::int32_t num_racks,
                                                  std::int32_t hosts_per_rack,
                                                  double active_fraction,
                                                  std::int64_t flow_bytes,
                                                  sim::Rng& rng);

// Partition-aggregate incast: `events` queries, each picking one
// aggregator host and `fanin` distinct worker hosts on other racks that
// all answer with `flow_bytes` at the same instant. Events are spaced
// `spacing` apart; flows within an event are listed in draw order.
struct IncastParams {
  std::int32_t events = 8;
  std::int32_t fanin = 32;           // capped at the hosts outside the
                                     // aggregator's rack
  std::int64_t flow_bytes = 64'000;  // per-worker response
  sim::Time spacing = sim::Time::us(500);
};
[[nodiscard]] std::vector<FlowSpec> incast_workload(std::int32_t num_hosts,
                                                    std::int32_t hosts_per_rack,
                                                    const IncastParams& params,
                                                    sim::Rng& rng);

// Rack-aware replicated writes (HDFS/Ceph-style): each of `writes` ops
// picks a client and a primary on a different rack, then pipelines the
// object down a chain of `replicas` copies on pairwise-distinct racks —
// client -> primary at t, primary -> r2 at t + chain_delay, r2 -> r3 at
// t + 2*chain_delay, ... Writes start `spacing` apart.
struct StorageReplicationParams {
  std::int32_t writes = 32;
  int replicas = 3;                       // primary + 2 copies
  std::int64_t object_bytes = 4'000'000;  // one chunk
  sim::Time spacing = sim::Time::us(200);
  sim::Time chain_delay = sim::Time::us(40);  // pipeline head-start per hop
};
[[nodiscard]] std::vector<FlowSpec> storage_replication_workload(
    std::int32_t num_hosts, std::int32_t hosts_per_rack,
    const StorageReplicationParams& params, sim::Rng& rng);

// Ring all-reduce (the bandwidth-optimal collective behind data-parallel
// training): hosts are partitioned into rings of `group_size` (randomly
// placed across racks when `shuffle_placement`, contiguous otherwise;
// hosts beyond the last full group stay idle). Each ring runs the
// standard 2*(group_size-1) steps — reduce-scatter then all-gather — with
// every member sending one model_bytes/group_size chunk to its successor
// per step, steps `step_interval` apart.
struct MlCollectiveParams {
  std::int32_t group_size = 8;
  std::int64_t model_bytes = 8'000'000;  // per-member gradient buffer
  sim::Time step_interval = sim::Time::us(150);
  bool shuffle_placement = true;
};
[[nodiscard]] std::vector<FlowSpec> ml_collective_workload(
    std::int32_t num_hosts, std::int32_t hosts_per_rack,
    const MlCollectiveParams& params, sim::Rng& rng);

}  // namespace opera::workload

// Synthetic workload generators for the paper's experiments:
//   * Poisson arrivals with an empirical flow-size distribution (Figs 7, 9)
//   * all-to-all shuffle at a fixed flow size (Fig. 8, §5.2)
//   * host permutation, hot-rack, skew[p,1] (Fig. 12/15, §5.6)
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "workload/flow_size_dist.h"

namespace opera::workload {

struct FlowSpec {
  std::int32_t src_host = -1;
  std::int32_t dst_host = -1;
  std::int64_t size_bytes = 0;
  sim::Time start;
};

// Poisson open-loop arrivals. `load` is the fraction of aggregate host
// link bandwidth (paper: "100% load means all hosts are driving their edge
// links at full capacity"); the flow arrival rate is
//   lambda = load * num_hosts * link_rate / (8 * mean_flow_size).
// Sources and destinations are uniform over distinct hosts.
[[nodiscard]] std::vector<FlowSpec> poisson_workload(
    const FlowSizeDistribution& dist, std::int32_t num_hosts, double load,
    double link_rate_bps, sim::Time duration, sim::Rng& rng);

// All-to-all shuffle: every host sends `flow_bytes` to every other host
// outside its own rack (the paper's MapReduce-style 100 KB shuffle).
// Starts are staggered uniformly over `stagger` (0 = simultaneous).
[[nodiscard]] std::vector<FlowSpec> shuffle_workload(
    std::int32_t num_hosts, std::int32_t hosts_per_rack, std::int64_t flow_bytes,
    sim::Time stagger, sim::Rng& rng);

// Host-level permutation: each host sends one flow to a distinct,
// non-rack-local host (a random derangement at rack granularity).
[[nodiscard]] std::vector<FlowSpec> permutation_workload(
    std::int32_t num_hosts, std::int32_t hosts_per_rack, std::int64_t flow_bytes,
    sim::Rng& rng);

// Hot rack: every host in rack 0 sends to its counterpart in rack 1.
[[nodiscard]] std::vector<FlowSpec> hotrack_workload(std::int32_t hosts_per_rack,
                                                     std::int64_t flow_bytes);

// skew[p, 1] (after Kassing et al. [29]): a fraction p of racks are active
// and exchange all-to-all traffic at full load; the rest are idle.
[[nodiscard]] std::vector<FlowSpec> skew_workload(std::int32_t num_racks,
                                                  std::int32_t hosts_per_rack,
                                                  double active_fraction,
                                                  std::int64_t flow_bytes,
                                                  sim::Rng& rng);

}  // namespace opera::workload

// Trace replay: load recorded (or composed) flow schedules from disk and
// feed them into exp::FctSweep / core::Network::submit_remapped exactly
// like a synthetic generator would. Two interchangeable encodings, both
// specified in docs/TRACE_FORMAT.md:
//
//   * CSV  — human-readable, one flow per line:
//              start_ps,src_host,dst_host,size_bytes
//            with a mandatory header line and '#' comments. Integer
//            picosecond starts keep the round trip exact (microsecond
//            columns would quantize FlowSpec::start).
//   * binary — "OPTR1\n" magic + little-endian fixed-width records for
//            multi-million-flow day-in-the-life schedules (24 bytes/flow
//            vs ~40 for CSV, no parsing on the hot path).
//
// Loading validates hard so a malformed trace fails the run, not the
// statistics: column count, integer syntax, non-decreasing start times,
// host ids in range (when a host count is given), src != dst, and
// non-negative sizes are all rejected with a line-numbered error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/synthetic.h"

namespace opera::workload {

// Result of a trace load: either a flow list or a line-numbered error.
struct TraceParseResult {
  std::vector<FlowSpec> flows;
  std::string error;  // empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
};

// The exact CSV header every v1 trace must carry (column names double as
// the schema version fingerprint).
[[nodiscard]] const char* trace_csv_header();

// Parses a v1 CSV trace. `num_hosts` <= 0 skips the host-range check
// (replay onto an unknown fabric; submit_remapped wraps ids later).
[[nodiscard]] TraceParseResult parse_trace_csv(std::istream& in,
                                               std::int32_t num_hosts = 0);
[[nodiscard]] TraceParseResult load_trace_csv(const std::string& path,
                                              std::int32_t num_hosts = 0);

// Serializes `flows` as a v1 CSV trace (header + one line per flow).
void write_trace_csv(std::ostream& out, const std::vector<FlowSpec>& flows);
[[nodiscard]] bool save_trace_csv(const std::string& path,
                                  const std::vector<FlowSpec>& flows);

// Binary v1: 6-byte magic "OPTR1\n", uint64 flow count, then per flow
// int64 start_ps, int32 src, int32 dst, int64 size_bytes (little-endian).
[[nodiscard]] TraceParseResult parse_trace_binary(std::istream& in,
                                                  std::int32_t num_hosts = 0);
[[nodiscard]] TraceParseResult load_trace_binary(const std::string& path,
                                                 std::int32_t num_hosts = 0);
void write_trace_binary(std::ostream& out, const std::vector<FlowSpec>& flows);
[[nodiscard]] bool save_trace_binary(const std::string& path,
                                     const std::vector<FlowSpec>& flows);

// Dispatches on extension: ".csv" -> CSV, anything else -> binary.
[[nodiscard]] TraceParseResult load_trace(const std::string& path,
                                          std::int32_t num_hosts = 0);

}  // namespace opera::workload

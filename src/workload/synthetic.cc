#include "workload/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace opera::workload {

std::vector<FlowSpec> poisson_workload(const FlowSizeDistribution& dist,
                                       std::int32_t num_hosts, double load,
                                       double link_rate_bps, sim::Time duration,
                                       sim::Rng& rng) {
  assert(load > 0.0 && num_hosts >= 2);
  const double aggregate_bps = link_rate_bps * num_hosts;
  const double lambda =
      load * aggregate_bps / (8.0 * dist.mean_bytes());  // flows per second
  std::vector<FlowSpec> out;
  double t_seconds = 0.0;
  while (true) {
    t_seconds += rng.exponential(1.0 / lambda);
    const sim::Time start = sim::Time::from_seconds(t_seconds);
    if (start >= duration) break;
    FlowSpec f;
    f.src_host = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(num_hosts)));
    f.dst_host = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(num_hosts)));
    while (f.dst_host == f.src_host) {
      f.dst_host = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(num_hosts)));
    }
    f.size_bytes = dist.sample(rng);
    f.start = start;
    out.push_back(f);
  }
  return out;
}

std::vector<FlowSpec> shuffle_workload(std::int32_t num_hosts,
                                       std::int32_t hosts_per_rack,
                                       std::int64_t flow_bytes, sim::Time stagger,
                                       sim::Rng& rng) {
  std::vector<FlowSpec> out;
  for (std::int32_t s = 0; s < num_hosts; ++s) {
    for (std::int32_t t = 0; t < num_hosts; ++t) {
      if (s == t) continue;
      if (s / hosts_per_rack == t / hosts_per_rack) continue;  // rack-local excluded
      FlowSpec f;
      f.src_host = s;
      f.dst_host = t;
      f.size_bytes = flow_bytes;
      f.start = stagger == sim::Time::zero()
                    ? sim::Time::zero()
                    : sim::Time::ps(static_cast<std::int64_t>(
                          rng.uniform() * static_cast<double>(stagger.picoseconds())));
      out.push_back(f);
    }
  }
  return out;
}

std::vector<FlowSpec> permutation_workload(std::int32_t num_hosts,
                                           std::int32_t hosts_per_rack,
                                           std::int64_t flow_bytes, sim::Rng& rng) {
  // Draw permutations until none maps a host into its own rack (quick for
  // any realistic rack count), then pair host i with perm[i].
  const auto n = static_cast<std::size_t>(num_hosts);
  std::vector<std::size_t> perm;
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    perm = rng.permutation(n);
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      ok = static_cast<std::int32_t>(i) / hosts_per_rack !=
           static_cast<std::int32_t>(perm[i]) / hosts_per_rack;
    }
    if (ok) break;
    perm.clear();
  }
  assert(!perm.empty() && "could not find rack-disjoint permutation");
  std::vector<FlowSpec> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FlowSpec{static_cast<std::int32_t>(i),
                           static_cast<std::int32_t>(perm[i]), flow_bytes,
                           sim::Time::zero()});
  }
  return out;
}

std::vector<FlowSpec> hotrack_workload(std::int32_t hosts_per_rack,
                                       std::int64_t flow_bytes) {
  std::vector<FlowSpec> out;
  for (std::int32_t i = 0; i < hosts_per_rack; ++i) {
    out.push_back(FlowSpec{i, hosts_per_rack + i, flow_bytes, sim::Time::zero()});
  }
  return out;
}

std::vector<FlowSpec> skew_workload(std::int32_t num_racks, std::int32_t hosts_per_rack,
                                    double active_fraction, std::int64_t flow_bytes,
                                    sim::Rng& rng) {
  const auto active =
      std::max<std::size_t>(2, static_cast<std::size_t>(std::llround(
                                   active_fraction * num_racks)));
  const auto racks = rng.sample_without_replacement(
      static_cast<std::size_t>(num_racks), active);
  std::vector<FlowSpec> out;
  for (const std::size_t ra : racks) {
    for (const std::size_t rb : racks) {
      if (ra == rb) continue;
      for (std::int32_t i = 0; i < hosts_per_rack; ++i) {
        FlowSpec f;
        f.src_host = static_cast<std::int32_t>(ra) * hosts_per_rack + i;
        f.dst_host = static_cast<std::int32_t>(rb) * hosts_per_rack + i;
        f.size_bytes = flow_bytes;
        f.start = sim::Time::zero();
        out.push_back(f);
      }
    }
  }
  return out;
}

}  // namespace opera::workload

#include "workload/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <span>

namespace opera::workload {

std::vector<FlowSpec> poisson_workload(const FlowSizeDistribution& dist,
                                       std::int32_t num_hosts, double load,
                                       double link_rate_bps, sim::Time duration,
                                       sim::Rng& rng) {
  assert(load > 0.0 && num_hosts >= 2);
  const double aggregate_bps = link_rate_bps * num_hosts;
  const double lambda =
      load * aggregate_bps / (8.0 * dist.mean_bytes());  // flows per second
  std::vector<FlowSpec> out;
  double t_seconds = 0.0;
  while (true) {
    t_seconds += rng.exponential(1.0 / lambda);
    const sim::Time start = sim::Time::from_seconds(t_seconds);
    if (start >= duration) break;
    FlowSpec f;
    f.src_host = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(num_hosts)));
    f.dst_host = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(num_hosts)));
    while (f.dst_host == f.src_host) {
      f.dst_host = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(num_hosts)));
    }
    f.size_bytes = dist.sample(rng);
    f.start = start;
    out.push_back(f);
  }
  return out;
}

std::vector<FlowSpec> shuffle_workload(std::int32_t num_hosts,
                                       std::int32_t hosts_per_rack,
                                       std::int64_t flow_bytes, sim::Time stagger,
                                       sim::Rng& rng) {
  std::vector<FlowSpec> out;
  for (std::int32_t s = 0; s < num_hosts; ++s) {
    for (std::int32_t t = 0; t < num_hosts; ++t) {
      if (s == t) continue;
      if (s / hosts_per_rack == t / hosts_per_rack) continue;  // rack-local excluded
      FlowSpec f;
      f.src_host = s;
      f.dst_host = t;
      f.size_bytes = flow_bytes;
      f.start = stagger == sim::Time::zero()
                    ? sim::Time::zero()
                    : sim::Time::ps(static_cast<std::int64_t>(
                          rng.uniform() * static_cast<double>(stagger.picoseconds())));
      out.push_back(f);
    }
  }
  return out;
}

std::vector<FlowSpec> permutation_workload(std::int32_t num_hosts,
                                           std::int32_t hosts_per_rack,
                                           std::int64_t flow_bytes, sim::Rng& rng) {
  // Draw permutations until none maps a host into its own rack (quick for
  // any realistic rack count), then pair host i with perm[i].
  const auto n = static_cast<std::size_t>(num_hosts);
  std::vector<std::size_t> perm;
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    perm = rng.permutation(n);
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      ok = static_cast<std::int32_t>(i) / hosts_per_rack !=
           static_cast<std::int32_t>(perm[i]) / hosts_per_rack;
    }
    if (ok) break;
    perm.clear();
  }
  assert(!perm.empty() && "could not find rack-disjoint permutation");
  std::vector<FlowSpec> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FlowSpec{static_cast<std::int32_t>(i),
                           static_cast<std::int32_t>(perm[i]), flow_bytes,
                           sim::Time::zero()});
  }
  return out;
}

std::vector<FlowSpec> hotrack_workload(std::int32_t hosts_per_rack,
                                       std::int64_t flow_bytes) {
  std::vector<FlowSpec> out;
  for (std::int32_t i = 0; i < hosts_per_rack; ++i) {
    out.push_back(FlowSpec{i, hosts_per_rack + i, flow_bytes, sim::Time::zero()});
  }
  return out;
}

std::vector<FlowSpec> skew_workload(std::int32_t num_racks, std::int32_t hosts_per_rack,
                                    double active_fraction, std::int64_t flow_bytes,
                                    sim::Rng& rng) {
  const auto active =
      std::max<std::size_t>(2, static_cast<std::size_t>(std::llround(
                                   active_fraction * num_racks)));
  const auto racks = rng.sample_without_replacement(
      static_cast<std::size_t>(num_racks), active);
  std::vector<FlowSpec> out;
  for (const std::size_t ra : racks) {
    for (const std::size_t rb : racks) {
      if (ra == rb) continue;
      for (std::int32_t i = 0; i < hosts_per_rack; ++i) {
        FlowSpec f;
        f.src_host = static_cast<std::int32_t>(ra) * hosts_per_rack + i;
        f.dst_host = static_cast<std::int32_t>(rb) * hosts_per_rack + i;
        f.size_bytes = flow_bytes;
        f.start = sim::Time::zero();
        out.push_back(f);
      }
    }
  }
  return out;
}

std::vector<FlowSpec> incast_workload(std::int32_t num_hosts,
                                      std::int32_t hosts_per_rack,
                                      const IncastParams& params, sim::Rng& rng) {
  assert(num_hosts > hosts_per_rack && params.fanin > 0);
  std::vector<FlowSpec> out;
  std::vector<std::int32_t> candidates;
  for (std::int32_t e = 0; e < params.events; ++e) {
    const sim::Time start = params.spacing * e;
    const auto aggregator =
        static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(num_hosts)));
    const std::int32_t agg_rack = aggregator / hosts_per_rack;
    // Workers live outside the aggregator's rack (the fan-in crosses the
    // fabric); a shuffled candidate list keeps the draw bias-free even
    // when fanin approaches every eligible host.
    candidates.clear();
    for (std::int32_t h = 0; h < num_hosts; ++h) {
      if (h / hosts_per_rack != agg_rack) candidates.push_back(h);
    }
    rng.shuffle(std::span<std::int32_t>{candidates});
    const auto fanin = std::min<std::size_t>(
        static_cast<std::size_t>(params.fanin), candidates.size());
    for (std::size_t i = 0; i < fanin; ++i) {
      out.push_back(FlowSpec{candidates[i], aggregator, params.flow_bytes, start});
    }
  }
  return out;
}

std::vector<FlowSpec> storage_replication_workload(
    std::int32_t num_hosts, std::int32_t hosts_per_rack,
    const StorageReplicationParams& params, sim::Rng& rng) {
  const std::int32_t num_racks = num_hosts / hosts_per_rack;
  // Impossible specs fail loudly (empty workload + stderr), in release
  // builds too: a replica-less write or a one-rack fabric cannot host a
  // rack-disjoint chain at all, and silently simulating nothing would
  // corrupt whatever statistic the caller is sweeping.
  if (params.replicas < 1 || num_racks < 2) {
    std::fprintf(stderr,
                 "storage_replication_workload: impossible spec (replicas=%d, "
                 "racks=%d); need replicas >= 1 and racks >= 2 — returning no "
                 "flows\n",
                 params.replicas, num_racks);
    return {};
  }
  // Rack-disjoint placement can use at most every rack but the client's;
  // clamp (with a warning) so a small CLI-chosen fabric shortens the chain
  // instead of reading past the candidate list.
  const int replicas = std::min(params.replicas, num_racks - 1);
  if (replicas < params.replicas) {
    std::fprintf(stderr,
                 "storage_replication_workload: clamping replicas %d -> %d "
                 "(only %d racks; chains are rack-disjoint)\n",
                 params.replicas, replicas, num_racks);
  }
  std::vector<FlowSpec> out;
  std::vector<std::int32_t> racks;
  for (std::int32_t w = 0; w < params.writes; ++w) {
    const sim::Time start = params.spacing * w;
    const auto client =
        static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(num_hosts)));
    // Replica chain on pairwise-distinct racks, none of them the client's
    // (rack-aware placement: losing one rack loses at most one copy).
    racks.clear();
    for (std::int32_t r = 0; r < num_racks; ++r) {
      if (r != client / hosts_per_rack) racks.push_back(r);
    }
    rng.shuffle(std::span<std::int32_t>{racks});
    std::int32_t prev = client;
    for (int c = 0; c < replicas; ++c) {
      const std::int32_t replica =
          racks[static_cast<std::size_t>(c)] * hosts_per_rack +
          static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(hosts_per_rack)));
      out.push_back(FlowSpec{prev, replica, params.object_bytes,
                             start + params.chain_delay * c});
      prev = replica;
    }
  }
  return out;
}

std::vector<FlowSpec> ml_collective_workload(std::int32_t num_hosts,
                                             std::int32_t hosts_per_rack,
                                             const MlCollectiveParams& params,
                                             sim::Rng& rng) {
  (void)hosts_per_rack;  // rings are rack-oblivious; placement decides locality
  const std::int32_t g = params.group_size;
  if (g < 2 || num_hosts < g) return {};
  std::vector<std::int32_t> placement(static_cast<std::size_t>(num_hosts));
  std::iota(placement.begin(), placement.end(), 0);
  if (params.shuffle_placement) rng.shuffle(std::span<std::int32_t>{placement});

  const std::int32_t groups = num_hosts / g;
  const std::int64_t chunk = std::max<std::int64_t>(1, params.model_bytes / g);
  std::vector<FlowSpec> out;
  for (std::int32_t grp = 0; grp < groups; ++grp) {
    const std::int32_t* ring = placement.data() + static_cast<std::size_t>(grp) * g;
    // Reduce-scatter (g-1 steps) then all-gather (g-1 steps): one chunk
    // from every member to its ring successor per step.
    for (std::int32_t step = 0; step < 2 * (g - 1); ++step) {
      const sim::Time start = params.step_interval * step;
      for (std::int32_t i = 0; i < g; ++i) {
        out.push_back(FlowSpec{ring[i], ring[(i + 1) % g], chunk, start});
      }
    }
  }
  return out;
}

}  // namespace opera::workload

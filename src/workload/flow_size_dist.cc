#include "workload/flow_size_dist.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace opera::workload {
namespace {

// Trapezoidal integration resolution for mean/byte-CDF computations.
constexpr int kQuantileGrid = 20'000;

}  // namespace

FlowSizeDistribution::FlowSizeDistribution(std::string name, std::vector<Point> points)
    : name_(std::move(name)), points_(std::move(points)) {
  assert(points_.size() >= 2);
  assert(points_.front().cdf == 0.0 && points_.back().cdf == 1.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].bytes > points_[i - 1].bytes);
    assert(points_[i].cdf >= points_[i - 1].cdf);
  }
  double sum = 0.0;
  for (int i = 0; i < kQuantileGrid; ++i) {
    sum += quantile((static_cast<double>(i) + 0.5) / kQuantileGrid);
  }
  mean_bytes_ = sum / kQuantileGrid;
}

double FlowSizeDistribution::quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  auto it = std::lower_bound(points_.begin(), points_.end(), p,
                             [](const Point& pt, double v) { return pt.cdf < v; });
  if (it == points_.begin()) return points_.front().bytes;
  if (it == points_.end()) return points_.back().bytes;
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  if (hi.cdf == lo.cdf) return hi.bytes;
  const double t = (p - lo.cdf) / (hi.cdf - lo.cdf);
  // Log-linear interpolation in flow size.
  return std::exp(std::log(lo.bytes) + t * (std::log(hi.bytes) - std::log(lo.bytes)));
}

std::int64_t FlowSizeDistribution::sample(sim::Rng& rng) const {
  const double b = quantile(rng.uniform());
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(b));
}

std::vector<FlowSizeDistribution::Point> FlowSizeDistribution::byte_cdf() const {
  // Bytes carried below size s: integral of quantile over p where
  // quantile(p) <= s, normalized by the mean. Evaluate on the grid.
  std::vector<Point> out;
  double acc = 0.0;
  std::size_t next_output = 0;
  for (int i = 0; i < kQuantileGrid; ++i) {
    const double q = quantile((static_cast<double>(i) + 0.5) / kQuantileGrid);
    acc += q / kQuantileGrid;
    // Emit a point whenever we cross one of the distribution's knots.
    while (next_output < points_.size() && q >= points_[next_output].bytes) {
      out.push_back({points_[next_output].bytes, acc / mean_bytes_});
      ++next_output;
    }
  }
  while (next_output < points_.size()) {
    out.push_back({points_[next_output].bytes, 1.0});
    ++next_output;
  }
  if (!out.empty()) out.back().cdf = 1.0;
  return out;
}

double FlowSizeDistribution::byte_fraction_at_or_above(double threshold_bytes) const {
  double below = 0.0;
  double total = 0.0;
  for (int i = 0; i < kQuantileGrid; ++i) {
    const double q = quantile((static_cast<double>(i) + 0.5) / kQuantileGrid);
    total += q;
    if (q < threshold_bytes) below += q;
  }
  return total > 0.0 ? 1.0 - below / total : 0.0;
}

FlowSizeDistribution FlowSizeDistribution::datamining() {
  // VL2 [21]: extremely skewed; 80% of flows under ~10 KB while most bytes
  // live in 100 MB..1 GB flows (paper Fig. 1).
  return FlowSizeDistribution(
      "datamining", {{100, 0.0},
                     {180, 0.10},
                     {250, 0.20},
                     {560, 0.30},
                     {900, 0.40},
                     {1'100, 0.50},
                     {1'870, 0.60},
                     {3'160, 0.70},
                     {10'000, 0.80},
                     {400'000, 0.90},
                     {3'160'000, 0.95},
                     {100'000'000, 0.98},
                     {1'000'000'000, 1.0}});
}

FlowSizeDistribution FlowSizeDistribution::websearch() {
  // DCTCP [4]: 10 KB .. 30 MB; every flow is below Opera's 15 MB bulk
  // threshold except the extreme tail, making it the paper's all-indirect
  // worst case (§5.3).
  return FlowSizeDistribution("websearch", {{10'000, 0.0},
                                            {13'000, 0.10},
                                            {19'000, 0.20},
                                            {28'000, 0.30},
                                            {40'000, 0.40},
                                            {60'000, 0.53},
                                            {133'000, 0.60},
                                            {300'000, 0.70},
                                            {1'000'000, 0.80},
                                            {2'000'000, 0.90},
                                            {5'000'000, 0.97},
                                            {10'000'000, 0.998},
                                            {30'000'000, 1.0}});
}

FlowSizeDistribution FlowSizeDistribution::hadoop() {
  // Facebook [39]: mostly small flows; median inter-rack flow around
  // 100 KB (the paper's shuffle experiment uses that median, §5.2).
  return FlowSizeDistribution("hadoop", {{100, 0.0},
                                         {250, 0.10},
                                         {400, 0.20},
                                         {700, 0.30},
                                         {1'500, 0.40},
                                         {5'000, 0.50},
                                         {30'000, 0.60},
                                         {100'000, 0.70},
                                         {300'000, 0.80},
                                         {1'000'000, 0.90},
                                         {10'000'000, 0.97},
                                         {100'000'000, 1.0}});
}

}  // namespace opera::workload

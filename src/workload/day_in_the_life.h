// Day-in-the-life workload composer: stitches the repo's synthetic
// generators (datamining/websearch poisson, incast, storage replication,
// ML ring all-reduce) into one time-varying schedule — the "composed
// day" the ROADMAP's scenario-diversity item asks for. Each phase carries
// a load envelope (flat or linearly ramping fraction of aggregate host
// bandwidth); poisson phases realize the ramp by thinning a max-rate
// arrival process, event-driven phases scale their event counts by the
// phase's mean load. The result is one time-sorted FlowSpec list, ready
// for submission or for serialization as a trace (workload/trace_replay).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "workload/synthetic.h"

namespace opera::workload {

enum class DayPhaseKind : std::uint8_t {
  kDatamining,    // poisson, heavy-tailed VL2 sizes
  kWebsearch,     // poisson, DCTCP sizes
  kIncast,        // partition-aggregate fan-in bursts
  kStorage,       // replicated-write chains
  kMlCollective,  // one ring all-reduce job spanning the phase
};

// Stable lower-case name ("datamining", ..., "ml").
[[nodiscard]] const char* day_phase_name(DayPhaseKind kind);

struct DayPhaseSpec {
  DayPhaseKind kind = DayPhaseKind::kDatamining;
  sim::Time duration = sim::Time::ms(2);
  // Offered load as a fraction of aggregate host bandwidth at the phase's
  // start and end; load_end < 0 means flat at load_begin. Event-driven
  // phases (incast/storage/ml) use the mean of the envelope.
  double load_begin = 0.1;
  double load_end = -1.0;

  [[nodiscard]] double end_load() const {
    return load_end < 0.0 ? load_begin : load_end;
  }
  [[nodiscard]] double mean_load() const { return (load_begin + end_load()) / 2.0; }
};

struct DayInTheLifeSpec {
  std::vector<DayPhaseSpec> phases;
  std::uint64_t seed = 1;

  [[nodiscard]] sim::Time total_duration() const;

  // The canonical composed day used by benches: morning datamining ramp
  // (peak/4 -> peak), websearch plateau, an incast burst storm, a storage
  // backup window, and an ML training job — five phases of
  // `phase_duration` each, peaking at `peak_load`.
  [[nodiscard]] static DayInTheLifeSpec standard_day(sim::Time phase_duration,
                                                     double peak_load,
                                                     std::uint64_t seed);
};

// Composes the phase schedule into one time-sorted flow list. All
// randomness draws from a single Rng seeded with `spec.seed`, phase by
// phase in order, so the composition is deterministic and
// fabric-independent (ids are remapped at submission as usual).
[[nodiscard]] std::vector<FlowSpec> day_in_the_life_workload(
    const DayInTheLifeSpec& spec, std::int32_t num_hosts,
    std::int32_t hosts_per_rack, double link_rate_bps);

}  // namespace opera::workload

// Empirical flow-size distributions (paper Figure 1): Datamining
// (VL2/Microsoft [21]), Websearch (DCTCP [4]), and Hadoop (Facebook [39]).
//
// The CDFs are piecewise log-linear fits digitized from the published
// curves (see DESIGN.md's substitution table): the paper's evaluation
// depends on their shape — byte-heavy tails over many size decades — which
// these fits preserve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace opera::workload {

class FlowSizeDistribution {
 public:
  struct Point {
    double bytes;
    double cdf;  // fraction of flows at or below `bytes`
  };

  FlowSizeDistribution(std::string name, std::vector<Point> points);

  // Inverse-transform sampling with log-linear interpolation between
  // points.
  [[nodiscard]] std::int64_t sample(sim::Rng& rng) const;

  // Mean flow size (bytes), integrated over the interpolated CDF; used to
  // convert offered load into a Poisson arrival rate.
  [[nodiscard]] double mean_bytes() const { return mean_bytes_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& flow_cdf() const { return points_; }

  // CDF of *bytes* (paper Fig. 1 bottom): fraction of total traffic volume
  // carried by flows at or below each size.
  [[nodiscard]] std::vector<Point> byte_cdf() const;

  // Fraction of bytes carried by flows >= threshold (e.g. the 15 MB bulk
  // cutoff: the paper's claim that the vast majority of Datamining bytes
  // are bulk).
  [[nodiscard]] double byte_fraction_at_or_above(double threshold_bytes) const;

  static FlowSizeDistribution datamining();  // VL2 [21]: 100 B .. 1 GB
  static FlowSizeDistribution websearch();   // DCTCP [4]: 10 KB .. 30 MB
  static FlowSizeDistribution hadoop();      // Facebook [39]: 100 B .. 100 MB

 private:
  [[nodiscard]] double quantile(double p) const;

  std::string name_;
  std::vector<Point> points_;
  double mean_bytes_ = 0.0;
};

}  // namespace opera::workload

#include "workload/trace_replay.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace opera::workload {

namespace {

constexpr char kMagic[6] = {'O', 'P', 'T', 'R', '1', '\n'};

TraceParseResult fail(std::string message) {
  TraceParseResult r;
  r.error = std::move(message);
  return r;
}

// Strict signed-integer field parse: the whole field must be consumed
// (rejects "12x", "1.5", "", and whitespace-embedded garbage).
bool parse_int(const std::string& field, std::int64_t& out) {
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  out = v;
  return true;
}

// Shared semantic validation for one record (both encodings route through
// here so CSV and binary can never drift on what a legal flow is).
std::string validate_record(std::size_t index, const FlowSpec& f,
                            sim::Time prev_start, std::int32_t num_hosts) {
  std::ostringstream err;
  if (f.start < prev_start) {
    err << "flow " << index << ": start " << f.start.picoseconds()
        << " ps precedes previous start " << prev_start.picoseconds()
        << " ps (traces must be time-sorted)";
  } else if (f.src_host < 0 || f.dst_host < 0) {
    err << "flow " << index << ": negative host id";
  } else if (num_hosts > 0 && (f.src_host >= num_hosts || f.dst_host >= num_hosts)) {
    err << "flow " << index << ": host id out of range (src " << f.src_host
        << ", dst " << f.dst_host << ", fabric has " << num_hosts << " hosts)";
  } else if (f.src_host == f.dst_host) {
    err << "flow " << index << ": src == dst (" << f.src_host << ")";
  } else if (f.size_bytes <= 0) {
    err << "flow " << index << ": non-positive size " << f.size_bytes;
  }
  return err.str();
}

// Little-endian fixed-width encode/decode (byte-exact on any host).
template <typename T>
void put_le(std::string& buf, T v) {
  auto u = static_cast<std::uint64_t>(v);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<char>((u >> (8 * i)) & 0xFF));
  }
}
template <typename T>
T get_le(const char* p) {
  std::uint64_t u = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    u |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return static_cast<T>(u);
}

constexpr std::size_t kRecordBytes = 8 + 4 + 4 + 8;  // start, src, dst, size

}  // namespace

const char* trace_csv_header() { return "start_ps,src_host,dst_host,size_bytes"; }

TraceParseResult parse_trace_csv(std::istream& in, std::int32_t num_hosts) {
  TraceParseResult result;
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  sim::Time prev_start = sim::Time::zero();
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!header_seen) {
      if (line != trace_csv_header()) {
        return fail("line " + std::to_string(line_no) +
                    ": bad header '" + line + "' (expected '" +
                    trace_csv_header() + "')");
      }
      header_seen = true;
      continue;
    }
    std::int64_t fields[4];
    std::size_t field = 0;
    std::size_t pos = 0;
    bool consumed_line = false;  // the 4th field must be the last
    while (pos <= line.size() && field < 4) {
      const std::size_t comma = line.find(',', pos);
      const std::size_t end = comma == std::string::npos ? line.size() : comma;
      if (!parse_int(line.substr(pos, end - pos), fields[field])) {
        return fail("line " + std::to_string(line_no) + ": field " +
                    std::to_string(field + 1) + " is not an integer");
      }
      ++field;
      if (comma == std::string::npos) {
        consumed_line = true;
        break;
      }
      pos = comma + 1;
    }
    if (field != 4 || !consumed_line) {
      return fail("line " + std::to_string(line_no) +
                  ": expected 4 columns (start_ps,src_host,dst_host,size_bytes)");
    }
    FlowSpec f;
    f.start = sim::Time::ps(fields[0]);
    f.src_host = static_cast<std::int32_t>(fields[1]);
    f.dst_host = static_cast<std::int32_t>(fields[2]);
    f.size_bytes = fields[3];
    if (fields[1] != f.src_host || fields[2] != f.dst_host) {
      return fail("line " + std::to_string(line_no) + ": host id overflows int32");
    }
    if (std::string err = validate_record(result.flows.size(), f, prev_start,
                                          num_hosts);
        !err.empty()) {
      return fail("line " + std::to_string(line_no) + ": " + err);
    }
    prev_start = f.start;
    result.flows.push_back(f);
  }
  if (!header_seen) return fail("empty trace: missing header line");
  return result;
}

TraceParseResult load_trace_csv(const std::string& path, std::int32_t num_hosts) {
  std::ifstream in(path);
  if (!in) return fail("cannot open trace '" + path + "'");
  return parse_trace_csv(in, num_hosts);
}

void write_trace_csv(std::ostream& out, const std::vector<FlowSpec>& flows) {
  out << "# opera trace v1 (docs/TRACE_FORMAT.md)\n" << trace_csv_header() << "\n";
  char buf[96];
  for (const auto& f : flows) {
    std::snprintf(buf, sizeof buf, "%lld,%d,%d,%lld\n",
                  static_cast<long long>(f.start.picoseconds()), f.src_host,
                  f.dst_host, static_cast<long long>(f.size_bytes));
    out << buf;
  }
}

bool save_trace_csv(const std::string& path, const std::vector<FlowSpec>& flows) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace_csv(out, flows);
  return static_cast<bool>(out);
}

TraceParseResult parse_trace_binary(std::istream& in, std::int32_t num_hosts) {
  char magic[sizeof kMagic];
  if (!in.read(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return fail("bad magic: not an OPTR1 binary trace");
  }
  char count_buf[8];
  if (!in.read(count_buf, sizeof count_buf)) {
    return fail("truncated trace: missing flow count");
  }
  const auto count = get_le<std::uint64_t>(count_buf);
  TraceParseResult result;
  result.flows.reserve(static_cast<std::size_t>(count));
  sim::Time prev_start = sim::Time::zero();
  char rec[kRecordBytes];
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!in.read(rec, sizeof rec)) {
      return fail("truncated trace: " + std::to_string(i) + " of " +
                  std::to_string(count) + " records present");
    }
    FlowSpec f;
    f.start = sim::Time::ps(get_le<std::int64_t>(rec));
    f.src_host = get_le<std::int32_t>(rec + 8);
    f.dst_host = get_le<std::int32_t>(rec + 12);
    f.size_bytes = get_le<std::int64_t>(rec + 16);
    if (std::string err = validate_record(i, f, prev_start, num_hosts);
        !err.empty()) {
      return fail(err);
    }
    prev_start = f.start;
    result.flows.push_back(f);
  }
  return result;
}

TraceParseResult load_trace_binary(const std::string& path, std::int32_t num_hosts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open trace '" + path + "'");
  return parse_trace_binary(in, num_hosts);
}

void write_trace_binary(std::ostream& out, const std::vector<FlowSpec>& flows) {
  out.write(kMagic, sizeof kMagic);
  std::string buf;
  buf.reserve(8 + flows.size() * kRecordBytes);
  put_le<std::uint64_t>(buf, flows.size());
  for (const auto& f : flows) {
    put_le<std::int64_t>(buf, f.start.picoseconds());
    put_le<std::int32_t>(buf, f.src_host);
    put_le<std::int32_t>(buf, f.dst_host);
    put_le<std::int64_t>(buf, f.size_bytes);
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

bool save_trace_binary(const std::string& path, const std::vector<FlowSpec>& flows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_trace_binary(out, flows);
  return static_cast<bool>(out);
}

TraceParseResult load_trace(const std::string& path, std::int32_t num_hosts) {
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  return csv ? load_trace_csv(path, num_hosts) : load_trace_binary(path, num_hosts);
}

}  // namespace opera::workload

#include "workload/day_in_the_life.h"

#include <algorithm>
#include <cmath>

namespace opera::workload {

namespace {

// Poisson phase with a linear load envelope, realized by thinning: draw
// arrivals at the envelope's max rate, accept each at probability
// lambda(t)/lambda_max. Exact for linear envelopes and keeps the draw
// sequence deterministic for a given rng state.
std::vector<FlowSpec> poisson_phase(const FlowSizeDistribution& dist,
                                    std::int32_t num_hosts,
                                    const DayPhaseSpec& phase,
                                    sim::Time phase_start, double link_rate_bps,
                                    sim::Rng& rng) {
  std::vector<FlowSpec> flows;
  const double lo = phase.load_begin;
  const double hi = phase.end_load();
  const double peak = std::max(lo, hi);
  if (peak <= 0.0 || phase.duration <= sim::Time::zero()) return flows;
  const double lambda_max =
      peak * num_hosts * link_rate_bps / (8.0 * dist.mean_bytes());
  const double duration_s =
      static_cast<double>(phase.duration.picoseconds()) * 1e-12;
  double t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / lambda_max);
    if (t >= duration_s) break;
    const double load_t = lo + (hi - lo) * (t / duration_s);
    if (!rng.bernoulli(load_t / peak)) continue;
    FlowSpec f;
    f.src_host = static_cast<std::int32_t>(rng.index(num_hosts));
    f.dst_host = static_cast<std::int32_t>(rng.index(num_hosts - 1));
    if (f.dst_host >= f.src_host) ++f.dst_host;
    f.size_bytes = dist.sample(rng);
    f.start = phase_start + sim::Time::ps(static_cast<std::int64_t>(t * 1e12));
    flows.push_back(f);
  }
  return flows;
}

void offset_and_append(std::vector<FlowSpec>&& phase_flows, sim::Time phase_start,
                       std::vector<FlowSpec>& out) {
  for (auto& f : phase_flows) {
    f.start = f.start + phase_start;
    out.push_back(f);
  }
}

}  // namespace

const char* day_phase_name(DayPhaseKind kind) {
  switch (kind) {
    case DayPhaseKind::kDatamining: return "datamining";
    case DayPhaseKind::kWebsearch: return "websearch";
    case DayPhaseKind::kIncast: return "incast";
    case DayPhaseKind::kStorage: return "storage";
    case DayPhaseKind::kMlCollective: return "ml";
  }
  return "?";
}

sim::Time DayInTheLifeSpec::total_duration() const {
  sim::Time total = sim::Time::zero();
  for (const auto& p : phases) total = total + p.duration;
  return total;
}

DayInTheLifeSpec DayInTheLifeSpec::standard_day(sim::Time phase_duration,
                                                double peak_load,
                                                std::uint64_t seed) {
  DayInTheLifeSpec spec;
  spec.seed = seed;
  spec.phases = {
      {DayPhaseKind::kDatamining, phase_duration, peak_load / 4.0, peak_load},
      {DayPhaseKind::kWebsearch, phase_duration, peak_load, -1.0},
      {DayPhaseKind::kIncast, phase_duration, peak_load / 2.0, -1.0},
      {DayPhaseKind::kStorage, phase_duration, peak_load / 2.0, -1.0},
      {DayPhaseKind::kMlCollective, phase_duration, peak_load, -1.0},
  };
  return spec;
}

std::vector<FlowSpec> day_in_the_life_workload(const DayInTheLifeSpec& spec,
                                               std::int32_t num_hosts,
                                               std::int32_t hosts_per_rack,
                                               double link_rate_bps) {
  sim::Rng rng(spec.seed);
  const FlowSizeDistribution datamining = FlowSizeDistribution::datamining();
  const FlowSizeDistribution websearch = FlowSizeDistribution::websearch();
  std::vector<FlowSpec> flows;
  sim::Time phase_start = sim::Time::zero();
  for (const auto& phase : spec.phases) {
    const double load = phase.mean_load();
    const double duration_ms =
        static_cast<double>(phase.duration.picoseconds()) * 1e-9;
    switch (phase.kind) {
      case DayPhaseKind::kDatamining: {
        auto pf = poisson_phase(datamining, num_hosts, phase, phase_start,
                                link_rate_bps, rng);
        flows.insert(flows.end(), pf.begin(), pf.end());
        break;
      }
      case DayPhaseKind::kWebsearch: {
        auto pf = poisson_phase(websearch, num_hosts, phase, phase_start,
                                link_rate_bps, rng);
        flows.insert(flows.end(), pf.begin(), pf.end());
        break;
      }
      case DayPhaseKind::kIncast: {
        // Query rate scales with load: 8 partition-aggregate queries per ms
        // at load 1.0, spread evenly across the phase.
        IncastParams params;
        params.events = std::max<std::int32_t>(
            1, static_cast<std::int32_t>(std::llround(load * 8.0 * duration_ms)));
        params.fanin = 24;
        params.flow_bytes = 64'000;
        params.spacing = sim::Time::ps(phase.duration.picoseconds() / params.events);
        offset_and_append(
            incast_workload(num_hosts, hosts_per_rack, params, rng),
            phase_start, flows);
        break;
      }
      case DayPhaseKind::kStorage: {
        // Replicated-write rate scales with load: 16 writes per ms at load
        // 1.0 (2 MB objects, 3 replicas — a backup window, not steady state).
        StorageReplicationParams params;
        params.writes = std::max<std::int32_t>(
            1, static_cast<std::int32_t>(std::llround(load * 16.0 * duration_ms)));
        params.replicas = 3;
        params.object_bytes = 2'000'000;
        params.spacing = sim::Time::ps(phase.duration.picoseconds() / params.writes);
        params.chain_delay = sim::Time::us(40);
        offset_and_append(
            storage_replication_workload(num_hosts, hosts_per_rack, params, rng),
            phase_start, flows);
        break;
      }
      case DayPhaseKind::kMlCollective: {
        // One training job spanning the phase: rings of 8 hosts run their
        // 2*(g-1) all-reduce steps paced to fill the phase; the per-member
        // buffer scales with load so the phase's offered bytes track it.
        // The job occupies a slice of the cluster (128 hosts), like the
        // scale-sweep bench: rings never need the whole fabric, and an
        // uncapped job at k=24 would swamp the day with collective flows.
        const std::int32_t job_hosts = std::min<std::int32_t>(num_hosts, 128);
        MlCollectiveParams params;
        params.group_size = 8;
        params.model_bytes = std::max<std::int64_t>(
            1'000'000, static_cast<std::int64_t>(load * 16'000'000.0));
        const std::int32_t steps = 2 * (params.group_size - 1);
        params.step_interval = sim::Time::ps(phase.duration.picoseconds() / steps);
        params.shuffle_placement = true;
        offset_and_append(
            ml_collective_workload(job_hosts, hosts_per_rack, params, rng),
            phase_start, flows);
        break;
      }
    }
    phase_start = phase_start + phase.duration;
  }
  // One time-sorted schedule (generators emit per-event order; stable sort
  // keeps draw order within equal timestamps deterministic).
  std::stable_sort(flows.begin(), flows.end(),
                   [](const FlowSpec& a, const FlowSpec& b) {
                     return a.start < b.start;
                   });
  return flows;
}

}  // namespace opera::workload

// Shared configuration for the packet-level networks, defaulted to the
// paper's constants (§4-§5): 10 Gb/s links, 1500 B MTU, 500 ns inter-ToR
// propagation, 12 KB NDP data queues, ~100 us topology slices (epsilon =
// 90 us end-to-end budget + 10 us rotor reconfiguration), and a 15 MB
// bulk-flow threshold.
#pragma once

#include <cstdint>

#include "net/queue.h"
#include "sim/time.h"
#include "topo/opera_topology.h"
#include "topo/slice_table_cache.h"
#include "transport/ndp.h"

namespace opera::core {

// checkpoint:v1 fields=2
struct LinkParams {
  double rate_bps = 10e9;
  sim::Time propagation = sim::Time::ns(500);  // 100 m of fiber
};

// checkpoint:v1 fields=4
struct SliceParams {
  sim::Time duration = sim::Time::us(99);       // epsilon + r
  sim::Time reconfiguration = sim::Time::us(10);  // rotor retarget time
  sim::Time guard = sim::Time::us(1);           // de-synchronization margin
  // The paper's epsilon rule: packets are never routed through a circuit
  // with an impending reconfiguration. In the last `drain_window` of a
  // slice, low-latency forwarding switches to the next slice's tables so
  // queued packets drain off the about-to-reconfigure uplinks (sized to
  // the worst-case ToR queue drain time).
  sim::Time drain_window = sim::Time::us(30);
};

// checkpoint:v1 fields=10
struct OperaConfig {
  topo::OperaParams topology;  // defaults: 108 racks x 6 hosts (648 hosts)
  LinkParams link;
  SliceParams slice;
  transport::NdpConfig ndp;
  // Flows at or above this size are bulk (wait for direct circuits); the
  // paper derives 15 MB from the ~10.7 ms cycle time (§4.1).
  std::int64_t bulk_threshold_bytes = 15'000'000;
  bool enable_vlb = true;  // RotorLB two-hop fallback for skewed demand
  std::uint64_t seed = 42;

  // Windowed slice-table cache (topo/slice_table_cache.h): number of
  // per-slice ECMP tables kept resident. 0 = auto — eager (all slices,
  // the historical behavior) while the full set fits the memory budget,
  // otherwise the largest window that does. At paper scale (N=108,
  // ~35 MB total) auto stays eager; at k=24 (N=432, ~840 MB) it windows.
  int slice_table_window = 0;
  std::size_t slice_table_budget_bytes = topo::SliceTableCache::kDefaultBudgetBytes;

  // Shard count for the sharded event loop (docs/ARCHITECTURE.md "Sharded
  // execution"): racks are partitioned into this many domains, each with
  // its own event queue, synchronized with conservative lookahead =
  // link.propagation. Output is bit-identical for any value. 0 = auto:
  // $OPERA_TEST_THREADS when set, else 1 (the classic single-queue loop).
  int threads = 0;

  // Queue provisioning (paper §4.1-4.2): shallow low-latency queues keep
  // epsilon small; ToR bulk queues hold about two slices of circuit data.
  [[nodiscard]] net::PortQueue::Config tor_queue_config() const {
    net::PortQueue::Config q;
    q.low_latency_capacity_bytes = 24'000;  // 8 full packets + headers (§4.1)
    q.control_capacity_bytes = 24'000;
    q.bulk_capacity_bytes = 2 * slice_bulk_budget();
    q.trim_low_latency = true;
    q.trim_bulk = false;  // RotorLB NACK path
    return q;
  }
  [[nodiscard]] net::PortQueue::Config host_queue_config() const {
    net::PortQueue::Config q;
    // Hosts buffer their own traffic; no in-NIC trimming.
    q.low_latency_capacity_bytes = 4'000'000;
    q.control_capacity_bytes = 1'000'000;
    q.bulk_capacity_bytes = 4 * slice_bulk_budget();
    q.trim_low_latency = false;
    q.trim_bulk = false;
    return q;
  }

  // Bytes one uplink can carry in the usable part of a slice.
  [[nodiscard]] std::int64_t slice_bulk_budget() const {
    const sim::Time usable = slice.duration - slice.guard;
    return static_cast<std::int64_t>(usable.to_seconds() * link.rate_bps / 8.0);
  }
  // Bytes one host link can source per slice (guard-adjusted so a burst
  // granted at a slice start drains before the boundary).
  [[nodiscard]] std::int64_t host_slice_budget() const { return slice_bulk_budget(); }

  // Cycle time: one slice per matching (paper §4.1: 108 slices x ~99 us
  // = 10.7 ms).
  [[nodiscard]] sim::Time cycle_time() const {
    return slice.duration * topology.num_racks;
  }
};

}  // namespace opera::core

// core::Network — the polymorphic fabric interface every packet-level
// network in this repo implements (Opera, folded Clos, static expander,
// RotorNet). The paper's evaluation is a *comparison* across these four
// fabrics; this interface is what lets one experiment driver submit the
// same workload to any of them:
//
//   auto net = core::NetworkFactory::build(cfg);   // cfg: core::FabricConfig
//   net->submit_flow(src, dst, bytes, at);
//   net->run_to_completion(sim::Time::ms(50));
//   net->tracker().fct_us(...);                    // measurements
//
// See core/fabric.h for FabricConfig / NetworkFactory and src/exp/ for the
// Experiment driver built on top.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "net/packet.h"
#include "sim/checkpoint.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "transport/flow.h"

namespace opera::core {

// Maps a workload host pair generated for one network's host count onto
// another network's host range: ids wrap modulo `num_hosts`, and a
// post-wrap collision bumps the destination to the next host. This is the
// cross-fabric remap every bench binary used to hand-roll inline; it is
// the identity (given src != dst) whenever both ids are already in range.
[[nodiscard]] std::pair<std::int32_t, std::int32_t> remap_host_pair(
    std::int32_t src, std::int32_t dst, std::int32_t num_hosts);

class Network {
 public:
  Network() = default;
  virtual ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers the flow and schedules its start; returns the flow id.
  // Classification (low-latency vs bulk) is by size against the fabric's
  // bulk threshold unless `force` is given (application-based tagging,
  // paper §3.4).
  virtual std::uint64_t submit_flow(
      std::int32_t src_host, std::int32_t dst_host, std::int64_t size_bytes,
      sim::Time start, std::optional<net::TrafficClass> force = std::nullopt) = 0;

  // submit_flow with the pair first remapped into this network's host
  // range (see remap_host_pair): use when replaying a workload generated
  // for a fabric with a different host count.
  std::uint64_t submit_remapped(std::int32_t src_host, std::int32_t dst_host,
                                std::int64_t size_bytes, sim::Time start,
                                std::optional<net::TrafficClass> force = std::nullopt);

  // Runs the event loop until simulated time `t`.
  virtual void run_until(sim::Time t) = 0;

  // --- Progress / early-stop driving -------------------------------------
  // The rotor fabrics keep slice-boundary events pending forever, so a
  // plain run_until always burns wall-clock to the horizon even when the
  // last flow finished long ago. These drivers poll a hook on a simulated-
  // time interval and stop the run as soon as it asks to.

  struct RunStatus {
    sim::Time ended_at;          // simulated time the run stopped at
    bool stopped_early = false;  // true if the hook stopped it before `horizon`
  };

  // Called every `interval` of simulated time; return true to stop the run.
  using ProgressHook = std::function<bool(Network&)>;
  RunStatus run_with_progress(sim::Time horizon, sim::Time interval,
                              const ProgressHook& hook);

  // Runs until `horizon` or until every submitted flow has completed,
  // whichever comes first (flows submitted from completion hooks extend
  // the run). Completion statistics are identical to run_until(horizon).
  RunStatus run_to_completion(sim::Time horizon,
                              sim::Time check_interval = sim::Time::us(500));

  // --- Introspection -----------------------------------------------------
  // Total executed events across every event loop the fabric runs — the
  // coordinator plus all shards for sharded fabrics, the single loop
  // otherwise. Prefer this over sim().events_executed(), which for a
  // sharded fabric counts only the coordinator's (global) events.
  [[nodiscard]] virtual std::uint64_t events_executed() const {
    return sim().events_executed();
  }
  // Shard count of the execution engine (1 = the classic single queue).
  [[nodiscard]] virtual int num_shards() const { return 1; }
  [[nodiscard]] virtual sim::Simulator& sim() = 0;
  [[nodiscard]] virtual const sim::Simulator& sim() const = 0;
  [[nodiscard]] virtual transport::FlowTracker& tracker() = 0;
  [[nodiscard]] virtual const transport::FlowTracker& tracker() const = 0;
  [[nodiscard]] virtual std::int32_t num_hosts() const = 0;
  [[nodiscard]] virtual std::int32_t num_racks() const = 0;
  [[nodiscard]] virtual std::int32_t rack_of_host(std::int32_t host) const = 0;
  // One-line human description, e.g. "Opera (108 racks x 6 hosts, 6 rotors)".
  [[nodiscard]] virtual std::string describe() const = 0;

  // --- Checkpoint / guardrail hooks --------------------------------------
  // Mixes the fabric's partition-invariant state into `fp`: clock, total
  // event count and the canonical completion stream in the base, plus
  // whatever per-fabric counters an override adds. Equal digests at equal
  // barrier-aligned times are the checkpoint contract: a restored run that
  // reaches the checkpoint time must reproduce this digest exactly, at any
  // --threads=N. Call only from a barrier (no shard phase in flight);
  // overrides must never digest partition-dependent state (per-shard
  // clocks, endpoint pools, mailboxes).
  virtual void fingerprint(sim::Fingerprint& fp) const;

  // Memory-pressure degradation (exp::RunGuard): release memory without
  // changing simulation output — e.g. Opera shrinks its slice-table window
  // (content-neutral, parity-tested). Returns true if anything was freed;
  // the default has nothing to give back. Call only from a barrier.
  virtual bool degrade_memory() { return false; }
};

}  // namespace opera::core

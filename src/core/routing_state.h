// Routing-state model (paper §6.2, Table 1): the P4 ruleset an Opera ToR
// must hold. Per topology slice there are N_rack-1 low-latency rules (one
// per destination rack) plus u-1 bulk rules (one per active direct
// circuit), and N_rack slices:
//
//   entries(N, u) = N * (N - 1) + N * (u - 1)
//
// Utilization is measured against the Tofino 65x100GE table capacity the
// paper's Capilano runs imply (~1.70M entries).
#pragma once

#include <cstdint>

namespace opera::core {

struct RoutingStateModel {
  // Match-action entries implied by Barefoot's Capilano compiler on the
  // paper's rulesets (Table 1: entries / utilization).
  static constexpr double kTofinoCapacityEntries = 1.701e6;

  [[nodiscard]] static std::int64_t low_latency_entries(std::int64_t racks) {
    return racks * (racks - 1);
  }
  [[nodiscard]] static std::int64_t bulk_entries(std::int64_t racks, int uplinks) {
    return racks * (uplinks - 1);
  }
  [[nodiscard]] static std::int64_t total_entries(std::int64_t racks, int uplinks) {
    return low_latency_entries(racks) + bulk_entries(racks, uplinks);
  }
  [[nodiscard]] static double utilization_percent(std::int64_t entries) {
    return 100.0 * static_cast<double>(entries) / kTofinoCapacityEntries;
  }

  struct TableRow {
    std::int64_t racks;
    int radix;  // ToR radix k; uplinks = k/2
  };
  // The datacenter sizes of Table 1.
  static constexpr TableRow kPaperRows[] = {
      {108, 12}, {252, 18}, {520, 26}, {768, 32}, {1008, 36}, {1200, 40},
  };
};

}  // namespace opera::core

#include "core/clos_network.h"

#include <cassert>
#include <cstdio>

namespace opera::core {

ClosNetwork::ClosNetwork(const ClosNetConfig& config)
    : config_(config), clos_(config.structure), rng_(config.seed) {
  build();
}

void ClosNetwork::build() {
  const int k = config_.structure.radix;
  const int d = config_.structure.hosts_per_tor();
  const int u = config_.structure.tor_uplinks();
  const int tors_per_pod = k / 2;
  const auto sw_q = config_.switch_queue_config();
  const auto host_q = config_.host_queue_config();
  const double rate = config_.link.rate_bps;
  const sim::Time prop = config_.link.propagation;

  for (topo::Vertex t = 0; t < clos_.num_tors(); ++t) {
    auto tor = std::make_unique<net::Switch>(sim_, "tor" + std::to_string(t), t);
    for (int p = 0; p < d + u; ++p) tor->add_port(rate, prop, sw_q);
    tors_.push_back(std::move(tor));
  }
  for (topo::Vertex a = 0; a < clos_.num_aggs(); ++a) {
    auto agg = std::make_unique<net::Switch>(sim_, "agg" + std::to_string(a), a);
    for (int p = 0; p < k; ++p) agg->add_port(rate, prop, sw_q);
    aggs_.push_back(std::move(agg));
  }
  for (topo::Vertex c = 0; c < clos_.num_cores(); ++c) {
    auto core = std::make_unique<net::Switch>(sim_, "core" + std::to_string(c), c);
    for (int p = 0; p < clos_.num_pods(); ++p) core->add_port(rate, prop, sw_q);
    cores_.push_back(std::move(core));
  }

  // Hosts <-> ToRs.
  for (topo::Vertex t = 0; t < clos_.num_tors(); ++t) {
    for (int i = 0; i < d; ++i) {
      const auto id = static_cast<std::int32_t>(t) * d + i;
      auto host = std::make_unique<net::Host>(sim_, "host" + std::to_string(id), id, t);
      host->add_port(rate, prop, host_q);
      host->uplink().connect(tors_[static_cast<std::size_t>(t)].get(), i);
      tors_[static_cast<std::size_t>(t)]->port(i).connect(host.get(), 0);
      transport::install_ndp_sink_factory(*host, tracker_, sinks_);
      hosts_.push_back(std::move(host));
    }
  }

  // ToR <-> agg: ToR t's uplink j pairs with agg (pod*u + j), whose down
  // port for t is t's index within the pod.
  for (topo::Vertex t = 0; t < clos_.num_tors(); ++t) {
    const int pod = clos_.pod_of_tor(t);
    const int idx_in_pod = static_cast<int>(t) - pod * tors_per_pod;
    for (int j = 0; j < u; ++j) {
      const auto agg = static_cast<std::size_t>(pod * u + j);
      tors_[static_cast<std::size_t>(t)]->port(d + j).connect(aggs_[agg].get(), idx_in_pod);
      aggs_[agg]->port(idx_in_pod).connect(tors_[static_cast<std::size_t>(t)].get(), d + j);
    }
  }
  // Agg <-> core: agg a (group g = a mod u) uplink i pairs with core
  // (g*k/2 + i), whose port for agg a is a's pod.
  for (topo::Vertex a = 0; a < clos_.num_aggs(); ++a) {
    const int pod = static_cast<int>(a) / u;
    const int group = static_cast<int>(a) % u;
    for (int i = 0; i < k / 2; ++i) {
      const auto core = static_cast<std::size_t>(group * (k / 2) + i);
      aggs_[static_cast<std::size_t>(a)]->port(k / 2 + i).connect(cores_[core].get(), pod);
      cores_[core]->port(pod).connect(aggs_[static_cast<std::size_t>(a)].get(), k / 2 + i);
    }
  }

  // Forwarding: standard up-down ECMP with per-packet spraying (NDP).
  for (auto& tor : tors_) {
    tor->set_forward([this, d, u](net::Switch& swch, const net::Packet& pkt, int) {
      if (pkt.dst_rack == swch.id()) return pkt.dst_host - swch.id() * d;
      return d + static_cast<int>(rng_.index(static_cast<std::size_t>(u)));
    });
  }
  for (auto& agg : aggs_) {
    agg->set_forward(
        [this, k, u, tors_per_pod](net::Switch& swch, const net::Packet& pkt, int) {
          const int pod = swch.id() / u;
          const int dst_pod = pkt.dst_rack / tors_per_pod;
          if (dst_pod == pod) return pkt.dst_rack - pod * tors_per_pod;
          return k / 2 + static_cast<int>(rng_.index(static_cast<std::size_t>(k / 2)));
        });
  }
  for (auto& core : cores_) {
    core->set_forward([tors_per_pod](net::Switch&, const net::Packet& pkt, int) {
      return pkt.dst_rack / tors_per_pod;
    });
  }
}

std::uint64_t ClosNetwork::submit_flow(std::int32_t src_host, std::int32_t dst_host,
                                       std::int64_t size_bytes, sim::Time start,
                                       std::optional<net::TrafficClass> force) {
  assert(src_host != dst_host);
  transport::Flow flow;
  flow.id = tracker_.next_flow_id();
  flow.src_host = src_host;
  flow.dst_host = dst_host;
  flow.src_rack = rack_of_host(src_host);
  flow.dst_rack = rack_of_host(dst_host);
  flow.size_bytes = size_bytes;
  flow.start = start;
  const bool is_bulk = size_bytes >= config_.bulk_threshold_bytes;
  flow.tclass = force.value_or((config_.priority_queueing && is_bulk)
                                   ? net::TrafficClass::kBulk
                                   : net::TrafficClass::kLowLatency);
  tracker_.register_flow(flow);
  sim_.schedule_at(start, [this, flow] {
    auto source = std::make_unique<transport::NdpSource>(host(flow.src_host), flow,
                                                         tracker_, config_.ndp);
    source->start();
    sources_.push_back(std::move(source));
  });
  return flow.id;
}

std::string ClosNetwork::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%d:1 folded Clos (k=%d, %d pods, %d hosts)",
                config_.structure.oversubscription, config_.structure.radix,
                clos_.num_pods(), num_hosts());
  return buf;
}

}  // namespace opera::core

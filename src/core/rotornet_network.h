// Packet-level RotorNet baseline (paper §5, Fig. 7c): rotor circuit
// switches that all reconfigure in unison, RotorLB for every flow. The
// hybrid variant donates one ToR uplink to an (idealized, non-blocking)
// packet-switched core that carries low-latency traffic with NDP — this
// favors the baseline, and is documented in DESIGN.md as a substitution.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/network.h"
#include "net/host.h"
#include "net/switch.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "topo/rotornet.h"
#include "transport/flow.h"
#include "transport/ndp.h"
#include "transport/rotorlb.h"

namespace opera::core {

struct RotorNetConfig {
  topo::RotorNetParams structure;  // defaults: 108 racks, 6 switches
  int hosts_per_rack = 6;
  LinkParams link;
  SliceParams slice;
  transport::NdpConfig ndp;
  std::uint64_t seed = 42;

  [[nodiscard]] net::PortQueue::Config tor_queue_config() const {
    net::PortQueue::Config q;
    q.low_latency_capacity_bytes = 24'000;
    q.control_capacity_bytes = 24'000;
    q.bulk_capacity_bytes = 2 * slice_bulk_budget();
    q.trim_low_latency = true;
    q.trim_bulk = false;
    return q;
  }
  [[nodiscard]] net::PortQueue::Config host_queue_config() const {
    net::PortQueue::Config q;
    q.low_latency_capacity_bytes = 4'000'000;
    q.control_capacity_bytes = 1'000'000;
    q.bulk_capacity_bytes = 4 * slice_bulk_budget();
    q.trim_low_latency = false;
    q.trim_bulk = false;
    return q;
  }
  // All rotors blink together: only (slice - reconfiguration - guard) is
  // usable per slice, unlike Opera's staggered design.
  [[nodiscard]] std::int64_t slice_bulk_budget() const {
    const sim::Time usable = slice.duration - slice.reconfiguration - slice.guard;
    return static_cast<std::int64_t>(usable.to_seconds() * link.rate_bps / 8.0);
  }
};

class RotorNetNetwork : public Network {
 public:
  explicit RotorNetNetwork(const RotorNetConfig& config);

  // Non-hybrid: every flow is bulk (RotorLB). Hybrid: flows are NDP
  // low-latency through the packet core unless bulk-classified (>= 15 MB
  // by default) or forced.
  std::uint64_t submit_flow(
      std::int32_t src_host, std::int32_t dst_host, std::int64_t size_bytes,
      sim::Time start,
      std::optional<net::TrafficClass> force = std::nullopt) override;

  void run_until(sim::Time t) override { sim_.run_until(t); }

  [[nodiscard]] sim::Simulator& sim() override { return sim_; }
  [[nodiscard]] const sim::Simulator& sim() const override { return sim_; }
  [[nodiscard]] transport::FlowTracker& tracker() override { return tracker_; }
  [[nodiscard]] const transport::FlowTracker& tracker() const override {
    return tracker_;
  }
  [[nodiscard]] const RotorNetConfig& config() const { return config_; }
  [[nodiscard]] std::int32_t num_hosts() const override {
    return static_cast<std::int32_t>(hosts_.size());
  }
  [[nodiscard]] std::int32_t num_racks() const override {
    return static_cast<std::int32_t>(config_.structure.num_racks);
  }
  [[nodiscard]] net::Host& host(std::int32_t id) {
    return *hosts_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::int32_t rack_of_host(std::int32_t host) const override {
    return host / config_.hosts_per_rack;
  }
  [[nodiscard]] std::string describe() const override;
  std::int64_t bulk_threshold_bytes = 15'000'000;

 private:
  void build();
  void on_slice_boundary(std::int64_t abs_slice);
  void allocate_bulk(int slice);
  [[nodiscard]] int uplink_port(int sw) const { return config_.hosts_per_rack + sw; }
  [[nodiscard]] int core_port() const {
    return config_.hosts_per_rack + topo_.num_rotor_switches();
  }
  [[nodiscard]] int uplink_to(int slice, std::int32_t rack, std::int32_t peer) const;

  RotorNetConfig config_;
  topo::RotorNetTopology topo_;
  sim::Simulator sim_;
  sim::Rng rng_;
  transport::FlowTracker tracker_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<net::Switch>> tors_;
  std::unique_ptr<net::Switch> core_;  // hybrid only: idealized big switch
  std::vector<std::unique_ptr<transport::RotorLbAgent>> agents_;
  std::vector<std::unique_ptr<transport::RotorRelayBuffer>> relays_;
  std::vector<std::unique_ptr<transport::NdpSource>> ndp_sources_;
  std::vector<std::unique_ptr<transport::NdpSink>> ndp_sinks_;
  std::vector<std::unique_ptr<transport::RotorLbSink>> bulk_sinks_;
  int current_slice_ = 0;
};

}  // namespace opera::core

// Packet-level 3-tier oversubscribed folded-Clos baseline (paper §5):
// NDP transport for all traffic, per-packet ECMP spraying, optional strict
// priority queueing of low-latency over bulk classes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/network.h"
#include "net/host.h"
#include "net/switch.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "topo/folded_clos.h"
#include "transport/flow.h"
#include "transport/ndp.h"

namespace opera::core {

struct ClosNetConfig {
  topo::ClosParams structure;  // defaults: k=12, 3:1 -> 648 hosts
  LinkParams link;
  transport::NdpConfig ndp;
  std::int64_t bulk_threshold_bytes = 15'000'000;
  // With priority queueing, >=threshold flows ride the bulk band so short
  // flows never queue behind them (the paper's "ideal priority queuing"
  // comparison); without it all traffic shares one band.
  bool priority_queueing = true;
  std::uint64_t seed = 42;

  [[nodiscard]] net::PortQueue::Config switch_queue_config() const {
    net::PortQueue::Config q;
    q.low_latency_capacity_bytes = 12'000;  // NDP-shallow
    q.control_capacity_bytes = 24'000;
    q.bulk_capacity_bytes = 36'000;
    q.trim_low_latency = true;
    q.trim_bulk = true;  // bulk also runs NDP here
    return q;
  }
  [[nodiscard]] net::PortQueue::Config host_queue_config() const {
    net::PortQueue::Config q;
    q.low_latency_capacity_bytes = 4'000'000;
    q.control_capacity_bytes = 1'000'000;
    q.bulk_capacity_bytes = 4'000'000;
    q.trim_low_latency = false;
    q.trim_bulk = false;
    return q;
  }
};

class ClosNetwork : public Network {
 public:
  explicit ClosNetwork(const ClosNetConfig& config);

  std::uint64_t submit_flow(
      std::int32_t src_host, std::int32_t dst_host, std::int64_t size_bytes,
      sim::Time start,
      std::optional<net::TrafficClass> force = std::nullopt) override;

  void run_until(sim::Time t) override { sim_.run_until(t); }

  [[nodiscard]] sim::Simulator& sim() override { return sim_; }
  [[nodiscard]] const sim::Simulator& sim() const override { return sim_; }
  [[nodiscard]] transport::FlowTracker& tracker() override { return tracker_; }
  [[nodiscard]] const transport::FlowTracker& tracker() const override {
    return tracker_;
  }
  [[nodiscard]] const topo::FoldedClos& structure() const { return clos_; }
  [[nodiscard]] std::int32_t num_hosts() const override {
    return static_cast<std::int32_t>(hosts_.size());
  }
  [[nodiscard]] std::int32_t num_racks() const override {
    return static_cast<std::int32_t>(clos_.num_tors());
  }
  [[nodiscard]] net::Host& host(std::int32_t id) {
    return *hosts_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::int32_t rack_of_host(std::int32_t host) const override {
    return host / clos_.params().hosts_per_tor();
  }
  [[nodiscard]] std::string describe() const override;

 private:
  void build();

  ClosNetConfig config_;
  topo::FoldedClos clos_;
  sim::Simulator sim_;
  sim::Rng rng_;
  transport::FlowTracker tracker_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<net::Switch>> tors_;
  std::vector<std::unique_ptr<net::Switch>> aggs_;
  std::vector<std::unique_ptr<net::Switch>> cores_;
  std::vector<std::unique_ptr<transport::NdpSource>> sources_;
  std::vector<std::unique_ptr<transport::NdpSink>> sinks_;
};

}  // namespace opera::core

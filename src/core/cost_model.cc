#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

namespace opera::core {

int CostModel::expander_uplinks(double alpha, int radix) {
  const double u = alpha * radix / (1.0 + alpha);
  return std::clamp(static_cast<int>(std::llround(u)), 1, radix - 1);
}

std::int64_t CostModel::clos_hosts(int radix, double oversubscription) {
  const double f = oversubscription;
  const double half_k = radix / 2.0;
  return static_cast<std::int64_t>(
      std::llround(4.0 * f / (f + 1.0) * half_k * half_k * half_k));
}

std::int64_t CostModel::opera_racks(int radix) {
  // 3:1-normalized host count divided by d = k/2 hosts per rack:
  // 3 * (k/2)^2 racks (108 at k=12, 432 at k=24).
  const std::int64_t half_k = radix / 2;
  return 3 * half_k * half_k;
}

}  // namespace opera::core

// Cost-normalization model (paper Appendix A, Table 2).
//
// alpha = cost of an Opera "port" (ToR port + transceiver + fiber + rotor
// switch port share) / cost of a static "port" (ToR port + transceiver +
// fiber). Given alpha, cost-equivalent static networks buy more capacity:
//   folded Clos:   F = 2(T-1)/alpha  (T = 3 tiers)
//   expander:      u = alpha*k/(1+alpha)   (alpha = u/(k-u))
// and the comparison holds hosts H = (4F/(F+1))(k/2)^3 constant.
#pragma once

#include <cstdint>

namespace opera::core {

struct PortCostBreakdown {
  // Commodity components (Appendix A, Table 2; 2017-era US$).
  double sr_transceiver = 80.0;
  double optical_fiber = 45.0;  // $0.3/m * 150m average run
  double tor_port = 90.0;
  // Rotor-switch components amortized per duplex fiber port (512-port
  // rotor switch assumed).
  double fiber_array = 30.0;
  double optical_lenses = 15.0;
  double beam_steering = 5.0;
  double optical_mapping = 10.0;

  [[nodiscard]] double static_port() const {
    return sr_transceiver + optical_fiber + tor_port;
  }
  [[nodiscard]] double opera_port() const {
    return static_port() + fiber_array + optical_lenses + beam_steering +
           optical_mapping;
  }
  [[nodiscard]] double alpha() const { return opera_port() / static_port(); }
};

class CostModel {
 public:
  static constexpr int kTiers = 3;

  // Clos oversubscription that spends the same per-host cost: F = 2(T-1)/a.
  [[nodiscard]] static double clos_oversubscription(double alpha) {
    return 2.0 * (kTiers - 1) / alpha;
  }
  // Expander uplinks per ToR at cost alpha: u = alpha*k/(1+alpha), rounded.
  [[nodiscard]] static int expander_uplinks(double alpha, int radix);
  // Hosts in the normalizing 3-tier Clos: H = (4F/(F+1)) * (k/2)^3.
  [[nodiscard]] static std::int64_t clos_hosts(int radix, double oversubscription);
  // Racks in an Opera network cost-equivalent to the k-radix Clos: the ToR
  // is split d = u = k/2, so racks = H / (k/2).
  [[nodiscard]] static std::int64_t opera_racks(int radix);
};

}  // namespace opera::core

#include "core/network.h"

#include "sim/event_queue.h"

namespace opera::core {

std::pair<std::int32_t, std::int32_t> remap_host_pair(std::int32_t src,
                                                      std::int32_t dst,
                                                      std::int32_t num_hosts) {
  src %= num_hosts;
  dst %= num_hosts;
  if (dst == src) dst = (dst + 1) % num_hosts;
  return {src, dst};
}

std::uint64_t Network::submit_remapped(std::int32_t src_host, std::int32_t dst_host,
                                       std::int64_t size_bytes, sim::Time start,
                                       std::optional<net::TrafficClass> force) {
  const auto [src, dst] = remap_host_pair(src_host, dst_host, num_hosts());
  return submit_flow(src, dst, size_bytes, start, force);
}

Network::RunStatus Network::run_with_progress(sim::Time horizon, sim::Time interval,
                                              const ProgressHook& hook) {
  RunStatus status{horizon, false};
  // A self-rescheduling poll event. The closure captures locals by
  // reference, so any copy still pending when we return must be cancelled.
  sim::EventHandle pending;
  std::function<void()> tick = [&] {
    if (hook(*this)) {
      status.stopped_early = true;
      sim().stop();
      return;
    }
    if (sim().now() + interval < horizon) {
      pending = sim().schedule_in(interval, tick);
    }
  };
  pending = sim().schedule_in(interval, tick);
  run_until(horizon);
  pending.cancel();
  status.ended_at = sim().now();
  return status;
}

void Network::fingerprint(sim::Fingerprint& fp) const {
  fp.mix_time(sim().now());
  fp.mix_u64(events_executed());
  tracker().fingerprint(fp);
}

Network::RunStatus Network::run_to_completion(sim::Time horizon,
                                              sim::Time check_interval) {
  return run_with_progress(horizon, check_interval, [](Network& net) {
    const auto& tracker = net.tracker();
    return tracker.registered() > 0 && tracker.completed() >= tracker.registered();
  });
}

}  // namespace opera::core

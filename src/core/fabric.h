// core::FabricConfig / core::NetworkFactory — one tagged configuration
// that can describe any of the four evaluated fabrics, and the factory
// that builds the matching core::Network.
//
// The per-fabric structure parameters (OperaParams, ClosParams, ...) keep
// their own types; FabricConfig adds the knobs every fabric shares (link
// rate, NDP, slice timing, bulk threshold, seeds) so an experiment can
// sweep fabrics without re-stating them:
//
//   auto cfg = core::FabricConfig::make(core::FabricKind::kOpera);
//   cfg.scale(16, 4);                       // laptop-scale testbed
//   auto net = core::NetworkFactory::build(cfg);
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/clos_network.h"
#include "core/config.h"
#include "core/expander_network.h"
#include "core/network.h"
#include "core/opera_network.h"
#include "core/rotornet_network.h"
#include "sim/checkpoint.h"

namespace opera::core {

enum class FabricKind : std::uint8_t {
  kOpera,       // rotor switches with offset reconfiguration (the paper's system)
  kFoldedClos,  // 3-tier oversubscribed folded Clos (§5 baseline)
  kExpander,    // static random u-regular expander (§5 baseline)
  kRotorNet,    // synchronized rotor switches, optionally hybrid (§5 baseline)
};

// Stable lower-case name ("opera", "clos", "expander", "rotornet").
[[nodiscard]] const char* fabric_kind_name(FabricKind kind);
[[nodiscard]] std::optional<FabricKind> parse_fabric_kind(std::string_view name);

// Which simulation engine executes the fabric (Opera only today):
//   kPacket — the packet-level event simulation (the parity oracle);
//   kFluid  — per-slice RotorLB rate integration (fluid::FluidNetwork),
//             flow granularity for million-flow, multi-second scenarios;
//   kHybrid — short/latency-sensitive flows on the packet engine, bulk
//             elephants on the fluid integrator, completions merged
//             (time, flow id)-canonically (fluid::HybridNetwork).
// The fluid engines live above core in the layer DAG, so they reach the
// factory through NetworkFactory::register_engine (see below).
enum class EngineKind : std::uint8_t { kPacket, kFluid, kHybrid };

// Stable lower-case name ("packet", "fluid", "hybrid").
[[nodiscard]] const char* engine_kind_name(EngineKind engine);
[[nodiscard]] std::optional<EngineKind> parse_engine_kind(std::string_view name);

// checkpoint:v1 fields=17
struct FabricConfig {
  FabricKind kind = FabricKind::kOpera;
  // Execution engine for `kind` (non-packet engines require kOpera).
  EngineKind engine = EngineKind::kPacket;

  // Structure of whichever fabric `kind` selects. Each carries its own
  // topology seed; only the selected one is consulted by the factory.
  topo::OperaParams opera;        // paper scale: 108 racks x 6 hosts, u=6
  topo::ClosParams clos;          // paper scale: k=12, 3:1 -> 648 hosts
  topo::ExpanderParams expander;  // paper scale: 130 ToRs, u=7, d=5
  topo::RotorNetParams rotornet;  // paper scale: 108 racks, 6 switches
  int rotornet_hosts_per_rack = 6;

  // Shared knobs, applied to the selected fabric on build.
  LinkParams link;
  SliceParams slice;  // rotor-based fabrics only
  transport::NdpConfig ndp;
  std::int64_t bulk_threshold_bytes = 15'000'000;
  bool priority_queueing = true;  // static fabrics: bulk rides a lower band
  bool enable_vlb = true;         // Opera: RotorLB two-hop fallback
  std::uint64_t seed = 42;        // network-level (non-topology) randomness
  // Opera: resident per-slice routing tables (0 = auto-size from the
  // budget; see OperaConfig::slice_table_window). CLI: --slice-window.
  int slice_table_window = 0;
  std::size_t slice_table_budget_bytes = topo::SliceTableCache::kDefaultBudgetBytes;
  // Opera: shard count for the sharded event loop (bit-identical output
  // for any value; see OperaConfig::threads). 0 = auto
  // ($OPERA_TEST_THREADS, else 1). The static fabrics currently run
  // single-domain and ignore it. CLI: --threads.
  int threads = 0;

  // Paper-scale defaults for `kind` (the structure defaults above).
  [[nodiscard]] static FabricConfig make(FabricKind kind);

  // Rescales the selected fabric to roughly `racks` x `hosts_per_rack`
  // hosts while keeping its character (1:1-provisioned ToR radix
  // k = 2 * hosts_per_rack throughout):
  //  * Opera / RotorNet: u = d = hosts_per_rack rotor switches, rack count
  //    rounded up so it divides evenly among them;
  //  * folded Clos: radix 2d rounded to split at the oversubscription
  //    ratio, pod count sized to cover the same host count;
  //  * expander: one host port traded for an extra uplink (u = d + 2 >
  //    k/2, the paper's u=7/d=5), ToR count sized to cover the same hosts.
  // The canonical cost-equivalent testbeds used by the figures live in
  // exp::Testbed; this helper is for ad-hoc scales (k=24 and beyond).
  FabricConfig& scale(std::int32_t racks, std::int32_t hosts_per_rack);

  // Host/rack counts the built network will report (no construction).
  [[nodiscard]] std::int32_t num_hosts() const;
  [[nodiscard]] std::int32_t num_racks() const;
  [[nodiscard]] std::string describe() const;

  // Lowered per-fabric configs (shared knobs folded in).
  [[nodiscard]] OperaConfig opera_config() const;
  [[nodiscard]] ClosNetConfig clos_config() const;
  [[nodiscard]] ExpanderNetConfig expander_config() const;
  [[nodiscard]] RotorNetConfig rotornet_config() const;
};

class NetworkFactory {
 public:
  // Builds the fabric `config.kind` selects, on the engine `config.engine`
  // selects. Never returns null; a non-packet engine with no registered
  // builder is a loud fatal error (the fluid layer registers its engines
  // via fluid::register_fluid_engines(), which exp::Experiment calls
  // automatically — direct factory users with engine != packet must call
  // it themselves).
  [[nodiscard]] static std::unique_ptr<Network> build(const FabricConfig& config);

  // Engine builder registration (idempotent overwrite). core cannot link
  // the fluid layer — the layer DAG points the other way — so the fluid/
  // hybrid engines install themselves here at startup.
  using EngineBuilder = std::unique_ptr<Network> (*)(const FabricConfig&);
  static void register_engine(EngineKind engine, EngineBuilder builder);
};

// Checkpoint [config] section: every FabricConfig knob as a flat key/value
// list (times in picoseconds, doubles in round-trip %.17g). The schema's
// versioning rule: a key absent from the list leaves the struct default in
// place (so adding a knob with a back-compatible default needs no version
// bump), an *unknown* key is a hard error (newer writers are never
// silently misread). See docs/CHECKPOINT.md.
[[nodiscard]] std::vector<sim::CheckpointEntry> serialize_fabric_config(
    const FabricConfig& config);
// Inverse: applies `entries` over defaults. Returns "" on success, else a
// message naming the offending key.
[[nodiscard]] std::string parse_fabric_config(
    const std::vector<sim::CheckpointEntry>& entries, FabricConfig* out);

}  // namespace opera::core

#include "core/rotornet_network.h"

#include <cassert>
#include <cstdio>
#include <numeric>

namespace opera::core {

RotorNetNetwork::RotorNetNetwork(const RotorNetConfig& config)
    : config_(config), topo_(config.structure), rng_(config.seed) {
  build();
  sim_.schedule_at(sim::Time::zero(), [this] { on_slice_boundary(0); });
}

void RotorNetNetwork::build() {
  const int d = config_.hosts_per_rack;
  const int rotors = topo_.num_rotor_switches();
  const bool hybrid = config_.structure.hybrid;
  const auto n = config_.structure.num_racks;
  const auto tor_q = config_.tor_queue_config();
  const auto host_q = config_.host_queue_config();
  const double rate = config_.link.rate_bps;
  const sim::Time prop = config_.link.propagation;

  if (hybrid) {
    core_ = std::make_unique<net::Switch>(sim_, "core", 0);
    for (topo::Vertex r = 0; r < n; ++r) core_->add_port(rate, prop, tor_q);
    core_->set_forward([](net::Switch&, const net::Packet& pkt, int) {
      return pkt.dst_rack;
    });
  }

  for (topo::Vertex r = 0; r < n; ++r) {
    auto tor = std::make_unique<net::Switch>(sim_, "tor" + std::to_string(r), r);
    const int ports = d + rotors + (hybrid ? 1 : 0);
    for (int p = 0; p < ports; ++p) tor->add_port(rate, prop, tor_q);
    if (hybrid) {
      tor->port(core_port()).connect(core_.get(), r);
      core_->port(r).connect(tor.get(), -1);
    }
    relays_.push_back(std::make_unique<transport::RotorRelayBuffer>(n));
    tors_.push_back(std::move(tor));
  }
  for (topo::Vertex r = 0; r < n; ++r) {
    for (int i = 0; i < d; ++i) {
      const auto id = static_cast<std::int32_t>(r) * d + i;
      auto host = std::make_unique<net::Host>(sim_, "host" + std::to_string(id), id, r);
      host->add_port(rate, prop, host_q);
      host->uplink().connect(tors_[static_cast<std::size_t>(r)].get(), i);
      tors_[static_cast<std::size_t>(r)]->port(i).connect(host.get(), 0);
      agents_.push_back(std::make_unique<transport::RotorLbAgent>(*host, tracker_, n));
      hosts_.push_back(std::move(host));
    }
  }

  for (auto& tor : tors_) {
    tor->set_intercept([this](net::Switch& swch, net::PacketPtr& pkt, int) {
      if (pkt->vlb_relay && pkt->relay_rack == swch.id() && pkt->dst_rack != swch.id()) {
        relays_[static_cast<std::size_t>(swch.id())]->store(std::move(pkt));
        return true;
      }
      return false;
    });
    tor->set_forward([this, d, hybrid](net::Switch& swch, const net::Packet& pkt,
                                       int) -> int {
      const std::int32_t rack = swch.id();
      const bool low_latency_path =
          pkt.tclass == net::TrafficClass::kLowLatency ||
          pkt.type != net::PacketType::kData;
      if (low_latency_path) {
        if (pkt.dst_rack == rack) return pkt.dst_host - rack * d;
        // Non-hybrid RotorNet has no packet-switched path: control still
        // needs to travel, so it rides the current circuits if one exists.
        if (hybrid) return core_port();
        const int sw = uplink_to(current_slice_, rack, pkt.dst_rack);
        return sw < 0 ? -1 : uplink_port(sw);
      }
      const std::int32_t target = pkt.vlb_relay ? pkt.relay_rack : pkt.dst_rack;
      if (target == rack) return pkt.dst_host - rack * d;
      const int sw = uplink_to(current_slice_, rack, target);
      return sw < 0 ? -1 : uplink_port(sw);
    });
    // Loss notification: RotorNet has no always-on in-band path (all rotors
    // blink together), so NACKs are delivered through the control plane —
    // modeled as a direct out-of-band notification to the source agent.
    const auto oob_nack = [this](const net::Packet& pkt) {
      if (pkt.type == net::PacketType::kData &&
          pkt.tclass == net::TrafficClass::kBulk) {
        agents_[static_cast<std::size_t>(pkt.src_host)]->handle_nack(pkt.flow_id,
                                                                     pkt.seq);
      }
    };
    tor->set_drop_hook([oob_nack](net::Switch&, const net::Packet& pkt) { oob_nack(pkt); });
    const int ports = d + topo_.num_rotor_switches() + (hybrid ? 1 : 0);
    for (int p = 0; p < ports; ++p) {
      tor->port(p).queue().set_bulk_drop_handler(oob_nack);
    }
  }

  for (auto& host : hosts_) {
    host->set_default_handler([this](net::Host& h, net::PacketPtr pkt) {
      const transport::Flow* flow = tracker_.find(pkt->flow_id);
      if (flow == nullptr) return;
      if (pkt->type == net::PacketType::kNack) {
        if (flow->src_host == h.id() && flow->tclass == net::TrafficClass::kBulk) {
          agents_[static_cast<std::size_t>(h.id())]->handle_nack(flow->id, pkt->seq);
        }
        return;
      }
      if (pkt->type != net::PacketType::kData && pkt->type != net::PacketType::kHeader) {
        return;
      }
      if (flow->dst_host != h.id()) return;
      if (flow->tclass == net::TrafficClass::kBulk) {
        auto sink = std::make_unique<transport::RotorLbSink>(h, *flow, tracker_);
        auto* raw = sink.get();
        bulk_sinks_.push_back(std::move(sink));
        h.register_flow(flow->id,
                        [raw](net::PacketPtr p) { raw->on_packet(std::move(p)); });
        raw->on_packet(std::move(pkt));
      } else {
        auto sink = std::make_unique<transport::NdpSink>(h, *flow, tracker_);
        auto* raw = sink.get();
        ndp_sinks_.push_back(std::move(sink));
        h.register_flow(flow->id,
                        [raw](net::PacketPtr p) { raw->on_packet(std::move(p)); });
        raw->on_packet(std::move(pkt));
      }
    });
  }
}

int RotorNetNetwork::uplink_to(int slice, std::int32_t rack, std::int32_t peer) const {
  for (int sw = 0; sw < topo_.num_rotor_switches(); ++sw) {
    if (topo_.circuit_peer(sw, rack, slice) == peer) return sw;
  }
  return -1;
}

void RotorNetNetwork::on_slice_boundary(std::int64_t abs_slice) {
  current_slice_ = static_cast<int>(abs_slice % topo_.num_slices());
  const int slice = current_slice_;
  const int d = config_.hosts_per_rack;

  // All rotors retarget at once: every uplink goes dark for the
  // reconfiguration delay (this is RotorNet's fundamental difference from
  // Opera's staggered schedule, Fig. 3a vs 3b).
  for (auto& tor : tors_) {
    for (int sw = 0; sw < topo_.num_rotor_switches(); ++sw) {
      auto& port = tor->port(uplink_port(sw));
      port.queue().flush([this](const net::Packet& pkt) {
        if (pkt.type == net::PacketType::kData &&
            pkt.tclass == net::TrafficClass::kBulk) {
          agents_[static_cast<std::size_t>(pkt.src_host)]->handle_nack(pkt.flow_id,
                                                                       pkt.seq);
        }
      });
      port.set_enabled(false);
    }
  }
  sim_.schedule_in(config_.slice.reconfiguration, [this, slice] {
    const int d_local = config_.hosts_per_rack;
    for (std::size_t r = 0; r < tors_.size(); ++r) {
      for (int sw = 0; sw < topo_.num_rotor_switches(); ++sw) {
        const topo::Vertex peer =
            topo_.circuit_peer(sw, static_cast<topo::Vertex>(r), slice);
        auto& port = tors_[r]->port(uplink_port(sw));
        if (peer == static_cast<topo::Vertex>(r)) {
          port.set_enabled(false);
        } else {
          port.connect(tors_[static_cast<std::size_t>(peer)].get(), d_local + sw);
          port.set_enabled(true);
        }
      }
    }
    allocate_bulk(slice);
  });

  (void)d;
  sim_.schedule_in(config_.slice.duration,
                   [this, abs_slice] { on_slice_boundary(abs_slice + 1); });
}

void RotorNetNetwork::allocate_bulk(int slice) {
  const int d = config_.hosts_per_rack;
  const std::int64_t uplink_budget = config_.slice_bulk_budget();
  std::vector<std::int64_t> host_budget(hosts_.size(), uplink_budget);
  std::vector<std::int64_t> in_budget(tors_.size(),
                                      static_cast<std::int64_t>(d) * uplink_budget);
  std::vector<std::int64_t> vlb_budget(in_budget);

  std::vector<int> order(static_cast<std::size_t>(topo_.num_rotor_switches()));
  std::iota(order.begin(), order.end(), 0);
  rng_.shuffle(std::span<int>{order});

  for (std::size_t r = 0; r < tors_.size(); ++r) {
    for (const int sw : order) {
      const topo::Vertex peer =
          topo_.circuit_peer(sw, static_cast<topo::Vertex>(r), slice);
      if (peer == static_cast<topo::Vertex>(r)) continue;
      std::int64_t budget = uplink_budget;
      net::Switch& tor = *tors_[r];
      auto& peer_in = in_budget[static_cast<std::size_t>(peer)];
      for (auto& pkt : relays_[r]->take(peer, std::min(budget, peer_in))) {
        budget -= pkt->size_bytes;
        peer_in -= pkt->size_bytes;
        tor.port(uplink_port(sw)).send(std::move(pkt));
      }
      for (int i = 0; i < d && budget > 0 && peer_in > 0; ++i) {
        const std::size_t h = r * static_cast<std::size_t>(d) +
                              static_cast<std::size_t>((i + slice) % d);
        const std::int64_t grant = std::min({budget, host_budget[h], peer_in});
        if (grant <= 0) continue;
        const std::int64_t sent = agents_[h]->grant_direct(peer, grant);
        budget -= sent;
        host_budget[h] -= sent;
        peer_in -= sent;
      }
      for (int i = 0; i < d && budget > 0; ++i) {
        const std::size_t h = r * static_cast<std::size_t>(d) +
                              static_cast<std::size_t>((i + slice) % d);
        const std::int64_t grant = std::min(budget, host_budget[h]);
        if (grant <= 0) continue;
        const std::int64_t sent =
            agents_[h]->grant_vlb(peer, grant, std::span<std::int64_t>(vlb_budget));
        budget -= sent;
        host_budget[h] -= sent;
      }
    }
  }
}

std::uint64_t RotorNetNetwork::submit_flow(std::int32_t src_host, std::int32_t dst_host,
                                           std::int64_t size_bytes, sim::Time start,
                                           std::optional<net::TrafficClass> force) {
  assert(src_host != dst_host);
  transport::Flow flow;
  flow.id = tracker_.next_flow_id();
  flow.src_host = src_host;
  flow.dst_host = dst_host;
  flow.src_rack = rack_of_host(src_host);
  flow.dst_rack = rack_of_host(dst_host);
  flow.size_bytes = size_bytes;
  flow.start = start;
  if (force.has_value()) {
    flow.tclass = *force;
  } else if (!config_.structure.hybrid) {
    // No packet-switched path: everything waits for circuits.
    flow.tclass = net::TrafficClass::kBulk;
  } else {
    flow.tclass = size_bytes >= bulk_threshold_bytes ? net::TrafficClass::kBulk
                                                     : net::TrafficClass::kLowLatency;
  }
  if (flow.src_rack == flow.dst_rack) flow.tclass = net::TrafficClass::kLowLatency;
  tracker_.register_flow(flow);
  sim_.schedule_at(start, [this, flow] {
    if (flow.tclass == net::TrafficClass::kBulk) {
      agents_[static_cast<std::size_t>(flow.src_host)]->add_flow(flow);
    } else {
      auto source = std::make_unique<transport::NdpSource>(host(flow.src_host), flow,
                                                           tracker_, config_.ndp);
      source->start();
      ndp_sources_.push_back(std::move(source));
    }
  });
  return flow.id;
}

std::string RotorNetNetwork::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "RotorNet%s (%d racks x %d hosts, %d switches)",
                config_.structure.hybrid ? " hybrid" : "", num_racks(),
                config_.hosts_per_rack, config_.structure.num_switches);
  return buf;
}

}  // namespace opera::core

#include "core/opera_network.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <numeric>

namespace opera::core {

namespace {

// Resolved shard count: config override, else $OPERA_TEST_THREADS (the CI
// matrix leg that runs the whole suite sharded), else 1; always clamped to
// the rack count (a shard must own at least one rack-granularity domain).
int resolve_shards(const OperaConfig& config) {
  int threads = config.threads;
  if (threads <= 0) {
    // getenv is mt-unsafe only against concurrent setenv; this runs at
    // fabric construction, before any shard worker exists.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("OPERA_TEST_THREADS")) {
      threads = std::atoi(env);
    }
  }
  if (threads <= 0) threads = 1;
  // Sharding needs lookahead: a (hypothetical) zero-propagation fabric
  // has none, so it runs single-queue like the rack clamp would.
  if (!(config.link.propagation > sim::Time::zero())) threads = 1;
  return std::min<int>(threads, config.topology.num_racks);
}

// Order-independent per-packet ECMP pick (what a real switch does: hash
// header fields). Depending only on intrinsic packet identity — never on
// a shared rng stream's draw order — is what keeps path selection, and
// therefore all output, bit-identical under any shard count. Distinct
// mixes per (rack, routing slice) de-correlate hops along a path; seq
// spreads a flow's packets across equal-cost choices (NDP-style packet
// spraying).
std::size_t ecmp_pick(const net::Packet& pkt, std::int32_t rack, int rslice,
                      std::size_t n) {
  std::uint64_t h = sim::mix64(pkt.flow_id ^ (pkt.seq * 0x9E3779B97F4A7C15ULL) ^
                               (static_cast<std::uint64_t>(static_cast<std::uint8_t>(pkt.type))
                                << 56));
  h = sim::mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rack)) << 32) ^
                 static_cast<std::uint32_t>(rslice));
  return static_cast<std::size_t>(h % n);
}

}  // namespace

OperaNetwork::OperaNetwork(const OperaConfig& config)
    : config_(config),
      topo_(config.topology),
      engine_(resolve_shards(config), config.link.propagation),
      rng_(config.seed),
      failures_(topo::FailureSet::none(config.topology.num_racks,
                                       config.topology.num_switches)),
      skew_extra_(static_cast<std::size_t>(config.topology.num_switches),
                  sim::Time::zero()),
      skew_remaining_(static_cast<std::size_t>(config.topology.num_switches), 0) {
  relay_reach_.assign(static_cast<std::size_t>(config_.topology.num_racks),
                      std::vector<bool>(static_cast<std::size_t>(config_.topology.num_racks),
                                        true));
  endpoints_.resize(static_cast<std::size_t>(engine_.num_shards()));
  // Completions/deliveries are recorded on shard threads and merged in
  // canonical (time, flow id) order at every epoch barrier — the same
  // canonical stream for any shard count, so parity tests can compare the
  // records verbatim.
  tracker_.set_lanes(engine_.num_shards());
  engine_.set_barrier_hook([this] { tracker_.flush_lanes(); });

  build_nodes();
  install_forwarding();
  install_host_handlers();

  // Per-slice low-latency forwarding tables (paper §4.3: all routing state
  // is known at design time). Slices are independent, so tables build in
  // parallel. Eager mode precomputes all N up front — at k=24 scale (432
  // slices, ~840 MB) the auto window instead keeps a small set resident,
  // prefetched ahead of the rotation at each slice boundary.
  slice_tables_ = topo::SliceTableCache(
      topo_.num_slices(),
      {config_.slice_table_window, config_.slice_table_budget_bytes},
      [this](int s) {
        return topo_.slice_routes(
            s, route_around_failures_ ? &table_failures_ : nullptr);
      });
  slice_tables_.set_concurrent(engine_.num_shards() > 1);

  // Physical wiring of slice 0, then the slice clock. Slice rotation is a
  // *global* (barrier-aligned) event: it retargets circuits and allocates
  // bulk grants across every rack, so it runs single-threaded between
  // epochs, before any shard processes events of the same timestamp.
  wire_slice(0);
  engine_.global().schedule_at(sim::Time::zero(), [this] { on_slice_boundary(0); });
}

OperaNetwork::~OperaNetwork() = default;

void OperaNetwork::build_nodes() {
  const auto d = config_.topology.hosts_per_rack;
  const auto u = config_.topology.num_switches;
  const auto n = config_.topology.num_racks;
  const auto tor_q = config_.tor_queue_config();
  const auto host_q = config_.host_queue_config();

  for (topo::Vertex r = 0; r < n; ++r) {
    auto& ctx = engine_.shard(shard_of_rack(r));
    auto tor = std::make_unique<net::Switch>(ctx, "tor" + std::to_string(r), r);
    // Downlinks then uplinks.
    for (int i = 0; i < d + u; ++i) {
      tor->add_port(config_.link.rate_bps, config_.link.propagation, tor_q);
    }
    relays_.push_back(std::make_unique<transport::RotorRelayBuffer>(n));
    tors_.push_back(std::move(tor));
  }
  for (topo::Vertex r = 0; r < n; ++r) {
    auto& ctx = engine_.shard(shard_of_rack(r));
    for (int i = 0; i < d; ++i) {
      const auto id = static_cast<std::int32_t>(r) * d + i;
      auto host = std::make_unique<net::Host>(ctx, "host" + std::to_string(id), id, r);
      host->add_port(config_.link.rate_bps, config_.link.propagation, host_q);
      host->uplink().connect(tors_[static_cast<std::size_t>(r)].get(), i);
      tors_[static_cast<std::size_t>(r)]->port(i).connect(host.get(), 0);
      agents_.push_back(std::make_unique<transport::RotorLbAgent>(*host, tracker_, n));
      hosts_.push_back(std::move(host));
    }
  }
}

int OperaNetwork::slice_at(sim::Time t) const {
  const auto abs = t / config_.slice.duration;
  return static_cast<int>(abs % topo_.num_slices());
}

int OperaNetwork::routing_slice(sim::Time now) const {
  // In the tail of a slice, route low-latency traffic by the *next*
  // slice's tables: those exclude the uplink that reconfigures at the
  // boundary, so nothing is left queued on it when it flushes (§4.1's
  // epsilon rule). The next-slice tables are physically valid here: the
  // currently-reconfiguring switch settled onto its next matching at +r.
  const sim::Time into_slice = now % config_.slice.duration;
  if (config_.slice.duration - into_slice <= config_.slice.drain_window) {
    return (current_slice_ + 1) % topo_.num_slices();
  }
  return current_slice_;
}

int OperaNetwork::uplink_to(int slice, std::int32_t rack, std::int32_t peer_rack) const {
  const int u = config_.topology.num_switches;
  const int down = topo_.reconfiguring_switch(slice);
  for (int sw = 0; sw < u; ++sw) {
    if (sw == down) continue;
    if (failures_.switch_failed[static_cast<std::size_t>(sw)]) continue;
    if (failures_.uplink_failed[static_cast<std::size_t>(rack)][static_cast<std::size_t>(sw)]) {
      continue;
    }
    if (topo_.circuit_peer(sw, rack, slice) == peer_rack) {
      // The circuit also needs the peer's uplink to this switch.
      if (failures_.uplink_failed[static_cast<std::size_t>(peer_rack)]
                                 [static_cast<std::size_t>(sw)]) {
        continue;
      }
      return sw;
    }
  }
  return -1;
}

void OperaNetwork::wire_slice(int slice) {
  // Point every (non-reconfiguring) uplink at its circuit peer.
  const int u = config_.topology.num_switches;
  const int d = config_.topology.hosts_per_rack;
  for (topo::Vertex r = 0; r < topo_.num_racks(); ++r) {
    for (int sw = 0; sw < u; ++sw) {
      const topo::Vertex peer = topo_.circuit_peer(sw, r, slice);
      auto& port = tors_[static_cast<std::size_t>(r)]->port(uplink_port(sw));
      if (peer == r) {
        port.set_enabled(false);  // self-match: no circuit this matching
      } else {
        port.connect(tors_[static_cast<std::size_t>(peer)].get(), d + sw);
        port.set_enabled(true);
      }
    }
  }
}

void OperaNetwork::on_slice_boundary(std::int64_t abs_slice) {
  abs_slice_ = abs_slice;
  current_slice_ = static_cast<int>(abs_slice % topo_.num_slices());
  const int slice = current_slice_;
  const int sw_dn = topo_.reconfiguring_switch(slice);
  const int next_slice = (slice + 1) % topo_.num_slices();

  // Take the reconfiguring switch's circuits down; anything still queued on
  // those uplinks is lost (bulk gets NACKed back to the source host).
  for (topo::Vertex r = 0; r < topo_.num_racks(); ++r) {
    auto& port = tors_[static_cast<std::size_t>(r)]->port(uplink_port(sw_dn));
    net::Switch& tor = *tors_[static_cast<std::size_t>(r)];
    port.queue().flush([this, &tor](const net::Packet& pkt) {
      if (pkt.type == net::PacketType::kData &&
          pkt.tclass == net::TrafficClass::kBulk) {
        tor.receive(net::make_control(pkt, net::PacketType::kNack), -1);
      }
    });
    port.set_enabled(false);
  }

  // The rotor settles on its next matching after the reconfiguration delay
  // (a global event: it touches ports in every shard). A skewed rotor
  // (inject_slice_skew) settles late, leaving its uplinks dark while the
  // drain-window rule already routes next-slice traffic into them.
  sim::Time settle_delay = config_.slice.reconfiguration;
  if (skew_remaining_[static_cast<std::size_t>(sw_dn)] > 0) {
    --skew_remaining_[static_cast<std::size_t>(sw_dn)];
    settle_delay += skew_extra_[static_cast<std::size_t>(sw_dn)];
  }
  engine_.global().schedule_in(settle_delay, [this, sw_dn, next_slice] {
    if (failures_.switch_failed[static_cast<std::size_t>(sw_dn)]) return;
    const int d = config_.topology.hosts_per_rack;
    for (topo::Vertex r = 0; r < topo_.num_racks(); ++r) {
      const topo::Vertex peer = topo_.circuit_peer(sw_dn, r, next_slice);
      auto& port = tors_[static_cast<std::size_t>(r)]->port(uplink_port(sw_dn));
      if (peer == r ||
          failures_.uplink_failed[static_cast<std::size_t>(r)]
                                 [static_cast<std::size_t>(sw_dn)]) {
        port.set_enabled(false);
      } else {
        port.connect(tors_[static_cast<std::size_t>(peer)].get(), d + sw_dn);
        port.set_enabled(true);
      }
    }
  });

  // Keep the table window ahead of the rotation: build what the next
  // window() slices need (in parallel — the shard workers are parked at
  // the barrier, so the prefetch sweep has the whole pool), evict what
  // fell behind. Eager mode has everything resident already.
  if (!slice_tables_.eager()) slice_tables_.prefetch(slice);

  allocate_bulk(slice);

  engine_.global().schedule_in(config_.slice.duration,
                               [this, abs_slice] { on_slice_boundary(abs_slice + 1); });
}

void OperaNetwork::allocate_bulk(int slice) {
  const int u = config_.topology.num_switches;
  const int d = config_.topology.hosts_per_rack;
  const int down = topo_.reconfiguring_switch(slice);
  const std::int64_t uplink_budget = config_.slice_bulk_budget();

  std::vector<std::int64_t> host_budget(hosts_.size(), config_.host_slice_budget());
  // Receiver "accept" budgets (RotorLB): a destination rack can absorb at
  // most its downlink capacity per slice; grants beyond that would only be
  // dropped at its ToR.
  std::vector<std::int64_t> in_budget(static_cast<std::size_t>(topo_.num_racks()),
                                      static_cast<std::int64_t>(d) *
                                          config_.host_slice_budget());
  // VLB injections are bounded separately: the true receive constraint is
  // enforced when the relay forwards (take() above), so the injection cap
  // only limits relay-buffer growth toward any one destination.
  std::vector<std::int64_t> vlb_budget(in_budget);

  // Randomize uplink service order so no switch is systematically favored.
  // This is the coordinator's rng: it only ever draws at barrier-aligned
  // events, in global order, so the stream is shard-count-independent.
  std::vector<int> order(static_cast<std::size_t>(u));
  std::iota(order.begin(), order.end(), 0);
  rng_.shuffle(std::span<int>{order});

  for (topo::Vertex r = 0; r < topo_.num_racks(); ++r) {
    for (const int sw : order) {
      if (sw == down) continue;
      if (failures_.switch_failed[static_cast<std::size_t>(sw)]) continue;
      if (failures_.uplink_failed[static_cast<std::size_t>(r)][static_cast<std::size_t>(sw)]) {
        continue;
      }
      const topo::Vertex peer = topo_.circuit_peer(sw, r, slice);
      if (peer == r) continue;
      if (failures_.uplink_failed[static_cast<std::size_t>(peer)][static_cast<std::size_t>(sw)]) {
        continue;
      }
      std::int64_t budget = uplink_budget;
      net::Switch& tor = *tors_[static_cast<std::size_t>(r)];
      auto& peer_in = in_budget[static_cast<std::size_t>(peer)];

      // (a) Once-relayed VLB traffic has priority (RotorLB).
      for (auto& pkt :
           relays_[static_cast<std::size_t>(r)]->take(peer, std::min(budget, peer_in))) {
        budget -= pkt->size_bytes;
        peer_in -= pkt->size_bytes;
        tor.port(uplink_port(sw)).send(std::move(pkt));
      }

      // (b) Hosts' direct traffic, round-robin offset by slice for fairness.
      for (int i = 0; i < d && budget > 0 && peer_in > 0; ++i) {
        const auto h = static_cast<std::size_t>(r) * static_cast<std::size_t>(d) +
                       static_cast<std::size_t>((i + slice) % d);
        const std::int64_t grant = std::min({budget, host_budget[h], peer_in});
        if (grant <= 0) continue;
        const std::int64_t sent = agents_[h]->grant_direct(peer, grant);
        budget -= sent;
        host_budget[h] -= sent;
        peer_in -= sent;
      }

      // (c) Two-hop VLB into leftover capacity (kicks in exactly when
      // demand is skewed: uniform loads consume the budget directly). The
      // relay leg is not receive-limited (it lands in the relay ToR's
      // buffer), but the final destinations are.
      if (config_.enable_vlb) {
        for (int i = 0; i < d && budget > 0; ++i) {
          const auto h = static_cast<std::size_t>(r) * static_cast<std::size_t>(d) +
                         static_cast<std::size_t>((i + slice) % d);
          const std::int64_t grant = std::min(budget, host_budget[h]);
          if (grant <= 0) continue;
          const std::int64_t sent = agents_[h]->grant_vlb(
              peer, grant, std::span<std::int64_t>(vlb_budget),
              &relay_reach_[static_cast<std::size_t>(peer)]);
          budget -= sent;
          host_budget[h] -= sent;
        }
      }
    }
  }
}

void OperaNetwork::install_forwarding() {
  const int d = config_.topology.hosts_per_rack;
  for (auto& tor : tors_) {
    tor->set_intercept([this](net::Switch& swch, net::PacketPtr& pkt, int) {
      if (pkt->vlb_relay && pkt->relay_rack == swch.id() &&
          pkt->dst_rack != swch.id()) {
        relays_[static_cast<std::size_t>(swch.id())]->store(std::move(pkt));
        return true;
      }
      return false;
    });

    tor->set_forward([this, d](net::Switch& swch, const net::Packet& pkt, int) -> int {
      const std::int32_t rack = swch.id();
      const bool low_latency_path =
          pkt.tclass == net::TrafficClass::kLowLatency ||
          pkt.type != net::PacketType::kData;
      if (low_latency_path) {
        if (pkt.dst_rack == rack) return pkt.dst_host - rack * d;
        // The deciding clock is the ToR's own shard clock — identical to
        // the global clock at this event's timestamp under any sharding.
        const int rslice = routing_slice(swch.sim().now());
        // peek() keeps the per-packet path free of cache bookkeeping; the
        // boundary prefetch guarantees residency in steady state, and the
        // get() fallback only fires on out-of-window reads.
        const topo::EcmpTable* table = slice_tables_.peek(rslice);
        if (table == nullptr) table = &slice_tables_.get(rslice);
        const auto nexts = table->next_hops(rack, pkt.dst_rack);
        if (nexts.empty()) return -1;
        const topo::Vertex next = nexts[ecmp_pick(pkt, rack, rslice, nexts.size())];
        const int sw = uplink_to(rslice, rack, next);
        return sw < 0 ? -1 : uplink_port(sw);
      }
      // Bulk data rides direct circuits only (§4.3's bulk table).
      const std::int32_t target = pkt.vlb_relay ? pkt.relay_rack : pkt.dst_rack;
      if (target == rack) return pkt.dst_host - rack * d;
      const int sw = uplink_to(current_slice_, rack, target);
      return sw < 0 ? -1 : uplink_port(sw);
    });

    tor->set_drop_hook([](net::Switch& swch, const net::Packet& pkt) {
      if (pkt.type == net::PacketType::kData &&
          pkt.tclass == net::TrafficClass::kBulk) {
        swch.receive(net::make_control(pkt, net::PacketType::kNack), -1);
      }
    });

    // Bulk overflow on any ToR queue NACKs the source (RotorLB, §4.2.2).
    // Downlinks matter too: direct and VLB-relayed traffic can converge on
    // one receiving host within a slice.
    const int u = config_.topology.num_switches;
    for (int p = 0; p < d + u; ++p) {
      net::Switch* tor_ptr = tor.get();
      tor->port(p).queue().set_bulk_drop_handler(
          [tor_ptr](const net::Packet& pkt) {
            tor_ptr->receive(net::make_control(pkt, net::PacketType::kNack), -1);
          });
    }
  }
}

void OperaNetwork::install_host_handlers() {
  for (auto& host : hosts_) {
    // Sink creation happens on the destination host's shard; each shard
    // appends to its own endpoint pool.
    const int sh = shard_of_host(host->id());
    host->set_default_handler([this, sh](net::Host& h, net::PacketPtr pkt) {
      const transport::Flow* flow = tracker_.find(pkt->flow_id);
      if (flow == nullptr) return;
      if (pkt->type == net::PacketType::kNack) {
        // RotorLB loss notification back at the source host.
        if (flow->src_host == h.id() && flow->tclass == net::TrafficClass::kBulk) {
          agents_[static_cast<std::size_t>(h.id())]->handle_nack(flow->id, pkt->seq);
        }
        return;
      }
      if (pkt->type != net::PacketType::kData && pkt->type != net::PacketType::kHeader) {
        return;  // stray control for a finished flow
      }
      if (flow->dst_host != h.id()) return;
      // First packet of a flow at its destination: create the sink.
      EndpointPool& pool = endpoints_[static_cast<std::size_t>(sh)];
      if (flow->tclass == net::TrafficClass::kBulk) {
        auto sink = std::make_unique<transport::RotorLbSink>(h, *flow, tracker_);
        auto* raw = sink.get();
        pool.bulk_sinks.push_back(std::move(sink));
        h.register_flow(flow->id,
                        [raw](net::PacketPtr p) { raw->on_packet(std::move(p)); });
        raw->on_packet(std::move(pkt));
      } else {
        auto sink = std::make_unique<transport::NdpSink>(h, *flow, tracker_);
        auto* raw = sink.get();
        pool.ndp_sinks.push_back(std::move(sink));
        h.register_flow(flow->id,
                        [raw](net::PacketPtr p) { raw->on_packet(std::move(p)); });
        raw->on_packet(std::move(pkt));
      }
    });
  }
}

std::uint64_t OperaNetwork::submit_flow(std::int32_t src_host, std::int32_t dst_host,
                                        std::int64_t size_bytes, sim::Time start,
                                        std::optional<net::TrafficClass> force) {
  assert(src_host != dst_host);
  transport::Flow flow;
  flow.id = tracker_.next_flow_id();
  flow.src_host = src_host;
  flow.dst_host = dst_host;
  flow.src_rack = rack_of_host(src_host);
  flow.dst_rack = rack_of_host(dst_host);
  flow.size_bytes = size_bytes;
  flow.start = start;
  flow.tclass = force.value_or(size_bytes >= config_.bulk_threshold_bytes
                                   ? net::TrafficClass::kBulk
                                   : net::TrafficClass::kLowLatency);
  // Intra-rack bulk never needs a circuit; service it on the low-latency
  // path (one ToR hop).
  if (flow.src_rack == flow.dst_rack) flow.tclass = net::TrafficClass::kLowLatency;
  tracker_.register_flow(flow);

  // The start event is seeded onto the source host's shard with a
  // submission-order key, so equal-time starts order identically under any
  // shard count.
  const int sh = shard_of_host(flow.src_host);
  engine_.seed(sh, start, [this, sh, flow] {
    if (flow.tclass == net::TrafficClass::kBulk) {
      agents_[static_cast<std::size_t>(flow.src_host)]->add_flow(flow);
    } else {
      auto source = std::make_unique<transport::NdpSource>(
          host(flow.src_host), flow, tracker_, config_.ndp);
      source->start();
      endpoints_[static_cast<std::size_t>(sh)].ndp_sources.push_back(std::move(source));
    }
  });
  return flow.id;
}

void OperaNetwork::run_until(sim::Time t) { engine_.run_until(t); }

void OperaNetwork::inject_uplink_failure(std::int32_t rack, int rotor_switch) {
  failures_.uplink_failed[static_cast<std::size_t>(rack)]
                         [static_cast<std::size_t>(rotor_switch)] = true;
  // Anything queued on the dead uplink is lost now; NACK bulk back to the
  // sources over the (still connected) expander.
  net::Switch& t = tor(rack);
  t.port(uplink_port(rotor_switch)).queue().flush([&t](const net::Packet& pkt) {
    if (pkt.type == net::PacketType::kData && pkt.tclass == net::TrafficClass::kBulk) {
      t.receive(net::make_control(pkt, net::PacketType::kNack), -1);
    }
  });
  t.port(uplink_port(rotor_switch)).set_enabled(false);
  // Hello-protocol dissemination: tables reconverge after one cycle (a
  // global event — recomputation touches every ToR's state).
  engine_.global().schedule_in(config_.cycle_time(), [this] { recompute_after_failure(); });
}

void OperaNetwork::inject_switch_failure(int rotor_switch) {
  failures_.switch_failed[static_cast<std::size_t>(rotor_switch)] = true;
  for (topo::Vertex r = 0; r < topo_.num_racks(); ++r) {
    net::Switch& t = tor(r);
    t.port(uplink_port(rotor_switch)).queue().flush([&t](const net::Packet& pkt) {
      if (pkt.type == net::PacketType::kData &&
          pkt.tclass == net::TrafficClass::kBulk) {
        t.receive(net::make_control(pkt, net::PacketType::kNack), -1);
      }
    });
    t.port(uplink_port(rotor_switch)).set_enabled(false);
  }
  engine_.global().schedule_in(config_.cycle_time(), [this] { recompute_after_failure(); });
}

void OperaNetwork::rewire_switch_now(int rotor_switch) {
  const int d = config_.topology.hosts_per_rack;
  const auto sw = static_cast<std::size_t>(rotor_switch);
  if (failures_.switch_failed[sw]) return;
  // The currently-reconfiguring switch's ports belong to its pending
  // settle event (which re-checks the failure bits we just cleared).
  if (rotor_switch == topo_.reconfiguring_switch(current_slice_)) return;
  for (topo::Vertex r = 0; r < topo_.num_racks(); ++r) {
    if (failures_.uplink_failed[static_cast<std::size_t>(r)][sw]) continue;
    const topo::Vertex peer = topo_.circuit_peer(rotor_switch, r, current_slice_);
    auto& port = tors_[static_cast<std::size_t>(r)]->port(uplink_port(rotor_switch));
    if (peer == r || failures_.uplink_failed[static_cast<std::size_t>(peer)][sw]) {
      port.set_enabled(false);
    } else {
      port.connect(tors_[static_cast<std::size_t>(peer)].get(), d + rotor_switch);
      port.set_enabled(true);
    }
  }
}

void OperaNetwork::recover_uplink(std::int32_t rack, int rotor_switch) {
  failures_.uplink_failed[static_cast<std::size_t>(rack)]
                         [static_cast<std::size_t>(rotor_switch)] = false;
  // Both endpoints of any circuit through (rack, rotor_switch) may come
  // back; re-wiring the whole switch is idempotent for untouched racks.
  rewire_switch_now(rotor_switch);
  engine_.global().schedule_in(config_.cycle_time(), [this] { recompute_after_failure(); });
}

void OperaNetwork::recover_switch(int rotor_switch) {
  failures_.switch_failed[static_cast<std::size_t>(rotor_switch)] = false;
  rewire_switch_now(rotor_switch);
  engine_.global().schedule_in(config_.cycle_time(), [this] { recompute_after_failure(); });
}

void OperaNetwork::inject_gray_uplink(std::int32_t rack, int rotor_switch,
                                      double loss, sim::Time extra_latency) {
  // Per-port salt: distinct gray links must make independent drop
  // decisions for the same packet, or a retransmission crossing two gray
  // hops would be deterministically doomed.
  const std::uint64_t salt = sim::mix64(
      0x6F70657261677261ULL ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rack)) << 8) ^
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(rotor_switch)));
  tor(rack).port(uplink_port(rotor_switch)).set_gray(loss, extra_latency, salt);
}

void OperaNetwork::clear_gray_uplink(std::int32_t rack, int rotor_switch) {
  tor(rack).port(uplink_port(rotor_switch)).clear_gray();
}

void OperaNetwork::inject_slice_skew(int rotor_switch, sim::Time extra, int count) {
  assert(extra >= sim::Time::zero());
  assert(extra + config_.slice.reconfiguration < config_.slice.duration);
  skew_extra_[static_cast<std::size_t>(rotor_switch)] = extra;
  skew_remaining_[static_cast<std::size_t>(rotor_switch)] = count;
}

void OperaNetwork::recompute_after_failure() {
  // Only cached entries are touched: drop them all (their content predates
  // the failure), then rebuild the active window in parallel — the full
  // set when eager, the slices around the rotation otherwise; anything
  // else rebuilds on demand. Builds run against a snapshot of the failure
  // set taken now — the reconvergence instant — so a failure injected
  // *after* this point stays invisible to rebuilt tables until its own
  // recompute fires, exactly like the eager precompute behaved.
  route_around_failures_ = true;
  table_failures_ = failures_;
  slice_tables_.invalidate_all();
  slice_tables_.prefetch(current_slice_);
  // Recompute direct reachability, purge relay buffers of traffic whose
  // final direct circuit no longer exists (its matching lived on a failed
  // switch/uplink), and stop routing new VLB traffic through dead-end
  // relays. NACKs send stranded packets back to their sources.
  for (topo::Vertex r = 0; r < topo_.num_racks(); ++r) {
    auto& relay = *relays_[static_cast<std::size_t>(r)];
    for (topo::Vertex dst = 0; dst < topo_.num_racks(); ++dst) {
      if (dst == r) continue;
      bool reachable = false;
      for (int s = 0; s < topo_.num_slices() && !reachable; ++s) {
        reachable = uplink_to(s, r, dst) >= 0;
      }
      relay_reach_[static_cast<std::size_t>(r)][static_cast<std::size_t>(dst)] =
          reachable;
      if (reachable || relay.queued_bytes(dst) == 0) continue;
      net::Switch& t = tor(r);
      for (auto& pkt : relay.take(dst, std::numeric_limits<std::int64_t>::max())) {
        if (pkt->type == net::PacketType::kData &&
            pkt->tclass == net::TrafficClass::kBulk) {
          t.receive(net::make_control(*pkt, net::PacketType::kNack), -1);
        }
      }
    }
  }
}

OperaNetwork::TorStats OperaNetwork::tor_stats() const {
  TorStats stats;
  const int d = config_.topology.hosts_per_rack;
  const int u = config_.topology.num_switches;
  for (const auto& tor : tors_) {
    stats.forward_drops += tor->forward_drops();
    for (int p = 0; p < d + u; ++p) {
      stats.trims += tor->port(p).queue().trims();
      stats.drops += tor->port(p).queue().drops();
      stats.wire_drops += static_cast<std::uint64_t>(tor->port(p).gray_drops());
    }
  }
  return stats;
}

std::size_t OperaNetwork::voq_memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& agent : agents_) bytes += agent->memory_bytes();
  for (const auto& relay : relays_) bytes += relay->memory_bytes();
  return bytes;
}

void OperaNetwork::fingerprint(sim::Fingerprint& fp) const {
  Network::fingerprint(fp);
  // Slice rotation state.
  fp.mix_u64(static_cast<std::uint64_t>(current_slice_));
  fp.mix_i64(abs_slice_);
  // Failure machinery: the live set, the table snapshot, and whether
  // routing avoids failures yet.
  fp.mix_bool(route_around_failures_);
  failures_.fingerprint(fp);
  table_failures_.fingerprint(fp);
  // Coordinator rng cursor (bulk grant order draws advance it).
  rng_.fingerprint(fp);
  // Per-ToR counters and queue state, in rack order; per-host NIC port in
  // host order. Both orders are partition-invariant.
  for (const auto& tor : tors_) tor->fingerprint(fp);
  for (const auto& host : hosts_) host->port(0).fingerprint(fp);
  // Rotor desync state.
  for (const sim::Time t : skew_extra_) fp.mix_time(t);
  for (const int n : skew_remaining_) fp.mix_u64(static_cast<std::uint64_t>(n));
}

bool OperaNetwork::degrade_memory() {
  const int window = slice_tables_.window();
  return slice_tables_.shrink_window(window / 2);
}

std::string OperaNetwork::describe() const {
  // Deliberately identical for any shard count: describe() lands in CSV
  // rows, and sharding must not change a byte of bench output (the
  // threads note carries the metadata instead).
  char buf[96];
  std::snprintf(buf, sizeof buf, "Opera (%d racks x %d hosts, %d rotors)",
                num_racks(), config_.topology.hosts_per_rack,
                config_.topology.num_switches);
  return buf;
}

}  // namespace opera::core

// OperaNetwork — the packet-level Opera fabric (the paper's §3-§4 system):
// hosts with NDP sources/sinks and RotorLB agents, ToR switches with
// per-slice forwarding state, and rotor circuit switches realized as
// retargetable ToR-to-ToR links driven by the slice schedule.
//
// This is the library's primary public entry point:
//
//   core::OperaConfig cfg;                   // paper-scale defaults
//   cfg.topology.num_racks = 16; ...
//   core::OperaNetwork net(cfg);
//   net.submit_flow(src_host, dst_host, bytes, at);
//   net.run_until(sim::Time::ms(50));
//   net.tracker().fct_us(...);               // measurements
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/network.h"
#include "net/host.h"
#include "net/switch.h"
#include "sim/rng.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "topo/opera_topology.h"
#include "topo/slice_table_cache.h"
#include "transport/flow.h"
#include "transport/ndp.h"
#include "transport/rotorlb.h"

namespace opera::core {

class OperaNetwork : public Network {
 public:
  explicit OperaNetwork(const OperaConfig& config);
  ~OperaNetwork() override;

  // Classifies by size against bulk_threshold_bytes unless `force` is
  // given (the paper's application-based tagging, §3.4), registers the
  // flow, and schedules its start. Returns the flow id.
  std::uint64_t submit_flow(
      std::int32_t src_host, std::int32_t dst_host, std::int64_t size_bytes,
      sim::Time start,
      std::optional<net::TrafficClass> force = std::nullopt) override;

  void run_until(sim::Time t) override;

  // The coordinator simulator: its clock is the committed global time and
  // its queue holds barrier-aligned global events (slice boundaries,
  // failure injections, progress ticks). With threads == 1 this is still
  // the natural place for test probes; packet events live on the shard(s).
  [[nodiscard]] sim::Simulator& sim() override { return engine_.global(); }
  [[nodiscard]] const sim::Simulator& sim() const override { return engine_.global(); }
  [[nodiscard]] sim::ShardedSimulator& engine() { return engine_; }
  [[nodiscard]] std::uint64_t events_executed() const override {
    return engine_.events_executed();
  }
  // Resolved shard count (config threads clamped to [1, num_racks]).
  [[nodiscard]] int num_shards() const override { return engine_.num_shards(); }
  [[nodiscard]] int shard_of_rack(std::int32_t rack) const {
    return static_cast<int>(static_cast<std::int64_t>(rack) * engine_.num_shards() /
                            topo_.num_racks());
  }
  [[nodiscard]] transport::FlowTracker& tracker() override { return tracker_; }
  [[nodiscard]] const transport::FlowTracker& tracker() const override {
    return tracker_;
  }
  [[nodiscard]] const OperaConfig& config() const { return config_; }
  [[nodiscard]] const topo::OperaTopology& topology() const { return topo_; }
  [[nodiscard]] std::int32_t num_hosts() const override {
    return static_cast<std::int32_t>(hosts_.size());
  }
  [[nodiscard]] std::int32_t num_racks() const override { return topo_.num_racks(); }
  [[nodiscard]] net::Host& host(std::int32_t id) {
    return *hosts_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] net::Switch& tor(std::int32_t rack) {
    return *tors_[static_cast<std::size_t>(rack)];
  }
  [[nodiscard]] std::int32_t rack_of_host(std::int32_t host) const override {
    return host / config_.topology.hosts_per_rack;
  }
  [[nodiscard]] std::string describe() const override;

  // Slice index (within [0, num_slices)) active at time `t`.
  [[nodiscard]] int slice_at(sim::Time t) const;
  [[nodiscard]] int current_slice() const { return current_slice_; }
  // Slice whose tables low-latency forwarding uses at time `now` (advances
  // to the next slice inside the end-of-slice drain window; see config.h).
  // Forwarding passes the deciding ToR's shard-local clock.
  [[nodiscard]] int routing_slice(sim::Time now) const;
  [[nodiscard]] int routing_slice() const { return routing_slice(engine_.now()); }

  // Aggregate drop/trim statistics across all ToR uplinks. `wire_drops`
  // counts packets lost to gray (lossy-not-dead) links.
  struct TorStats {
    std::uint64_t trims = 0;
    std::uint64_t drops = 0;
    std::uint64_t forward_drops = 0;
    std::uint64_t wire_drops = 0;
  };
  [[nodiscard]] TorStats tor_stats() const;

  // Runtime fault injection (paper §3.6.2): the failed component stops
  // carrying traffic immediately; every ToR learns of the failure and
  // recomputes its tables one full cycle later (the hello protocol
  // guarantees dissemination within at most two cycles — we model the
  // typical one). Until then, packets that would use the failed component
  // are dropped and recovered by the transports.
  //
  // All injection/recovery entry points mutate global fabric state and must
  // run in the coordinator phase — call them from sim() (global) events,
  // never from shard-local callbacks, or the threads=N contract breaks.
  void inject_uplink_failure(std::int32_t rack, int rotor_switch);
  void inject_switch_failure(int rotor_switch);
  [[nodiscard]] const topo::FailureSet& failures() const { return failures_; }

  // Recovery waves: the component rejoins with the matching it should
  // currently hold; ToRs fold it back into their tables one cycle later
  // (the same hello-protocol delay as failure dissemination).
  void recover_uplink(std::int32_t rack, int rotor_switch);
  void recover_switch(int rotor_switch);

  // Gray failure: the ToR's uplink transceiver on `rotor_switch` goes
  // lossy-not-dead — egress packets are dropped with probability `loss`
  // and survivors see `extra_latency` added one-way. The degradation
  // follows the port across slice retargets (it models the rack's optics,
  // not one circuit) and is invisible to routing: tables still use the
  // link, which is exactly why gray failures hurt (see docs/SCENARIOS.md).
  void inject_gray_uplink(std::int32_t rack, int rotor_switch, double loss,
                          sim::Time extra_latency);
  void clear_gray_uplink(std::int32_t rack, int rotor_switch);

  // Rotor desync: `rotor_switch`'s next `count` reconfigurations settle
  // `extra` late (on top of OperaConfig::slice.reconfiguration). While
  // late, next-slice tables already route into the still-dark uplinks —
  // the low-latency drain-window rule (§4.1) assumes punctual rotors, so
  // skew converts cleanly into measurable drops + FCT inflation. Requires
  // 0 <= extra, and extra + reconfiguration < slice duration.
  void inject_slice_skew(int rotor_switch, sim::Time extra, int count);

  // The per-slice low-latency table store (paper §4.3). Eager (all N
  // tables precomputed) or a sliding window around the current slice,
  // per OperaConfig::slice_table_window; see topo/slice_table_cache.h.
  [[nodiscard]] const topo::SliceTableCache& slice_tables() const {
    return slice_tables_;
  }

  // Structural memory of the sparse bulk VOQs (host agents + ToR relay
  // buffers) — the k=32 memory probe (see transport/sparse_voq.h).
  [[nodiscard]] std::size_t voq_memory_bytes() const;

  // Checkpoint hook: base digest plus slice rotation state, failure sets,
  // the coordinator rng cursor, per-ToR/per-host-port counters and skew
  // state — everything partition-invariant. Per-shard endpoint pools and
  // shard clocks are deliberately excluded (partition-dependent).
  void fingerprint(sim::Fingerprint& fp) const override;

  // Memory-pressure degradation: halves the slice-table window (floor
  // topo::SliceTableCache::kMinWindow). Content-neutral — window size is
  // parity-tested to never change output (SliceWindowParity).
  bool degrade_memory() override;

 private:
  void build_nodes();
  void recompute_after_failure();
  // Re-wires one rotor switch's ports to the matching active *now* (used
  // by recovery; skips racks whose own uplink is failed / self-matches /
  // the currently-reconfiguring switch, which its settle event owns).
  void rewire_switch_now(int rotor_switch);
  void wire_slice(int slice);
  void on_slice_boundary(std::int64_t abs_slice);
  void allocate_bulk(int slice);
  void install_forwarding();
  void install_host_handlers();

  // Uplink port index on a ToR for rotor switch `sw`.
  [[nodiscard]] int uplink_port(int sw) const {
    return config_.topology.hosts_per_rack + sw;
  }
  // The active uplink (rotor switch index) whose circuit currently reaches
  // `peer_rack` from `rack` in `slice`; -1 if none.
  [[nodiscard]] int uplink_to(int slice, std::int32_t rack, std::int32_t peer_rack) const;

  [[nodiscard]] int shard_of_host(std::int32_t host) const {
    return shard_of_rack(rack_of_host(host));
  }

  OperaConfig config_;
  topo::OperaTopology topo_;
  // The sharded engine: rack-granularity domains, lookahead = the inter-
  // ToR link propagation delay (the minimum cross-shard event latency).
  // Declared before the nodes so node ShardContext references outlive
  // them. threads==1 collapses to the classic single-queue loop.
  sim::ShardedSimulator engine_;
  sim::Rng rng_;  // coordinator-phase randomness only (bulk grant order)
  transport::FlowTracker tracker_;

  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<net::Switch>> tors_;
  std::vector<std::unique_ptr<transport::RotorLbAgent>> agents_;       // per host
  std::vector<std::unique_ptr<transport::RotorRelayBuffer>> relays_;   // per ToR
  // Transport endpoints, owned per shard: they are created during shard
  // phases (flow starts, first-packet sink creation), so each shard
  // appends to its own pool.
  struct EndpointPool {
    std::vector<std::unique_ptr<transport::NdpSource>> ndp_sources;
    std::vector<std::unique_ptr<transport::NdpSink>> ndp_sinks;
    std::vector<std::unique_ptr<transport::RotorLbSink>> bulk_sinks;
  };
  std::vector<EndpointPool> endpoints_;  // [shard]

  // Per-slice low-latency ECMP tables (paper §4.3): eager or windowed.
  topo::SliceTableCache slice_tables_;
  topo::FailureSet failures_;
  // The failure set tables are built against: a snapshot of failures_
  // taken at each hello-protocol reconvergence (recompute_after_failure),
  // NOT the live set — a freshly injected failure must not leak into
  // windowed rebuilds before the ToRs have "learned" of it, or windowed
  // and eager runs would diverge. Only consulted once
  // route_around_failures_ is set.
  topo::FailureSet table_failures_;
  bool route_around_failures_ = false;
  // relay_reach_[r][dst]: rack r still gets a direct circuit to dst in some
  // slice (used to keep VLB from picking dead-end relays after failures).
  std::vector<std::vector<bool>> relay_reach_;

  int current_slice_ = 0;
  std::int64_t abs_slice_ = 0;

  // Rotor desync state (inject_slice_skew): per-switch extra settle delay
  // and how many upcoming reconfigurations it still applies to.
  std::vector<sim::Time> skew_extra_;
  std::vector<int> skew_remaining_;
};

}  // namespace opera::core

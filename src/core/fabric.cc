#include "core/fabric.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace opera::core {

const char* fabric_kind_name(FabricKind kind) {
  switch (kind) {
    case FabricKind::kOpera: return "opera";
    case FabricKind::kFoldedClos: return "clos";
    case FabricKind::kExpander: return "expander";
    case FabricKind::kRotorNet: return "rotornet";
  }
  return "unknown";
}

std::optional<FabricKind> parse_fabric_kind(std::string_view name) {
  if (name == "opera") return FabricKind::kOpera;
  if (name == "clos") return FabricKind::kFoldedClos;
  if (name == "expander") return FabricKind::kExpander;
  if (name == "rotornet") return FabricKind::kRotorNet;
  return std::nullopt;
}

const char* engine_kind_name(EngineKind engine) {
  switch (engine) {
    case EngineKind::kPacket: return "packet";
    case EngineKind::kFluid: return "fluid";
    case EngineKind::kHybrid: return "hybrid";
  }
  return "unknown";
}

std::optional<EngineKind> parse_engine_kind(std::string_view name) {
  if (name == "packet") return EngineKind::kPacket;
  if (name == "fluid") return EngineKind::kFluid;
  if (name == "hybrid") return EngineKind::kHybrid;
  return std::nullopt;
}

FabricConfig FabricConfig::make(FabricKind kind) {
  FabricConfig cfg;
  cfg.kind = kind;
  return cfg;  // structure defaults are already the paper-scale presets
}

FabricConfig& FabricConfig::scale(std::int32_t racks, std::int32_t hosts_per_rack) {
  const std::int32_t hosts = racks * hosts_per_rack;
  switch (kind) {
    case FabricKind::kOpera:
      // The paper's 1:1 ToR provisioning: u = d = k/2 rotor switches, and
      // the rack count must divide evenly among them.
      opera.num_switches = hosts_per_rack;
      opera.num_racks = ((racks + hosts_per_rack - 1) / hosts_per_rack) *
                        hosts_per_rack;
      opera.hosts_per_rack = hosts_per_rack;
      break;
    case FabricKind::kRotorNet: {
      rotornet.num_switches =
          rotornet.hybrid ? hosts_per_rack + 1 : hosts_per_rack;
      const int rotors = hosts_per_rack;  // rotor switches carrying circuits
      rotornet.num_racks = ((racks + rotors - 1) / rotors) * rotors;
      rotornet_hosts_per_rack = hosts_per_rack;
      break;
    }
    case FabricKind::kFoldedClos: {
      // Match the 1:1-provisioned Opera ToR radix (k = 2d) at this scale,
      // rounded up so radix splits integrally at the oversubscription
      // ratio; then size pods to cover at least the same host count
      // (capped at the radix-k maximum).
      const int split = clos.oversubscription + 1;
      clos.radix = ((std::max(2, 2 * hosts_per_rack) + split - 1) / split) * split;
      const int pod_hosts = (clos.radix / 2) * clos.hosts_per_tor();
      clos.num_pods = std::clamp((hosts + pod_hosts - 1) / pod_hosts, 2, clos.radix);
      break;
    }
    case FabricKind::kExpander: {
      // Trade one host port for one extra uplink at the same 1:1 ToR radix
      // (u = d + 2 > k/2, the paper's u=7/d=5 against Opera's 6/6), then
      // size the ToR count to cover the same host count.
      expander.hosts_per_tor = std::max(1, hosts_per_rack - 1);
      expander.uplinks = hosts_per_rack + 1;
      expander.num_tors = (hosts + expander.hosts_per_tor - 1) / expander.hosts_per_tor;
      // A u-regular graph needs an even degree sum.
      if ((expander.num_tors * expander.uplinks) % 2 != 0) ++expander.num_tors;
      break;
    }
  }
  return *this;
}

std::int32_t FabricConfig::num_hosts() const {
  switch (kind) {
    case FabricKind::kOpera:
      return static_cast<std::int32_t>(opera.num_hosts());
    case FabricKind::kFoldedClos: {
      const int pods = clos.num_pods > 0 ? clos.num_pods : clos.radix;
      return pods * (clos.radix / 2) * clos.hosts_per_tor();
    }
    case FabricKind::kExpander:
      return static_cast<std::int32_t>(expander.num_hosts());
    case FabricKind::kRotorNet:
      return static_cast<std::int32_t>(rotornet.num_racks) * rotornet_hosts_per_rack;
  }
  return 0;
}

std::int32_t FabricConfig::num_racks() const {
  switch (kind) {
    case FabricKind::kOpera:
      return static_cast<std::int32_t>(opera.num_racks);
    case FabricKind::kFoldedClos: {
      const int pods = clos.num_pods > 0 ? clos.num_pods : clos.radix;
      return pods * (clos.radix / 2);
    }
    case FabricKind::kExpander:
      return static_cast<std::int32_t>(expander.num_tors);
    case FabricKind::kRotorNet:
      return static_cast<std::int32_t>(rotornet.num_racks);
  }
  return 0;
}

std::string FabricConfig::describe() const {
  char buf[128];
  switch (kind) {
    case FabricKind::kOpera:
      std::snprintf(buf, sizeof buf, "Opera (%d racks x %d hosts, %d rotors)",
                    static_cast<int>(opera.num_racks), opera.hosts_per_rack,
                    opera.num_switches);
      break;
    case FabricKind::kFoldedClos:
      std::snprintf(buf, sizeof buf, "%d:1 folded Clos (k=%d, %d hosts)",
                    clos.oversubscription, clos.radix, num_hosts());
      break;
    case FabricKind::kExpander:
      std::snprintf(buf, sizeof buf, "static expander (%d ToRs, u=%d, d=%d)",
                    static_cast<int>(expander.num_tors), expander.uplinks,
                    expander.hosts_per_tor);
      break;
    case FabricKind::kRotorNet:
      std::snprintf(buf, sizeof buf, "RotorNet%s (%d racks x %d hosts, %d switches)",
                    rotornet.hybrid ? " hybrid" : "",
                    static_cast<int>(rotornet.num_racks), rotornet_hosts_per_rack,
                    rotornet.num_switches);
      break;
    default:
      std::snprintf(buf, sizeof buf, "unknown fabric");
  }
  return buf;
}

OperaConfig FabricConfig::opera_config() const {
  OperaConfig cfg;
  cfg.topology = opera;
  cfg.link = link;
  cfg.slice = slice;
  cfg.ndp = ndp;
  cfg.bulk_threshold_bytes = bulk_threshold_bytes;
  cfg.enable_vlb = enable_vlb;
  cfg.seed = seed;
  cfg.slice_table_window = slice_table_window;
  cfg.slice_table_budget_bytes = slice_table_budget_bytes;
  cfg.threads = threads;
  return cfg;
}

ClosNetConfig FabricConfig::clos_config() const {
  ClosNetConfig cfg;
  cfg.structure = clos;
  cfg.link = link;
  cfg.ndp = ndp;
  cfg.bulk_threshold_bytes = bulk_threshold_bytes;
  cfg.priority_queueing = priority_queueing;
  cfg.seed = seed;
  return cfg;
}

ExpanderNetConfig FabricConfig::expander_config() const {
  ExpanderNetConfig cfg;
  cfg.structure = expander;
  cfg.link = link;
  cfg.ndp = ndp;
  cfg.bulk_threshold_bytes = bulk_threshold_bytes;
  cfg.priority_queueing = priority_queueing;
  cfg.seed = seed;
  return cfg;
}

RotorNetConfig FabricConfig::rotornet_config() const {
  RotorNetConfig cfg;
  cfg.structure = rotornet;
  cfg.hosts_per_rack = rotornet_hosts_per_rack;
  cfg.link = link;
  cfg.slice = slice;
  cfg.ndp = ndp;
  cfg.seed = seed;
  return cfg;
}

namespace {

// Serialization helpers: one key per FabricConfig knob. Times travel as
// picoseconds, doubles as round-trip %.17g, bools as 0/1.
void put_i64(std::vector<sim::CheckpointEntry>* out, const char* key,
             std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out->push_back({key, buf});
}

void put_u64(std::vector<sim::CheckpointEntry>* out, const char* key,
             std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out->push_back({key, buf});
}

void put_double(std::vector<sim::CheckpointEntry>* out, const char* key,
                double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out->push_back({key, buf});
}

void put_time(std::vector<sim::CheckpointEntry>* out, const char* key,
              sim::Time t) {
  put_i64(out, key, t.picoseconds());
}

// Parse-side: each setter returns false on a malformed value. Strtoll/
// strtod accept the exact formats the putters emit.
bool get_i64(const std::string& text, std::int64_t* v) {
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *v = parsed;
  return true;
}

bool get_u64(const std::string& text, std::uint64_t* v) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *v = parsed;
  return true;
}

bool get_double(const std::string& text, double* v) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *v = parsed;
  return true;
}

}  // namespace

std::vector<sim::CheckpointEntry> serialize_fabric_config(
    const FabricConfig& config) {
  std::vector<sim::CheckpointEntry> out;
  out.push_back({"kind", fabric_kind_name(config.kind)});
  out.push_back({"engine", engine_kind_name(config.engine)});
  put_i64(&out, "opera.num_racks", config.opera.num_racks);
  put_i64(&out, "opera.num_switches", config.opera.num_switches);
  put_u64(&out, "opera.seed", config.opera.seed);
  put_i64(&out, "opera.hosts_per_rack", config.opera.hosts_per_rack);
  put_i64(&out, "clos.radix", config.clos.radix);
  put_i64(&out, "clos.oversubscription", config.clos.oversubscription);
  put_i64(&out, "clos.num_pods", config.clos.num_pods);
  put_i64(&out, "expander.num_tors", config.expander.num_tors);
  put_i64(&out, "expander.uplinks", config.expander.uplinks);
  put_i64(&out, "expander.hosts_per_tor", config.expander.hosts_per_tor);
  put_u64(&out, "expander.seed", config.expander.seed);
  put_i64(&out, "rotornet.num_racks", config.rotornet.num_racks);
  put_i64(&out, "rotornet.num_switches", config.rotornet.num_switches);
  put_i64(&out, "rotornet.hybrid", config.rotornet.hybrid ? 1 : 0);
  put_u64(&out, "rotornet.seed", config.rotornet.seed);
  put_i64(&out, "rotornet_hosts_per_rack", config.rotornet_hosts_per_rack);
  put_double(&out, "link.rate_bps", config.link.rate_bps);
  put_time(&out, "link.propagation_ps", config.link.propagation);
  put_time(&out, "slice.duration_ps", config.slice.duration);
  put_time(&out, "slice.reconfiguration_ps", config.slice.reconfiguration);
  put_time(&out, "slice.guard_ps", config.slice.guard);
  put_time(&out, "slice.drain_window_ps", config.slice.drain_window);
  put_i64(&out, "ndp.initial_window_packets", config.ndp.initial_window_packets);
  put_time(&out, "ndp.fallback_rto_ps", config.ndp.fallback_rto);
  put_i64(&out, "bulk_threshold_bytes", config.bulk_threshold_bytes);
  put_i64(&out, "priority_queueing", config.priority_queueing ? 1 : 0);
  put_i64(&out, "enable_vlb", config.enable_vlb ? 1 : 0);
  put_u64(&out, "seed", config.seed);
  put_i64(&out, "slice_table_window", config.slice_table_window);
  put_u64(&out, "slice_table_budget_bytes", config.slice_table_budget_bytes);
  put_i64(&out, "threads", config.threads);
  return out;
}

std::string parse_fabric_config(
    const std::vector<sim::CheckpointEntry>& entries, FabricConfig* out) {
  *out = FabricConfig{};
  for (const auto& entry : entries) {
    const std::string& key = entry.key;
    const std::string& value = entry.value;
    bool ok = true;
    std::int64_t i = 0;
    std::uint64_t u = 0;
    double d = 0;
    auto as_i32 = [&](std::int32_t* field) {
      ok = get_i64(value, &i);
      if (ok) *field = static_cast<std::int32_t>(i);
    };
    auto as_int = [&](int* field) {
      ok = get_i64(value, &i);
      if (ok) *field = static_cast<int>(i);
    };
    auto as_bool = [&](bool* field) {
      ok = get_i64(value, &i) && (i == 0 || i == 1);
      if (ok) *field = i != 0;
    };
    auto as_time = [&](sim::Time* field) {
      ok = get_i64(value, &i);
      if (ok) *field = sim::Time::ps(i);
    };
    if (key == "kind") {
      const auto kind = parse_fabric_kind(value);
      ok = kind.has_value();
      if (ok) out->kind = *kind;
    } else if (key == "engine") {
      const auto engine = parse_engine_kind(value);
      ok = engine.has_value();
      if (ok) out->engine = *engine;
    } else if (key == "opera.num_racks") {
      as_i32(&out->opera.num_racks);
    } else if (key == "opera.num_switches") {
      as_int(&out->opera.num_switches);
    } else if (key == "opera.seed") {
      ok = get_u64(value, &u);
      if (ok) out->opera.seed = u;
    } else if (key == "opera.hosts_per_rack") {
      as_int(&out->opera.hosts_per_rack);
    } else if (key == "clos.radix") {
      as_int(&out->clos.radix);
    } else if (key == "clos.oversubscription") {
      as_int(&out->clos.oversubscription);
    } else if (key == "clos.num_pods") {
      as_int(&out->clos.num_pods);
    } else if (key == "expander.num_tors") {
      as_i32(&out->expander.num_tors);
    } else if (key == "expander.uplinks") {
      as_int(&out->expander.uplinks);
    } else if (key == "expander.hosts_per_tor") {
      as_int(&out->expander.hosts_per_tor);
    } else if (key == "expander.seed") {
      ok = get_u64(value, &u);
      if (ok) out->expander.seed = u;
    } else if (key == "rotornet.num_racks") {
      as_i32(&out->rotornet.num_racks);
    } else if (key == "rotornet.num_switches") {
      as_int(&out->rotornet.num_switches);
    } else if (key == "rotornet.hybrid") {
      as_bool(&out->rotornet.hybrid);
    } else if (key == "rotornet.seed") {
      ok = get_u64(value, &u);
      if (ok) out->rotornet.seed = u;
    } else if (key == "rotornet_hosts_per_rack") {
      as_int(&out->rotornet_hosts_per_rack);
    } else if (key == "link.rate_bps") {
      ok = get_double(value, &d);
      if (ok) out->link.rate_bps = d;
    } else if (key == "link.propagation_ps") {
      as_time(&out->link.propagation);
    } else if (key == "slice.duration_ps") {
      as_time(&out->slice.duration);
    } else if (key == "slice.reconfiguration_ps") {
      as_time(&out->slice.reconfiguration);
    } else if (key == "slice.guard_ps") {
      as_time(&out->slice.guard);
    } else if (key == "slice.drain_window_ps") {
      as_time(&out->slice.drain_window);
    } else if (key == "ndp.initial_window_packets") {
      as_int(&out->ndp.initial_window_packets);
    } else if (key == "ndp.fallback_rto_ps") {
      as_time(&out->ndp.fallback_rto);
    } else if (key == "bulk_threshold_bytes") {
      ok = get_i64(value, &out->bulk_threshold_bytes);
    } else if (key == "priority_queueing") {
      as_bool(&out->priority_queueing);
    } else if (key == "enable_vlb") {
      as_bool(&out->enable_vlb);
    } else if (key == "seed") {
      ok = get_u64(value, &out->seed);
    } else if (key == "slice_table_window") {
      as_int(&out->slice_table_window);
    } else if (key == "slice_table_budget_bytes") {
      ok = get_u64(value, &u);
      if (ok) out->slice_table_budget_bytes = static_cast<std::size_t>(u);
    } else if (key == "threads") {
      as_int(&out->threads);
    } else {
      return "unknown [config] key '" + key +
             "' (written by a newer schema?)";
    }
    if (!ok) {
      return "malformed value for [config] key '" + key + "': '" + value + "'";
    }
  }
  return "";
}

namespace {

// Engine builder slots (fluid, hybrid). Written once at startup by
// fluid::register_fluid_engines(); no locking — registration precedes any
// concurrent build, and builds never mutate.
NetworkFactory::EngineBuilder g_engine_builders[2] = {nullptr, nullptr};

NetworkFactory::EngineBuilder* engine_slot(EngineKind engine) {
  switch (engine) {
    case EngineKind::kFluid: return &g_engine_builders[0];
    case EngineKind::kHybrid: return &g_engine_builders[1];
    case EngineKind::kPacket: break;
  }
  return nullptr;
}

}  // namespace

void NetworkFactory::register_engine(EngineKind engine, EngineBuilder builder) {
  EngineBuilder* slot = engine_slot(engine);
  if (slot != nullptr) *slot = builder;
}

std::unique_ptr<Network> NetworkFactory::build(const FabricConfig& config) {
  if (config.engine != EngineKind::kPacket) {
    const EngineBuilder* slot = engine_slot(config.engine);
    if (slot == nullptr || *slot == nullptr) {
      std::fprintf(stderr,
                   "NetworkFactory: engine '%s' has no registered builder — "
                   "call fluid::register_fluid_engines() first "
                   "(exp::Experiment does this automatically)\n",
                   engine_kind_name(config.engine));
      std::exit(2);
    }
    return (*slot)(config);
  }
  switch (config.kind) {
    case FabricKind::kOpera:
      return std::make_unique<OperaNetwork>(config.opera_config());
    case FabricKind::kFoldedClos:
      return std::make_unique<ClosNetwork>(config.clos_config());
    case FabricKind::kExpander:
      return std::make_unique<ExpanderNetwork>(config.expander_config());
    case FabricKind::kRotorNet: {
      auto net = std::make_unique<RotorNetNetwork>(config.rotornet_config());
      net->bulk_threshold_bytes = config.bulk_threshold_bytes;
      return net;
    }
  }
  return std::make_unique<OperaNetwork>(config.opera_config());
}

}  // namespace opera::core

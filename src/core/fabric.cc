#include "core/fabric.h"

#include <algorithm>
#include <cstdio>

namespace opera::core {

const char* fabric_kind_name(FabricKind kind) {
  switch (kind) {
    case FabricKind::kOpera: return "opera";
    case FabricKind::kFoldedClos: return "clos";
    case FabricKind::kExpander: return "expander";
    case FabricKind::kRotorNet: return "rotornet";
  }
  return "unknown";
}

std::optional<FabricKind> parse_fabric_kind(std::string_view name) {
  if (name == "opera") return FabricKind::kOpera;
  if (name == "clos") return FabricKind::kFoldedClos;
  if (name == "expander") return FabricKind::kExpander;
  if (name == "rotornet") return FabricKind::kRotorNet;
  return std::nullopt;
}

FabricConfig FabricConfig::make(FabricKind kind) {
  FabricConfig cfg;
  cfg.kind = kind;
  return cfg;  // structure defaults are already the paper-scale presets
}

FabricConfig& FabricConfig::scale(std::int32_t racks, std::int32_t hosts_per_rack) {
  const std::int32_t hosts = racks * hosts_per_rack;
  switch (kind) {
    case FabricKind::kOpera:
      // The paper's 1:1 ToR provisioning: u = d = k/2 rotor switches, and
      // the rack count must divide evenly among them.
      opera.num_switches = hosts_per_rack;
      opera.num_racks = ((racks + hosts_per_rack - 1) / hosts_per_rack) *
                        hosts_per_rack;
      opera.hosts_per_rack = hosts_per_rack;
      break;
    case FabricKind::kRotorNet: {
      rotornet.num_switches =
          rotornet.hybrid ? hosts_per_rack + 1 : hosts_per_rack;
      const int rotors = hosts_per_rack;  // rotor switches carrying circuits
      rotornet.num_racks = ((racks + rotors - 1) / rotors) * rotors;
      rotornet_hosts_per_rack = hosts_per_rack;
      break;
    }
    case FabricKind::kFoldedClos: {
      // Match the 1:1-provisioned Opera ToR radix (k = 2d) at this scale,
      // rounded up so radix splits integrally at the oversubscription
      // ratio; then size pods to cover at least the same host count
      // (capped at the radix-k maximum).
      const int split = clos.oversubscription + 1;
      clos.radix = ((std::max(2, 2 * hosts_per_rack) + split - 1) / split) * split;
      const int pod_hosts = (clos.radix / 2) * clos.hosts_per_tor();
      clos.num_pods = std::clamp((hosts + pod_hosts - 1) / pod_hosts, 2, clos.radix);
      break;
    }
    case FabricKind::kExpander: {
      // Trade one host port for one extra uplink at the same 1:1 ToR radix
      // (u = d + 2 > k/2, the paper's u=7/d=5 against Opera's 6/6), then
      // size the ToR count to cover the same host count.
      expander.hosts_per_tor = std::max(1, hosts_per_rack - 1);
      expander.uplinks = hosts_per_rack + 1;
      expander.num_tors = (hosts + expander.hosts_per_tor - 1) / expander.hosts_per_tor;
      // A u-regular graph needs an even degree sum.
      if ((expander.num_tors * expander.uplinks) % 2 != 0) ++expander.num_tors;
      break;
    }
  }
  return *this;
}

std::int32_t FabricConfig::num_hosts() const {
  switch (kind) {
    case FabricKind::kOpera:
      return static_cast<std::int32_t>(opera.num_hosts());
    case FabricKind::kFoldedClos: {
      const int pods = clos.num_pods > 0 ? clos.num_pods : clos.radix;
      return pods * (clos.radix / 2) * clos.hosts_per_tor();
    }
    case FabricKind::kExpander:
      return static_cast<std::int32_t>(expander.num_hosts());
    case FabricKind::kRotorNet:
      return static_cast<std::int32_t>(rotornet.num_racks) * rotornet_hosts_per_rack;
  }
  return 0;
}

std::int32_t FabricConfig::num_racks() const {
  switch (kind) {
    case FabricKind::kOpera:
      return static_cast<std::int32_t>(opera.num_racks);
    case FabricKind::kFoldedClos: {
      const int pods = clos.num_pods > 0 ? clos.num_pods : clos.radix;
      return pods * (clos.radix / 2);
    }
    case FabricKind::kExpander:
      return static_cast<std::int32_t>(expander.num_tors);
    case FabricKind::kRotorNet:
      return static_cast<std::int32_t>(rotornet.num_racks);
  }
  return 0;
}

std::string FabricConfig::describe() const {
  char buf[128];
  switch (kind) {
    case FabricKind::kOpera:
      std::snprintf(buf, sizeof buf, "Opera (%d racks x %d hosts, %d rotors)",
                    static_cast<int>(opera.num_racks), opera.hosts_per_rack,
                    opera.num_switches);
      break;
    case FabricKind::kFoldedClos:
      std::snprintf(buf, sizeof buf, "%d:1 folded Clos (k=%d, %d hosts)",
                    clos.oversubscription, clos.radix, num_hosts());
      break;
    case FabricKind::kExpander:
      std::snprintf(buf, sizeof buf, "static expander (%d ToRs, u=%d, d=%d)",
                    static_cast<int>(expander.num_tors), expander.uplinks,
                    expander.hosts_per_tor);
      break;
    case FabricKind::kRotorNet:
      std::snprintf(buf, sizeof buf, "RotorNet%s (%d racks x %d hosts, %d switches)",
                    rotornet.hybrid ? " hybrid" : "",
                    static_cast<int>(rotornet.num_racks), rotornet_hosts_per_rack,
                    rotornet.num_switches);
      break;
    default:
      std::snprintf(buf, sizeof buf, "unknown fabric");
  }
  return buf;
}

OperaConfig FabricConfig::opera_config() const {
  OperaConfig cfg;
  cfg.topology = opera;
  cfg.link = link;
  cfg.slice = slice;
  cfg.ndp = ndp;
  cfg.bulk_threshold_bytes = bulk_threshold_bytes;
  cfg.enable_vlb = enable_vlb;
  cfg.seed = seed;
  cfg.slice_table_window = slice_table_window;
  cfg.slice_table_budget_bytes = slice_table_budget_bytes;
  cfg.threads = threads;
  return cfg;
}

ClosNetConfig FabricConfig::clos_config() const {
  ClosNetConfig cfg;
  cfg.structure = clos;
  cfg.link = link;
  cfg.ndp = ndp;
  cfg.bulk_threshold_bytes = bulk_threshold_bytes;
  cfg.priority_queueing = priority_queueing;
  cfg.seed = seed;
  return cfg;
}

ExpanderNetConfig FabricConfig::expander_config() const {
  ExpanderNetConfig cfg;
  cfg.structure = expander;
  cfg.link = link;
  cfg.ndp = ndp;
  cfg.bulk_threshold_bytes = bulk_threshold_bytes;
  cfg.priority_queueing = priority_queueing;
  cfg.seed = seed;
  return cfg;
}

RotorNetConfig FabricConfig::rotornet_config() const {
  RotorNetConfig cfg;
  cfg.structure = rotornet;
  cfg.hosts_per_rack = rotornet_hosts_per_rack;
  cfg.link = link;
  cfg.slice = slice;
  cfg.ndp = ndp;
  cfg.seed = seed;
  return cfg;
}

std::unique_ptr<Network> NetworkFactory::build(const FabricConfig& config) {
  switch (config.kind) {
    case FabricKind::kOpera:
      return std::make_unique<OperaNetwork>(config.opera_config());
    case FabricKind::kFoldedClos:
      return std::make_unique<ClosNetwork>(config.clos_config());
    case FabricKind::kExpander:
      return std::make_unique<ExpanderNetwork>(config.expander_config());
    case FabricKind::kRotorNet: {
      auto net = std::make_unique<RotorNetNetwork>(config.rotornet_config());
      net->bulk_threshold_bytes = config.bulk_threshold_bytes;
      return net;
    }
  }
  return std::make_unique<OperaNetwork>(config.opera_config());
}

}  // namespace opera::core

#include "core/expander_network.h"

#include <cassert>
#include <cstdio>

namespace opera::core {

ExpanderNetwork::ExpanderNetwork(const ExpanderNetConfig& config)
    : config_(config), expander_(config.structure), rng_(config.seed) {
  build();
}

void ExpanderNetwork::build() {
  const auto& g = expander_.graph();
  const int d = config_.structure.hosts_per_tor;
  const auto sw_q = config_.switch_queue_config();
  const auto host_q = config_.host_queue_config();
  const double rate = config_.link.rate_bps;
  const sim::Time prop = config_.link.propagation;

  routes_ = expander_.routes();
  uplink_of_.assign(static_cast<std::size_t>(g.num_vertices()),
                    std::vector<int>(static_cast<std::size_t>(g.num_vertices()), -1));

  for (topo::Vertex t = 0; t < g.num_vertices(); ++t) {
    auto tor = std::make_unique<net::Switch>(sim_, "tor" + std::to_string(t), t);
    for (int p = 0; p < d + g.degree(t); ++p) tor->add_port(rate, prop, sw_q);
    tors_.push_back(std::move(tor));
  }
  // Hosts.
  for (topo::Vertex t = 0; t < g.num_vertices(); ++t) {
    for (int i = 0; i < d; ++i) {
      const auto id = static_cast<std::int32_t>(t) * d + i;
      auto host = std::make_unique<net::Host>(sim_, "host" + std::to_string(id), id, t);
      host->add_port(rate, prop, host_q);
      host->uplink().connect(tors_[static_cast<std::size_t>(t)].get(), i);
      tors_[static_cast<std::size_t>(t)]->port(i).connect(host.get(), 0);
      transport::install_ndp_sink_factory(*host, tracker_, sinks_);
      hosts_.push_back(std::move(host));
    }
  }
  // Inter-ToR wiring: ToR a's uplink j connects to its j-th neighbor.
  for (topo::Vertex a = 0; a < g.num_vertices(); ++a) {
    const auto& nbrs = g.neighbors(a);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      uplink_of_[static_cast<std::size_t>(a)][static_cast<std::size_t>(nbrs[j])] =
          d + static_cast<int>(j);
    }
  }
  for (topo::Vertex a = 0; a < g.num_vertices(); ++a) {
    const auto& nbrs = g.neighbors(a);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const topo::Vertex b = nbrs[j];
      const int b_port = uplink_of_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)];
      tors_[static_cast<std::size_t>(a)]->port(d + static_cast<int>(j))
          .connect(tors_[static_cast<std::size_t>(b)].get(), b_port);
    }
  }

  for (auto& tor : tors_) {
    tor->set_forward([this, d](net::Switch& swch, const net::Packet& pkt, int) -> int {
      const std::int32_t rack = swch.id();
      if (pkt.dst_rack == rack) return pkt.dst_host - rack * d;
      const auto nexts = routes_.next_hops(rack, pkt.dst_rack);
      if (nexts.empty()) return -1;
      const topo::Vertex next = nexts[rng_.index(nexts.size())];
      return uplink_of_[static_cast<std::size_t>(rack)][static_cast<std::size_t>(next)];
    });
  }
}

std::uint64_t ExpanderNetwork::submit_flow(std::int32_t src_host, std::int32_t dst_host,
                                           std::int64_t size_bytes, sim::Time start,
                                           std::optional<net::TrafficClass> force) {
  assert(src_host != dst_host);
  transport::Flow flow;
  flow.id = tracker_.next_flow_id();
  flow.src_host = src_host;
  flow.dst_host = dst_host;
  flow.src_rack = rack_of_host(src_host);
  flow.dst_rack = rack_of_host(dst_host);
  flow.size_bytes = size_bytes;
  flow.start = start;
  const bool is_bulk = size_bytes >= config_.bulk_threshold_bytes;
  flow.tclass = force.value_or((config_.priority_queueing && is_bulk)
                                   ? net::TrafficClass::kBulk
                                   : net::TrafficClass::kLowLatency);
  tracker_.register_flow(flow);
  sim_.schedule_at(start, [this, flow] {
    auto source = std::make_unique<transport::NdpSource>(host(flow.src_host), flow,
                                                         tracker_, config_.ndp);
    source->start();
    sources_.push_back(std::move(source));
  });
  return flow.id;
}

std::string ExpanderNetwork::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "static expander (%d ToRs, u=%d, d=%d, %d hosts)",
                num_racks(), config_.structure.uplinks,
                config_.structure.hosts_per_tor, num_hosts());
  return buf;
}

}  // namespace opera::core

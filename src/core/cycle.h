// Cycle-time scaling model (paper §4.1 and Appendix B, Figure 14).
//
// One topology slice per matching: a k-radix Opera network (u = k/2 rotor
// switches, N = 3(k/2)^2 racks at 3:1-normalized cost) has N slices per
// cycle when one switch reconfigures at a time, making the cycle quadratic
// in k. Dividing the switches into groups of 6 — one switch per group
// reconfiguring simultaneously — shrinks the cycle by u/6 and restores
// linear scaling (Figure 14).
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.h"

namespace opera::core {

struct CycleModel {
  sim::Time slice_duration = sim::Time::us(99);       // epsilon + r
  sim::Time reconfiguration = sim::Time::us(10);

  // Racks for a cost-normalized k-radix Opera network: 3 * (k/2)^2.
  [[nodiscard]] static std::int64_t racks(int radix) {
    const std::int64_t half_k = radix / 2;
    return 3 * half_k * half_k;
  }
  [[nodiscard]] static int rotor_switches(int radix) { return radix / 2; }

  // Number of switches reconfiguring simultaneously when switches are
  // divided into groups of `group_size` with one active per group.
  [[nodiscard]] static int parallelism(int radix, int group_size) {
    return std::max(1, rotor_switches(radix) / std::max(1, group_size));
  }

  // Absolute cycle time; group_size = 0 means no grouping (one switch at a
  // time, the small-network regime of §3.1.1).
  [[nodiscard]] sim::Time cycle_time(int radix, int group_size = 0) const {
    const std::int64_t slices = racks(radix);
    const int parallel = group_size == 0 ? 1 : parallelism(radix, group_size);
    return slice_duration * (slices / parallel);
  }

  // Cycle time relative to the k=12 ungrouped baseline (Figure 14's y-axis).
  [[nodiscard]] double relative_cycle_time(int radix, int group_size = 0) const {
    const double base = static_cast<double>(cycle_time(12, 0).picoseconds());
    return static_cast<double>(cycle_time(radix, group_size).picoseconds()) / base;
  }

  // Duty cycle: fraction of a switch's period spent forwarding (~98% at
  // the paper's constants).
  [[nodiscard]] double duty_cycle(int radix) const {
    const double hold =
        static_cast<double>((slice_duration * rotor_switches(radix)).picoseconds());
    return 1.0 - static_cast<double>(reconfiguration.picoseconds()) / hold;
  }

  // Flows that can amortize one cycle of waiting within ~2x of their ideal
  // FCT (the bulk threshold): the paper quotes 15 MB at k=12 and 90 MB at
  // k=64 with groups of 6. At 10 Gb/s, one 10.7 ms cycle carries ~13.4 MB;
  // the 1.12 fudge reproduces the paper's 15 MB round figure.
  [[nodiscard]] std::int64_t bulk_threshold_bytes(int radix, double host_rate_bps,
                                                  int group_size = 0) const {
    return static_cast<std::int64_t>(cycle_time(radix, group_size).to_seconds() *
                                     host_rate_bps / 8.0 * 1.12);
  }
};

}  // namespace opera::core

// Output-port queue with the paper's service structure:
//   band 0 — control (ACK/NACK/PULL) and trimmed headers; strict priority
//   band 1 — low-latency data; NDP trimming when full (payload dropped,
//            64-byte header re-queued into band 0)
//   band 2 — bulk data; dropped when full (the RotorLB NACK path, §4.2.2)
//
// Capacities default to the paper's constants: 12 KB low-latency data
// (8 MTU), an equal-sized header band, and a bulk band sized by the caller
// (ToR bulk queues hold roughly one slice worth of data).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "sim/ring.h"

namespace opera::net {

enum class EnqueueOutcome : std::uint8_t {
  kQueued,   // accepted as-is
  kTrimmed,  // payload dropped; header queued in the control band
  kDropped,  // packet discarded entirely
};

// FIFO of packets over a power-of-two ring buffer (see sim/ring.h):
// no memory until first use, capacity retained across drain/fill cycles,
// so steady-state enqueue/dequeue never allocates — unlike std::deque,
// which allocates and frees chunks as the queue breathes.
using PacketRing = sim::Ring<PacketPtr>;

class PortQueue {
 public:
  struct Config {
    std::int64_t control_capacity_bytes = 12'000;   // headers + control
    std::int64_t low_latency_capacity_bytes = 12'000;  // 8 full MTUs (NDP)
    std::int64_t bulk_capacity_bytes = 180'000;     // ~1 slice at 10G/slice
    bool trim_low_latency = true;  // NDP trimming vs. plain drop-tail
    // Static baselines run NDP for bulk flows too, so their bulk band also
    // trims; Opera ToRs use the RotorLB NACK path instead (false).
    bool trim_bulk = false;
  };

  PortQueue() : PortQueue(Config{}) {}
  explicit PortQueue(const Config& config) : config_(config) {}

  // Callback invoked when a bulk packet is dropped (ToRs use this to send a
  // RotorLB NACK to the source host). The packet is passed by reference and
  // destroyed after the callback returns.
  using DropHandler = std::function<void(const Packet&)>;
  void set_bulk_drop_handler(DropHandler handler) { on_bulk_drop_ = std::move(handler); }

  EnqueueOutcome enqueue(PacketPtr pkt);

  // Highest-priority-first dequeue; nullptr when empty.
  [[nodiscard]] PacketPtr dequeue();

  [[nodiscard]] bool empty() const {
    return control_.empty() && low_latency_.empty() && bulk_.empty();
  }
  [[nodiscard]] std::int64_t control_bytes() const { return control_bytes_; }
  [[nodiscard]] std::int64_t low_latency_bytes() const { return low_latency_bytes_; }
  [[nodiscard]] std::int64_t bulk_bytes() const { return bulk_bytes_; }
  [[nodiscard]] std::int64_t total_bytes() const {
    return control_bytes_ + low_latency_bytes_ + bulk_bytes_;
  }

  // Counters for instrumentation.
  [[nodiscard]] std::uint64_t trims() const { return trims_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

  // Removes all queued packets, invoking `handler` (may be null) for each
  // bulk data packet — used when a rotor circuit reconfigures under a
  // non-empty queue.
  void flush(const DropHandler& handler);

 private:
  Config config_;
  PacketRing control_;
  PacketRing low_latency_;
  PacketRing bulk_;
  std::int64_t control_bytes_ = 0;
  std::int64_t low_latency_bytes_ = 0;
  std::int64_t bulk_bytes_ = 0;
  std::uint64_t trims_ = 0;
  std::uint64_t drops_ = 0;
  DropHandler on_bulk_drop_;
};

}  // namespace opera::net

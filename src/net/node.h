// Nodes (hosts and switches) and output ports (queue + serializing link).
//
// An OutPort models one unidirectional link: a PortQueue feeding a
// serializer at `rate_bps`, then a fixed propagation delay to the peer
// node. Rotor uplinks additionally support retargeting (the circuit switch
// "patches" the far end to a different ToR each slice) and disable/flush
// around reconfigurations.
//
// Event posting goes through the node's sim::ShardContext — the shard
// handle — rather than a global simulator: packet arrivals are posted into
// the *peer's* domain (a mailbox hop when the peer lives on another
// shard), local timers stay on the node's own queue. Unsharded fabrics
// construct nodes with a plain Simulator&, which wraps it in a standalone
// context and behaves exactly as before.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/queue.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace opera::net {

class Node;

class OutPort {
 public:
  OutPort(sim::ShardContext& ctx, double rate_bps, sim::Time latency,
          const PortQueue::Config& queue_config)
      : ctx_(ctx), rate_bps_(rate_bps), latency_(latency), queue_(queue_config) {}

  // Wires the far end. May be re-pointed at any time (rotor reconfigure);
  // packets already serialized continue to their original destination.
  void connect(Node* peer, int peer_in_port) {
    peer_ = peer;
    peer_in_port_ = peer_in_port;
  }

  // Enqueues and kicks the serializer.
  EnqueueOutcome send(PacketPtr pkt);

  // Disabled ports accept no new packets (sends are dropped) and stop
  // serializing after the in-flight packet completes.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Gray degradation (lossy-not-dead link): every serialized packet is
  // dropped on the wire with probability `loss` and otherwise delayed by
  // `extra_latency` on top of the propagation delay. The drop decision is
  // a pure hash of packet identity (flow, seq, type), `salt`, and the
  // port's transmission count — not a shared rng draw — so it is
  // independent of cross-port event interleaving and the sharded engine's
  // threads=N bit-identical contract holds, while each transmission
  // attempt still gets a fresh coin (retransmissions are not doomed to
  // repeat the verdict, matching real per-transmission CRC loss). The packet
  // still occupies the serializer (the bits were transmitted; they arrive
  // corrupted), so gray loss wastes link capacity exactly like real CRC
  // drops. `extra_latency` must be >= 0 (never shortens the wire, keeping
  // the sharded engine's lookahead bound safe).
  void set_gray(double loss, sim::Time extra_latency, std::uint64_t salt);
  void clear_gray();
  [[nodiscard]] bool gray() const { return gray_; }
  // Wire drops due to gray loss / packets subjected to the gray coin.
  [[nodiscard]] std::int64_t gray_drops() const { return gray_drops_; }
  [[nodiscard]] std::int64_t gray_tested() const { return gray_tested_; }

  [[nodiscard]] PortQueue& queue() { return queue_; }
  [[nodiscard]] const PortQueue& queue() const { return queue_; }
  [[nodiscard]] Node* peer() const { return peer_; }
  [[nodiscard]] double rate_bps() const { return rate_bps_; }
  [[nodiscard]] sim::Time latency() const { return latency_; }

  // Bytes of bulk-band headroom currently available.
  [[nodiscard]] std::int64_t bulk_headroom(std::int64_t capacity) const {
    return capacity - queue_.bulk_bytes();
  }

  // Checkpoint hook: link availability, gray-degradation state, and the
  // queue digest. The peer pointer is identified by the wiring replay, not
  // by address (addresses differ run to run).
  void fingerprint(sim::Fingerprint& fp) const {
    fp.mix_bool(enabled_);
    fp.mix_bool(busy_);
    fp.mix_bool(gray_);
    fp.mix_i64(gray_drops_);
    fp.mix_i64(gray_tested_);
    queue_.fingerprint(fp);
  }

 private:
  void pump();

  sim::ShardContext& ctx_;
  double rate_bps_;
  sim::Time latency_;
  PortQueue queue_;
  Node* peer_ = nullptr;
  int peer_in_port_ = -1;
  bool busy_ = false;
  bool enabled_ = true;
  bool gray_ = false;
  std::uint64_t gray_threshold_ = 0;  // loss * 2^64, compared against a hash
  std::uint64_t gray_salt_ = 0;
  sim::Time gray_extra_latency_;
  std::int64_t gray_drops_ = 0;
  std::int64_t gray_tested_ = 0;
};

class Node {
 public:
  // Sharded construction: the node lives in `ctx`'s domain.
  Node(sim::ShardContext& ctx, std::string name) : ctx_(&ctx), name_(std::move(name)) {}
  // Unsharded construction: wraps `sim` in a standalone context.
  Node(sim::Simulator& sim, std::string name)
      : owned_ctx_(std::make_unique<sim::ShardContext>(sim)),
        ctx_(owned_ctx_.get()),
        name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  virtual void receive(PacketPtr pkt, int in_port) = 0;

  int add_port(double rate_bps, sim::Time latency, const PortQueue::Config& config) {
    ports_.push_back(std::make_unique<OutPort>(*ctx_, rate_bps, latency, config));
    return static_cast<int>(ports_.size()) - 1;
  }

  [[nodiscard]] OutPort& port(int i) { return *ports_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const OutPort& port(int i) const { return *ports_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int num_ports() const { return static_cast<int>(ports_.size()); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Simulator& sim() { return ctx_->sim(); }
  [[nodiscard]] sim::ShardContext& ctx() { return *ctx_; }

 private:
  std::unique_ptr<sim::ShardContext> owned_ctx_;  // legacy-ctor wrapper only
  sim::ShardContext* ctx_;
  std::string name_;
  std::vector<std::unique_ptr<OutPort>> ports_;
};

}  // namespace opera::net

// Packet switch with pluggable forwarding. Topologies install a forwarding
// function; the switch mechanically moves packets between ports and keeps
// drop statistics. This mirrors the paper's P4 ToR (§4.3): the forwarding
// table is consulted per packet based on class and the current network
// configuration.
#pragma once

#include <cstdint>
#include <functional>

#include "net/node.h"
#include "net/packet.h"

namespace opera::net {

class Switch : public Node {
 public:
  // Returns the output port for `pkt`, or -1 to drop.
  using ForwardFn = std::function<int(Switch&, const Packet&, int in_port)>;
  // Runs before forwarding; may consume the packet (move it out and return
  // true). Used by Opera ToRs to absorb VLB relay traffic into the rotor
  // relay buffer.
  using InterceptFn = std::function<bool(Switch&, PacketPtr& pkt, int in_port)>;
  // Invoked when the forwarding function has no route (e.g. a bulk packet
  // whose direct circuit just retargeted) — Opera ToRs NACK the source.
  using DropHook = std::function<void(Switch&, const Packet&)>;

  Switch(sim::ShardContext& ctx, std::string name, std::int32_t id)
      : Node(ctx, std::move(name)), id_(id) {}
  Switch(sim::Simulator& sim, std::string name, std::int32_t id)
      : Node(sim, std::move(name)), id_(id) {}

  [[nodiscard]] std::int32_t id() const { return id_; }

  void set_forward(ForwardFn fn) { forward_ = std::move(fn); }
  void set_intercept(InterceptFn fn) { intercept_ = std::move(fn); }
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  void receive(PacketPtr pkt, int in_port) override {
    ++pkt->hops;
    if (intercept_ && intercept_(*this, pkt, in_port)) return;
    const int out = forward_ ? forward_(*this, *pkt, in_port) : -1;
    if (out < 0) {
      ++forward_drops_;
      if (drop_hook_) drop_hook_(*this, *pkt);
      return;
    }
    port(out).send(std::move(pkt));
  }

  [[nodiscard]] std::uint64_t forward_drops() const { return forward_drops_; }

  // Checkpoint hook: drop history plus every output port in index order
  // (ids, never pointers — the order must be partition-independent).
  void fingerprint(sim::Fingerprint& fp) const {
    fp.mix_i64(id_);
    fp.mix_u64(forward_drops_);
    for (int p = 0; p < num_ports(); ++p) port(p).fingerprint(fp);
  }

 private:
  std::int32_t id_;
  ForwardFn forward_;
  InterceptFn intercept_;
  DropHook drop_hook_;
  std::uint64_t forward_drops_ = 0;
};

}  // namespace opera::net

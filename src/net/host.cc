#include "net/host.h"

#include <utility>

namespace opera::net {

void Host::receive(PacketPtr pkt, int in_port) {
  (void)in_port;
  const auto it = handlers_.find(pkt->flow_id);
  if (it != handlers_.end()) {
    it->second(std::move(pkt));
    return;
  }
  if (default_handler_) default_handler_(*this, std::move(pkt));
  // else: packet for an unknown flow with no factory — dropped silently.
}

void Host::pace_control(PacketPtr pkt) {
  pacer_queue_.push_back(std::move(pkt));
  pacer_kick();
}

void Host::pacer_kick() {
  if (pacer_busy_ || pacer_queue_.empty()) return;
  pacer_busy_ = true;
  PacketPtr pkt = pacer_queue_.pop_front();
  uplink().send(std::move(pkt));
  // One control emission per full-MTU time: data pulled by these credits
  // then arrives at (at most) the receiver's link rate.
  const sim::Time interval = sim::Time::transmission(kMtuBytes, uplink().rate_bps());
  sim().schedule_in(interval, [this] {
    pacer_busy_ = false;
    pacer_kick();
  });
}

}  // namespace opera::net

// End host: one NIC uplink to its ToR, per-flow packet dispatch, and a
// receiver-side control pacer (NDP pull pacing).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/node.h"
#include "net/packet.h"
#include "net/queue.h"

namespace opera::net {

class Host : public Node {
 public:
  using FlowHandler = std::function<void(PacketPtr)>;
  // Called for packets of flows with no registered handler (used to create
  // receiver endpoints lazily on first arrival).
  using DefaultHandler = std::function<void(Host&, PacketPtr)>;

  Host(sim::ShardContext& ctx, std::string name, std::int32_t id, std::int32_t rack)
      : Node(ctx, std::move(name)), id_(id), rack_(rack) {}
  Host(sim::Simulator& sim, std::string name, std::int32_t id, std::int32_t rack)
      : Node(sim, std::move(name)), id_(id), rack_(rack) {}

  [[nodiscard]] std::int32_t id() const { return id_; }
  [[nodiscard]] std::int32_t rack() const { return rack_; }

  // The single host->ToR port (port 0 by convention).
  [[nodiscard]] OutPort& uplink() { return port(0); }

  void register_flow(std::uint64_t flow_id, FlowHandler handler) {
    handlers_[flow_id] = std::move(handler);
  }
  void unregister_flow(std::uint64_t flow_id) { handlers_.erase(flow_id); }
  void set_default_handler(DefaultHandler handler) { default_handler_ = std::move(handler); }

  void receive(PacketPtr pkt, int in_port) override;

  // Sends a control packet through the receiver pacer: control packets are
  // emitted one per MTU serialization time, which is how NDP's pull pacing
  // clocks the sender at the receiver's link rate.
  void pace_control(PacketPtr pkt);

 private:
  void pacer_kick();

  std::int32_t id_;
  std::int32_t rack_;
  // Keyed lookup only — never iterated (dispatch is by the arriving
  // packet's flow id), so iteration order cannot affect delivery order.
  // opera-lint's unordered-iteration rule enforces this.
  std::unordered_map<std::uint64_t, FlowHandler> handlers_;
  DefaultHandler default_handler_;
  PacketRing pacer_queue_;
  bool pacer_busy_ = false;
};

}  // namespace opera::net

#include "net/packet.h"

namespace opera::net {

PacketPtr make_control(const Packet& in_response_to, PacketType type) {
  auto pkt = std::make_unique<Packet>();
  pkt->flow_id = in_response_to.flow_id;
  pkt->seq = in_response_to.seq;
  pkt->src_host = in_response_to.dst_host;
  pkt->dst_host = in_response_to.src_host;
  pkt->src_rack = in_response_to.dst_rack;
  pkt->dst_rack = in_response_to.src_rack;
  pkt->size_bytes = kHeaderBytes;
  // Control packets ride the low-latency class so credits and loss
  // notifications are never stuck behind bulk data.
  pkt->tclass = TrafficClass::kLowLatency;
  pkt->type = type;
  return pkt;
}

}  // namespace opera::net

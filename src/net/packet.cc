#include "net/packet.h"

#include <vector>

namespace opera::net {

namespace {

// Thread-local packet free list. Unbounded on purpose: it grows to the
// simulation's peak in-flight packet count and then every make_packet()
// is a pop + reset.
struct PacketPool {
  std::vector<Packet*> free_list;
  ~PacketPool() {
    for (Packet* p : free_list) delete p;
  }
};
thread_local PacketPool g_packet_pool;

}  // namespace

void PacketDeleter::operator()(Packet* p) const noexcept {
  g_packet_pool.free_list.push_back(p);
}

PacketPtr make_packet() {
  auto& pool = g_packet_pool.free_list;
  if (pool.empty()) return PacketPtr{new Packet};
  Packet* p = pool.back();
  pool.pop_back();
  *p = Packet{};
  return PacketPtr{p};
}

PacketPtr make_control(const Packet& in_response_to, PacketType type) {
  auto pkt = make_packet();
  pkt->flow_id = in_response_to.flow_id;
  pkt->seq = in_response_to.seq;
  pkt->src_host = in_response_to.dst_host;
  pkt->dst_host = in_response_to.src_host;
  pkt->src_rack = in_response_to.dst_rack;
  pkt->dst_rack = in_response_to.src_rack;
  pkt->size_bytes = kHeaderBytes;
  // Control packets ride the low-latency class so credits and loss
  // notifications are never stuck behind bulk data.
  pkt->tclass = TrafficClass::kLowLatency;
  pkt->type = type;
  return pkt;
}

}  // namespace opera::net

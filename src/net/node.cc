#include "net/node.h"

#include <cassert>

namespace opera::net {

EnqueueOutcome OutPort::send(PacketPtr pkt) {
  if (!enabled_) {
    // A disabled rotor uplink carries nothing; callers are expected to
    // route around it, so treat stray sends as drops.
    return EnqueueOutcome::kDropped;
  }
  const EnqueueOutcome outcome = queue_.enqueue(std::move(pkt));
  if (outcome != EnqueueOutcome::kDropped) pump();
  return outcome;
}

void OutPort::set_enabled(bool enabled) {
  enabled_ = enabled;
  if (enabled_) pump();
}

void OutPort::pump() {
  if (busy_ || !enabled_ || queue_.empty()) return;
  PacketPtr pkt = queue_.dequeue();
  assert(pkt != nullptr);
  busy_ = true;
  const sim::Time serialization = sim::Time::transmission(pkt->size_bytes, rate_bps_);
  // Capture the wire endpoints at serialization start: a rotor retarget
  // mid-flight must not redirect bits already on the fiber.
  Node* peer = peer_;
  const int in_port = peer_in_port_;
  const sim::Time arrival_delay = serialization + latency_;
  // The arrival is posted into the *peer's* domain — a mailbox hop when
  // the peer lives on another shard; `latency_` is what bounds the
  // sharded engine's lookahead. The callback owns the packet (SmallCallback
  // is move-only-capable), so an in-flight packet whose arrival never
  // fires — simulator torn down mid-run — is still reclaimed.
  ctx_.post(peer->ctx(), ctx_.now() + arrival_delay,
            [peer, in_port, pkt = std::move(pkt)]() mutable {
              peer->receive(std::move(pkt), in_port);
            });
  ctx_.schedule_in(serialization, [this] {
    busy_ = false;
    pump();
  });
}

}  // namespace opera::net

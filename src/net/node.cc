#include "net/node.h"

#include <cassert>

namespace opera::net {

EnqueueOutcome OutPort::send(PacketPtr pkt) {
  if (!enabled_) {
    // A disabled rotor uplink carries nothing; callers are expected to
    // route around it, so treat stray sends as drops.
    return EnqueueOutcome::kDropped;
  }
  const EnqueueOutcome outcome = queue_.enqueue(std::move(pkt));
  if (outcome != EnqueueOutcome::kDropped) pump();
  return outcome;
}

void OutPort::set_enabled(bool enabled) {
  enabled_ = enabled;
  if (enabled_) pump();
}

void OutPort::set_gray(double loss, sim::Time extra_latency, std::uint64_t salt) {
  assert(loss >= 0.0 && loss <= 1.0);
  assert(extra_latency >= sim::Time::zero());
  gray_ = true;
  // loss * 2^64 as a saturating u64 threshold (loss == 1.0 drops all).
  gray_threshold_ = loss >= 1.0 ? ~0ULL
                                : static_cast<std::uint64_t>(
                                      loss * 18446744073709551616.0);
  gray_extra_latency_ = extra_latency;
  gray_salt_ = salt;
}

void OutPort::clear_gray() {
  gray_ = false;
  gray_threshold_ = 0;
  gray_extra_latency_ = sim::Time::zero();
}

void OutPort::pump() {
  if (busy_ || !enabled_ || queue_.empty()) return;
  PacketPtr pkt = queue_.dequeue();
  assert(pkt != nullptr);
  busy_ = true;
  const sim::Time serialization = sim::Time::transmission(pkt->size_bytes, rate_bps_);
  // Capture the wire endpoints at serialization start: a rotor retarget
  // mid-flight must not redirect bits already on the fiber.
  Node* peer = peer_;
  const int in_port = peer_in_port_;
  sim::Time arrival_delay = serialization + latency_;
  if (gray_) {
    // Hash of (packet identity, per-port salt, per-port transmission
    // count). The counter makes each transmission attempt a fresh coin —
    // real CRC loss is per-transmission, so a retransmitted packet must
    // not be deterministically doomed on the same port — and it is safe
    // for the threads=N contract: a port serializes packets in an order
    // that is itself part of the bit-identical simulation state (same
    // idiom as routing's ecmp_pick, never a shared rng draw).
    const std::uint64_t attempt =
        static_cast<std::uint64_t>(gray_tested_++) * 0x9E3779B97F4A7C15ULL;
    const std::uint64_t h = sim::mix64(
        pkt->flow_id ^ (pkt->seq * 0x9E3779B97F4A7C15ULL) ^
        (static_cast<std::uint64_t>(pkt->type) << 56) ^ gray_salt_ ^
        sim::mix64(attempt));
    if (h < gray_threshold_) {
      // Corrupted on the wire: the serializer stays occupied for the full
      // transmission, but no arrival is posted.
      ++gray_drops_;
      ctx_.schedule_in(serialization, [this] {
        busy_ = false;
        pump();
      });
      return;
    }
    arrival_delay += gray_extra_latency_;
  }
  // The arrival is posted into the *peer's* domain — a mailbox hop when
  // the peer lives on another shard; `latency_` is what bounds the
  // sharded engine's lookahead. The callback owns the packet (SmallCallback
  // is move-only-capable), so an in-flight packet whose arrival never
  // fires — simulator torn down mid-run — is still reclaimed.
  ctx_.post(peer->ctx(), ctx_.now() + arrival_delay,
            [peer, in_port, pkt = std::move(pkt)]() mutable {
              peer->receive(std::move(pkt), in_port);
            });
  ctx_.schedule_in(serialization, [this] {
    busy_ = false;
    pump();
  });
}

}  // namespace opera::net

#include "net/queue.h"

#include <utility>

namespace opera::net {

EnqueueOutcome PortQueue::enqueue(PacketPtr pkt) {
  const bool is_control = pkt->type != PacketType::kData;
  if (is_control) {
    // Control and trimmed headers: tiny packets, drop only under pathological
    // overload.
    if (control_bytes_ + pkt->size_bytes > config_.control_capacity_bytes) {
      ++drops_;
      return EnqueueOutcome::kDropped;
    }
    control_bytes_ += pkt->size_bytes;
    control_.push_back(std::move(pkt));
    return EnqueueOutcome::kQueued;
  }

  if (pkt->tclass == TrafficClass::kLowLatency) {
    if (low_latency_bytes_ + pkt->size_bytes > config_.low_latency_capacity_bytes) {
      if (config_.trim_low_latency &&
          control_bytes_ + kHeaderBytes <= config_.control_capacity_bytes) {
        // NDP trim: drop the payload, forward the header so the receiver
        // can NACK immediately (no RTO).
        pkt->type = PacketType::kHeader;
        pkt->size_bytes = kHeaderBytes;
        control_bytes_ += kHeaderBytes;
        control_.push_back(std::move(pkt));
        ++trims_;
        return EnqueueOutcome::kTrimmed;
      }
      ++drops_;
      return EnqueueOutcome::kDropped;
    }
    low_latency_bytes_ += pkt->size_bytes;
    low_latency_.push_back(std::move(pkt));
    return EnqueueOutcome::kQueued;
  }

  // Bulk.
  if (bulk_bytes_ + pkt->size_bytes > config_.bulk_capacity_bytes) {
    if (config_.trim_bulk &&
        control_bytes_ + kHeaderBytes <= config_.control_capacity_bytes) {
      pkt->type = PacketType::kHeader;
      pkt->size_bytes = kHeaderBytes;
      control_bytes_ += kHeaderBytes;
      control_.push_back(std::move(pkt));
      ++trims_;
      return EnqueueOutcome::kTrimmed;
    }
    ++drops_;
    if (on_bulk_drop_) on_bulk_drop_(*pkt);
    return EnqueueOutcome::kDropped;
  }
  bulk_bytes_ += pkt->size_bytes;
  bulk_.push_back(std::move(pkt));
  return EnqueueOutcome::kQueued;
}

PacketPtr PortQueue::dequeue() {
  if (!control_.empty()) {
    PacketPtr pkt = control_.pop_front();
    control_bytes_ -= pkt->size_bytes;
    return pkt;
  }
  if (!low_latency_.empty()) {
    PacketPtr pkt = low_latency_.pop_front();
    low_latency_bytes_ -= pkt->size_bytes;
    return pkt;
  }
  if (!bulk_.empty()) {
    PacketPtr pkt = bulk_.pop_front();
    bulk_bytes_ -= pkt->size_bytes;
    return pkt;
  }
  return nullptr;
}

void PortQueue::flush(const DropHandler& handler) {
  if (handler) {
    bulk_.for_each([&handler](const PacketPtr& pkt) { handler(*pkt); });
  }
  control_.clear();
  low_latency_.clear();
  bulk_.clear();
  control_bytes_ = low_latency_bytes_ = bulk_bytes_ = 0;
}

}  // namespace opera::net

// Packets for the packet-level simulation (the htsim-equivalent substrate).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/time.h"

namespace opera::net {

// The paper's two service classes (§4.1): traffic that cannot wait for a
// direct circuit is low-latency and rides multi-hop expander paths;
// everything else is bulk and waits for (near-)direct circuits.
enum class TrafficClass : std::uint8_t { kLowLatency, kBulk };

enum class PacketType : std::uint8_t {
  kData,    // payload-carrying packet
  kHeader,  // NDP-trimmed data packet (payload dropped in-network)
  kAck,     // NDP ack
  kNack,    // NDP nack (data was trimmed) or RotorLB drop notice
  kPull,    // NDP receiver-paced credit
};

struct Packet {
  std::uint64_t flow_id = 0;
  std::uint64_t seq = 0;        // data sequence within the flow (packet index)
  std::int32_t src_host = -1;
  std::int32_t dst_host = -1;
  std::int32_t src_rack = -1;
  std::int32_t dst_rack = -1;
  std::int32_t size_bytes = 0;  // on-wire size
  TrafficClass tclass = TrafficClass::kLowLatency;
  PacketType type = PacketType::kData;
  std::int32_t hops = 0;        // switch-to-switch hops taken so far
  sim::Time enqueued_at;        // set by sources for latency accounting
  // Opera/RotorNet: packets relayed through an intermediate rack by RotorLB
  // two-hop routing (Valiant load balancing) carry the relay rack id; the
  // relay ToR buffers them for re-transmission on a future direct circuit.
  bool vlb_relay = false;
  std::int32_t relay_rack = -1;
};

// Packets are pooled: destroying a PacketPtr returns the object to a
// thread-local free list and make_packet() reuses it, so steady-state
// forwarding performs no heap allocation. The simulation (and therefore
// every packet) lives on one thread.
struct PacketDeleter {
  void operator()(Packet* p) const noexcept;
};
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

// A default-initialized Packet from the pool.
[[nodiscard]] PacketPtr make_packet();

inline constexpr std::int32_t kHeaderBytes = 64;   // trimmed/control packets
inline constexpr std::int32_t kMtuBytes = 1500;    // paper's MTU
inline constexpr std::int32_t kMaxPayloadBytes = kMtuBytes - kHeaderBytes;

// Builds the control-plane response packets NDP uses; they travel in the
// reverse direction (dst -> src of the original packet).
[[nodiscard]] PacketPtr make_control(const Packet& in_response_to, PacketType type);

}  // namespace opera::net

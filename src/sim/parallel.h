// parallel_for — a minimal fork-join helper for embarrassingly parallel
// index ranges (per-slice routing tables, per-source BFS sweeps).
//
// Work runs on the process-wide WorkerPool (see sim/worker_pool.h), the
// same pool the sharded event loop's epoch phases use, so prefetch sweeps
// and shard execution never oversubscribe the machine by spawning rival
// thread sets. Work is claimed through a shared atomic counter, so uneven
// iteration costs balance automatically. Falls back to a plain loop when
// the range or the machine is too small to benefit. The first exception
// thrown by an iteration is rethrown on the calling thread after the join.
#pragma once

#include <cstddef>
#include <utility>

#include "sim/worker_pool.h"

namespace opera::sim {

// Number of workers parallel_for will use for a range of size n.
[[nodiscard]] inline unsigned parallel_workers(std::size_t n, unsigned max_threads = 0) {
  const unsigned pool = WorkerPool::shared().size();
  unsigned workers = max_threads != 0 && max_threads < pool ? max_threads : pool;
  if (static_cast<std::size_t>(workers) > n) workers = static_cast<unsigned>(n);
  return workers == 0 ? 1 : workers;
}

// Runs fn(i) for every i in [0, n). Iterations may run concurrently and in
// any order; fn must not touch shared mutable state without its own
// synchronization (writing to distinct elements of a pre-sized vector is
// fine).
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, unsigned max_threads = 0) {
  if (n == 0) return;
  const unsigned workers = parallel_workers(n, max_threads);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool::shared().run(n, std::forward<Fn>(fn), workers);
}

}  // namespace opera::sim

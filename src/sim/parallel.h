// parallel_for — a minimal fork-join helper for embarrassingly parallel
// index ranges (per-slice routing tables, per-source BFS sweeps).
//
// Work is claimed through a shared atomic counter, so uneven iteration
// costs balance automatically. Falls back to a plain loop when the range
// or the machine is too small to benefit. The first exception thrown by an
// iteration is rethrown on the calling thread after the join.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace opera::sim {

// Number of workers parallel_for will use for a range of size n.
[[nodiscard]] inline unsigned parallel_workers(std::size_t n, unsigned max_threads = 0) {
  const unsigned hw = std::thread::hardware_concurrency();
  unsigned workers = max_threads != 0 ? max_threads : (hw != 0 ? hw : 1);
  if (static_cast<std::size_t>(workers) > n) workers = static_cast<unsigned>(n);
  return workers == 0 ? 1 : workers;
}

// Runs fn(i) for every i in [0, n). Iterations may run concurrently and in
// any order; fn must not touch shared mutable state without its own
// synchronization (writing to distinct elements of a pre-sized vector is
// fine).
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, unsigned max_threads = 0) {
  if (n == 0) return;
  const unsigned workers = parallel_workers(n, max_threads);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  try {
    for (unsigned t = 1; t < workers; ++t) threads.emplace_back(work);
  } catch (const std::system_error&) {
    // Thread-resource exhaustion: degrade to however many workers spawned
    // (possibly none) — the calling thread drains the rest of the range.
  }
  work();
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace opera::sim

// SmallCallback — a move-only void() callable with small-buffer storage.
//
// The event queue schedules millions of callbacks per simulated second;
// std::function would heap-allocate for any capture larger than its tiny
// internal buffer (typically two pointers). Every *hot-path* callback in
// this codebase captures at most a `this` pointer plus a few ints, so a
// 48-byte inline buffer (kInlineBytes) makes the per-packet schedule path
// allocation-free. Larger callables still work — they fall back to the
// heap — which once-per-flow closures like submit_flow's [this, flow] do.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace opera::sim {

class SmallCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { move_from(other); }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  // Precondition: non-empty (diagnosable in debug builds, unlike a raw
  // null-pointer call).
  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(buf_);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    // Move-construct `to` from `from`, then destroy `from`'s value.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](void* from, void* to) noexcept {
        Fn* f = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* buf) noexcept { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* buf) { (**std::launder(reinterpret_cast<Fn**>(buf)))(); },
      [](void* from, void* to) noexcept {
        *reinterpret_cast<Fn**>(to) = *std::launder(reinterpret_cast<Fn**>(from));
      },
      [](void* buf) noexcept { delete *std::launder(reinterpret_cast<Fn**>(buf)); },
  };

  void move_from(SmallCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.buf_, buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace opera::sim

#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace opera::sim {

namespace detail {

std::uint32_t EventQueueImpl::alloc_slot() {
  if (!free_slots.empty()) {
    const std::uint32_t id = free_slots.back();
    free_slots.pop_back();
    return id;
  }
  meta.emplace_back();
  fns.emplace_back();
  return static_cast<std::uint32_t>(meta.size() - 1);
}

void EventQueueImpl::link_sorted(std::uint32_t id) {
  Bucket& b = buckets[bucket_of(meta[id].at.picoseconds())];
  const std::uint32_t t = b.tail;
  if (t == kNoSlot) {
    b.head = b.tail = id;
    meta[id].prev = meta[id].next = kNoSlot;
    return;
  }
  // Most inserts carry the latest (time, key) in their bucket, so walk
  // backward from the tail; counter-keyed equal times append O(1) because
  // the key increases (hash-keyed ties pay a short walk).
  if (!before(id, t)) {
    meta[id].prev = t;
    meta[id].next = kNoSlot;
    meta[t].next = id;
    b.tail = id;
    return;
  }
  std::uint32_t cur = meta[t].prev;
  std::uint32_t nxt = t;
  std::uint32_t steps = 0;
  while (cur != kNoSlot && before(id, cur)) {
    nxt = cur;
    cur = meta[cur].prev;
    ++steps;
  }
  if (steps > 16) ++long_walks;
  meta[id].prev = cur;
  meta[id].next = nxt;
  if (cur == kNoSlot) b.head = id; else meta[cur].next = id;
  meta[nxt].prev = id;
}

void EventQueueImpl::unlink(std::uint32_t id) {
  Bucket& b = buckets[bucket_of(meta[id].at.picoseconds())];
  const std::uint32_t prev = meta[id].prev;
  const std::uint32_t next = meta[id].next;
  if (prev == kNoSlot) b.head = next; else meta[prev].next = next;
  if (next == kNoSlot) b.tail = prev; else meta[next].prev = prev;
}

void EventQueueImpl::find_min() {
  if (min_slot != kNoSlot || count == 0) return;
  // Walk buckets forward from the last known lower bound. Bucket windows
  // partition time, so the first head that lies inside its current window
  // is the global minimum.
  std::uint64_t gb = static_cast<std::uint64_t>(scan_from) >> width_shift;
  for (std::uint32_t i = 0; i < nb; ++i, ++gb) {
    const std::uint32_t h = buckets[gb & bucket_mask].head;
    if (h != kNoSlot &&
        static_cast<std::uint64_t>(meta[h].at.picoseconds()) < ((gb + 1) << width_shift)) {
      min_slot = h;
      scan_from = meta[h].at.picoseconds();
      if (i > 32) ++long_scans;
      return;
    }
  }
  ++long_scans;
  // Nothing within one calendar year of scan_from: the pending events are
  // sparse. Take the minimum over all bucket heads and jump to it.
  std::uint32_t best = kNoSlot;
  for (std::uint32_t b = 0; b < nb; ++b) {
    const std::uint32_t h = buckets[b].head;
    if (h != kNoSlot && (best == kNoSlot || before(h, best))) best = h;
  }
  assert(best != kNoSlot);
  min_slot = best;
  scan_from = meta[best].at.picoseconds();
}

void EventQueueImpl::resize() {
  const auto target = static_cast<std::uint32_t>(
      std::bit_ceil(std::max<std::size_t>(64, count)));
  // Bucket width (a power of two, so bucket_of is a shift) tracks the
  // spacing of recently fired events — the density near the queue's head,
  // which is what pop scans see. Before any pops, fall back to the pending
  // range. Equal-time bursts would drive the estimate to zero; keep the
  // previous width then.
  std::uint64_t w = std::uint64_t{1} << width_shift;
  if (pop_hist_n >= 16) {
    // Median of the recent distinct inter-dequeue gaps: robust against the
    // occasional far jump (an RTO timer firing amid microsecond-spaced
    // packet events), which would blow a mean-based estimate up by orders
    // of magnitude and collapse the dense events into a single bucket.
    std::int64_t gaps[15];
    const std::uint64_t base = pop_hist_n;  // oldest entry lives at base & 15
    for (int i = 0; i < 15; ++i) {
      gaps[i] = pop_hist[(base + static_cast<std::uint64_t>(i) + 1) & 15] -
                pop_hist[(base + static_cast<std::uint64_t>(i)) & 15];
    }
    std::nth_element(gaps, gaps + 7, gaps + 15);
    if (gaps[7] > 0) w = static_cast<std::uint64_t>(gaps[7]) * 2;
  } else if (count > 1 && max_at > min_at) {
    w = static_cast<std::uint64_t>(max_at - min_at) / count * 2;
  }
  const auto shift = static_cast<unsigned>(
      std::bit_width(std::max<std::uint64_t>(w, 1)) - 1);

  std::vector<std::uint32_t> pending;
  pending.reserve(count);
  for (const Bucket& b : buckets) {
    for (std::uint32_t id = b.head; id != kNoSlot; id = meta[id].next) {
      pending.push_back(id);
    }
  }
  set_buckets(target, std::min(shift, 62u));
  for (const std::uint32_t id : pending) link_sorted(id);
  min_slot = kNoSlot;
}

namespace {

// Retired impl blocks (with their grown vector capacity) are recycled so
// that building simulator after simulator — a parameter sweep, a benchmark
// loop — pays the slab's page faults once per process, not once per run.
// Only blocks with no outstanding handles are eligible.
struct ImplPool {
  std::vector<EventQueueImpl*> retired;
  ~ImplPool() {
    for (EventQueueImpl* impl : retired) delete impl;
  }
};
thread_local ImplPool g_impl_pool;

}  // namespace

EventQueueImpl* acquire_impl() {
  auto& pool = g_impl_pool.retired;
  if (pool.empty()) return new EventQueueImpl;
  EventQueueImpl* impl = pool.back();
  pool.pop_back();
  return impl;
}

void retire_impl(EventQueueImpl* impl) {
  constexpr std::size_t kMaxRetired = 4;
  if (impl->refs == 1 && g_impl_pool.retired.size() < kMaxRetired) {
    // Reset to the fresh-queue state but keep every vector's capacity.
    impl->meta.clear();
    impl->fns.clear();
    impl->free_slots.clear();
    impl->set_buckets(64, 10);
    impl->next_seq = 0;
    impl->count = 0;
    impl->min_slot = kNoSlot;
    impl->scan_from = 0;
    impl->pop_hist_n = 0;
    impl->long_scans = 0;
    impl->long_walks = 0;
    impl->min_at = impl->max_at = 0;
    g_impl_pool.retired.push_back(impl);
    return;
  }
  impl->queue_alive = false;
  // Free the event storage now; the (small) control block lives on until
  // the last outstanding handle drops it.
  impl->meta.clear();
  impl->meta.shrink_to_fit();
  impl->fns.clear();
  impl->fns.shrink_to_fit();
  impl->buckets.clear();
  impl->buckets.shrink_to_fit();
  impl->free_slots.clear();
  impl->free_slots.shrink_to_fit();
  if (--impl->refs == 0) delete impl;
}

}  // namespace detail

void EventHandle::cancel() {
  if (impl_ == nullptr || !impl_->queue_alive) return;
  if (slot_ >= impl_->meta.size()) return;
  if (impl_->meta[slot_].generation != generation_) return;  // fired or cancelled
  impl_->unlink(slot_);
  impl_->fns[slot_].reset();
  impl_->release(slot_);
  --impl_->count;
  if (impl_->min_slot == slot_) impl_->min_slot = detail::kNoSlot;
}

bool EventHandle::pending() const {
  if (impl_ == nullptr || !impl_->queue_alive) return false;
  if (slot_ >= impl_->meta.size()) return false;
  return impl_->meta[slot_].generation == generation_;
}

EventQueue::~EventQueue() { detail::retire_impl(impl_); }

EventHandle EventQueue::schedule(Time at, Callback fn) {
  return schedule_keyed(at, impl_->next_seq++, std::move(fn));
}

EventHandle EventQueue::schedule_keyed(Time at, std::uint64_t key, Callback fn) {
  detail::EventQueueImpl& q = *impl_;
  const std::uint32_t id = q.alloc_slot();
  detail::EventQueueImpl::Meta& m = q.meta[id];
  m.at = at;
  m.key = key;
  q.fns[id] = std::move(fn);
  q.link_sorted(id);
  ++q.count;
  const std::int64_t at_ps = at.picoseconds();
  if (q.count == 1) {
    q.min_at = q.max_at = at_ps;
  } else {
    q.min_at = std::min(q.min_at, at_ps);
    q.max_at = std::max(q.max_at, at_ps);
  }
  // Events may be scheduled before the current scan point (the raw queue
  // does not require monotonic time); keep the lower bound honest.
  if (at_ps < q.scan_from) q.scan_from = at_ps;
  // Keys are caller-chosen, so a later schedule can order *before* the
  // cached minimum even at an equal timestamp — compare the full
  // (time, key), not just the time.
  if (q.min_slot != detail::kNoSlot && q.before(id, q.min_slot)) q.min_slot = id;
  if (q.count > 2 * q.nb || q.long_walks >= 8) {
    q.long_walks = 0;
    q.resize();
  }
  return EventHandle{impl_, id, m.generation};
}

EventQueue::Callback EventQueue::take_next(Time* at, std::uint64_t* key) {
  detail::EventQueueImpl& q = *impl_;
  assert(q.count > 0);
  // Repeated long scans mean the bucket width has drifted away from the
  // event spacing (which resize() re-estimates); rebuild even though the
  // queue size has not crossed a threshold.
  if (q.long_scans >= 8) {
    q.long_scans = 0;
    q.resize();
  }
  q.find_min();
  const std::uint32_t id = q.min_slot;
  *at = q.meta[id].at;
  *key = q.meta[id].key;
  // Move the callback out and free the slot *before* it can run: the
  // callback may schedule new events, growing the slab and reusing this
  // slot.
  Callback fn = std::move(q.fns[id]);
  q.fns[id].reset();
  q.unlink(id);
  q.release(id);
  --q.count;
  q.min_slot = detail::kNoSlot;
  const std::int64_t at_ps = at->picoseconds();
  q.scan_from = at_ps;
  if (q.pop_hist_n == 0 || q.pop_hist[(q.pop_hist_n - 1) & 15] != at_ps) {
    q.pop_hist[q.pop_hist_n & 15] = at_ps;
    ++q.pop_hist_n;
  }
  if (q.nb > 64 && q.count < q.nb / 8) q.resize();
  return fn;
}

Time EventQueue::run_next() {
  Time at;
  std::uint64_t key;
  Callback fn = take_next(&at, &key);
  fn();
  return at;
}

void EventQueue::clear() {
  detail::EventQueueImpl& q = *impl_;
  for (detail::EventQueueImpl::Bucket& b : q.buckets) {
    for (std::uint32_t id = b.head; id != detail::kNoSlot;) {
      const std::uint32_t next = q.meta[id].next;
      q.fns[id].reset();
      q.release(id);
      id = next;
    }
    b.head = b.tail = detail::kNoSlot;
  }
  q.count = 0;
  q.min_slot = detail::kNoSlot;
}

}  // namespace opera::sim

#include "sim/event_queue.h"

#include <cassert>

namespace opera::sim {

void EventHandle::cancel() {
  if (state_ != nullptr) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ != nullptr && !state_->cancelled && !state_->fired;
}

EventHandle EventQueue::schedule(Time at, Callback fn) {
  auto state = std::make_shared<EventHandle::State>();
  heap_.push(Entry{at, next_seq_++, std::move(fn), state});
  return EventHandle{std::move(state)};
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? Time::infinity() : heap_.top().at;
}

Time EventQueue::run_next() {
  drop_cancelled();
  assert(!heap_.empty());
  // Move the entry out before running: the callback may schedule new events
  // and reallocate the heap.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  entry.state->fired = true;
  entry.fn();
  return entry.at;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace opera::sim

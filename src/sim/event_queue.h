// The discrete-event core: a cancellable calendar-queue event scheduler.
//
// Events fire in (time, order-key) order. schedule() assigns keys from a
// strictly increasing counter, so events at equal timestamps fire in
// schedule order — the classic deterministic single-queue behavior.
// schedule_keyed() lets the caller pick the 64-bit key instead; the
// sharded simulator uses this to give every event a key derived from its
// *causal parent* rather than from queue arrival order, which makes the
// equal-time tie-break independent of how the simulation is partitioned
// into shards (see sim/sharded.h).
//
// Layout (the per-packet hot path schedules and fires two events, so this
// is the single hottest structure in the simulator):
//   * a slab of reusable slots holds each pending event; freed slots go on
//     a free list and are reused, so steady-state scheduling performs no
//     heap allocation (callbacks use SmallCallback's inline buffer). The
//     slab is split into a compact 32-byte metadata array (time, key,
//     links, generation — everything ordering touches) and a parallel
//     callback array touched only at schedule and fire, which keeps the
//     working set of ordering operations small;
//   * slots are threaded into a calendar of time buckets (Brown '88, the
//     structure htsim-class simulators use): bucket = (t / width) mod nb,
//     each bucket a doubly-linked list sorted by (time, key). Schedule and
//     cancel are O(1) expected; pop scans forward from the last-popped
//     time and the bucket count/width self-tune to the pending-event
//     density, so dequeue is O(1) amortized rather than O(log n);
//   * cancellation unlinks the slot eagerly — size(), empty() and
//     next_time() are exact, with no lazy-drop pass;
//   * handles address their slot by {id, generation}; a stale generation
//     means the event already fired or was cancelled, so handles are cheap
//     to copy, idempotent to cancel, and safe to use after the event (or
//     the whole queue) is gone. The refcounted control block is
//     single-threaded (no atomics): the simulator is not thread-safe.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/small_callback.h"
#include "sim/time.h"

namespace opera::sim {

namespace detail {

inline constexpr std::uint32_t kNoSlot = 0xffffffffu;

// The queue's whole state, heap-allocated and refcounted so EventHandles
// can outlive the EventQueue: the queue's destructor releases the event
// storage but the block itself stays until the last handle drops it.
struct EventQueueImpl {
  // Ordering metadata only — kept to 32 bytes so bucket walks and pop
  // scans stay in cache even with 10^5 pending events.
  struct Meta {
    Time at;
    // Equal-time tie-break, compared as a plain 64-bit integer. Internal
    // (schedule()) keys come from a monotone counter; external
    // (schedule_keyed()) keys are caller-chosen.
    std::uint64_t key = 0;
    std::uint32_t prev = kNoSlot;
    std::uint32_t next = kNoSlot;
    std::uint32_t generation = 0;
  };
  struct Bucket {
    std::uint32_t head = kNoSlot;
    std::uint32_t tail = kNoSlot;
  };

  std::vector<Meta> meta;
  std::vector<SmallCallback> fns;         // parallel to `meta`
  std::vector<std::uint32_t> free_slots;  // LIFO of reusable slot ids
  std::vector<Bucket> buckets;            // size nb (a power of two)
  unsigned width_shift = 10;              // bucket span = 2^width_shift ps
  std::uint32_t nb = 0;
  std::uint32_t bucket_mask = 0;
  std::uint64_t next_seq = 0;
  std::size_t count = 0;
  std::uint32_t min_slot = kNoSlot;   // cached earliest slot (kNoSlot: unknown)
  std::int64_t scan_from = 0;         // lower bound on the earliest pending time
  // Recent *distinct* dequeue times, for width tuning: equal-time bursts
  // carry no spacing information and would drive the estimate to zero.
  std::int64_t pop_hist[16] = {};
  std::uint64_t pop_hist_n = 0;
  // Width-drift detectors (the width only self-tunes on rebuild, and a
  // steady-state queue never crosses the size thresholds): pops whose
  // bucket scan ran long mean the width is too narrow for the event
  // spacing; schedules whose sorted-insert walk ran long mean it is too
  // wide (events piling into few buckets). Either way, rebuild.
  std::uint32_t long_scans = 0;
  std::uint32_t long_walks = 0;
  std::int64_t min_at = 0, max_at = 0;  // pending-time range (monotone approx)

  std::uint32_t refs = 1;  // queue + live handles
  bool queue_alive = true;

  EventQueueImpl() { set_buckets(64, 10); }

  void set_buckets(std::uint32_t n, unsigned shift) {
    nb = n;
    bucket_mask = n - 1;
    width_shift = shift;
    buckets.assign(n, Bucket{});
  }
  [[nodiscard]] std::uint32_t bucket_of(std::int64_t at_ps) const {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(at_ps) >> width_shift) & bucket_mask);
  }
  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const Meta& x = meta[a];
    const Meta& y = meta[b];
    if (x.at != y.at) return x.at < y.at;
    return x.key < y.key;
  }

  std::uint32_t alloc_slot();
  void link_sorted(std::uint32_t id);
  void unlink(std::uint32_t id);
  void release(std::uint32_t id) {
    ++meta[id].generation;
    free_slots.push_back(id);
  }
  // Ensures min_slot names the earliest pending event (count > 0).
  void find_min();
  void resize();
};

// Fetches a (possibly recycled) impl block / retires one at destruction.
EventQueueImpl* acquire_impl();
void retire_impl(EventQueueImpl* impl);

}  // namespace detail

class EventQueue;

// Handle returned by EventQueue::schedule(); lets the caller cancel a
// pending event. Handles are cheap to copy and outliving the queue is safe.
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(const EventHandle& other)
      : EventHandle(other.impl_, other.slot_, other.generation_) {}
  EventHandle(EventHandle&& other) noexcept
      : impl_(other.impl_), slot_(other.slot_), generation_(other.generation_) {
    other.impl_ = nullptr;
  }
  EventHandle& operator=(const EventHandle& other) {
    if (this != &other) {
      EventHandle tmp(other);
      *this = static_cast<EventHandle&&>(tmp);
    }
    return *this;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    if (this != &other) {
      drop();
      impl_ = other.impl_;
      slot_ = other.slot_;
      generation_ = other.generation_;
      other.impl_ = nullptr;
    }
    return *this;
  }
  ~EventHandle() { drop(); }

  // Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(detail::EventQueueImpl* impl, std::uint32_t slot, std::uint32_t generation)
      : impl_(impl), slot_(slot), generation_(generation) {
    if (impl_ != nullptr) ++impl_->refs;
  }
  void drop() {
    if (impl_ != nullptr && --impl_->refs == 0) delete impl_;
    impl_ = nullptr;
  }

  detail::EventQueueImpl* impl_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class EventQueue {
 public:
  using Callback = SmallCallback;

  EventQueue() : impl_(detail::acquire_impl()) {}
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `at`. Equal-time events fire in
  // schedule order (an internal counter supplies the order key).
  EventHandle schedule(Time at, Callback fn);

  // Schedules `fn` at `at` with a caller-chosen equal-time order key.
  // Events with equal (at, key) fire in schedule order.
  EventHandle schedule_keyed(Time at, std::uint64_t key, Callback fn);

  // Exact: cancelled events leave the queue immediately.
  [[nodiscard]] bool empty() const { return impl_->count == 0; }
  [[nodiscard]] std::size_t size() const { return impl_->count; }

  // Time of the earliest event; Time::infinity() if none.
  [[nodiscard]] Time next_time() const {
    if (impl_->count == 0) return Time::infinity();
    impl_->find_min();
    return impl_->meta[impl_->min_slot].at;
  }

  // Pops and runs the earliest event; returns its timestamp.
  // Precondition: !empty().
  Time run_next();

  // Pops the earliest event *without* running it, returning its callback
  // and filling its timestamp and order key. The Simulator uses this to
  // publish the event's key (for causal key derivation) before dispatch.
  // Precondition: !empty().
  [[nodiscard]] Callback take_next(Time* at, std::uint64_t* key);

  // Drops all pending events.
  void clear();

 private:
  detail::EventQueueImpl* impl_;
};

}  // namespace opera::sim

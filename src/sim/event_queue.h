// The discrete-event core: a cancellable binary-heap event queue.
//
// Events at equal timestamps fire in schedule order (a strictly increasing
// sequence number breaks ties), which keeps simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace opera::sim {

class EventQueue;

// Handle returned by EventQueue::schedule(); lets the caller cancel a
// pending event. Handles are cheap to copy and outliving the queue is safe.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` to run at absolute time `at`.
  EventHandle schedule(Time at, Callback fn);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  // Time of the earliest non-cancelled event; Time::infinity() if none.
  [[nodiscard]] Time next_time() const;

  // Pops and runs the earliest event; returns its timestamp.
  // Precondition: !empty().
  Time run_next();

  // Drops all pending events.
  void clear();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<EventHandle::State> state;
    // Min-heap on (at, seq).
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace opera::sim

#include "sim/sharded.h"

#include <algorithm>
#include <stdexcept>

namespace opera::sim {

namespace {
thread_local int t_current_shard = -1;

struct ShardScope {
  explicit ShardScope(int s) : prev(t_current_shard) { t_current_shard = s; }
  ~ShardScope() { t_current_shard = prev; }
  int prev;
};
}  // namespace

int current_shard() { return t_current_shard; }

void ShardContext::post(ShardContext& dst, Time at, SmallCallback fn) {
  // Derive the key from the causal parent (the executing event's dispatch
  // frame, thread-local) via the *source* simulator — the parent executed
  // there; outside any dispatch this falls back to the source's root
  // counter, which is fine for standalone contexts and test seeding.
  const std::uint64_t key = sim_->derive_key();
  if (owner_ == nullptr || owner_ != dst.owner_ || dst.shard_ == shard_) {
    // Same shard, standalone, or foreign engine: the destination queue is
    // only ever touched by the thread running this domain — schedule
    // directly.
    dst.sim_->schedule_keyed_at(at, key, std::move(fn));
    return;
  }
  owner_->push_mail(shard_, dst.shard_, at, key, std::move(fn));
}

ShardedSimulator::ShardedSimulator(int num_shards, Time lookahead)
    : lookahead_(lookahead) {
  assert(num_shards >= 1);
  if (num_shards > 1 && !(lookahead > Time::zero())) {
    // Without positive lookahead the epoch loop cannot advance (each
    // window [t, t+L) would be empty) — fail loudly rather than livelock
    // in release builds.
    throw std::invalid_argument(
        "ShardedSimulator: multi-shard execution requires a positive "
        "conservative lookahead (the minimum cross-shard event latency)");
  }
  global_.set_key_mode(Simulator::KeyMode::kCausal);
  shards_.reserve(static_cast<std::size_t>(num_shards));
  contexts_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>());
    shards_.back()->set_key_mode(Simulator::KeyMode::kCausal);
    contexts_.push_back(ShardContext(*shards_.back(), this, s));
  }
  mailboxes_.resize(static_cast<std::size_t>(num_shards) *
                    static_cast<std::size_t>(num_shards));
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::seed(int s, Time at, SmallCallback fn) {
  shards_[static_cast<std::size_t>(s)]->schedule_keyed_at(
      at, Simulator::kSeedKeyBase + seed_count_++, std::move(fn));
}

void ShardedSimulator::push_mail(int src, int dst, Time at, std::uint64_t key,
                                 SmallCallback fn) {
  // Conservative-lookahead contract: during a phase, a cross-shard event
  // may not land before the horizon every shard is already running to.
  assert(!in_phase_ || at >= phase_end_);
  box(src, dst).out.push_back(MailEntry{at, key, std::move(fn)});
}

std::size_t ShardedSimulator::swap_mailboxes() {
  std::size_t pending = 0;
  for (Mailbox& m : mailboxes_) {
    if (!m.out.empty()) {
      assert(m.in.empty());
      m.in.swap(m.out);
      pending += m.in.size();
    }
  }
  return pending;
}

std::size_t ShardedSimulator::mail_pending() const {
  std::size_t n = 0;
  for (const Mailbox& m : mailboxes_) n += m.out.size() + m.in.size();
  return n;
}

void ShardedSimulator::drain_inboxes(int dst) {
  Simulator& sim = *shards_[static_cast<std::size_t>(dst)];
  for (int src = 0; src < num_shards(); ++src) {
    Mailbox& m = box(src, dst);
    // Insertion order is irrelevant: the calendar queue orders by
    // (time, key), the canonical merge.
    for (MailEntry& e : m.in) {
      sim.schedule_keyed_at(e.at, e.key, std::move(e.fn));
    }
    m.in.clear();
  }
}

void ShardedSimulator::run_phase(Time end, bool inclusive) {
  const int S = num_shards();
  swap_mailboxes();
  phase_end_ = end;
  in_phase_ = true;
  if (S == 1) {
    const ShardScope scope(0);
    drain_inboxes(0);
    shards_[0]->run_window(end, inclusive);
  } else {
    WorkerPool::shared().run(
        static_cast<std::size_t>(S),
        [&](std::size_t s) {
          const ShardScope scope(static_cast<int>(s));
          drain_inboxes(static_cast<int>(s));
          shards_[s]->run_window(end, inclusive);
        },
        static_cast<unsigned>(S));
  }
  in_phase_ = false;
  if (barrier_hook_) barrier_hook_();
}

std::uint64_t ShardedSimulator::run_until(Time t) {
  const std::uint64_t before = events_executed();
  global_.clear_stop();
  const int S = num_shards();
  for (;;) {
    const Time committed = global_.now();
    // Global events due at the committed time run first — before any shard
    // event with the same timestamp (the barrier-aligned rule).
    if (!global_.queue().empty() && global_.queue().next_time() <= committed) {
      global_.run_window(committed, /*inclusive=*/true);
    }
    if (global_.stop_requested()) {
      // Early stop: leave the clock at the stop point (run_with_progress
      // reads it as ended_at), exactly like Simulator::run_until.
      return events_executed() - before;
    }
    if (committed >= t) {
      // Final inclusive phase: events at exactly `t` (matching
      // Simulator::run_until's <= horizon semantics).
      run_phase(t, /*inclusive=*/true);
      break;
    }

    const Time next_global = global_.queue().empty() ? Time::infinity()
                                                     : global_.queue().next_time();
    Time end = std::min(t, next_global);
    if (S > 1 && committed + lookahead_ < end) end = committed + lookahead_;

    // Idle fast-forward: with no mail in flight, nothing can happen before
    // the earliest pending shard event — commit straight to it instead of
    // walking there in empty lookahead-sized epochs.
    if (mail_pending() == 0) {
      Time earliest = Time::infinity();
      for (const auto& sh : shards_) {
        if (!sh->queue().empty()) earliest = std::min(earliest, sh->queue().next_time());
      }
      if (earliest >= end) {
        const Time jump = std::min(std::min(t, next_global), earliest);
        if (jump > end) end = jump;
        if (earliest > end) {
          // Nothing to run this epoch anywhere: just commit the clock.
          global_.advance_to(end);
          for (auto& sh : shards_) sh->advance_to(end);
          continue;
        }
      }
    }

    run_phase(end, /*inclusive=*/false);
    global_.advance_to(end);
  }
  global_.advance_to(t);
  return events_executed() - before;
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t n = global_.events_executed();
  for (const auto& sh : shards_) n += sh->events_executed();
  return n;
}

}  // namespace opera::sim

#include "sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace opera::sim {

double PercentileSampler::percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double PercentileSampler::min() const { return percentile(0.0); }
double PercentileSampler::max() const { return percentile(100.0); }

double PercentileSampler::mean() const {
  assert(!samples_.empty());
  double sum = 0.0;
  for (const double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

void RunningStat::add(double v) {
  ++n_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

LogHistogram::LogHistogram(double lo, double hi, int buckets_per_decade)
    : lo_(lo), log_lo_(std::log10(lo)) {
  assert(lo > 0.0 && hi > lo && buckets_per_decade > 0);
  log_step_ = 1.0 / buckets_per_decade;
  const auto n = static_cast<std::size_t>(
      std::ceil((std::log10(hi) - log_lo_) / log_step_));
  weights_.assign(n + 1, 0.0);
}

std::size_t LogHistogram::bucket_of(double v) const {
  if (v <= lo_) return 0;
  const auto b = static_cast<std::size_t>((std::log10(v) - log_lo_) / log_step_);
  return std::min(b, weights_.size() - 1);
}

void LogHistogram::add(double v, double weight) {
  weights_[bucket_of(v)] += weight;
  total_ += weight;
}

std::vector<LogHistogram::CdfPoint> LogHistogram::cdf() const {
  std::vector<CdfPoint> points;
  points.reserve(weights_.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    cum += weights_[i];
    const double edge = std::pow(10.0, log_lo_ + log_step_ * static_cast<double>(i + 1));
    points.push_back({edge, total_ > 0.0 ? cum / total_ : 0.0});
  }
  return points;
}

void ThroughputSeries::record(Time at, std::int64_t bytes) {
  const auto bin = static_cast<std::size_t>(at / bin_width_);
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0);
  bins_[bin] += bytes;
  total_bytes_ += bytes;
}

std::vector<ThroughputSeries::Point> ThroughputSeries::series() const {
  std::vector<Point> out;
  out.reserve(bins_.size());
  const double bin_seconds = bin_width_.to_seconds();
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    out.push_back({bin_width_ * static_cast<std::int64_t>(i),
                   static_cast<double>(bins_[i]) * 8.0 / bin_seconds});
  }
  return out;
}

}  // namespace opera::sim

#include "sim/simulator.h"

namespace opera::sim {

thread_local Simulator::DispatchFrame* Simulator::t_frame_ = nullptr;

Simulator::FrameGuard::FrameGuard(DispatchFrame* frame) : prev(t_frame_) {
  t_frame_ = frame;
}
Simulator::FrameGuard::~FrameGuard() { t_frame_ = prev; }

std::uint64_t Simulator::derive_key() {
  if (key_mode_ == KeyMode::kSequential) return next_key_++;
  DispatchFrame* frame = t_frame_;
  if (frame == nullptr) return next_key_++;  // root event
  // Hash (parent key, child index): depends only on ancestry, so the same
  // logical event gets the same key under any shard partitioning.
  return mix64(frame->key * 0x9E3779B97F4A7C15ULL + ++frame->children) | kDerivedKeyBit;
}

void Simulator::dispatch_one(DispatchFrame& frame) {
  Time at;
  EventQueue::Callback fn = queue_.take_next(&at, &frame.key);
  frame.children = 0;
  // Advance the clock before dispatching so callbacks observe now().
  now_ = at;
  fn();
}

std::uint64_t Simulator::run_until(Time until) {
  stopped_ = false;
  std::uint64_t n = 0;
  DispatchFrame frame;
  const FrameGuard guard(&frame);
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= until) {
    dispatch_one(frame);
    ++n;
  }
  if (queue_.empty() || queue_.next_time() > until) {
    // Advance the clock to the horizon even if no event landed exactly there,
    // so back-to-back run_until() calls see monotonic time.
    if (until > now_ && until != Time::infinity()) now_ = until;
  }
  events_executed_ += n;
  return n;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  DispatchFrame frame;
  const FrameGuard guard(&frame);
  while (!stopped_ && !queue_.empty()) {
    dispatch_one(frame);
    ++n;
  }
  events_executed_ += n;
  return n;
}

std::uint64_t Simulator::run_window(Time end, bool inclusive) {
  std::uint64_t n = 0;
  DispatchFrame frame;
  const FrameGuard guard(&frame);
  while (!queue_.empty()) {
    const Time t = queue_.next_time();
    if (inclusive ? t > end : t >= end) break;
    dispatch_one(frame);
    ++n;
  }
  advance_to(end);
  events_executed_ += n;
  return n;
}

}  // namespace opera::sim

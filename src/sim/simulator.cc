#include "sim/simulator.h"

namespace opera::sim {

std::uint64_t Simulator::run_until(Time until) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= until) {
    // Advance the clock before dispatching so callbacks observe now().
    now_ = queue_.next_time();
    queue_.run_next();
    ++n;
  }
  if (queue_.empty() || queue_.next_time() > until) {
    // Advance the clock to the horizon even if no event landed exactly there,
    // so back-to-back run_until() calls see monotonic time.
    if (until > now_ && until != Time::infinity()) now_ = until;
  }
  events_executed_ += n;
  return n;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty()) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++n;
  }
  events_executed_ += n;
  return n;
}

}  // namespace opera::sim

// sim::Checkpoint — the versioned, deterministic snapshot layer.
//
// The event queue holds arbitrary closures (sim/small_callback.h), so a
// byte-dump of live simulator state is not serializable. Instead a
// checkpoint is a *run recipe plus a progress marker*: everything needed
// to rebuild the fabric and replay it (config, flow list, scenario
// suite), the barrier-aligned simulated time T the snapshot was taken at,
// and a multi-layer state fingerprint. Restore = rebuild, resubmit,
// replay deterministically to T, and *verify* the fingerprint — the
// bit-identical --threads=N contract (docs/ARCHITECTURE.md "Sharded
// execution") is what makes the replay provably exact. What is serialized
// vs recomputed is spelled out in docs/CHECKPOINT.md.
//
// The file format is line-oriented text, versioned by the header line
// ("OPERA-CHECKPOINT v<N>") and guarded by a trailing FNV-1a checksum, so
// truncated, corrupted, and version-skewed files are all rejected loudly
// with the offending line number (same style as workload/trace_replay.h).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace opera::sim {

// Bump when the schema changes shape (new/removed keys, section grammar).
// Readers reject any other version. Structs feeding the schema carry a
// `// checkpoint:v<N> fields=<M>` marker enforced by opera-lint's
// checkpoint-coverage rule: adding a member without updating the marker
// (and this version, with a matching parser change) fails lint.
inline constexpr int kCheckpointSchemaVersion = 1;

// Chained 64-bit state digest. Layers fold their thread-invariant state
// into one of these (Network::fingerprint and the hooks under it); restore
// recomputes the digest at the checkpoint's time and any mismatch is a
// loud fatal error. Order-sensitive by design: mixing the same values in
// a different order yields a different digest, so every fingerprint hook
// must visit state in a partition-independent order (by id, never by
// pointer or shard).
class Fingerprint {
 public:
  void mix_u64(std::uint64_t v) {
    h_ = mix_step(h_ ^ v);
    ++count_;
  }
  void mix_i64(std::int64_t v) { mix_u64(static_cast<std::uint64_t>(v)); }
  void mix_bool(bool v) { mix_u64(v ? 1u : 0u); }
  void mix_time(Time t) { mix_i64(t.picoseconds()); }
  void mix_double(double v);  // bit pattern, not value rounding
  void mix_bytes(std::string_view bytes);

  // Finalized digest (length-extension-guarded by the mix count).
  [[nodiscard]] std::uint64_t digest() const {
    return mix_step(h_ ^ (count_ * 0x9E3779B97F4A7C15ULL));
  }

 private:
  // splitmix64 finalizer (same mixer as sim::mix64; duplicated to keep
  // this header free of the event-queue include).
  [[nodiscard]] static constexpr std::uint64_t mix_step(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t count_ = 0;
};

// One `key value` line in a checkpoint section. Keys carry no spaces; the
// value is the rest of the line (may be empty, may contain spaces — the
// scenario suite string does).
// checkpoint:v1 fields=2
struct CheckpointEntry {
  std::string key;
  std::string value;
};

// One submitted flow, in submission order. Flow ids are assigned in
// submission order (transport::FlowTracker::next_flow_id), so replaying
// this list verbatim reproduces the id assignment exactly.
// checkpoint:v1 fields=4
struct CheckpointFlow {
  std::int64_t start_ps = 0;
  std::int32_t src_host = 0;
  std::int32_t dst_host = 0;
  std::int64_t size_bytes = 0;
};

// The checkpoint container: [run] (driver-level keys: labels, horizon,
// scenario suite), [config] (serialized core::FabricConfig), [flows]
// (submission-order flow list), [state] (progress marker + fingerprint).
// checkpoint:v1 fields=5
struct CheckpointData {
  int version = kCheckpointSchemaVersion;
  std::vector<CheckpointEntry> run;
  std::vector<CheckpointEntry> config;
  std::vector<CheckpointFlow> flows;
  std::vector<CheckpointEntry> state;
};

// Section lookup; null when `key` is absent.
[[nodiscard]] const std::string* find_entry(
    const std::vector<CheckpointEntry>& section, std::string_view key);

struct CheckpointParseResult {
  CheckpointData data;
  std::string error;  // empty on success; "<name>:<line>: message" otherwise
  [[nodiscard]] bool ok() const { return error.empty(); }
};

// Parses checkpoint text. `name` labels parse errors (usually the path).
[[nodiscard]] CheckpointParseResult parse_checkpoint(std::string_view text,
                                                     std::string_view name);
// Reads and parses `path` (missing/unreadable files are errors too).
[[nodiscard]] CheckpointParseResult load_checkpoint(const std::string& path);

// Renders `data` in the versioned text format, checksum line included.
[[nodiscard]] std::string write_checkpoint_text(const CheckpointData& data);

// Atomically writes `data` to `path` (tmp file + rename, so a crash
// mid-write never leaves a torn checkpoint — the previous one survives).
// Returns "" on success, an error message otherwise.
[[nodiscard]] std::string save_checkpoint(const std::string& path,
                                          const CheckpointData& data);

}  // namespace opera::sim

// Simulation time: a strong integer type with picosecond resolution.
//
// All of Opera's interesting time constants span nine orders of magnitude
// (sub-ns propagation steps up to multi-ms circuit cycles), so we use a
// 64-bit integer picosecond counter: it is exact, cheap to compare, and
// overflows only after ~106 days of simulated time.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace opera::sim {

class Time {
 public:
  constexpr Time() = default;

  // Named constructors. Fractional inputs are supported for convenience
  // (e.g. Time::us(1.2)); the result is truncated toward zero picoseconds.
  [[nodiscard]] static constexpr Time ps(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time ns(std::int64_t v) { return Time{v * 1'000}; }
  [[nodiscard]] static constexpr Time us(std::int64_t v) { return Time{v * 1'000'000}; }
  [[nodiscard]] static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000'000}; }
  [[nodiscard]] static constexpr Time sec(std::int64_t v) { return Time{v * 1'000'000'000'000}; }
  [[nodiscard]] static constexpr Time from_seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e12)};
  }
  [[nodiscard]] static constexpr Time from_us(double us) {
    return Time{static_cast<std::int64_t>(us * 1e6)};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time infinity() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t picoseconds() const { return ps_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ps_) * 1e-12; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double to_us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double to_ns() const { return static_cast<double>(ps_) * 1e-3; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ps_ * k}; }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ps_ / k}; }
  friend constexpr std::int64_t operator/(Time a, Time b) { return a.ps_ / b.ps_; }
  friend constexpr Time operator%(Time a, Time b) { return Time{a.ps_ % b.ps_}; }
  constexpr Time& operator+=(Time b) { ps_ += b.ps_; return *this; }
  constexpr Time& operator-=(Time b) { ps_ -= b.ps_; return *this; }

  friend constexpr auto operator<=>(Time, Time) = default;

  // Serialization delay of `bytes` at `bits_per_second`, rounded to the
  // nearest picosecond.
  [[nodiscard]] static constexpr Time transmission(std::int64_t bytes, double bits_per_second) {
    const double ps = static_cast<double>(bytes) * 8.0 / bits_per_second * 1e12;
    return Time{static_cast<std::int64_t>(ps + 0.5)};
  }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

}  // namespace opera::sim

// WorkerPool — a persistent fork-join pool shared by every parallel phase
// in the process: parallel_for's construction-time sweeps (slice routing
// tables, per-source BFS) and the ShardedSimulator's per-epoch shard
// phases. One pool means the two can never oversubscribe the machine by
// each spawning its own thread set (the failure mode of the old ad-hoc
// std::thread-per-call parallel_for).
//
// Model: run(n, fn) executes fn(i) for i in [0, n); the calling thread
// participates, so a pool of size S provides S-way parallelism with S-1
// resident threads. Work is claimed through a shared atomic counter, so
// uneven iteration costs balance automatically. Calls from inside a pool
// task degrade to inline execution (no deadlock, no nested fan-out). The
// first exception thrown by an iteration is rethrown on the caller.
//
// run() publishes the job under a mutex and wakes the resident workers;
// idle workers cost nothing. The per-call overhead is a few microseconds,
// which the epoch loop amortizes by batching every shard's events for a
// lookahead window into one run() (see sim/sharded.h).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace opera::sim {

class WorkerPool {
 public:
  // A pool providing `threads`-way parallelism (the caller plus
  // threads - 1 resident workers). threads == 0 sizes from the hardware.
  explicit WorkerPool(unsigned threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // The process-wide pool: hardware_concurrency()-way, overridable with
  // OPERA_POOL_THREADS (useful to exercise real thread interleaving on
  // small CI boxes, or to pin the pool below the machine size).
  [[nodiscard]] static WorkerPool& shared();

  // Total parallelism (resident workers + the calling thread).
  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  // Runs fn(i) for every i in [0, n); returns when all have finished.
  // At most max_workers threads participate (0 = no limit). fn must
  // tolerate concurrent invocation for distinct i.
  template <typename Fn>
  void run(std::size_t n, Fn&& fn, unsigned max_workers = 0) {
    using F = std::remove_reference_t<Fn>;
    run_raw(
        n, [](void* ctx, std::size_t i) { (*static_cast<F*>(ctx))(i); },
        const_cast<std::remove_const_t<F>*>(&fn), max_workers);
  }

 private:
  using RawFn = void (*)(void* ctx, std::size_t i);

  struct Job {
    RawFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t n = 0;
    unsigned max_workers = 0;
    std::atomic<std::size_t> next{0};      // work-claim cursor
    std::atomic<unsigned> participants{0};
    std::exception_ptr error;              // first failure (under pool mutex)
  };

  void run_raw(std::size_t n, RawFn fn, void* ctx, unsigned max_workers);
  void work_on(Job& job);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;   // workers: new job or shutdown
  std::condition_variable done_;   // caller: all participants retired
  Job* job_ = nullptr;             // null when no job is accepting entrants
  std::uint64_t generation_ = 0;
  unsigned active_ = 0;            // workers currently inside job_
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace opera::sim

// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256++ seeded through splitmix64: fast, high quality, and — unlike
// std::mt19937 + std::uniform_* — bit-identical across standard libraries,
// which keeps experiment output reproducible everywhere.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/checkpoint.h"

namespace opera::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  [[nodiscard]] std::uint64_t next_u64();

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  [[nodiscard]] bool bernoulli(double p);

  // Exponentially distributed value with the given mean (for Poisson
  // inter-arrival processes).
  [[nodiscard]] double exponential(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Random permutation of 0..n-1.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  // Sample k distinct indices from [0, n) without replacement.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  // Folds the generator cursor (the full xoshiro256++ state) into a
  // checkpoint fingerprint: two runs agree here iff they have drawn the
  // same number of values from the same seed.
  void fingerprint(Fingerprint& fp) const {
    for (const std::uint64_t word : s_) fp.mix_u64(word);
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace opera::sim

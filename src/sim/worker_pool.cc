#include "sim/worker_pool.h"

#include <cstdlib>

namespace opera::sim {

namespace {
// Set while a thread executes pool work: nested run() calls (a pool task
// that itself calls parallel_for) execute inline instead of deadlocking on
// the pool they are already occupying.
thread_local bool t_in_pool_task = false;
}  // namespace

WorkerPool::WorkerPool(unsigned threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw != 0 ? hw : 1;
  }
  workers_.reserve(threads - 1);
  try {
    for (unsigned t = 1; t < threads; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (const std::system_error&) {
    // Thread-resource exhaustion: run with however many workers spawned.
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool* pool = [] {
    unsigned threads = 0;
    // getenv is mt-unsafe only against concurrent setenv; read once,
    // inside a magic-static initializer, before any worker exists.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("OPERA_POOL_THREADS")) {
      const long v = std::atol(env);
      if (v > 0) threads = static_cast<unsigned>(v);
    }
    return new WorkerPool(threads);  // leaked: lives for the process
  }();
  return *pool;
}

void WorkerPool::run_raw(std::size_t n, RawFn fn, void* ctx, unsigned max_workers) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || max_workers == 1 || t_in_pool_task) {
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }

  Job job;
  job.fn = fn;
  job.ctx = ctx;
  job.n = n;
  job.max_workers = max_workers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  wake_.notify_all();

  work_on(job);  // the caller is always a participant

  // Close the job to new entrants, then wait for in-flight workers. A
  // worker only touches `job` while counted in active_, so after this wait
  // the stack object is safe to destroy.
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = nullptr;
  done_.wait(lock, [this] { return active_ == 0; });
  if (job.error) std::rethrow_exception(job.error);
}

void WorkerPool::work_on(Job& job) {
  t_in_pool_task = true;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    try {
      job.fn(job.ctx, i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
  }
  t_in_pool_task = false;
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return shutdown_ || (job_ != nullptr && generation_ != seen); });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      // Respect the job's participation cap (parallel_for's max_threads);
      // the caller counts as one participant.
      const unsigned limit = job->max_workers == 0 ? ~0u : job->max_workers - 1;
      if (job->participants.load(std::memory_order_relaxed) >= limit) continue;
      job->participants.fetch_add(1, std::memory_order_relaxed);
      ++active_;
    }
    work_on(*job);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    done_.notify_one();
  }
}

}  // namespace opera::sim

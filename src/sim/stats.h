// Measurement helpers used by the experiment harnesses: percentile
// samplers, running moments, log-spaced histograms/CDFs, and binned
// throughput time series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace opera::sim {

// Collects samples and answers percentile queries (exact, by sorting).
class PercentileSampler {
 public:
  void add(double v) { samples_.push_back(v); sorted_ = false; }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  // p in [0, 100]. Nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Welford running mean / variance (no sample storage).
class RunningStat {
 public:
  void add(double v);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Histogram over log-spaced buckets; produces CDF points such as the
// flow-size and path-length CDFs in the paper's figures.
class LogHistogram {
 public:
  // Buckets span [lo, hi] with `buckets_per_decade` log-spaced bins.
  LogHistogram(double lo, double hi, int buckets_per_decade = 10);

  void add(double v, double weight = 1.0);

  struct CdfPoint {
    double value;       // upper edge of the bucket
    double cumulative;  // fraction of total weight at or below `value`
  };
  [[nodiscard]] std::vector<CdfPoint> cdf() const;
  [[nodiscard]] double total_weight() const { return total_; }

 private:
  [[nodiscard]] std::size_t bucket_of(double v) const;
  double lo_;
  double log_lo_;
  double log_step_;
  std::vector<double> weights_;
  double total_ = 0.0;
};

// Accumulates delivered bytes into fixed-width time bins; reports a
// throughput-vs-time series (Figure 8 style).
class ThroughputSeries {
 public:
  explicit ThroughputSeries(Time bin_width) : bin_width_(bin_width) {}

  void record(Time at, std::int64_t bytes);

  struct Point {
    Time bin_start;
    double bits_per_second;
  };
  [[nodiscard]] std::vector<Point> series() const;
  [[nodiscard]] std::int64_t total_bytes() const { return total_bytes_; }

 private:
  Time bin_width_;
  std::vector<std::int64_t> bins_;
  std::int64_t total_bytes_ = 0;
};

}  // namespace opera::sim

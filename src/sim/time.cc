#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace opera::sim {

std::string Time::to_string() const {
  char buf[64];
  const double abs_ps = std::abs(static_cast<double>(ps_));
  if (abs_ps >= 1e12) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds());
  } else if (abs_ps >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_ms());
  } else if (abs_ps >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fus", to_us());
  } else if (abs_ps >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fns", to_ns());
  } else {
    std::snprintf(buf, sizeof buf, "%lldps", static_cast<long long>(ps_));
  }
  return buf;
}

}  // namespace opera::sim

// Simulator: the event loop plus the simulation clock.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace opera::sim {

class Simulator {
 public:
  [[nodiscard]] Time now() const { return now_; }

  // Schedules `fn` `delay` after the current time.
  EventHandle schedule_in(Time delay, EventQueue::Callback fn) {
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute time `at` (must not be in the past).
  EventHandle schedule_at(Time at, EventQueue::Callback fn) {
    return queue_.schedule(at < now_ ? now_ : at, std::move(fn));
  }

  // Runs events until the queue drains or `until` is reached, whichever is
  // first. Returns the number of events executed.
  std::uint64_t run_until(Time until);

  // Runs until the queue drains (or stop() is called).
  std::uint64_t run();

  // Stops the current run() after the in-flight event returns.
  void stop() { stopped_ = true; }

  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

 private:
  EventQueue queue_;
  Time now_ = Time::zero();
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace opera::sim

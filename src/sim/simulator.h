// Simulator: the event loop plus the simulation clock.
//
// Every event carries a 64-bit equal-time order key (see sim/event_queue.h).
// Two key modes:
//
//   * kSequential (default) — keys come from a monotone counter, so
//     equal-time events fire in schedule order: the classic single-queue
//     behavior, bit-identical to the historical simulator.
//
//   * kCausal — an event's key is derived by hashing the key of the event
//     that *scheduled* it (its causal parent) with a per-parent child
//     index; events scheduled outside any dispatch get keys from a root
//     counter. Causal keys depend only on the event's ancestry — never on
//     the order events entered a particular queue — which is what lets a
//     sharded simulation (sim/sharded.h) split one event population across
//     N queues and still resolve every equal-time tie exactly as the
//     1-shard run would. The executing event's key is tracked in a
//     thread-local dispatch frame, so a callback that schedules onto a
//     *different* simulator (a cross-shard post) still derives from its
//     true parent.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/checkpoint.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace opera::sim {

// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

class Simulator {
 public:
  enum class KeyMode : std::uint8_t { kSequential, kCausal };

  // Key-space layout in causal mode (collisions across spaces would make
  // a tie-break depend on insertion order; spaces keep the deliberate keys
  // disjoint, and hash keys collide with probability ~2^-63):
  //   [0, 2^62)            root events (per-simulator counter)
  //   [2^62, 2^63)         externally seeded roots (ShardedSimulator::seed)
  //   [2^63, 2^64)         derived (hashed) keys
  static constexpr std::uint64_t kSeedKeyBase = 1ULL << 62;
  static constexpr std::uint64_t kDerivedKeyBit = 1ULL << 63;

  [[nodiscard]] Time now() const { return now_; }

  void set_key_mode(KeyMode mode) { key_mode_ = mode; }
  [[nodiscard]] KeyMode key_mode() const { return key_mode_; }

  // Schedules `fn` `delay` after the current time.
  EventHandle schedule_in(Time delay, EventQueue::Callback fn) {
    return queue_.schedule_keyed(now_ + delay, derive_key(), std::move(fn));
  }

  // Schedules `fn` at absolute time `at` (must not be in the past).
  EventHandle schedule_at(Time at, EventQueue::Callback fn) {
    return queue_.schedule_keyed(at < now_ ? now_ : at, derive_key(), std::move(fn));
  }

  // Schedules with an explicit order key (cross-shard delivery, seeding).
  EventHandle schedule_keyed_at(Time at, std::uint64_t key, EventQueue::Callback fn) {
    return queue_.schedule_keyed(at < now_ ? now_ : at, key, std::move(fn));
  }

  // The order key for a new event scheduled right now, per key_mode():
  // derived from the executing event's dispatch frame when inside a
  // dispatch, from the root counter otherwise.
  [[nodiscard]] std::uint64_t derive_key();

  // Runs events until the queue drains or `until` is reached, whichever is
  // first. Returns the number of events executed.
  std::uint64_t run_until(Time until);

  // Runs until the queue drains (or stop() is called).
  std::uint64_t run();

  // Epoch-window run for the sharded loop: executes events with
  // time < end (or time <= end when `inclusive`), then advances the clock
  // to `end` (never backwards). Does not honor stop() — epochs are
  // interrupted at barriers, not mid-window.
  std::uint64_t run_window(Time end, bool inclusive = false);

  // Advances the clock without running anything (barrier commit).
  void advance_to(Time t) {
    if (t > now_) now_ = t;
  }

  // Stops the current run() after the in-flight event returns.
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stop_requested() const { return stopped_; }
  void clear_stop() { stopped_ = false; }

  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const EventQueue& queue() const { return queue_; }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

  // Checkpoint hook: clock and dispatch count. Pending events are NOT
  // digested — they are closures, and replay-based restore (sim/
  // checkpoint.h) regenerates them; the dispatch count pins that the same
  // number of events ran to reach this clock.
  void fingerprint(Fingerprint& fp) const {
    fp.mix_time(now_);
    fp.mix_u64(events_executed_);
  }

 private:
  // The executing event's key plus how many children it has scheduled so
  // far; thread-local so concurrent shard dispatches don't interleave and
  // cross-simulator schedules still see their true parent.
  struct DispatchFrame {
    std::uint64_t key = 0;
    std::uint64_t children = 0;
  };
  struct FrameGuard {
    explicit FrameGuard(DispatchFrame* frame);
    ~FrameGuard();
    DispatchFrame* prev;
  };
  static thread_local DispatchFrame* t_frame_;

  // Pops and dispatches the earliest event inside a frame.
  void dispatch_one(DispatchFrame& frame);

  EventQueue queue_;
  Time now_ = Time::zero();
  bool stopped_ = false;
  KeyMode key_mode_ = KeyMode::kSequential;
  std::uint64_t events_executed_ = 0;
  std::uint64_t next_key_ = 0;  // sequential keys / causal root counter
};

}  // namespace opera::sim

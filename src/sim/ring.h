// Ring<T> — a deque-like FIFO over a power-of-two ring buffer.
//
// Two properties std::deque lacks make it the right container for the
// simulator's many queues:
//   * a default-constructed Ring owns no memory (libstdc++'s deque
//     allocates its map and first chunk up front — fatal when a 5184-host
//     fabric holds millions of mostly-empty virtual output queues);
//   * capacity is retained across drain/fill cycles, so steady-state
//     push/pop never allocates.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace opera::sim {

template <typename T>
class Ring {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  // Element storage owned by the ring (memory probes).
  [[nodiscard]] std::size_t memory_bytes() const { return buf_.capacity() * sizeof(T); }

  void push_back(T value) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(value);
    ++count_;
  }

  void push_front(T value) {
    if (count_ == buf_.size()) grow();
    head_ = (head_ + buf_.size() - 1) & (buf_.size() - 1);
    buf_[head_] = std::move(value);
    ++count_;
  }

  // Precondition for front()/pop_front(): !empty().
  [[nodiscard]] T& front() { return buf_[head_]; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }

  T pop_front() {
    T value = std::move(buf_[head_]);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
    return value;
  }

  // Front-to-back visit.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) {
      fn(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
  }

  void clear() {
    for (std::size_t i = 0; i < count_; ++i) {
      buf_[(head_ + i) & (buf_.size() - 1)] = T{};
    }
    head_ = count_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> bigger(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> buf_;  // size is 0 or a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace opera::sim

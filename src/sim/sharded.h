// ShardedSimulator — a conservative parallel discrete-event engine built
// from N shard-local Simulators plus one global (coordinator) Simulator.
//
// Model (classic conservative lookahead, cf. Chandy-Misra / the DiME-style
// distributed simulators): the network is partitioned into domains (racks,
// in Opera's case) such that domains interact only across links with
// non-zero propagation delay L. Time advances in epochs of length at most
// L (the lookahead): within an epoch [t, t+L), every shard runs its own
// event queue independently — no event it executes can cause an event on
// another shard before t+L, so no shard can ever receive an event earlier
// than the horizon it already committed. Cross-shard work travels through
// per-(src,dst) mailboxes, double-buffered and swapped at the epoch
// barrier, so producers and the consumer never touch the same buffer.
//
// Determinism. Being *parallel* is easy; being bit-identical to the
// 1-shard run is the contract. Every event carries a causal order key
// (Simulator::KeyMode::kCausal): roots get partition-independent counter
// keys (seed()), children hash their parent's key — so a key depends only
// on the event's causal ancestry, never on which queue it sits in or when
// it arrived there. Each shard's calendar queue orders by (time, key);
// mailbox drains simply insert entries into the queue, where the canonical
// order takes over (this subsumes merging drains in (time, src, seq)
// order). By induction over (time, key), every per-domain event sequence —
// and therefore all simulation output — is identical for any shard count,
// provided domains share no mutable state within an epoch (the network
// layer's obligation; see docs/ARCHITECTURE.md "Sharded execution").
//
// Global events (Opera's slice-boundary reconfiguration, progress ticks)
// live on the coordinator queue and are barrier-aligned: at any timestamp
// g the epoch loop commits all shard work with time < g, runs the global
// events at g single-threaded (they may touch any shard's state — the
// workers are parked at the barrier), and only then lets shards process
// their own time-g events. 1-shard mode collapses to running the single
// queue between global events — the classic loop, no barriers, no
// mailboxes, no atomics on the hot path.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/small_callback.h"
#include "sim/time.h"
#include "sim/worker_pool.h"

namespace opera::sim {

class ShardedSimulator;

// The shard index the calling thread is currently executing a phase for;
// -1 outside any phase. Used by shard-aware consumers (FlowTracker lanes)
// to stage side effects per shard without threading an id everywhere.
[[nodiscard]] int current_shard();

// A shard's scheduling handle: what network components hold instead of a
// raw Simulator&. Same-shard work schedules directly; cross-shard work is
// routed through the owner's mailboxes. A standalone ShardContext (no
// owner) wraps an external Simulator so unsharded fabrics and tests run
// unchanged — post() then always degenerates to a direct schedule.
class ShardContext {
 public:
  explicit ShardContext(Simulator& sim) : sim_(&sim) {}

  [[nodiscard]] Simulator& sim() { return *sim_; }
  [[nodiscard]] const Simulator& sim() const { return *sim_; }
  [[nodiscard]] Time now() const { return sim_->now(); }
  [[nodiscard]] int shard() const { return shard_; }
  [[nodiscard]] ShardedSimulator* owner() const { return owner_; }

  EventHandle schedule_in(Time delay, SmallCallback fn) {
    return sim_->schedule_in(delay, std::move(fn));
  }
  EventHandle schedule_at(Time at, SmallCallback fn) {
    return sim_->schedule_at(at, std::move(fn));
  }

  // Schedules `fn` at absolute time `at` in `dst`'s domain. The order key
  // derives from the currently executing event (the causal parent). Cross-
  // shard posts must respect the lookahead: `at` may not precede the
  // receiving epoch's start (asserted in debug builds); they are delivered
  // at the next epoch's mailbox drain — an event posted for horizon + ε is
  // delivered next epoch, never dropped.
  void post(ShardContext& dst, Time at, SmallCallback fn);

 private:
  friend class ShardedSimulator;
  ShardContext(Simulator& sim, ShardedSimulator* owner, int shard)
      : sim_(&sim), owner_(owner), shard_(shard) {}

  Simulator* sim_;
  ShardedSimulator* owner_ = nullptr;
  int shard_ = 0;
};

class ShardedSimulator {
 public:
  // `lookahead` must be at most the minimum cross-shard event latency
  // (for a packet network: the smallest inter-domain link propagation
  // delay). Ignored when num_shards == 1.
  ShardedSimulator(int num_shards, Time lookahead);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int num_shards() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] ShardContext& shard(int s) { return contexts_[static_cast<std::size_t>(s)]; }
  [[nodiscard]] Time lookahead() const { return lookahead_; }

  // The coordinator: its clock is the committed global time, its queue
  // holds barrier-aligned global events (slice boundaries, progress
  // ticks). Global events at time g run single-threaded after all shard
  // work before g has committed and before any shard's time-g events.
  [[nodiscard]] Simulator& global() { return global_; }
  [[nodiscard]] const Simulator& global() const { return global_; }
  [[nodiscard]] Time now() const { return global_.now(); }

  // Schedules a root event on shard `s` with a partition-independent key
  // (a global submission counter): how flow starts are injected so their
  // equal-time order is the submission order under any shard count.
  void seed(int s, Time at, SmallCallback fn);

  // Runs after every epoch barrier, before the next global events — the
  // deterministic point to merge per-shard staging (FlowTracker lanes).
  void set_barrier_hook(std::function<void()> hook) { barrier_hook_ = std::move(hook); }

  // Runs the epoch loop until simulated time `t` (inclusive: events at
  // exactly `t` fire, matching Simulator::run_until). Stops early when
  // global().stop() is requested from a global event. Returns events
  // executed across all shards and the coordinator.
  std::uint64_t run_until(Time t);

  [[nodiscard]] std::uint64_t events_executed() const;

  // Checkpoint hook. Only partition-invariant aggregates: the committed
  // global clock and the total dispatch count (each logical event runs
  // exactly once regardless of the shard partition). Per-shard clocks and
  // mailbox contents are partition-*dependent* and must never be digested.
  void fingerprint(Fingerprint& fp) const {
    fp.mix_time(global_.now());
    fp.mix_u64(events_executed());
  }

 private:
  friend class ShardContext;

  struct MailEntry {
    Time at;
    std::uint64_t key;
    SmallCallback fn;
  };
  // Double-buffered SPSC mailbox: the producing shard appends to `out`
  // during a phase; the barrier swaps; the consuming shard drains `in`
  // at its next phase start. Producer and consumer never share a buffer.
  struct Mailbox {
    std::vector<MailEntry> out;
    std::vector<MailEntry> in;
  };
  [[nodiscard]] Mailbox& box(int src, int dst) {
    return mailboxes_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(num_shards()) +
                      static_cast<std::size_t>(dst)];
  }

  void push_mail(int src, int dst, Time at, std::uint64_t key, SmallCallback fn);
  // Swaps every mailbox's buffers; returns entries now awaiting delivery.
  std::size_t swap_mailboxes();
  [[nodiscard]] std::size_t mail_pending() const;
  void drain_inboxes(int dst);
  // One parallel phase: every shard drains its inboxes and runs its window
  // up to `end`. Followed by the barrier hook.
  void run_phase(Time end, bool inclusive);

  Simulator global_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<ShardContext> contexts_;
  std::vector<Mailbox> mailboxes_;
  Time lookahead_;
  Time phase_end_ = Time::zero();  // current epoch horizon (lookahead assert)
  bool in_phase_ = false;
  std::uint64_t seed_count_ = 0;
  std::function<void()> barrier_hook_;
};

}  // namespace opera::sim

#include "sim/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace opera::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  // Inverse-CDF; uniform() < 1 so the log argument is strictly positive.
  return -mean * std::log(1.0 - uniform());
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  shuffle(std::span<std::size_t>{p});
  return p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace opera::sim

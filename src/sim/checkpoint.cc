#include "sim/checkpoint.h"

#include <bit>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace opera::sim {

namespace {

// FNV-1a over raw bytes — the file checksum (and the string mixer's inner
// hash). Distinct from Fingerprint's chained mixer on purpose: the file
// checksum guards bytes on disk, the fingerprint guards simulation state.
std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string format_error(std::string_view name, std::size_t line,
                         const std::string& message) {
  return std::string(name) + ":" + std::to_string(line) + ": " + message;
}

// Splits "key rest-of-line". A line with no space is a bare key ("").
CheckpointEntry split_entry(std::string_view line) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) return {std::string(line), std::string()};
  return {std::string(line.substr(0, sp)), std::string(line.substr(sp + 1))};
}

bool parse_i64(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  // Section values are tokenized on spaces already, so strtoll's
  // leading-whitespace tolerance never hides a malformed field.
  const long long v = std::strtoll(std::string(text).c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool parse_hex_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(std::string(text).c_str(), &end, 16);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

void Fingerprint::mix_double(double v) { mix_u64(std::bit_cast<std::uint64_t>(v)); }

void Fingerprint::mix_bytes(std::string_view bytes) {
  mix_u64(fnv1a(bytes));
  mix_u64(bytes.size());
}

const std::string* find_entry(const std::vector<CheckpointEntry>& section,
                              std::string_view key) {
  for (const auto& e : section) {
    if (e.key == key) return &e.value;
  }
  return nullptr;
}

std::string write_checkpoint_text(const CheckpointData& data) {
  std::string out;
  out.reserve(4096 + data.flows.size() * 32);
  char buf[128];
  std::snprintf(buf, sizeof buf, "OPERA-CHECKPOINT v%d\n", data.version);
  out += buf;
  const auto emit_section = [&out](const char* header,
                                   const std::vector<CheckpointEntry>& entries) {
    out += header;
    out += '\n';
    for (const auto& e : entries) {
      out += e.key;
      if (!e.value.empty()) {
        out += ' ';
        out += e.value;
      }
      out += '\n';
    }
  };
  emit_section("[run]", data.run);
  emit_section("[config]", data.config);
  std::snprintf(buf, sizeof buf, "[flows] %zu\n", data.flows.size());
  out += buf;
  for (const auto& f : data.flows) {
    std::snprintf(buf, sizeof buf, "%" PRId64 " %d %d %" PRId64 "\n", f.start_ps,
                  f.src_host, f.dst_host, f.size_bytes);
    out += buf;
  }
  emit_section("[state]", data.state);
  out += "[end]\n";
  std::snprintf(buf, sizeof buf, "checksum %016" PRIx64 "\n", fnv1a(out));
  out += buf;
  return out;
}

CheckpointParseResult parse_checkpoint(std::string_view text, std::string_view name) {
  CheckpointParseResult result;
  CheckpointData& data = result.data;

  // Pass 1: split into lines, remembering byte offsets so the checksum
  // can be verified over the exact prefix it was computed from.
  struct Line {
    std::string_view text;
    std::size_t end_offset;  // offset one past this line's trailing newline
  };
  std::vector<Line> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    const bool unterminated = nl == std::string_view::npos;
    if (unterminated) nl = text.size();
    lines.push_back({text.substr(pos, nl - pos), unterminated ? nl : nl + 1});
    pos = unterminated ? nl : nl + 1;
  }

  if (lines.empty()) {
    result.error = format_error(name, 1, "empty checkpoint file");
    return result;
  }

  // Header + version gate.
  {
    const std::string_view header = lines[0].text;
    constexpr std::string_view kMagic = "OPERA-CHECKPOINT v";
    if (header.substr(0, kMagic.size()) != kMagic) {
      result.error = format_error(name, 1,
                                  "not a checkpoint file (expected "
                                  "'OPERA-CHECKPOINT v<N>' header)");
      return result;
    }
    std::int64_t version = 0;
    if (!parse_i64(header.substr(kMagic.size()), &version)) {
      result.error = format_error(name, 1, "malformed version in header");
      return result;
    }
    if (version != kCheckpointSchemaVersion) {
      result.error = format_error(
          name, 1,
          "checkpoint schema v" + std::to_string(version) +
              " is not supported (this build reads v" +
              std::to_string(kCheckpointSchemaVersion) +
              "); re-run from scratch or use a matching binary");
      return result;
    }
    data.version = static_cast<int>(version);
  }

  // Checksum gate: the last line must be `checksum <hex>` over everything
  // before it. Checked before the section grammar so truncation and
  // corruption report as exactly that, not as a confusing grammar error.
  if (lines.size() < 2 ||
      lines.back().text.substr(0, 9) != std::string_view("checksum ")) {
    result.error = format_error(
        name, lines.size(),
        "truncated checkpoint: missing trailing 'checksum' line (the file "
        "was cut off mid-write; use the previous checkpoint)");
    return result;
  }
  {
    const std::size_t checksum_lineno = lines.size();
    std::uint64_t stated = 0;
    if (!parse_hex_u64(lines.back().text.substr(9), &stated)) {
      result.error =
          format_error(name, checksum_lineno, "malformed checksum value");
      return result;
    }
    const std::size_t covered_end = lines[lines.size() - 2].end_offset;
    const std::uint64_t actual = fnv1a(text.substr(0, covered_end));
    if (stated != actual) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "checksum mismatch (file says %016" PRIx64
                    ", content hashes to %016" PRIx64 ") - corrupted checkpoint",
                    stated, actual);
      result.error = format_error(name, checksum_lineno, buf);
      return result;
    }
  }

  // Section grammar. `[flows] <count>` announces exactly `count` flow
  // lines; every other section is key/value until the next '[' line.
  enum class Section { kNone, kRun, kConfig, kState, kDone };
  Section section = Section::kNone;
  std::size_t flows_expected = 0;
  bool saw_end = false;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    const std::size_t lineno = i + 1;
    const std::string_view line = lines[i].text;
    if (line.empty()) continue;
    if (saw_end) {
      result.error =
          format_error(name, lineno, "content after [end] (before checksum)");
      return result;
    }
    if (line[0] == '[') {
      if (line == "[run]") {
        section = Section::kRun;
      } else if (line == "[config]") {
        section = Section::kConfig;
      } else if (line.substr(0, 7) == std::string_view("[flows]")) {
        std::int64_t count = 0;
        if (line.size() < 9 || !parse_i64(line.substr(8), &count) || count < 0) {
          result.error = format_error(name, lineno,
                                      "malformed [flows] header (expected "
                                      "'[flows] <count>')");
          return result;
        }
        flows_expected = static_cast<std::size_t>(count);
        data.flows.reserve(flows_expected);
        section = Section::kNone;  // flow lines handled below
        // Consume exactly `count` flow lines.
        for (std::size_t k = 0; k < flows_expected; ++k) {
          ++i;
          if (i + 1 >= lines.size()) {
            result.error = format_error(
                name, i + 1,
                "flow list cut short (expected " +
                    std::to_string(flows_expected) + " flows, got " +
                    std::to_string(k) + ")");
            return result;
          }
          const std::string_view fl = lines[i].text;
          CheckpointFlow flow;
          std::int64_t src = 0;
          std::int64_t dst = 0;
          // start_ps src dst size_bytes
          std::size_t p = 0;
          const auto next_field = [&fl, &p]() -> std::string_view {
            while (p < fl.size() && fl[p] == ' ') ++p;
            const std::size_t start = p;
            while (p < fl.size() && fl[p] != ' ') ++p;
            return fl.substr(start, p - start);
          };
          if (!parse_i64(next_field(), &flow.start_ps) ||
              !parse_i64(next_field(), &src) || !parse_i64(next_field(), &dst) ||
              !parse_i64(next_field(), &flow.size_bytes) ||
              !next_field().empty()) {
            result.error = format_error(
                name, i + 1,
                "malformed flow line (expected 'start_ps src dst size_bytes')");
            return result;
          }
          flow.src_host = static_cast<std::int32_t>(src);
          flow.dst_host = static_cast<std::int32_t>(dst);
          data.flows.push_back(flow);
        }
      } else if (line == "[state]") {
        section = Section::kState;
      } else if (line == "[end]") {
        saw_end = true;
        section = Section::kDone;
      } else {
        result.error = format_error(
            name, lineno, "unknown section '" + std::string(line) + "'");
        return result;
      }
      continue;
    }
    switch (section) {
      case Section::kRun:
        data.run.push_back(split_entry(line));
        break;
      case Section::kConfig:
        data.config.push_back(split_entry(line));
        break;
      case Section::kState:
        data.state.push_back(split_entry(line));
        break;
      default:
        result.error = format_error(
            name, lineno, "content outside any section: '" + std::string(line) + "'");
        return result;
    }
  }
  if (!saw_end) {
    result.error = format_error(name, lines.size(),
                                "truncated checkpoint: missing [end] marker");
    return result;
  }
  return result;
}

CheckpointParseResult load_checkpoint(const std::string& path) {
  CheckpointParseResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    result.error = path + ": cannot open checkpoint: " + std::strerror(errno);
    return result;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    result.error = path + ": read error";
    return result;
  }
  return parse_checkpoint(text, path);
}

std::string save_checkpoint(const std::string& path, const CheckpointData& data) {
  const std::string text = write_checkpoint_text(data);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return tmp + ": cannot open for writing: " + std::strerror(errno);
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    std::remove(tmp.c_str());
    return tmp + ": write failed";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    std::remove(tmp.c_str());
    return path + ": rename failed: " + err;
  }
  return {};
}

}  // namespace opera::sim

// Flow-level (fluid) throughput models for the cost-sweep and mixed-load
// experiments (paper Figures 10, 12, 15).
//
// The paper runs htsim to saturation for these figures; we reproduce the
// shape with rack-level max-min style models (documented substitution in
// DESIGN.md):
//   * folded Clos — rack ingress/egress limited by the oversubscribed
//     uplink capacity (the fabric above is rearrangeably non-blocking)
//   * expander — exact per-edge loads under shortest-path ECMP splitting,
//     plus rack ingress/egress limits
//   * Opera / RotorNet — time-averaged direct circuit capacity per rack
//     pair, with two-hop VLB over leftover capacity at a 2x byte cost
//
// All functions return the max scale factor theta such that theta * demand
// is feasible; demands are in bits/sec at rack granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"

namespace opera::fluid {

// Sparse rack-level demand matrix (bits/sec); diagonal ignored.
//
// Stored CSR-style: one column-sorted entry vector per row, so memory is
// O(racks + nonzeros) instead of the dense O(racks^2) doubles that made
// k=24+ (432 racks) fluid sweeps carry ~1.5 MB per matrix — and far worse
// at the 100k-host scales the fluid engine targets. Iteration helpers
// visit entries in row-major, ascending-column order, which is exactly
// the dense loop order, so every consumer's floating-point accumulation
// is bit-identical to the dense form (skipped zeros add 0.0, an FP
// no-op).
class Demand {
 public:
  struct Entry {
    std::int32_t col;
    double value;
  };

  explicit Demand(int num_racks)
      : n_(num_racks), rows_(static_cast<std::size_t>(num_racks)) {}

  [[nodiscard]] int num_racks() const { return n_; }
  [[nodiscard]] double operator()(int a, int b) const;
  void add(int a, int b, double bps);
  [[nodiscard]] double total() const;
  [[nodiscard]] double row_sum(int a) const;
  [[nodiscard]] double col_sum(int b) const;

  // Column-sorted nonzero entries of row `a`.
  [[nodiscard]] const std::vector<Entry>& row(int a) const {
    return rows_[static_cast<std::size_t>(a)];
  }
  // Stored nonzero count and heap footprint (the k=24+ memory probe).
  [[nodiscard]] std::size_t nnz() const;
  [[nodiscard]] std::size_t memory_bytes() const;

  // Canonical workloads (entries are per-rack offered bits/sec given each
  // rack hosts `hosts_per_rack` hosts at `host_rate_bps`).
  static Demand all_to_all(int num_racks, int hosts_per_rack, double host_rate_bps);
  static Demand hotrack(int num_racks, int hosts_per_rack, double host_rate_bps);
  static Demand permutation(int num_racks, int hosts_per_rack, double host_rate_bps,
                            unsigned seed = 1);
  static Demand skew(int num_racks, int hosts_per_rack, double host_rate_bps,
                     double active_fraction, unsigned seed = 1);

 private:
  int n_;
  std::vector<std::vector<Entry>> rows_;  // [row] -> entries sorted by col
};

// Folded Clos with ToR oversubscription F (may be fractional when derived
// from a cost target): per-rack up/down capacity is
// hosts_per_rack * host_rate / F.
[[nodiscard]] double clos_throughput(const Demand& demand, int hosts_per_rack,
                                     double host_rate_bps, double oversubscription);

// Static expander over `g` (u-regular rack graph) with shortest-path ECMP.
// With `enable_vlb`, skewed excess may also ride two-hop Valiant paths
// (the hybrid routing of Kassing et al. [29], which the paper's expander
// baseline assumes for skewed workloads — at the cost of doubling the
// bandwidth tax on relayed bytes); the result is the better of the two
// routing modes.
[[nodiscard]] double expander_throughput(const Demand& demand, const topo::Graph& g,
                                         double link_rate_bps, bool enable_vlb = true);

struct RotorModelParams {
  int num_racks = 108;
  int uplinks = 6;          // u
  double link_rate_bps = 10e9;
  // Fraction of uplinks usable at any instant: Opera staggers, so (u-1)/u;
  // RotorNet blinks whole, so its loss shows up in duty_cycle instead.
  double active_fraction = 5.0 / 6.0;
  double duty_cycle = 0.9;  // reconfiguration amortization (r / slice)
  bool enable_vlb = true;
};

// Time-averaged rotor fabric (Opera bulk plane or RotorNet): every rack
// pair gets capacity active_uplinks/N of a link; excess demand may ride
// two-hop VLB over spare direct capacity at twice the byte cost.
[[nodiscard]] double rotor_throughput(const Demand& demand, const RotorModelParams& params);

}  // namespace opera::fluid

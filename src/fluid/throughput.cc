#include "fluid/throughput.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "sim/rng.h"

namespace opera::fluid {

double Demand::operator()(int a, int b) const {
  const auto& row = rows_[static_cast<std::size_t>(a)];
  const auto it = std::lower_bound(
      row.begin(), row.end(), b,
      [](const Entry& e, int col) { return e.col < col; });
  return (it != row.end() && it->col == b) ? it->value : 0.0;
}

void Demand::add(int a, int b, double bps) {
  if (a == b) return;
  auto& row = rows_[static_cast<std::size_t>(a)];
  const auto it = std::lower_bound(
      row.begin(), row.end(), b,
      [](const Entry& e, int col) { return e.col < col; });
  if (it != row.end() && it->col == b) {
    it->value += bps;
  } else {
    row.insert(it, Entry{static_cast<std::int32_t>(b), bps});
  }
}

double Demand::total() const {
  // Row-major, ascending-column: the dense accumulation order.
  double sum = 0.0;
  for (const auto& row : rows_) {
    for (const Entry& e : row) sum += e.value;
  }
  return sum;
}

double Demand::row_sum(int a) const {
  double sum = 0.0;
  for (const Entry& e : rows_[static_cast<std::size_t>(a)]) sum += e.value;
  return sum;
}

double Demand::col_sum(int b) const {
  double sum = 0.0;
  for (const auto& row : rows_) {
    const auto it = std::lower_bound(
        row.begin(), row.end(), b,
        [](const Entry& e, int col) { return e.col < col; });
    if (it != row.end() && it->col == b) sum += it->value;
  }
  return sum;
}

std::size_t Demand::nnz() const {
  std::size_t count = 0;
  for (const auto& row : rows_) count += row.size();
  return count;
}

std::size_t Demand::memory_bytes() const {
  std::size_t bytes = sizeof(Demand) + rows_.capacity() * sizeof(rows_[0]);
  for (const auto& row : rows_) bytes += row.capacity() * sizeof(Entry);
  return bytes;
}

Demand Demand::all_to_all(int num_racks, int hosts_per_rack, double host_rate_bps) {
  Demand d(num_racks);
  const double per_pair =
      hosts_per_rack * host_rate_bps / static_cast<double>(num_racks - 1);
  for (int a = 0; a < num_racks; ++a) {
    for (int b = 0; b < num_racks; ++b) {
      if (a != b) d.add(a, b, per_pair);
    }
  }
  return d;
}

Demand Demand::hotrack(int num_racks, int hosts_per_rack, double host_rate_bps) {
  assert(num_racks >= 2);
  Demand d(num_racks);
  d.add(0, 1, hosts_per_rack * host_rate_bps);
  return d;
}

Demand Demand::permutation(int num_racks, int hosts_per_rack, double host_rate_bps,
                           unsigned seed) {
  // Host-level permutation: each host sends at full rate to one host in a
  // random other rack.
  Demand d(num_racks);
  sim::Rng rng(seed);
  for (int a = 0; a < num_racks; ++a) {
    for (int h = 0; h < hosts_per_rack; ++h) {
      int b = static_cast<int>(rng.index(static_cast<std::size_t>(num_racks)));
      while (b == a) b = static_cast<int>(rng.index(static_cast<std::size_t>(num_racks)));
      d.add(a, b, host_rate_bps);
    }
  }
  return d;
}

Demand Demand::skew(int num_racks, int hosts_per_rack, double host_rate_bps,
                    double active_fraction, unsigned seed) {
  Demand d(num_racks);
  sim::Rng rng(seed);
  const auto active = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(active_fraction * num_racks)));
  const auto racks =
      rng.sample_without_replacement(static_cast<std::size_t>(num_racks), active);
  const double per_pair =
      hosts_per_rack * host_rate_bps / static_cast<double>(active - 1);
  for (const std::size_t a : racks) {
    for (const std::size_t b : racks) {
      if (a != b) d.add(static_cast<int>(a), static_cast<int>(b), per_pair);
    }
  }
  return d;
}

double clos_throughput(const Demand& demand, int hosts_per_rack, double host_rate_bps,
                       double oversubscription) {
  const double up_capacity = hosts_per_rack * host_rate_bps / oversubscription;
  double theta = std::numeric_limits<double>::infinity();
  for (int r = 0; r < demand.num_racks(); ++r) {
    const double out = demand.row_sum(r);
    const double in = demand.col_sum(r);
    if (out > 0.0) theta = std::min(theta, up_capacity / out);
    if (in > 0.0) theta = std::min(theta, up_capacity / in);
    // Host links bound everything at 1.0x offered load by construction.
    if (out > 0.0) theta = std::min(theta, hosts_per_rack * host_rate_bps / out);
    if (in > 0.0) theta = std::min(theta, hosts_per_rack * host_rate_bps / in);
  }
  return std::isinf(theta) ? 0.0 : theta;
}

namespace {

// Feasibility of theta*demand on graph g under one-hop-direct (graph
// edges) plus two-hop VLB relay routing, using aggregate per-rack budgets.
bool graph_vlb_feasible(const Demand& demand, const topo::Graph& g,
                        double link_rate_bps, double theta) {
  const int n = demand.num_racks();
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  std::vector<double> in(static_cast<std::size_t>(n), 0.0);
  double total_excess = 0.0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      const double want = theta * demand(a, b);
      if (want <= 0.0) continue;
      const double direct_cap =
          g.has_edge(static_cast<topo::Vertex>(a), static_cast<topo::Vertex>(b))
              ? link_rate_bps
              : 0.0;
      total_excess += std::max(0.0, want - direct_cap);
      out[static_cast<std::size_t>(a)] += want;
      in[static_cast<std::size_t>(b)] += want;
    }
  }
  double relay_capacity = 0.0;
  for (int r = 0; r < n; ++r) {
    const double budget = g.degree(static_cast<topo::Vertex>(r)) * link_rate_bps;
    const double spare_out = budget - out[static_cast<std::size_t>(r)];
    const double spare_in = budget - in[static_cast<std::size_t>(r)];
    if (spare_out < 0.0 || spare_in < 0.0) return false;
    relay_capacity += std::min(spare_out, spare_in);
  }
  return total_excess <= relay_capacity;
}

double graph_vlb_throughput(const Demand& demand, const topo::Graph& g,
                            double link_rate_bps) {
  double lo = 0.0;
  double hi = 1.0;
  while (graph_vlb_feasible(demand, g, link_rate_bps, hi) && hi < 1e6) hi *= 2.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (graph_vlb_feasible(demand, g, link_rate_bps, mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

double expander_throughput(const Demand& demand, const topo::Graph& g,
                           double link_rate_bps, bool enable_vlb) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  assert(static_cast<int>(n) == demand.num_racks());
  // Directed edge loads under ECMP splitting; edges indexed by (src,
  // adjacency position).
  std::vector<std::vector<double>> load(n);
  for (std::size_t v = 0; v < n; ++v) {
    load[v].assign(g.neighbors(static_cast<topo::Vertex>(v)).size(), 0.0);
  }

  std::vector<double> node_flow(n);
  std::vector<topo::Vertex> order(n);
  for (int b = 0; b < demand.num_racks(); ++b) {
    if (demand.col_sum(b) <= 0.0) continue;
    const auto dist = bfs_distances(g, static_cast<topo::Vertex>(b));
    std::fill(node_flow.begin(), node_flow.end(), 0.0);
    for (int a = 0; a < demand.num_racks(); ++a) {
      node_flow[static_cast<std::size_t>(a)] = demand(a, b);
    }
    // Drain nodes farthest-first so all upstream flow has arrived before a
    // node splits its aggregate over the shortest-path DAG.
    for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<topo::Vertex>(v);
    std::sort(order.begin(), order.end(), [&](topo::Vertex x, topo::Vertex y) {
      return dist[static_cast<std::size_t>(x)] > dist[static_cast<std::size_t>(y)];
    });
    for (const topo::Vertex v : order) {
      const double f = node_flow[static_cast<std::size_t>(v)];
      if (f <= 0.0 || v == static_cast<topo::Vertex>(b)) continue;
      const auto& nbrs = g.neighbors(v);
      int closer = 0;
      for (const topo::Vertex w : nbrs) {
        if (dist[static_cast<std::size_t>(w)] == dist[static_cast<std::size_t>(v)] - 1) {
          ++closer;
        }
      }
      assert(closer > 0 && "demand between disconnected racks");
      const double share = f / closer;
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        const topo::Vertex w = nbrs[j];
        if (dist[static_cast<std::size_t>(w)] == dist[static_cast<std::size_t>(v)] - 1) {
          load[static_cast<std::size_t>(v)][j] += share;
          node_flow[static_cast<std::size_t>(w)] += share;
        }
      }
    }
  }

  double max_load = 0.0;
  for (const auto& row : load) {
    for (const double l : row) max_load = std::max(max_load, l);
  }
  const double ecmp = max_load > 0.0 ? link_rate_bps / max_load : 0.0;
  if (!enable_vlb) return ecmp;
  return std::max(ecmp, graph_vlb_throughput(demand, g, link_rate_bps));
}

namespace {

bool rotor_feasible(const Demand& demand, const RotorModelParams& p, double theta) {
  const int n = p.num_racks;
  const double active_uplinks = p.uplinks * p.active_fraction;
  const double pair_cap =
      active_uplinks / static_cast<double>(n) * p.link_rate_bps * p.duty_cycle;
  const double rack_budget = active_uplinks * p.link_rate_bps * p.duty_cycle;

  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  std::vector<double> in(static_cast<std::size_t>(n), 0.0);
  double total_excess = 0.0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      const double want = theta * demand(a, b);
      if (want <= 0.0) continue;
      const double direct = std::min(want, pair_cap);
      const double excess = want - direct;
      if (excess > 0.0 && !p.enable_vlb) return false;
      out[static_cast<std::size_t>(a)] += want;  // first hop always leaves a
      in[static_cast<std::size_t>(b)] += want;   // last hop always enters b
      total_excess += excess;
    }
  }
  double relay_capacity = 0.0;
  for (int r = 0; r < n; ++r) {
    const double spare_out = rack_budget - out[static_cast<std::size_t>(r)];
    const double spare_in = rack_budget - in[static_cast<std::size_t>(r)];
    if (spare_out < 0.0 || spare_in < 0.0) return false;
    relay_capacity += std::min(spare_out, spare_in);
  }
  return total_excess <= relay_capacity;
}

}  // namespace

double rotor_throughput(const Demand& demand, const RotorModelParams& params) {
  if (demand.total() <= 0.0) return 0.0;
  double lo = 0.0;
  double hi = 1.0;
  // Grow hi until infeasible (bounded: rack budgets cap throughput).
  while (rotor_feasible(demand, params, hi) && hi < 1e6) hi *= 2.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (rotor_feasible(demand, params, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace opera::fluid

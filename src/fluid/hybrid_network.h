// fluid::HybridNetwork — packet precision where it matters, fluid scale
// where it doesn't (docs/FLUID.md "Hybrid mode").
//
// Owns a full packet-level core::OperaNetwork and a fluid::FluidNetwork
// built from the same FabricConfig. A size/tag classifier routes each
// submitted flow: latency-sensitive short flows (and anything forced
// kLowLatency — incast request/response traffic) run on the packet
// engine; bulk elephants (size >= bulk_threshold_bytes, or forced kBulk)
// drain in the fluid integrator. Every flow is registered in ONE master
// FlowTracker under a master id; sub-engine completions and deliveries
// are buffered and merged into it in canonical (time, flow id) order at
// every merge barrier, so FCT buckets, Report tables, fingerprints and
// checkpoint/replay see a single coherent network.
//
// Execution: the two engines advance in lockstep chunks. The hybrid's
// own coordinator simulator carries only driver events (progress ticks),
// and each chunk ends at the next such event, so run_to_completion /
// RunGuard hooks always observe a freshly merged tracker. The planes are
// decoupled in the model: short flows do not queue behind elephants and
// vice versa — a documented approximation that mirrors Opera's separate
// low-latency/bulk provisioning.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fabric.h"
#include "core/network.h"
#include "core/opera_network.h"
#include "fluid/fluid_network.h"
#include "sim/simulator.h"
#include "transport/flow.h"

namespace opera::fluid {

class HybridNetwork : public core::Network {
 public:
  // Requires config.kind == kOpera (the factory builder enforces it).
  explicit HybridNetwork(const core::FabricConfig& config);

  enum class Engine : std::uint8_t { kPacket, kFluid };

  // The hybrid classifier: forced kLowLatency -> packet, forced kBulk ->
  // fluid, otherwise by size against bulk_threshold_bytes.
  [[nodiscard]] Engine classify(
      std::int64_t size_bytes,
      std::optional<net::TrafficClass> force = std::nullopt) const;

  std::uint64_t submit_flow(
      std::int32_t src_host, std::int32_t dst_host, std::int64_t size_bytes,
      sim::Time start,
      std::optional<net::TrafficClass> force = std::nullopt) override;

  void run_until(sim::Time t) override;

  [[nodiscard]] sim::Simulator& sim() override { return hybrid_sim_; }
  [[nodiscard]] const sim::Simulator& sim() const override {
    return hybrid_sim_;
  }
  [[nodiscard]] std::uint64_t events_executed() const override {
    return packet_->events_executed() + fluid_->events_executed() +
           hybrid_sim_.events_executed();
  }
  [[nodiscard]] int num_shards() const override {
    return packet_->num_shards();
  }
  [[nodiscard]] transport::FlowTracker& tracker() override { return tracker_; }
  [[nodiscard]] const transport::FlowTracker& tracker() const override {
    return tracker_;
  }
  [[nodiscard]] std::int32_t num_hosts() const override {
    return packet_->num_hosts();
  }
  [[nodiscard]] std::int32_t num_racks() const override {
    return packet_->num_racks();
  }
  [[nodiscard]] std::int32_t rack_of_host(std::int32_t host) const override {
    return packet_->rack_of_host(host);
  }
  [[nodiscard]] std::string describe() const override;

  // Sub-engines, for scenario arming (exp::arm_scenario mirrors storm
  // failures into both planes) and tests.
  [[nodiscard]] core::OperaNetwork& packet_net() { return *packet_; }
  [[nodiscard]] const core::OperaNetwork& packet_net() const { return *packet_; }
  [[nodiscard]] FluidNetwork& fluid_net() { return *fluid_; }
  [[nodiscard]] const FluidNetwork& fluid_net() const { return *fluid_; }

  // Engine assignment per master flow id (ids are 1-based and dense in
  // submission order) — the golden-test surface for the classifier.
  [[nodiscard]] const std::vector<Engine>& assignments() const {
    return assignments_;
  }

  void fingerprint(sim::Fingerprint& fp) const override;
  bool degrade_memory() override { return packet_->degrade_memory(); }

 private:
  struct PendingCompletion {
    sim::Time at;
    std::uint64_t id;  // master id
  };
  struct PendingDelivery {
    sim::Time at;
    std::uint64_t id;  // master id
    std::int64_t bytes;
  };
  struct EngineBuffers {
    // Sub id -> master id (sub ids are 1-based and dense per engine).
    std::vector<std::uint64_t> to_master{0};
    std::vector<PendingCompletion> completions;
    std::vector<PendingDelivery> deliveries;
  };

  // Drains both engines' buffered completion/delivery streams into the
  // master tracker in canonical (time, master id) order. Call only when
  // both engines have reached the same time.
  void merge_pending();
  void hook_sub_tracker(core::Network& net, EngineBuffers& buffers);

  core::FabricConfig config_;
  std::unique_ptr<core::OperaNetwork> packet_;
  std::unique_ptr<FluidNetwork> fluid_;
  // Driver-event coordinator: progress ticks land here, between merge
  // barriers, so hooks see merged state.
  sim::Simulator hybrid_sim_;
  transport::FlowTracker tracker_;
  EngineBuffers packet_buffers_;
  EngineBuffers fluid_buffers_;
  std::vector<Engine> assignments_;
  std::vector<PendingCompletion> merge_completions_;  // merge scratch
  std::vector<PendingDelivery> merge_deliveries_;
};

}  // namespace opera::fluid

// fluid::FluidNetwork — the flow-granularity Opera backend (docs/FLUID.md).
//
// A core::Network that never moves a packet: flows are grouped by
// (src rack, dst rack) and each group drains as a fluid at the per-flow
// rate fluid::RotorRateLb assigns it, recomputed at every slice boundary
// from the slice's circuit schedule and frozen in between. Each group
// keeps a virtual drain counter V (cumulative bytes a flow that has been
// in the group since V=0 would have delivered); a flow joining at V0 with
// size S completes exactly when V reaches V0 + S, so one counter plus a
// min-heap of completion thresholds tracks any number of flows in O(log)
// per flow. That is what makes million-flow, multi-second scenarios
// tractable where the packet engine would need ~10^10 packet events.
//
// Determinism: the integrator is single-threaded (the threads knob is
// accepted and ignored, so --threads={1,2,4} are trivially bit-identical)
// and every container it iterates is ordered. Completions discovered
// while advancing groups are buffered and reported in canonical
// (time, flow id) order at each slice boundary, so the FlowTracker
// stream, fingerprints, and checkpoint/replay behave exactly like the
// packet engine's.
//
// Accuracy: rates are frozen within a slice (capacity freed by a
// completion redistributes at the next boundary), new groups wait for
// their first boundary, and failures take effect at the next boundary
// instead of riding the packet engine's hello-protocol delay. Each
// approximation is bounded by one slice (~99 us); the parity oracle
// (tests/test_fluid_parity.cc) measures the resulting FCT error against
// the packet engine on small fabrics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/fabric.h"
#include "core/network.h"
#include "fluid/rotor_rate_lb.h"
#include "sim/simulator.h"
#include "topo/opera_topology.h"
#include "transport/flow.h"

namespace opera::fluid {

// Registers the fluid and hybrid engine builders with
// core::NetworkFactory (idempotent). exp::Experiment calls this on
// construction; direct factory users with engine != packet must call it
// themselves. Both engines require FabricKind::kOpera.
void register_fluid_engines();

class FluidNetwork : public core::Network {
 public:
  explicit FluidNetwork(const core::OperaConfig& config);

  std::uint64_t submit_flow(
      std::int32_t src_host, std::int32_t dst_host, std::int64_t size_bytes,
      sim::Time start,
      std::optional<net::TrafficClass> force = std::nullopt) override;

  // Runs to `t` and catches the fluid state up to the stop time, so the
  // tracker is exact at return (mid-run progress hooks may observe
  // completion counts up to one slice stale; see header comment).
  void run_until(sim::Time t) override;

  [[nodiscard]] sim::Simulator& sim() override { return sim_; }
  [[nodiscard]] const sim::Simulator& sim() const override { return sim_; }
  [[nodiscard]] transport::FlowTracker& tracker() override { return tracker_; }
  [[nodiscard]] const transport::FlowTracker& tracker() const override {
    return tracker_;
  }
  [[nodiscard]] std::int32_t num_hosts() const override {
    return static_cast<std::int32_t>(config_.topology.num_hosts());
  }
  [[nodiscard]] std::int32_t num_racks() const override {
    return static_cast<std::int32_t>(config_.topology.num_racks);
  }
  [[nodiscard]] std::int32_t rack_of_host(std::int32_t host) const override {
    return host / config_.topology.hosts_per_rack;
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const core::OperaConfig& config() const { return config_; }
  [[nodiscard]] const topo::OperaTopology& topology() const { return topo_; }
  [[nodiscard]] const RotorRateLb& allocator() const { return allocator_; }

  // Runtime fault injection, mirroring core::OperaNetwork's API so the
  // scenario engine and the parity tests drive both engines identically.
  // The fluid approximation: capacity disappears/returns at the next
  // slice boundary (no hello-protocol dissemination delay).
  void inject_uplink_failure(std::int32_t rack, int rotor_switch);
  void recover_uplink(std::int32_t rack, int rotor_switch);
  void inject_switch_failure(int rotor_switch);
  void recover_switch(int rotor_switch);
  [[nodiscard]] const topo::FailureSet& failures() const { return failures_; }

  // Delivered-byte accounting by path type. vlb_bytes are bytes delivered
  // via two-hop VLB; they consumed 2x that in circuit capacity, so total
  // circuit traversal bytes = direct_bytes + 2 * vlb_bytes.
  struct FluidStats {
    double direct_bytes = 0.0;
    double vlb_bytes = 0.0;
    double intra_bytes = 0.0;
    [[nodiscard]] double circuit_bytes() const {
      return direct_bytes + 2.0 * vlb_bytes;
    }
  };
  [[nodiscard]] const FluidStats& fluid_stats() const { return stats_; }
  // Live flow groups (for tests and memory probes).
  [[nodiscard]] std::size_t active_groups() const { return groups_.size(); }

  // Checkpoint hook: base digest plus the full fluid rate state — every
  // group's drain counter, rates, and pending thresholds in key order,
  // the byte counters, and the failure set.
  void fingerprint(sim::Fingerprint& fp) const override;

 private:
  // One completion threshold on a group's virtual drain counter.
  struct FlowMark {
    double threshold = 0.0;  // V (bytes) at which the flow completes
    std::uint64_t id = 0;
  };
  struct Group {
    std::int32_t src_rack = 0;
    std::int32_t dst_rack = 0;
    std::int64_t live = 0;      // flows currently draining
    double drained = 0.0;       // V: per-flow cumulative bytes
    sim::Time updated;          // time `drained` is valid at
    GroupRate rate;             // frozen for the current slice
    std::vector<FlowMark> heap;  // min-heap by (threshold, id)
  };

  // Advances one group to `t` under its frozen rate, popping completion
  // thresholds into pending_ and accruing delivered-byte stats.
  void advance_group(Group& group, sim::Time t);
  // Splits `live * per_flow_bytes` delivered bytes into the stats
  // counters by the group's direct/VLB rate mix.
  void accrue(Group& group, double per_flow_bytes);
  // Advances every group to `t`, reports pending completions in
  // (time, id) order, drops empty groups, and recomputes rates.
  void sweep_to(sim::Time t, bool recompute_rates);
  void recompute_rates(int slice);
  void on_flow_start(std::uint64_t id, std::int64_t size_bytes);
  void on_tick();
  void arm_tick(sim::Time now);
  [[nodiscard]] sim::Time next_boundary(sim::Time t) const;
  [[nodiscard]] int slice_at(sim::Time t) const;

  core::OperaConfig config_;
  topo::OperaTopology topo_;
  RotorRateLb allocator_;
  sim::Simulator sim_;
  transport::FlowTracker tracker_;
  topo::FailureSet failures_;

  // Key = src_rack * num_racks + dst_rack; std::map so every sweep and
  // the fingerprint iterate in deterministic key order.
  std::map<std::int64_t, Group> groups_;
  struct PendingCompletion {
    sim::Time at;
    std::uint64_t id;
  };
  std::vector<PendingCompletion> pending_;
  std::vector<GroupDemand> scratch_demands_;  // recompute_rates scratch
  bool tick_armed_ = false;
  FluidStats stats_;
};

}  // namespace opera::fluid

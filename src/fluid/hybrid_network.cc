#include "fluid/hybrid_network.h"

#include <algorithm>
#include <cstdio>

namespace opera::fluid {

HybridNetwork::HybridNetwork(const core::FabricConfig& config)
    : config_(config),
      packet_(std::make_unique<core::OperaNetwork>(config.opera_config())),
      fluid_(std::make_unique<FluidNetwork>(config.opera_config())) {
  hook_sub_tracker(*packet_, packet_buffers_);
  hook_sub_tracker(*fluid_, fluid_buffers_);
}

void HybridNetwork::hook_sub_tracker(core::Network& net,
                                     EngineBuffers& buffers) {
  // Sub-engine hooks fire on the coordinator/barrier thread in canonical
  // per-engine order; buffering defers them to the cross-engine merge.
  net.tracker().set_completion_hook(
      [&buffers](const transport::FlowRecord& record) {
        buffers.completions.push_back(PendingCompletion{
            record.end, buffers.to_master[record.flow.id]});
      });
  net.tracker().set_delivery_hook(
      [&buffers](const transport::Flow& flow, std::int64_t bytes,
                 sim::Time at) {
        buffers.deliveries.push_back(
            PendingDelivery{at, buffers.to_master[flow.id], bytes});
      });
}

std::string HybridNetwork::describe() const {
  char buf[112];
  std::snprintf(buf, sizeof buf,
                "Opera-hybrid (%d racks x %d hosts, %d rotors)",
                static_cast<int>(config_.opera.num_racks),
                config_.opera.hosts_per_rack, config_.opera.num_switches);
  return buf;
}

HybridNetwork::Engine HybridNetwork::classify(
    std::int64_t size_bytes, std::optional<net::TrafficClass> force) const {
  if (force.has_value()) {
    return *force == net::TrafficClass::kBulk ? Engine::kFluid
                                              : Engine::kPacket;
  }
  return size_bytes >= config_.bulk_threshold_bytes ? Engine::kFluid
                                                    : Engine::kPacket;
}

std::uint64_t HybridNetwork::submit_flow(
    std::int32_t src_host, std::int32_t dst_host, std::int64_t size_bytes,
    sim::Time start, std::optional<net::TrafficClass> force) {
  const Engine engine = classify(size_bytes, force);
  // Register under the master id with the same class the sub-engine will
  // use, so FCT bucket labels match an engine=packet run.
  const net::TrafficClass tclass =
      force.value_or(size_bytes >= config_.bulk_threshold_bytes
                         ? net::TrafficClass::kBulk
                         : net::TrafficClass::kLowLatency);
  transport::Flow flow;
  flow.id = tracker_.next_flow_id();
  flow.src_host = src_host;
  flow.dst_host = dst_host;
  flow.src_rack = rack_of_host(src_host);
  flow.dst_rack = rack_of_host(dst_host);
  flow.size_bytes = size_bytes;
  flow.tclass = tclass;
  flow.start = start;
  tracker_.register_flow(flow);
  assignments_.push_back(engine);

  core::Network& sub =
      engine == Engine::kFluid ? static_cast<core::Network&>(*fluid_)
                               : static_cast<core::Network&>(*packet_);
  EngineBuffers& buffers =
      engine == Engine::kFluid ? fluid_buffers_ : packet_buffers_;
  const std::uint64_t sub_id =
      sub.submit_flow(src_host, dst_host, size_bytes, start, tclass);
  // Sub ids are dense and 1-based; record the master mapping.
  if (buffers.to_master.size() != sub_id) {
    std::fprintf(stderr, "hybrid: non-dense sub-engine flow id\n");
    std::abort();
  }
  buffers.to_master.push_back(flow.id);
  return flow.id;
}

void HybridNetwork::merge_pending() {
  // Deliveries first, completions second — within each stream, canonical
  // (time, master id) order across both engines. Each engine's buffer is
  // already time-sorted, so this is a stable two-way merge expressed as a
  // sort over mostly-sorted input.
  merge_deliveries_.clear();
  merge_deliveries_.reserve(packet_buffers_.deliveries.size() +
                            fluid_buffers_.deliveries.size());
  merge_deliveries_.insert(merge_deliveries_.end(),
                           packet_buffers_.deliveries.begin(),
                           packet_buffers_.deliveries.end());
  merge_deliveries_.insert(merge_deliveries_.end(),
                           fluid_buffers_.deliveries.begin(),
                           fluid_buffers_.deliveries.end());
  packet_buffers_.deliveries.clear();
  fluid_buffers_.deliveries.clear();
  std::stable_sort(merge_deliveries_.begin(), merge_deliveries_.end(),
                   [](const PendingDelivery& a, const PendingDelivery& b) {
                     return a.at < b.at || (a.at == b.at && a.id < b.id);
                   });
  for (const PendingDelivery& d : merge_deliveries_) {
    tracker_.on_delivered(d.id, d.bytes, d.at);
  }

  merge_completions_.clear();
  merge_completions_.reserve(packet_buffers_.completions.size() +
                             fluid_buffers_.completions.size());
  merge_completions_.insert(merge_completions_.end(),
                            packet_buffers_.completions.begin(),
                            packet_buffers_.completions.end());
  merge_completions_.insert(merge_completions_.end(),
                            fluid_buffers_.completions.begin(),
                            fluid_buffers_.completions.end());
  packet_buffers_.completions.clear();
  fluid_buffers_.completions.clear();
  std::stable_sort(merge_completions_.begin(), merge_completions_.end(),
                   [](const PendingCompletion& a, const PendingCompletion& b) {
                     return a.at < b.at || (a.at == b.at && a.id < b.id);
                   });
  for (const PendingCompletion& c : merge_completions_) {
    tracker_.on_complete(c.id, c.at);
  }
}

void HybridNetwork::run_until(sim::Time t) {
  // Lockstep chunks: each ends at the next driver event (progress tick)
  // or the horizon, whichever is first. Both engines reach the chunk end,
  // the trackers merge, and only then do driver events fire — so hooks
  // always observe merged state.
  while (hybrid_sim_.now() < t) {
    sim::Time chunk_end = t;
    if (!hybrid_sim_.queue().empty()) {
      chunk_end = std::min(chunk_end, hybrid_sim_.queue().next_time());
    }
    packet_->run_until(chunk_end);
    fluid_->run_until(chunk_end);
    merge_pending();
    hybrid_sim_.run_until(chunk_end);
    if (hybrid_sim_.stop_requested()) return;  // progress hook stopped us
  }
}

void HybridNetwork::fingerprint(sim::Fingerprint& fp) const {
  core::Network::fingerprint(fp);  // merged clock, events, master stream
  packet_->fingerprint(fp);
  fluid_->fingerprint(fp);
}

}  // namespace opera::fluid

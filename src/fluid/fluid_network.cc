#include "fluid/fluid_network.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "fluid/hybrid_network.h"

namespace opera::fluid {

FluidNetwork::FluidNetwork(const core::OperaConfig& config)
    : config_(config),
      topo_(config.topology),
      allocator_(topo_,
                 RotorRateLb::Params{
                     config.link.rate_bps,
                     // Match the packet engine's per-slice bulk budget:
                     // the guard window is unusable.
                     (config.slice.duration - config.slice.guard).to_seconds() /
                         config.slice.duration.to_seconds(),
                     config.topology.hosts_per_rack, config.enable_vlb}),
      failures_(topo::FailureSet::none(config.topology.num_racks,
                                       config.topology.num_switches)) {}

std::string FluidNetwork::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "Opera-fluid (%d racks x %d hosts, %d rotors)",
                static_cast<int>(config_.topology.num_racks),
                config_.topology.hosts_per_rack, config_.topology.num_switches);
  return buf;
}

int FluidNetwork::slice_at(sim::Time t) const {
  const std::int64_t abs_slice = t / config_.slice.duration;
  return static_cast<int>(abs_slice % topo_.num_slices());
}

sim::Time FluidNetwork::next_boundary(sim::Time t) const {
  const std::int64_t abs_slice = t / config_.slice.duration;
  return config_.slice.duration * (abs_slice + 1);
}

std::uint64_t FluidNetwork::submit_flow(std::int32_t src_host,
                                        std::int32_t dst_host,
                                        std::int64_t size_bytes,
                                        sim::Time start,
                                        std::optional<net::TrafficClass> force) {
  transport::Flow flow;
  flow.id = tracker_.next_flow_id();
  flow.src_host = src_host;
  flow.dst_host = dst_host;
  flow.src_rack = rack_of_host(src_host);
  flow.dst_rack = rack_of_host(dst_host);
  flow.size_bytes = size_bytes;
  flow.tclass = force.value_or(size_bytes >= config_.bulk_threshold_bytes
                                   ? net::TrafficClass::kBulk
                                   : net::TrafficClass::kLowLatency);
  flow.start = start;
  tracker_.register_flow(flow);
  const std::uint64_t id = flow.id;
  sim_.schedule_at(start, [this, id, size_bytes] {
    on_flow_start(id, size_bytes);
  });
  return id;
}

void FluidNetwork::on_flow_start(std::uint64_t id, std::int64_t size_bytes) {
  const sim::Time now = sim_.now();
  const transport::Flow* flow = tracker_.find(id);
  const std::int64_t key =
      static_cast<std::int64_t>(flow->src_rack) * num_racks() + flow->dst_rack;
  auto [it, inserted] = groups_.try_emplace(key);
  Group& group = it->second;
  if (inserted) {
    group.src_rack = flow->src_rack;
    group.dst_rack = flow->dst_rack;
    group.updated = now;
  } else {
    // Capture V at join time under the frozen rate.
    advance_group(group, now);
  }
  group.live += 1;
  group.heap.push_back(
      FlowMark{group.drained + static_cast<double>(size_bytes), id});
  std::push_heap(group.heap.begin(), group.heap.end(),
                 [](const FlowMark& a, const FlowMark& b) {
                   return a.threshold > b.threshold ||
                          (a.threshold == b.threshold && a.id > b.id);
                 });
  arm_tick(now);
}

void FluidNetwork::arm_tick(sim::Time now) {
  if (tick_armed_) return;
  tick_armed_ = true;
  // The integrator was idle: give the (re)starting groups rates for the
  // remainder of this slice instead of waiting for the next boundary.
  recompute_rates(slice_at(now));
  sim_.schedule_at(next_boundary(now), [this] { on_tick(); });
}

void FluidNetwork::on_tick() {
  const sim::Time now = sim_.now();
  sweep_to(now, /*recompute_rates=*/true);
  if (groups_.empty()) {
    tick_armed_ = false;  // re-armed by the next flow start
    return;
  }
  sim_.schedule_at(next_boundary(now), [this] { on_tick(); });
}

void FluidNetwork::accrue(Group& group, double per_flow_bytes) {
  if (per_flow_bytes <= 0.0 || group.live == 0) return;
  const double bytes = static_cast<double>(group.live) * per_flow_bytes;
  if (group.src_rack == group.dst_rack) {
    stats_.intra_bytes += bytes;
    return;
  }
  const double rate = group.rate.per_flow;
  if (rate <= 0.0) return;
  stats_.direct_bytes += bytes * (group.rate.direct_share / rate);
  stats_.vlb_bytes += bytes * (group.rate.vlb_share / rate);
}

void FluidNetwork::advance_group(Group& group, sim::Time t) {
  if (t <= group.updated) return;
  const double bytes_per_sec = group.rate.per_flow / 8.0;
  if (bytes_per_sec > 0.0) {
    while (!group.heap.empty()) {
      const FlowMark top = group.heap.front();
      const double need = std::max(0.0, top.threshold - group.drained);
      const double window = bytes_per_sec * (t - group.updated).to_seconds();
      if (need > window) break;
      sim::Time done_at =
          group.updated + sim::Time::from_seconds(need / bytes_per_sec);
      if (done_at > t) done_at = t;
      accrue(group, top.threshold - group.drained);
      group.drained = top.threshold;
      group.updated = done_at;
      std::pop_heap(group.heap.begin(), group.heap.end(),
                    [](const FlowMark& a, const FlowMark& b) {
                      return a.threshold > b.threshold ||
                             (a.threshold == b.threshold && a.id > b.id);
                    });
      group.heap.pop_back();
      group.live -= 1;
      pending_.push_back(PendingCompletion{done_at, top.id});
    }
    const double delta = bytes_per_sec * (t - group.updated).to_seconds();
    accrue(group, delta);
    group.drained += delta;
  }
  group.updated = t;
}

void FluidNetwork::sweep_to(sim::Time t, bool recompute) {
  for (auto& [key, group] : groups_) advance_group(group, t);
  if (!pending_.empty()) {
    // Canonical (time, flow id) completion order — the same contract the
    // packet engine's lane merge provides.
    std::sort(pending_.begin(), pending_.end(),
              [](const PendingCompletion& a, const PendingCompletion& b) {
                return a.at < b.at || (a.at == b.at && a.id < b.id);
              });
    for (const PendingCompletion& done : pending_) {
      tracker_.on_delivered(done.id, tracker_.find(done.id)->size_bytes,
                            done.at);
      tracker_.on_complete(done.id, done.at);
    }
    pending_.clear();
  }
  for (auto it = groups_.begin(); it != groups_.end();) {
    it = it->second.live == 0 ? groups_.erase(it) : std::next(it);
  }
  if (recompute && !groups_.empty()) recompute_rates(slice_at(t));
}

void FluidNetwork::recompute_rates(int slice) {
  scratch_demands_.clear();
  scratch_demands_.reserve(groups_.size());
  for (const auto& [key, group] : groups_) {
    scratch_demands_.push_back(
        GroupDemand{group.src_rack, group.dst_rack, group.live});
  }
  const std::vector<GroupRate> rates =
      allocator_.allocate(slice, scratch_demands_, failures_);
  std::size_t i = 0;
  for (auto& [key, group] : groups_) group.rate = rates[i++];
}

void FluidNetwork::run_until(sim::Time t) {
  sim_.run_until(t);
  // Catch the fluid state up to the stop time so the tracker is exact at
  // return (run_until may stop mid-slice: horizon or progress-hook stop).
  sweep_to(sim_.now(), /*recompute_rates=*/false);
}

void FluidNetwork::inject_uplink_failure(std::int32_t rack, int rotor_switch) {
  failures_.uplink_failed[static_cast<std::size_t>(rack)]
                         [static_cast<std::size_t>(rotor_switch)] = true;
}

void FluidNetwork::recover_uplink(std::int32_t rack, int rotor_switch) {
  failures_.uplink_failed[static_cast<std::size_t>(rack)]
                         [static_cast<std::size_t>(rotor_switch)] = false;
}

void FluidNetwork::inject_switch_failure(int rotor_switch) {
  failures_.switch_failed[static_cast<std::size_t>(rotor_switch)] = true;
}

void FluidNetwork::recover_switch(int rotor_switch) {
  failures_.switch_failed[static_cast<std::size_t>(rotor_switch)] = false;
}

void FluidNetwork::fingerprint(sim::Fingerprint& fp) const {
  core::Network::fingerprint(fp);
  fp.mix_u64(groups_.size());
  for (const auto& [key, group] : groups_) {
    fp.mix_u64(static_cast<std::uint64_t>(key));
    fp.mix_u64(static_cast<std::uint64_t>(group.live));
    fp.mix_double(group.drained);
    fp.mix_time(group.updated);
    fp.mix_double(group.rate.per_flow);
    fp.mix_double(group.rate.direct_share);
    fp.mix_double(group.rate.vlb_share);
    // Heap container order is deterministic (same push/pop sequence on
    // every replay at any --threads=N — the integrator never shards).
    fp.mix_u64(group.heap.size());
    for (const FlowMark& mark : group.heap) {
      fp.mix_double(mark.threshold);
      fp.mix_u64(mark.id);
    }
  }
  fp.mix_double(stats_.direct_bytes);
  fp.mix_double(stats_.vlb_bytes);
  fp.mix_double(stats_.intra_bytes);
  failures_.fingerprint(fp);
}

namespace {

std::unique_ptr<core::Network> build_fluid(const core::FabricConfig& config) {
  if (config.kind != core::FabricKind::kOpera) {
    std::fprintf(stderr,
                 "engine 'fluid' supports only the opera fabric (got '%s')\n",
                 core::fabric_kind_name(config.kind));
    std::exit(2);
  }
  return std::make_unique<FluidNetwork>(config.opera_config());
}

std::unique_ptr<core::Network> build_hybrid(const core::FabricConfig& config) {
  if (config.kind != core::FabricKind::kOpera) {
    std::fprintf(stderr,
                 "engine 'hybrid' supports only the opera fabric (got '%s')\n",
                 core::fabric_kind_name(config.kind));
    std::exit(2);
  }
  return std::make_unique<HybridNetwork>(config);
}

}  // namespace

void register_fluid_engines() {
  core::NetworkFactory::register_engine(core::EngineKind::kFluid, &build_fluid);
  core::NetworkFactory::register_engine(core::EngineKind::kHybrid,
                                        &build_hybrid);
}

}  // namespace opera::fluid

#include "fluid/rotor_rate_lb.h"

#include <algorithm>
#include <cassert>

namespace opera::fluid {

namespace {

// A circuit a<->b on switch `sw` carries traffic iff the switch and both
// endpoint racks/uplinks are alive.
bool circuit_ok(const topo::FailureSet& failures, int sw, std::int32_t a,
                std::int32_t b) {
  const auto sa = static_cast<std::size_t>(a);
  const auto sb = static_cast<std::size_t>(b);
  const auto ssw = static_cast<std::size_t>(sw);
  if (failures.switch_failed[ssw]) return false;
  if (failures.rack_failed[sa] || failures.rack_failed[sb]) return false;
  if (failures.uplink_failed[sa][ssw] || failures.uplink_failed[sb][ssw]) {
    return false;
  }
  return true;
}

}  // namespace

int RotorRateLb::direct_circuits(int slice, std::int32_t a, std::int32_t b,
                                 const topo::FailureSet& failures) const {
  if (a == b) return 0;
  const int down = topo_.reconfiguring_switch(slice);
  int count = 0;
  for (int sw = 0; sw < topo_.num_switches(); ++sw) {
    if (sw == down) continue;
    if (topo_.circuit_peer(sw, static_cast<topo::Vertex>(a), slice) !=
        static_cast<topo::Vertex>(b)) {
      continue;
    }
    if (circuit_ok(failures, sw, a, b)) ++count;
  }
  return count;
}

std::vector<GroupRate> RotorRateLb::allocate(
    int slice, const std::vector<GroupDemand>& groups,
    const topo::FailureSet& failures, RateUsage* usage) const {
  const auto n = static_cast<std::size_t>(topo_.num_racks());
  const double circuit_rate = params_.link_rate_bps * params_.duty;
  const double host_cap = params_.hosts_per_rack * params_.link_rate_bps;
  const int down = topo_.reconfiguring_switch(slice);

  // Per-rack circuit budget this slice: one circuit_rate per live,
  // non-self-matched uplink. Matchings are involutions, so the same
  // budget bounds both egress and ingress.
  std::vector<double> budget(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto rack = static_cast<topo::Vertex>(r);
    for (int sw = 0; sw < topo_.num_switches(); ++sw) {
      if (sw == down) continue;
      const topo::Vertex peer = topo_.circuit_peer(sw, rack, slice);
      if (peer == rack) continue;  // self-match carries no traffic
      if (circuit_ok(failures, sw, static_cast<std::int32_t>(r),
                     static_cast<std::int32_t>(peer))) {
        budget[r] += circuit_rate;
      }
    }
  }

  // NIC fair shares: every flow a rack sources (sinks) gets an even split
  // of its aggregate host capacity.
  std::vector<std::int64_t> out_flows(n, 0);
  std::vector<std::int64_t> in_flows(n, 0);
  for (const GroupDemand& g : groups) {
    out_flows[static_cast<std::size_t>(g.src_rack)] += g.flows;
    in_flows[static_cast<std::size_t>(g.dst_rack)] += g.flows;
  }

  std::vector<GroupRate> rates(groups.size());
  std::vector<double> used_up(n, 0.0);
  std::vector<double> used_down(n, 0.0);
  // Unmet per-flow demand (NIC share minus direct share) per group, and
  // its per-rack aggregates — the VLB "want" sides.
  std::vector<double> headroom(groups.size(), 0.0);
  std::vector<double> vlb_out_want(n, 0.0);
  std::vector<double> vlb_in_want(n, 0.0);
  double total_excess = 0.0;

  for (std::size_t i = 0; i < groups.size(); ++i) {
    const GroupDemand& g = groups[i];
    assert(g.flows > 0);
    const auto a = static_cast<std::size_t>(g.src_rack);
    const auto b = static_cast<std::size_t>(g.dst_rack);
    // One flow never exceeds a single host NIC, even when the rack
    // aggregate would allow it (out_flows < hosts_per_rack).
    const double nic_share = std::min(
        params_.link_rate_bps,
        std::min(host_cap / static_cast<double>(out_flows[a]),
                 host_cap / static_cast<double>(in_flows[b])));
    if (g.src_rack == g.dst_rack) {
      // Intra-rack: host -> ToR -> host, never on circuits.
      rates[i].per_flow = nic_share;
      continue;
    }
    const double direct_cap =
        direct_circuits(slice, g.src_rack, g.dst_rack, failures) * circuit_rate;
    const double direct_per_flow = direct_cap / static_cast<double>(g.flows);
    const double base = std::min(nic_share, direct_per_flow);
    rates[i].direct_share = base;
    rates[i].per_flow = base;
    used_up[a] += static_cast<double>(g.flows) * base;
    used_down[b] += static_cast<double>(g.flows) * base;
    const double h = nic_share - base;
    if (h > 0.0) {
      headroom[i] = h;
      const double want = static_cast<double>(g.flows) * h;
      vlb_out_want[a] += want;
      vlb_in_want[b] += want;
      total_excess += want;
    }
  }

  // VLB pass: the relay pool is the fabric's circuit capacity left over
  // after direct traffic. Every VLB deliver-unit consumes two pool units
  // — one at the sender/receiver edge, one at the relay (the paper's 2x
  // byte tax) — so grants fill unmet demand at pool/2, proportional to
  // each group's excess and clamped per rack so no budget is exceeded.
  double relay_pool = 0.0;
  double relay_used = 0.0;
  if (params_.enable_vlb && total_excess > 0.0) {
    for (std::size_t r = 0; r < n; ++r) {
      const double spare_up = std::max(0.0, budget[r] - used_up[r]);
      const double spare_down = std::max(0.0, budget[r] - used_down[r]);
      relay_pool += std::min(spare_up, spare_down);
    }
    const double fill = std::min(1.0, relay_pool / (2.0 * total_excess));
    if (fill > 0.0) {
      // Sender/receiver-side scale factors so the granted VLB rate fits
      // the racks' remaining circuit budgets.
      std::vector<double> scale_up(n, 1.0);
      std::vector<double> scale_down(n, 1.0);
      for (std::size_t r = 0; r < n; ++r) {
        const double want_up = vlb_out_want[r] * fill;
        if (want_up > 0.0) {
          scale_up[r] = std::min(
              1.0, std::max(0.0, budget[r] - used_up[r]) / want_up);
        }
        const double want_down = vlb_in_want[r] * fill;
        if (want_down > 0.0) {
          scale_down[r] = std::min(
              1.0, std::max(0.0, budget[r] - used_down[r]) / want_down);
        }
      }
      for (std::size_t i = 0; i < groups.size(); ++i) {
        if (headroom[i] <= 0.0) continue;
        const GroupDemand& g = groups[i];
        const auto a = static_cast<std::size_t>(g.src_rack);
        const auto b = static_cast<std::size_t>(g.dst_rack);
        const double grant =
            headroom[i] * fill * std::min(scale_up[a], scale_down[b]);
        rates[i].vlb_share = grant;
        rates[i].per_flow += grant;
        const double group_rate = static_cast<double>(g.flows) * grant;
        used_up[a] += group_rate;
        used_down[b] += group_rate;
        relay_used += group_rate;
      }
    }
  }

  if (usage != nullptr) {
    usage->budget = std::move(budget);
    usage->used_up = std::move(used_up);
    usage->used_down = std::move(used_down);
    usage->relay_pool = relay_pool;
    usage->relay_used = relay_used;
  }
  return rates;
}

}  // namespace opera::fluid

// fluid::RotorRateLb — the per-slice RotorLB rate allocator behind the
// fluid engine (docs/FLUID.md).
//
// Where the packet engine moves individual packets over per-slice circuit
// grants, the fluid model treats every (src rack, dst rack) flow group as
// a fluid draining at a shared per-flow rate, recomputed once per slice
// from the slice's circuit schedule:
//
//   1. NIC fair share — a rack's hosts_per_rack * link_rate egress
//      (ingress) is split evenly over every flow it sources (sinks),
//      clamped to link_rate (one flow never exceeds a single host NIC).
//   2. Direct circuits first — the group's per-flow rate is capped by the
//      slice's direct a<->b circuit capacity split over the group
//      (#non-reconfiguring, non-failed switches whose matching pairs a
//      with b, times link_rate * duty).
//   3. VLB over leftover — demand the direct circuits cannot carry may
//      ride two-hop Valiant paths over the fabric's spare circuit
//      capacity (relay pool = sum over racks of min(spare up, spare
//      down)), granted proportionally to each group's unmet demand and
//      clamped so no rack's uplink or downlink budget is exceeded. Every
//      VLB byte costs two circuit traversals — the 2x byte tax the
//      accounting exposes.
//
// All loops run in input-group / rack-index order over plain doubles, so
// the allocation is bit-for-bit deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/opera_topology.h"

namespace opera::fluid {

// One (src rack, dst rack) flow group; src == dst is an intra-rack group
// (NIC-limited, never touches circuits).
struct GroupDemand {
  std::int32_t src_rack = 0;
  std::int32_t dst_rack = 0;
  std::int64_t flows = 0;
};

// Per-flow deliver rate for one group, split by path type. per_flow ==
// direct_share + vlb_share for inter-rack groups; intra-rack groups carry
// everything in per_flow with both shares zero.
struct GroupRate {
  double per_flow = 0.0;      // bits/sec each flow in the group receives
  double direct_share = 0.0;  // part riding direct a<->b circuits
  double vlb_share = 0.0;     // part riding two-hop VLB (2x byte cost)
};

// Per-slice capacity accounting, exposed for the conservation property
// tests: used_up[r] / used_down[r] never exceed budget[r], and relay_used
// never exceeds relay_pool.
struct RateUsage {
  std::vector<double> budget;     // per-rack circuit capacity (either dir)
  std::vector<double> used_up;    // per-rack egress circuit usage
  std::vector<double> used_down;  // per-rack ingress circuit usage
  double relay_pool = 0.0;        // VLB relay capacity this slice
  double relay_used = 0.0;        // VLB deliver rate actually granted
};

class RotorRateLb {
 public:
  struct Params {
    double link_rate_bps = 10e9;
    // Usable fraction of a slice (guard-adjusted; match the packet
    // engine's OperaConfig::slice_bulk_budget duty factor).
    double duty = 1.0;
    int hosts_per_rack = 6;
    bool enable_vlb = true;
  };

  RotorRateLb(const topo::OperaTopology& topo, const Params& params)
      : topo_(topo), params_(params) {}

  // Rates for `groups` (sorted by (src, dst), flows > 0) during cyclic
  // slice `slice`, honoring `failures`. The result is aligned with
  // `groups`; `usage` (optional) receives the capacity accounting.
  [[nodiscard]] std::vector<GroupRate> allocate(
      int slice, const std::vector<GroupDemand>& groups,
      const topo::FailureSet& failures, RateUsage* usage = nullptr) const;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  // Number of live a<->b circuits in `slice` (0 when a == b).
  [[nodiscard]] int direct_circuits(int slice, std::int32_t a, std::int32_t b,
                                    const topo::FailureSet& failures) const;

  const topo::OperaTopology& topo_;
  Params params_;
};

}  // namespace opera::fluid

// SparseVoq<Q> — lazily allocated per-destination-rack virtual-output-
// queue store.
//
// The dense layout (a vector of one queue per rack, held by every host
// agent and every ToR relay buffer) costs O(racks) per endpoint and
// O(racks²) across the ToR relays — the ROADMAP-named memory blocker for
// k=32 (768 racks → 590k relay rings before a single packet flows). In
// practice an endpoint only ever queues toward the racks it actually
// talks to, so this container materializes a slot on first touch:
//
//   * an open-addressing hash table maps rack id → slot index (empty
//     probes are one load, so the bytes(rack)==0 fast path stays cheap);
//   * slots live in a dense vector in first-touch order — the owner's
//     deterministic event order — which doubles as the active list for
//     drain scans: longest-VOQ-first selection iterates live slots only,
//     with ties broken by lowest rack id, exactly reproducing the dense
//     array's left-to-right strict-max scan;
//   * drained slots keep their (empty) queue: communication peers recur,
//     and retained ring capacity is what keeps steady-state refills
//     allocation-free (see sim/ring.h).
//
// memory_bytes() reports the structural footprint (like EcmpTable's
// probe) so the scale benches can put a number on the k=32 story.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace opera::transport {

template <typename Q>
class SparseVoq {
 public:
  struct Slot {
    std::int32_t rack = -1;
    std::int64_t bytes = 0;
    Q queue;
  };

  // The queue toward `rack`, materializing its slot on first use.
  [[nodiscard]] Q& queue(std::int32_t rack) { return slot(rack).queue; }

  [[nodiscard]] Slot* find(std::int32_t rack) {
    if (table_.empty()) return nullptr;
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = hash(rack) & mask;; i = (i + 1) & mask) {
      const std::uint32_t e = table_[i];
      if (e == 0) return nullptr;
      Slot& s = slots_[e - 1];
      if (s.rack == rack) return &s;
    }
  }
  [[nodiscard]] const Slot* find(std::int32_t rack) const {
    return const_cast<SparseVoq*>(this)->find(rack);
  }

  [[nodiscard]] std::int64_t bytes(std::int32_t rack) const {
    const Slot* s = find(rack);
    return s == nullptr ? 0 : s->bytes;
  }
  [[nodiscard]] std::int64_t total_bytes() const { return total_; }

  void add_bytes(std::int32_t rack, std::int64_t delta) {
    slot(rack).bytes += delta;
    total_ += delta;
  }

  // Active slots in first-touch order.
  [[nodiscard]] auto begin() { return slots_.begin(); }
  [[nodiscard]] auto end() { return slots_.end(); }
  [[nodiscard]] auto begin() const { return slots_.begin(); }
  [[nodiscard]] auto end() const { return slots_.end(); }
  [[nodiscard]] std::size_t active_slots() const { return slots_.size(); }

  // Structural memory: slot storage, hash table, and per-queue ring
  // capacity (element storage; queued payloads are accounted elsewhere).
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t bytes = slots_.capacity() * sizeof(Slot) +
                        table_.capacity() * sizeof(std::uint32_t);
    for (const Slot& s : slots_) bytes += s.queue.memory_bytes();
    return bytes;
  }

 private:
  [[nodiscard]] static std::size_t hash(std::int32_t rack) {
    // Fibonacci scramble: rack ids are small dense ints.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rack)) *
         0x9E3779B97F4A7C15ULL) >>
        32);
  }

  Slot& slot(std::int32_t rack) {
    if (Slot* s = find(rack)) return *s;
    if ((slots_.size() + 1) * 2 > table_.size()) rehash();
    slots_.push_back(Slot{rack, 0, Q{}});
    insert_index(rack, static_cast<std::uint32_t>(slots_.size()));
    return slots_.back();
  }

  void insert_index(std::int32_t rack, std::uint32_t value) {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash(rack) & mask;
    while (table_[i] != 0) i = (i + 1) & mask;
    table_[i] = value;
  }

  void rehash() {
    std::size_t n = table_.empty() ? 16 : table_.size() * 2;
    table_.assign(n, 0);
    for (std::size_t k = 0; k < slots_.size(); ++k) {
      insert_index(slots_[k].rack, static_cast<std::uint32_t>(k + 1));
    }
  }

  std::vector<Slot> slots_;           // active list, first-touch order
  std::vector<std::uint32_t> table_;  // open addressing: slot index + 1; 0 = empty
  std::int64_t total_ = 0;
};

}  // namespace opera::transport

// NDP transport (Handley et al., SIGCOMM 2017), simplified but behaviorally
// faithful — the paper's low-latency transport (§4.2.1):
//   * zero-RTT start: the source blasts an initial window unpaced
//   * switches trim overflowing data packets to headers (see PortQueue)
//   * the receiver ACKs data, NACKs trimmed headers, and paces PULLs at
//     its link rate; the source sends exactly one packet per PULL,
//     retransmitting NACKed sequences first
//   * a conservative fallback timer recovers from lost control packets
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/host.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "transport/flow.h"

namespace opera::transport {

// checkpoint:v1 fields=2
struct NdpConfig {
  int initial_window_packets = 10;  // ~1 BDP at 10 Gb/s / intra-DC RTT
  sim::Time fallback_rto = sim::Time::ms(1);
};

class NdpSource {
 public:
  // Registers itself as `flow.id`'s handler on `host`. The flow must
  // already be registered with `tracker`.
  NdpSource(net::Host& host, const Flow& flow, FlowTracker& tracker,
            const NdpConfig& config = {});
  ~NdpSource();

  NdpSource(const NdpSource&) = delete;
  NdpSource& operator=(const NdpSource&) = delete;

  // Sends the initial window.
  void start();

  [[nodiscard]] bool complete() const { return acked_ == flow_.total_packets(); }

 private:
  void on_packet(net::PacketPtr pkt);
  void send_seq(std::uint64_t seq);
  void send_next();
  void arm_timer();
  void on_timer();

  net::Host& host_;
  Flow flow_;
  FlowTracker& tracker_;
  NdpConfig config_;
  std::uint64_t next_new_ = 0;           // lowest never-sent sequence
  std::uint64_t acked_ = 0;              // count of distinct acked packets
  std::vector<bool> acked_seq_;
  std::vector<std::uint64_t> retransmit_;  // NACKed sequences (LIFO)
  sim::EventHandle timer_;
  bool done_ = false;
};

// Receiver endpoint; one per flow, usually created lazily by a host
// default handler (see make_ndp_sink_factory).
class NdpSink {
 public:
  NdpSink(net::Host& host, const Flow& flow, FlowTracker& tracker);
  ~NdpSink();

  NdpSink(const NdpSink&) = delete;
  NdpSink& operator=(const NdpSink&) = delete;

  void on_packet(net::PacketPtr pkt);

  [[nodiscard]] bool complete() const { return received_ == flow_.total_packets(); }

 private:
  net::Host& host_;
  Flow flow_;
  FlowTracker& tracker_;
  std::uint64_t received_ = 0;
  std::vector<bool> seen_;
  bool completed_reported_ = false;
};

// Installs a default handler on `host` that creates an NdpSink the first
// time a packet of an unknown low-latency flow arrives. Sinks live in
// `sinks` (owned by the caller, typically the experiment network).
void install_ndp_sink_factory(net::Host& host, FlowTracker& tracker,
                              std::vector<std::unique_ptr<NdpSink>>& sinks);

}  // namespace opera::transport

#include "transport/flow.h"

#include <cassert>

namespace opera::transport {

const Flow& FlowTracker::register_flow(const Flow& flow) {
  assert(flow.size_bytes > 0);
  const auto [it, inserted] = flows_.emplace(flow.id, flow);
  assert(inserted && "duplicate flow id");
  (void)inserted;
  return it->second;
}

const Flow* FlowTracker::find(std::uint64_t id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second;
}

void FlowTracker::on_delivered(std::uint64_t id, std::int64_t bytes, sim::Time at) {
  if (delivery_hook_) {
    const Flow* flow = find(id);
    if (flow != nullptr) delivery_hook_(*flow, bytes, at);
  }
}

void FlowTracker::on_complete(std::uint64_t id, sim::Time end) {
  const Flow* flow = find(id);
  assert(flow != nullptr && "completion for unknown flow");
  completions_.push_back(FlowRecord{*flow, end});
  if (hook_) hook_(completions_.back());
}

sim::PercentileSampler FlowTracker::fct_us(std::int64_t lo_bytes,
                                           std::int64_t hi_bytes) const {
  sim::PercentileSampler out;
  for (const auto& rec : completions_) {
    if (rec.flow.size_bytes >= lo_bytes && rec.flow.size_bytes < hi_bytes) {
      out.add(rec.fct().to_us());
    }
  }
  return out;
}

}  // namespace opera::transport

#include "transport/flow.h"

#include <algorithm>
#include <cassert>

#include "sim/sharded.h"

namespace opera::transport {

const Flow& FlowTracker::register_flow(const Flow& flow) {
  assert(flow.size_bytes > 0);
  const auto [it, inserted] = flows_.emplace(flow.id, flow);
  assert(inserted && "duplicate flow id");
  (void)inserted;
  return it->second;
}

const Flow* FlowTracker::find(std::uint64_t id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second;
}

void FlowTracker::on_delivered(std::uint64_t id, std::int64_t bytes, sim::Time at) {
  if (!delivery_hook_) return;
  if (!lanes_.empty()) {
    // Stage into the executing shard's lane; coordinator-phase records
    // (sim::current_shard() == -1) use lane 0 — they are already globally
    // ordered, and the canonical merge re-sorts anyway.
    const int lane = std::max(0, sim::current_shard());
    lanes_[static_cast<std::size_t>(lane)].deliveries.push_back(
        StagedDelivery{id, bytes, at});
    return;
  }
  const Flow* flow = find(id);
  if (flow != nullptr) delivery_hook_(*flow, bytes, at);
}

void FlowTracker::on_complete(std::uint64_t id, sim::Time end) {
  const Flow* flow = find(id);
  assert(flow != nullptr && "completion for unknown flow");
  if (!lanes_.empty()) {
    const int lane = std::max(0, sim::current_shard());
    lanes_[static_cast<std::size_t>(lane)].completions.push_back(
        FlowRecord{*flow, end});
    return;
  }
  completions_.push_back(FlowRecord{*flow, end});
  if (hook_) hook_(completions_.back());
}

void FlowTracker::set_lanes(int n) {
  assert(completions_.empty() && "enable lanes before the run");
  lanes_.assign(static_cast<std::size_t>(n < 0 ? 0 : n), Lane{});
}

void FlowTracker::flush_lanes() {
  if (lanes_.empty()) return;

  merge_completions_.clear();
  merge_deliveries_.clear();
  for (Lane& lane : lanes_) {
    merge_completions_.insert(merge_completions_.end(),
                              std::make_move_iterator(lane.completions.begin()),
                              std::make_move_iterator(lane.completions.end()));
    lane.completions.clear();
    merge_deliveries_.insert(merge_deliveries_.end(), lane.deliveries.begin(),
                             lane.deliveries.end());
    lane.deliveries.clear();
  }
  if (!merge_completions_.empty()) {
    std::stable_sort(merge_completions_.begin(), merge_completions_.end(),
                     [](const FlowRecord& a, const FlowRecord& b) {
                       if (a.end != b.end) return a.end < b.end;
                       return a.flow.id < b.flow.id;
                     });
    for (FlowRecord& rec : merge_completions_) {
      completions_.push_back(std::move(rec));
      if (hook_) hook_(completions_.back());
    }
  }
  if (!merge_deliveries_.empty()) {
    std::stable_sort(merge_deliveries_.begin(), merge_deliveries_.end(),
                     [](const StagedDelivery& a, const StagedDelivery& b) {
                       if (a.at != b.at) return a.at < b.at;
                       return a.id < b.id;
                     });
    for (const StagedDelivery& d : merge_deliveries_) {
      const Flow* flow = find(d.id);
      if (flow != nullptr) delivery_hook_(*flow, d.bytes, d.at);
    }
  }
}

sim::PercentileSampler FlowTracker::fct_us(std::int64_t lo_bytes,
                                           std::int64_t hi_bytes) const {
  sim::PercentileSampler out;
  for (const auto& rec : completions_) {
    if (rec.flow.size_bytes >= lo_bytes && rec.flow.size_bytes < hi_bytes) {
      out.add(rec.fct().to_us());
    }
  }
  return out;
}

void FlowTracker::fingerprint(sim::Fingerprint& fp) const {
  fp.mix_u64(flows_.size());
  fp.mix_u64(next_id_);
  fp.mix_u64(completions_.size());
  for (const auto& rec : completions_) {
    fp.mix_u64(rec.flow.id);
    fp.mix_i64(rec.flow.src_host);
    fp.mix_i64(rec.flow.dst_host);
    fp.mix_i64(rec.flow.size_bytes);
    fp.mix_u64(static_cast<std::uint64_t>(rec.flow.tclass));
    fp.mix_time(rec.flow.start);
    fp.mix_time(rec.end);
  }
}

}  // namespace opera::transport

// RotorLB — the bulk transport (paper §4.2.2, after RotorNet).
//
// End hosts buffer bulk traffic in per-destination-rack virtual output
// queues and transmit only when granted capacity for a slice in which
// their ToR holds a direct circuit to the destination (admission is
// coordinated with the circuit state, §3.5). Under skew, spare direct
// capacity is used for two-hop Valiant load balancing: packets are sent to
// an intermediate rack, whose ToR buffers them and forwards on a later
// direct circuit (once-relayed traffic has priority). ToR-level drops are
// recovered with NACKs that re-enqueue the packet at the source host.
//
// Grant allocation is performed by the network controller (the Opera or
// RotorNet network classes in core/), which models the paper's
// polling-based host admission.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/host.h"
#include "net/packet.h"
#include "net/queue.h"
#include "sim/ring.h"
#include "transport/flow.h"
#include "transport/sparse_voq.h"

namespace opera::transport {

// Per-host bulk agent: VOQs of (flow, sequence-range) segments, packets
// materialized lazily at grant time so multi-gigabyte flows cost O(1)
// memory.
class RotorLbAgent {
 public:
  // `num_racks` is advisory (VOQ slots materialize on first touch; see
  // transport/sparse_voq.h) and kept for interface stability.
  RotorLbAgent(net::Host& host, FlowTracker& tracker, std::int32_t num_racks);

  // Queues a registered bulk flow for transmission.
  void add_flow(const Flow& flow);

  // Sends up to `budget_bytes` of traffic destined to `target_rack` on the
  // current direct circuit. Returns wire bytes sent.
  std::int64_t grant_direct(std::int32_t target_rack, std::int64_t budget_bytes);

  // Sends up to `budget_bytes` of traffic destined to racks *other than*
  // `relay_rack` via the direct circuit to `relay_rack` (two-hop VLB).
  // Longest VOQs are drained first. `dst_budget` (RotorLB's receiver
  // "accept" phase) caps the bytes injected toward each destination rack
  // this slice and is decremented in place. Returns wire bytes sent.
  // `allowed_dst` (optional) restricts which destinations may be relayed
  // through `relay_rack` — the controller masks destinations the relay can
  // no longer reach directly after failures.
  std::int64_t grant_vlb(std::int32_t relay_rack, std::int64_t budget_bytes,
                         std::span<std::int64_t> dst_budget,
                         const std::vector<bool>* allowed_dst = nullptr);

  // RotorLB NACK: packet `seq` of `flow_id` was dropped in-network;
  // re-enqueue it at the front of its VOQ.
  void handle_nack(std::uint64_t flow_id, std::uint64_t seq);

  [[nodiscard]] std::int64_t queued_bytes(std::int32_t rack) const {
    return voq_.bytes(rack);
  }
  [[nodiscard]] std::int64_t total_queued() const { return voq_.total_bytes(); }
  // Structural VOQ memory (the k=32 probe, like EcmpTable's).
  [[nodiscard]] std::size_t memory_bytes() const { return voq_.memory_bytes(); }
  [[nodiscard]] net::Host& host() { return host_; }

 private:
  struct Segment {
    std::uint64_t flow_id = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t end_seq = 0;  // exclusive
  };

  // Materializes and sends one packet from `seg`; returns wire bytes.
  std::int64_t emit(const Flow& flow, Segment& seg, std::int32_t relay_rack);
  std::int64_t drain_voq(std::int32_t rack, std::int64_t budget_bytes,
                         std::int32_t relay_rack);
  [[nodiscard]] std::int64_t segment_wire_bytes(const Segment& seg) const;

  net::Host& host_;
  FlowTracker& tracker_;
  SparseVoq<sim::Ring<Segment>> voq_;
};

// Receiver endpoint for a bulk flow: counts distinct packets, reports
// delivery and completion to the tracker. Reliability is hop-coordinated
// admission plus NACK-on-drop; as a backstop against lost NACKs the sink
// re-requests missing sequences when no progress is made for
// `kStallCheckInterval` (a receiver-driven retransmission timer).
class RotorLbSink {
 public:
  RotorLbSink(net::Host& host, const Flow& flow, FlowTracker& tracker);
  ~RotorLbSink();

  RotorLbSink(const RotorLbSink&) = delete;
  RotorLbSink& operator=(const RotorLbSink&) = delete;

  void on_packet(net::PacketPtr pkt);

  [[nodiscard]] bool complete() const { return received_ == flow_.total_packets(); }

  static constexpr sim::Time kStallCheckInterval = sim::Time::ms(5);
  // Missing sequences re-requested per stall check.
  static constexpr int kMaxRerequests = 64;

 private:
  void arm_stall_timer();
  void on_stall_check();

  net::Host& host_;
  Flow flow_;
  FlowTracker& tracker_;
  std::uint64_t received_ = 0;
  std::uint64_t received_at_last_check_ = 0;
  std::vector<bool> seen_;
  bool completed_reported_ = false;
  sim::EventHandle stall_timer_;
};

// ToR-side relay buffer for once-relayed (VLB) traffic awaiting a direct
// circuit to its final destination.
class RotorRelayBuffer {
 public:
  // `num_racks` is advisory: relay VOQs materialize on first touch, which
  // is what takes the per-ToR relay state from O(racks) — O(racks²)
  // across all ToRs, the k=32 blocker — to O(active destinations).
  explicit RotorRelayBuffer(std::int32_t num_racks) { (void)num_racks; }

  // Stores a relayed packet (clears its relay marking).
  void store(net::PacketPtr pkt);

  // Pops up to `budget_bytes` of packets destined to `rack`.
  [[nodiscard]] std::vector<net::PacketPtr> take(std::int32_t rack,
                                                 std::int64_t budget_bytes);

  [[nodiscard]] std::int64_t queued_bytes(std::int32_t rack) const {
    return voq_.bytes(rack);
  }
  [[nodiscard]] std::int64_t total_bytes() const { return voq_.total_bytes(); }
  [[nodiscard]] std::size_t memory_bytes() const { return voq_.memory_bytes(); }

 private:
  SparseVoq<net::PacketRing> voq_;
};

}  // namespace opera::transport

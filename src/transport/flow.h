// Flow metadata and completion tracking shared by all transports.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/checkpoint.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace opera::transport {

struct Flow {
  std::uint64_t id = 0;
  std::int32_t src_host = -1;
  std::int32_t dst_host = -1;
  std::int32_t src_rack = -1;
  std::int32_t dst_rack = -1;
  std::int64_t size_bytes = 0;
  net::TrafficClass tclass = net::TrafficClass::kLowLatency;
  sim::Time start;

  [[nodiscard]] std::uint64_t total_packets() const {
    return static_cast<std::uint64_t>(
        (size_bytes + net::kMaxPayloadBytes - 1) / net::kMaxPayloadBytes);
  }
  // Wire size of packet `seq` (header + payload; last packet may be short).
  [[nodiscard]] std::int32_t wire_bytes(std::uint64_t seq) const {
    const std::int64_t offset = static_cast<std::int64_t>(seq) * net::kMaxPayloadBytes;
    const std::int64_t payload = std::min<std::int64_t>(net::kMaxPayloadBytes,
                                                        size_bytes - offset);
    return static_cast<std::int32_t>(payload) + net::kHeaderBytes;
  }
};

struct FlowRecord {
  Flow flow;
  sim::Time end;
  [[nodiscard]] sim::Time fct() const { return end - flow.start; }
};

// Registry of flows plus completion records; experiment harnesses query it
// for FCT percentiles by flow-size bucket (the paper's Figures 7 and 9).
//
// Sharded execution: completions and deliveries happen concurrently on
// shard worker threads, so with lanes enabled (set_lanes) each record is
// staged into the calling shard's private lane and merged by flush_lanes()
// — called at every epoch barrier — in canonical (time, flow id) order.
// The merged stream is identical for any shard count: a record's time and
// flow are partition-independent, and records of one flow always land in
// one lane (its destination host's), so the stable sort preserves their
// per-flow order. Hooks fire during the merge, on the barrier thread.
class FlowTracker {
 public:
  // Called on completion (after the record is stored).
  using CompletionHook = std::function<void(const FlowRecord&)>;
  void set_completion_hook(CompletionHook hook) { hook_ = std::move(hook); }
  // Called whenever payload bytes are delivered to their final destination
  // (drives throughput-vs-time series, Figure 8).
  using DeliveryHook = std::function<void(const Flow&, std::int64_t bytes, sim::Time at)>;
  void set_delivery_hook(DeliveryHook hook) { delivery_hook_ = std::move(hook); }

  const Flow& register_flow(const Flow& flow);
  [[nodiscard]] const Flow* find(std::uint64_t id) const;

  void on_delivered(std::uint64_t id, std::int64_t bytes, sim::Time at);
  void on_complete(std::uint64_t id, sim::Time end);

  [[nodiscard]] const std::vector<FlowRecord>& completions() const { return completions_; }
  [[nodiscard]] std::size_t registered() const { return flows_.size(); }
  [[nodiscard]] std::size_t completed() const { return completions_.size(); }

  // FCTs (in microseconds) of completed flows with size in [lo, hi).
  [[nodiscard]] sim::PercentileSampler fct_us(std::int64_t lo_bytes,
                                              std::int64_t hi_bytes) const;

  [[nodiscard]] std::uint64_t next_flow_id() { return next_id_++; }

  // Checkpoint hook: registration/completion counts plus every completion
  // record in the canonical (time, flow id) merge order — which is
  // partition-invariant by the lane-merge contract above. Must be called
  // from a barrier (lanes flushed), like any completion-stream read.
  void fingerprint(sim::Fingerprint& fp) const;

  // Enables per-shard staging with `n` lanes (0 disables — the direct,
  // single-threaded path). Call before the run starts.
  void set_lanes(int n);
  // Merges every lane's staged records into the completion/delivery
  // streams in (time, flow id) order and fires the hooks. Must be called
  // from a barrier (no shard phase in flight).
  void flush_lanes();

 private:
  struct StagedDelivery {
    std::uint64_t id;
    std::int64_t bytes;
    sim::Time at;
  };
  struct Lane {
    std::vector<FlowRecord> completions;
    std::vector<StagedDelivery> deliveries;
  };

  // Keyed lookup only — never iterated. Completion/delivery order comes
  // from `completions_` (a vector in canonical merge order), so the
  // hash map's iteration order can never leak into output. opera-lint's
  // unordered-iteration rule enforces this.
  std::unordered_map<std::uint64_t, Flow> flows_;
  std::vector<FlowRecord> completions_;
  CompletionHook hook_;
  DeliveryHook delivery_hook_;
  std::uint64_t next_id_ = 1;
  std::vector<Lane> lanes_;
  std::vector<FlowRecord> merge_completions_;    // flush scratch
  std::vector<StagedDelivery> merge_deliveries_;
};

}  // namespace opera::transport

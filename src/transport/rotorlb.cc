#include "transport/rotorlb.h"

#include <algorithm>
#include <cassert>

namespace opera::transport {

RotorLbAgent::RotorLbAgent(net::Host& host, FlowTracker& tracker, std::int32_t num_racks)
    : host_(host), tracker_(tracker) {
  (void)num_racks;  // VOQ slots materialize on first touch
}

std::int64_t RotorLbAgent::segment_wire_bytes(const Segment& seg) const {
  const Flow* flow = tracker_.find(seg.flow_id);
  assert(flow != nullptr);
  std::int64_t bytes = 0;
  // Full packets plus possibly one short tail packet.
  const std::uint64_t count = seg.end_seq - seg.next_seq;
  bytes += static_cast<std::int64_t>(count) * net::kMtuBytes;
  if (seg.end_seq == flow->total_packets()) {
    bytes -= net::kMtuBytes - flow->wire_bytes(seg.end_seq - 1);
  }
  return bytes;
}

void RotorLbAgent::add_flow(const Flow& flow) {
  assert(flow.tclass == net::TrafficClass::kBulk);
  Segment seg{flow.id, 0, flow.total_packets()};
  const std::int64_t bytes = segment_wire_bytes(seg);
  voq_.queue(flow.dst_rack).push_back(seg);
  voq_.add_bytes(flow.dst_rack, bytes);
}

std::int64_t RotorLbAgent::emit(const Flow& flow, Segment& seg, std::int32_t relay_rack) {
  auto pkt = net::make_packet();
  pkt->flow_id = flow.id;
  pkt->seq = seg.next_seq++;
  pkt->src_host = flow.src_host;
  pkt->dst_host = flow.dst_host;
  pkt->src_rack = flow.src_rack;
  pkt->dst_rack = flow.dst_rack;
  pkt->size_bytes = flow.wire_bytes(pkt->seq);
  pkt->tclass = net::TrafficClass::kBulk;
  pkt->type = net::PacketType::kData;
  pkt->enqueued_at = host_.sim().now();
  if (relay_rack >= 0 && relay_rack != flow.dst_rack) {
    pkt->vlb_relay = true;
    pkt->relay_rack = relay_rack;
  }
  const std::int64_t bytes = pkt->size_bytes;
  host_.uplink().send(std::move(pkt));
  return bytes;
}

std::int64_t RotorLbAgent::drain_voq(std::int32_t rack, std::int64_t budget_bytes,
                                     std::int32_t relay_rack) {
  auto* s = voq_.find(rack);
  if (s == nullptr) return 0;
  auto& q = s->queue;
  std::int64_t sent = 0;
  while (!q.empty() && sent < budget_bytes) {
    Segment& seg = q.front();
    const Flow* flow = tracker_.find(seg.flow_id);
    assert(flow != nullptr);
    while (seg.next_seq < seg.end_seq && sent < budget_bytes) {
      sent += emit(*flow, seg, relay_rack);
    }
    if (seg.next_seq == seg.end_seq) (void)q.pop_front();
  }
  voq_.add_bytes(rack, -sent);
  return sent;
}

std::int64_t RotorLbAgent::grant_direct(std::int32_t target_rack,
                                        std::int64_t budget_bytes) {
  return drain_voq(target_rack, budget_bytes, /*relay_rack=*/-1);
}

std::int64_t RotorLbAgent::grant_vlb(std::int32_t relay_rack, std::int64_t budget_bytes,
                                     std::span<std::int64_t> dst_budget,
                                     const std::vector<bool>* allowed_dst) {
  std::int64_t sent = 0;
  while (sent < budget_bytes) {
    // Longest VOQ first (skewed demand is exactly when VLB helps), among
    // destinations whose receivers still accept bytes this slice. The
    // active-list scan visits only materialized slots; ties go to the
    // lowest rack id, reproducing the dense array's left-to-right
    // strict-max scan exactly.
    std::int32_t best = -1;
    std::int64_t best_bytes = 0;
    for (const auto& s : voq_) {
      const auto r = static_cast<std::size_t>(s.rack);
      if (s.rack == relay_rack) continue;
      if (dst_budget[r] <= 0) continue;
      if (allowed_dst != nullptr && !(*allowed_dst)[r]) continue;
      if (s.bytes > best_bytes ||
          (s.bytes == best_bytes && best >= 0 && s.rack < best)) {
        best_bytes = s.bytes;
        best = s.rack;
      }
    }
    if (best < 0) break;
    const std::int64_t want = std::min(budget_bytes - sent,
                                       dst_budget[static_cast<std::size_t>(best)]);
    const std::int64_t drained = drain_voq(best, want, relay_rack);
    if (drained == 0) break;
    dst_budget[static_cast<std::size_t>(best)] -= drained;
    sent += drained;
  }
  return sent;
}

void RotorLbAgent::handle_nack(std::uint64_t flow_id, std::uint64_t seq) {
  const Flow* flow = tracker_.find(flow_id);
  if (flow == nullptr) return;
  Segment seg{flow_id, seq, seq + 1};
  const std::int64_t bytes = flow->wire_bytes(seq);
  voq_.queue(flow->dst_rack).push_front(seg);
  voq_.add_bytes(flow->dst_rack, bytes);
}

RotorLbSink::RotorLbSink(net::Host& host, const Flow& flow, FlowTracker& tracker)
    : host_(host), flow_(flow), tracker_(tracker) {
  seen_.assign(flow_.total_packets(), false);
  arm_stall_timer();
}

RotorLbSink::~RotorLbSink() { stall_timer_.cancel(); }

void RotorLbSink::on_packet(net::PacketPtr pkt) {
  if (pkt->type != net::PacketType::kData) return;
  if (seen_[pkt->seq]) return;
  seen_[pkt->seq] = true;
  ++received_;
  tracker_.on_delivered(flow_.id, pkt->size_bytes - net::kHeaderBytes,
                        host_.sim().now());
  if (complete() && !completed_reported_) {
    completed_reported_ = true;
    stall_timer_.cancel();
    tracker_.on_complete(flow_.id, host_.sim().now());
  }
}

void RotorLbSink::arm_stall_timer() {
  stall_timer_ = host_.sim().schedule_in(kStallCheckInterval,
                                         [this] { on_stall_check(); });
}

void RotorLbSink::on_stall_check() {
  if (complete()) return;
  if (received_ == received_at_last_check_) {
    // No progress for a full interval: NACK the first missing sequences so
    // the source re-enqueues them (covers lost in-band NACKs).
    int sent = 0;
    for (std::uint64_t seq = 0; seq < seen_.size() && sent < kMaxRerequests; ++seq) {
      if (seen_[seq]) continue;
      auto nack = net::make_packet();
      nack->flow_id = flow_.id;
      nack->seq = seq;
      nack->src_host = flow_.dst_host;
      nack->dst_host = flow_.src_host;
      nack->src_rack = flow_.dst_rack;
      nack->dst_rack = flow_.src_rack;
      nack->size_bytes = net::kHeaderBytes;
      nack->tclass = net::TrafficClass::kLowLatency;
      nack->type = net::PacketType::kNack;
      host_.uplink().send(std::move(nack));
      ++sent;
    }
  }
  received_at_last_check_ = received_;
  arm_stall_timer();
}

void RotorRelayBuffer::store(net::PacketPtr pkt) {
  pkt->vlb_relay = false;
  pkt->relay_rack = -1;
  const std::int32_t rack = pkt->dst_rack;
  voq_.add_bytes(rack, pkt->size_bytes);
  voq_.queue(rack).push_back(std::move(pkt));
}

std::vector<net::PacketPtr> RotorRelayBuffer::take(std::int32_t rack,
                                                   std::int64_t budget_bytes) {
  std::vector<net::PacketPtr> out;
  auto* s = voq_.find(rack);
  if (s == nullptr) return out;
  auto& q = s->queue;
  std::int64_t taken = 0;
  while (!q.empty() && taken + q.front()->size_bytes <= budget_bytes) {
    taken += q.front()->size_bytes;
    out.push_back(q.pop_front());
  }
  voq_.add_bytes(rack, -taken);
  return out;
}

}  // namespace opera::transport

#include "transport/ndp.h"

#include <cassert>

namespace opera::transport {

NdpSource::NdpSource(net::Host& host, const Flow& flow, FlowTracker& tracker,
                     const NdpConfig& config)
    : host_(host), flow_(flow), tracker_(tracker), config_(config) {
  acked_seq_.assign(flow_.total_packets(), false);
  host_.register_flow(flow_.id, [this](net::PacketPtr pkt) { on_packet(std::move(pkt)); });
}

NdpSource::~NdpSource() {
  timer_.cancel();
  host_.unregister_flow(flow_.id);
}

void NdpSource::start() {
  const std::uint64_t window = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(config_.initial_window_packets), flow_.total_packets());
  for (std::uint64_t i = 0; i < window; ++i) send_next();
  arm_timer();
}

void NdpSource::send_seq(std::uint64_t seq) {
  auto pkt = net::make_packet();
  pkt->flow_id = flow_.id;
  pkt->seq = seq;
  pkt->src_host = flow_.src_host;
  pkt->dst_host = flow_.dst_host;
  pkt->src_rack = flow_.src_rack;
  pkt->dst_rack = flow_.dst_rack;
  pkt->size_bytes = flow_.wire_bytes(seq);
  pkt->tclass = flow_.tclass;
  pkt->type = net::PacketType::kData;
  pkt->enqueued_at = host_.sim().now();
  host_.uplink().send(std::move(pkt));
}

void NdpSource::send_next() {
  // Retransmissions first (most recent NACK first — it is the freshest
  // information about loss), then new data.
  while (!retransmit_.empty()) {
    const std::uint64_t seq = retransmit_.back();
    retransmit_.pop_back();
    if (acked_seq_[seq]) continue;  // raced with a late ACK
    send_seq(seq);
    return;
  }
  if (next_new_ < flow_.total_packets()) {
    send_seq(next_new_++);
  }
}

void NdpSource::on_packet(net::PacketPtr pkt) {
  switch (pkt->type) {
    case net::PacketType::kAck:
      if (!acked_seq_[pkt->seq]) {
        acked_seq_[pkt->seq] = true;
        ++acked_;
        if (complete()) {
          done_ = true;
          timer_.cancel();
        } else {
          arm_timer();
        }
      }
      break;
    case net::PacketType::kNack:
      if (!acked_seq_[pkt->seq]) retransmit_.push_back(pkt->seq);
      arm_timer();
      break;
    case net::PacketType::kPull:
      send_next();
      break;
    default:
      break;  // data addressed to a source: stray, ignore
  }
}

void NdpSource::arm_timer() {
  timer_.cancel();
  timer_ = host_.sim().schedule_in(config_.fallback_rto, [this] { on_timer(); });
}

void NdpSource::on_timer() {
  if (done_) return;
  // Control-packet loss fallback: resend the lowest unacked sequence.
  for (std::uint64_t seq = 0; seq < flow_.total_packets(); ++seq) {
    if (!acked_seq_[seq]) {
      send_seq(seq);
      break;
    }
  }
  arm_timer();
}

NdpSink::NdpSink(net::Host& host, const Flow& flow, FlowTracker& tracker)
    : host_(host), flow_(flow), tracker_(tracker) {
  seen_.assign(flow_.total_packets(), false);
}

NdpSink::~NdpSink() = default;

void NdpSink::on_packet(net::PacketPtr pkt) {
  if (pkt->type == net::PacketType::kData) {
    if (!seen_[pkt->seq]) {
      seen_[pkt->seq] = true;
      ++received_;
      tracker_.on_delivered(flow_.id, pkt->size_bytes - net::kHeaderBytes,
                            host_.sim().now());
    }
    // ACK immediately; PULL through the pacer (even for duplicates, to keep
    // the sender's self-clock running).
    host_.uplink().send(net::make_control(*pkt, net::PacketType::kAck));
    if (!complete()) {
      host_.pace_control(net::make_control(*pkt, net::PacketType::kPull));
    } else if (!completed_reported_) {
      completed_reported_ = true;
      tracker_.on_complete(flow_.id, host_.sim().now());
    }
    return;
  }
  if (pkt->type == net::PacketType::kHeader) {
    // Trimmed: NACK immediately so the source can retransmit, and PULL to
    // keep the window moving.
    host_.uplink().send(net::make_control(*pkt, net::PacketType::kNack));
    host_.pace_control(net::make_control(*pkt, net::PacketType::kPull));
  }
}

void install_ndp_sink_factory(net::Host& host, FlowTracker& tracker,
                              std::vector<std::unique_ptr<NdpSink>>& sinks) {
  host.set_default_handler([&tracker, &sinks](net::Host& h, net::PacketPtr pkt) {
    if (pkt->type != net::PacketType::kData && pkt->type != net::PacketType::kHeader) {
      return;  // stray control for a finished flow
    }
    const Flow* flow = tracker.find(pkt->flow_id);
    if (flow == nullptr) return;
    auto sink = std::make_unique<NdpSink>(h, *flow, tracker);
    NdpSink* raw = sink.get();
    sinks.push_back(std::move(sink));
    h.register_flow(flow->id, [raw](net::PacketPtr p) { raw->on_packet(std::move(p)); });
    raw->on_packet(std::move(pkt));
  });
}

}  // namespace opera::transport

#include "sim/time.h"

#include <gtest/gtest.h>

namespace opera::sim {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(Time::ns(1).picoseconds(), 1'000);
  EXPECT_EQ(Time::us(1).picoseconds(), 1'000'000);
  EXPECT_EQ(Time::ms(1).picoseconds(), 1'000'000'000);
  EXPECT_EQ(Time::sec(1).picoseconds(), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ(Time::ms(250).to_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Time::us(90).to_us(), 90.0);
}

TEST(Time, Arithmetic) {
  const Time a = Time::us(10);
  const Time b = Time::us(4);
  EXPECT_EQ((a + b).to_us(), 14.0);
  EXPECT_EQ((a - b).to_us(), 6.0);
  EXPECT_EQ((a * 3).to_us(), 30.0);
  EXPECT_EQ((a / 2).to_us(), 5.0);
  EXPECT_EQ(a / b, 2);           // integer ratio
  EXPECT_EQ((a % b).to_us(), 2.0);
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::ns(999), Time::us(1));
  EXPECT_EQ(Time::us(1000), Time::ms(1));
  EXPECT_GT(Time::infinity(), Time::sec(1'000'000));
  EXPECT_EQ(Time::zero().picoseconds(), 0);
}

TEST(Time, TransmissionDelay) {
  // 1500 bytes at 10 Gb/s = 1.2 us.
  EXPECT_EQ(Time::transmission(1500, 10e9).to_ns(), 1200.0);
  // 64 bytes at 10 Gb/s = 51.2 ns.
  EXPECT_DOUBLE_EQ(Time::transmission(64, 10e9).to_ns(), 51.2);
  // 1500 bytes at 100 Gb/s = 120 ns.
  EXPECT_EQ(Time::transmission(1500, 100e9).to_ns(), 120.0);
}

TEST(Time, FractionalConstructors) {
  EXPECT_EQ(Time::from_us(1.5).picoseconds(), 1'500'000);
  EXPECT_EQ(Time::from_seconds(0.001).picoseconds(), 1'000'000'000);
}

TEST(Time, ToString) {
  EXPECT_EQ(Time::us(90).to_string(), "90.000us");
  EXPECT_EQ(Time::ms(11).to_string(), "11.000ms");
  EXPECT_EQ(Time::ns(500).to_string(), "500.000ns");
  EXPECT_EQ(Time::ps(7).to_string(), "7ps");
}

TEST(Time, CompoundAssignment) {
  Time t = Time::us(1);
  t += Time::us(2);
  EXPECT_EQ(t, Time::us(3));
  t -= Time::ns(500);
  EXPECT_EQ(t.picoseconds(), 2'500'000);
}

}  // namespace
}  // namespace opera::sim

// ShardedSimulator unit tests: mailbox ordering, epoch-horizon safety,
// global-event alignment, idle fast-forward, and the worker pool.
#include "sim/sharded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/parallel.h"
#include "sim/worker_pool.h"

namespace opera::sim {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, NestedRunExecutesInline) {
  WorkerPool pool(4);
  std::atomic<int> total{0};
  pool.run(8, [&](std::size_t) {
    // A task that itself fans out must not deadlock on the pool.
    WorkerPool::shared().run(16, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(WorkerPool, PropagatesFirstException) {
  WorkerPool pool(3);
  EXPECT_THROW(
      pool.run(64, [&](std::size_t i) {
        if (i == 13) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ParallelFor, StillCoversRangeOnSharedPool) {
  std::vector<int> out(513, 0);
  parallel_for(out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ShardedSimulator, RejectsZeroLookaheadMultiShard) {
  // Zero lookahead would make every epoch window empty — the loop could
  // never advance. Must fail loudly (also in release), not livelock.
  EXPECT_THROW(ShardedSimulator(2, Time::zero()), std::invalid_argument);
  ShardedSimulator single(1, Time::zero());  // 1 shard needs no lookahead
  int fired = 0;
  single.seed(0, Time::us(1), [&] { ++fired; });
  single.run_until(Time::us(2));
  EXPECT_EQ(fired, 1);
}

TEST(ShardedSimulator, CrossShardPostDeliversAtExactTime) {
  ShardedSimulator engine(2, Time::us(1));
  std::vector<std::pair<int, Time>> log;
  engine.seed(0, Time::us(3), [&] {
    engine.shard(0).post(engine.shard(1), engine.shard(0).now() + Time::us(1),
                         [&] { log.emplace_back(1, engine.shard(1).now()); });
    log.emplace_back(0, engine.shard(0).now());
  });
  engine.run_until(Time::us(10));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair<int, Time>{0, Time::us(3)}));
  EXPECT_EQ(log[1], (std::pair<int, Time>{1, Time::us(4)}));
}

TEST(ShardedSimulator, HorizonMinusEpsilonIsDeliveredNextEpochNeverDropped) {
  // An event sent cross-shard for the earliest legal instant — exactly one
  // lookahead ahead, i.e. the next epoch's horizon — must execute, at its
  // exact timestamp, even when the sender fires at the very end of its
  // epoch (the horizon - epsilon case).
  const Time lookahead = Time::us(1);
  ShardedSimulator engine(2, lookahead);
  std::vector<Time> delivered;
  // Sender event just below an epoch boundary: epochs start at 0, so run
  // one shard event at 999ns (inside epoch [0, 1us)).
  const Time send_at = Time::ns(999);
  engine.seed(0, send_at, [&] {
    engine.shard(0).post(engine.shard(1), send_at + lookahead,
                         [&] { delivered.push_back(engine.shard(1).now()); });
  });
  engine.run_until(Time::us(5));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], send_at + lookahead);
}

TEST(ShardedSimulator, EqualTimeCrossShardEventsOrderByKeyNotArrival) {
  // Two shards each send the other an equal-time event; a third local
  // event ties with them. Execution order at the shared timestamp must be
  // the (deterministic) key order, not mailbox-drain or schedule order —
  // run twice with different shard counts mapping the same domains and
  // compare.
  auto run_once = [](int shards) {
    ShardedSimulator engine(shards, Time::us(1));
    std::vector<int> order;
    const Time t0 = Time::us(2);
    const Time at = Time::us(4);
    const int dst_shard = shards > 1 ? 1 : 0;
    engine.seed(0, t0, [&engine, &order, at, dst_shard] {
      engine.shard(0).post(engine.shard(dst_shard), at,
                           [&order] { order.push_back(100); });
    });
    engine.seed(dst_shard, t0, [&engine, &order, at, dst_shard] {
      engine.shard(dst_shard).post(engine.shard(dst_shard), at,
                                   [&order] { order.push_back(200); });
    });
    engine.seed(dst_shard, at, [&order] { order.push_back(300); });
    engine.run_until(Time::us(10));
    return order;
  };
  const auto sharded = run_once(2);
  const auto single = run_once(1);
  ASSERT_EQ(sharded.size(), 3u);
  EXPECT_EQ(sharded, single);
}

TEST(ShardedSimulator, GlobalEventsRunBeforeShardEventsAtSameTime) {
  ShardedSimulator engine(2, Time::us(1));
  std::vector<int> order;
  const Time at = Time::us(3);
  engine.seed(1, at, [&] { order.push_back(2); });
  engine.global().schedule_at(at, [&] { order.push_back(1); });
  engine.run_until(Time::us(5));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ShardedSimulator, RunUntilIsInclusiveAtHorizon) {
  ShardedSimulator engine(2, Time::us(1));
  int fired = 0;
  engine.seed(0, Time::us(7), [&] { ++fired; });
  engine.seed(1, Time::us(7), [&] { ++fired; });
  engine.run_until(Time::us(7));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), Time::us(7));
}

TEST(ShardedSimulator, IdleGapsFastForwardWithoutDriftingTimestamps) {
  // Sparse events many lookaheads apart must still fire at exact times
  // (the idle fast-forward may not skip or round them).
  ShardedSimulator engine(2, Time::ns(500));
  std::vector<Time> fired;
  engine.seed(0, Time::ms(2), [&] { fired.push_back(engine.shard(0).now()); });
  engine.seed(1, Time::ms(5), [&] { fired.push_back(engine.shard(1).now()); });
  const std::uint64_t events = engine.run_until(Time::ms(6));
  EXPECT_EQ(events, 2u);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], Time::ms(2));
  EXPECT_EQ(fired[1], Time::ms(5));
}

TEST(ShardedSimulator, StopFromGlobalEventHaltsEpochLoop) {
  ShardedSimulator engine(2, Time::us(1));
  int shard_events = 0;
  for (int i = 1; i <= 100; ++i) {
    engine.seed(i % 2, Time::us(i), [&] { ++shard_events; });
  }
  engine.global().schedule_at(Time::us(10), [&] { engine.global().stop(); });
  engine.run_until(Time::ms(1));
  // Events strictly before the stop instant ran; the tail did not.
  EXPECT_LT(shard_events, 100);
  EXPECT_GE(shard_events, 9);
  EXPECT_LE(engine.now(), Time::us(10));
}

TEST(ShardedSimulator, BarrierHookRunsBetweenEpochs) {
  ShardedSimulator engine(2, Time::us(1));
  int hooks = 0;
  engine.set_barrier_hook([&] { ++hooks; });
  engine.seed(0, Time::us(1), [] {});
  engine.seed(1, Time::us(2), [] {});
  engine.run_until(Time::us(3));
  EXPECT_GE(hooks, 2);
}

TEST(ShardedSimulator, SeededRootsKeepSubmissionOrderAtEqualTimes) {
  // Equal-time seeds on the same shard fire in submission order under any
  // shard count (the partition-independent root key space).
  for (int shards : {1, 2, 4}) {
    ShardedSimulator engine(shards, Time::us(1));
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      engine.seed(0, Time::us(1), [&order, i] { order.push_back(i); });
    }
    engine.run_until(Time::us(2));
    std::vector<int> expect(8);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace opera::sim

// Failure storms (exp/scenario + core fault injection): the last-path
// safety property on the abstract storm timeline, gray-loss statistics
// against their binomial model, recovery restoring the pre-storm
// baseline, and the whole armed storm+gray+skew suite staying
// bit-identical across --threads ∈ {1, 2, 4} (the ShardParity contract
// extended to scenario runs).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/opera_network.h"
#include "exp/scenario.h"
#include "sim/rng.h"

namespace opera {
namespace {

core::OperaConfig small_opera(topo::Vertex racks, int u, int hosts_per_rack) {
  core::OperaConfig cfg;
  cfg.topology.num_racks = racks;
  cfg.topology.num_switches = u;
  cfg.topology.hosts_per_rack = hosts_per_rack;
  cfg.topology.seed = 3;
  // Low threshold so 600 KB elephants ride the RotorLB bulk path (same
  // testbed convention as test_shard_parity.cc).
  cfg.bulk_threshold_bytes = 100'000;
  return cfg;
}

exp::ScenarioSpec parse_one(const std::string& text) {
  const auto r = exp::parse_scenario(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.error;
  return r.specs.empty() ? exp::ScenarioSpec{} : r.specs.front();
}

// The mixed mouse/elephant workload from test_shard_parity.cc: enough
// traffic to exercise low-latency, bulk, and VLB paths.
void submit_mixed(core::OperaNetwork& net, int flows = 160) {
  sim::Rng wl(99);
  const auto hosts = static_cast<std::size_t>(net.num_hosts());
  for (int i = 0; i < flows; ++i) {
    const auto src = static_cast<std::int32_t>(wl.index(hosts));
    auto dst = static_cast<std::int32_t>(wl.index(hosts));
    while (dst == src) dst = static_cast<std::int32_t>(wl.index(hosts));
    const std::int64_t bytes = (i % 4 == 0) ? 600'000 : 20'000;
    net.submit_flow(src, dst, bytes, sim::Time::us(5 * i));
  }
}

// ---------------------------------------------------------------------------
// Last-path property (validate_scenario's abstract timeline replay).
// ---------------------------------------------------------------------------

TEST(FailureStorms, StormMayNotKillEveryRacksLastPath) {
  const auto config = core::FabricConfig::make(core::FabricKind::kOpera).scale(16, 4);
  // All 4 rotor switches down with no recovery: every rack partitioned.
  const auto all_down =
      parse_one("storm-rolling:switches=4,period-ms=1,recover-ms=0");
  const std::string err = exp::validate_scenario(all_down, config);
  EXPECT_NE(err.find("last path"), std::string::npos) << err;
  EXPECT_NE(err.find("partitionable=1"), std::string::npos) << err;

  // The same storm declared partitionable is accepted.
  EXPECT_EQ(exp::validate_scenario(
                parse_one("storm-rolling:switches=4,period-ms=1,recover-ms=0,"
                          "partitionable=1"),
                config),
            "");

  // Rolling through all 4 switches is fine when outages never overlap
  // enough: each recovers before the fourth goes dark.
  EXPECT_EQ(exp::validate_scenario(
                parse_one("storm-rolling:switches=4,period-ms=5,recover-ms=3"),
                config),
            "");
}

TEST(FailureStorms, TransientAllDarkMomentIsStillRejected) {
  // Failures at 1,2,3,4 ms; recoveries at 4,5,6,7 ms. At t=4 the fourth
  // failure and the first recovery coincide — failures order first, so
  // for an instant all 4 switches are dark. The validator must catch it.
  const auto config = core::FabricConfig::make(core::FabricKind::kOpera).scale(16, 4);
  const auto storm =
      parse_one("storm-rolling:switches=4,period-ms=1,recover-ms=3");
  const std::string err = exp::validate_scenario(storm, config);
  EXPECT_NE(err.find("4 rotor switches down at 4 ms"), std::string::npos) << err;
}

TEST(FailureStorms, SingleSwitchFabricRejectsRackStorms) {
  // With u=1 the shared uplink is every rack's only path.
  const auto config = core::FabricConfig::make(core::FabricKind::kOpera).scale(8, 1);
  const std::string err = exp::validate_scenario(parse_one("storm-racks:switch=0"),
                                                 config);
  EXPECT_NE(err.find("last"), std::string::npos) << err;
  EXPECT_EQ(exp::validate_scenario(
                parse_one("storm-racks:switch=0,partitionable=1"), config),
            "");
}

// ---------------------------------------------------------------------------
// Gray failures.
// ---------------------------------------------------------------------------

TEST(FailureStorms, GrayLossMatchesTheBinomialModel) {
  core::OperaNetwork net(small_opera(16, 4, 4));
  const double loss = 0.05;
  // Degrade every uplink in the fabric so every inter-rack transmission
  // tosses the coin.
  for (std::int32_t rack = 0; rack < 16; ++rack) {
    for (int sw = 0; sw < 4; ++sw) {
      net.inject_gray_uplink(rack, sw, loss, sim::Time::us(5));
    }
  }
  submit_mixed(net);
  net.run_until(sim::Time::ms(100));

  std::int64_t tested = 0;
  std::int64_t drops = 0;
  for (std::int32_t rack = 0; rack < 16; ++rack) {
    for (int sw = 0; sw < 4; ++sw) {
      const auto& port = net.tor(rack).port(/*hosts_per_rack=*/4 + sw);
      tested += port.gray_tested();
      drops += port.gray_drops();
    }
  }
  ASSERT_GT(tested, 2000) << "workload did not exercise the uplinks";
  // The per-packet hash coin must behave like iid Bernoulli(loss): the
  // observed drop count stays within 4.5 sigma of the mean. The run is
  // deterministic, so this documents the distribution rather than
  // flaking — a biased hash (e.g. reusing the verdict per packet id)
  // shows up here as a wildly out-of-band count.
  const double expected = static_cast<double>(tested) * loss;
  const double sigma = std::sqrt(static_cast<double>(tested) * loss * (1 - loss));
  EXPECT_NEAR(static_cast<double>(drops), expected, 4.5 * sigma + 1.0);
  // And the network-level counter aggregates the same drops.
  EXPECT_EQ(net.tor_stats().wire_drops, static_cast<std::uint64_t>(drops));
  // Transports recover from wire loss: the run still completes.
  EXPECT_EQ(net.tracker().completed(), 160u);
}

TEST(FailureStorms, GrayLossInflatesFctAgainstACleanRun) {
  // Same workload with and without gray links; loss shows up as FCT
  // inflation, not hangs — the behavior no fail-stop scenario exhibits.
  core::OperaConfig cfg = small_opera(16, 4, 4);
  core::OperaNetwork clean(cfg);
  submit_mixed(clean);
  clean.run_until(sim::Time::ms(100));

  core::OperaNetwork gray(cfg);
  for (std::int32_t rack = 0; rack < 16; ++rack) {
    for (int sw = 0; sw < 4; ++sw) {
      gray.inject_gray_uplink(rack, sw, 0.05, sim::Time::us(5));
    }
  }
  submit_mixed(gray);
  gray.run_until(sim::Time::ms(100));

  ASSERT_EQ(clean.tracker().completed(), 160u);
  ASSERT_EQ(gray.tracker().completed(), 160u);
  const auto clean_fct = clean.tracker().fct_us(0, 1'000'000'000);
  const auto gray_fct = gray.tracker().fct_us(0, 1'000'000'000);
  EXPECT_GT(gray_fct.percentile(50), clean_fct.percentile(50));
  EXPECT_GT(gray.tor_stats().wire_drops, 0u);
  EXPECT_EQ(clean.tor_stats().wire_drops, 0u);
}

TEST(FailureStorms, ClearingGrayRestoresService) {
  // loss=1.0 blackholes every uplink of racks 0 and 1 without touching
  // routing (the gray premise: tables still use the link). Nothing can
  // leave those racks until the optics are replaced at 2 ms.
  core::OperaNetwork net(small_opera(16, 4, 4));
  for (std::int32_t rack = 0; rack < 2; ++rack) {
    for (int sw = 0; sw < 4; ++sw) {
      net.inject_gray_uplink(rack, sw, 1.0, sim::Time::zero());
    }
  }
  for (int i = 0; i < 8; ++i) {
    net.submit_flow(i, 32 + i, 20'000, sim::Time::us(10 * i));
  }
  net.sim().schedule_at(sim::Time::ms(2), [&net] {
    for (std::int32_t rack = 0; rack < 2; ++rack) {
      for (int sw = 0; sw < 4; ++sw) net.clear_gray_uplink(rack, sw);
    }
  });
  net.run_until(sim::Time::ms(2));
  EXPECT_EQ(net.tracker().completed(), 0u);
  const auto mid_drops = net.tor_stats().wire_drops;
  EXPECT_GT(mid_drops, 0u);
  net.run_until(sim::Time::ms(30));
  EXPECT_EQ(net.tracker().completed(), 8u);
  // Cleared ports stop tossing coins entirely.
  EXPECT_EQ(net.tor_stats().wire_drops, mid_drops);
}

// ---------------------------------------------------------------------------
// Recovery restores the baseline.
// ---------------------------------------------------------------------------

TEST(FailureStorms, RecoveredFabricMatchesTheNeverFailedBaseline) {
  // A storm that fully recovers before any traffic starts must leave the
  // fabric byte-for-byte equivalent to one that never failed: identical
  // completion stream and identical ToR drop counters. This is the
  // strongest form of "recovery restores baseline ToR counters".
  core::OperaConfig cfg = small_opera(16, 4, 4);
  const auto run = [&cfg](bool storm) {
    core::OperaNetwork net(cfg);
    if (storm) {
      net.sim().schedule_at(sim::Time::ms(1), [&net] {
        net.inject_switch_failure(2);
        net.inject_uplink_failure(3, 1);
      });
      net.sim().schedule_at(sim::Time::ms(4), [&net] {
        net.recover_switch(2);
        net.recover_uplink(3, 1);
      });
    }
    // Traffic starts at 10 ms — well past recovery (4 ms) plus the
    // one-cycle hello-protocol reconvergence (16 x 99 us ~ 1.6 ms).
    sim::Rng wl(42);
    for (int i = 0; i < 120; ++i) {
      const auto src = static_cast<std::int32_t>(wl.index(64));
      auto dst = static_cast<std::int32_t>(wl.index(64));
      while (dst == src) dst = static_cast<std::int32_t>(wl.index(64));
      const std::int64_t bytes = (i % 4 == 0) ? 600'000 : 20'000;
      net.submit_flow(src, dst, bytes, sim::Time::ms(10) + sim::Time::us(5 * i));
    }
    net.run_until(sim::Time::ms(50));
    struct Outcome {
      std::vector<std::int64_t> ends;
      core::OperaNetwork::TorStats stats;
      std::size_t completed;
      bool all_clear;
    } out;
    for (const auto& rec : net.tracker().completions()) {
      out.ends.push_back(rec.end.picoseconds());
    }
    out.stats = net.tor_stats();
    out.completed = net.tracker().completed();
    out.all_clear = true;
    for (int sw = 0; sw < 4; ++sw) {
      if (net.failures().switch_failed[static_cast<std::size_t>(sw)]) {
        out.all_clear = false;
      }
    }
    return out;
  };

  const auto baseline = run(false);
  const auto recovered = run(true);
  ASSERT_EQ(baseline.completed, 120u);
  EXPECT_EQ(recovered.completed, 120u);
  EXPECT_TRUE(recovered.all_clear);
  EXPECT_EQ(baseline.ends, recovered.ends)
      << "post-recovery fabric routes differently from a never-failed one";
  EXPECT_EQ(baseline.stats.drops, recovered.stats.drops);
  EXPECT_EQ(baseline.stats.trims, recovered.stats.trims);
  EXPECT_EQ(baseline.stats.forward_drops, recovered.stats.forward_drops);
  EXPECT_EQ(baseline.stats.wire_drops, recovered.stats.wire_drops);
}

TEST(FailureStorms, TrafficSurvivesAStormWithMidStreamRecovery) {
  // Flows in flight across failure and recovery: everything completes.
  core::OperaNetwork net(small_opera(16, 4, 4));
  submit_mixed(net);
  const auto suite = exp::parse_scenarios(
      "storm-rolling:switches=2,start-ms=1,period-ms=2,recover-ms=5");
  ASSERT_TRUE(suite.ok()) << suite.error;
  for (const auto& spec : suite.specs) exp::arm_scenario(spec, net);
  net.run_until(sim::Time::ms(100));
  EXPECT_EQ(net.tracker().completed(), 160u);
}

// ---------------------------------------------------------------------------
// Sharded determinism: the ShardParity contract for armed scenarios.
// ---------------------------------------------------------------------------

struct Completion {
  std::uint64_t id;
  std::int64_t start_ps;
  std::int64_t end_ps;
  bool operator==(const Completion&) const = default;
};

struct RunOutput {
  std::vector<Completion> completions;
  std::uint64_t trims = 0;
  std::uint64_t drops = 0;
  std::uint64_t forward_drops = 0;
  std::uint64_t wire_drops = 0;
  std::uint64_t events = 0;
  bool operator==(const RunOutput&) const = default;
};

RunOutput run_storm_suite(const core::OperaConfig& base, int threads) {
  core::OperaConfig cfg = base;
  cfg.threads = threads;
  core::OperaNetwork net(cfg);
  EXPECT_EQ(net.num_shards(), std::min<int>(threads, net.num_racks()));

  // Rolling storm + gray links + a desynced rotor, all armed through the
  // declarative layer exactly as bench_custom --scenario does.
  const auto suite = exp::parse_scenarios(
      "storm-rolling:switches=2,start-ms=1,period-ms=2,recover-ms=5;"
      "gray:links=6,loss=0.05,extra-us=20,start-ms=0,recover-ms=15;"
      "skew:switch=3,extra-us=40,slices=30,start-ms=2");
  EXPECT_TRUE(suite.ok()) << suite.error;
  const auto config = core::FabricConfig::make(core::FabricKind::kOpera).scale(16, 4);
  for (const auto& spec : suite.specs) {
    EXPECT_EQ(exp::validate_scenario(spec, config), "");
    exp::arm_scenario(spec, net);
  }
  submit_mixed(net);
  net.run_until(sim::Time::ms(40));

  RunOutput out;
  for (const auto& rec : net.tracker().completions()) {
    out.completions.push_back(Completion{rec.flow.id, rec.flow.start.picoseconds(),
                                         rec.end.picoseconds()});
  }
  const auto stats = net.tor_stats();
  out.trims = stats.trims;
  out.drops = stats.drops;
  out.forward_drops = stats.forward_drops;
  out.wire_drops = stats.wire_drops;
  out.events = net.engine().events_executed();
  return out;
}

TEST(FailureStorms, StormSuiteBitIdenticalAcrossThreads) {
  const core::OperaConfig cfg = small_opera(16, 4, 4);
  const RunOutput one = run_storm_suite(cfg, 1);
  ASSERT_FALSE(one.completions.empty());
  ASSERT_GT(one.wire_drops, 0u) << "gray links saw no traffic";
  for (const int threads : {2, 4}) {
    const RunOutput sharded = run_storm_suite(cfg, threads);
    ASSERT_EQ(one.completions.size(), sharded.completions.size())
        << "threads=" << threads;
    for (std::size_t i = 0; i < one.completions.size(); ++i) {
      ASSERT_EQ(one.completions[i], sharded.completions[i])
          << "threads=" << threads << ": completion " << i;
    }
    EXPECT_EQ(one.trims, sharded.trims) << "threads=" << threads;
    EXPECT_EQ(one.drops, sharded.drops) << "threads=" << threads;
    EXPECT_EQ(one.forward_drops, sharded.forward_drops) << "threads=" << threads;
    EXPECT_EQ(one.wire_drops, sharded.wire_drops) << "threads=" << threads;
    EXPECT_EQ(one.events, sharded.events) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace opera

#include "net/packet.h"

#include <gtest/gtest.h>

namespace opera::net {
namespace {

TEST(Packet, MakeControlSwapsEndpoints) {
  Packet data;
  data.flow_id = 7;
  data.seq = 42;
  data.src_host = 3;
  data.dst_host = 9;
  data.src_rack = 1;
  data.dst_rack = 2;
  data.size_bytes = 1500;
  data.tclass = TrafficClass::kBulk;
  data.type = PacketType::kData;

  const auto nack = make_control(data, PacketType::kNack);
  EXPECT_EQ(nack->flow_id, 7u);
  EXPECT_EQ(nack->seq, 42u);
  EXPECT_EQ(nack->src_host, 9);
  EXPECT_EQ(nack->dst_host, 3);
  EXPECT_EQ(nack->src_rack, 2);
  EXPECT_EQ(nack->dst_rack, 1);
  EXPECT_EQ(nack->size_bytes, kHeaderBytes);
  EXPECT_EQ(nack->type, PacketType::kNack);
  // Control always rides the low-latency class.
  EXPECT_EQ(nack->tclass, TrafficClass::kLowLatency);
}

TEST(Packet, Constants) {
  EXPECT_EQ(kMtuBytes, 1500);
  EXPECT_EQ(kHeaderBytes, 64);
  EXPECT_EQ(kMaxPayloadBytes, 1436);
}

TEST(Packet, DefaultsAreSane) {
  Packet p;
  EXPECT_FALSE(p.vlb_relay);
  EXPECT_EQ(p.relay_rack, -1);
  EXPECT_EQ(p.hops, 0);
}

}  // namespace
}  // namespace opera::net

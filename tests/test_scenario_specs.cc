// Scenario specs (exp/scenario): parse -> validate -> describe round
// trips with exact golden describe() strings (these are what bench CSV
// notes and docs/SCENARIOS.md quote, so they must not drift), the parse
// errors a typo'd CLI string must produce, and the adversarial
// permutation's structural guarantees.
#include "exp/scenario.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "topo/opera_topology.h"

namespace opera::exp {
namespace {

core::FabricConfig quick_opera() {
  // The 16x4 testbed: n = 16 racks, u = 4 rotor switches, 64 hosts.
  return core::FabricConfig::make(core::FabricKind::kOpera).scale(16, 4);
}

ScenarioSpec parse_one(const std::string& text) {
  const auto r = parse_scenario(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.error;
  EXPECT_EQ(r.specs.size(), 1u) << text;
  return r.specs.empty() ? ScenarioSpec{} : r.specs.front();
}

TEST(ScenarioSpecs, DefaultsDescribeGolden) {
  const struct {
    const char* text;
    const char* golden;
  } cases[] = {
      {"ditl", "ditl: standard day, 5 x 2 ms phases, peak load 0.25, seed 3"},
      {"trace:path=day.bin", "trace: replay 'day.bin'"},
      {"adversarial-perm",
       "adversarial-perm: max-wait rack permutation, 600 KB flows"},
      {"storm-rolling",
       "storm-rolling: 2 rotor outages from 1 ms, one every 5 ms, "
       "each recovering after 12 ms"},
      {"storm-racks",
       "storm-racks: uplink 0 dark on 4 racks at 1 ms, recovery wave at 12 ms, "
       "stagger 1 ms"},
      {"gray",
       "gray: 8 lossy uplinks, loss 0.02, +30 us latency, from 1 ms, "
       "recovering after 12 ms, seed 3"},
      {"skew",
       "skew: rotor 0 settles +30 us late for 64 reconfigurations from 1 ms"},
  };
  const auto config = quick_opera();
  for (const auto& c : cases) {
    const ScenarioSpec spec = parse_one(c.text);
    EXPECT_EQ(describe(spec), c.golden);
    EXPECT_EQ(validate_scenario(spec, config), "") << c.text;
  }
}

TEST(ScenarioSpecs, ParameterizedDescribeGolden) {
  // The bench_scale_sweep suite strings and the no-recovery branches.
  EXPECT_EQ(describe(parse_one(
                "storm-rolling:switches=2,start-ms=1,period-ms=2,recover-ms=5")),
            "storm-rolling: 2 rotor outages from 1 ms, one every 2 ms, "
            "each recovering after 5 ms");
  EXPECT_EQ(describe(parse_one("storm-rolling:switches=3,recover-ms=0")),
            "storm-rolling: 3 rotor outages from 1 ms, one every 5 ms, "
            "no recovery");
  EXPECT_EQ(
      describe(parse_one(
          "gray:links=10,loss=0.08,extra-us=50,start-ms=0,recover-ms=0")),
      "gray: 10 lossy uplinks, loss 0.08, +50 us latency, from 0 ms, "
      "no recovery, seed 3");
  EXPECT_EQ(describe(parse_one("storm-racks:racks=6,switch=1,recover-ms=0")),
            "storm-racks: uplink 1 dark on 6 racks at 1 ms, no recovery");
  EXPECT_EQ(describe(parse_one("ditl:phase-ms=0.5,load=0.1,seed=3")),
            "ditl: standard day, 5 x 0.5 ms phases, peak load 0.1, seed 3");
  EXPECT_EQ(describe(parse_one("skew:switch=2,extra-us=40,slices=30,start-ms=2")),
            "skew: rotor 2 settles +40 us late for 30 reconfigurations from 2 ms");
}

TEST(ScenarioSpecs, KindNamesRoundTrip) {
  for (const auto kind :
       {ScenarioKind::kDitl, ScenarioKind::kTrace, ScenarioKind::kAdversarialPerm,
        ScenarioKind::kStormRolling, ScenarioKind::kStormRacks, ScenarioKind::kGray,
        ScenarioKind::kSkew}) {
    const std::string name = scenario_kind_name(kind);
    const std::string text =
        kind == ScenarioKind::kTrace ? name + ":path=t.bin" : name;
    EXPECT_EQ(parse_one(text).kind, kind) << name;
  }
}

TEST(ScenarioSpecs, ParseErrors) {
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      {"hurricane", "unknown scenario kind"},
      {"", "empty scenario"},
      {";;", "empty scenario"},
      {"ditl:fanout=3", "unknown key 'fanout'"},
      {"gray:period-ms=2", "unknown key 'period-ms'"},  // another kind's key
      {"gray:loss=abc", "bad value"},
      {"ditl:seed=-1", "bad value"},
      {"storm-rolling:partitionable=yes", "bad value"},
      {"ditl:load", "expected key=value"},
      {"ditl:=0.3", "expected key=value"},
      {"trace", "required key 'path' missing"},
  };
  for (const auto& c : cases) {
    const auto r = parse_scenarios(c.text);
    EXPECT_FALSE(r.ok()) << c.text;
    EXPECT_NE(r.error.find(c.needle), std::string::npos)
        << c.text << ": got error '" << r.error << "'";
  }
}

TEST(ScenarioSpecs, SuiteComposesButAllowsOnlyOneWorkload) {
  const auto suite = parse_scenarios("ditl:load=0.1;gray:links=2;skew:switch=1");
  ASSERT_TRUE(suite.ok()) << suite.error;
  ASSERT_EQ(suite.specs.size(), 3u);
  EXPECT_TRUE(scenario_is_workload(suite.specs[0]));
  EXPECT_FALSE(scenario_is_workload(suite.specs[1]));
  EXPECT_FALSE(scenario_is_workload(suite.specs[2]));

  // Failure-only suites are fine (they decorate whatever --workload ran).
  EXPECT_TRUE(parse_scenarios("gray;storm-rolling").ok());

  const auto two = parse_scenarios("ditl;trace:path=x.bin");
  EXPECT_FALSE(two.ok());
  EXPECT_NE(two.error.find("at most one workload"), std::string::npos) << two.error;
}

TEST(ScenarioSpecs, ValidateChecksRangesAgainstTheFabric) {
  const auto config = quick_opera();  // n=16, u=4
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      {"ditl:load=0", "load must be in (0, 1]"},
      {"ditl:load=1.5", "load must be in (0, 1]"},
      {"ditl:phase-ms=0", "phase-ms must be > 0"},
      {"adversarial-perm:flow-kb=0", "flow-kb must be > 0"},
      {"storm-rolling:switches=5", "switches must be in [1, 4]"},
      {"storm-rolling:switches=0", "switches must be in [1, 4]"},
      {"storm-racks:racks=17", "racks must be in [1, 16]"},
      {"storm-racks:switch=4", "switch must be in [0, 4)"},
      {"gray:links=0", "links must be in [1, 64]"},
      {"gray:links=65", "links must be in [1, 64]"},
      {"gray:loss=1.5", "loss must be in [0, 1]"},
      {"skew:switch=7", "switch must be in [0, 4)"},
      {"skew:slices=0", "slices must be >= 1"},
      // 95 us extra + 10 us reconfiguration exceeds the 99 us slice.
      {"skew:extra-us=95", "stay under the slice duration"},
  };
  for (const auto& c : cases) {
    const std::string err = validate_scenario(parse_one(c.text), config);
    EXPECT_NE(err.find(c.needle), std::string::npos)
        << c.text << ": got '" << err << "'";
  }
}

TEST(ScenarioSpecs, FailureScenariosRequireOpera) {
  const auto clos = core::FabricConfig::make(core::FabricKind::kFoldedClos);
  EXPECT_NE(validate_scenario(parse_one("gray"), clos).find("requires the opera"),
            std::string::npos);
  EXPECT_NE(validate_scenario(parse_one("adversarial-perm"), clos)
                .find("requires the opera"),
            std::string::npos);
  // ditl composes on any fabric.
  EXPECT_EQ(validate_scenario(parse_one("ditl"), clos), "");
}

TEST(ScenarioSpecs, DitlFlowsAreSortedAndInRange) {
  const auto config = quick_opera();
  const auto flows =
      scenario_flows(parse_one("ditl:phase-ms=0.5,load=0.1,seed=3"), config);
  ASSERT_GT(flows.size(), 50u);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    EXPECT_GE(f.src_host, 0);
    EXPECT_LT(f.src_host, config.num_hosts());
    EXPECT_GE(f.dst_host, 0);
    EXPECT_LT(f.dst_host, config.num_hosts());
    EXPECT_NE(f.src_host, f.dst_host);
    EXPECT_GT(f.size_bytes, 0);
    if (i > 0) {
      EXPECT_LE(flows[i - 1].start, f.start);
    }
  }
}

TEST(ScenarioSpecs, TraceFlowErrorsSurfaceThroughTheOutParam) {
  ScenarioSpec spec = parse_one("trace:path=/nonexistent/t.bin");
  std::string error;
  const auto flows = scenario_flows(spec, quick_opera(), &error);
  EXPECT_TRUE(flows.empty());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(ScenarioSpecs, AdversarialPermutationIsADerangementOfRacks) {
  const auto config = quick_opera();
  const topo::OperaTopology topo(config.opera);
  const auto flows = adversarial_permutation_workload(topo, 4, 600'000);
  ASSERT_EQ(flows.size(), 64u);  // one flow per host
  std::set<std::int32_t> sources;
  std::set<std::int32_t> destinations;
  for (const auto& f : flows) {
    EXPECT_TRUE(sources.insert(f.src_host).second);
    EXPECT_TRUE(destinations.insert(f.dst_host).second);
    EXPECT_NE(f.src_host / 4, f.dst_host / 4) << "rack self-match";
    EXPECT_EQ(f.size_bytes, 600'000);
    EXPECT_EQ(f.start.picoseconds(), 0);
  }
  EXPECT_EQ(sources.size(), 64u);
  EXPECT_EQ(destinations.size(), 64u);

  // Deterministic: the permutation is a pure function of the topology.
  const auto again = adversarial_permutation_workload(topo, 4, 600'000);
  ASSERT_EQ(again.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(flows[i].src_host, again[i].src_host);
    EXPECT_EQ(flows[i].dst_host, again[i].dst_host);
  }
}

TEST(ScenarioSpecs, AdversarialPermutationPicksLateCircuits) {
  // The whole point of the generator: the chosen partners should wait
  // longer for their first direct circuit than the average pair does.
  const auto config = quick_opera();
  const topo::OperaTopology topo(config.opera);
  const int n = topo.num_racks();
  const int u = topo.num_switches();
  std::vector<std::vector<int>> wait(static_cast<std::size_t>(n),
                                     std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int r = 0; r < n; ++r) {
    for (int s = 0; s < topo.num_slices(); ++s) {
      for (int sw = 0; sw < u; ++sw) {
        if (sw == topo.reconfiguring_switch(s)) continue;
        const auto peer = topo.circuit_peer(sw, r, s);
        if (peer != r && wait[static_cast<std::size_t>(r)][static_cast<std::size_t>(peer)] < 0) {
          wait[static_cast<std::size_t>(r)][static_cast<std::size_t>(peer)] = s;
        }
      }
    }
  }
  double all_pairs = 0.0;
  int pairs = 0;
  for (int r = 0; r < n; ++r) {
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      all_pairs += wait[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)];
      ++pairs;
    }
  }
  const double mean_wait = all_pairs / pairs;

  const auto flows = adversarial_permutation_workload(topo, 1, 1000);
  double chosen = 0.0;
  for (const auto& f : flows) {
    chosen += wait[static_cast<std::size_t>(f.src_host)][static_cast<std::size_t>(f.dst_host)];
  }
  EXPECT_GT(chosen / static_cast<double>(flows.size()), mean_wait);
}

}  // namespace
}  // namespace opera::exp

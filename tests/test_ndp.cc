// NDP transport unit tests on a one-switch star network.
#include "transport/ndp.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/host.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace opera::transport {
namespace {

// Star fixture: `n` hosts around one switch; host i <-> switch port i.
class Star {
 public:
  explicit Star(int n, std::int64_t switch_ll_capacity = 12'000) {
    net::PortQueue::Config host_q;
    host_q.low_latency_capacity_bytes = 10'000'000;
    host_q.control_capacity_bytes = 1'000'000;
    host_q.trim_low_latency = false;
    net::PortQueue::Config sw_q;
    sw_q.low_latency_capacity_bytes = switch_ll_capacity;  // trims beyond
    sw_q.control_capacity_bytes = 1'000'000;

    sw = std::make_unique<net::Switch>(sim, "sw", 0);
    for (int i = 0; i < n; ++i) {
      sw->add_port(10e9, sim::Time::ns(500), sw_q);
      // Two-step concat: `"h" + std::to_string(i)` trips GCC 12's
      // -Wrestrict false positive (GCC bug 105329) under -Werror.
      std::string host_name = "h";
      host_name += std::to_string(i);
      auto host = std::make_unique<net::Host>(sim, std::move(host_name), i, 0);
      host->add_port(10e9, sim::Time::ns(500), host_q);
      host->uplink().connect(sw.get(), i);
      sw->port(i).connect(host.get(), 0);
      install_ndp_sink_factory(*host, tracker, sinks);
      hosts.push_back(std::move(host));
    }
    sw->set_forward([](net::Switch&, const net::Packet& pkt, int) {
      return pkt.dst_host;
    });
  }

  std::uint64_t start_flow(int src, int dst, std::int64_t bytes,
                           const NdpConfig& cfg = {}) {
    Flow f;
    f.id = tracker.next_flow_id();
    f.src_host = src;
    f.dst_host = dst;
    f.size_bytes = bytes;
    f.start = sim.now();
    tracker.register_flow(f);
    auto source = std::make_unique<NdpSource>(*hosts[static_cast<std::size_t>(src)],
                                              f, tracker, cfg);
    source->start();
    sources.push_back(std::move(source));
    return f.id;
  }

  sim::Simulator sim;
  FlowTracker tracker;
  std::unique_ptr<net::Switch> sw;
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<NdpSink>> sinks;
  std::vector<std::unique_ptr<NdpSource>> sources;
};

TEST(Ndp, SinglePacketFlow) {
  Star star(2);
  star.start_flow(0, 1, 500);
  star.sim.run_until(sim::Time::ms(1));
  ASSERT_EQ(star.tracker.completed(), 1u);
  // One hop through the switch: ~2 serializations + 2 propagations.
  EXPECT_LT(star.tracker.completions()[0].fct().to_us(), 5.0);
}

TEST(Ndp, MultiPacketFlowDeliversAllBytes) {
  Star star(2);
  std::int64_t delivered = 0;
  star.tracker.set_delivery_hook(
      [&](const Flow&, std::int64_t bytes, sim::Time) { delivered += bytes; });
  star.start_flow(0, 1, 100'000);
  star.sim.run_until(sim::Time::ms(2));
  ASSERT_EQ(star.tracker.completed(), 1u);
  EXPECT_EQ(delivered, 100'000);
}

TEST(Ndp, ThroughputNearLineRate) {
  Star star(2);
  // 1 MB at 10 Gb/s is 800 us minimum; NDP should be within ~15%.
  star.start_flow(0, 1, 1'000'000);
  star.sim.run_until(sim::Time::ms(5));
  ASSERT_EQ(star.tracker.completed(), 1u);
  EXPECT_LT(star.tracker.completions()[0].fct().to_us(), 920.0);
}

TEST(Ndp, IncastTrimsButCompletes) {
  // 8 senders to one receiver with shallow switch queues: trimming kicks
  // in; every flow still completes (no RTO-style stalls).
  Star star(9);
  for (int src = 1; src <= 8; ++src) star.start_flow(src, 0, 50'000);
  star.sim.run_until(sim::Time::ms(10));
  EXPECT_EQ(star.tracker.completed(), 8u);
  std::uint64_t trims = 0;
  for (int p = 0; p < star.sw->num_ports(); ++p) {
    trims += star.sw->port(p).queue().trims();
  }
  EXPECT_GT(trims, 0u) << "expected trimming under incast";
}

TEST(Ndp, SevereIncastStillLossRecoverable) {
  Star star(17, /*switch_ll_capacity=*/6'000);
  for (int src = 1; src <= 16; ++src) star.start_flow(src, 0, 30'000);
  star.sim.run_until(sim::Time::ms(20));
  EXPECT_EQ(star.tracker.completed(), 16u);
}

TEST(Ndp, FairishSharing) {
  // Two senders to one receiver: both finish within ~2.2x the solo time
  // of the pair's aggregate.
  Star star(3);
  star.start_flow(1, 0, 500'000);
  star.start_flow(2, 0, 500'000);
  star.sim.run_until(sim::Time::ms(5));
  ASSERT_EQ(star.tracker.completed(), 2u);
  for (const auto& rec : star.tracker.completions()) {
    EXPECT_LT(rec.fct().to_us(), 1'800.0);  // 1 MB total at 10G = 800 us min
  }
}

TEST(Ndp, CompleteFlagOnSource) {
  Star star(2);
  star.start_flow(0, 1, 10'000);
  star.sim.run_until(sim::Time::ms(2));
  EXPECT_TRUE(star.sources[0]->complete());
}

}  // namespace
}  // namespace opera::transport

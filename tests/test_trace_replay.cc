// Trace replay (workload/trace_replay, docs/TRACE_FORMAT.md): exact
// round trips for both encodings (a composed day-in-the-life schedule is
// the golden payload), hard rejection of every malformed-input class the
// format doc promises to catch, and a replay smoke through a real Opera
// run per format.
#include "workload/trace_replay.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/opera_network.h"
#include "workload/day_in_the_life.h"

namespace opera::workload {
namespace {

// A composed day on the 16x4 testbed: a realistic mixed schedule
// (heavy-tailed poisson, incast bursts, storage chains, ring steps),
// already time-sorted as the trace format requires.
std::vector<FlowSpec> sample_day() {
  const auto spec = DayInTheLifeSpec::standard_day(sim::Time::us(200),
                                                   /*peak_load=*/0.3, /*seed=*/7);
  return day_in_the_life_workload(spec, /*num_hosts=*/64, /*hosts_per_rack=*/4,
                                  /*link_rate_bps=*/10e9);
}

void expect_same_flows(const std::vector<FlowSpec>& want,
                       const std::vector<FlowSpec>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].start.picoseconds(), got[i].start.picoseconds()) << "flow " << i;
    EXPECT_EQ(want[i].src_host, got[i].src_host) << "flow " << i;
    EXPECT_EQ(want[i].dst_host, got[i].dst_host) << "flow " << i;
    EXPECT_EQ(want[i].size_bytes, got[i].size_bytes) << "flow " << i;
  }
}

TEST(TraceReplay, SampleDayIsNonTrivialAndSorted) {
  const auto flows = sample_day();
  ASSERT_GT(flows.size(), 100u);
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_LE(flows[i - 1].start.picoseconds(), flows[i].start.picoseconds());
  }
}

TEST(TraceReplay, CsvRoundTripIsExact) {
  const auto flows = sample_day();
  std::ostringstream out;
  write_trace_csv(out, flows);
  std::istringstream in(out.str());
  const auto parsed = parse_trace_csv(in, /*num_hosts=*/64);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  expect_same_flows(flows, parsed.flows);
  // Serialize-parse-serialize is byte-identical: the golden fingerprint
  // that keeps the on-disk format from drifting.
  std::ostringstream again;
  write_trace_csv(again, parsed.flows);
  EXPECT_EQ(out.str(), again.str());
}

TEST(TraceReplay, BinaryRoundTripIsExact) {
  const auto flows = sample_day();
  std::ostringstream out(std::ios::binary);
  write_trace_binary(out, flows);
  // 6-byte magic + 8-byte count + 24 bytes per record, nothing else.
  EXPECT_EQ(out.str().size(), 14u + 24u * flows.size());
  std::istringstream in(out.str(), std::ios::binary);
  const auto parsed = parse_trace_binary(in, /*num_hosts=*/64);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  expect_same_flows(flows, parsed.flows);
  std::ostringstream again(std::ios::binary);
  write_trace_binary(again, parsed.flows);
  EXPECT_EQ(out.str(), again.str());
}

TEST(TraceReplay, CsvAcceptsCommentsBlankLinesAndCrlf) {
  std::istringstream in(
      "# a recorded trace\r\n"
      "\r\n"
      "start_ps,src_host,dst_host,size_bytes\r\n"
      "# mid-file comment\n"
      "0,0,1,1000\r\n"
      "5000,2,3,64000\n");
  const auto parsed = parse_trace_csv(in, 4);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.flows.size(), 2u);
  EXPECT_EQ(parsed.flows[1].start.picoseconds(), 5000);
  EXPECT_EQ(parsed.flows[1].size_bytes, 64000);
}

TEST(TraceReplay, EqualStartTimesAreLegal) {
  std::istringstream in(
      "start_ps,src_host,dst_host,size_bytes\n"
      "100,0,1,10\n"
      "100,1,2,10\n");
  EXPECT_TRUE(parse_trace_csv(in, 4).ok());
}

TEST(TraceReplay, CsvRejectsMalformedInputs) {
  const struct {
    const char* name;
    const char* text;
    const char* needle;  // must appear in the error
  } cases[] = {
      {"empty input", "", "missing header"},
      {"data before header", "0,0,1,100\n", "bad header"},
      {"wrong header", "start_us,src,dst,bytes\n0,0,1,100\n", "bad header"},
      {"three columns", "start_ps,src_host,dst_host,size_bytes\n0,0,1\n",
       "4 columns"},
      {"five columns", "start_ps,src_host,dst_host,size_bytes\n0,0,1,100,7\n",
       "4 columns"},
      {"non-integer field", "start_ps,src_host,dst_host,size_bytes\n0,0x,1,100\n",
       "not an integer"},
      {"float start", "start_ps,src_host,dst_host,size_bytes\n1.5,0,1,100\n",
       "not an integer"},
      {"decreasing start",
       "start_ps,src_host,dst_host,size_bytes\n500,0,1,100\n400,1,2,100\n",
       "time-sorted"},
      {"negative host", "start_ps,src_host,dst_host,size_bytes\n0,-1,1,100\n",
       "negative host"},
      {"src equals dst", "start_ps,src_host,dst_host,size_bytes\n0,3,3,100\n",
       "src == dst"},
      {"zero size", "start_ps,src_host,dst_host,size_bytes\n0,0,1,0\n",
       "non-positive size"},
      {"negative size", "start_ps,src_host,dst_host,size_bytes\n0,0,1,-5\n",
       "non-positive size"},
      {"host id overflows int32",
       "start_ps,src_host,dst_host,size_bytes\n0,4294967296,1,100\n",
       "overflows int32"},
  };
  for (const auto& c : cases) {
    std::istringstream in(c.text);
    const auto parsed = parse_trace_csv(in, /*num_hosts=*/16);
    EXPECT_FALSE(parsed.ok()) << c.name;
    EXPECT_NE(parsed.error.find(c.needle), std::string::npos)
        << c.name << ": got error '" << parsed.error << "'";
  }
}

TEST(TraceReplay, HostRangeCheckedOnlyAgainstAKnownFabric) {
  const std::string text =
      "start_ps,src_host,dst_host,size_bytes\n0,1000,2000,100\n";
  std::istringstream unknown(text);
  EXPECT_TRUE(parse_trace_csv(unknown, /*num_hosts=*/0).ok());
  std::istringstream known(text);
  const auto parsed = parse_trace_csv(known, /*num_hosts=*/64);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("out of range"), std::string::npos) << parsed.error;
}

TEST(TraceReplay, BinaryRejectsBadMagicAndTruncation) {
  const auto flows = sample_day();
  std::ostringstream out(std::ios::binary);
  write_trace_binary(out, flows);
  const std::string bytes = out.str();

  {
    std::istringstream in("NOPE!\n" + bytes.substr(6), std::ios::binary);
    const auto parsed = parse_trace_binary(in);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("bad magic"), std::string::npos) << parsed.error;
  }
  {
    // Count promises all flows but the last record is cut short.
    std::istringstream in(bytes.substr(0, bytes.size() - 7), std::ios::binary);
    const auto parsed = parse_trace_binary(in);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("truncated"), std::string::npos) << parsed.error;
  }
  {
    // Magic only: the flow count itself is missing.
    std::istringstream in(bytes.substr(0, 6), std::ios::binary);
    const auto parsed = parse_trace_binary(in);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("flow count"), std::string::npos) << parsed.error;
  }
}

TEST(TraceReplay, BinaryRunsTheSameSemanticValidationAsCsv) {
  // Encode a semantically-broken record (src == dst); the shared
  // validator must reject it on the binary path too.
  std::vector<FlowSpec> bad(1);
  bad[0].src_host = 2;
  bad[0].dst_host = 2;
  bad[0].size_bytes = 100;
  bad[0].start = sim::Time::zero();
  std::ostringstream out(std::ios::binary);
  write_trace_binary(out, bad);
  std::istringstream in(out.str(), std::ios::binary);
  const auto parsed = parse_trace_binary(in, 16);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("src == dst"), std::string::npos) << parsed.error;
}

TEST(TraceReplay, LoadTraceDispatchesOnExtension) {
  const auto flows = sample_day();
  const std::string csv_path = ::testing::TempDir() + "trace_replay_test.csv";
  const std::string bin_path = ::testing::TempDir() + "trace_replay_test.bin";
  ASSERT_TRUE(save_trace_csv(csv_path, flows));
  ASSERT_TRUE(save_trace_binary(bin_path, flows));
  const auto from_csv = load_trace(csv_path, 64);
  const auto from_bin = load_trace(bin_path, 64);
  ASSERT_TRUE(from_csv.ok()) << from_csv.error;
  ASSERT_TRUE(from_bin.ok()) << from_bin.error;
  expect_same_flows(flows, from_csv.flows);
  expect_same_flows(flows, from_bin.flows);
}

TEST(TraceReplay, LoadTraceReportsMissingFile) {
  const auto parsed = load_trace(::testing::TempDir() + "no_such_trace.csv");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("cannot open"), std::string::npos) << parsed.error;
}

// Replay smoke per format: a saved trace, loaded back, must drive a real
// Opera run to full completion — the same path bench_custom's
// `--scenario=trace:path=...` takes.
class TraceReplaySmoke : public ::testing::TestWithParam<bool> {};

TEST_P(TraceReplaySmoke, LoadedTraceDrivesAnOperaRun) {
  const bool csv = GetParam();
  // A small deterministic schedule: every rack 0/1 host sends one
  // low-latency flow and one modest bulk flow to a distant rack.
  std::vector<FlowSpec> flows;
  for (int i = 0; i < 8; ++i) {
    FlowSpec f;
    f.src_host = i;
    f.dst_host = 32 + i;
    f.size_bytes = (i % 2 == 0) ? 20'000 : 200'000;
    f.start = sim::Time::us(10 * i);
    flows.push_back(f);
  }
  const std::string path =
      ::testing::TempDir() + (csv ? "smoke_trace.csv" : "smoke_trace.bin");
  ASSERT_TRUE(csv ? save_trace_csv(path, flows) : save_trace_binary(path, flows));
  const auto loaded = load_trace(path, 64);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  ASSERT_EQ(loaded.flows.size(), flows.size());

  core::OperaConfig cfg;
  cfg.topology.num_racks = 16;
  cfg.topology.num_switches = 4;
  cfg.topology.hosts_per_rack = 4;
  cfg.topology.seed = 3;
  cfg.bulk_threshold_bytes = 100'000;
  core::OperaNetwork net(cfg);
  for (const auto& f : loaded.flows) {
    net.submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
  net.run_until(sim::Time::ms(20));
  EXPECT_EQ(net.tracker().completed(), flows.size());
}

INSTANTIATE_TEST_SUITE_P(BothFormats, TraceReplaySmoke, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "csv" : "binary";
                         });

}  // namespace
}  // namespace opera::workload

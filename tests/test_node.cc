#include "net/node.h"

#include <gtest/gtest.h>

#include "net/host.h"
#include "net/switch.h"

namespace opera::net {
namespace {

PacketPtr data_packet(std::int32_t bytes, std::uint64_t flow = 1) {
  auto pkt = make_packet();
  pkt->type = PacketType::kData;
  pkt->tclass = TrafficClass::kLowLatency;
  pkt->size_bytes = bytes;
  pkt->flow_id = flow;
  return pkt;
}

// Test node that records arrivals.
class RecorderNode : public Node {
 public:
  RecorderNode(sim::Simulator& sim) : Node(sim, "recorder") {}
  void receive(PacketPtr pkt, int in_port) override {
    arrivals.emplace_back(sim().now(), std::move(pkt));
    in_ports.push_back(in_port);
  }
  std::vector<std::pair<sim::Time, PacketPtr>> arrivals;
  std::vector<int> in_ports;
};

TEST(OutPort, SerializationPlusPropagation) {
  sim::Simulator sim;
  RecorderNode src(sim);
  RecorderNode dst(sim);
  src.add_port(10e9, sim::Time::ns(500), PortQueue::Config{});
  src.port(0).connect(&dst, 3);
  src.port(0).send(data_packet(1500));
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 1u);
  // 1500 B at 10 Gb/s = 1.2 us, + 500 ns propagation.
  EXPECT_DOUBLE_EQ(dst.arrivals[0].first.to_us(), 1.7);
  EXPECT_EQ(dst.in_ports[0], 3);
}

TEST(OutPort, BackToBackPacketsSerialize) {
  sim::Simulator sim;
  RecorderNode src(sim);
  RecorderNode dst(sim);
  src.add_port(10e9, sim::Time::zero(), PortQueue::Config{});
  src.port(0).connect(&dst, 0);
  src.port(0).send(data_packet(1500));
  src.port(0).send(data_packet(1500));
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(dst.arrivals[0].first.to_us(), 1.2);
  EXPECT_DOUBLE_EQ(dst.arrivals[1].first.to_us(), 2.4);
}

TEST(OutPort, DisabledPortDropsSends) {
  sim::Simulator sim;
  RecorderNode src(sim);
  RecorderNode dst(sim);
  src.add_port(10e9, sim::Time::zero(), PortQueue::Config{});
  src.port(0).connect(&dst, 0);
  src.port(0).set_enabled(false);
  EXPECT_EQ(src.port(0).send(data_packet(1500)), EnqueueOutcome::kDropped);
  sim.run();
  EXPECT_TRUE(dst.arrivals.empty());
}

TEST(OutPort, ReEnableDrainsQueue) {
  sim::Simulator sim;
  RecorderNode src(sim);
  RecorderNode dst(sim);
  src.add_port(10e9, sim::Time::zero(), PortQueue::Config{});
  src.port(0).connect(&dst, 0);
  src.port(0).send(data_packet(1500));
  src.port(0).set_enabled(false);  // in-flight packet still delivers
  src.port(0).send(data_packet(1500));
  sim.run_until(sim::Time::ms(1));
  EXPECT_EQ(dst.arrivals.size(), 1u);
  src.port(0).set_enabled(true);
  // The packet queued before enable... was dropped at send time; queue empty.
  sim.run_until(sim::Time::ms(2));
  EXPECT_EQ(dst.arrivals.size(), 1u);
}

TEST(OutPort, RetargetMidFlightDeliversToOriginalPeer) {
  sim::Simulator sim;
  RecorderNode src(sim);
  RecorderNode a(sim);
  RecorderNode b(sim);
  src.add_port(10e9, sim::Time::us(10), PortQueue::Config{});
  src.port(0).connect(&a, 0);
  src.port(0).send(data_packet(1500));
  // Retarget while the packet is on the wire: bits go to the old peer.
  sim.run_until(sim::Time::us(2));
  src.port(0).connect(&b, 0);
  sim.run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_TRUE(b.arrivals.empty());
  // The next send goes to the new peer.
  src.port(0).send(data_packet(1500));
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 1u);
}

TEST(Switch, ForwardsByFunction) {
  sim::Simulator sim;
  Switch sw(sim, "sw", 0);
  RecorderNode out0(sim);
  RecorderNode out1(sim);
  sw.add_port(10e9, sim::Time::zero(), PortQueue::Config{});
  sw.add_port(10e9, sim::Time::zero(), PortQueue::Config{});
  sw.port(0).connect(&out0, 0);
  sw.port(1).connect(&out1, 0);
  sw.set_forward([](Switch&, const Packet& pkt, int) {
    return pkt.flow_id == 1 ? 0 : 1;
  });
  sw.receive(data_packet(1500, 1), 0);
  sw.receive(data_packet(1500, 2), 0);
  sim.run();
  EXPECT_EQ(out0.arrivals.size(), 1u);
  EXPECT_EQ(out1.arrivals.size(), 1u);
  // Hop counter incremented.
  EXPECT_EQ(out0.arrivals[0].second->hops, 1);
}

TEST(Switch, DropHookFires) {
  sim::Simulator sim;
  Switch sw(sim, "sw", 0);
  int drops = 0;
  sw.set_forward([](Switch&, const Packet&, int) { return -1; });
  sw.set_drop_hook([&](Switch&, const Packet&) { ++drops; });
  sw.receive(data_packet(1500), 0);
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(sw.forward_drops(), 1u);
}

TEST(Switch, InterceptConsumes) {
  sim::Simulator sim;
  Switch sw(sim, "sw", 0);
  PacketPtr captured;
  sw.set_intercept([&](Switch&, PacketPtr& pkt, int) {
    captured = std::move(pkt);
    return true;
  });
  sw.set_forward([](Switch&, const Packet&, int) {
    ADD_FAILURE() << "forward should not run after intercept";
    return -1;
  });
  sw.receive(data_packet(1500), 2);
  ASSERT_NE(captured, nullptr);
}

TEST(Host, DispatchesByFlowAndDefault) {
  sim::Simulator sim;
  Host host(sim, "h", 0, 0);
  host.add_port(10e9, sim::Time::zero(), PortQueue::Config{});
  int flow_hits = 0;
  int default_hits = 0;
  host.register_flow(5, [&](PacketPtr) { ++flow_hits; });
  host.set_default_handler([&](Host&, PacketPtr) { ++default_hits; });
  host.receive(data_packet(1500, 5), 0);
  host.receive(data_packet(1500, 6), 0);
  EXPECT_EQ(flow_hits, 1);
  EXPECT_EQ(default_hits, 1);
  host.unregister_flow(5);
  host.receive(data_packet(1500, 5), 0);
  EXPECT_EQ(default_hits, 2);
}

TEST(Host, PacerSpacesControl) {
  sim::Simulator sim;
  Host host(sim, "h", 0, 0);
  RecorderNode peer(sim);
  host.add_port(10e9, sim::Time::zero(), PortQueue::Config{});
  host.uplink().connect(&peer, 0);
  for (int i = 0; i < 3; ++i) {
    auto pull = make_packet();
    pull->type = PacketType::kPull;
    pull->size_bytes = kHeaderBytes;
    host.pace_control(std::move(pull));
  }
  sim.run();
  ASSERT_EQ(peer.arrivals.size(), 3u);
  // Spaced at >= MTU serialization time (1.2 us at 10 Gb/s).
  const double gap1 =
      peer.arrivals[1].first.to_us() - peer.arrivals[0].first.to_us();
  const double gap2 =
      peer.arrivals[2].first.to_us() - peer.arrivals[1].first.to_us();
  EXPECT_GE(gap1, 1.19);
  EXPECT_GE(gap2, 1.19);
}

}  // namespace
}  // namespace opera::net

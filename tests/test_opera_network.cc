#include "core/opera_network.h"

#include <gtest/gtest.h>

namespace opera::core {
namespace {

OperaConfig small_config() {
  OperaConfig cfg;
  cfg.topology.num_racks = 16;
  cfg.topology.num_switches = 4;
  cfg.topology.hosts_per_rack = 4;
  cfg.topology.seed = 11;
  cfg.seed = 12;
  return cfg;
}

TEST(OperaNetwork, Builds) {
  const auto cfg = small_config();
  OperaNetwork net(cfg);
  EXPECT_EQ(net.num_hosts(), 64);
  EXPECT_EQ(net.num_racks(), 16);
  EXPECT_EQ(net.rack_of_host(0), 0);
  EXPECT_EQ(net.rack_of_host(63), 15);
}

TEST(OperaNetwork, LowLatencyFlowCompletesFast) {
  OperaNetwork net(small_config());
  // 15 KB inter-rack flow: low-latency class, expander path, should finish
  // in tens of microseconds, far less than a slice.
  const auto id = net.submit_flow(0, 60, 15'000, sim::Time::zero());
  net.run_until(sim::Time::ms(5));
  ASSERT_EQ(net.tracker().completed(), 1u);
  const auto& rec = net.tracker().completions().front();
  EXPECT_EQ(rec.flow.id, id);
  EXPECT_LT(rec.fct().to_us(), 100.0);
}

TEST(OperaNetwork, MinimumLatencyNearPropagation) {
  OperaNetwork net(small_config());
  // Single-packet flow: FCT ~ serialization (x hops) + propagation.
  net.submit_flow(0, 60, 1'000, sim::Time::zero());
  net.run_until(sim::Time::ms(2));
  ASSERT_EQ(net.tracker().completed(), 1u);
  const double fct_us = net.tracker().completions().front().fct().to_us();
  EXPECT_GT(fct_us, 1.0);   // at least a couple of link crossings
  EXPECT_LT(fct_us, 30.0);  // and nowhere near a slice time
}

TEST(OperaNetwork, BulkFlowUsesDirectCircuitsAndCompletes) {
  auto cfg = small_config();
  OperaNetwork net(cfg);
  // 20 MB >= threshold: bulk. Must wait for direct circuits, completing
  // within a few cycles (cycle = 16 slices x 99 us = 1.58 ms; 20 MB at
  // ~(u-1)/N of 10G per pair needs several cycles).
  net.submit_flow(0, 60, 20'000'000, sim::Time::zero());
  net.run_until(sim::Time::ms(80));
  ASSERT_EQ(net.tracker().completed(), 1u) << "bulk flow did not complete";
  const auto& rec = net.tracker().completions().front();
  EXPECT_EQ(rec.flow.tclass, net::TrafficClass::kBulk);
  // Sanity: finished in well under the run horizon but over a slice.
  EXPECT_GT(rec.fct().to_ms(), 0.099);
  EXPECT_LT(rec.fct().to_ms(), 80.0);
}

TEST(OperaNetwork, IntraRackFlowBypassesCircuits) {
  OperaNetwork net(small_config());
  // Hosts 0 and 1 share rack 0; even a "bulk"-sized flow goes over the ToR
  // low-latency path at line rate: 16 MB at 10 Gb/s ~ 13.4 ms.
  net.submit_flow(0, 1, 16'000'000, sim::Time::zero());
  net.run_until(sim::Time::ms(40));
  ASSERT_EQ(net.tracker().completed(), 1u);
  EXPECT_LT(net.tracker().completions().front().fct().to_ms(), 25.0);
}

TEST(OperaNetwork, ManyLowLatencyFlows) {
  OperaNetwork net(small_config());
  sim::Rng rng(99);
  int submitted = 0;
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(64));
    auto dst = static_cast<std::int32_t>(rng.index(64));
    if (dst == src) dst = (dst + 1) % 64;
    net.submit_flow(src, dst, 2'000 + static_cast<std::int64_t>(rng.index(50'000)),
                    sim::Time::us(static_cast<std::int64_t>(rng.index(1'000))));
    ++submitted;
  }
  net.run_until(sim::Time::ms(30));
  EXPECT_EQ(net.tracker().completed(), static_cast<std::size_t>(submitted));
}

TEST(OperaNetwork, MixedBulkAndLowLatency) {
  OperaNetwork net(small_config());
  net.submit_flow(0, 60, 20'000'000, sim::Time::zero());  // bulk
  for (int i = 0; i < 20; ++i) {
    net.submit_flow(1, 61, 10'000, sim::Time::us(100 * i));  // low-latency
  }
  net.run_until(sim::Time::ms(80));
  EXPECT_EQ(net.tracker().completed(), 21u);
  // Low-latency FCTs must remain small despite the bulk transfer.
  const auto ll = net.tracker().fct_us(0, 1'000'000);
  EXPECT_LT(ll.percentile(99), 200.0);
}

TEST(OperaNetwork, SliceClockMatchesSchedule) {
  OperaNetwork net(small_config());
  EXPECT_EQ(net.slice_at(sim::Time::zero()), 0);
  EXPECT_EQ(net.slice_at(sim::Time::us(99)), 1);
  EXPECT_EQ(net.slice_at(sim::Time::us(99) * 16), 0);  // wraps at cycle
  net.run_until(sim::Time::us(250));
  EXPECT_EQ(net.current_slice(), 2);
}

TEST(OperaNetwork, BulkSkewUsesVlb) {
  // Rack 0 -> rack 1 only (hot rack): direct capacity between one pair is
  // (u-1)/N of a link; VLB must carry most of the bytes for the flow to
  // finish quickly.
  auto cfg = small_config();
  OperaNetwork net(cfg);
  for (int h = 0; h < 4; ++h) {
    net.submit_flow(h, 4 + h, 30'000'000, sim::Time::zero(),
                    net::TrafficClass::kBulk);
  }
  net.run_until(sim::Time::ms(200));
  EXPECT_EQ(net.tracker().completed(), 4u);

  // With VLB disabled the same workload should be distinctly slower.
  auto cfg2 = small_config();
  cfg2.enable_vlb = false;
  OperaNetwork net2(cfg2);
  for (int h = 0; h < 4; ++h) {
    net2.submit_flow(h, 4 + h, 30'000'000, sim::Time::zero(),
                     net::TrafficClass::kBulk);
  }
  net2.run_until(sim::Time::ms(200));
  double vlb_worst = 0.0;
  for (const auto& rec : net.tracker().completions()) {
    vlb_worst = std::max(vlb_worst, rec.fct().to_ms());
  }
  double novlb_worst = 0.0;
  for (const auto& rec : net2.tracker().completions()) {
    novlb_worst = std::max(novlb_worst, rec.fct().to_ms());
  }
  if (net2.tracker().completed() < 4u) novlb_worst = 200.0;  // still running
  EXPECT_LT(vlb_worst, novlb_worst);
}

}  // namespace
}  // namespace opera::core

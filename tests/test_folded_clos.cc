#include "topo/folded_clos.h"

#include <gtest/gtest.h>

#include "topo/graph.h"

namespace opera::topo {
namespace {

ClosParams paper_params() {
  ClosParams p;
  p.radix = 12;
  p.oversubscription = 3;
  return p;
}

TEST(FoldedClos, PaperScaleCounts) {
  const FoldedClos clos(paper_params());
  // 648-host 3:1 folded Clos from the paper: 72 ToRs, 36 aggs, 18 cores.
  EXPECT_EQ(clos.num_tors(), 72);
  EXPECT_EQ(clos.num_aggs(), 36);
  EXPECT_EQ(clos.num_cores(), 18);
  EXPECT_EQ(clos.num_pods(), 12);
  EXPECT_EQ(clos.num_hosts(), 648);
  EXPECT_EQ(clos.params().hosts_per_tor(), 9);
  EXPECT_EQ(clos.params().tor_uplinks(), 3);
}

TEST(FoldedClos, RadixRespected) {
  const FoldedClos clos(paper_params());
  const Graph& g = clos.switch_graph();
  // ToR switch degree (inter-switch only): u uplinks.
  for (Vertex t = 0; t < clos.num_tors(); ++t) {
    EXPECT_EQ(g.degree(t), 3);
  }
  // Agg: k/2 down + k/2 up = 12.
  for (Vertex a = 0; a < clos.num_aggs(); ++a) {
    EXPECT_EQ(g.degree(clos.agg_vertex(a)), 12);
  }
  // Core: one link per pod.
  for (Vertex c = 0; c < clos.num_cores(); ++c) {
    EXPECT_EQ(g.degree(clos.core_vertex(c)), 12);
  }
}

TEST(FoldedClos, Connected) {
  const FoldedClos clos(paper_params());
  EXPECT_TRUE(is_connected(clos.switch_graph()));
}

TEST(FoldedClos, IntraPodPathsAreTwoHops) {
  const FoldedClos clos(paper_params());
  const auto dist = bfs_distances(clos.switch_graph(), 0);
  // ToRs 1..5 share pod 0 with ToR 0: ToR-agg-ToR.
  for (Vertex t = 1; t < 6; ++t) EXPECT_EQ(dist[static_cast<std::size_t>(t)], 2);
}

TEST(FoldedClos, InterPodPathsAreFourHops) {
  const FoldedClos clos(paper_params());
  const auto dist = bfs_distances(clos.switch_graph(), 0);
  // ToR 6 is in pod 1: ToR-agg-core-agg-ToR.
  EXPECT_EQ(dist[6], 4);
  EXPECT_EQ(dist[static_cast<std::size_t>(clos.num_tors() - 1)], 4);
}

TEST(FoldedClos, PodHelpers) {
  const FoldedClos clos(paper_params());
  EXPECT_EQ(clos.pod_of_tor(0), 0);
  EXPECT_EQ(clos.pod_of_tor(5), 0);
  EXPECT_EQ(clos.pod_of_tor(6), 1);
  const auto aggs = clos.pod_aggs(7);
  ASSERT_EQ(aggs.size(), 3u);
  EXPECT_EQ(aggs[0], 3);  // pod 1, first agg
  const auto cores = clos.agg_cores(3);  // group 0 agg
  ASSERT_EQ(cores.size(), 6u);
  EXPECT_EQ(cores[0], 0);
}

TEST(FoldedClos, SmallerPodCount) {
  ClosParams p;
  p.radix = 8;
  p.oversubscription = 3;
  p.num_pods = 4;
  const FoldedClos clos(p);
  EXPECT_EQ(clos.num_tors(), 16);
  EXPECT_EQ(clos.num_hosts(), 96);
  EXPECT_TRUE(is_connected(clos.switch_graph()));
}

TEST(FoldedClos, NonBlockingVariant) {
  // F=1: as many uplinks as host ports.
  ClosParams p;
  p.radix = 8;
  p.oversubscription = 1;
  const FoldedClos clos(p);
  EXPECT_EQ(clos.params().tor_uplinks(), 4);
  EXPECT_EQ(clos.params().hosts_per_tor(), 4);
  EXPECT_TRUE(is_connected(clos.switch_graph()));
}

TEST(FoldedClos, RejectsBadParams) {
  ClosParams odd;
  odd.radix = 7;
  EXPECT_THROW(FoldedClos clos(odd), std::invalid_argument);
  ClosParams indivisible;
  indivisible.radix = 12;
  indivisible.oversubscription = 4;  // 12 % 5 != 0
  EXPECT_THROW(FoldedClos clos(indivisible), std::invalid_argument);
  ClosParams too_many_pods;
  too_many_pods.radix = 8;
  too_many_pods.oversubscription = 3;
  too_many_pods.num_pods = 9;  // > radix
  EXPECT_THROW(FoldedClos clos(too_many_pods), std::invalid_argument);
}

TEST(FoldedClos, PathLengthCdfMatchesStructure) {
  // Fraction of 2-hop (intra-pod) ordered ToR pairs: 5/71 per ToR.
  const FoldedClos clos(paper_params());
  std::vector<Vertex> tors;
  for (Vertex t = 0; t < clos.num_tors(); ++t) tors.push_back(t);
  const auto stats = all_pairs_path_stats(clos.switch_graph());
  (void)stats;  // full-graph stats include aggs/cores; use subset below.
  const auto dist0 = bfs_distances(clos.switch_graph(), 0);
  int two = 0;
  int four = 0;
  for (Vertex t = 1; t < clos.num_tors(); ++t) {
    if (dist0[static_cast<std::size_t>(t)] == 2) ++two;
    if (dist0[static_cast<std::size_t>(t)] == 4) ++four;
  }
  EXPECT_EQ(two, 5);
  EXPECT_EQ(four, 66);
}

}  // namespace
}  // namespace opera::topo

#include "topo/failures.h"

#include <gtest/gtest.h>

namespace opera::topo {
namespace {

OperaTopology small_opera() {
  OperaParams p;
  p.num_racks = 16;
  p.num_switches = 4;
  p.seed = 5;
  return OperaTopology(p);
}

TEST(Failures, NoFailuresNoLoss) {
  const auto topo = small_opera();
  sim::Rng rng(1);
  for (const auto kind :
       {FailureKind::kLink, FailureKind::kTor, FailureKind::kCircuitSwitch}) {
    const auto report = analyze_opera_failures(topo, kind, 0.0, rng);
    EXPECT_DOUBLE_EQ(report.worst_slice_connectivity_loss, 0.0);
    EXPECT_DOUBLE_EQ(report.any_slice_connectivity_loss, 0.0);
    EXPECT_GT(report.avg_path_length, 0.0);
  }
}

TEST(Failures, OperaSurvivesOneSwitchFailure) {
  // The paper: Opera withstands 2/6 circuit switches failing (Fig. 11).
  // Use u=6 so a failed switch still leaves 4-5 active matchings per slice.
  OperaParams p;
  p.num_racks = 24;
  p.num_switches = 6;
  p.seed = 2;
  const OperaTopology topo(p);
  sim::Rng rng(2);
  const auto report =
      analyze_opera_failures(topo, FailureKind::kCircuitSwitch, 1.0 / 6.0, rng);
  EXPECT_DOUBLE_EQ(report.worst_slice_connectivity_loss, 0.0);
}

TEST(Failures, MassiveSwitchFailureDisconnects) {
  const auto topo = small_opera();
  sim::Rng rng(3);
  // 3 of 4 switches failed: slices where the survivor is also
  // reconfiguring have no links at all.
  const auto report =
      analyze_opera_failures(topo, FailureKind::kCircuitSwitch, 0.75, rng);
  EXPECT_GT(report.worst_slice_connectivity_loss, 0.5);
}

TEST(Failures, LinkFailuresIncreaseLossMonotonically) {
  const auto topo = small_opera();
  double prev = 0.0;
  for (const double frac : {0.05, 0.2, 0.4}) {
    sim::Rng rng(42);  // same draw sequence, nested failure sets not
                       // guaranteed, so allow small non-monotonic noise
    const auto report = analyze_opera_failures(topo, FailureKind::kLink, frac, rng);
    EXPECT_GE(report.any_slice_connectivity_loss + 0.05, prev);
    prev = report.any_slice_connectivity_loss;
  }
}

TEST(Failures, TorFailuresExcludeFailedFromDenominator) {
  const auto topo = small_opera();
  sim::Rng rng(4);
  // Fail 25% of ToRs; surviving pairs should mostly stay connected (Opera
  // tolerates ~7% at paper scale; small scale is more fragile but a single
  // seed check suffices for plumbing).
  const auto report = analyze_opera_failures(topo, FailureKind::kTor, 0.25, rng);
  EXPECT_LT(report.worst_slice_connectivity_loss, 1.0);
}

TEST(Failures, ClosLinkFailures) {
  ClosParams p;
  p.radix = 8;
  p.oversubscription = 3;
  const FoldedClos clos(p);
  sim::Rng rng(5);
  const auto none = analyze_clos_failures(clos, FailureKind::kLink, 0.0, rng);
  EXPECT_DOUBLE_EQ(none.worst_slice_connectivity_loss, 0.0);
  EXPECT_NEAR(none.avg_path_length, 4.0, 1.0);  // mostly inter-pod
  const auto heavy = analyze_clos_failures(clos, FailureKind::kLink, 0.4, rng);
  EXPECT_GT(heavy.worst_slice_connectivity_loss, 0.0);
}

TEST(Failures, ClosTorFailuresDontCountFailedPairs) {
  ClosParams p;
  p.radix = 8;
  p.oversubscription = 3;
  const FoldedClos clos(p);
  sim::Rng rng(6);
  // ToR failures leave the rest of the Clos fabric intact: no loss among
  // the survivors.
  const auto report = analyze_clos_failures(clos, FailureKind::kTor, 0.25, rng);
  EXPECT_DOUBLE_EQ(report.worst_slice_connectivity_loss, 0.0);
}

TEST(Failures, ExpanderResilience) {
  ExpanderParams p;
  p.num_tors = 32;
  p.uplinks = 7;
  p.seed = 7;
  const ExpanderTopology exp(p);
  sim::Rng rng(7);
  // u=7 expander: very fault tolerant (paper Fig. 20).
  const auto report = analyze_expander_failures(exp, FailureKind::kLink, 0.1, rng);
  EXPECT_DOUBLE_EQ(report.worst_slice_connectivity_loss, 0.0);
}

TEST(Failures, SubsetPathStats) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  // Vertex 4 isolated.
  const auto stats = subset_path_stats(g, {0, 2, 4});
  EXPECT_EQ(stats.connected_pairs, 2u);     // 0<->2
  EXPECT_EQ(stats.disconnected_pairs, 4u);  // pairs with 4
  EXPECT_DOUBLE_EQ(stats.average, 2.0);
}

TEST(Failures, SubsetPathStatsWithMask) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  std::vector<bool> alive(4, true);
  alive[1] = false;  // forces 0->2 through 3
  const auto stats = subset_path_stats(g, {0, 2}, &alive);
  EXPECT_EQ(stats.connected_pairs, 2u);
  EXPECT_DOUBLE_EQ(stats.average, 2.0);
}

}  // namespace
}  // namespace opera::topo

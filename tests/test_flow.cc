#include "transport/flow.h"

#include <gtest/gtest.h>

namespace opera::transport {
namespace {

Flow make_flow(std::uint64_t id, std::int64_t bytes) {
  Flow f;
  f.id = id;
  f.src_host = 0;
  f.dst_host = 1;
  f.size_bytes = bytes;
  f.start = sim::Time::zero();
  return f;
}

TEST(Flow, PacketCount) {
  EXPECT_EQ(make_flow(1, 1).total_packets(), 1u);
  EXPECT_EQ(make_flow(1, net::kMaxPayloadBytes).total_packets(), 1u);
  EXPECT_EQ(make_flow(1, net::kMaxPayloadBytes + 1).total_packets(), 2u);
  EXPECT_EQ(make_flow(1, 10 * net::kMaxPayloadBytes).total_packets(), 10u);
}

TEST(Flow, WireBytes) {
  const auto f = make_flow(1, net::kMaxPayloadBytes + 100);
  EXPECT_EQ(f.wire_bytes(0), net::kMtuBytes);
  EXPECT_EQ(f.wire_bytes(1), 100 + net::kHeaderBytes);
}

TEST(Flow, WireBytesSumMatchesSize) {
  const auto f = make_flow(1, 1'000'000);
  std::int64_t payload_total = 0;
  for (std::uint64_t s = 0; s < f.total_packets(); ++s) {
    payload_total += f.wire_bytes(s) - net::kHeaderBytes;
  }
  EXPECT_EQ(payload_total, 1'000'000);
}

TEST(FlowTracker, RegisterAndFind) {
  FlowTracker t;
  const auto id = t.next_flow_id();
  auto f = make_flow(id, 5'000);
  t.register_flow(f);
  ASSERT_NE(t.find(id), nullptr);
  EXPECT_EQ(t.find(id)->size_bytes, 5'000);
  EXPECT_EQ(t.find(9999), nullptr);
}

TEST(FlowTracker, CompletionRecordsFct) {
  FlowTracker t;
  auto f = make_flow(t.next_flow_id(), 5'000);
  f.start = sim::Time::us(10);
  t.register_flow(f);
  t.on_complete(f.id, sim::Time::us(250));
  ASSERT_EQ(t.completed(), 1u);
  EXPECT_DOUBLE_EQ(t.completions()[0].fct().to_us(), 240.0);
}

TEST(FlowTracker, CompletionHookFires) {
  FlowTracker t;
  int hooks = 0;
  t.set_completion_hook([&](const FlowRecord&) { ++hooks; });
  auto f = make_flow(t.next_flow_id(), 100);
  t.register_flow(f);
  t.on_complete(f.id, sim::Time::us(1));
  EXPECT_EQ(hooks, 1);
}

TEST(FlowTracker, DeliveryHookAccumulates) {
  FlowTracker t;
  std::int64_t delivered = 0;
  t.set_delivery_hook([&](const Flow&, std::int64_t bytes, sim::Time) { delivered += bytes; });
  auto f = make_flow(t.next_flow_id(), 100);
  t.register_flow(f);
  t.on_delivered(f.id, 60, sim::Time::us(1));
  t.on_delivered(f.id, 40, sim::Time::us(2));
  EXPECT_EQ(delivered, 100);
}

TEST(FlowTracker, FctPercentilesBySizeBucket) {
  FlowTracker t;
  for (int i = 0; i < 10; ++i) {
    auto small = make_flow(t.next_flow_id(), 1'000);
    t.register_flow(small);
    t.on_complete(small.id, sim::Time::us(10 + i));
    auto big = make_flow(t.next_flow_id(), 1'000'000);
    t.register_flow(big);
    t.on_complete(big.id, sim::Time::ms(5));
  }
  const auto small_fct = t.fct_us(0, 10'000);
  const auto big_fct = t.fct_us(10'000, 1LL << 40);
  EXPECT_EQ(small_fct.count(), 10u);
  EXPECT_EQ(big_fct.count(), 10u);
  EXPECT_LT(small_fct.percentile(99), 25.0);
  EXPECT_GT(big_fct.percentile(50), 1'000.0);
}

TEST(FlowTracker, UniqueIds) {
  FlowTracker t;
  const auto a = t.next_flow_id();
  const auto b = t.next_flow_id();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace opera::transport

// Property-based Opera topology invariants over randomized scales and
// seeds (the design-time guarantees the paper's §3.3 construction rests
// on): every matching a slice schedules is a perfect matching (or the
// diagonal), the union of matchings over one cycle is exactly the
// one-factorization of K_N plus the diagonal, and the per-slice ECMP
// tables never return an empty next-hop set for a reachable pair.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "topo/graph.h"
#include "topo/one_factorization.h"
#include "topo/opera_topology.h"

namespace opera::topo {
namespace {

struct Scale {
  Vertex racks;
  int switches;
};

// Randomized-but-reproducible sweep: a few (N, u) shapes x several seeds.
// u >= 4 keeps every slice (a union of u-1 matchings) an expander the
// generate-and-test constructor can accept; N must divide by u.
const std::vector<Scale>& scales() {
  static const std::vector<Scale> s = {{12, 4}, {16, 4}, {20, 5}, {24, 6}};
  return s;
}
const std::vector<std::uint64_t>& seeds() {
  static const std::vector<std::uint64_t> s = {1, 2, 17, 1234};
  return s;
}

OperaTopology make(const Scale& sc, std::uint64_t seed) {
  OperaParams p;
  p.num_racks = sc.racks;
  p.num_switches = sc.switches;
  p.hosts_per_rack = 4;
  p.seed = seed;
  return OperaTopology(p);
}

TEST(TopologyProperties, EverySliceMatchingIsPerfectOrDiagonal) {
  for (const auto& sc : scales()) {
    for (const auto seed : seeds()) {
      const auto topo = make(sc, seed);
      for (int slice = 0; slice < topo.num_slices(); ++slice) {
        for (int sw = 0; sw < topo.num_switches(); ++sw) {
          const auto& m = topo.matchings()[topo.matching_index(sw, slice)];
          ASSERT_TRUE(is_valid_matching(m))
              << "N=" << sc.racks << " u=" << sc.switches << " seed=" << seed
              << " slice=" << slice << " sw=" << sw;
          // Even N: each matching is perfect (no self-matches) or the full
          // diagonal (the paper's identity slot — all self-matches).
          int self = 0;
          for (Vertex v = 0; v < sc.racks; ++v) {
            if (m[static_cast<std::size_t>(v)] == v) ++self;
          }
          EXPECT_TRUE(self == 0 || self == sc.racks)
              << "matching neither perfect nor diagonal: " << self << " of "
              << sc.racks << " self-matched (N=" << sc.racks << " seed=" << seed
              << ")";
        }
      }
    }
  }
}

TEST(TopologyProperties, CycleUnionIsCompleteOneFactorization) {
  for (const auto& sc : scales()) {
    for (const auto seed : seeds()) {
      const auto topo = make(sc, seed);
      ASSERT_EQ(topo.num_slices(), sc.racks);
      ASSERT_TRUE(is_complete_factorization(topo.matchings()))
          << "N=" << sc.racks << " u=" << sc.switches << " seed=" << seed;

      // Cross-check against the schedule itself: every ordered rack pair
      // gets a direct circuit in at least one slice of the cycle.
      std::set<std::pair<Vertex, Vertex>> covered;
      for (int slice = 0; slice < topo.num_slices(); ++slice) {
        const int down = topo.reconfiguring_switch(slice);
        for (int sw = 0; sw < topo.num_switches(); ++sw) {
          if (sw == down) continue;
          for (Vertex r = 0; r < sc.racks; ++r) {
            const Vertex peer = topo.circuit_peer(sw, r, slice);
            if (peer != r) covered.insert({r, peer});
          }
        }
      }
      EXPECT_EQ(covered.size(),
                static_cast<std::size_t>(sc.racks) *
                    static_cast<std::size_t>(sc.racks - 1))
          << "N=" << sc.racks << " u=" << sc.switches << " seed=" << seed;
    }
  }
}

TEST(TopologyProperties, NextHopsNeverEmptyForReachablePairs) {
  for (const auto& sc : scales()) {
    for (const auto seed : seeds()) {
      const auto topo = make(sc, seed);
      for (int slice = 0; slice < topo.num_slices(); ++slice) {
        const Graph g = topo.slice_graph(slice);
        const EcmpTable routes = topo.slice_routes(slice);
        for (Vertex dst = 0; dst < g.num_vertices(); ++dst) {
          // dist[v] = hops v -> dst (undirected, so BFS from dst serves
          // every source at once).
          const auto dist = bfs_distances(g, dst);
          for (Vertex src = 0; src < g.num_vertices(); ++src) {
            if (src == dst) continue;
            const auto hops = routes.next_hops(src, dst);
            if (dist[static_cast<std::size_t>(src)] < 0) {
              EXPECT_TRUE(hops.empty());
              continue;
            }
            ASSERT_FALSE(hops.empty())
                << "reachable pair (" << src << " -> " << dst << ") slice "
                << slice << " N=" << sc.racks << " seed=" << seed;
            // And every listed hop makes strict progress toward dst.
            for (const Vertex h : hops) {
              EXPECT_EQ(dist[static_cast<std::size_t>(h)],
                        dist[static_cast<std::size_t>(src)] - 1)
                  << "non-shortest hop " << h << " for (" << src << " -> "
                  << dst << ")";
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace opera::topo

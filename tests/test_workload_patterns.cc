// The three datacenter traffic patterns added for the paper-scale sweeps:
//   * golden regression — a fixed seed must reproduce the exact flow list
//     (the generators feed recorded benches; silent drift would invalidate
//     every baseline comparison);
//   * structural invariants over randomized seeds;
//   * an exp::Experiment smoke run per pattern on the quick testbed.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "exp/experiment.h"
#include "exp/testbed.h"
#include "workload/synthetic.h"

namespace opera::workload {
namespace {

struct GoldenFlow {
  std::int32_t src;
  std::int32_t dst;
  std::int64_t bytes;
  std::int64_t start_ps;
};

void expect_golden(const std::vector<FlowSpec>& flows,
                   const std::vector<GoldenFlow>& golden) {
  ASSERT_EQ(flows.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(flows[i].src_host, golden[i].src) << "flow " << i;
    EXPECT_EQ(flows[i].dst_host, golden[i].dst) << "flow " << i;
    EXPECT_EQ(flows[i].size_bytes, golden[i].bytes) << "flow " << i;
    EXPECT_EQ(flows[i].start.picoseconds(), golden[i].start_ps) << "flow " << i;
  }
}

TEST(WorkloadGolden, IncastSeed5) {
  sim::Rng rng(5);
  IncastParams p;
  p.events = 2;
  p.fanin = 4;
  p.flow_bytes = 1000;
  p.spacing = sim::Time::us(100);
  expect_golden(incast_workload(12, 3, p, rng),
                {
                    {3, 6, 1000, 0},
                    {2, 6, 1000, 0},
                    {11, 6, 1000, 0},
                    {5, 6, 1000, 0},
                    {2, 3, 1000, 100000000},
                    {11, 3, 1000, 100000000},
                    {7, 3, 1000, 100000000},
                    {9, 3, 1000, 100000000},
                });
}

TEST(WorkloadGolden, StorageReplicationSeed6) {
  sim::Rng rng(6);
  StorageReplicationParams p;
  p.writes = 2;
  p.replicas = 2;
  p.object_bytes = 5000;
  p.spacing = sim::Time::us(50);
  p.chain_delay = sim::Time::us(10);
  expect_golden(storage_replication_workload(12, 3, p, rng),
                {
                    {2, 7, 5000, 0},
                    {7, 10, 5000, 10000000},
                    {6, 11, 5000, 50000000},
                    {11, 1, 5000, 60000000},
                });
}

TEST(WorkloadGolden, MlCollectiveSeed7) {
  sim::Rng rng(7);
  MlCollectiveParams p;
  p.group_size = 4;
  p.model_bytes = 4000;
  p.step_interval = sim::Time::us(20);
  // One ring of 4 (shuffled placement [3,0,2,1]), 2*(4-1) = 6 steps of one
  // 1000 B chunk from each member to its successor.
  std::vector<GoldenFlow> golden;
  const std::vector<GoldenFlow> step = {
      {3, 0, 1000, 0}, {0, 2, 1000, 0}, {2, 1, 1000, 0}, {1, 3, 1000, 0}};
  for (int s = 0; s < 6; ++s) {
    for (const auto& f : step) {
      golden.push_back({f.src, f.dst, f.bytes, s * 20'000'000LL});
    }
  }
  expect_golden(ml_collective_workload(4, 2, p, rng), golden);
}

// --- Randomized structural invariants ------------------------------------

TEST(WorkloadInvariants, IncastWorkersDistinctAndCrossRack) {
  for (const std::uint64_t seed : {1u, 9u, 42u}) {
    sim::Rng rng(seed);
    IncastParams p;
    p.events = 5;
    p.fanin = 10;
    const auto flows = incast_workload(36, 4, p, rng);
    ASSERT_EQ(flows.size(), 50u);
    for (int e = 0; e < p.events; ++e) {
      std::set<std::int32_t> workers;
      const std::int32_t aggregator = flows[static_cast<std::size_t>(e * 10)].dst_host;
      for (int i = 0; i < 10; ++i) {
        const auto& f = flows[static_cast<std::size_t>(e * 10 + i)];
        EXPECT_EQ(f.dst_host, aggregator);  // one sink per event
        EXPECT_NE(f.src_host / 4, aggregator / 4) << "rack-local worker";
        workers.insert(f.src_host);
        EXPECT_EQ(f.start, p.spacing * e);
      }
      EXPECT_EQ(workers.size(), 10u) << "duplicate worker in event " << e;
    }
  }
}

TEST(WorkloadInvariants, IncastFaninCappedAtEligibleHosts) {
  sim::Rng rng(3);
  IncastParams p;
  p.events = 1;
  p.fanin = 1000;  // far more than the 8 hosts outside the aggregator rack
  const auto flows = incast_workload(12, 4, p, rng);
  EXPECT_EQ(flows.size(), 8u);
}

TEST(WorkloadInvariants, StorageChainRackDisjointAndPipelined) {
  for (const std::uint64_t seed : {2u, 8u, 77u}) {
    sim::Rng rng(seed);
    StorageReplicationParams p;
    p.writes = 10;
    p.replicas = 3;
    const auto flows = storage_replication_workload(48, 4, p, rng);
    ASSERT_EQ(flows.size(), 30u);
    for (int w = 0; w < p.writes; ++w) {
      std::set<std::int32_t> racks;
      racks.insert(flows[static_cast<std::size_t>(w * 3)].src_host / 4);  // client rack
      for (int c = 0; c < 3; ++c) {
        const auto& f = flows[static_cast<std::size_t>(w * 3 + c)];
        if (c > 0) {
          // Chain: this hop's source is the previous hop's destination.
          EXPECT_EQ(f.src_host, flows[static_cast<std::size_t>(w * 3 + c - 1)].dst_host);
        }
        EXPECT_EQ(f.start, p.spacing * w + p.chain_delay * c);
        EXPECT_TRUE(racks.insert(f.dst_host / 4).second)
            << "replica rack reused in write " << w;
      }
    }
  }
}

TEST(WorkloadInvariants, StorageChainClampsToAvailableRacks) {
  // 3 racks can host at most 2 rack-disjoint copies; asking for 3 must
  // shorten the chain, not read past the candidate rack list.
  sim::Rng rng(5);
  StorageReplicationParams p;
  p.writes = 4;
  p.replicas = 3;
  const auto flows = storage_replication_workload(12, 4, p, rng);
  ASSERT_EQ(flows.size(), 8u);  // 4 writes x 2 placeable copies
  for (const auto& f : flows) {
    EXPECT_GE(f.dst_host, 0);
    EXPECT_LT(f.dst_host, 12);
  }
}

TEST(WorkloadInvariants, StorageImpossibleSpecFailsLoudlyWithNoFlows) {
  // Impossible specs must return an empty workload (plus a stderr
  // diagnostic) instead of asserting in debug and silently simulating
  // garbage in release: a replica-less write, and a one-rack fabric that
  // cannot host any rack-disjoint copy.
  sim::Rng rng(5);
  StorageReplicationParams p;
  p.writes = 4;
  p.replicas = 0;
  EXPECT_TRUE(storage_replication_workload(12, 4, p, rng).empty());
  p.replicas = 3;
  EXPECT_TRUE(storage_replication_workload(4, 4, p, rng).empty());
}

TEST(WorkloadInvariants, MlCollectiveRingsPartitionAndBalance) {
  for (const std::uint64_t seed : {4u, 21u}) {
    sim::Rng rng(seed);
    MlCollectiveParams p;
    p.group_size = 6;
    p.model_bytes = 6000;
    const auto flows = ml_collective_workload(30, 5, p, rng);
    // 5 rings x 10 steps x 6 members.
    ASSERT_EQ(flows.size(), 300u);
    // Every host appears as a source exactly 2*(g-1) times and sends only
    // to its fixed ring successor.
    std::vector<int> sends(30, 0);
    std::vector<std::int32_t> successor(30, -1);
    for (const auto& f : flows) {
      EXPECT_EQ(f.size_bytes, 1000);
      ++sends[static_cast<std::size_t>(f.src_host)];
      if (successor[static_cast<std::size_t>(f.src_host)] < 0) {
        successor[static_cast<std::size_t>(f.src_host)] = f.dst_host;
      } else {
        EXPECT_EQ(successor[static_cast<std::size_t>(f.src_host)], f.dst_host);
      }
    }
    for (int h = 0; h < 30; ++h) EXPECT_EQ(sends[static_cast<std::size_t>(h)], 10);
  }
}

// --- exp::Experiment smoke run per pattern on the quick testbed ----------

TEST(WorkloadSmoke, EachPatternRunsOnQuickTestbedOpera) {
  const auto config = exp::Testbed::quick().opera();
  const std::int32_t hosts = config.num_hosts();
  const std::int32_t hpr = config.opera.hosts_per_rack;

  std::vector<std::pair<std::string, std::vector<FlowSpec>>> patterns;
  {
    sim::Rng rng(1);
    IncastParams p;
    p.events = 2;
    p.fanin = 8;
    p.flow_bytes = 20'000;
    patterns.emplace_back("incast", incast_workload(hosts, hpr, p, rng));
  }
  {
    sim::Rng rng(2);
    StorageReplicationParams p;
    p.writes = 4;
    p.object_bytes = 100'000;
    patterns.emplace_back("storage",
                          storage_replication_workload(hosts, hpr, p, rng));
  }
  {
    sim::Rng rng(3);
    MlCollectiveParams p;
    p.group_size = 4;
    p.model_bytes = 40'000;
    patterns.emplace_back("ml_collective",
                          ml_collective_workload(hosts, hpr, p, rng));
  }

  const char* argv[] = {"test_workload_patterns"};
  exp::Experiment ex("workload pattern smoke", 1, const_cast<char**>(argv));
  for (const auto& [name, flows] : patterns) {
    ASSERT_FALSE(flows.empty()) << name;
    exp::Experiment::RunOptions opts;
    opts.horizon = sim::Time::ms(30);
    const auto result = ex.run(name, config, flows, opts);
    EXPECT_EQ(result.submitted, flows.size()) << name;
    EXPECT_EQ(result.net->tracker().completed(), flows.size())
        << name << ": not all flows completed by the horizon";
  }
}

}  // namespace
}  // namespace opera::workload

#include "core/expander_network.h"

#include <gtest/gtest.h>

namespace opera::core {
namespace {

ExpanderNetConfig small_config() {
  ExpanderNetConfig cfg;
  cfg.structure.num_tors = 16;
  cfg.structure.uplinks = 5;
  cfg.structure.hosts_per_tor = 3;  // 48 hosts
  cfg.structure.seed = 9;
  cfg.seed = 10;
  return cfg;
}

TEST(ExpanderNetwork, Builds) {
  ExpanderNetwork net(small_config());
  EXPECT_EQ(net.num_hosts(), 48);
}

TEST(ExpanderNetwork, ShortFlowLowLatency) {
  ExpanderNetwork net(small_config());
  net.submit_flow(0, 47, 10'000, sim::Time::zero());
  net.run_until(sim::Time::ms(1));
  ASSERT_EQ(net.tracker().completed(), 1u);
  EXPECT_LT(net.tracker().completions()[0].fct().to_us(), 50.0);
}

TEST(ExpanderNetwork, AllPairsReachable) {
  ExpanderNetwork net(small_config());
  sim::Rng rng(4);
  for (int i = 0; i < 120; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(48));
    auto dst = static_cast<std::int32_t>(rng.index(48));
    if (dst == src) dst = (dst + 1) % 48;
    net.submit_flow(src, dst, 2'000 + static_cast<std::int64_t>(rng.index(20'000)),
                    sim::Time::us(static_cast<std::int64_t>(rng.index(400))));
  }
  net.run_until(sim::Time::ms(20));
  EXPECT_EQ(net.tracker().completed(), 120u);
}

TEST(ExpanderNetwork, MultiHopPathsDeliverBytes) {
  ExpanderNetwork net(small_config());
  std::int64_t delivered = 0;
  net.tracker().set_delivery_hook(
      [&](const transport::Flow&, std::int64_t b, sim::Time) { delivered += b; });
  net.submit_flow(0, 47, 500'000, sim::Time::zero());
  net.run_until(sim::Time::ms(5));
  EXPECT_EQ(delivered, 500'000);
}

TEST(ExpanderNetwork, BandwidthTaxVisibleOnAllToAll) {
  // All-to-all bulk-ish load: expander pays the multi-hop tax, so aggregate
  // completion takes longer than the single-flow baseline would suggest.
  // This is a smoke check that heavy load completes (tax effects are
  // quantified in the benches).
  ExpanderNetwork net(small_config());
  for (int s = 0; s < 16; ++s) {
    for (int t = 0; t < 16; ++t) {
      if (s == t) continue;
      net.submit_flow(s * 3, t * 3 + 1, 100'000, sim::Time::zero(),
                      net::TrafficClass::kLowLatency);
    }
  }
  net.run_until(sim::Time::ms(200));
  EXPECT_EQ(net.tracker().completed(), 240u);
}

}  // namespace
}  // namespace opera::core

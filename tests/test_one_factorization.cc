#include "topo/one_factorization.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/rng.h"

namespace opera::topo {
namespace {

TEST(OneFactorization, SmallEvenComplete) {
  for (const Vertex n : {2, 4, 6, 8}) {
    const auto ms = circle_factorization(n);
    EXPECT_EQ(ms.size(), static_cast<std::size_t>(n)) << "n=" << n;
    EXPECT_TRUE(is_complete_factorization(ms)) << "n=" << n;
  }
}

TEST(OneFactorization, OddNComplete) {
  for (const Vertex n : {3, 5, 7, 9, 27}) {
    const auto ms = circle_factorization(n);
    EXPECT_EQ(ms.size(), static_cast<std::size_t>(n)) << "n=" << n;
    EXPECT_TRUE(is_complete_factorization(ms)) << "n=" << n;
  }
}

TEST(OneFactorization, PaperScale108) {
  const auto ms = circle_factorization(108);
  EXPECT_EQ(ms.size(), 108u);
  EXPECT_TRUE(is_complete_factorization(ms));
}

TEST(OneFactorization, EvenMatchingsArePerfectExceptIdentity) {
  const auto ms = circle_factorization(10);
  int identity_count = 0;
  for (const auto& m : ms) {
    int self_matched = 0;
    for (Vertex v = 0; v < 10; ++v) {
      if (m[static_cast<std::size_t>(v)] == v) ++self_matched;
    }
    if (self_matched == 10) ++identity_count;
    else EXPECT_EQ(self_matched, 0);  // perfect matching
  }
  EXPECT_EQ(identity_count, 1);
}

TEST(OneFactorization, OddMatchingsHaveOneSelfMatch) {
  const auto ms = circle_factorization(9);
  for (const auto& m : ms) {
    int self_matched = 0;
    for (Vertex v = 0; v < 9; ++v) {
      if (m[static_cast<std::size_t>(v)] == v) ++self_matched;
    }
    EXPECT_EQ(self_matched, 1);
  }
}

TEST(OneFactorization, RandomFactorizationIsComplete) {
  sim::Rng rng(123);
  for (const Vertex n : {6, 16, 54}) {
    const auto ms = random_factorization(n, rng);
    EXPECT_EQ(ms.size(), static_cast<std::size_t>(n));
    EXPECT_TRUE(is_complete_factorization(ms)) << "n=" << n;
  }
}

TEST(OneFactorization, RandomSeedsGiveDifferentFactorizations) {
  sim::Rng rng1(1);
  sim::Rng rng2(2);
  const auto a = random_factorization(16, rng1);
  const auto b = random_factorization(16, rng2);
  EXPECT_NE(a, b);
}

TEST(OneFactorization, LiftDoubleProducesComplete) {
  const auto base = circle_factorization(8);
  const auto lifted = lift_double(base);
  EXPECT_EQ(lifted.size(), 16u);
  EXPECT_TRUE(is_complete_factorization(lifted));
}

TEST(OneFactorization, LiftTwiceReachesPaperScale) {
  // 27 is odd; use 54 = 2*27 via direct construction, then lift to 108 —
  // the paper's graph-lifting route to large factorizations.
  const auto base = circle_factorization(54);
  ASSERT_TRUE(is_complete_factorization(base));
  const auto lifted = lift_double(base);
  EXPECT_EQ(lifted.size(), 108u);
  EXPECT_TRUE(is_complete_factorization(lifted));
}

TEST(OneFactorization, UnionGraphOfAllMatchingsIsComplete) {
  const auto ms = circle_factorization(12);
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < ms.size(); ++i) all.push_back(i);
  const Graph g = union_graph(ms, all);
  EXPECT_EQ(g.num_edges(), 12u * 11u / 2u);
}

TEST(OneFactorization, ValidMatchingRejectsNonInvolution) {
  Matching m{1, 2, 0};  // a 3-cycle, not an involution
  EXPECT_FALSE(is_valid_matching(m));
  Matching ok{1, 0, 2};
  EXPECT_TRUE(is_valid_matching(ok));
}

TEST(OneFactorization, IncompleteFactorizationDetected) {
  auto ms = circle_factorization(6);
  ms.pop_back();  // drop one matching: coverage hole
  EXPECT_FALSE(is_complete_factorization(ms));
}

TEST(OneFactorization, SuccessPathIdenticalWithExplicitDefaultBudget) {
  // The budget parameter must not perturb the no-bump path: same seed,
  // default vs spelled-out default budget, byte-identical factorization.
  sim::Rng rng1(123);
  sim::Rng rng2(123);
  const auto a = random_factorization(16, rng1);
  const auto b = random_factorization(16, rng2, FactorizationBudget{});
  EXPECT_EQ(a, b);
}

TEST(OneFactorization, SeedBumpRecoversFromExhaustedBudget) {
  // Budget of one restart with one matching retry per round wedges on
  // attempt 0 for this seed (probed offline); the generator must then warn
  // on stderr with the bumped seed and still produce a complete
  // factorization instead of throwing.
  const FactorizationBudget tight{1, 1, 64};
  sim::Rng rng(4);
  testing::internal::CaptureStderr();
  const auto ms = random_factorization(54, rng, tight);
  const std::string warnings = testing::internal::GetCapturedStderr();
  EXPECT_NE(warnings.find("bumping to seed"), std::string::npos) << warnings;
  EXPECT_EQ(ms.size(), 54u);
  EXPECT_TRUE(is_complete_factorization(ms));
}

TEST(OneFactorization, ThrowsOnlyAfterAllSeedBumpsFail) {
  // max_restarts = 0 makes every attempt fail deterministically, so the
  // generator must burn exactly seed_bumps bumps (each warned) and then
  // throw — the pre-retry behavior of throwing on first exhaustion is gone.
  const FactorizationBudget hopeless{0, 1, 3};
  sim::Rng rng(7);
  testing::internal::CaptureStderr();
  EXPECT_THROW(random_factorization(16, rng, hopeless), std::runtime_error);
  const std::string warnings = testing::internal::GetCapturedStderr();
  std::size_t bumps = 0;
  for (std::size_t pos = warnings.find("bumping to seed");
       pos != std::string::npos;
       pos = warnings.find("bumping to seed", pos + 1)) {
    ++bumps;
  }
  EXPECT_EQ(bumps, 3u) << warnings;
}

// Property sweep: completeness holds across a range of sizes.
class FactorizationSweep : public ::testing::TestWithParam<Vertex> {};

TEST_P(FactorizationSweep, CompleteAndValid) {
  const Vertex n = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(n) * 7919);
  const auto ms = random_factorization(n, rng);
  ASSERT_EQ(ms.size(), static_cast<std::size_t>(n));
  for (const auto& m : ms) EXPECT_TRUE(is_valid_matching(m));
  EXPECT_TRUE(is_complete_factorization(ms));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FactorizationSweep,
                         ::testing::Values(2, 3, 4, 5, 8, 12, 16, 21, 32, 48,
                                           64, 81, 100, 108, 128));

}  // namespace
}  // namespace opera::topo

// RotorLB agent and relay-buffer unit tests on a two-host wire.
#include "transport/rotorlb.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/host.h"
#include "sim/simulator.h"

namespace opera::transport {
namespace {

class Wire {
 public:
  Wire() {
    net::PortQueue::Config q;
    q.bulk_capacity_bytes = 100'000'000;
    a = std::make_unique<net::Host>(sim, "a", 0, 0);
    b = std::make_unique<net::Host>(sim, "b", 1, 1);
    a->add_port(10e9, sim::Time::ns(500), q);
    b->add_port(10e9, sim::Time::ns(500), q);
    a->uplink().connect(b.get(), 0);
    b->uplink().connect(a.get(), 0);
    agent = std::make_unique<RotorLbAgent>(*a, tracker, /*num_racks=*/4);
  }

  Flow make_flow(std::int64_t bytes, std::int32_t dst_rack = 1) {
    Flow f;
    f.id = tracker.next_flow_id();
    f.src_host = 0;
    f.dst_host = 1;
    f.src_rack = 0;
    f.dst_rack = dst_rack;
    f.size_bytes = bytes;
    f.tclass = net::TrafficClass::kBulk;
    f.start = sim.now();
    tracker.register_flow(f);
    return f;
  }

  sim::Simulator sim;
  FlowTracker tracker;
  std::unique_ptr<net::Host> a;
  std::unique_ptr<net::Host> b;
  std::unique_ptr<RotorLbAgent> agent;
};

TEST(RotorLbAgent, QueuesByDestinationRack) {
  Wire w;
  w.agent->add_flow(w.make_flow(10'000, 1));
  w.agent->add_flow(w.make_flow(20'000, 2));
  EXPECT_GT(w.agent->queued_bytes(1), 10'000);  // wire bytes include headers
  EXPECT_GT(w.agent->queued_bytes(2), 20'000);
  EXPECT_EQ(w.agent->queued_bytes(3), 0);
  EXPECT_EQ(w.agent->total_queued(),
            w.agent->queued_bytes(1) + w.agent->queued_bytes(2));
}

TEST(RotorLbAgent, GrantDirectRespectsBudget) {
  Wire w;
  w.agent->add_flow(w.make_flow(100'000, 1));
  const auto sent = w.agent->grant_direct(1, 10'000);
  EXPECT_GT(sent, 0);
  EXPECT_LE(sent, 10'000 + net::kMtuBytes);  // may overshoot by < 1 MTU
  EXPECT_EQ(w.agent->total_queued() + sent,
            w.agent->queued_bytes(1) + sent);  // bookkeeping consistent
}

TEST(RotorLbAgent, GrantDirectWrongRackSendsNothing) {
  Wire w;
  w.agent->add_flow(w.make_flow(100'000, 2));
  EXPECT_EQ(w.agent->grant_direct(1, 50'000), 0);
}

TEST(RotorLbAgent, PacketsArriveAtSink) {
  Wire w;
  const Flow f = w.make_flow(30'000, 1);
  auto sink = std::make_unique<RotorLbSink>(*w.b, f, w.tracker);
  w.b->register_flow(f.id, [&sink](net::PacketPtr p) { sink->on_packet(std::move(p)); });
  w.agent->add_flow(f);
  while (w.agent->queued_bytes(1) > 0) {
    (void)w.agent->grant_direct(1, 1'000'000);
  }
  w.sim.run_until(sim::Time::ms(1));
  EXPECT_EQ(w.tracker.completed(), 1u);
  EXPECT_TRUE(sink->complete());
}

TEST(RotorLbAgent, VlbMarksRelayPackets) {
  Wire w;
  w.agent->add_flow(w.make_flow(10'000, 2));  // destined rack 2
  // Granting VLB via rack 1 should send the rack-2 traffic with relay
  // markings; host b (rack 1 stand-in) will receive marked packets.
  net::PacketPtr seen;
  w.b->set_default_handler([&](net::Host&, net::PacketPtr p) { seen = std::move(p); });
  std::vector<std::int64_t> in_budget(4, 1'000'000);
  const auto sent = w.agent->grant_vlb(1, 5'000, std::span<std::int64_t>(in_budget));
  EXPECT_GT(sent, 0);
  w.sim.run_until(sim::Time::ms(1));
  ASSERT_NE(seen, nullptr);
  EXPECT_TRUE(seen->vlb_relay);
  EXPECT_EQ(seen->relay_rack, 1);
  EXPECT_EQ(seen->dst_rack, 2);
}

TEST(RotorLbAgent, VlbSkipsTrafficDestinedToRelay) {
  Wire w;
  w.agent->add_flow(w.make_flow(10'000, 1));
  // All queued traffic is for rack 1; VLB via rack 1 must send nothing.
  std::vector<std::int64_t> in_budget(4, 1'000'000);
  EXPECT_EQ(w.agent->grant_vlb(1, 50'000, std::span<std::int64_t>(in_budget)), 0);
}

TEST(RotorLbAgent, NackRequeuesPacket) {
  Wire w;
  const Flow f = w.make_flow(30'000, 1);
  w.agent->add_flow(f);
  while (w.agent->queued_bytes(1) > 0) {
    (void)w.agent->grant_direct(1, 1'000'000);
  }
  EXPECT_EQ(w.agent->queued_bytes(1), 0);
  w.agent->handle_nack(f.id, 3);
  EXPECT_EQ(w.agent->queued_bytes(1), f.wire_bytes(3));
  // Re-granting sends exactly that packet again.
  EXPECT_EQ(w.agent->grant_direct(1, 1'000'000), f.wire_bytes(3));
}

TEST(RotorRelayBuffer, StoreAndTake) {
  RotorRelayBuffer buf(4);
  for (int i = 0; i < 3; ++i) {
    auto pkt = net::make_packet();
    pkt->size_bytes = 1'000;
    pkt->dst_rack = 2;
    pkt->vlb_relay = true;
    pkt->relay_rack = 1;
    buf.store(std::move(pkt));
  }
  EXPECT_EQ(buf.queued_bytes(2), 3'000);
  const auto taken = buf.take(2, 2'000);
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(buf.queued_bytes(2), 1'000);
  // Relay markings cleared for the final direct hop.
  EXPECT_FALSE(taken[0]->vlb_relay);
  EXPECT_EQ(taken[0]->relay_rack, -1);
}

TEST(RotorRelayBuffer, TakeEmptyRack) {
  RotorRelayBuffer buf(4);
  EXPECT_TRUE(buf.take(3, 10'000).empty());
  EXPECT_EQ(buf.total_bytes(), 0);
}

TEST(RotorLbAgent, SinkIgnoresDuplicates) {
  Wire w;
  const Flow f = w.make_flow(5'000, 1);
  RotorLbSink sink(*w.b, f, w.tracker);
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t s = 0; s < f.total_packets(); ++s) {
      auto pkt = net::make_packet();
      pkt->flow_id = f.id;
      pkt->seq = s;
      pkt->type = net::PacketType::kData;
      pkt->size_bytes = f.wire_bytes(s);
      sink.on_packet(std::move(pkt));
    }
  }
  EXPECT_TRUE(sink.complete());
  EXPECT_EQ(w.tracker.completed(), 1u);  // reported once
}

}  // namespace
}  // namespace opera::transport

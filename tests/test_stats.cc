#include "sim/stats.h"

#include <gtest/gtest.h>

namespace opera::sim {
namespace {

TEST(PercentileSampler, BasicPercentiles) {
  PercentileSampler s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(PercentileSampler, SingleSample) {
  PercentileSampler s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(PercentileSampler, AddAfterQueryResorts) {
  PercentileSampler s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat r;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) r.add(v);
  EXPECT_DOUBLE_EQ(r.mean(), 5.0);
  EXPECT_NEAR(r.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_EQ(r.count(), 8u);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat r;
  EXPECT_DOUBLE_EQ(r.mean(), 0.0);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
}

TEST(LogHistogram, CdfReachesOne) {
  LogHistogram h(1e2, 1e9);
  h.add(150.0);
  h.add(1e6);
  h.add(5e8);
  const auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
}

TEST(LogHistogram, WeightsShiftCdf) {
  // 90% of weight at small values, 10% at large: CDF at mid-range ~0.9.
  LogHistogram h(1.0, 1e6);
  h.add(10.0, 9.0);
  h.add(1e5, 1.0);
  const auto cdf = h.cdf();
  double at_1000 = 0.0;
  for (const auto& p : cdf) {
    if (p.value <= 1000.0) at_1000 = p.cumulative;
  }
  EXPECT_NEAR(at_1000, 0.9, 1e-9);
}

TEST(LogHistogram, OutOfRangeClamped) {
  LogHistogram h(10.0, 1000.0);
  h.add(1.0);      // below lo -> first bucket
  h.add(1e9);      // above hi -> last bucket
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
  EXPECT_DOUBLE_EQ(h.cdf().back().cumulative, 1.0);
}

TEST(ThroughputSeries, BinsBytes) {
  ThroughputSeries ts(Time::ms(1));
  ts.record(Time::us(100), 1250);   // bin 0
  ts.record(Time::us(900), 1250);   // bin 0
  ts.record(Time::us(1500), 2500);  // bin 1
  const auto s = ts.series();
  ASSERT_EQ(s.size(), 2u);
  // 2500 B in 1 ms = 20 Mb/s.
  EXPECT_DOUBLE_EQ(s[0].bits_per_second, 20e6);
  EXPECT_DOUBLE_EQ(s[1].bits_per_second, 20e6);
  EXPECT_EQ(ts.total_bytes(), 5000);
}

TEST(ThroughputSeries, EmptyBinsAreZero) {
  ThroughputSeries ts(Time::ms(1));
  ts.record(Time::ms(3), 1000);
  const auto s = ts.series();
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0].bits_per_second, 0.0);
  EXPECT_DOUBLE_EQ(s[2].bits_per_second, 0.0);
  EXPECT_GT(s[3].bits_per_second, 0.0);
}

}  // namespace
}  // namespace opera::sim

#include "core/clos_network.h"

#include <gtest/gtest.h>

namespace opera::core {
namespace {

ClosNetConfig small_config() {
  ClosNetConfig cfg;
  cfg.structure.radix = 8;
  cfg.structure.oversubscription = 3;
  cfg.structure.num_pods = 4;  // 16 ToRs x 6 hosts = 96 hosts
  cfg.seed = 5;
  return cfg;
}

TEST(ClosNetwork, Builds) {
  ClosNetwork net(small_config());
  EXPECT_EQ(net.num_hosts(), 96);
  EXPECT_EQ(net.rack_of_host(0), 0);
  EXPECT_EQ(net.rack_of_host(95), 15);
}

TEST(ClosNetwork, IntraRackFlow) {
  ClosNetwork net(small_config());
  net.submit_flow(0, 1, 10'000, sim::Time::zero());
  net.run_until(sim::Time::ms(1));
  ASSERT_EQ(net.tracker().completed(), 1u);
  EXPECT_LT(net.tracker().completions()[0].fct().to_us(), 30.0);
}

TEST(ClosNetwork, IntraPodFlow) {
  ClosNetwork net(small_config());
  // Hosts 0 (rack 0) and 11 (rack 1): same pod, ToR-agg-ToR.
  net.submit_flow(0, 11, 10'000, sim::Time::zero());
  net.run_until(sim::Time::ms(1));
  ASSERT_EQ(net.tracker().completed(), 1u);
  EXPECT_LT(net.tracker().completions()[0].fct().to_us(), 40.0);
}

TEST(ClosNetwork, CrossPodFlow) {
  ClosNetwork net(small_config());
  // Host 0 (pod 0) to host 95 (pod 3): 4 switch hops.
  net.submit_flow(0, 95, 10'000, sim::Time::zero());
  net.run_until(sim::Time::ms(1));
  ASSERT_EQ(net.tracker().completed(), 1u);
  EXPECT_LT(net.tracker().completions()[0].fct().to_us(), 60.0);
}

TEST(ClosNetwork, ManyCrossPodFlowsAllComplete) {
  ClosNetwork net(small_config());
  sim::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(96));
    auto dst = static_cast<std::int32_t>(rng.index(96));
    if (dst == src) dst = (dst + 1) % 96;
    net.submit_flow(src, dst, 5'000 + static_cast<std::int64_t>(rng.index(40'000)),
                    sim::Time::us(static_cast<std::int64_t>(rng.index(500))));
  }
  net.run_until(sim::Time::ms(20));
  EXPECT_EQ(net.tracker().completed(), 100u);
}

TEST(ClosNetwork, PriorityProtectsShortFlows) {
  // A long bulk flow plus short flows on overlapping paths: short-flow
  // tail FCT stays low because of strict priority.
  ClosNetwork net(small_config());
  net.submit_flow(0, 95, 50'000'000, sim::Time::zero());  // bulk class
  for (int i = 0; i < 30; ++i) {
    net.submit_flow(1, 94, 5'000, sim::Time::us(50 * i));
  }
  net.run_until(sim::Time::ms(100));
  const auto small = net.tracker().fct_us(0, 1'000'000);
  ASSERT_EQ(small.count(), 30u);
  EXPECT_LT(small.percentile(99), 100.0);
}

TEST(ClosNetwork, OversubscriptionLimitsCrossPodBandwidth) {
  // 3:1 oversubscribed: a rack's 6 hosts all sending out of the pod share
  // 2 uplinks (radix 8, F=3 -> d=6, u=2).
  ClosNetConfig cfg = small_config();
  ClosNetwork net(cfg);
  // All 6 hosts of rack 0 send 1 MB to distinct cross-pod destinations.
  for (int h = 0; h < 6; ++h) {
    net.submit_flow(h, 48 + h * 6, 1'000'000, sim::Time::zero(),
                    net::TrafficClass::kLowLatency);
  }
  net.run_until(sim::Time::ms(50));
  ASSERT_EQ(net.tracker().completed(), 6u);
  // 6 MB over 2 uplinks at 10G = ~2.4 ms minimum; solo it would be 0.8 ms.
  double worst = 0.0;
  for (const auto& rec : net.tracker().completions()) {
    worst = std::max(worst, rec.fct().to_ms());
  }
  EXPECT_GT(worst, 2.0);
}

}  // namespace
}  // namespace opera::core

// fluid::FluidNetwork / fluid::RotorRateLb property tests.
//
// The fluid engine has no packets to conserve, so its invariants are the
// rate allocator's capacity accounting and the integrator's byte
// bookkeeping: per-slice deliver rates never exceed any rack's circuit
// budget or a host NIC, every flow delivers exactly its size, VLB bytes
// are taxed 2x in circuit-traversal accounting, and the whole thing is
// bit-identical across --threads values, replays, and checkpoint round
// trips. The *accuracy* of the model (fluid vs packet FCT error) is
// pinned separately in test_fluid_parity.cc.
#include "fluid/fluid_network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/fabric.h"
#include "exp/run_guard.h"
#include "fluid/rotor_rate_lb.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "workload/synthetic.h"

namespace opera {
namespace {

core::FabricConfig small_fluid_config() {
  auto config = core::FabricConfig::make(core::FabricKind::kOpera).scale(16, 4);
  config.engine = core::EngineKind::kFluid;
  return config;
}

std::uint64_t digest_of(const core::Network& net) {
  sim::Fingerprint fp;
  net.fingerprint(fp);
  return fp.digest();
}

// ---------------------------------------------------------------------------
// RotorRateLb conservation properties
// ---------------------------------------------------------------------------

// Random demand sets, every slice, with and without failures: no rack's
// egress or ingress circuit budget is exceeded, no flow exceeds one host
// NIC, and VLB grants stay inside the relay pool.
TEST(RotorRateLb, ConservationUnderRandomDemand) {
  const auto config = small_fluid_config().opera_config();
  const topo::OperaTopology topo(config.topology);
  const fluid::RotorRateLb lb(topo, fluid::RotorRateLb::Params{config.link.rate_bps, 0.9,
                                                 config.topology.hosts_per_rack,
                                                 true});
  const int n = static_cast<int>(config.topology.num_racks);
  sim::Rng rng(7);

  auto failures =
      topo::FailureSet::none(config.topology.num_racks, config.topology.num_switches);

  for (int trial = 0; trial < 20; ++trial) {
    // Random sparse demand, sorted by (src, dst) as the contract requires.
    std::map<std::pair<std::int32_t, std::int32_t>, std::int64_t> demand;
    const int pairs = 1 + static_cast<int>(rng.index(40));
    for (int p = 0; p < pairs; ++p) {
      const auto a = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(n)));
      const auto b = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(n)));
      demand[{a, b}] += rng.uniform_int(1, 12);
    }
    std::vector<fluid::GroupDemand> groups;
    groups.reserve(demand.size());
    for (const auto& [key, flows] : demand) {
      groups.push_back(fluid::GroupDemand{key.first, key.second, flows});
    }
    // Trial 10+: degrade the fabric and re-check the same invariants.
    if (trial == 10) {
      failures.switch_failed[1] = true;
      failures.uplink_failed[3][0] = true;
      failures.uplink_failed[5][2] = true;
    }

    for (int slice = 0; slice < topo.num_slices(); ++slice) {
      fluid::RateUsage usage;
      const auto rates = lb.allocate(slice, groups, failures, &usage);
      ASSERT_EQ(rates.size(), groups.size());

      constexpr double kSlack = 1.0 + 1e-9;
      for (int r = 0; r < n; ++r) {
        const auto sr = static_cast<std::size_t>(r);
        EXPECT_LE(usage.used_up[sr], usage.budget[sr] * kSlack + 1.0)
            << "rack " << r << " egress over budget, slice " << slice;
        EXPECT_LE(usage.used_down[sr], usage.budget[sr] * kSlack + 1.0)
            << "rack " << r << " ingress over budget, slice " << slice;
      }
      EXPECT_LE(usage.relay_used, usage.relay_pool * kSlack + 1.0);

      for (std::size_t i = 0; i < groups.size(); ++i) {
        EXPECT_GE(rates[i].per_flow, 0.0);
        EXPECT_LE(rates[i].per_flow, config.link.rate_bps * kSlack)
            << "flow rate above one host NIC";
        if (groups[i].src_rack == groups[i].dst_rack) {
          EXPECT_EQ(rates[i].direct_share, 0.0);
          EXPECT_EQ(rates[i].vlb_share, 0.0);
        } else {
          EXPECT_NEAR(rates[i].per_flow,
                      rates[i].direct_share + rates[i].vlb_share, 1e-3);
        }
      }
    }
  }
}

TEST(RotorRateLb, FailedUplinkCarriesNothing) {
  const auto config = small_fluid_config().opera_config();
  const topo::OperaTopology topo(config.topology);
  const fluid::RotorRateLb lb(topo, fluid::RotorRateLb::Params{config.link.rate_bps, 0.9,
                                                 config.topology.hosts_per_rack,
                                                 true});
  auto none =
      topo::FailureSet::none(config.topology.num_racks, config.topology.num_switches);
  auto all_up_0 = none;
  for (int sw = 0; sw < config.topology.num_switches; ++sw) {
    all_up_0.uplink_failed[0][static_cast<std::size_t>(sw)] = true;
  }
  const std::vector<fluid::GroupDemand> groups{{0, 1, 4}};
  for (int slice = 0; slice < topo.num_slices(); ++slice) {
    fluid::RateUsage usage;
    const auto rates = lb.allocate(slice, groups, all_up_0, &usage);
    // Rack 0 has no live uplinks: zero budget, zero rate (direct or VLB).
    EXPECT_EQ(usage.budget[0], 0.0) << "slice " << slice;
    EXPECT_EQ(rates[0].per_flow, 0.0) << "slice " << slice;
  }
}

// ---------------------------------------------------------------------------
// FluidNetwork integrator properties
// ---------------------------------------------------------------------------

TEST(FluidNetwork, SingleBulkFlowCompletes) {
  const auto config = small_fluid_config().opera_config();
  fluid::FluidNetwork net(config);
  const std::int64_t size = 8'000'000;
  net.submit_flow(0, 20, size, sim::Time::us(10), net::TrafficClass::kBulk);
  const auto status = net.run_to_completion(sim::Time::ms(100));
  ASSERT_EQ(net.tracker().completed(), 1u);
  EXPECT_TRUE(status.stopped_early);
  const auto& rec = net.tracker().completions()[0];
  // One flow is NIC-bound at a single host link: FCT >= size * 8 / rate.
  const auto line_rate_fct =
      sim::Time::from_seconds(static_cast<double>(size) * 8.0 / config.link.rate_bps);
  EXPECT_GE(rec.fct(), line_rate_fct);
  EXPECT_LT(rec.fct(), sim::Time::ms(100));
  EXPECT_EQ(net.active_groups(), 0u);
}

// Every flow delivers exactly its size — checked through the tracker's
// delivery hook, the same surface the throughput time series uses.
TEST(FluidNetwork, ByteConservationPerFlow) {
  const auto config = small_fluid_config().opera_config();
  fluid::FluidNetwork net(config);
  std::map<std::uint64_t, std::int64_t> delivered;
  net.tracker().set_delivery_hook(
      [&delivered](const transport::Flow& flow, std::int64_t bytes, sim::Time) {
        delivered[flow.id] += bytes;
      });

  sim::Rng rng(3);
  const auto flows = workload::poisson_workload(
      workload::FlowSizeDistribution::websearch(), net.num_hosts(),
      /*load=*/0.2, config.link.rate_bps, sim::Time::ms(4), rng);
  ASSERT_GT(flows.size(), 20u);
  std::map<std::uint64_t, std::int64_t> expected;
  for (const auto& f : flows) {
    expected[net.submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start)] =
        f.size_bytes;
  }
  net.run_to_completion(sim::Time::ms(400));
  ASSERT_EQ(net.tracker().completed(), flows.size());
  for (const auto& [id, size] : expected) {
    EXPECT_EQ(delivered[id], size) << "flow " << id;
  }
}

// Skewed demand forces VLB; the stats expose the 2x circuit-byte tax.
TEST(FluidNetwork, VlbTwoHopByteAccounting) {
  const auto config = small_fluid_config().opera_config();
  fluid::FluidNetwork net(config);
  // Hot rack pair: every rack-0 host sends 3 bulk flows to rack 1.
  // Direct 0<->1 circuits exist in only a few slices of the cycle, so
  // most bytes must ride two-hop VLB paths.
  std::int64_t total_bytes = 0;
  for (int h = 0; h < 4; ++h) {
    for (int i = 0; i < 3; ++i) {
      const std::int64_t size = 4'000'000;
      net.submit_flow(h, 4 + h, size, sim::Time::us(i), net::TrafficClass::kBulk);
      total_bytes += size;
    }
  }
  net.run_to_completion(sim::Time::ms(200));
  ASSERT_EQ(net.tracker().completed(), 12u);

  const auto& stats = net.fluid_stats();
  EXPECT_GT(stats.vlb_bytes, 0.0);
  EXPECT_GT(stats.direct_bytes, 0.0);
  EXPECT_EQ(stats.intra_bytes, 0.0);
  // Delivered bytes partition into direct + VLB...
  EXPECT_NEAR(stats.direct_bytes + stats.vlb_bytes,
              static_cast<double>(total_bytes), total_bytes * 1e-6);
  // ...while circuit traversals tax VLB twice (relay in + relay out).
  EXPECT_NEAR(stats.circuit_bytes(),
              static_cast<double>(total_bytes) + stats.vlb_bytes,
              total_bytes * 1e-6);
  EXPECT_GT(stats.circuit_bytes(), static_cast<double>(total_bytes));
}

TEST(FluidNetwork, IntraRackStaysOffCircuits) {
  const auto config = small_fluid_config().opera_config();
  fluid::FluidNetwork net(config);
  net.submit_flow(0, 1, 1'000'000, sim::Time::us(1), net::TrafficClass::kBulk);
  net.run_to_completion(sim::Time::ms(50));
  ASSERT_EQ(net.tracker().completed(), 1u);
  const auto& stats = net.fluid_stats();
  EXPECT_NEAR(stats.intra_bytes, 1e6, 1.0);
  EXPECT_EQ(stats.direct_bytes, 0.0);
  EXPECT_EQ(stats.vlb_bytes, 0.0);
}

// ---------------------------------------------------------------------------
// Determinism: threads knob, replay, checkpoint round trip
// ---------------------------------------------------------------------------

std::vector<workload::FlowSpec> determinism_workload(std::int32_t num_hosts) {
  sim::Rng rng(11);
  return workload::poisson_workload(workload::FlowSizeDistribution::websearch(),
                                    num_hosts, /*load=*/0.3, 10e9,
                                    sim::Time::ms(3), rng);
}

std::unique_ptr<core::Network> run_fluid(int threads, sim::Time until) {
  fluid::register_fluid_engines();
  auto config = small_fluid_config();
  config.threads = threads;
  auto net = core::NetworkFactory::build(config);
  for (const auto& f : determinism_workload(net->num_hosts())) {
    net->submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
  net->run_until(until);
  return net;
}

TEST(FluidNetwork, BitIdenticalAcrossThreadCounts) {
  // The integrator never shards (the threads knob is accepted and
  // ignored), so --threads={1,2,4} must be trivially bit-identical —
  // digest, completion stream, and event count.
  const auto ref = run_fluid(1, sim::Time::ms(40));
  const auto ref_digest = digest_of(*ref);
  EXPECT_GT(ref->tracker().completed(), 0u);
  for (const int threads : {2, 4}) {
    const auto net = run_fluid(threads, sim::Time::ms(40));
    EXPECT_EQ(digest_of(*net), ref_digest) << "threads=" << threads;
    EXPECT_EQ(net->events_executed(), ref->events_executed());
    ASSERT_EQ(net->tracker().completed(), ref->tracker().completed());
    for (std::size_t i = 0; i < ref->tracker().completions().size(); ++i) {
      const auto& a = ref->tracker().completions()[i];
      const auto& b = net->tracker().completions()[i];
      EXPECT_EQ(a.flow.id, b.flow.id);
      EXPECT_EQ(a.end, b.end);
    }
  }
}

TEST(FluidNetwork, CheckpointRoundTripWithFluidEngine) {
  fluid::register_fluid_engines();
  exp::RunRecipe recipe;
  recipe.run_label = "fluid-poisson";
  recipe.fabric_label = "opera";
  recipe.load_pct = 30.0;
  recipe.config = small_fluid_config();
  recipe.flows = determinism_workload(recipe.config.num_hosts());
  recipe.horizon = sim::Time::ms(40);

  // Run to a mid-run snapshot time, checkpoint, and parse it back.
  auto net = core::NetworkFactory::build(recipe.config);
  for (const auto& f : recipe.flows) {
    net->submit_remapped(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
  net->run_until(sim::Time::ms(5));
  const auto data = exp::make_run_checkpoint(recipe, *net);
  const auto parsed =
      sim::parse_checkpoint(sim::write_checkpoint_text(data), "fluid.ckpt");
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  exp::RunRecipe restored;
  sim::Time resume_time;
  std::uint64_t resume_digest = 0;
  ASSERT_EQ(exp::recipe_from_checkpoint(parsed.data, &restored, &resume_time,
                                        &resume_digest),
            "");
  // The engine knob must survive the [config] section round trip — a
  // resume that silently fell back to the packet engine would replay a
  // completely different simulation.
  EXPECT_EQ(restored.config.engine, core::EngineKind::kFluid);
  EXPECT_EQ(resume_time, sim::Time::ms(5));

  // Replay from scratch on a fresh fabric: at the snapshot time the
  // multi-layer fingerprint (which folds the full fluid rate state —
  // drain counters, frozen rates, pending thresholds) must match.
  auto replayed = core::NetworkFactory::build(restored.config);
  for (const auto& f : restored.flows) {
    replayed->submit_remapped(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
  replayed->run_until(resume_time);
  EXPECT_EQ(digest_of(*replayed), resume_digest);

  // And continuing past the snapshot matches an uninterrupted run.
  replayed->run_until(sim::Time::ms(40));
  net->run_until(sim::Time::ms(40));
  EXPECT_EQ(digest_of(*replayed), digest_of(*net));
}

}  // namespace
}  // namespace opera

// topo::SliceTableCache unit + property tests: resolved window sizing,
// LRU eviction, prefetch-ahead behavior, invalidation, and — the load-
// bearing property — that a cached lookup is always bit-identical to a
// direct build, under randomized access patterns.
#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"
#include "topo/opera_topology.h"
#include "topo/slice_table_cache.h"

namespace opera::topo {
namespace {

OperaTopology make_topo(Vertex racks = 16, int u = 4, std::uint64_t seed = 3) {
  OperaParams p;
  p.num_racks = racks;
  p.num_switches = u;
  p.hosts_per_rack = 4;
  p.seed = seed;
  return OperaTopology(p);
}

SliceTableCache::Builder builder_for(const OperaTopology& topo,
                                     const FailureSet** failures = nullptr) {
  return [&topo, failures](int s) {
    return topo.slice_routes(s, failures != nullptr ? *failures : nullptr);
  };
}

TEST(SliceTableCache, ExplicitWindowIsClampedToMinAndSliceCount) {
  const auto topo = make_topo();
  SliceTableCache tiny(topo.num_slices(), {1, 0}, builder_for(topo));
  EXPECT_EQ(tiny.window(), SliceTableCache::kMinWindow);
  SliceTableCache huge(topo.num_slices(), {10'000, 0}, builder_for(topo));
  EXPECT_EQ(huge.window(), topo.num_slices());
  EXPECT_TRUE(huge.eager());
}

TEST(SliceTableCache, AutoModeEagerWhenBudgetFits) {
  const auto topo = make_topo();
  SliceTableCache cache(topo.num_slices(), {0, 64ull << 20}, builder_for(topo));
  EXPECT_TRUE(cache.eager());
  // Everything was built up front: all gets are hits.
  for (int s = 0; s < topo.num_slices(); ++s) cache.get(s);
  EXPECT_EQ(cache.stats().demand_builds, 0u);
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(topo.num_slices()));
  EXPECT_EQ(cache.stats().resident, static_cast<std::size_t>(topo.num_slices()));
}

TEST(SliceTableCache, AutoModeWindowsUnderTightBudget) {
  const auto topo = make_topo();
  const std::size_t per_table = topo.slice_routes(0).memory_bytes();
  // Budget for about six tables: the window must land near that, far
  // below the slice count, and eviction must keep residency bounded.
  SliceTableCache cache(topo.num_slices(), {0, per_table * 6}, builder_for(topo));
  EXPECT_FALSE(cache.eager());
  EXPECT_GE(cache.window(), SliceTableCache::kMinWindow);
  EXPECT_LE(cache.window(), 8);
  for (int s = 0; s < topo.num_slices(); ++s) cache.get(s);
  EXPECT_LE(cache.stats().resident, static_cast<std::size_t>(cache.window()));
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.stats().resident_bytes, per_table * 8);
}

TEST(SliceTableCache, PrefetchKeepsRotationLookupsHit) {
  const auto topo = make_topo();
  SliceTableCache cache(topo.num_slices(), {5, 0}, builder_for(topo));
  // Walk two full cycles the way the network does: prefetch at each
  // boundary, then read the current and next slice (drain window).
  for (int abs = 0; abs < 2 * topo.num_slices(); ++abs) {
    const int s = abs % topo.num_slices();
    cache.prefetch(s);
    const auto before = cache.stats().demand_builds;
    cache.get(s);
    cache.get((s + 1) % topo.num_slices());
    EXPECT_EQ(cache.stats().demand_builds, before)
        << "slice " << s << " should be prefetched, never demand-built";
  }
  EXPECT_LE(cache.stats().resident, static_cast<std::size_t>(cache.window()));
}

TEST(SliceTableCache, PeekIsBookkeepingFreeAndNullWhenEvicted) {
  const auto topo = make_topo();
  SliceTableCache cache(topo.num_slices(), {4, 0}, builder_for(topo));
  EXPECT_EQ(cache.peek(0), nullptr);  // nothing built yet
  const EcmpTable& built = cache.get(0);
  const auto hits = cache.stats().hits;
  EXPECT_EQ(cache.peek(0), &built);
  EXPECT_EQ(cache.stats().hits, hits) << "peek must not count as a hit";
  // Fill past the window: slice 0 falls out, peek reports the eviction.
  for (int s = 1; s <= 4; ++s) cache.get(s);
  EXPECT_EQ(cache.peek(0), nullptr);
  EXPECT_NE(cache.peek(4), nullptr);
}

TEST(SliceTableCache, RandomAccessMatchesDirectBuildExactly) {
  const auto topo = make_topo(20, 4, 7);
  sim::Rng rng(123);
  for (const int window : {4, 7, 20}) {
    SliceTableCache cache(topo.num_slices(), {window, 0}, builder_for(topo));
    for (int i = 0; i < 200; ++i) {
      const int s = static_cast<int>(rng.index(static_cast<std::size_t>(topo.num_slices())));
      EXPECT_EQ(cache.get(s), topo.slice_routes(s)) << "window " << window;
      if (i % 37 == 0) cache.prefetch(s);
    }
  }
}

TEST(SliceTableCache, InvalidateAllPicksUpNewBuilderInputs) {
  const auto topo = make_topo();
  auto failures = FailureSet::none(topo.num_racks(), topo.num_switches());
  const FailureSet* active = nullptr;
  SliceTableCache cache(topo.num_slices(), {4, 0},
                        builder_for(topo, &active));
  const EcmpTable before = cache.get(2);
  EXPECT_EQ(before, topo.slice_routes(2));

  // A switch dies: cached tables are stale until invalidated.
  failures.switch_failed[1] = true;
  active = &failures;
  cache.invalidate_all();
  EXPECT_EQ(cache.stats().resident, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  const EcmpTable after = cache.get(2);
  EXPECT_EQ(after, topo.slice_routes(2, &failures));
  EXPECT_NE(after, before);
}

TEST(SliceTableCache, StatsBytesTrackResidency) {
  const auto topo = make_topo();
  SliceTableCache cache(topo.num_slices(), {4, 0}, builder_for(topo));
  for (int s = 0; s < topo.num_slices(); ++s) cache.get(s);
  const auto& st = cache.stats();
  EXPECT_EQ(st.resident, 4u);
  EXPECT_GT(st.resident_bytes, 0u);
  EXPECT_GE(st.peak_resident_bytes, st.resident_bytes);
  const std::size_t at_peak = st.peak_resident_bytes;
  cache.invalidate_all();
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_GE(cache.stats().peak_resident_bytes, at_peak);
}

}  // namespace
}  // namespace opera::topo

// Property-style sweeps over the full Opera DES network: across sizes and
// seeds, (1) all submitted low-latency traffic completes, (2) delivered
// payload bytes equal flow bytes exactly (conservation), and (3) the
// forwarding state never strands a packet permanently.
#include <gtest/gtest.h>

#include "core/opera_network.h"

namespace opera::core {
namespace {

struct NetParam {
  topo::Vertex racks;
  int switches;
  int hosts_per_rack;
  std::uint64_t seed;
};

class OperaNetworkSweep : public ::testing::TestWithParam<NetParam> {};

TEST_P(OperaNetworkSweep, LowLatencyCompletesAndConservesBytes) {
  const auto [racks, switches, hosts_per_rack, seed] = GetParam();
  OperaConfig cfg;
  cfg.topology.num_racks = racks;
  cfg.topology.num_switches = switches;
  cfg.topology.hosts_per_rack = hosts_per_rack;
  cfg.topology.seed = seed;
  cfg.seed = seed + 1;
  OperaNetwork net(cfg);

  std::int64_t delivered = 0;
  net.tracker().set_delivery_hook(
      [&](const transport::Flow&, std::int64_t bytes, sim::Time) {
        delivered += bytes;
      });

  const int n_hosts = net.num_hosts();
  sim::Rng rng(seed * 31 + 7);
  std::int64_t submitted = 0;
  const int flows = 150;
  for (int i = 0; i < flows; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(n_hosts)));
    auto dst = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(n_hosts)));
    if (dst == src) dst = (dst + 1) % n_hosts;
    const std::int64_t bytes = 1'000 + static_cast<std::int64_t>(rng.index(60'000));
    submitted += bytes;
    net.submit_flow(src, dst, bytes,
                    sim::Time::us(static_cast<std::int64_t>(rng.index(2'000))));
  }
  net.run_until(sim::Time::ms(50));

  EXPECT_EQ(net.tracker().completed(), static_cast<std::size_t>(flows));
  EXPECT_EQ(delivered, submitted);  // exact payload conservation
}

TEST_P(OperaNetworkSweep, BulkCompletesAndConservesBytes) {
  const auto [racks, switches, hosts_per_rack, seed] = GetParam();
  OperaConfig cfg;
  cfg.topology.num_racks = racks;
  cfg.topology.num_switches = switches;
  cfg.topology.hosts_per_rack = hosts_per_rack;
  cfg.topology.seed = seed;
  cfg.seed = seed + 2;
  OperaNetwork net(cfg);

  const int n_hosts = net.num_hosts();
  sim::Rng rng(seed * 131 + 11);
  const int flows = 6;
  for (int i = 0; i < flows; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(n_hosts)));
    auto dst = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(n_hosts)));
    if (dst / hosts_per_rack == src / hosts_per_rack) {
      dst = (dst + hosts_per_rack) % n_hosts;  // force inter-rack (bulk path)
    }
    net.submit_flow(src, dst, 16'000'000, sim::Time::zero(),
                    net::TrafficClass::kBulk);
  }
  net.run_until(sim::Time::ms(250));
  EXPECT_EQ(net.tracker().completed(), static_cast<std::size_t>(flows));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OperaNetworkSweep,
    ::testing::Values(NetParam{8, 4, 2, 1}, NetParam{16, 4, 4, 2},
                      NetParam{20, 5, 3, 3}, NetParam{24, 6, 4, 4},
                      NetParam{16, 4, 4, 99}));

// Determinism: two identically-seeded networks produce identical FCTs.
TEST(OperaNetworkProperties, DeterministicGivenSeeds) {
  auto run = [] {
    OperaConfig cfg;
    cfg.topology.num_racks = 16;
    cfg.topology.num_switches = 4;
    cfg.topology.hosts_per_rack = 4;
    cfg.topology.seed = 7;
    cfg.seed = 8;
    OperaNetwork net(cfg);
    sim::Rng rng(5);
    for (int i = 0; i < 60; ++i) {
      const auto src = static_cast<std::int32_t>(rng.index(64));
      auto dst = static_cast<std::int32_t>(rng.index(64));
      if (dst == src) dst = (dst + 1) % 64;
      net.submit_flow(src, dst, 5'000 + static_cast<std::int64_t>(rng.index(20'000)),
                      sim::Time::us(static_cast<std::int64_t>(rng.index(500))));
    }
    net.run_until(sim::Time::ms(20));
    std::vector<std::pair<std::uint64_t, std::int64_t>> result;
    for (const auto& rec : net.tracker().completions()) {
      result.emplace_back(rec.flow.id, rec.fct().picoseconds());
    }
    return result;
  };
  EXPECT_EQ(run(), run());
}

// Hop bound: no delivered low-latency packet ever exceeds the worst slice
// diameter plus the destination ToR hop (loop freedom in practice).
TEST(OperaNetworkProperties, PathLengthsBounded) {
  OperaConfig cfg;
  cfg.topology.num_racks = 16;
  cfg.topology.num_switches = 4;
  cfg.topology.hosts_per_rack = 4;
  cfg.topology.seed = 3;
  OperaNetwork net(cfg);
  int worst_slice_diameter = 0;
  for (int s = 0; s < net.topology().num_slices(); ++s) {
    const auto stats = topo::all_pairs_path_stats(net.topology().slice_graph(s));
    worst_slice_diameter = std::max(worst_slice_diameter, static_cast<int>(stats.worst));
  }
  // submit_flow doesn't expose per-packet hops; use a direct sink check via
  // the tracker delivery hook with packet inspection at the host layer:
  // hops are validated indirectly — a loop would show up as FCTs beyond the
  // RTO fallback. Assert the FCT ceiling instead.
  sim::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(64));
    auto dst = static_cast<std::int32_t>(rng.index(64));
    if (dst == src) dst = (dst + 1) % 64;
    net.submit_flow(src, dst, 1'400,
                    sim::Time::us(static_cast<std::int64_t>(rng.index(1'000))));
  }
  net.run_until(sim::Time::ms(20));
  EXPECT_EQ(net.tracker().completed(), 100u);
  const auto fct = net.tracker().fct_us(0, 1'000'000);
  // Single-packet flows: even the p100 should be far below one RTO unless
  // packets looped or were stranded.
  EXPECT_LT(fct.max(), 900.0);
}

}  // namespace
}  // namespace opera::core

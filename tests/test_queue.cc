#include "net/queue.h"

#include <gtest/gtest.h>

namespace opera::net {
namespace {

PacketPtr data_packet(TrafficClass tclass, std::int32_t bytes, std::uint64_t seq = 0) {
  auto pkt = make_packet();
  pkt->type = PacketType::kData;
  pkt->tclass = tclass;
  pkt->size_bytes = bytes;
  pkt->seq = seq;
  return pkt;
}

PacketPtr control_packet(PacketType type) {
  auto pkt = make_packet();
  pkt->type = type;
  pkt->tclass = TrafficClass::kLowLatency;
  pkt->size_bytes = kHeaderBytes;
  return pkt;
}

TEST(PortQueue, PriorityOrder) {
  PortQueue q;
  ASSERT_EQ(q.enqueue(data_packet(TrafficClass::kBulk, 1500, 1)), EnqueueOutcome::kQueued);
  ASSERT_EQ(q.enqueue(data_packet(TrafficClass::kLowLatency, 1500, 2)),
            EnqueueOutcome::kQueued);
  ASSERT_EQ(q.enqueue(control_packet(PacketType::kAck)), EnqueueOutcome::kQueued);
  // Dequeue order: control, low-latency, bulk.
  EXPECT_EQ(q.dequeue()->type, PacketType::kAck);
  EXPECT_EQ(q.dequeue()->seq, 2u);
  EXPECT_EQ(q.dequeue()->seq, 1u);
  EXPECT_EQ(q.dequeue(), nullptr);
}

TEST(PortQueue, LowLatencyTrimsWhenFull) {
  PortQueue::Config cfg;
  cfg.low_latency_capacity_bytes = 3000;  // two full packets
  PortQueue q(cfg);
  EXPECT_EQ(q.enqueue(data_packet(TrafficClass::kLowLatency, 1500, 0)),
            EnqueueOutcome::kQueued);
  EXPECT_EQ(q.enqueue(data_packet(TrafficClass::kLowLatency, 1500, 1)),
            EnqueueOutcome::kQueued);
  EXPECT_EQ(q.enqueue(data_packet(TrafficClass::kLowLatency, 1500, 2)),
            EnqueueOutcome::kTrimmed);
  EXPECT_EQ(q.trims(), 1u);
  // The trimmed header is in the control band: dequeued first, as a header.
  const auto first = q.dequeue();
  EXPECT_EQ(first->type, PacketType::kHeader);
  EXPECT_EQ(first->seq, 2u);
  EXPECT_EQ(first->size_bytes, kHeaderBytes);
}

TEST(PortQueue, TrimDisabledDrops) {
  PortQueue::Config cfg;
  cfg.low_latency_capacity_bytes = 1500;
  cfg.trim_low_latency = false;
  PortQueue q(cfg);
  EXPECT_EQ(q.enqueue(data_packet(TrafficClass::kLowLatency, 1500)), EnqueueOutcome::kQueued);
  EXPECT_EQ(q.enqueue(data_packet(TrafficClass::kLowLatency, 1500)), EnqueueOutcome::kDropped);
  EXPECT_EQ(q.drops(), 1u);
}

TEST(PortQueue, BulkDropInvokesHandler) {
  PortQueue::Config cfg;
  cfg.bulk_capacity_bytes = 1500;
  PortQueue q(cfg);
  std::uint64_t dropped_seq = 0;
  q.set_bulk_drop_handler([&](const Packet& pkt) { dropped_seq = pkt.seq; });
  EXPECT_EQ(q.enqueue(data_packet(TrafficClass::kBulk, 1500, 5)), EnqueueOutcome::kQueued);
  EXPECT_EQ(q.enqueue(data_packet(TrafficClass::kBulk, 1500, 6)), EnqueueOutcome::kDropped);
  EXPECT_EQ(dropped_seq, 6u);
}

TEST(PortQueue, BulkTrimWhenEnabled) {
  PortQueue::Config cfg;
  cfg.bulk_capacity_bytes = 1500;
  cfg.trim_bulk = true;
  PortQueue q(cfg);
  EXPECT_EQ(q.enqueue(data_packet(TrafficClass::kBulk, 1500, 1)), EnqueueOutcome::kQueued);
  EXPECT_EQ(q.enqueue(data_packet(TrafficClass::kBulk, 1500, 2)), EnqueueOutcome::kTrimmed);
  EXPECT_EQ(q.dequeue()->type, PacketType::kHeader);
}

TEST(PortQueue, ControlOverflowDrops) {
  PortQueue::Config cfg;
  cfg.control_capacity_bytes = kHeaderBytes;
  PortQueue q(cfg);
  EXPECT_EQ(q.enqueue(control_packet(PacketType::kPull)), EnqueueOutcome::kQueued);
  EXPECT_EQ(q.enqueue(control_packet(PacketType::kPull)), EnqueueOutcome::kDropped);
}

TEST(PortQueue, ByteAccounting) {
  PortQueue q;
  (void)q.enqueue(data_packet(TrafficClass::kLowLatency, 1500));
  (void)q.enqueue(data_packet(TrafficClass::kBulk, 700));
  (void)q.enqueue(control_packet(PacketType::kAck));
  EXPECT_EQ(q.low_latency_bytes(), 1500);
  EXPECT_EQ(q.bulk_bytes(), 700);
  EXPECT_EQ(q.control_bytes(), kHeaderBytes);
  EXPECT_EQ(q.total_bytes(), 1500 + 700 + kHeaderBytes);
  (void)q.dequeue();
  EXPECT_EQ(q.control_bytes(), 0);
}

TEST(PortQueue, FlushReportsBulk) {
  PortQueue q;
  (void)q.enqueue(data_packet(TrafficClass::kBulk, 1500, 1));
  (void)q.enqueue(data_packet(TrafficClass::kBulk, 1500, 2));
  (void)q.enqueue(data_packet(TrafficClass::kLowLatency, 1500, 3));
  std::vector<std::uint64_t> flushed;
  q.flush([&](const Packet& pkt) { flushed.push_back(pkt.seq); });
  EXPECT_EQ(flushed, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_bytes(), 0);
}

TEST(PortQueue, TrimmedHeaderKeepsMetadata) {
  PortQueue::Config cfg;
  cfg.low_latency_capacity_bytes = 0;
  PortQueue q(cfg);
  auto pkt = data_packet(TrafficClass::kLowLatency, 1500, 77);
  pkt->flow_id = 123;
  pkt->dst_host = 5;
  (void)q.enqueue(std::move(pkt));
  const auto header = q.dequeue();
  ASSERT_NE(header, nullptr);
  EXPECT_EQ(header->flow_id, 123u);
  EXPECT_EQ(header->seq, 77u);
  EXPECT_EQ(header->dst_host, 5);
}

}  // namespace
}  // namespace opera::net

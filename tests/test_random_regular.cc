#include "topo/random_regular.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/rng.h"

namespace opera::topo {
namespace {

TEST(RandomRegular, DegreesAreExact) {
  sim::Rng rng(1);
  const Graph g = random_regular_graph(20, 4, rng);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_EQ(g.num_edges(), 40u);
}

TEST(RandomRegular, Connected) {
  sim::Rng rng(2);
  const Graph g = random_regular_graph(50, 3, rng);
  EXPECT_TRUE(is_connected(g));
}

TEST(RandomRegular, PaperScaleExpander) {
  // The u=7 expander baseline: 130 ToRs of 5 hosts each = 650 hosts.
  sim::Rng rng(3);
  const Graph g = random_regular_graph(130, 7, rng);
  for (Vertex v = 0; v < 130; ++v) EXPECT_EQ(g.degree(v), 7);
  EXPECT_TRUE(is_connected(g));
  const auto stats = all_pairs_path_stats(g);
  // 130 nodes at degree 7: diameter should be tiny (expander).
  EXPECT_LE(stats.worst, 4);
  EXPECT_LT(stats.average, 3.0);
}

TEST(RandomRegular, OddVertexCountNearRegular) {
  // n odd, u even: u matchings each leave one vertex out.
  sim::Rng rng(4);
  const Graph g = random_regular_graph(15, 4, rng);
  for (Vertex v = 0; v < 15; ++v) {
    EXPECT_GE(g.degree(v), 3);
    EXPECT_LE(g.degree(v), 4);
  }
  EXPECT_TRUE(is_connected(g));
}

TEST(RandomRegular, DeterministicGivenSeed) {
  sim::Rng rng1(99);
  sim::Rng rng2(99);
  const Graph a = random_regular_graph(30, 4, rng1);
  const Graph b = random_regular_graph(30, 4, rng2);
  for (Vertex v = 0; v < 30; ++v) {
    EXPECT_EQ(a.neighbors(v), b.neighbors(v));
  }
}

TEST(RandomRegular, SuccessPathIdenticalWithExplicitDefaultBudget) {
  // The budget parameter must not perturb the no-bump path: same seed,
  // default vs spelled-out default budget, byte-identical graph.
  sim::Rng rng1(99);
  sim::Rng rng2(99);
  const Graph a = random_regular_graph(30, 4, rng1);
  const Graph b = random_regular_graph(30, 4, rng2, RegularGraphBudget{});
  for (Vertex v = 0; v < 30; ++v) EXPECT_EQ(a.neighbors(v), b.neighbors(v));
}

TEST(RandomRegular, SeedBumpRecoversFromExhaustedBudget) {
  // Near-complete density (u = n-2) with a single restart and a single
  // matching retry wedges on attempt 0 for this seed (probed offline); the
  // generator must warn on stderr with the bumped seed and still deliver
  // the graph instead of throwing.
  const RegularGraphBudget tight{1, 1, 64};
  sim::Rng rng(3);
  testing::internal::CaptureStderr();
  const Graph g = random_regular_graph(16, 14, rng, tight);
  const std::string warnings = testing::internal::GetCapturedStderr();
  EXPECT_NE(warnings.find("bumping to seed"), std::string::npos) << warnings;
  EXPECT_TRUE(is_connected(g));
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 14);
}

TEST(RandomRegular, ThrowsOnlyAfterAllSeedBumpsFail) {
  // max_restarts = 0 fails every attempt deterministically: expect exactly
  // seed_bumps warnings and then the exception, not a first-failure throw.
  const RegularGraphBudget hopeless{0, 1, 3};
  sim::Rng rng(5);
  testing::internal::CaptureStderr();
  EXPECT_THROW(random_regular_graph(20, 4, rng, hopeless), std::runtime_error);
  const std::string warnings = testing::internal::GetCapturedStderr();
  std::size_t bumps = 0;
  for (std::size_t pos = warnings.find("bumping to seed");
       pos != std::string::npos;
       pos = warnings.find("bumping to seed", pos + 1)) {
    ++bumps;
  }
  EXPECT_EQ(bumps, 3u) << warnings;
}

// Property sweep: regularity and connectivity across sizes and degrees.
struct RrParam {
  Vertex n;
  Vertex u;
};

class RandomRegularSweep : public ::testing::TestWithParam<RrParam> {};

TEST_P(RandomRegularSweep, RegularSimpleConnected) {
  const auto [n, u] = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(n) * 31 + static_cast<std::uint64_t>(u));
  const Graph g = random_regular_graph(n, u, rng);
  EXPECT_TRUE(is_connected(g));
  std::size_t degree_sum = 0;
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_LE(g.degree(v), u);
    degree_sum += static_cast<std::size_t>(g.degree(v));
    // Simplicity: neighbor lists contain no duplicates.
    auto nbrs = g.neighbors(v);
    std::sort(nbrs.begin(), nbrs.end());
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
  }
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
  if (n % 2 == 0) {
    for (Vertex v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomRegularSweep,
    ::testing::Values(RrParam{8, 3}, RrParam{16, 3}, RrParam{16, 5},
                      RrParam{32, 4}, RrParam{64, 6}, RrParam{100, 7},
                      RrParam{130, 7}, RrParam{256, 8}, RrParam{108, 5}));

}  // namespace
}  // namespace opera::topo

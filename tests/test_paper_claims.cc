// Integration tests that pin down the paper's headline claims at testbed
// scale (16 racks x 4 hosts unless noted). These are the invariants the
// whole system exists to provide; if one regresses, the reproduction is
// broken even if every unit test passes.
#include <gtest/gtest.h>

#include "core/clos_network.h"
#include "core/expander_network.h"
#include "core/opera_network.h"
#include "core/rotornet_network.h"
#include "workload/synthetic.h"

namespace opera::core {
namespace {

OperaConfig opera_config() {
  OperaConfig cfg;
  cfg.topology.num_racks = 16;
  cfg.topology.num_switches = 4;
  cfg.topology.hosts_per_rack = 4;
  cfg.topology.seed = 3;
  return cfg;
}

// Claim 1 (§5.1): Opera's short-flow FCTs are comparable to the static
// packet-switched networks — the whole point of always-on expansion.
TEST(PaperClaims, ShortFlowFctComparableToStaticNetworks) {
  const auto run_opera = [] {
    OperaNetwork net(opera_config());
    sim::Rng rng(1);
    for (int i = 0; i < 150; ++i) {
      const auto src = static_cast<std::int32_t>(rng.index(64));
      auto dst = static_cast<std::int32_t>(rng.index(64));
      if (dst == src) dst = (dst + 1) % 64;
      net.submit_flow(src, dst, 10'000, sim::Time::us(30 * i));
    }
    net.run_until(sim::Time::ms(20));
    EXPECT_EQ(net.tracker().completed(), 150u);
    return net.tracker().fct_us(0, 1'000'000).percentile(50);
  };
  const auto run_clos = [] {
    ClosNetConfig cfg;
    cfg.structure.radix = 8;
    cfg.structure.oversubscription = 3;
    cfg.structure.num_pods = 4;
    ClosNetwork net(cfg);
    sim::Rng rng(1);
    for (int i = 0; i < 150; ++i) {
      const auto src = static_cast<std::int32_t>(rng.index(96));
      auto dst = static_cast<std::int32_t>(rng.index(96));
      if (dst == src) dst = (dst + 1) % 96;
      net.submit_flow(src, dst, 10'000, sim::Time::us(30 * i));
    }
    net.run_until(sim::Time::ms(20));
    return net.tracker().fct_us(0, 1'000'000).percentile(50);
  };
  const double opera_p50 = run_opera();
  const double clos_p50 = run_clos();
  // "Comparable": within 3x at the median (the paper shows near-equality;
  // small-scale noise and an extra hop or two are acceptable).
  EXPECT_LT(opera_p50, 3.0 * clos_p50);
  EXPECT_LT(opera_p50, 100.0);  // and in absolute packet-switched territory
}

// Claim 2 (§5.2, Fig. 8): for an application-tagged shuffle, Opera clearly
// outperforms the cost-equivalent folded Clos.
TEST(PaperClaims, ShuffleBeatsClos) {
  sim::Rng wl_rng(4);
  // Opera.
  OperaNetwork opera(opera_config());
  const auto flows =
      workload::shuffle_workload(64, 4, 50'000, sim::Time::zero(), wl_rng);
  for (const auto& f : flows) {
    opera.submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start,
                      net::TrafficClass::kBulk);
  }
  opera.run_until(sim::Time::ms(120));
  ASSERT_EQ(opera.tracker().completed(), flows.size());
  const double opera_p99 = opera.tracker().fct_us(0, 1LL << 62).percentile(99);

  // Clos (96 hosts at the same radix class — slightly MORE capacity).
  ClosNetConfig ccfg;
  ccfg.structure.radix = 8;
  ccfg.structure.oversubscription = 3;
  ccfg.structure.num_pods = 4;
  ClosNetwork clos(ccfg);
  sim::Rng wl2(4);
  const auto clos_flows = workload::shuffle_workload(
      clos.num_hosts(), ccfg.structure.hosts_per_tor(), 50'000, sim::Time::ms(10),
      wl2);
  for (const auto& f : clos_flows) {
    clos.submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
  clos.run_until(sim::Time::ms(120));
  ASSERT_EQ(clos.tracker().completed(), clos_flows.size());
  const double clos_p99 = clos.tracker().fct_us(0, 1LL << 62).percentile(99);

  // Paper: ~3.7x at 648 hosts; require a clear >2x win at testbed scale.
  EXPECT_GT(clos_p99, 2.0 * opera_p99);
}

// Claim 3 (§5.1, Fig. 7c): all-optical RotorNet's short-flow FCT is orders
// of magnitude worse than Opera's, because every flow waits for circuits.
TEST(PaperClaims, NonHybridRotorNetShortFlowsWaitForCircuits) {
  OperaNetwork opera(opera_config());
  opera.submit_flow(0, 60, 1'000, sim::Time::zero());
  opera.run_until(sim::Time::ms(10));
  ASSERT_EQ(opera.tracker().completed(), 1u);
  const double opera_fct = opera.tracker().completions()[0].fct().to_us();

  RotorNetConfig rcfg;
  rcfg.structure.num_racks = 16;
  rcfg.structure.num_switches = 4;
  rcfg.structure.hybrid = false;
  rcfg.structure.seed = 3;
  rcfg.hosts_per_rack = 4;
  RotorNetNetwork rotor(rcfg);
  rotor.submit_flow(0, 60, 1'000, sim::Time::zero());
  rotor.run_until(sim::Time::ms(30));
  ASSERT_EQ(rotor.tracker().completed(), 1u);
  const double rotor_fct = rotor.tracker().completions()[0].fct().to_us();

  EXPECT_GT(rotor_fct, 10.0 * opera_fct);
}

// Claim 4 (§1, §3.4): bulk bytes ride direct circuits or at most one VLB
// relay — a bandwidth tax of 0% or 100%, never the expander's 200-400%.
// hops counts ToR traversals: 2 = direct, 3 = once-relayed (the relay ToR
// increments on interception). With VLB disabled every packet is direct.
TEST(PaperClaims, BulkIsDirectOrOnceRelayed) {
  OperaNetwork net(opera_config());
  int total = 0;
  int beyond_one_relay = 0;
  int direct = 0;
  net.host(60).set_default_handler([&](net::Host&, net::PacketPtr pkt) {
    if (pkt->type == net::PacketType::kData &&
        pkt->tclass == net::TrafficClass::kBulk) {
      ++total;
      if (pkt->hops > 3) ++beyond_one_relay;
      if (pkt->hops == 2) ++direct;
    }
  });
  net.submit_flow(0, 60, 2'000'000, sim::Time::zero(), net::TrafficClass::kBulk);
  net.run_until(sim::Time::ms(30));
  ASSERT_GT(total, 0);
  EXPECT_EQ(beyond_one_relay, 0);  // RotorLB: at most one relay, ever
  EXPECT_GT(direct, 0);            // the direct slice was used too

  // And with VLB off, everything is direct.
  auto cfg = opera_config();
  cfg.enable_vlb = false;
  OperaNetwork net2(cfg);
  int total2 = 0;
  int direct2 = 0;
  net2.host(60).set_default_handler([&](net::Host&, net::PacketPtr pkt) {
    if (pkt->type == net::PacketType::kData &&
        pkt->tclass == net::TrafficClass::kBulk) {
      ++total2;
      if (pkt->hops == 2) ++direct2;
    }
  });
  net2.submit_flow(0, 60, 2'000'000, sim::Time::zero(), net::TrafficClass::kBulk);
  net2.run_until(sim::Time::ms(30));
  ASSERT_GT(total2, 0);
  EXPECT_EQ(direct2, total2);
}

}  // namespace
}  // namespace opera::core

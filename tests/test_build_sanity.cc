// Build-sanity smoke test: instantiate one topology (and one packet-level
// network) of each family at small scale and check basic invariants, so a
// link-time regression in any layer — sim, topo, net, transport, core —
// breaks one fast target instead of 29 slower ones.
#include <gtest/gtest.h>

#include "core/clos_network.h"
#include "core/expander_network.h"
#include "core/opera_network.h"
#include "core/rotornet_network.h"
#include "topo/expander.h"
#include "topo/folded_clos.h"
#include "topo/graph.h"
#include "topo/opera_topology.h"
#include "topo/rotornet.h"

namespace opera {
namespace {

bool connected(const topo::Graph& g) {
  const auto dist = topo::bfs_distances(g, 0);
  for (topo::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (dist[static_cast<std::size_t>(v)] < 0) return false;
  }
  return true;
}

TEST(BuildSanity, OperaTopology) {
  topo::OperaParams p;
  p.num_racks = 8;
  p.num_switches = 4;
  p.hosts_per_rack = 2;
  const topo::OperaTopology topo(p);
  EXPECT_EQ(topo.num_racks(), 8);
  EXPECT_EQ(topo.num_slices(), 8);
  EXPECT_EQ(p.num_hosts(), 16);
  // Each slice unions u-1 = 3 active matchings over 8 racks and must stay
  // connected (the paper's expander-across-time property).
  for (int s = 0; s < topo.num_slices(); ++s) {
    const auto g = topo.slice_graph(s);
    EXPECT_EQ(g.num_vertices(), 8);
    EXPECT_GT(g.num_edges(), 0u);
    EXPECT_TRUE(connected(g)) << "slice " << s << " disconnected";
  }
}

TEST(BuildSanity, RotorNetTopology) {
  topo::RotorNetParams p;
  p.num_racks = 8;
  p.num_switches = 4;
  const topo::RotorNetTopology topo(p);
  EXPECT_EQ(topo.num_rotor_switches(), 4);
  EXPECT_GT(topo.num_slices(), 0);
  const auto g = topo.slice_graph(0);
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(BuildSanity, FoldedClos) {
  topo::ClosParams p;
  p.radix = 4;
  p.oversubscription = 1;
  const topo::FoldedClos clos(p);
  EXPECT_GT(clos.num_tors(), 0);
  EXPECT_GT(clos.num_aggs(), 0);
  EXPECT_GT(clos.num_cores(), 0);
  EXPECT_EQ(clos.num_hosts(), clos.num_tors() * p.hosts_per_tor());
  const auto& g = clos.switch_graph();
  EXPECT_EQ(g.num_vertices(), clos.num_tors() + clos.num_aggs() + clos.num_cores());
  EXPECT_TRUE(connected(g));
}

TEST(BuildSanity, ExpanderTopology) {
  topo::ExpanderParams p;
  p.num_tors = 12;
  p.uplinks = 3;
  p.hosts_per_tor = 2;
  const topo::ExpanderTopology topo(p);
  const auto& g = topo.graph();
  EXPECT_EQ(g.num_vertices(), 12);
  for (topo::Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), 3) << "ToR " << v;
  }
  EXPECT_TRUE(connected(g));
}

// Constructing each packet-level network exercises every layer library at
// link time (core -> topo/net/transport -> sim).
TEST(BuildSanity, PacketNetworksBuild) {
  core::OperaConfig opera_cfg;
  opera_cfg.topology.num_racks = 8;
  opera_cfg.topology.num_switches = 4;
  opera_cfg.topology.hosts_per_rack = 2;
  core::OperaNetwork opera_net(opera_cfg);
  EXPECT_EQ(opera_net.num_hosts(), 16);
  EXPECT_EQ(opera_net.num_racks(), 8);

  core::RotorNetConfig rotor_cfg;
  rotor_cfg.structure.num_racks = 8;
  rotor_cfg.structure.num_switches = 4;
  rotor_cfg.hosts_per_rack = 2;
  core::RotorNetNetwork rotor_net(rotor_cfg);
  EXPECT_EQ(rotor_net.num_hosts(), 16);

  core::ClosNetConfig clos_cfg;
  clos_cfg.structure.radix = 4;
  clos_cfg.structure.oversubscription = 1;
  core::ClosNetwork clos_net(clos_cfg);
  EXPECT_GT(clos_net.num_hosts(), 0);

  core::ExpanderNetConfig exp_cfg;
  exp_cfg.structure.num_tors = 12;
  exp_cfg.structure.uplinks = 3;
  exp_cfg.structure.hosts_per_tor = 2;
  core::ExpanderNetwork exp_net(exp_cfg);
  EXPECT_EQ(exp_net.num_hosts(), 24);
}

}  // namespace
}  // namespace opera

#include "topo/rotornet.h"

#include <gtest/gtest.h>

#include <set>

namespace opera::topo {
namespace {

RotorNetParams small_params() {
  RotorNetParams p;
  p.num_racks = 16;
  p.num_switches = 4;
  p.seed = 3;
  return p;
}

TEST(RotorNet, SliceCount) {
  const RotorNetTopology topo(small_params());
  // All switches rotate together: N/u slices per cycle.
  EXPECT_EQ(topo.num_rotor_switches(), 4);
  EXPECT_EQ(topo.num_slices(), 4);
}

TEST(RotorNet, HybridEvenSplit) {
  RotorNetParams p;
  p.num_racks = 15;
  p.num_switches = 4;  // 3 rotors after hybrid donation
  p.hybrid = true;
  const RotorNetTopology topo(p);
  EXPECT_EQ(topo.num_rotor_switches(), 3);
  EXPECT_EQ(topo.num_slices(), 5);
}

TEST(RotorNet, RejectsUnevenSplit) {
  RotorNetParams p;
  p.num_racks = 16;
  p.num_switches = 3;
  EXPECT_THROW(RotorNetTopology topo(p), std::invalid_argument);
}

TEST(RotorNet, AllSwitchesAdvanceTogether) {
  const RotorNetTopology topo(small_params());
  for (int sw = 0; sw < 4; ++sw) {
    const auto m0 = topo.matching_index(sw, 0);
    const auto m1 = topo.matching_index(sw, 1);
    EXPECT_NE(m0, m1);
    // Wraps around after num_slices.
    EXPECT_EQ(topo.matching_index(sw, topo.num_slices()), m0);
  }
}

TEST(RotorNet, CycleCoversAllMatchings) {
  const RotorNetTopology topo(small_params());
  std::set<std::size_t> seen;
  for (int s = 0; s < topo.num_slices(); ++s) {
    for (int sw = 0; sw < 4; ++sw) {
      seen.insert(topo.matching_index(sw, s));
    }
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(RotorNet, EveryRackPairGetsDirectCircuit) {
  const RotorNetTopology topo(small_params());
  std::set<std::pair<Vertex, Vertex>> connected;
  for (int s = 0; s < topo.num_slices(); ++s) {
    for (int sw = 0; sw < 4; ++sw) {
      for (Vertex r = 0; r < 16; ++r) {
        const Vertex peer = topo.circuit_peer(sw, r, s);
        if (peer != r) connected.insert({r, peer});
      }
    }
  }
  EXPECT_EQ(connected.size(), 16u * 15u);  // every ordered pair
}

TEST(RotorNet, SliceGraphIsUnionOfUMatchings) {
  const RotorNetTopology topo(small_params());
  for (int s = 0; s < topo.num_slices(); ++s) {
    const Graph g = topo.slice_graph(s);
    for (Vertex v = 0; v < 16; ++v) {
      EXPECT_LE(g.degree(v), 4);
    }
  }
}

}  // namespace
}  // namespace opera::topo

#include "topo/spectral.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "topo/random_regular.h"

namespace opera::topo {
namespace {

TEST(Spectral, DiagonalMatrixEigenvalues) {
  SymmetricMatrix m(3);
  m.set(0, 0, 3.0);
  m.set(1, 1, 1.0);
  m.set(2, 2, 2.0);
  const auto eig = eigenvalues(m);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], 3.0, 1e-9);
  EXPECT_NEAR(eig[1], 2.0, 1e-9);
  EXPECT_NEAR(eig[2], 1.0, 1e-9);
}

TEST(Spectral, TwoByTwoKnownEigenvalues) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  SymmetricMatrix m(2);
  m.set(0, 0, 2.0);
  m.set(1, 1, 2.0);
  m.set(0, 1, 1.0);
  const auto eig = eigenvalues(m);
  EXPECT_NEAR(eig[0], 3.0, 1e-9);
  EXPECT_NEAR(eig[1], 1.0, 1e-9);
}

TEST(Spectral, CompleteGraphSpectrum) {
  // K_n adjacency: eigenvalues n-1 (once) and -1 (n-1 times).
  constexpr Vertex n = 7;
  Graph g(n);
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  const auto eig = eigenvalues(adjacency_matrix(g));
  EXPECT_NEAR(eig.front(), 6.0, 1e-8);
  for (std::size_t i = 1; i < eig.size(); ++i) EXPECT_NEAR(eig[i], -1.0, 1e-8);
}

TEST(Spectral, CycleGraphSpectrum) {
  // C_n eigenvalues are 2*cos(2*pi*k/n).
  constexpr Vertex n = 6;
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  const auto eig = eigenvalues(adjacency_matrix(g));
  EXPECT_NEAR(eig.front(), 2.0, 1e-8);
  EXPECT_NEAR(eig.back(), -2.0, 1e-8);
}

TEST(Spectral, RegularGraphLambda1EqualsDegree) {
  sim::Rng rng(5);
  const Graph g = random_regular_graph(24, 4, rng);
  const auto info = spectral_info(g);
  EXPECT_NEAR(info.lambda1, 4.0, 1e-7);
  EXPECT_GT(info.gap, 0.0);  // connected regular graph
}

TEST(Spectral, RandomRegularNearRamanujan) {
  // Random regular graphs are nearly Ramanujan with high probability:
  // lambda2 <= 2*sqrt(d-1) + o(1). Allow 10% slack.
  sim::Rng rng(7);
  const Graph g = random_regular_graph(64, 5, rng);
  const auto info = spectral_info(g);
  EXPECT_LT(info.lambda2_abs, 1.1 * info.ramanujan_bound);
}

TEST(Spectral, BipartiteHasSymmetricSpectrum) {
  // Complete bipartite K_{3,3}: eigenvalues 3, 0 (x4), -3; gap is 0
  // because |lambda_n| == lambda_1 (bipartite graphs are poor expanders
  // in the two-sided sense).
  Graph g(6);
  for (Vertex a = 0; a < 3; ++a) {
    for (Vertex b = 3; b < 6; ++b) g.add_edge(a, b);
  }
  const auto info = spectral_info(g);
  EXPECT_NEAR(info.lambda1, 3.0, 1e-8);
  EXPECT_NEAR(info.lambda2_abs, 3.0, 1e-8);
  EXPECT_NEAR(info.gap, 0.0, 1e-8);
}

}  // namespace
}  // namespace opera::topo

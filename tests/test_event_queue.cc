#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace opera::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::us(3), [&] { order.push_back(3); });
  q.schedule(Time::us(1), [&] { order.push_back(1); });
  q.schedule(Time::us(2), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::us(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule(Time::us(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  int count = 0;
  auto h = q.schedule(Time::us(1), [&] { ++count; });
  q.run_next();
  EXPECT_FALSE(h.pending());
  h.cancel();  // after fire: no effect
  h.cancel();
  EXPECT_EQ(count, 1);
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.schedule(Time::us(1), [] {});
  q.schedule(Time::us(5), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), Time::us(5));
}

TEST(EventQueue, EmptyAfterAllCancelled) {
  EventQueue q;
  auto a = q.schedule(Time::us(1), [] {});
  auto b = q.schedule(Time::us(2), [] {});
  a.cancel();
  b.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::infinity());
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::us(1), [&] {
    order.push_back(1);
    q.schedule(Time::us(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(Time::us(7), [] {});
  EXPECT_EQ(q.run_next(), Time::us(7));
}

TEST(EventQueue, Clear) {
  EventQueue q;
  q.schedule(Time::us(1), [] {});
  q.schedule(Time::us(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace opera::sim

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace opera::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::us(3), [&] { order.push_back(3); });
  q.schedule(Time::us(1), [&] { order.push_back(1); });
  q.schedule(Time::us(2), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::us(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule(Time::us(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  int count = 0;
  auto h = q.schedule(Time::us(1), [&] { ++count; });
  q.run_next();
  EXPECT_FALSE(h.pending());
  h.cancel();  // after fire: no effect
  h.cancel();
  EXPECT_EQ(count, 1);
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.schedule(Time::us(1), [] {});
  q.schedule(Time::us(5), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), Time::us(5));
}

TEST(EventQueue, EmptyAfterAllCancelled) {
  EventQueue q;
  auto a = q.schedule(Time::us(1), [] {});
  auto b = q.schedule(Time::us(2), [] {});
  a.cancel();
  b.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::infinity());
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::us(1), [&] {
    order.push_back(1);
    q.schedule(Time::us(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(Time::us(7), [] {});
  EXPECT_EQ(q.run_next(), Time::us(7));
}

TEST(EventQueue, Clear) {
  EventQueue q;
  q.schedule(Time::us(1), [] {});
  q.schedule(Time::us(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeIsExactUnderCancellation) {
  EventQueue q;
  auto a = q.schedule(Time::us(1), [] {});
  auto b = q.schedule(Time::us(2), [] {});
  auto c = q.schedule(Time::us(3), [] {});
  EXPECT_EQ(q.size(), 3u);
  b.cancel();
  EXPECT_EQ(q.size(), 2u);  // no lazy-drop: cancelled events leave immediately
  a.cancel();
  c.cancel();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelThenReschedule) {
  // The transports' timer idiom: cancel the old handle, schedule a new
  // event, repeat. The old handle must stay inert even though the slab
  // slot it pointed at gets reused by the new event.
  EventQueue q;
  int fired = -1;
  EventHandle timer = q.schedule(Time::us(10), [&] { fired = 0; });
  for (int i = 1; i <= 100; ++i) {
    timer.cancel();
    timer = q.schedule(Time::us(10 + i), [&, i] { fired = i; });
  }
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 100);
}

TEST(EventQueue, StaleHandleCannotCancelSlotReuse) {
  EventQueue q;
  bool a_fired = false;
  bool b_fired = false;
  auto a = q.schedule(Time::us(1), [&] { a_fired = true; });
  a.cancel();
  // b likely reuses a's slot; a's handle must not be able to touch it.
  auto b = q.schedule(Time::us(2), [&] { b_fired = true; });
  a.cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
}

TEST(EventQueue, HandleOutlivesQueue) {
  EventHandle survivor;
  {
    EventQueue q;
    survivor = q.schedule(Time::us(5), [] {});
    EXPECT_TRUE(survivor.pending());
  }
  EXPECT_FALSE(survivor.pending());
  survivor.cancel();  // no crash, no effect
  EventHandle copy = survivor;
  EXPECT_FALSE(copy.pending());
}

TEST(EventQueue, CopiedHandleCancels) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule(Time::us(1), [&] { fired = true; });
  EventHandle copy = h;
  copy.cancel();
  EXPECT_FALSE(h.pending());
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, OrderMatchesReferenceUnderChurn) {
  // Deterministic total order (time, then schedule order) must survive the
  // calendar's resizes and slot reuse: run a random schedule/cancel churn
  // and compare the fire sequence against a sorted reference.
  EventQueue q;
  std::mt19937_64 rng(7);
  struct Ref {
    std::int64_t at;
    int id;
  };
  std::vector<Ref> expected;
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  int next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    const auto at = static_cast<std::int64_t>(rng() % 1000);
    const int id = next_id++;
    handles.push_back(q.schedule(Time::us(at), [&fired, id] { fired.push_back(id); }));
    expected.push_back({at, id});
    if (round % 3 == 1) {
      const std::size_t victim = rng() % handles.size();
      if (handles[victim].pending()) {
        const int vid = static_cast<int>(victim);
        handles[victim].cancel();
        std::erase_if(expected, [vid](const Ref& r) { return r.id == vid; });
      }
    }
  }
  EXPECT_EQ(q.size(), expected.size());
  while (!q.empty()) q.run_next();
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Ref& a, const Ref& b) { return a.at < b.at; });
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], expected[i].id) << "at index " << i;
  }
}

}  // namespace
}  // namespace opera::sim

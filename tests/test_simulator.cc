#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace opera::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen = Time::zero();
  sim.schedule_in(Time::us(10), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, Time::us(10));
  EXPECT_EQ(sim.now(), Time::us(10));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(Time::us(5), [&] {
    times.push_back(sim.now().to_us());
    sim.schedule_in(Time::us(5), [&] { times.push_back(sim.now().to_us()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{5.0, 10.0}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_in(Time::us(i), [&] { ++fired; });
  }
  const auto n = sim.run_until(Time::us(4));
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.now(), Time::us(4));
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(Time::ms(5));
  EXPECT_EQ(sim.now(), Time::ms(5));
}

TEST(Simulator, StopBreaksRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Time::us(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(Time::us(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAtClampsToNow) {
  Simulator sim;
  sim.schedule_in(Time::us(10), [&] {
    // Scheduling in the past lands "now", not before.
    sim.schedule_at(Time::us(1), [&] { EXPECT_EQ(sim.now(), Time::us(10)); });
  });
  sim.run();
}

TEST(Simulator, CountsEvents) {
  Simulator sim;
  for (int i = 0; i < 25; ++i) sim.schedule_in(Time::us(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 25u);
}

}  // namespace
}  // namespace opera::sim

// ShardParityTest — the sharded-core contract: an Opera run sharded over
// N rack domains is bit-identical to the 1-shard run. Exercised at the
// k=8 (16x4) and k=16 (24x8) test fabrics for threads ∈ {1, 2, 4}, over a
// mixed workload (NDP low-latency mice plus RotorLB bulk elephants with
// VLB relaying) and including a mid-run failure-recovery scenario
// (uplink + rotor-switch failures with hello-protocol reconvergence).
//
// "Bit-identical" is checked on everything the experiment layer reads:
// the full completion stream (flow id, start, completion timestamp — in
// stream order, which the canonical lane merge makes deterministic), ToR
// trim/drop/forward-drop counters, and the executed event count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/opera_network.h"
#include "sim/rng.h"

namespace opera {
namespace {

struct Completion {
  std::uint64_t id;
  std::int64_t start_ps;
  std::int64_t end_ps;
  bool operator==(const Completion&) const = default;
};

struct RunOutput {
  std::vector<Completion> completions;
  std::uint64_t trims = 0;
  std::uint64_t drops = 0;
  std::uint64_t forward_drops = 0;
  std::uint64_t events = 0;
  bool operator==(const RunOutput&) const = default;
};

core::OperaConfig small_opera(topo::Vertex racks, int u, int hosts_per_rack) {
  core::OperaConfig cfg;
  cfg.topology.num_racks = racks;
  cfg.topology.num_switches = u;
  cfg.topology.hosts_per_rack = hosts_per_rack;
  cfg.topology.seed = 3;
  // Low threshold so 600 KB elephants ride the RotorLB bulk path (same
  // testbed convention as test_routing_parity.cc).
  cfg.bulk_threshold_bytes = 100'000;
  return cfg;
}

RunOutput run_opera(const core::OperaConfig& base, int threads, bool inject_failures) {
  core::OperaConfig cfg = base;
  cfg.threads = threads;
  core::OperaNetwork net(cfg);
  EXPECT_EQ(net.num_shards(), std::min<int>(threads, net.num_racks()));

  sim::Rng wl(99);
  const auto hosts = static_cast<std::size_t>(net.num_hosts());
  for (int i = 0; i < 160; ++i) {
    const auto src = static_cast<std::int32_t>(wl.index(hosts));
    auto dst = static_cast<std::int32_t>(wl.index(hosts));
    while (dst == src) dst = static_cast<std::int32_t>(wl.index(hosts));
    // Mix of NDP mice and RotorLB elephants.
    const std::int64_t bytes = (i % 4 == 0) ? 600'000 : 20'000;
    net.submit_flow(src, dst, bytes, sim::Time::us(5 * i));
  }
  if (inject_failures) {
    // Mid-run, at fixed simulated times, with traffic in flight; the
    // second failure lands after the first recovery's reconvergence.
    net.run_until(sim::Time::us(300));
    net.inject_uplink_failure(1, 0);
    net.run_until(sim::Time::ms(3));
    net.inject_switch_failure(2);
  }
  net.run_until(sim::Time::ms(40));

  RunOutput out;
  for (const auto& rec : net.tracker().completions()) {
    out.completions.push_back(Completion{rec.flow.id, rec.flow.start.picoseconds(),
                                         rec.end.picoseconds()});
  }
  const auto stats = net.tor_stats();
  out.trims = stats.trims;
  out.drops = stats.drops;
  out.forward_drops = stats.forward_drops;
  out.events = net.engine().events_executed();
  return out;
}

void expect_parity(const core::OperaConfig& cfg, bool inject_failures,
                   const std::string& label) {
  const RunOutput one = run_opera(cfg, 1, inject_failures);
  ASSERT_FALSE(one.completions.empty()) << label;
  for (const int threads : {2, 4}) {
    const RunOutput sharded = run_opera(cfg, threads, inject_failures);
    ASSERT_EQ(one.completions.size(), sharded.completions.size())
        << label << " threads=" << threads;
    for (std::size_t i = 0; i < one.completions.size(); ++i) {
      ASSERT_EQ(one.completions[i], sharded.completions[i])
          << label << " threads=" << threads << ": completion " << i;
    }
    EXPECT_EQ(one.trims, sharded.trims) << label << " threads=" << threads;
    EXPECT_EQ(one.drops, sharded.drops) << label << " threads=" << threads;
    EXPECT_EQ(one.forward_drops, sharded.forward_drops)
        << label << " threads=" << threads;
    EXPECT_EQ(one.events, sharded.events) << label << " threads=" << threads;
  }
}

TEST(ShardParityTest, K8MixedWorkloadBitIdentical) {
  expect_parity(small_opera(16, 4, 4), false, "opera k=8 16x4");
}

TEST(ShardParityTest, K16MixedWorkloadBitIdentical) {
  expect_parity(small_opera(24, 8, 8), false, "opera k=16 24x8");
}

TEST(ShardParityTest, K8FailureRecoveryBitIdentical) {
  expect_parity(small_opera(16, 4, 4), true, "opera k=8 +failures");
}

TEST(ShardParityTest, K16FailureRecoveryBitIdentical) {
  expect_parity(small_opera(24, 8, 8), true, "opera k=16 +failures");
}

TEST(ShardParityTest, EnvThreadsKnobResolvesIntoShardCount) {
  core::OperaConfig cfg = small_opera(16, 4, 4);
  cfg.threads = 2;
  core::OperaNetwork net(cfg);
  EXPECT_EQ(net.num_shards(), 2);
  // More shards than racks clamps to rack granularity.
  cfg.threads = 64;
  core::OperaNetwork clamped(cfg);
  EXPECT_EQ(clamped.num_shards(), 16);
}

}  // namespace
}  // namespace opera

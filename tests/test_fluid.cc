#include "fluid/throughput.h"

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "topo/random_regular.h"

namespace opera::fluid {
namespace {

constexpr double kRate = 10e9;

TEST(Demand, Workloads) {
  const auto a2a = Demand::all_to_all(10, 6, kRate);
  EXPECT_NEAR(a2a.row_sum(0), 6 * kRate, 1.0);
  EXPECT_NEAR(a2a.col_sum(3), 6 * kRate, 1.0);

  const auto hot = Demand::hotrack(10, 6, kRate);
  EXPECT_NEAR(hot.total(), 6 * kRate, 1.0);
  EXPECT_NEAR(hot(0, 1), 6 * kRate, 1.0);

  const auto perm = Demand::permutation(10, 6, kRate, 3);
  EXPECT_NEAR(perm.total(), 10 * 6 * kRate, 1.0);

  const auto sk = Demand::skew(10, 6, kRate, 0.2, 3);
  EXPECT_NEAR(sk.total(), 2 * 6 * kRate, 1.0);  // 2 active racks
}

TEST(Demand, SparseMemoryShape) {
  // The matrix is CSR-style: O(racks + nonzeros) entries, never the dense
  // O(racks^2) doubles. Pin the shape so a dense regression at k=24+
  // scales (432+ racks) shows up here before it shows up as RSS.
  const int n = 432;  // k=24 rack count
  const auto hot = Demand::hotrack(n, 12, kRate);
  EXPECT_EQ(hot.nnz(), 1u);
  // One row vector per rack plus a single entry, far under the dense
  // 432^2 doubles (~1.5 MB).
  EXPECT_LT(hot.memory_bytes(),
            static_cast<std::size_t>(n) * sizeof(std::vector<Demand::Entry>) +
                64 * sizeof(Demand::Entry) + sizeof(Demand));
  EXPECT_LT(hot.memory_bytes(), static_cast<std::size_t>(n) * n * sizeof(double) / 8);

  // Dense-ish demand still stores only its nonzeros.
  const auto a2a = Demand::all_to_all(64, 6, kRate);
  EXPECT_EQ(a2a.nnz(), static_cast<std::size_t>(64) * 63);
  EXPECT_GE(a2a.memory_bytes(), a2a.nnz() * sizeof(Demand::Entry));

  // Accumulating into an existing cell must not grow storage.
  Demand d(8);
  d.add(1, 2, kRate);
  d.add(1, 2, kRate);
  d.add(2, 2, kRate);  // diagonal ignored
  EXPECT_EQ(d.nnz(), 1u);
  EXPECT_DOUBLE_EQ(d(1, 2), 2 * kRate);
  EXPECT_DOUBLE_EQ(d(2, 1), 0.0);
}

TEST(ClosThroughput, UniformLoadMatchesOversubscription) {
  // All-to-all at full host load: 3:1 Clos delivers 1/3.
  const auto d = Demand::all_to_all(12, 6, kRate);
  EXPECT_NEAR(clos_throughput(d, 6, kRate, 3.0), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(clos_throughput(d, 6, kRate, 1.0), 1.0, 1e-9);
}

TEST(ClosThroughput, IndependentOfSkew) {
  // The paper: "throughput of the folded Clos topology is independent of
  // traffic pattern" — hotrack and permutation saturate the same uplinks.
  const auto hot = Demand::hotrack(12, 6, kRate);
  const auto perm = Demand::permutation(12, 6, kRate, 4);
  EXPECT_NEAR(clos_throughput(hot, 6, kRate, 3.0), 1.0 / 3.0, 1e-9);
  EXPECT_LE(clos_throughput(perm, 6, kRate, 3.0), 1.0 / 3.0 + 1e-9);
}

TEST(ExpanderThroughput, HotrackNearFull) {
  // One rack pair active: an expander routes over many disjoint paths, so
  // throughput approaches (and is capped by) the sending rack's uplinks.
  sim::Rng rng(5);
  const auto g = topo::random_regular_graph(32, 7, rng);
  const auto hot = Demand::hotrack(32, 5, kRate);
  const double theta = expander_throughput(hot, g, kRate);
  // 5 hosts at 10G = 50G demand; 7 uplinks = 70G: theta could reach 1.4
  // if perfectly spread, at least ~0.8 realistically.
  EXPECT_GT(theta, 0.8);
}

TEST(ExpanderThroughput, AllToAllPaysPathTax) {
  sim::Rng rng(6);
  const auto g = topo::random_regular_graph(32, 7, rng);
  const auto a2a = Demand::all_to_all(32, 5, kRate);
  const double theta = expander_throughput(a2a, g, kRate);
  // Average path length ~2.3: effective capacity u/(d*L) ~ 0.6.
  EXPECT_LT(theta, 0.9);
  EXPECT_GT(theta, 0.3);
}

TEST(RotorThroughput, AllToAllIsTaxFree) {
  // Uniform demand rides direct circuits: theta ~ active_uplinks/d.
  RotorModelParams p;
  p.num_racks = 16;
  p.uplinks = 4;
  p.active_fraction = 3.0 / 4.0;
  p.duty_cycle = 1.0;
  const auto a2a = Demand::all_to_all(16, 4, kRate);
  const double theta = rotor_throughput(a2a, p);
  // Direct-only bound: per-pair cap (3/16 link) vs demand (4/15 link per
  // pair) gives theta = 45/64 ~ 0.703; a little VLB on top -> ~0.73.
  EXPECT_NEAR(theta, 0.73, 0.03);
}

TEST(RotorThroughput, HotrackUsesVlb) {
  RotorModelParams p;
  p.num_racks = 16;
  p.uplinks = 4;
  p.active_fraction = 3.0 / 4.0;
  p.duty_cycle = 1.0;
  const auto hot = Demand::hotrack(16, 4, kRate);
  const double with_vlb = rotor_throughput(hot, p);
  p.enable_vlb = false;
  const double without = rotor_throughput(hot, p);
  // Direct-only: one pair gets 3/16 of a link over time.
  EXPECT_NEAR(without, 3.0 / 16.0 * 10e9 / (4 * kRate), 0.01);
  EXPECT_GT(with_vlb, 5.0 * without);  // VLB lifts it to ~uplink bound
  EXPECT_LE(with_vlb, 0.76);
}

TEST(RotorThroughput, VlbTaxHalvesPermutationThroughput) {
  // Rack-pair permutation demand (each rack sends all to one rack):
  // almost everything is VLBed at 2x cost -> theta ~ 1/2 * uplink ratio.
  RotorModelParams p;
  p.num_racks = 16;
  p.uplinks = 4;
  p.active_fraction = 3.0 / 4.0;
  p.duty_cycle = 1.0;
  Demand d(16);
  for (int r = 0; r < 16; ++r) d.add(r, (r + 1) % 16, 4 * kRate);
  const double theta = rotor_throughput(d, p);
  EXPECT_LT(theta, 0.55);
  EXPECT_GT(theta, 0.3);
}

TEST(RotorThroughput, ZeroDemand) {
  RotorModelParams p;
  p.num_racks = 8;
  p.uplinks = 4;
  EXPECT_DOUBLE_EQ(rotor_throughput(Demand(8), p), 0.0);
}

}  // namespace
}  // namespace opera::fluid

"""Unit tests for the determinism linter (scripts/opera_lint.py).

One fixture set per rule: a positive case (the violation fires, named
with the right rule and line), a negative case (idiomatic clean code
passes), and an allowlist case (the justified exception is suppressed,
and the entry is marked used). Plus the allowlist parser, the
comment/string stripper (the classic false-positive sources), and the
CLI surface (exit codes, file args, --strict).

Run directly (python3 tests/test_opera_lint.py) or through ctest, which
registers it as `opera_lint_py` when a Python interpreter is found at
configure time. The tree-wide run itself is a separate ctest
(`opera_lint_tree`), so a determinism violation anywhere in src/ fails
the tier-1 suite.
"""
import pathlib
import subprocess
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))
from opera_lint import (  # noqa: E402
    lint_source, parse_allowlist, strip_comments_and_strings, RULES)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def rules_of(violations):
    return [(v.rule, v.line) for v in violations]


def lint(relpath, text, allowlist_text=None):
    entries = []
    if allowlist_text is not None:
        entries, errors = parse_allowlist(allowlist_text)
        assert not errors, errors
    return lint_source(relpath, text, entries), entries


class StripperTest(unittest.TestCase):
    def test_comments_and_strings_are_blanked_lines_preserved(self):
        src = 'int a; // Rng in a comment\n/* mt19937\n spans */ int b;\nauto s = "rand()";\n'
        out = strip_comments_and_strings(src)
        self.assertEqual(out.count("\n"), src.count("\n"))
        self.assertNotIn("Rng", out)
        self.assertNotIn("mt19937", out)
        self.assertNotIn("rand", out)
        self.assertIn("int a;", out)
        self.assertIn("int b;", out)

    def test_digit_separators_are_not_char_literals(self):
        # A lone separator (odd apostrophe count) must not open a "char
        # literal" that swallows the rest of the file — the bug that hid
        # `sim::Rng rng_;` behind `12'000;` in a real header.
        src = "int x = 12'000;\nint cap = 1'000'000;\nsim::Rng rng_;\n"
        out = strip_comments_and_strings(src)
        self.assertIn("sim::Rng rng_;", out)

    def test_char_literals_still_stripped(self):
        src = "char c = 'R'; use(Rng{});\n"
        out = strip_comments_and_strings(src)
        self.assertNotIn("'R'", out)
        self.assertIn("Rng{}", out)


class RngShardPathTest(unittest.TestCase):
    def test_rng_in_shard_layer_fires(self):
        vs, _ = lint("src/net/foo.cc", "void f() { sim::Rng r(1); }\n")
        self.assertEqual(rules_of(vs), [("rng-shard-path", 1)])
        self.assertIn("shard", vs[0].message)

    def test_mt19937_in_transport_fires(self):
        vs, _ = lint("src/transport/foo.cc", "std::mt19937 gen{42};\n")
        self.assertEqual(rules_of(vs), [("rng-shard-path", 1)])

    def test_generation_layers_are_exempt(self):
        for relpath in ("src/workload/foo.cc", "src/topo/foo.cc",
                        "src/exp/foo.cc", "src/fluid/foo.cc"):
            vs, _ = lint(relpath, "sim::Rng rng(7); rng.uniform();\n")
            self.assertEqual(vs, [], relpath)

    def test_rng_implementation_is_exempt(self):
        vs, _ = lint("src/sim/rng.cc", "Rng::Rng(std::uint64_t seed) {}\n")
        self.assertEqual(vs, [])

    def test_include_of_rng_header_not_flagged(self):
        vs, _ = lint("src/core/foo.h", '#include "sim/rng.h"\n')
        self.assertEqual(vs, [])

    def test_allowlisted_coordinator_site_is_suppressed(self):
        allow = ("rng-shard-path | src/core/foo.cc | rng_\\.shuffle"
                 " | coordinator grant shuffle, barrier-aligned\n")
        vs, entries = lint("src/core/foo.cc",
                           "void grants() { rng_.shuffle(order); }\n", allow)
        self.assertEqual(vs, [])
        self.assertTrue(entries[0].used)

    def test_allowlist_is_per_site_not_per_file(self):
        allow = ("rng-shard-path | src/core/foo.cc | rng_\\.shuffle"
                 " | coordinator grant shuffle\n")
        src = "void grants() { rng_.shuffle(order); }\nint pick() { return rng_.index(4); }\n"
        vs, _ = lint("src/core/foo.cc", src, allow)
        self.assertEqual(rules_of(vs), [("rng-shard-path", 2)])


class UnorderedIterationTest(unittest.TestCase):
    decl = "std::unordered_map<std::uint64_t, Flow> flows_;\n"

    def test_range_for_over_unordered_member_fires(self):
        src = self.decl + "void f() { for (auto& [id, fl] : flows_) emit(fl); }\n"
        vs, _ = lint("src/transport/foo.h", src)
        self.assertEqual(rules_of(vs), [("unordered-iteration", 2)])
        self.assertIn("flows_", vs[0].message)

    def test_iterator_walk_fires(self):
        src = self.decl + "auto it = flows_.begin();\n"
        vs, _ = lint("src/transport/foo.h", src)
        self.assertEqual(rules_of(vs), [("unordered-iteration", 2)])

    def test_keyed_lookup_is_clean(self):
        src = (self.decl +
               "const Flow* find(std::uint64_t id) {\n"
               "  auto it = flows_.find(id);\n"
               "  return it == flows_.end() ? nullptr : &it->second;\n"
               "}\n")
        vs, _ = lint("src/transport/foo.h", src)
        self.assertEqual(vs, [])

    def test_range_for_over_ordered_container_is_clean(self):
        src = ("std::vector<FlowRecord> completions_;\n"
               "void f() { for (const auto& rec : completions_) emit(rec); }\n")
        vs, _ = lint("src/transport/foo.cc", src)
        self.assertEqual(vs, [])

    def test_allowlisted_order_insensitive_walk_is_suppressed(self):
        allow = ("unordered-iteration | src/net/foo.cc | total \\+= "
                 " | order-insensitive sum over values\n")
        src = ("std::unordered_map<int, long> bytes_;\n"
               "long total() { long total = 0; for (auto& [k, v] : bytes_) total += v; return total; }\n")
        vs, entries = lint("src/net/foo.cc", src, allow)
        self.assertEqual(vs, [])
        self.assertTrue(entries[0].used)


class PointerOrderTest(unittest.TestCase):
    def test_hash_of_pointer_fires(self):
        vs, _ = lint("src/sim/foo.h",
                     "std::unordered_set<Node*, std::hash<Node*>> seen;\n")
        self.assertIn("pointer-order", [v.rule for v in vs])

    def test_less_of_pointer_fires(self):
        vs, _ = lint("src/sim/foo.h", "std::set<Event*, std::less<Event*>> q;\n")
        self.assertEqual([v.rule for v in vs], ["pointer-order"])

    def test_uintptr_cast_fires(self):
        vs, _ = lint("src/net/foo.cc",
                     "auto key = reinterpret_cast<std::uintptr_t>(node);\n")
        self.assertEqual(rules_of(vs), [("pointer-order", 1)])

    def test_hash_of_value_type_is_clean(self):
        vs, _ = lint("src/net/foo.cc", "std::hash<std::uint64_t> h;\n")
        self.assertEqual(vs, [])


class WallClockTest(unittest.TestCase):
    def test_system_clock_fires(self):
        vs, _ = lint("src/exp/foo.cc",
                     "auto now = std::chrono::system_clock::now();\n")
        self.assertEqual(rules_of(vs), [("wall-clock", 1)])

    def test_libc_time_and_rand_fire(self):
        vs, _ = lint("src/workload/foo.cc",
                     "srand(time(nullptr));\nint r = rand();\n")
        self.assertEqual([v.rule for v in vs], ["wall-clock", "wall-clock"])

    def test_steady_clock_is_allowed(self):
        # Wall-clock *reporting* (the wall_s column) is legitimate.
        vs, _ = lint("src/exp/foo.cc",
                     "const auto t0 = std::chrono::steady_clock::now();\n")
        self.assertEqual(vs, [])

    def test_sim_time_accessors_are_clean(self):
        src = ("sim::Time t = sim.time();\n"
               "auto nt = queue.next_time();\n"
               "double s = warmup_time(cfg);\n")
        vs, _ = lint("src/sim/foo.cc", src)
        self.assertEqual(vs, [])


class RawPacketAllocTest(unittest.TestCase):
    def test_new_packet_fires(self):
        vs, _ = lint("src/transport/foo.cc", "auto* p = new net::Packet;\n")
        self.assertEqual(rules_of(vs), [("raw-packet-alloc", 1)])

    def test_delete_of_packet_fires(self):
        vs, _ = lint("src/net/foo.cc", "delete pkt;\n")
        self.assertEqual(rules_of(vs), [("raw-packet-alloc", 1)])

    def test_pool_implementation_is_exempt(self):
        vs, _ = lint("src/net/packet.cc",
                     "if (pool.empty()) return PacketPtr{new Packet};\n")
        self.assertEqual(vs, [])

    def test_deleted_special_member_is_clean(self):
        vs, _ = lint("src/net/foo.h",
                     "Packet(const Packet&) = delete;\n"
                     "Packet& operator=(const Packet&) = delete;\n")
        self.assertEqual(vs, [])

    def test_unrelated_delete_is_clean(self):
        vs, _ = lint("src/sim/foo.cc", "delete impl_;\n")
        self.assertEqual(vs, [])


class IncludeLayeringTest(unittest.TestCase):
    def test_core_may_not_include_exp(self):
        vs, _ = lint("src/core/foo.h", '#include "exp/output.h"\n')
        self.assertEqual(rules_of(vs), [("include-layering", 1)])
        self.assertIn("CMake", vs[0].message)

    def test_sim_may_not_include_net(self):
        vs, _ = lint("src/sim/foo.cc", '#include "net/packet.h"\n')
        self.assertEqual(rules_of(vs), [("include-layering", 1)])

    def test_edges_matching_cmake_graph_are_clean(self):
        cases = [
            ("src/topo/foo.h", "sim/time.h"),
            ("src/transport/foo.h", "net/packet.h"),
            ("src/core/foo.cc", "transport/rotorlb.h"),
            ("src/exp/foo.cc", "core/network.h"),
            ("src/exp/foo.cc", "topo/graph.h"),
            # PR 9: the fluid engines implement core::Network, so fluid
            # sits above core (and pulls in core's closure).
            ("src/fluid/foo.h", "core/network.h"),
            ("src/fluid/foo.cc", "transport/flow.h"),
        ]
        for relpath, inc in cases:
            vs, _ = lint(relpath, f'#include "{inc}"\n')
            self.assertEqual(vs, [], f"{relpath} -> {inc}")

    def test_core_may_not_include_fluid(self):
        # The engine registry exists precisely so this edge never appears:
        # core reaches the fluid engines through registered builders only.
        vs, _ = lint("src/core/fabric.cc", '#include "fluid/fluid_network.h"\n')
        self.assertEqual(rules_of(vs), [("include-layering", 1)])

    def test_system_and_nonlayer_includes_ignored(self):
        vs, _ = lint("src/core/foo.cc",
                     "#include <vector>\n#include \"core/config.h\"\n")
        self.assertEqual(vs, [])


class CheckpointCoverageTest(unittest.TestCase):
    TAGGED = (
        "// checkpoint:v1 fields=2\n"
        "struct Foo {\n"
        "  int a = 0;\n"
        "  sim::Time b;\n"
        "};\n")

    def test_matching_count_is_clean(self):
        vs, _ = lint("src/core/foo.h", self.TAGGED)
        self.assertEqual(vs, [])

    def test_added_member_without_marker_update_fires(self):
        src = self.TAGGED.replace("  sim::Time b;\n",
                                  "  sim::Time b;\n  double extra = 0.0;\n")
        vs, _ = lint("src/core/foo.h", src)
        self.assertEqual(rules_of(vs), [("checkpoint-coverage", 1)])
        self.assertIn("fields=2", vs[0].message)
        self.assertIn("3 data member(s)", vs[0].message)
        self.assertIn("v1 -> v2", vs[0].message)

    def test_methods_statics_aliases_not_counted(self):
        src = (
            "// checkpoint:v3 fields=3\n"
            "struct Foo {\n"
            "  using Clock = sim::Time;\n"
            "  static constexpr int kMax = 4;\n"
            "  enum class Mode { kA, kB };\n"
            "  int a;\n"
            "  std::function<void(const char*)> hook;  // parens in template args\n"
            "  std::vector<int> brace_init{1, 2};\n"
            "  void method(int x = 3);\n"
            "  int inline_body() const { return a; }\n"
            "  Foo& operator=(const Foo&) = default;\n"
            "};\n")
        vs, _ = lint("src/core/foo.h", src)
        self.assertEqual(vs, [], vs)

    def test_commented_out_member_not_counted(self):
        src = self.TAGGED.replace("  sim::Time b;\n",
                                  "  sim::Time b;\n  // int disabled;\n")
        vs, _ = lint("src/core/foo.h", src)
        self.assertEqual(vs, [])

    def test_dangling_marker_fires(self):
        vs, _ = lint("src/core/foo.h",
                     "// checkpoint:v1 fields=2\nint not_a_struct;\n")
        self.assertEqual(rules_of(vs), [("checkpoint-coverage", 1)])
        self.assertIn("dangling", vs[0].message)

    def test_untagged_structs_ignored(self):
        vs, _ = lint("src/core/foo.h", "struct Foo { int a; int b; };\n")
        self.assertEqual(vs, [])


class AllowlistParserTest(unittest.TestCase):
    def test_missing_justification_is_an_error(self):
        _, errors = parse_allowlist("rng-shard-path | src/a.cc | pat |\n")
        self.assertEqual(len(errors), 1)

    def test_unknown_rule_is_an_error(self):
        _, errors = parse_allowlist("no-such-rule | src/a.cc | pat | why\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("no-such-rule", errors[0])

    def test_bad_regex_is_an_error(self):
        _, errors = parse_allowlist("wall-clock | src/a.cc | [bad | why\n")
        self.assertEqual(len(errors), 1)

    def test_comments_and_blanks_skipped(self):
        entries, errors = parse_allowlist("# comment\n\nwall-clock | src/a.cc | x | y\n")
        self.assertEqual(errors, [])
        self.assertEqual(len(entries), 1)


class CliTest(unittest.TestCase):
    LINT = str(REPO_ROOT / "scripts" / "opera_lint.py")

    def run_lint(self, *args):
        return subprocess.run([sys.executable, self.LINT, *args],
                              capture_output=True, text=True)

    def test_tree_is_clean(self):
        r = self.run_lint("--strict")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_violation_names_rule_and_location(self):
        import tempfile
        with tempfile.TemporaryDirectory(dir=REPO_ROOT) as td:
            bad = pathlib.Path(td) / "src" / "net" / "bad.cc"
            bad.parent.mkdir(parents=True)
            bad.write_text("std::mt19937 gen;\n")
            r = self.run_lint("--root", td, str(bad))
            self.assertEqual(r.returncode, 1)
            self.assertIn("[rng-shard-path]", r.stdout)
            self.assertIn("bad.cc:1", r.stdout)

    def test_list_rules_covers_all(self):
        r = self.run_lint("--list-rules")
        self.assertEqual(r.returncode, 0)
        self.assertEqual(set(r.stdout.split()), set(RULES))


if __name__ == "__main__":
    unittest.main()

#include "sim/ring.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/parallel.h"

namespace opera::sim {
namespace {

TEST(Ring, StartsWithoutAllocation) {
  // A default-constructed ring owns no buffer — the property that lets a
  // fabric hold millions of mostly-empty VOQs.
  Ring<int> r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
}

TEST(Ring, FifoOrder) {
  Ring<int> r;
  for (int i = 0; i < 100; ++i) r.push_back(i);
  EXPECT_EQ(r.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.pop_front(), i);
  EXPECT_TRUE(r.empty());
}

TEST(Ring, PushFront) {
  Ring<int> r;
  r.push_back(2);
  r.push_front(1);
  r.push_back(3);
  EXPECT_EQ(r.front(), 1);
  EXPECT_EQ(r.pop_front(), 1);
  EXPECT_EQ(r.pop_front(), 2);
  EXPECT_EQ(r.pop_front(), 3);
}

TEST(Ring, WrapsAndGrows) {
  Ring<int> r;
  // Interleave pushes and pops so head walks around the buffer, then force
  // growth mid-wrap and check nothing is lost or reordered.
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    r.push_back(next_in++);
    r.push_back(next_in++);
    EXPECT_EQ(r.pop_front(), next_out++);
  }
  EXPECT_EQ(r.size(), static_cast<std::size_t>(next_in - next_out));
  while (!r.empty()) EXPECT_EQ(r.pop_front(), next_out++);
  EXPECT_EQ(next_out, next_in);
}

TEST(Ring, MoveOnlyElements) {
  Ring<std::unique_ptr<int>> r;
  r.push_back(std::make_unique<int>(7));
  r.push_back(std::make_unique<int>(8));
  EXPECT_EQ(*r.front(), 7);
  auto p = r.pop_front();
  EXPECT_EQ(*p, 7);
  r.clear();
  EXPECT_TRUE(r.empty());
}

TEST(Ring, ForEachVisitsFrontToBack) {
  Ring<int> r;
  for (int i = 0; i < 5; ++i) r.push_back(i * 10);
  (void)r.pop_front();
  std::string seen;
  r.for_each([&seen](const int& v) { seen += std::to_string(v) + ","; });
  EXPECT_EQ(seen, "10,20,30,40,");
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyAndSingle) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
  int runs = 0;
  parallel_for(1, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(64, [](std::size_t i) {
        if (i == 13) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

}  // namespace
}  // namespace opera::sim

#include "workload/flow_size_dist.h"
#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include <set>

namespace opera::workload {
namespace {

TEST(FlowSizeDist, SamplesWithinSupport) {
  for (const auto& dist : {FlowSizeDistribution::datamining(),
                           FlowSizeDistribution::websearch(),
                           FlowSizeDistribution::hadoop()}) {
    sim::Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
      const auto s = dist.sample(rng);
      EXPECT_GE(s, static_cast<std::int64_t>(dist.flow_cdf().front().bytes) - 1)
          << dist.name();
      EXPECT_LE(s, static_cast<std::int64_t>(dist.flow_cdf().back().bytes) + 1)
          << dist.name();
    }
  }
}

TEST(FlowSizeDist, EmpiricalMedianMatchesCdf) {
  const auto dist = FlowSizeDistribution::datamining();
  sim::Rng rng(2);
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 20'000; ++i) samples.push_back(dist.sample(rng));
  std::sort(samples.begin(), samples.end());
  // CDF says 50% at ~1100 bytes.
  const double median = static_cast<double>(samples[samples.size() / 2]);
  EXPECT_GT(median, 700.0);
  EXPECT_LT(median, 1'700.0);
}

TEST(FlowSizeDist, DataminingIsByteHeavy) {
  // The paper's premise: nearly all Datamining bytes are in bulk flows
  // (>= 15 MB), while nearly all of its *flows* are small.
  const auto dist = FlowSizeDistribution::datamining();
  EXPECT_GT(dist.byte_fraction_at_or_above(15e6), 0.75);
  // Websearch is the opposite: no flow reaches 15 MB (§5.3).
  const auto ws = FlowSizeDistribution::websearch();
  EXPECT_LT(ws.byte_fraction_at_or_above(15e6), 0.10);
}

TEST(FlowSizeDist, ByteCdfMonotoneAndNormalized) {
  for (const auto& dist : {FlowSizeDistribution::datamining(),
                           FlowSizeDistribution::websearch(),
                           FlowSizeDistribution::hadoop()}) {
    const auto cdf = dist.byte_cdf();
    ASSERT_FALSE(cdf.empty());
    double prev = 0.0;
    for (const auto& p : cdf) {
      EXPECT_GE(p.cdf + 1e-12, prev);
      prev = p.cdf;
    }
    EXPECT_DOUBLE_EQ(cdf.back().cdf, 1.0);
  }
}

TEST(FlowSizeDist, MeanIsSensible) {
  // Websearch mean should be O(1 MB); datamining higher (heavy tail).
  EXPECT_GT(FlowSizeDistribution::websearch().mean_bytes(), 2e5);
  EXPECT_LT(FlowSizeDistribution::websearch().mean_bytes(), 5e6);
  EXPECT_GT(FlowSizeDistribution::datamining().mean_bytes(), 1e6);
}

TEST(Poisson, RateMatchesLoad) {
  const auto dist = FlowSizeDistribution::websearch();
  sim::Rng rng(3);
  const double load = 0.10;
  const auto flows = poisson_workload(dist, 64, load, 10e9, sim::Time::ms(100), rng);
  ASSERT_FALSE(flows.empty());
  double bytes = 0.0;
  for (const auto& f : flows) {
    EXPECT_NE(f.src_host, f.dst_host);
    EXPECT_LT(f.src_host, 64);
    bytes += static_cast<double>(f.size_bytes);
  }
  // Offered bits over 100 ms should be ~10% of 64x10G.
  const double offered_bps = bytes * 8.0 / 0.1;
  EXPECT_NEAR(offered_bps / (64.0 * 10e9), load, 0.35 * load);
}

TEST(Poisson, ArrivalsSorted) {
  const auto dist = FlowSizeDistribution::hadoop();
  sim::Rng rng(4);
  const auto flows = poisson_workload(dist, 16, 0.2, 10e9, sim::Time::ms(20), rng);
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_GE(flows[i].start, flows[i - 1].start);
  }
}

TEST(Shuffle, ExcludesRackLocal) {
  sim::Rng rng(5);
  const auto flows = shuffle_workload(16, 4, 100'000, sim::Time::zero(), rng);
  // 16 hosts, 4 racks: each host sends to 12 non-local peers.
  EXPECT_EQ(flows.size(), 16u * 12u);
  for (const auto& f : flows) {
    EXPECT_NE(f.src_host / 4, f.dst_host / 4);
    EXPECT_EQ(f.size_bytes, 100'000);
  }
}

TEST(Shuffle, StaggerBoundsStarts) {
  sim::Rng rng(6);
  const auto flows = shuffle_workload(8, 2, 1'000, sim::Time::ms(10), rng);
  for (const auto& f : flows) {
    EXPECT_LT(f.start, sim::Time::ms(10));
  }
}

TEST(Permutation, IsPermutationAndRackDisjoint) {
  sim::Rng rng(7);
  const auto flows = permutation_workload(24, 3, 1'000'000, rng);
  EXPECT_EQ(flows.size(), 24u);
  std::set<std::int32_t> dsts;
  for (const auto& f : flows) {
    EXPECT_NE(f.src_host / 3, f.dst_host / 3);
    dsts.insert(f.dst_host);
  }
  EXPECT_EQ(dsts.size(), 24u);  // each host receives exactly one flow
}

TEST(Hotrack, PairsRackZeroAndOne) {
  const auto flows = hotrack_workload(6, 500'000);
  EXPECT_EQ(flows.size(), 6u);
  for (const auto& f : flows) {
    EXPECT_LT(f.src_host, 6);
    EXPECT_GE(f.dst_host, 6);
    EXPECT_LT(f.dst_host, 12);
  }
}

TEST(Skew, ActiveFractionRespected) {
  sim::Rng rng(8);
  const auto flows = skew_workload(20, 4, 0.2, 10'000, rng);
  std::set<std::int32_t> racks;
  for (const auto& f : flows) {
    racks.insert(f.src_host / 4);
    racks.insert(f.dst_host / 4);
  }
  EXPECT_EQ(racks.size(), 4u);  // 20% of 20 racks
  // all-to-all among 4 racks x 4 hosts: 4*3 rack pairs x 4 host pairs.
  EXPECT_EQ(flows.size(), 4u * 3u * 4u);
}

}  // namespace
}  // namespace opera::workload

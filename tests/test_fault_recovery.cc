// Runtime fault injection and reconvergence in the Opera DES network
// (paper §3.6.2: hello protocol + route recomputation).
#include "core/opera_network.h"

#include <gtest/gtest.h>

namespace opera::core {
namespace {

OperaConfig config_u6() {
  OperaConfig cfg;
  cfg.topology.num_racks = 24;
  cfg.topology.num_switches = 6;
  cfg.topology.hosts_per_rack = 4;
  cfg.topology.seed = 4;
  cfg.seed = 5;
  return cfg;
}

TEST(FaultRecovery, TrafficSurvivesSwitchFailure) {
  OperaNetwork net(config_u6());
  // Continuous stream of small flows across the failure event.
  sim::Rng rng(1);
  const int flows = 600;
  for (int i = 0; i < flows; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(96));
    auto dst = static_cast<std::int32_t>(rng.index(96));
    if (dst == src) dst = (dst + 1) % 96;
    net.submit_flow(src, dst, 8'000, sim::Time::us(25 * i));
  }
  net.sim().schedule_at(sim::Time::ms(4), [&net] { net.inject_switch_failure(1); });
  net.run_until(sim::Time::ms(60));
  EXPECT_EQ(net.tracker().completed(), static_cast<std::size_t>(flows));
}

TEST(FaultRecovery, TrafficSurvivesUplinkFailures) {
  OperaNetwork net(config_u6());
  sim::Rng rng(2);
  const int flows = 400;
  for (int i = 0; i < flows; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(96));
    auto dst = static_cast<std::int32_t>(rng.index(96));
    if (dst == src) dst = (dst + 1) % 96;
    net.submit_flow(src, dst, 8'000, sim::Time::us(30 * i));
  }
  net.sim().schedule_at(sim::Time::ms(3), [&net] {
    net.inject_uplink_failure(0, 2);
    net.inject_uplink_failure(5, 3);
    net.inject_uplink_failure(9, 0);
  });
  net.run_until(sim::Time::ms(60));
  EXPECT_EQ(net.tracker().completed(), static_cast<std::size_t>(flows));
}

TEST(FaultRecovery, BulkReroutesAroundFailedSwitch) {
  OperaNetwork net(config_u6());
  net.submit_flow(0, 95, 20'000'000, sim::Time::zero());  // bulk
  net.sim().schedule_at(sim::Time::ms(2), [&net] { net.inject_switch_failure(3); });
  net.run_until(sim::Time::ms(120));
  ASSERT_EQ(net.tracker().completed(), 1u);
  // With one of six switches dead, direct slices to the destination are
  // rarer, but VLB over the surviving circuits keeps the flow moving.
  EXPECT_LT(net.tracker().completions()[0].fct().to_ms(), 120.0);
}

TEST(FaultRecovery, FailureStateIsRecorded) {
  OperaNetwork net(config_u6());
  net.inject_switch_failure(2);
  net.inject_uplink_failure(7, 4);
  EXPECT_TRUE(net.failures().switch_failed[2]);
  EXPECT_TRUE(net.failures().uplink_failed[7][4]);
  EXPECT_FALSE(net.failures().switch_failed[0]);
}

TEST(FaultRecovery, PostReconvergenceTailIsClean) {
  // Flows submitted well after reconvergence shouldn't see elevated tails.
  OperaNetwork net(config_u6());
  net.inject_switch_failure(5);
  net.run_until(sim::Time::ms(10));  // > 1 cycle: tables recomputed
  sim::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(96));
    auto dst = static_cast<std::int32_t>(rng.index(96));
    if (dst == src) dst = (dst + 1) % 96;
    net.submit_flow(src, dst, 8'000, sim::Time::ms(10) + sim::Time::us(30 * i));
  }
  net.run_until(sim::Time::ms(40));
  EXPECT_EQ(net.tracker().completed(), 300u);
  const auto fct = net.tracker().fct_us(0, 1'000'000);
  EXPECT_LT(fct.percentile(99), 500.0);
}

}  // namespace
}  // namespace opera::core

// Checkpoint/restore round trips (docs/CHECKPOINT.md).
//
// The format tests pin the text schema: write/parse round trips, loud
// line-numbered rejection of truncated / corrupted / version-skewed files.
// The replay tests pin the contract that matters: a checkpoint taken
// mid-run — mid-failure-storm, mid-gray — restores on a freshly built
// fabric at any --threads=N, verifies the multi-layer fingerprint at the
// snapshot time, and finishes the run bit-identical to one that was never
// interrupted (completions, TorStats, event counts, final digest).
#include "sim/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fabric.h"
#include "core/network.h"
#include "core/opera_network.h"
#include "exp/run_guard.h"
#include "exp/scenario.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "workload/synthetic.h"

namespace opera {
namespace {

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

TEST(Fingerprint, OrderSensitive) {
  sim::Fingerprint ab;
  ab.mix_u64(1);
  ab.mix_u64(2);
  sim::Fingerprint ba;
  ba.mix_u64(2);
  ba.mix_u64(1);
  EXPECT_NE(ab.digest(), ba.digest());
}

TEST(Fingerprint, CountGuardsAgainstExtension) {
  // Mixing an extra zero must change the digest: the finalizer folds the
  // mix count in, so "same xor, different lengths" cannot collide.
  sim::Fingerprint a;
  a.mix_u64(7);
  sim::Fingerprint b;
  b.mix_u64(7);
  b.mix_u64(0);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Fingerprint, DoubleUsesBitPattern) {
  sim::Fingerprint pos;
  pos.mix_double(0.0);
  sim::Fingerprint neg;
  neg.mix_double(-0.0);
  EXPECT_NE(pos.digest(), neg.digest());
}

TEST(Fingerprint, Deterministic) {
  const auto digest_of = [] {
    sim::Fingerprint fp;
    fp.mix_time(sim::Time::us(3));
    fp.mix_bool(true);
    fp.mix_bytes("opera");
    return fp.digest();
  };
  EXPECT_EQ(digest_of(), digest_of());
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

sim::CheckpointData sample_data() {
  sim::CheckpointData data;
  data.run.push_back({"run_label", "permutation"});
  data.run.push_back({"scenario", "gray:links=6,loss=0.05;skew:switch=3"});
  data.run.push_back({"empty_value", ""});
  data.config.push_back({"kind", "opera"});
  data.config.push_back({"seed", "42"});
  data.flows.push_back(sim::CheckpointFlow{1000, 0, 5, 1500});
  data.flows.push_back(sim::CheckpointFlow{2000, 5, 0, 64000});
  data.state.push_back({"time_ps", "5000000000"});
  data.state.push_back({"fingerprint", "00DEADBEEF00F00D"});
  return data;
}

TEST(CheckpointFormat, WriteParseRoundTrip) {
  const auto data = sample_data();
  const auto parsed = sim::parse_checkpoint(sim::write_checkpoint_text(data),
                                            "roundtrip");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.data.version, sim::kCheckpointSchemaVersion);
  ASSERT_EQ(parsed.data.run.size(), data.run.size());
  for (std::size_t i = 0; i < data.run.size(); ++i) {
    EXPECT_EQ(parsed.data.run[i].key, data.run[i].key);
    EXPECT_EQ(parsed.data.run[i].value, data.run[i].value);
  }
  ASSERT_EQ(parsed.data.flows.size(), 2u);
  EXPECT_EQ(parsed.data.flows[1].start_ps, 2000);
  EXPECT_EQ(parsed.data.flows[1].src_host, 5);
  EXPECT_EQ(parsed.data.flows[1].dst_host, 0);
  EXPECT_EQ(parsed.data.flows[1].size_bytes, 64000);
  ASSERT_NE(sim::find_entry(parsed.data.state, "fingerprint"), nullptr);
  EXPECT_EQ(*sim::find_entry(parsed.data.state, "fingerprint"),
            "00DEADBEEF00F00D");
  EXPECT_EQ(sim::find_entry(parsed.data.state, "no_such_key"), nullptr);
}

TEST(CheckpointFormat, ValuesMayContainSpaces) {
  sim::CheckpointData data;
  data.run.push_back({"run_label", "day in the life"});
  const auto parsed =
      sim::parse_checkpoint(sim::write_checkpoint_text(data), "spaces");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(*sim::find_entry(parsed.data.run, "run_label"), "day in the life");
}

TEST(CheckpointFormat, TruncatedFileRejectedWithLineNumber) {
  const auto text = sim::write_checkpoint_text(sample_data());
  const auto cut = text.substr(0, text.size() / 2);
  const auto parsed = sim::parse_checkpoint(cut, "cut.ckpt");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("cut.ckpt:"), std::string::npos) << parsed.error;
  EXPECT_NE(parsed.error.find("truncated"), std::string::npos) << parsed.error;
}

TEST(CheckpointFormat, CorruptedContentRejectedWithLineNumber) {
  auto text = sim::write_checkpoint_text(sample_data());
  const auto pos = text.find("permutation");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = 'X';  // flip one byte; the trailing checksum must catch it
  const auto parsed = sim::parse_checkpoint(text, "bad.ckpt");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("bad.ckpt:"), std::string::npos) << parsed.error;
  EXPECT_NE(parsed.error.find("checksum"), std::string::npos) << parsed.error;
}

TEST(CheckpointFormat, VersionMismatchRejected) {
  auto text = sim::write_checkpoint_text(sample_data());
  const std::string header = "OPERA-CHECKPOINT v";
  const auto pos = text.find(header);
  ASSERT_EQ(pos, 0u);
  text.replace(pos + header.size(), 1, "9");
  const auto parsed = sim::parse_checkpoint(text, "skew.ckpt");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("skew.ckpt:1:"), std::string::npos)
      << parsed.error;
  EXPECT_NE(parsed.error.find("schema v9 is not supported"), std::string::npos)
      << parsed.error;
}

TEST(CheckpointFormat, GarbageRejected) {
  const auto parsed = sim::parse_checkpoint("not a checkpoint\n", "junk");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("junk:1:"), std::string::npos) << parsed.error;
}

// ---------------------------------------------------------------------------
// FabricConfig serialization
// ---------------------------------------------------------------------------

core::FabricConfig sample_config() {
  auto config = core::FabricConfig::make(core::FabricKind::kOpera).scale(16, 4);
  config.seed = 42;
  config.threads = 2;
  config.slice_table_window = 8;
  config.enable_vlb = true;
  return config;
}

TEST(FabricConfigSerialization, RoundTripIsExact) {
  const auto config = sample_config();
  const auto entries = core::serialize_fabric_config(config);
  core::FabricConfig restored;
  ASSERT_EQ(core::parse_fabric_config(entries, &restored), "");
  // FabricConfig has no operator==; the serialized form is the equality
  // we actually care about (it is what the replay rebuilds from).
  const auto re_entries = core::serialize_fabric_config(restored);
  ASSERT_EQ(entries.size(), re_entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].key, re_entries[i].key);
    EXPECT_EQ(entries[i].value, re_entries[i].value) << entries[i].key;
  }
}

TEST(FabricConfigSerialization, MissingKeyFallsBackToDefault) {
  auto entries = core::serialize_fabric_config(sample_config());
  std::erase_if(entries, [](const sim::CheckpointEntry& e) {
    return e.key == "slice_table_window";
  });
  core::FabricConfig restored;
  ASSERT_EQ(core::parse_fabric_config(entries, &restored), "");
  EXPECT_EQ(restored.slice_table_window, core::FabricConfig{}.slice_table_window);
  EXPECT_EQ(restored.seed, 42u);  // the rest still parsed
}

TEST(FabricConfigSerialization, UnknownKeyRejected) {
  auto entries = core::serialize_fabric_config(sample_config());
  entries.push_back({"from_the_future", "1"});
  core::FabricConfig restored;
  const auto err = core::parse_fabric_config(entries, &restored);
  EXPECT_NE(err.find("from_the_future"), std::string::npos) << err;
}

TEST(FabricConfigSerialization, MalformedValueRejected) {
  auto entries = core::serialize_fabric_config(sample_config());
  for (auto& e : entries) {
    if (e.key == "seed") e.value = "not-a-number";
  }
  core::FabricConfig restored;
  const auto err = core::parse_fabric_config(entries, &restored);
  EXPECT_NE(err.find("seed"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Run recipe round trip + deterministic replay across thread counts
// ---------------------------------------------------------------------------

exp::RunRecipe make_recipe(const std::string& scenario) {
  exp::RunRecipe recipe;
  recipe.run_label = "permutation";
  recipe.fabric_label = "opera";
  recipe.load_pct = 12.5;
  recipe.scenario = scenario;
  recipe.config = core::FabricConfig::make(core::FabricKind::kOpera).scale(16, 4);
  recipe.config.seed = 9;
  sim::Rng rng(10);
  recipe.flows = workload::permutation_workload(
      recipe.config.opera.num_racks * recipe.config.opera.hosts_per_rack, 4,
      500 * 1000, rng);
  recipe.horizon = sim::Time::ms(25);
  return recipe;
}

// Rebuilds the fabric from the recipe (exactly as bench_custom --resume
// does), arms its scenario suite, resubmits the flows, and runs to `until`.
std::unique_ptr<core::Network> replay(const exp::RunRecipe& recipe, int threads,
                                      sim::Time until) {
  core::FabricConfig config = recipe.config;
  config.threads = threads;
  auto net = core::NetworkFactory::build(config);
  if (!recipe.scenario.empty()) {
    const auto suite = exp::parse_scenarios(recipe.scenario);
    EXPECT_TRUE(suite.ok()) << suite.error;
    for (const auto& spec : suite.specs) {
      EXPECT_EQ(exp::validate_scenario(spec, config), "");
      if (auto* opera_net = dynamic_cast<core::OperaNetwork*>(net.get())) {
        exp::arm_scenario(spec, *opera_net);
      }
    }
  }
  for (const auto& f : recipe.flows) {
    net->submit_remapped(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
  net->run_until(until);
  return net;
}

std::uint64_t digest_of(const core::Network& net) {
  sim::Fingerprint fp;
  net.fingerprint(fp);
  return fp.digest();
}

TEST(RunRecipe, CheckpointRoundTripPreservesRecipe) {
  const auto recipe = make_recipe("gray:links=4,loss=0.05,start-ms=1");
  const auto net = replay(recipe, 1, sim::Time::ms(3));
  const auto data = exp::make_run_checkpoint(recipe, *net);
  const auto parsed =
      sim::parse_checkpoint(sim::write_checkpoint_text(data), "recipe");
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  exp::RunRecipe restored;
  sim::Time resume_time;
  std::uint64_t resume_digest = 0;
  ASSERT_EQ(exp::recipe_from_checkpoint(parsed.data, &restored, &resume_time,
                                        &resume_digest),
            "");
  EXPECT_EQ(restored.run_label, recipe.run_label);
  EXPECT_EQ(restored.fabric_label, recipe.fabric_label);
  EXPECT_EQ(restored.load_pct, recipe.load_pct);
  EXPECT_EQ(restored.scenario, recipe.scenario);
  EXPECT_EQ(restored.horizon, recipe.horizon);
  ASSERT_EQ(restored.flows.size(), recipe.flows.size());
  for (std::size_t i = 0; i < recipe.flows.size(); ++i) {
    EXPECT_EQ(restored.flows[i].src_host, recipe.flows[i].src_host);
    EXPECT_EQ(restored.flows[i].dst_host, recipe.flows[i].dst_host);
    EXPECT_EQ(restored.flows[i].size_bytes, recipe.flows[i].size_bytes);
    EXPECT_EQ(restored.flows[i].start, recipe.flows[i].start);
  }
  EXPECT_EQ(resume_time, sim::Time::ms(3));
  EXPECT_EQ(resume_digest, digest_of(*net));
}

TEST(RunRecipe, MissingStateKeysRejected) {
  const auto recipe = make_recipe("");
  const auto net = replay(recipe, 1, sim::Time::ms(1));
  auto data = exp::make_run_checkpoint(recipe, *net);
  std::erase_if(data.state, [](const sim::CheckpointEntry& e) {
    return e.key == "fingerprint";
  });
  exp::RunRecipe restored;
  sim::Time resume_time;
  std::uint64_t resume_digest = 0;
  const auto err = exp::recipe_from_checkpoint(data, &restored, &resume_time,
                                               &resume_digest);
  EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
}

struct ReplayCase {
  const char* name;
  const char* scenario;
  // Snapshot times, chosen to land mid-scenario (storm waves roll 1 ms,
  // 3 ms, ...; gray injection spans 0-15 ms; skew from 2 ms).
  sim::Time mid;
};

class CheckpointReplay : public ::testing::TestWithParam<ReplayCase> {};

TEST_P(CheckpointReplay, BitIdenticalAcrossThreadCounts) {
  const auto& p = GetParam();
  const auto recipe = make_recipe(p.scenario);

  // Reference: uninterrupted single-shard run. Snapshot state at p.mid,
  // then continue the same network to the horizon.
  const auto ref = replay(recipe, 1, p.mid);
  const std::uint64_t mid_digest = digest_of(*ref);
  const auto data = exp::make_run_checkpoint(recipe, *ref);
  ref->run_until(recipe.horizon);
  const std::uint64_t final_digest = digest_of(*ref);
  const auto& ref_completions = ref->tracker().completions();
  ASSERT_GT(ref_completions.size(), 0u) << "sweep too short to mean anything";

  // Restore from the serialized checkpoint at several shard counts.
  const auto parsed =
      sim::parse_checkpoint(sim::write_checkpoint_text(data), p.name);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  exp::RunRecipe restored;
  sim::Time resume_time;
  std::uint64_t resume_digest = 0;
  ASSERT_EQ(exp::recipe_from_checkpoint(parsed.data, &restored, &resume_time,
                                        &resume_digest),
            "");
  EXPECT_EQ(resume_digest, mid_digest);

  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    auto net = replay(restored, threads, resume_time);
    // The restore contract: the replayed fabric's multi-layer fingerprint
    // matches the checkpoint exactly at the snapshot time...
    EXPECT_EQ(digest_of(*net), resume_digest);
    // ...and continuing to the horizon is bit-identical to the
    // uninterrupted run: completions, event count, TorStats, digest.
    net->run_until(restored.horizon);
    EXPECT_EQ(digest_of(*net), final_digest);
    EXPECT_EQ(net->events_executed(), ref->events_executed());
    const auto& completions = net->tracker().completions();
    ASSERT_EQ(completions.size(), ref_completions.size());
    for (std::size_t i = 0; i < completions.size(); ++i) {
      EXPECT_EQ(completions[i].flow.id, ref_completions[i].flow.id);
      EXPECT_EQ(completions[i].end, ref_completions[i].end);
    }
    const auto* ref_opera = dynamic_cast<const core::OperaNetwork*>(ref.get());
    const auto* opera_net = dynamic_cast<const core::OperaNetwork*>(net.get());
    ASSERT_NE(ref_opera, nullptr);
    ASSERT_NE(opera_net, nullptr);
    const auto ref_stats = ref_opera->tor_stats();
    const auto stats = opera_net->tor_stats();
    EXPECT_EQ(stats.drops, ref_stats.drops);
    EXPECT_EQ(stats.trims, ref_stats.trims);
    EXPECT_EQ(stats.forward_drops, ref_stats.forward_drops);
    EXPECT_EQ(stats.wire_drops, ref_stats.wire_drops);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Epochs, CheckpointReplay,
    ::testing::Values(
        ReplayCase{"plain", "", sim::Time::ms(4)},
        ReplayCase{"mid_storm",
                   "storm-rolling:switches=2,start-ms=1,period-ms=2,recover-ms=5",
                   sim::Time::ms(2)},
        ReplayCase{"mid_gray",
                   "gray:links=6,loss=0.05,extra-us=20,start-ms=0,recover-ms=15",
                   sim::Time::ms(3)},
        ReplayCase{"storm_and_gray_and_skew",
                   "storm-rolling:switches=2,start-ms=1,period-ms=2,recover-ms=5;"
                   "gray:links=6,loss=0.05,extra-us=20,start-ms=0,recover-ms=15;"
                   "skew:switch=3,extra-us=40,slices=30,start-ms=2",
                   sim::Time::ms(6)}),
    [](const ::testing::TestParamInfo<ReplayCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace opera

// Parity and interface tests for core::Network / core::FabricConfig /
// core::NetworkFactory: every fabric built through the factory must be
// bit-identical (same FCTs on a fixed seed/workload) to one constructed
// directly from its per-fabric config.
#include "core/fabric.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "workload/synthetic.h"

namespace opera::core {
namespace {

struct TestFlow {
  std::int32_t src;
  std::int32_t dst;
  std::int64_t bytes;
  sim::Time start;
};

std::vector<TestFlow> fixed_workload(std::int32_t num_hosts, int count,
                                     std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<TestFlow> flows;
  for (int i = 0; i < count; ++i) {
    const auto src = static_cast<std::int32_t>(rng.index(num_hosts));
    auto dst = static_cast<std::int32_t>(rng.index(num_hosts));
    if (dst == src) dst = (dst + 1) % num_hosts;
    flows.push_back({src, dst,
                     5'000 + static_cast<std::int64_t>(rng.index(60'000)),
                     sim::Time::us(static_cast<std::int64_t>(rng.index(2'000)))});
  }
  return flows;
}

// Runs the same fixed workload on both networks and asserts identical
// completion records (ids, sizes, and exact FCTs).
void expect_identical_fcts(Network& a, Network& b) {
  ASSERT_EQ(a.num_hosts(), b.num_hosts());
  const auto flows = fixed_workload(a.num_hosts(), 40, 99);
  for (const auto& f : flows) {
    a.submit_flow(f.src, f.dst, f.bytes, f.start);
    b.submit_flow(f.src, f.dst, f.bytes, f.start);
  }
  a.run_until(sim::Time::ms(30));
  b.run_until(sim::Time::ms(30));
  ASSERT_GT(a.tracker().completed(), 0u);
  ASSERT_EQ(a.tracker().completed(), b.tracker().completed());
  const auto& ca = a.tracker().completions();
  const auto& cb = b.tracker().completions();
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].flow.id, cb[i].flow.id);
    EXPECT_EQ(ca[i].flow.size_bytes, cb[i].flow.size_bytes);
    EXPECT_EQ(ca[i].fct().to_us(), cb[i].fct().to_us());
  }
}

FabricConfig small_fabric(FabricKind kind) {
  auto cfg = FabricConfig::make(kind);
  cfg.opera.num_racks = 8;
  cfg.opera.num_switches = 4;
  cfg.opera.hosts_per_rack = 2;
  cfg.opera.seed = 7;
  cfg.clos.radix = 8;
  cfg.clos.oversubscription = 3;
  cfg.clos.num_pods = 2;
  cfg.expander.num_tors = 10;
  cfg.expander.uplinks = 4;
  cfg.expander.hosts_per_tor = 3;
  cfg.expander.seed = 7;
  cfg.rotornet.num_racks = 8;
  cfg.rotornet.num_switches = 4;
  cfg.rotornet.seed = 7;
  cfg.rotornet_hosts_per_rack = 2;
  return cfg;
}

TEST(NetworkFactory, OperaParity) {
  const auto cfg = small_fabric(FabricKind::kOpera);
  OperaNetwork direct(cfg.opera_config());
  const auto built = NetworkFactory::build(cfg);
  expect_identical_fcts(direct, *built);
}

TEST(NetworkFactory, ClosParity) {
  const auto cfg = small_fabric(FabricKind::kFoldedClos);
  ClosNetwork direct(cfg.clos_config());
  const auto built = NetworkFactory::build(cfg);
  expect_identical_fcts(direct, *built);
}

TEST(NetworkFactory, ExpanderParity) {
  const auto cfg = small_fabric(FabricKind::kExpander);
  ExpanderNetwork direct(cfg.expander_config());
  const auto built = NetworkFactory::build(cfg);
  expect_identical_fcts(direct, *built);
}

TEST(NetworkFactory, RotorNetParity) {
  const auto cfg = small_fabric(FabricKind::kRotorNet);
  RotorNetNetwork direct(cfg.rotornet_config());
  const auto built = NetworkFactory::build(cfg);
  expect_identical_fcts(direct, *built);
}

TEST(NetworkFactory, BuildsEveryKindWithMatchingCounts) {
  for (const auto kind : {FabricKind::kOpera, FabricKind::kFoldedClos,
                          FabricKind::kExpander, FabricKind::kRotorNet}) {
    const auto cfg = small_fabric(kind);
    const auto net = NetworkFactory::build(cfg);
    ASSERT_NE(net, nullptr);
    EXPECT_EQ(net->num_hosts(), cfg.num_hosts()) << fabric_kind_name(kind);
    EXPECT_EQ(net->num_racks(), cfg.num_racks()) << fabric_kind_name(kind);
    EXPECT_FALSE(net->describe().empty());
    EXPECT_EQ(net->rack_of_host(net->num_hosts() - 1), net->num_racks() - 1);
  }
}

TEST(NetworkFactory, KindNamesRoundTrip) {
  for (const auto kind : {FabricKind::kOpera, FabricKind::kFoldedClos,
                          FabricKind::kExpander, FabricKind::kRotorNet}) {
    const auto parsed = parse_fabric_kind(fabric_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_fabric_kind("torus").has_value());
}

TEST(FabricConfig, ScaleCoversRequestedHosts) {
  for (const auto kind : {FabricKind::kOpera, FabricKind::kFoldedClos,
                          FabricKind::kExpander, FabricKind::kRotorNet}) {
    auto cfg = FabricConfig::make(kind);
    cfg.scale(16, 4);
    EXPECT_GE(cfg.num_hosts(), 16 * 4 * 9 / 10) << fabric_kind_name(kind);
    // The scaled config must actually build.
    const auto net = NetworkFactory::build(cfg);
    EXPECT_EQ(net->num_hosts(), cfg.num_hosts());
  }
}

TEST(RemapHostPair, WrapsAndAvoidsSelfLoops) {
  // In-range distinct pair: identity.
  EXPECT_EQ(remap_host_pair(3, 7, 10), (std::pair<std::int32_t, std::int32_t>{3, 7}));
  // Out-of-range ids wrap modulo num_hosts.
  EXPECT_EQ(remap_host_pair(13, 27, 10),
            (std::pair<std::int32_t, std::int32_t>{3, 7}));
  // Collision after wrapping bumps the destination.
  EXPECT_EQ(remap_host_pair(3, 13, 10), (std::pair<std::int32_t, std::int32_t>{3, 4}));
  // Bump wraps at the top of the range.
  EXPECT_EQ(remap_host_pair(9, 19, 10), (std::pair<std::int32_t, std::int32_t>{9, 0}));
}

TEST(Network, SubmitRemappedKeepsPairsDistinct) {
  const auto cfg = small_fabric(FabricKind::kFoldedClos);
  const auto net = NetworkFactory::build(cfg);
  // Workload generated for a larger host count than this fabric has.
  const auto flows = fixed_workload(3 * net->num_hosts(), 30, 5);
  for (const auto& f : flows) {
    net->submit_remapped(f.src, f.dst, f.bytes, f.start);
  }
  net->run_until(sim::Time::ms(30));
  EXPECT_EQ(net->tracker().completed(), 30u);
  for (const auto& rec : net->tracker().completions()) {
    EXPECT_NE(rec.flow.src_host, rec.flow.dst_host);
    EXPECT_LT(rec.flow.src_host, net->num_hosts());
    EXPECT_LT(rec.flow.dst_host, net->num_hosts());
  }
}

TEST(Network, RunToCompletionStopsEarlyWithIdenticalFcts) {
  const auto cfg = small_fabric(FabricKind::kOpera);
  const auto horizon = sim::Time::ms(200);

  const auto early = NetworkFactory::build(cfg);
  const auto late = NetworkFactory::build(cfg);
  const auto flows = fixed_workload(early->num_hosts(), 20, 11);
  for (const auto& f : flows) {
    early->submit_flow(f.src, f.dst, f.bytes, f.start);
    late->submit_flow(f.src, f.dst, f.bytes, f.start);
  }
  const auto status = early->run_to_completion(horizon);
  late->run_until(horizon);

  ASSERT_EQ(late->tracker().completed(), flows.size());
  EXPECT_TRUE(status.stopped_early);
  EXPECT_LT(status.ended_at, horizon);
  ASSERT_EQ(early->tracker().completed(), late->tracker().completed());
  const auto& ce = early->tracker().completions();
  const auto& cl = late->tracker().completions();
  for (std::size_t i = 0; i < ce.size(); ++i) {
    EXPECT_EQ(ce[i].fct().to_us(), cl[i].fct().to_us());
  }
}

TEST(Network, RunWithProgressHookObservesAndStops) {
  const auto cfg = small_fabric(FabricKind::kOpera);
  const auto net = NetworkFactory::build(cfg);
  net->submit_flow(0, 9, 1'000'000'000, sim::Time::zero());  // never finishes
  int calls = 0;
  const auto status = net->run_with_progress(
      sim::Time::ms(100), sim::Time::ms(1), [&calls](Network&) {
        return ++calls >= 5;  // stop on the fifth poll
      });
  EXPECT_EQ(calls, 5);
  EXPECT_TRUE(status.stopped_early);
  EXPECT_LT(status.ended_at, sim::Time::ms(100));
  // A later plain run resumes cleanly past the cancelled poll event.
  net->run_until(sim::Time::ms(6));
  EXPECT_EQ(net->sim().now(), sim::Time::ms(6));
}

}  // namespace
}  // namespace opera::core

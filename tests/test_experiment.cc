// Smoke tests for the exp:: experiment driver, testbeds, and structured
// output.
#include "exp/experiment.h"

#include <gtest/gtest.h>

#include "exp/output.h"
#include "exp/testbed.h"
#include "workload/flow_size_dist.h"

namespace opera::exp {
namespace {

char kProg[] = "test";
char kCsv[] = "--csv";
char kJson[] = "--json";
char kFull[] = "--full";

Experiment quiet_experiment(const char* name) {
  // JSON mode buffers everything, keeping gtest output clean; the report
  // is flushed (and discarded) when the Experiment goes out of scope.
  static char* argv[] = {kProg, kJson};
  return Experiment(name, 2, argv);
}

TEST(CliOptions, ParsesFlags) {
  char* argv[] = {kProg, kFull, kCsv};
  const auto opts = CliOptions::parse(3, argv);
  EXPECT_TRUE(opts.full);
  EXPECT_EQ(opts.format, OutputFormat::kCsv);
  char* argv2[] = {kProg, kJson};
  EXPECT_EQ(CliOptions::parse(2, argv2).format, OutputFormat::kJson);
  EXPECT_FALSE(CliOptions::parse(2, argv2).full);
}

TEST(Value, Renderings) {
  EXPECT_EQ(Value(3.14159, 2).text(), "3.14");
  EXPECT_EQ(Value(static_cast<std::int64_t>(42)).text(), "42");
  EXPECT_EQ(Value("plain").csv(), "plain");
  EXPECT_EQ(Value("a,b").csv(), "\"a,b\"");
  EXPECT_EQ(Value("say \"hi\"").json(), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(Value(1.5, 1).json(), "1.5");
}

TEST(Testbed, QuickAndPaperScales) {
  const auto quick = Testbed::quick();
  EXPECT_EQ(quick.num_hosts(), 64);
  EXPECT_EQ(quick.opera().num_hosts(), 64);
  EXPECT_EQ(quick.clos().num_hosts(), 96);
  EXPECT_EQ(quick.expander().num_hosts(), 60);
  EXPECT_EQ(quick.rotornet(false).num_hosts(), 64);
  // Hybrid RotorNet spends one extra uplink on the packet core.
  EXPECT_EQ(quick.rotornet(true).rotornet.num_switches, quick.switches + 1);

  const auto paper = Testbed::paper();
  EXPECT_EQ(paper.num_hosts(), 648);
  EXPECT_EQ(paper.clos().num_hosts(), 648);
  EXPECT_EQ(paper.expander().num_hosts(), 650);
  EXPECT_EQ(Testbed::select(false).num_hosts(), 64);
  EXPECT_EQ(Testbed::select(true).num_hosts(), 648);
}

// One driver smoke test per fabric: submit a small poisson workload, run,
// and expect completions plus populated FCT rows.
class DriverSmoke : public ::testing::TestWithParam<core::FabricKind> {};

TEST_P(DriverSmoke, RunsAndEmitsFctRows) {
  auto ex = quiet_experiment("driver smoke");
  auto tb = Testbed::quick();
  tb.racks = 8;
  tb.hosts_per_rack = 2;
  tb.clos_pods = 2;
  tb.expander_tors = 10;
  tb.expander_uplinks = 4;

  const auto dist = workload::FlowSizeDistribution::websearch();
  sim::Rng rng(123);
  const auto flows = workload::poisson_workload(dist, tb.num_hosts(), 0.05, 10e9,
                                                sim::Time::ms(5), rng);
  ASSERT_FALSE(flows.empty());

  Experiment::RunOptions opts;
  opts.horizon = sim::Time::ms(40);
  const auto result =
      ex.run(core::fabric_kind_name(GetParam()), tb.fabric(GetParam()), flows, opts);
  EXPECT_EQ(result.submitted, flows.size());
  EXPECT_GT(result.net->tracker().completed(), 0u);

  ex.emit_fct_rows(result.label, 5.0, *result.net);
  const auto& table = ex.report().table("fct", {});
  EXPECT_EQ(table.rows().size(), fct_buckets().size());
}

INSTANTIATE_TEST_SUITE_P(AllFabrics, DriverSmoke,
                         ::testing::Values(core::FabricKind::kOpera,
                                           core::FabricKind::kFoldedClos,
                                           core::FabricKind::kExpander,
                                           core::FabricKind::kRotorNet));

TEST(Experiment, FctSweepCoversFabricsByLoad) {
  auto ex = quiet_experiment("sweep smoke");
  auto tb = Testbed::quick();
  tb.racks = 8;
  tb.hosts_per_rack = 2;

  Experiment::FctSweep sweep;
  sweep.fabrics = {{"Opera", tb.opera(), {}}};
  sweep.loads = {0.02, 0.05};
  sweep.horizon = sim::Time::ms(20);
  sweep.make_flows = [&tb](double load) {
    sim::Rng rng(7);
    return workload::poisson_workload(workload::FlowSizeDistribution::websearch(),
                                      tb.num_hosts(), load, 10e9, sim::Time::ms(5),
                                      rng);
  };
  ex.run_fct_sweep(sweep);
  const auto& table = ex.report().table("fct", {});
  // One bucket set per (load, fabric) pair.
  EXPECT_EQ(table.rows().size(), 2 * fct_buckets().size());
}

TEST(Experiment, RemapMatchesLegacyInlineIdiom) {
  auto ex = quiet_experiment("remap parity");
  const auto tb = Testbed::quick();

  sim::Rng rng(31337);
  const auto flows = workload::poisson_workload(
      workload::FlowSizeDistribution::websearch(), tb.num_hosts(), 0.05, 10e9,
      sim::Time::ms(10), rng);

  // Driver path: remap on submission (default).
  Experiment::RunOptions opts;
  opts.horizon = sim::Time::ms(30);
  const auto result = ex.run("Clos3:1", tb.clos(), flows, opts);

  // Legacy path: the `% hosts` / bump-on-collision idiom the bench
  // binaries used to hand-roll inline.
  const auto legacy = core::NetworkFactory::build(tb.clos());
  const int hosts = legacy->num_hosts();
  for (const auto& f : flows) {
    const auto src = f.src_host % hosts;
    auto dst = f.dst_host % hosts;
    if (dst == src) dst = (dst + 1) % hosts;
    legacy->submit_flow(src, dst, f.size_bytes, f.start);
  }
  legacy->run_until(sim::Time::ms(30));

  ASSERT_EQ(result.net->tracker().completed(), legacy->tracker().completed());
  const auto& ca = result.net->tracker().completions();
  const auto& cb = legacy->tracker().completions();
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].flow.src_host, cb[i].flow.src_host);
    EXPECT_EQ(ca[i].flow.dst_host, cb[i].flow.dst_host);
    EXPECT_EQ(ca[i].fct().to_us(), cb[i].fct().to_us());
  }
}

}  // namespace
}  // namespace opera::exp

// fluid::HybridNetwork classification goldens and merge regressions.
//
// The hybrid engine's two contracts: (1) the classifier's packet-vs-fluid
// assignment for a given workload is exact and pinned — a silent
// classifier change would quietly shift work between engines and change
// results while every other test stays green; (2) the master completion
// stream is merged (time, flow id)-canonically across both engines with
// no duplicates and no drops, so FCT buckets and Report tables cannot
// tell a hybrid run from a single-engine one.
#include "fluid/hybrid_network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/fabric.h"
#include "exp/scenario.h"
#include "fluid/fluid_network.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "workload/synthetic.h"

namespace opera {
namespace {

// Small hybrid testbed. The 1 MB threshold (vs the paper's 15 MB) makes
// the goldens exercise both sides of the classifier at test-scale flow
// sizes: incast responses (64 KB) go packet, storage objects (4 MB) go
// fluid, ditl mixes.
core::FabricConfig hybrid_config() {
  auto config = core::FabricConfig::make(core::FabricKind::kOpera).scale(16, 4);
  config.engine = core::EngineKind::kHybrid;
  config.bulk_threshold_bytes = 1'000'000;
  return config;
}

// Compact golden form: one char per flow in submission order.
std::string assignment_string(const fluid::HybridNetwork& net) {
  std::string s;
  s.reserve(net.assignments().size());
  for (const auto engine : net.assignments()) {
    s.push_back(engine == fluid::HybridNetwork::Engine::kFluid ? 'F' : 'P');
  }
  return s;
}

std::vector<workload::FlowSpec> ditl_flows(const core::FabricConfig& config) {
  exp::ScenarioSpec spec;
  spec.kind = exp::ScenarioKind::kDitl;
  spec.phase_ms = 1.0;
  spec.load = 0.2;
  std::string error;
  auto flows = exp::scenario_flows(spec, config, &error);
  EXPECT_EQ(error, "");
  return flows;
}

TEST(HybridClassification, DitlGolden) {
  const auto config = hybrid_config();
  fluid::HybridNetwork net(config);
  const auto flows = ditl_flows(config);
  ASSERT_GT(flows.size(), 50u);
  std::size_t fluid_count = 0;
  for (const auto& f : flows) {
    net.submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start);
    if (f.size_bytes >= config.bulk_threshold_bytes) ++fluid_count;
  }
  const auto s = assignment_string(net);
  ASSERT_EQ(s.size(), flows.size());
  // Exact per-flow agreement with the size rule...
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(s[i] == 'F', flows[i].size_bytes >= config.bulk_threshold_bytes)
        << "flow " << i;
  }
  // ...and the pinned golden shape: the mix must contain both engines,
  // with the split exactly the size rule's count.
  EXPECT_EQ(static_cast<std::size_t>(std::count(s.begin(), s.end(), 'F')),
            fluid_count);
  EXPECT_GT(fluid_count, 0u);
  EXPECT_LT(fluid_count, flows.size());
}

TEST(HybridClassification, IncastAllPacket) {
  const auto config = hybrid_config();
  fluid::HybridNetwork net(config);
  sim::Rng rng(5);
  workload::IncastParams params;  // 64 KB responses << 1 MB threshold
  const auto flows = workload::incast_workload(
      net.num_hosts(), config.opera.hosts_per_rack, params, rng);
  ASSERT_GT(flows.size(), 0u);
  for (const auto& f : flows) {
    net.submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
  EXPECT_EQ(assignment_string(net), std::string(flows.size(), 'P'));
}

TEST(HybridClassification, StorageAllFluid) {
  const auto config = hybrid_config();
  fluid::HybridNetwork net(config);
  sim::Rng rng(5);
  workload::StorageReplicationParams params;  // 4 MB objects > 1 MB threshold
  const auto flows = workload::storage_replication_workload(
      net.num_hosts(), config.opera.hosts_per_rack, params, rng);
  ASSERT_GT(flows.size(), 0u);
  for (const auto& f : flows) {
    net.submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
  EXPECT_EQ(assignment_string(net), std::string(flows.size(), 'F'));
}

TEST(HybridClassification, ForcedTagOverridesSize) {
  const auto config = hybrid_config();
  fluid::HybridNetwork net(config);
  // A tiny flow tagged bulk goes fluid; a huge flow tagged low-latency
  // goes packet (the paper's application-based tagging, §3.4).
  net.submit_flow(0, 5, 10'000, sim::Time::us(1), net::TrafficClass::kBulk);
  net.submit_flow(0, 6, 50'000'000, sim::Time::us(1),
                  net::TrafficClass::kLowLatency);
  EXPECT_EQ(assignment_string(net), "FP");
}

// ---------------------------------------------------------------------------
// Canonical merge
// ---------------------------------------------------------------------------

TEST(HybridMerge, CompletionsCanonicalNoDupesNoDrops) {
  const auto config = hybrid_config();
  fluid::HybridNetwork net(config);
  const auto flows = ditl_flows(config);
  for (const auto& f : flows) {
    net.submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
  const auto status = net.run_to_completion(sim::Time::ms(200));
  EXPECT_TRUE(status.stopped_early);
  const auto& completions = net.tracker().completions();
  ASSERT_EQ(completions.size(), flows.size()) << "dropped completions";

  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < completions.size(); ++i) {
    const auto& rec = completions[i];
    EXPECT_TRUE(seen.insert(rec.flow.id).second)
        << "duplicate completion for flow " << rec.flow.id;
    if (i > 0) {
      const auto& prev = completions[i - 1];
      EXPECT_TRUE(prev.end < rec.end ||
                  (prev.end == rec.end && prev.flow.id < rec.flow.id))
          << "completion stream not (time, flow id)-sorted at index " << i;
    }
  }
  // Both engines actually completed flows in this run.
  std::size_t fluid_done = 0;
  for (const auto& rec : completions) {
    if (net.assignments()[rec.flow.id - 1] ==
        fluid::HybridNetwork::Engine::kFluid) {
      ++fluid_done;
    }
  }
  EXPECT_GT(fluid_done, 0u);
  EXPECT_LT(fluid_done, completions.size());
}

// The factory path (engine=hybrid) and repeated runs are bit-identical.
TEST(HybridMerge, DeterministicAcrossRuns) {
  fluid::register_fluid_engines();
  const auto run_digest = [] {
    const auto config = hybrid_config();
    auto net = core::NetworkFactory::build(config);
    const auto flows = ditl_flows(config);
    for (const auto& f : flows) {
      net->submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start);
    }
    net->run_to_completion(sim::Time::ms(200));
    sim::Fingerprint fp;
    net->fingerprint(fp);
    return fp.digest();
  };
  EXPECT_EQ(run_digest(), run_digest());
}

}  // namespace
}  // namespace opera

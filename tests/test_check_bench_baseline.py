"""Unit tests for the bench-baseline drift logic (compare_to_baseline) and
the result-format parsers it relies on.

Run directly (python3 tests/test_check_bench_baseline.py) or through
ctest, which registers it as `check_bench_baseline_py` when a Python
interpreter is found at configure time.
"""
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))
from check_bench_baseline import compare_to_baseline  # noqa: E402
from record_bench_baseline import (  # noqa: E402
    parse_csv_tables, parse_csv_threads, parse_timings)


def base_entry(wall_s=1.0, table_rows=None):
    return {"wall_s": wall_s, "table_rows": table_rows or {}}


class CompareToBaselineTest(unittest.TestCase):
    def test_clean_run_passes(self):
        baseline = {"bench_a": base_entry(1.0, {"fct": 5})}
        timings = {"bench_a": {"wall_s": 1.1, "status": "ok"}}
        csv_tables = {"bench_a": {"fct": 5}}
        failures, warnings, report = compare_to_baseline(
            baseline, timings, csv_tables, wall_ratio=1.25, wall_slack_s=0.5)
        self.assertEqual(failures, [])
        self.assertEqual(warnings, [])
        self.assertEqual(len(report), 1)
        self.assertIn("OK", report[0])

    def test_wall_regression_names_bench_with_old_and_new_times(self):
        baseline = {"bench_slow": base_entry(2.0), "bench_fine": base_entry(1.0)}
        timings = {"bench_slow": {"wall_s": 9.75, "status": "ok"},
                   "bench_fine": {"wall_s": 1.0, "status": "ok"}}
        failures, _, report = compare_to_baseline(
            baseline, timings, {}, wall_ratio=1.25, wall_slack_s=0.5)
        self.assertEqual(len(failures), 1)
        msg = failures[0]
        # The failure names the regressing bench and carries both times.
        self.assertIn("bench_slow", msg)
        self.assertIn("9.75s", msg)
        self.assertIn("2.00s", msg)
        self.assertIn("4.88x", msg)
        self.assertNotIn("bench_fine", msg)
        self.assertTrue(any("bench_slow" in r and "FAIL" in r for r in report))
        self.assertTrue(any("bench_fine" in r and "OK" in r for r in report))

    def test_wall_budget_is_ratio_plus_slack(self):
        baseline = {"bench_a": base_entry(1.0)}
        inside = {"bench_a": {"wall_s": 1.74, "status": "ok"}}
        outside = {"bench_a": {"wall_s": 1.76, "status": "ok"}}
        self.assertEqual(
            compare_to_baseline(baseline, inside, {}, 1.25, 0.5)[0], [])
        self.assertEqual(
            len(compare_to_baseline(baseline, outside, {}, 1.25, 0.5)[0]), 1)

    def test_table_row_drift_reports_each_drifted_table(self):
        baseline = {"bench_a": base_entry(0.1, {"fct": 5, "run": 1})}
        timings = {"bench_a": {"wall_s": 0.1, "status": "ok"}}
        csv_tables = {"bench_a": {"fct": 7, "run": 1, "extra": 2}}
        failures, _, _ = compare_to_baseline(baseline, timings, csv_tables)
        self.assertEqual(len(failures), 1)
        self.assertIn("bench_a", failures[0])
        self.assertIn("fct: 5 -> 7", failures[0])
        self.assertIn("extra: absent -> 2", failures[0])
        self.assertNotIn("run", failures[0])

    def test_missing_bench_and_missing_csv_fail(self):
        baseline = {"bench_gone": base_entry(0.2),
                    "bench_no_csv": base_entry(0.2, {"fct": 5})}
        timings = {"bench_no_csv": {"wall_s": 0.2, "status": "ok"}}
        failures, _, _ = compare_to_baseline(baseline, timings, {})
        self.assertEqual(len(failures), 2)
        self.assertTrue(any("bench_gone" in f and "missing" in f for f in failures))
        self.assertTrue(any("bench_no_csv" in f and "no CSV" in f for f in failures))

    def test_untracked_bench_warns_not_fails(self):
        baseline = {"bench_a": base_entry(0.1)}
        timings = {"bench_a": {"wall_s": 0.1, "status": "ok"},
                   "bench_new": {"wall_s": 0.3, "status": "ok"}}
        failures, warnings, _ = compare_to_baseline(baseline, timings, {})
        self.assertEqual(failures, [])
        self.assertEqual(len(warnings), 1)
        self.assertIn("bench_new", warnings[0])

    def test_full_baseline_cross_checks_quick_table_shape(self):
        baseline = {"bench_scale": base_entry(2.0, {"run": 3, "fct": 15})}
        timings = {"bench_scale": {"wall_s": 2.1, "status": "ok"}}
        full = {"bench_scale": {"wall_s": 175.0, "table_rows": {"run": 3, "fct": 15}}}
        ok = compare_to_baseline(baseline, timings,
                                 {"bench_scale": {"run": 3, "fct": 15}},
                                 full_baseline=full)
        self.assertEqual(ok[0], [])
        bad = compare_to_baseline(baseline, timings,
                                  {"bench_scale": {"run": 3, "fct": 10}},
                                  full_baseline=full)
        # Both the quick fingerprint and the full cross-check fire.
        self.assertEqual(len(bad[0]), 2)
        self.assertTrue(any("paper-scale" in f for f in bad[0]))

    def test_full_baseline_is_not_wall_gated(self):
        # Full entries carry a paper-scale wall time; the quick run must
        # never be compared against it (or regressions hide under a huge
        # budget and fast runs look like nothing happened).
        full = {"bench_scale": {"wall_s": 175.0, "table_rows": {}}}
        failures, _, report = compare_to_baseline(
            {}, {"bench_scale": {"wall_s": 400.0, "status": "ok"}}, {},
            full_baseline=full)
        self.assertEqual(failures, [])
        self.assertEqual(report, [])

    def test_threads_mismatch_warns_but_never_fails(self):
        # Wall baselines are only comparable at equal shard counts; a
        # changed --threads warns (re-anchor the baseline) and SKIPs the
        # wall gate — even a wall far outside the budget must not fail,
        # and old baselines without a threads key default to 1.
        baseline = {"bench_a": base_entry(1.0, {"fct": 5})}
        timings = {"bench_a": {"wall_s": 9.0, "status": "ok"}}  # 9x the baseline
        csv_tables = {"bench_a": {"fct": 5}}
        failures, warnings, report = compare_to_baseline(
            baseline, timings, csv_tables, 1.25, 0.5,
            csv_threads={"bench_a": 4})
        self.assertEqual(failures, [])
        self.assertEqual(len(warnings), 1)
        self.assertIn("threads=4", warnings[0])
        self.assertIn("threads=1", warnings[0])
        self.assertTrue(any("t=4" in r and "SKIP" in r for r in report))

    def test_threads_column_absent_on_old_csvs_is_clean(self):
        # Old CSVs (no `# threads=` note) → no csv_threads entry → treated
        # as 1, matching old baselines: no warning, no drift.
        baseline = {"bench_a": base_entry(1.0, {"fct": 5})}
        timings = {"bench_a": {"wall_s": 1.0, "status": "ok"}}
        failures, warnings, _ = compare_to_baseline(
            baseline, timings, {"bench_a": {"fct": 5}}, 1.25, 0.5)
        self.assertEqual(failures, [])
        self.assertEqual(warnings, [])

    def test_matching_recorded_threads_is_clean(self):
        baseline = {"bench_a": dict(base_entry(1.0, {"fct": 5}), threads=2)}
        timings = {"bench_a": {"wall_s": 1.0, "status": "ok"}}
        failures, warnings, _ = compare_to_baseline(
            baseline, timings, {"bench_a": {"fct": 5}}, 1.25, 0.5,
            csv_threads={"bench_a": 2})
        self.assertEqual(failures, [])
        self.assertEqual(warnings, [])

    def test_scenarios_table_shape_is_fingerprinted(self):
        # The bench_scale_sweep scenarios leg (ditl / ditl_gray /
        # adv_perm_storm) records a 3-row table in both the quick and
        # --full sections; a dropped scenario row — or losing the table
        # entirely — must fail both the quick fingerprint and the
        # paper-scale cross-check.
        shape = {"run": 3, "fct": 15, "slice_cache": 3, "scenarios": 3,
                 "scale_probe": 1, "memory": 1}
        baseline = {"bench_scale_sweep": base_entry(8.0, dict(shape))}
        full = {"bench_scale_sweep": {"wall_s": 600.0,
                                      "table_rows": dict(shape)}}
        timings = {"bench_scale_sweep": {"wall_s": 8.0, "status": "ok"}}
        ok = compare_to_baseline(baseline, timings,
                                 {"bench_scale_sweep": dict(shape)},
                                 full_baseline=full)
        self.assertEqual(ok[0], [])
        dropped_row = dict(shape, scenarios=2)
        bad = compare_to_baseline(baseline, timings,
                                  {"bench_scale_sweep": dropped_row},
                                  full_baseline=full)
        self.assertEqual(len(bad[0]), 2)
        self.assertTrue(any("scenarios: 3 -> 2" in f for f in bad[0]))
        dropped_table = {k: v for k, v in shape.items() if k != "scenarios"}
        bad2 = compare_to_baseline(baseline, timings,
                                   {"bench_scale_sweep": dropped_table},
                                   full_baseline=full)
        self.assertTrue(any("scenarios: 3 -> absent" in f for f in bad2[0]))

    def test_text_only_bench_is_wall_gated_only(self):
        # bench_micro_core records no table fingerprint: absent CSV is fine.
        baseline = {"bench_micro_core": base_entry(3.0, {})}
        timings = {"bench_micro_core": {"wall_s": 3.1, "status": "ok"}}
        failures, _, _ = compare_to_baseline(baseline, timings, {})
        self.assertEqual(failures, [])


class ParserTest(unittest.TestCase):
    def test_parse_csv_tables_counts_data_rows_per_table(self):
        with tempfile.TemporaryDirectory() as d:
            p = pathlib.Path(d) / "bench_x.csv"
            p.write_text("# bench: x\n"
                         "table,fct\n"
                         "fct,opera,10,...\n"
                         "fct,clos,10,...\n"
                         "run,poisson,5\n"
                         "\n")
            self.assertEqual(parse_csv_tables(p), {"fct": 2, "run": 1})

    def test_parse_csv_threads_reads_metadata_note(self):
        with tempfile.TemporaryDirectory() as d:
            p = pathlib.Path(d) / "bench_x.csv"
            p.write_text("# bench: x\n# threads=4\ntable,fct\nfct,opera,10\n")
            self.assertEqual(parse_csv_threads(p), 4)
            # The note is a comment: it must not count as a table row.
            self.assertEqual(parse_csv_tables(p), {"fct": 1})
            q = pathlib.Path(d) / "bench_old.csv"
            q.write_text("table,fct\nfct,opera,10\n")
            self.assertIsNone(parse_csv_threads(q))
            # Mixed sweeps (resolved count changed mid-artifact) emit one
            # note per change and summarize as the maximum.
            r = pathlib.Path(d) / "bench_mixed.csv"
            r.write_text("# threads=2\nfct,a,1\n# threads=4\n# threads=1\n")
            self.assertEqual(parse_csv_threads(r), 4)

    def test_parse_timings_reads_run_all_benches_format(self):
        with tempfile.TemporaryDirectory() as d:
            p = pathlib.Path(d) / "timings.txt"
            p.write_text(
                "bench_a                                      0.42 s  ok\n"
                "bench_b                                     12.00 s  FAILED (exit 1)\n")
            t = parse_timings(p)
            self.assertEqual(t["bench_a"], {"wall_s": 0.42, "status": "ok"})
            self.assertEqual(t["bench_b"]["status"], "FAILED (exit 1)")


if __name__ == "__main__":
    unittest.main()

#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace opera::sim {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.15);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(13);
  const auto p = rng.permutation(257);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(17);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 30u);  // distinct
  for (const auto v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(19);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(std::span<int>{v});
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace opera::sim

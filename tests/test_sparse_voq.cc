// SparseVoq unit tests: lazy slot materialization, open-addressing lookups
// across rehashes, longest-first tie-breaking parity with the old dense
// scan, and the memory probe.
#include "transport/sparse_voq.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/host.h"
#include "sim/ring.h"
#include "sim/simulator.h"
#include "transport/rotorlb.h"

namespace opera::transport {
namespace {

TEST(SparseVoq, EmptyLookupsAreFreeAndZero) {
  SparseVoq<sim::Ring<int>> voq;
  EXPECT_EQ(voq.bytes(0), 0);
  EXPECT_EQ(voq.bytes(767), 0);
  EXPECT_EQ(voq.total_bytes(), 0);
  EXPECT_EQ(voq.active_slots(), 0u);
  EXPECT_EQ(voq.find(5), nullptr);
}

TEST(SparseVoq, SlotsMaterializeOnFirstTouchInOrder) {
  SparseVoq<sim::Ring<int>> voq;
  voq.queue(700).push_back(1);
  voq.add_bytes(700, 10);
  voq.queue(3).push_back(2);
  voq.add_bytes(3, 20);
  voq.queue(700).push_back(3);  // existing slot, no new materialization
  EXPECT_EQ(voq.active_slots(), 2u);
  std::vector<std::int32_t> order;
  for (const auto& s : voq) order.push_back(s.rack);
  EXPECT_EQ(order, (std::vector<std::int32_t>{700, 3}));
  EXPECT_EQ(voq.bytes(700), 10);
  EXPECT_EQ(voq.bytes(3), 20);
  EXPECT_EQ(voq.total_bytes(), 30);
}

TEST(SparseVoq, SurvivesRehashAtScale) {
  // k=32-scale rack ids: hundreds of destinations force several rehashes;
  // every queue must stay reachable and byte-exact.
  SparseVoq<sim::Ring<int>> voq;
  for (int r = 0; r < 768; r += 3) {
    voq.queue(r).push_back(r);
    voq.add_bytes(r, r + 1);
  }
  for (int r = 0; r < 768; ++r) {
    if (r % 3 == 0) {
      ASSERT_NE(voq.find(r), nullptr) << r;
      EXPECT_EQ(voq.bytes(r), r + 1);
      EXPECT_EQ(voq.find(r)->queue.front(), r);
    } else {
      EXPECT_EQ(voq.find(r), nullptr) << r;
    }
  }
  EXPECT_EQ(voq.active_slots(), 256u);
  EXPECT_GT(voq.memory_bytes(), 0u);
}

TEST(SparseVoq, DrainedSlotsKeepCapacity) {
  SparseVoq<sim::Ring<int>> voq;
  auto& q = voq.queue(5);
  for (int i = 0; i < 100; ++i) q.push_back(i);
  const std::size_t grown = voq.memory_bytes();
  while (!q.empty()) (void)q.pop_front();
  EXPECT_EQ(voq.memory_bytes(), grown);  // ring capacity retained
  EXPECT_EQ(voq.active_slots(), 1u);
}

// The agent-level behaviors (grant budgets, NACK re-fronting) are covered
// by test_rotorlb_agent.cc, which now runs on the sparse container. These
// two pin the properties the swap had to preserve exactly.

class AgentHarness {
 public:
  AgentHarness() {
    net::PortQueue::Config q;
    q.bulk_capacity_bytes = 100'000'000;
    a = std::make_unique<net::Host>(sim, "a", 0, 0);
    b = std::make_unique<net::Host>(sim, "b", 1, 1);
    a->add_port(10e9, sim::Time::ns(500), q);
    b->add_port(10e9, sim::Time::ns(500), q);
    a->uplink().connect(b.get(), 0);
    b->uplink().connect(a.get(), 0);
    agent = std::make_unique<RotorLbAgent>(*a, tracker, /*num_racks=*/64);
  }

  void add_bulk(std::int64_t bytes, std::int32_t dst_rack) {
    Flow f;
    f.id = tracker.next_flow_id();
    f.src_host = 0;
    f.dst_host = 1;
    f.src_rack = 0;
    f.dst_rack = dst_rack;
    f.size_bytes = bytes;
    f.tclass = net::TrafficClass::kBulk;
    f.start = sim.now();
    tracker.register_flow(f);
    agent->add_flow(f);
  }

  sim::Simulator sim;
  FlowTracker tracker;
  std::unique_ptr<net::Host> a;
  std::unique_ptr<net::Host> b;
  std::unique_ptr<RotorLbAgent> agent;
};

TEST(SparseVoqAgent, VlbDrainsLongestFirstWithLowestRackTieBreak) {
  AgentHarness h;
  // Touch racks out of id order so the active list's first-touch order
  // differs from rack order — the tie-break must still pick the lowest id.
  h.add_bulk(50'000, 9);
  h.add_bulk(80'000, 7);
  h.add_bulk(80'000, 3);  // ties rack 7 byte-for-byte, lower id
  std::vector<std::int64_t> dst_budget(64, 1'000'000);
  // One full VLB drain through relay rack 20 takes everything; the
  // longest-first order is observable through dst_budget consumption
  // order only when budget-limited, so grant in small steps.
  const std::int64_t step = 30'000;
  (void)h.agent->grant_vlb(20, step, std::span<std::int64_t>(dst_budget));
  // First step must come from rack 3 (longest tie, lowest id).
  EXPECT_LT(dst_budget[3], 1'000'000);
  EXPECT_EQ(dst_budget[7], 1'000'000);
  EXPECT_EQ(dst_budget[9], 1'000'000);
  h.sim.run();
}

TEST(SparseVoqAgent, MemoryProbeTracksActiveDestinations) {
  AgentHarness h;
  const std::size_t before = h.agent->memory_bytes();
  for (int r = 1; r <= 40; ++r) h.add_bulk(20'000, r);
  EXPECT_GT(h.agent->memory_bytes(), before);
  EXPECT_EQ(h.agent->queued_bytes(41), 0);
  h.sim.run();
}

TEST(SparseVoqRelay, StoreTakeAndProbe) {
  RotorRelayBuffer relay(/*num_racks=*/768);
  EXPECT_EQ(relay.memory_bytes(), 0u);  // nothing materialized up front
  for (int i = 0; i < 10; ++i) {
    auto pkt = net::make_packet();
    pkt->size_bytes = 1500;
    pkt->dst_rack = 500;
    pkt->vlb_relay = true;
    pkt->relay_rack = 2;
    relay.store(std::move(pkt));
  }
  EXPECT_EQ(relay.queued_bytes(500), 15'000);
  EXPECT_EQ(relay.total_bytes(), 15'000);
  EXPECT_GT(relay.memory_bytes(), 0u);
  auto out = relay.take(500, 4'500);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(relay.queued_bytes(500), 10'500);
  EXPECT_EQ(relay.take(499, 1'000'000).size(), 0u);
}

}  // namespace
}  // namespace opera::transport

#include "topo/graph.h"

#include <gtest/gtest.h>

namespace opera::topo {
namespace {

Graph ring(Vertex n) {
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

TEST(Graph, AddEdgeIsSymmetricAndSimple) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // duplicate ignored
  g.add_edge(2, 2);  // self-loop ignored
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Graph, BfsDistancesOnRing) {
  const Graph g = ring(8);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[4], 4);  // antipode
  EXPECT_EQ(d[7], 1);
}

TEST(Graph, BfsUnreachableIsMinusOne) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], kNoVertex);
  EXPECT_EQ(d[3], kNoVertex);
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(is_connected(ring(10)));
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_connected(g));
}

TEST(Graph, PathStatsOnRing) {
  const auto stats = all_pairs_path_stats(ring(6));
  // Ring of 6: distances 1,1,2,2,3 from each vertex; avg = 9/5.
  EXPECT_DOUBLE_EQ(stats.average, 1.8);
  EXPECT_EQ(stats.worst, 3);
  EXPECT_EQ(stats.connected_pairs, 30u);
  EXPECT_EQ(stats.disconnected_pairs, 0u);
  ASSERT_GE(stats.hop_histogram.size(), 4u);
  EXPECT_EQ(stats.hop_histogram[1], 12u);
  EXPECT_EQ(stats.hop_histogram[2], 12u);
  EXPECT_EQ(stats.hop_histogram[3], 6u);
}

TEST(Graph, PathStatsWithAliveMask) {
  Graph g = ring(6);
  std::vector<bool> alive(6, true);
  alive[3] = false;  // still connected the long way around
  const auto stats = all_pairs_path_stats(g, &alive);
  EXPECT_EQ(stats.disconnected_pairs, 0u);
  EXPECT_EQ(stats.connected_pairs, 20u);  // 5*4 ordered pairs
}

TEST(Graph, PathStatsCountsDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto stats = all_pairs_path_stats(g);
  EXPECT_EQ(stats.connected_pairs, 4u);
  EXPECT_EQ(stats.disconnected_pairs, 8u);
}

TEST(Graph, UnionWith) {
  Graph a(4);
  a.add_edge(0, 1);
  Graph b(4);
  b.add_edge(2, 3);
  b.add_edge(0, 1);
  const Graph u = a.union_with(b);
  EXPECT_EQ(u.num_edges(), 2u);
  EXPECT_TRUE(u.has_edge(0, 1));
  EXPECT_TRUE(u.has_edge(2, 3));
}

TEST(Graph, EcmpNextHopsOnGrid) {
  // 4-cycle: two equal-cost next hops from 0 to 2.
  const Graph g = ring(4);
  const auto table = all_pairs_ecmp_next_hops(g);
  const auto hops_02 = table.next_hops(0, 2);
  EXPECT_EQ(hops_02.size(), 2u);
  // Next hops toward adjacent vertex: just that vertex.
  const auto hops_01 = table.next_hops(0, 1);
  ASSERT_EQ(hops_01.size(), 1u);
  EXPECT_EQ(hops_01[0], 1);
}

TEST(Graph, EcmpNextHopsEmptyWhenDisconnected) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto table = all_pairs_ecmp_next_hops(g);
  EXPECT_TRUE(table.next_hops(0, 2).empty());
}

TEST(Graph, EcmpNextHopsAlwaysMakeProgress) {
  // Property: on a random-ish structured graph, every ECMP next hop
  // strictly decreases the BFS distance to the destination.
  Graph g(12);
  for (Vertex v = 0; v < 12; ++v) {
    g.add_edge(v, (v + 1) % 12);
    g.add_edge(v, (v + 4) % 12);
  }
  const auto table = all_pairs_ecmp_next_hops(g);
  for (Vertex dst = 0; dst < 12; ++dst) {
    const auto dist = bfs_distances(g, dst);
    for (Vertex src = 0; src < 12; ++src) {
      if (src == dst) continue;
      ASSERT_FALSE(table.next_hops(src, dst).empty());
      for (const Vertex nh : table.next_hops(src, dst)) {
        EXPECT_EQ(dist[static_cast<std::size_t>(nh)],
                  dist[static_cast<std::size_t>(src)] - 1);
      }
    }
  }
}

}  // namespace
}  // namespace opera::topo

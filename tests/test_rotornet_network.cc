#include "core/rotornet_network.h"

#include <gtest/gtest.h>

namespace opera::core {
namespace {

RotorNetConfig small_config(bool hybrid) {
  RotorNetConfig cfg;
  cfg.structure.num_racks = 16;
  cfg.structure.num_switches = hybrid ? 5 : 4;  // 4 rotors either way
  cfg.structure.hybrid = hybrid;
  cfg.structure.seed = 21;
  cfg.hosts_per_rack = 4;
  cfg.seed = 22;
  return cfg;
}

TEST(RotorNetNetwork, NonHybridBulkCompletes) {
  RotorNetNetwork net(small_config(false));
  net.submit_flow(0, 60, 5'000'000, sim::Time::zero());
  net.run_until(sim::Time::ms(60));
  ASSERT_EQ(net.tracker().completed(), 1u);
}

TEST(RotorNetNetwork, NonHybridShortFlowWaitsForCircuits) {
  // The all-optical RotorNet's key weakness (paper Fig. 7c): even a tiny
  // flow waits for a direct/VLB circuit, so FCT is on the slice/cycle
  // scale (hundreds of us), orders beyond Opera's expander path.
  RotorNetNetwork net(small_config(false));
  net.submit_flow(0, 60, 1'000, sim::Time::zero());
  net.run_until(sim::Time::ms(20));
  ASSERT_EQ(net.tracker().completed(), 1u);
  EXPECT_GT(net.tracker().completions()[0].fct().to_us(), 90.0);
}

TEST(RotorNetNetwork, HybridShortFlowFast) {
  RotorNetNetwork net(small_config(true));
  net.submit_flow(0, 60, 1'000, sim::Time::zero());
  net.run_until(sim::Time::ms(5));
  ASSERT_EQ(net.tracker().completed(), 1u);
  EXPECT_LT(net.tracker().completions()[0].fct().to_us(), 20.0);
}

TEST(RotorNetNetwork, HybridMixedTraffic) {
  RotorNetNetwork net(small_config(true));
  net.submit_flow(0, 60, 20'000'000, sim::Time::zero());  // bulk via rotors
  for (int i = 0; i < 10; ++i) {
    net.submit_flow(1, 61, 5'000, sim::Time::us(100 * i));  // NDP via core
  }
  net.run_until(sim::Time::ms(120));
  EXPECT_EQ(net.tracker().completed(), 11u);
  const auto small = net.tracker().fct_us(0, 1'000'000);
  EXPECT_LT(small.percentile(99), 100.0);
}

TEST(RotorNetNetwork, IntraRackIsImmediate) {
  RotorNetNetwork net(small_config(false));
  net.submit_flow(0, 1, 50'000, sim::Time::zero());
  net.run_until(sim::Time::ms(1));
  ASSERT_EQ(net.tracker().completed(), 1u);
  EXPECT_LT(net.tracker().completions()[0].fct().to_us(), 80.0);
}

TEST(RotorNetNetwork, UniformBulkLoadCompletes) {
  RotorNetNetwork net(small_config(false));
  // One 500 KB bulk flow from each rack to the next (ring pattern).
  for (int r = 0; r < 16; ++r) {
    net.submit_flow(r * 4, ((r + 1) % 16) * 4, 500'000, sim::Time::zero());
  }
  net.run_until(sim::Time::ms(60));
  EXPECT_EQ(net.tracker().completed(), 16u);
}

}  // namespace
}  // namespace opera::core

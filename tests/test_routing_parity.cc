// CSR routing-table parity: the flat EcmpTable built by
// all_pairs_ecmp_next_hops must be bit-identical — same next hops, same
// order — to the seed's nested-vector implementation (kept as
// all_pairs_ecmp_next_hops_reference) on every topology family the
// packet-level fabrics route over, including under failures.
#include <gtest/gtest.h>

#include "topo/expander.h"
#include "topo/folded_clos.h"
#include "topo/graph.h"
#include "topo/opera_topology.h"

namespace opera::topo {
namespace {

void expect_parity(const Graph& g, const std::string& label) {
  const EcmpTable csr = all_pairs_ecmp_next_hops(g);
  const NestedEcmpTable ref = all_pairs_ecmp_next_hops_reference(g);
  ASSERT_EQ(csr.num_vertices(), g.num_vertices()) << label;
  std::size_t ref_entries = 0;
  for (Vertex src = 0; src < g.num_vertices(); ++src) {
    for (Vertex dst = 0; dst < g.num_vertices(); ++dst) {
      const auto span = csr.next_hops(src, dst);
      const auto& nested =
          ref[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
      ref_entries += nested.size();
      ASSERT_EQ(span.size(), nested.size())
          << label << ": cell (" << src << ", " << dst << ")";
      for (std::size_t i = 0; i < nested.size(); ++i) {
        ASSERT_EQ(span[i], nested[i])
            << label << ": cell (" << src << ", " << dst << ") entry " << i;
      }
    }
  }
  EXPECT_EQ(csr.total_entries(), ref_entries) << label;
}

TEST(RoutingParity, OperaSlicesSmall) {
  OperaParams p;
  p.num_racks = 16;
  p.num_switches = 4;
  p.seed = 3;
  const OperaTopology topo(p);
  for (int s = 0; s < topo.num_slices(); ++s) {
    expect_parity(topo.slice_graph(s), "opera16 slice " + std::to_string(s));
  }
}

TEST(RoutingParity, OperaSlicesPaperScale) {
  OperaParams p;  // defaults: N=108, u=6
  p.seed = 1;
  const OperaTopology topo(p);
  for (const int s : {0, 1, 53, 107}) {
    expect_parity(topo.slice_graph(s), "opera108 slice " + std::to_string(s));
  }
}

TEST(RoutingParity, OperaUnderFailures) {
  OperaParams p;
  p.num_racks = 16;
  p.num_switches = 4;
  p.seed = 3;
  const OperaTopology topo(p);
  auto failures = FailureSet::none(16, 4);
  failures.switch_failed[1] = true;
  failures.uplink_failed[3][2] = true;
  failures.rack_failed[7] = true;
  for (int s = 0; s < topo.num_slices(); ++s) {
    expect_parity(topo.slice_graph(s, &failures),
                  "opera16+failures slice " + std::to_string(s));
    // slice_routes() must agree with building the table by hand.
    EXPECT_EQ(topo.slice_routes(s, &failures),
              all_pairs_ecmp_next_hops(topo.slice_graph(s, &failures)));
  }
}

TEST(RoutingParity, OperaPaperScaleUnderFailures) {
  OperaParams p;  // N=108, u=6
  p.seed = 1;
  const OperaTopology topo(p);
  auto failures = FailureSet::none(p.num_racks, p.num_switches);
  failures.switch_failed[2] = true;
  failures.uplink_failed[17][4] = true;
  for (const int s : {0, 54}) {
    expect_parity(topo.slice_graph(s, &failures),
                  "opera108+failures slice " + std::to_string(s));
  }
}

TEST(RoutingParity, Expander) {
  for (const Vertex tors : {Vertex{16}, Vertex{108}}) {
    ExpanderParams p;
    p.num_tors = tors;
    p.uplinks = tors >= 100 ? 7 : 5;
    p.hosts_per_tor = 5;
    p.seed = 1;
    const ExpanderTopology topo(p);
    expect_parity(topo.graph(), "expander " + std::to_string(tors));
    EXPECT_EQ(topo.routes(), all_pairs_ecmp_next_hops(topo.graph()));
  }
}

TEST(RoutingParity, FoldedClos) {
  // k=8 (toy) and the paper's k=12 3:1 Clos switch graphs: hierarchical,
  // unlike the flat matchings above — exercises multi-NIC ECMP fan-out
  // through aggs and cores.
  for (const int radix : {8, 12}) {
    ClosParams p;
    p.radix = radix;
    p.oversubscription = 3;
    const FoldedClos clos(p);
    expect_parity(clos.switch_graph(), "clos k=" + std::to_string(radix));
  }
}

TEST(RoutingParity, DisconnectedAndTrivialGraphs) {
  Graph lonely(1);
  expect_parity(lonely, "single vertex");
  Graph two(5);
  two.add_edge(0, 1);
  two.add_edge(2, 3);  // vertex 4 isolated
  expect_parity(two, "disconnected components");
  expect_parity(Graph{}, "empty graph");
}

}  // namespace
}  // namespace opera::topo

// Routing parity, two layers:
//  * CSR tables: the flat EcmpTable built by all_pairs_ecmp_next_hops must
//    be bit-identical — same next hops, same order — to the seed's
//    nested-vector implementation (kept as
//    all_pairs_ecmp_next_hops_reference) on every topology family the
//    packet-level fabrics route over, including under failures.
//  * Slice-table windowing: an OperaNetwork running on a small windowed
//    slice-table cache must produce bit-identical flow completions to the
//    eager all-slices precompute — table content is a pure function of
//    (topology, slice, failures), so *when* tables are built must never
//    leak into results, including across failure recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/opera_network.h"
#include "topo/expander.h"
#include "topo/folded_clos.h"
#include "topo/graph.h"
#include "topo/opera_topology.h"

namespace opera::topo {
namespace {

void expect_parity(const Graph& g, const std::string& label) {
  const EcmpTable csr = all_pairs_ecmp_next_hops(g);
  const NestedEcmpTable ref = all_pairs_ecmp_next_hops_reference(g);
  ASSERT_EQ(csr.num_vertices(), g.num_vertices()) << label;
  std::size_t ref_entries = 0;
  for (Vertex src = 0; src < g.num_vertices(); ++src) {
    for (Vertex dst = 0; dst < g.num_vertices(); ++dst) {
      const auto span = csr.next_hops(src, dst);
      const auto& nested =
          ref[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
      ref_entries += nested.size();
      ASSERT_EQ(span.size(), nested.size())
          << label << ": cell (" << src << ", " << dst << ")";
      for (std::size_t i = 0; i < nested.size(); ++i) {
        ASSERT_EQ(span[i], nested[i])
            << label << ": cell (" << src << ", " << dst << ") entry " << i;
      }
    }
  }
  EXPECT_EQ(csr.total_entries(), ref_entries) << label;
}

TEST(RoutingParity, OperaSlicesSmall) {
  OperaParams p;
  p.num_racks = 16;
  p.num_switches = 4;
  p.seed = 3;
  const OperaTopology topo(p);
  for (int s = 0; s < topo.num_slices(); ++s) {
    expect_parity(topo.slice_graph(s), "opera16 slice " + std::to_string(s));
  }
}

TEST(RoutingParity, OperaSlicesPaperScale) {
  OperaParams p;  // defaults: N=108, u=6
  p.seed = 1;
  const OperaTopology topo(p);
  for (const int s : {0, 1, 53, 107}) {
    expect_parity(topo.slice_graph(s), "opera108 slice " + std::to_string(s));
  }
}

TEST(RoutingParity, OperaUnderFailures) {
  OperaParams p;
  p.num_racks = 16;
  p.num_switches = 4;
  p.seed = 3;
  const OperaTopology topo(p);
  auto failures = FailureSet::none(16, 4);
  failures.switch_failed[1] = true;
  failures.uplink_failed[3][2] = true;
  failures.rack_failed[7] = true;
  for (int s = 0; s < topo.num_slices(); ++s) {
    expect_parity(topo.slice_graph(s, &failures),
                  "opera16+failures slice " + std::to_string(s));
    // slice_routes() must agree with building the table by hand.
    EXPECT_EQ(topo.slice_routes(s, &failures),
              all_pairs_ecmp_next_hops(topo.slice_graph(s, &failures)));
  }
}

TEST(RoutingParity, OperaPaperScaleUnderFailures) {
  OperaParams p;  // N=108, u=6
  p.seed = 1;
  const OperaTopology topo(p);
  auto failures = FailureSet::none(p.num_racks, p.num_switches);
  failures.switch_failed[2] = true;
  failures.uplink_failed[17][4] = true;
  for (const int s : {0, 54}) {
    expect_parity(topo.slice_graph(s, &failures),
                  "opera108+failures slice " + std::to_string(s));
  }
}

TEST(RoutingParity, Expander) {
  for (const Vertex tors : {Vertex{16}, Vertex{108}}) {
    ExpanderParams p;
    p.num_tors = tors;
    p.uplinks = tors >= 100 ? 7 : 5;
    p.hosts_per_tor = 5;
    p.seed = 1;
    const ExpanderTopology topo(p);
    expect_parity(topo.graph(), "expander " + std::to_string(tors));
    EXPECT_EQ(topo.routes(), all_pairs_ecmp_next_hops(topo.graph()));
  }
}

TEST(RoutingParity, FoldedClos) {
  // k=8 (toy) and the paper's k=12 3:1 Clos switch graphs: hierarchical,
  // unlike the flat matchings above — exercises multi-NIC ECMP fan-out
  // through aggs and cores.
  for (const int radix : {8, 12}) {
    ClosParams p;
    p.radix = radix;
    p.oversubscription = 3;
    const FoldedClos clos(p);
    expect_parity(clos.switch_graph(), "clos k=" + std::to_string(radix));
  }
}

// --- Windowed-cache vs eager-precompute network parity -------------------

struct Completion {
  std::uint64_t id;
  std::int64_t start_ps;
  std::int64_t end_ps;
  friend bool operator==(const Completion&, const Completion&) = default;
};

struct NetOutcome {
  std::vector<Completion> completions;
  core::OperaNetwork::TorStats tor;
};

// Builds an Opera fabric with the given slice-table window, drives a
// deterministic mixed bulk/low-latency workload (plus optional mid-run
// failures), and returns every flow completion.
NetOutcome run_opera(const core::OperaConfig& base, int window,
                     bool inject_failures) {
  core::OperaConfig cfg = base;
  cfg.slice_table_window = window;
  core::OperaNetwork net(cfg);

  sim::Rng wl(99);
  const auto hosts = static_cast<std::size_t>(net.num_hosts());
  for (int i = 0; i < 160; ++i) {
    const auto src = static_cast<std::int32_t>(wl.index(hosts));
    auto dst = static_cast<std::int32_t>(wl.index(hosts));
    while (dst == src) dst = static_cast<std::int32_t>(wl.index(hosts));
    // Mix of NDP mice and RotorLB elephants (cfg.bulk_threshold_bytes is
    // lowered below so both transports run).
    const std::int64_t bytes = (i % 4 == 0) ? 600'000 : 20'000;
    net.submit_flow(src, dst, bytes, sim::Time::us(5 * i));
  }
  if (inject_failures) {
    net.run_until(sim::Time::us(300));
    net.inject_uplink_failure(1, 0);
    // The second failure lands *after* the first recovery completed (one
    // cycle after injection: <= 2.7 ms at these scales). This is the
    // regression window for the failure snapshot: between this injection
    // and its own recompute, windowed rebuilds must keep using the
    // first-recovery snapshot — not the live failure set — or they
    // diverge from eager precompute.
    net.run_until(sim::Time::ms(3));
    net.inject_switch_failure(2);
  }
  net.run_until(sim::Time::ms(40));

  NetOutcome out;
  out.tor = net.tor_stats();
  for (const auto& rec : net.tracker().completions()) {
    out.completions.push_back(Completion{rec.flow.id, rec.flow.start.picoseconds(),
                                         rec.end.picoseconds()});
  }
  std::sort(out.completions.begin(), out.completions.end(),
            [](const Completion& a, const Completion& b) { return a.id < b.id; });
  return out;
}

void expect_window_parity(const core::OperaConfig& cfg, bool inject_failures,
                          const std::string& label) {
  // window = num_slices forces eager; 4 is the smallest legal window and
  // maximizes eviction/rebuild churn.
  const NetOutcome eager = run_opera(cfg, cfg.topology.num_racks, inject_failures);
  const NetOutcome windowed = run_opera(cfg, 4, inject_failures);
  ASSERT_FALSE(eager.completions.empty()) << label;
  ASSERT_EQ(eager.completions.size(), windowed.completions.size()) << label;
  for (std::size_t i = 0; i < eager.completions.size(); ++i) {
    EXPECT_EQ(eager.completions[i], windowed.completions[i])
        << label << ": completion " << i;
  }
  EXPECT_EQ(eager.tor.trims, windowed.tor.trims) << label;
  EXPECT_EQ(eager.tor.drops, windowed.tor.drops) << label;
  EXPECT_EQ(eager.tor.forward_drops, windowed.tor.forward_drops) << label;
}

core::OperaConfig small_opera(Vertex racks, int u, int hosts_per_rack) {
  core::OperaConfig cfg;
  cfg.topology.num_racks = racks;
  cfg.topology.num_switches = u;
  cfg.topology.hosts_per_rack = hosts_per_rack;
  cfg.topology.seed = 3;
  // Low threshold so the 600 KB elephants ride the RotorLB bulk path.
  cfg.bulk_threshold_bytes = 100'000;
  return cfg;
}

TEST(SliceWindowParity, K8FabricFctBitIdentical) {
  expect_window_parity(small_opera(16, 4, 4), false, "opera k=8 16x4");
}

TEST(SliceWindowParity, K16FabricFctBitIdentical) {
  expect_window_parity(small_opera(24, 8, 8), false, "opera k=16 24x8");
}

TEST(SliceWindowParity, K8UnderFailureRecovery) {
  expect_window_parity(small_opera(16, 4, 4), true, "opera k=8 +failures");
}

TEST(SliceWindowParity, K16UnderFailureRecovery) {
  expect_window_parity(small_opera(24, 8, 8), true, "opera k=16 +failures");
}

TEST(SliceWindowParity, WindowedCacheActuallyEvicts) {
  // Guard against the parity tests silently degenerating to eager-vs-eager.
  core::OperaConfig cfg = small_opera(16, 4, 4);
  cfg.slice_table_window = 4;
  core::OperaNetwork net(cfg);
  net.run_until(sim::Time::ms(3));  // ~30 slices > window
  const auto& cache = net.slice_tables();
  EXPECT_FALSE(cache.eager());
  EXPECT_EQ(cache.window(), 4);
  EXPECT_LE(cache.stats().resident, 4u);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_GT(cache.stats().prefetch_builds, 0u);
}

TEST(RoutingParity, DisconnectedAndTrivialGraphs) {
  Graph lonely(1);
  expect_parity(lonely, "single vertex");
  Graph two(5);
  two.add_edge(0, 1);
  two.add_edge(2, 3);  // vertex 4 isolated
  expect_parity(two, "disconnected components");
  expect_parity(Graph{}, "empty graph");
}

}  // namespace
}  // namespace opera::topo

// Tests for the analytic models: cost normalization (Appendix A, Table 2),
// cycle-time scaling (Appendix B, Figure 14), and routing state (Table 1).
#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/cycle.h"
#include "core/routing_state.h"

namespace opera::core {
namespace {

TEST(CostModel, Table2Values) {
  PortCostBreakdown costs;
  EXPECT_DOUBLE_EQ(costs.static_port(), 215.0);
  EXPECT_DOUBLE_EQ(costs.opera_port(), 275.0);
  EXPECT_NEAR(costs.alpha(), 1.28, 0.03);  // paper rounds to 1.3
}

TEST(CostModel, ClosOversubscriptionFromAlpha) {
  // alpha ~ 1.33 -> F = 3 (the paper's 3:1 cost-equivalent Clos).
  EXPECT_NEAR(CostModel::clos_oversubscription(4.0 / 3.0), 3.0, 1e-9);
  EXPECT_NEAR(CostModel::clos_oversubscription(1.0), 4.0, 1e-9);
  EXPECT_NEAR(CostModel::clos_oversubscription(2.0), 2.0, 1e-9);
}

TEST(CostModel, ExpanderUplinksFromAlpha) {
  // alpha = u/(k-u): the paper's u=7, k=12 expander has alpha = 1.4.
  EXPECT_EQ(CostModel::expander_uplinks(1.4, 12), 7);
  EXPECT_EQ(CostModel::expander_uplinks(1.0, 12), 6);
  EXPECT_EQ(CostModel::expander_uplinks(3.0, 12), 9);
}

TEST(CostModel, HostCounts) {
  // 648-host k=12 3:1 Clos (paper §4).
  EXPECT_EQ(CostModel::clos_hosts(12, 3.0), 648);
  // k=24 -> 5184 hosts (paper §5.6).
  EXPECT_EQ(CostModel::clos_hosts(24, 3.0), 5184);
  EXPECT_EQ(CostModel::opera_racks(12), 108);
  EXPECT_EQ(CostModel::opera_racks(24), 432);
}

TEST(CycleModel, PaperScaleCycleTime) {
  CycleModel m;
  // 108 slices x 99 us = 10.7 ms (paper §4.1).
  EXPECT_NEAR(m.cycle_time(12).to_ms(), 10.7, 0.1);
  // Duty cycle ~98%.
  EXPECT_NEAR(m.duty_cycle(12), 0.98, 0.005);
}

TEST(CycleModel, QuadraticWithoutGroups) {
  CycleModel m;
  EXPECT_NEAR(m.relative_cycle_time(12), 1.0, 1e-9);
  EXPECT_NEAR(m.relative_cycle_time(24), 4.0, 1e-9);
  EXPECT_NEAR(m.relative_cycle_time(60), 25.0, 1e-9);
}

TEST(CycleModel, LinearWithGroupsOfSix) {
  CycleModel m;
  // Groups of 6: one switch per group reconfigures at a time, so the cycle
  // scales as k/12 (Figure 14's lower curve).
  EXPECT_NEAR(m.relative_cycle_time(12, 6), 1.0, 1e-9);
  EXPECT_NEAR(m.relative_cycle_time(24, 6), 2.0, 1e-9);
  EXPECT_NEAR(m.relative_cycle_time(60, 6), 5.0, 1e-9);
}

TEST(CycleModel, BulkThresholdMatchesPaper) {
  CycleModel m;
  // ~15 MB at k=12 (paper §4.1).
  EXPECT_NEAR(static_cast<double>(m.bulk_threshold_bytes(12, 10e9)), 15e6, 1.5e6);
  // ~90 MB at k=64 with groups of 6 (paper Appendix B).
  EXPECT_NEAR(static_cast<double>(m.bulk_threshold_bytes(64, 10e9, 6)), 90e6, 12e6);
}

TEST(RoutingState, Table1EntriesExact) {
  // entries = N(N-1) + N(u-1) reproduces every row of Table 1.
  const std::int64_t expected[] = {12'096, 65'268, 276'120, 600'576, 1'032'192, 1'461'600};
  int i = 0;
  for (const auto& row : RoutingStateModel::kPaperRows) {
    EXPECT_EQ(RoutingStateModel::total_entries(row.racks, row.radix / 2), expected[i])
        << "row " << i;
    ++i;
  }
}

TEST(RoutingState, Table1UtilizationMatches) {
  const double expected[] = {0.7, 3.8, 16.2, 35.3, 60.7, 85.9};
  int i = 0;
  for (const auto& row : RoutingStateModel::kPaperRows) {
    const auto entries = RoutingStateModel::total_entries(row.racks, row.radix / 2);
    EXPECT_NEAR(RoutingStateModel::utilization_percent(entries), expected[i], 0.06)
        << "row " << i;
    ++i;
  }
}

}  // namespace
}  // namespace opera::core

// The fluid-vs-packet parity oracle (ISSUE: the error bound that makes
// the fluid engine trustworthy).
//
// Identical bulk-flow workloads run through the packet engine (the
// ground truth — NDP + RotorLB over per-slice circuits) and the fluid
// integrator on small Opera fabrics (k=8 and k=16), and the per-size-
// bucket mean FCTs are compared. The measured relative errors are
// printed on every run and asserted against declared bounds with ~2x
// margin — so a model regression that doubles the error fails loudly,
// while the printout documents the actual accuracy for docs/FLUID.md.
//
// A separate case repeats the comparison with a mid-run uplink failure
// injected at the same simulated time in both engines: the fluid model's
// next-boundary failure semantics must stay within the same bounds as
// the packet engine's hello-protocol timeline at this scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/fabric.h"
#include "core/opera_network.h"
#include "fluid/fluid_network.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "workload/synthetic.h"

namespace opera {
namespace {

struct Bucket {
  const char* label;
  std::int64_t lo_bytes;
  std::int64_t hi_bytes;
  double max_rel_err;  // declared bound on |fluid - packet| / packet
};

// Declared per-bucket p50-FCT error bounds, set at roughly 2x the
// measured worst case per bucket. Measured 2026-08 (this workload):
//   1-2MB: k8 20%, k16 37%, k8+uplink-fail 43%
//   2-4MB: k8 23%, k16 25%, k8+uplink-fail 24%
//   4-7MB: k8  7%, k16  8%, k8+uplink-fail  9%
// The model converges as flows grow — the fluid engine ignores circuit
// scheduling granularity and NDP ramp, which dominate small-bulk FCT but
// amortize away for elephants. Hybrid mode's default 15 MB threshold
// routes only the well-modeled class to the fluid engine.
constexpr Bucket kBuckets[] = {
    {"1-2MB", 1'000'000, 2'000'000, 0.80},
    {"2-4MB", 2'000'000, 4'000'000, 0.50},
    {"4-7MB", 4'000'000, 7'000'000, 0.25},
};

core::FabricConfig parity_config(std::int32_t racks, std::int32_t hosts) {
  auto config = core::FabricConfig::make(core::FabricKind::kOpera).scale(racks, hosts);
  // Everything in the 1-6 MB workload classifies bulk in both engines —
  // the fluid model only covers the bulk plane.
  config.bulk_threshold_bytes = 500'000;
  return config;
}

// Deterministic bulk workload: three host-permutation rounds (one flow
// per source host, distinct destinations within a round, so no artificial
// receiver incast), one round per size bucket, starts staggered so the
// rounds overlap in flight.
std::vector<workload::FlowSpec> bulk_workload(std::int32_t num_hosts,
                                              std::int32_t hosts_per_rack,
                                              std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<workload::FlowSpec> out;
  int round = 0;
  for (const std::int64_t size : {1'500'000, 3'000'000, 6'000'000}) {
    auto flows =
        workload::permutation_workload(num_hosts, hosts_per_rack, size, rng);
    for (auto& f : flows) f.start = f.start + sim::Time::us(200 * round);
    out.insert(out.end(), flows.begin(), flows.end());
    ++round;
  }
  return out;
}

struct UplinkFailure {
  std::int32_t rack;
  int rotor_switch;
  sim::Time at;
};

std::unique_ptr<core::Network> run_engine(
    const core::FabricConfig& base, core::EngineKind engine,
    const std::vector<workload::FlowSpec>& flows,
    const UplinkFailure* failure) {
  fluid::register_fluid_engines();
  auto config = base;
  config.engine = engine;
  auto net = core::NetworkFactory::build(config);
  if (failure != nullptr) {
    if (auto* packet = dynamic_cast<core::OperaNetwork*>(net.get())) {
      net->sim().schedule_at(failure->at, [packet, f = *failure] {
        packet->inject_uplink_failure(f.rack, f.rotor_switch);
      });
    } else if (auto* fl = dynamic_cast<fluid::FluidNetwork*>(net.get())) {
      net->sim().schedule_at(failure->at, [fl, f = *failure] {
        fl->inject_uplink_failure(f.rack, f.rotor_switch);
      });
    }
  }
  for (const auto& f : flows) {
    net->submit_flow(f.src_host, f.dst_host, f.size_bytes, f.start);
  }
  const auto status = net->run_to_completion(sim::Time::ms(1000));
  EXPECT_TRUE(status.stopped_early) << "workload did not finish by 1 s";
  EXPECT_EQ(net->tracker().completed(), flows.size());
  return net;
}

// Runs the workload through both engines and checks every bucket's mean
// FCT error against its declared bound, printing the measured values.
void check_parity(const char* name, const core::FabricConfig& config,
                  const std::vector<workload::FlowSpec>& flows,
                  const UplinkFailure* failure = nullptr) {
  const auto packet = run_engine(config, core::EngineKind::kPacket, flows, failure);
  const auto fluid_net = run_engine(config, core::EngineKind::kFluid, flows, failure);

  for (const Bucket& bucket : kBuckets) {
    const auto p = packet->tracker().fct_us(bucket.lo_bytes, bucket.hi_bytes);
    const auto f = fluid_net->tracker().fct_us(bucket.lo_bytes, bucket.hi_bytes);
    ASSERT_EQ(p.count(), f.count()) << name << " bucket " << bucket.label;
    if (p.empty()) continue;
    // Median, not mean: the packet engine's occasional straggler (NDP
    // retransmission tails) would otherwise dominate a bucket of 16-128
    // samples and measure the tail, not the model.
    const double rel_err = std::abs(f.percentile(50) - p.percentile(50)) /
                           p.percentile(50);
    std::printf(
        "[parity] %-16s bucket %-6s n=%3zu packet p50 %8.0f us  fluid p50 "
        "%8.0f us  rel err %5.1f%% (bound %4.0f%%)\n",
        name, bucket.label, p.count(), p.percentile(50), f.percentile(50),
        rel_err * 100.0, bucket.max_rel_err * 100.0);
    EXPECT_LE(rel_err, bucket.max_rel_err)
        << name << " bucket " << bucket.label << ": fluid p50 "
        << f.percentile(50) << " us vs packet p50 " << p.percentile(50)
        << " us";
  }
}

TEST(FluidParity, BulkFctK8) {
  const auto config = parity_config(16, 4);  // k=8: 16 racks x 4 hosts
  const auto flows = bulk_workload(config.num_hosts(), 4, 21);
  check_parity("k8", config, flows);
}

TEST(FluidParity, BulkFctK16) {
  const auto config = parity_config(16, 8);  // k=16: 16 racks x 8 hosts
  const auto flows = bulk_workload(config.num_hosts(), 8, 22);
  check_parity("k16", config, flows);
}

TEST(FluidParity, BulkFctK8UnderUplinkFailure) {
  const auto config = parity_config(16, 4);
  const auto flows = bulk_workload(config.num_hosts(), 4, 23);
  // Kill one of rack 1's four uplinks mid-run, while most flows are in
  // flight. Both engines see the same injection time; the fluid model
  // applies it at the next slice boundary (<= 99 us later).
  const UplinkFailure failure{1, 0, sim::Time::us(700)};
  check_parity("k8-uplink-fail", config, flows, &failure);
}

}  // namespace
}  // namespace opera

#include "topo/opera_topology.h"

#include <gtest/gtest.h>

#include <set>

namespace opera::topo {
namespace {

OperaParams small_params() {
  OperaParams p;
  p.num_racks = 16;
  p.num_switches = 4;
  p.hosts_per_rack = 4;
  p.seed = 7;
  return p;
}

TEST(OperaTopology, SliceCountEqualsRackCount) {
  const OperaTopology topo(small_params());
  EXPECT_EQ(topo.num_slices(), 16);
  EXPECT_EQ(topo.matchings().size(), 16u);
}

TEST(OperaTopology, MatchingsDealtEvenly) {
  const OperaTopology topo(small_params());
  std::set<std::size_t> seen;
  for (int sw = 0; sw < 4; ++sw) {
    const auto& mine = topo.switch_matchings(sw);
    EXPECT_EQ(mine.size(), 4u);  // N/u = 16/4
    seen.insert(mine.begin(), mine.end());
  }
  EXPECT_EQ(seen.size(), 16u);  // partition of all matchings
}

TEST(OperaTopology, ReconfiguringSwitchRotates) {
  const OperaTopology topo(small_params());
  for (int s = 0; s < topo.num_slices(); ++s) {
    EXPECT_EQ(topo.reconfiguring_switch(s), s % 4);
  }
}

TEST(OperaTopology, MatchingAdvancesOnlyAtReconfiguration) {
  const OperaTopology topo(small_params());
  // Between consecutive slices, only the switch that spent slice s
  // reconfiguring comes up with a new matching in slice s+1.
  for (int s = 0; s + 1 < topo.num_slices(); ++s) {
    for (int sw = 0; sw < 4; ++sw) {
      const auto before = topo.matching_index(sw, s);
      const auto after = topo.matching_index(sw, s + 1);
      if (topo.reconfiguring_switch(s) == sw) {
        EXPECT_NE(before, after) << "slice " << s << " switch " << sw;
      } else {
        EXPECT_EQ(before, after) << "slice " << s << " switch " << sw;
      }
    }
  }
}

TEST(OperaTopology, SwitchCyclesThroughAllItsMatchings) {
  const OperaTopology topo(small_params());
  for (int sw = 0; sw < 4; ++sw) {
    std::set<std::size_t> seen;
    for (int s = 0; s < topo.num_slices(); ++s) {
      seen.insert(topo.matching_index(sw, s));
    }
    EXPECT_EQ(seen.size(), topo.switch_matchings(sw).size());
  }
}

TEST(OperaTopology, EverySliceConnected) {
  const OperaTopology topo(small_params());
  EXPECT_TRUE(topo.all_slices_connected());
}

TEST(OperaTopology, SliceGraphDegreeBound) {
  const OperaTopology topo(small_params());
  // Union of u-1 = 3 matchings: every rack has degree <= 3.
  for (int s = 0; s < topo.num_slices(); ++s) {
    const Graph g = topo.slice_graph(s);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_LE(g.degree(v), 3);
    }
  }
}

TEST(OperaTopology, AllRackPairsDirectlyConnectedOverCycle) {
  const OperaTopology topo(small_params());
  for (Vertex a = 0; a < 16; ++a) {
    for (Vertex b = 0; b < 16; ++b) {
      if (a == b) continue;
      EXPECT_FALSE(topo.direct_slices(a, b).empty())
          << "no direct circuit for " << a << "->" << b;
    }
  }
}

TEST(OperaTopology, CircuitPeerIsSymmetric) {
  const OperaTopology topo(small_params());
  for (int s = 0; s < topo.num_slices(); ++s) {
    for (int sw = 0; sw < 4; ++sw) {
      for (Vertex r = 0; r < 16; ++r) {
        const Vertex peer = topo.circuit_peer(sw, r, s);
        EXPECT_EQ(topo.circuit_peer(sw, peer, s), r);
      }
    }
  }
}

TEST(OperaTopology, SliceRoutesReachAllRacks) {
  const OperaTopology topo(small_params());
  const auto routes = topo.slice_routes(0);
  for (Vertex src = 0; src < 16; ++src) {
    for (Vertex dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      EXPECT_FALSE(routes.next_hops(src, dst).empty());
    }
  }
}

TEST(OperaTopology, FailedSwitchRemovesItsCircuits) {
  const OperaTopology topo(small_params());
  auto failures = FailureSet::none(16, 4);
  // Fail a switch that is active in slice 0 (switch 0 is reconfiguring).
  failures.switch_failed[1] = true;
  const Graph with = topo.slice_graph(0);
  const Graph without = topo.slice_graph(0, &failures);
  EXPECT_LT(without.num_edges(), with.num_edges());
}

TEST(OperaTopology, FailedUplinkRemovesOneCircuit) {
  const OperaTopology topo(small_params());
  auto failures = FailureSet::none(16, 4);
  failures.uplink_failed[3][1] = true;  // rack 3's uplink to switch 1
  const Graph with = topo.slice_graph(0);
  const Graph without = topo.slice_graph(0, &failures);
  // Switch 1 is active in slice 0; rack 3 loses exactly one circuit unless
  // the matching self-matched it.
  const Vertex peer = topo.circuit_peer(1, 3, 0);
  if (peer != 3) {
    EXPECT_EQ(without.num_edges() + 1, with.num_edges());
    EXPECT_FALSE(without.has_edge(3, peer));
  }
}

TEST(OperaTopology, RejectsIndivisibleRackCount) {
  OperaParams p;
  p.num_racks = 10;
  p.num_switches = 4;  // 10 % 4 != 0
  EXPECT_THROW(OperaTopology topo(p), std::invalid_argument);
}

TEST(OperaTopology, PaperScale108Racks) {
  OperaParams p;
  p.num_racks = 108;
  p.num_switches = 6;
  p.hosts_per_rack = 6;
  p.seed = 1;
  const OperaTopology topo(p);
  EXPECT_EQ(topo.num_slices(), 108);
  EXPECT_EQ(topo.params().num_hosts(), 648);
  EXPECT_TRUE(topo.all_slices_connected());
  // Worst-case path length across sample slices should be ~5 (paper §4.1).
  for (const int s : {0, 17, 53, 107}) {
    const auto stats = all_pairs_path_stats(topo.slice_graph(s));
    EXPECT_EQ(stats.disconnected_pairs, 0u);
    EXPECT_LE(stats.worst, 6);
  }
}

// Property sweep over sizes and seeds: all slices connected, full direct
// coverage across the cycle.
struct TopoParam {
  Vertex racks;
  int switches;
  std::uint64_t seed;
};

class OperaTopologySweep : public ::testing::TestWithParam<TopoParam> {};

TEST_P(OperaTopologySweep, SlicesConnectedAndCycleComplete) {
  const auto [racks, switches, seed] = GetParam();
  OperaParams p;
  p.num_racks = racks;
  p.num_switches = switches;
  p.seed = seed;
  const OperaTopology topo(p);
  EXPECT_TRUE(topo.all_slices_connected());
  // Direct coverage: rack 0 reaches every other rack directly in-cycle.
  for (Vertex b = 1; b < racks; ++b) {
    EXPECT_FALSE(topo.direct_slices(0, b).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OperaTopologySweep,
    ::testing::Values(TopoParam{8, 4, 1}, TopoParam{12, 4, 2},
                      TopoParam{16, 4, 3}, TopoParam{20, 5, 4},
                      TopoParam{24, 6, 5}, TopoParam{36, 6, 6},
                      TopoParam{54, 6, 7}, TopoParam{64, 8, 8}));

}  // namespace
}  // namespace opera::topo

#!/usr/bin/env python3
"""Blank the wall-clock fields of a bench CSV so two runs of the same
simulation can be diffed bit-for-bit.

Simulation output is deterministic; wall-clock measurements (construct_s,
wall_s, the `# peak RSS` note) are not. The crash-resume check compares an
interrupted+resumed run against an uninterrupted reference, so those — and
only those — fields are neutralized:

    strip_wall_fields.py run.csv > run.stripped.csv
    strip_wall_fields.py < run.csv

Wall-clock columns are located by name from each table's header row (CSV
schema: header rows lead with the literal field "table", data rows with the
table id — docs/BENCH_OUTPUT.md), so this keeps working when columns move.
"""

import csv
import io
import sys

WALL_COLUMNS = {"construct_s", "wall_s"}
DROP_NOTE_PREFIXES = ("# peak RSS",)


def strip(lines):
    """Yield output lines with wall-clock cells blanked."""
    # Column names of the most recent header row, aligned with data-row
    # fields (index 0 is the "table"/table-id field in both).
    columns = []
    for line in lines:
        line = line.rstrip("\n")
        if line.startswith("#"):
            if not line.startswith(DROP_NOTE_PREFIXES):
                yield line
            continue
        row = next(csv.reader([line]))
        if not row:
            yield line
            continue
        if row[0] == "table":
            columns = row
            yield line
            continue
        if columns:
            for i, name in enumerate(columns):
                if name in WALL_COLUMNS and i < len(row):
                    row[i] = ""
        out = io.StringIO()
        csv.writer(out, lineterminator="").writerow(row)
        yield out.getvalue()


def main(argv):
    if len(argv) > 2 or (len(argv) == 2 and argv[1].startswith("-")):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    source = open(argv[1]) if len(argv) == 2 else sys.stdin
    with source:
        for line in strip(source):
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env bash
# End-to-end crash/resume determinism check (docs/CHECKPOINT.md).
#
# For each shard count, runs a quick k=12 Opera sweep three ways:
#   1. uninterrupted, no guard flags — the reference;
#   2. with --checkpoint-every, SIGKILLed as soon as a checkpoint lands
#      (SIGKILL is unmaskable: this is a real crash, not a graceful exit);
#   3. resumed from the checkpoint the killed run left behind.
# The resumed run's CSV must be bit-identical to the reference after
# strip_wall_fields.py blanks the wall-clock measurements. Finally checks
# the SIGTERM path: graceful exit code 42, checkpoint written, partial
# report flushed.
#
#   scripts/crash_resume_test.sh [build-dir]
set -euo pipefail

build_dir="${1:-build}"
bench="$build_dir/bench_custom"
strip="$(dirname "$0")/strip_wall_fields.py"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found (build first)" >&2
  exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

sweep=(--fabric=opera --racks=12 --hosts-per-rack=4 --workload=permutation
       --flow-kb=20000 --horizon-ms=100 --seed=7 --csv)
failures=0

wait_for_checkpoint() {
  # Poll until the run has written its first checkpoint (tmp+rename makes
  # the appearance atomic), so the SIGKILL lands genuinely mid-run.
  local path="$1" pid="$2"
  for _ in $(seq 1 200); do
    [[ -s "$path" ]] && return 0
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.05
  done
  return 1
}

for threads in 1 4; do
  echo "== crash/resume at --threads=$threads"
  ck="$work/t$threads.ckpt"

  "$bench" "${sweep[@]}" --threads="$threads" \
    > "$work/ref$threads.csv" 2> "$work/ref$threads.err"

  "$bench" "${sweep[@]}" --threads="$threads" \
    --checkpoint-every=5 --checkpoint-to="$ck" \
    > "$work/killed$threads.csv" 2> "$work/killed$threads.err" &
  pid=$!
  if wait_for_checkpoint "$ck" "$pid"; then
    kill -KILL "$pid" 2>/dev/null || true
  fi
  wait "$pid" 2>/dev/null || true
  if [[ ! -s "$ck" ]]; then
    echo "FAIL: no checkpoint written before the run ended (threads=$threads)" >&2
    failures=$((failures + 1))
    continue
  fi

  "$bench" --resume="$ck" --threads="$threads" --csv \
    > "$work/resumed$threads.csv" 2> "$work/resumed$threads.err"
  grep -q "fingerprint .* verified" "$work/resumed$threads.err" || {
    echo "FAIL: resume did not verify the checkpoint fingerprint (threads=$threads)" >&2
    failures=$((failures + 1))
  }

  if diff <(python3 "$strip" "$work/ref$threads.csv") \
          <(python3 "$strip" "$work/resumed$threads.csv"); then
    echo "   resumed CSV bit-identical to uninterrupted reference"
  else
    echo "FAIL: resumed run differs from reference (threads=$threads)" >&2
    failures=$((failures + 1))
  fi
done

echo "== SIGTERM graceful exit"
ck="$work/sigterm.ckpt"
"$bench" "${sweep[@]}" --checkpoint-to="$ck" --checkpoint-every=5 \
  > "$work/sigterm.csv" 2> "$work/sigterm.err" &
pid=$!
wait_for_checkpoint "$ck" "$pid" || true
kill -TERM "$pid" 2>/dev/null || true
rc=0; wait "$pid" || rc=$?
if (( rc != 42 )); then
  echo "FAIL: SIGTERM exit code $rc, expected 42" >&2
  failures=$((failures + 1))
fi
grep -q "PARTIAL RUN" "$work/sigterm.csv" || {
  echo "FAIL: SIGTERM run did not flush a partial report" >&2
  failures=$((failures + 1))
}
[[ -s "$ck" ]] || {
  echo "FAIL: SIGTERM run left no checkpoint" >&2
  failures=$((failures + 1))
}

if (( failures > 0 )); then
  echo "crash_resume_test: $failures failure(s)" >&2
  exit 1
fi
echo "crash_resume_test: all checks passed"

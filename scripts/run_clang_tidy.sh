#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over every src/ translation unit
# against a compile_commands.json.
#
#   scripts/run_clang_tidy.sh [build-dir] [--require]
#
# build-dir defaults to `build`; configure emits compile_commands.json
# unconditionally (CMAKE_EXPORT_COMPILE_COMMANDS is set in CMakeLists).
# Without clang-tidy on PATH (or $CLANG_TIDY) the script SKIPS with exit 0
# so developer machines without LLVM aren't blocked; CI passes --require
# so a missing tool fails loudly there instead of green-washing the job.
set -euo pipefail

build_dir="build"
require=0
for arg in "$@"; do
  case "$arg" in
    --require) require=1 ;;
    -*) echo "usage: $0 [build-dir] [--require]" >&2; exit 2 ;;
    *) build_dir="$arg" ;;
  esac
done

tidy="${CLANG_TIDY:-}"
if [[ -z "$tidy" ]]; then
  for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
              clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then tidy="$cand"; break; fi
  done
fi
if [[ -z "$tidy" ]]; then
  if (( require )); then
    echo "error: clang-tidy not found (set \$CLANG_TIDY or install LLVM)" >&2
    exit 1
  fi
  echo "clang-tidy not found — skipping (CI runs this with --require)" >&2
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "error: $build_dir/compile_commands.json not found — configure first:" >&2
  echo "  cmake -B $build_dir -S ." >&2
  exit 1
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
mapfile -t sources < <(find "$repo_root/src" -name '*.cc' | sort)
echo "== $($tidy --version | head -n 1)"
echo "== ${#sources[@]} translation units, config $repo_root/.clang-tidy"

jobs="$(nproc 2>/dev/null || echo 2)"
status=0
printf '%s\n' "${sources[@]}" \
  | xargs -P "$jobs" -n 4 "$tidy" -p "$build_dir" --quiet || status=$?

if (( status != 0 )); then
  echo "clang-tidy found issues (see above); fix or NOLINTNEXTLINE with a reason" >&2
  exit 1
fi
echo "clang-tidy clean"

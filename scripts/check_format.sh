#!/usr/bin/env bash
# clang-format check (NEVER rewrites): reports files that differ from
# .clang-format style, exit 1 if any.
#
#   scripts/check_format.sh [--require]
#
# Without clang-format on PATH (or $CLANG_FORMAT) the script SKIPS with
# exit 0; CI passes --require so the tool must exist there. The CI step
# itself is advisory (continue-on-error) until the tree has been
# clang-formatted wholesale — the config matches house style, but
# hand-formatted code is never byte-exact against any formatter.
set -euo pipefail

require=0
[[ "${1:-}" == "--require" ]] && require=1

fmt="${CLANG_FORMAT:-}"
if [[ -z "$fmt" ]]; then
  for cand in clang-format clang-format-20 clang-format-19 clang-format-18 \
              clang-format-17 clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$cand" >/dev/null 2>&1; then fmt="$cand"; break; fi
  done
fi
if [[ -z "$fmt" ]]; then
  if (( require )); then
    echo "error: clang-format not found (set \$CLANG_FORMAT or install LLVM)" >&2
    exit 1
  fi
  echo "clang-format not found — skipping (CI runs this with --require)" >&2
  exit 0
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
echo "== $($fmt --version)"

mapfile -t sources < <(find src tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) | sort)

bad=0
for f in "${sources[@]}"; do
  if ! "$fmt" --dry-run -Werror --style=file "$f" >/dev/null 2>&1; then
    echo "needs-format: $f"
    bad=$((bad + 1))
  fi
done

if (( bad > 0 )); then
  echo "$bad file(s) differ from .clang-format style (clang-format -i to fix)" >&2
  exit 1
fi
echo "format check clean (${#sources[@]} files)"
